// SSSP head-to-head: the same single-source shortest path computation
// on the baseline MapReduce engine (one job per iteration, static data
// reshuffled every time) and on iMapReduce (persistent tasks,
// static/state separation, async maps), with Hadoop-like scheduling
// overheads so the paper's Figs. 4–5 shape is visible at laptop scale.
//
// Both runs go through the imr.Cluster Submit front door: the baseline
// as a JobSpec{Chain} (client-driven job-per-iteration pattern), the
// iMapReduce run as a JobSpec{Iterative} (one persistent job).
//
//	go run ./examples/sssp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/graph"
	"imapreduce/internal/imr"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
)

const iters = 12

func main() {
	// A Facebook-like weighted graph (paper Table 1, scaled 1/100).
	d, err := graph.ByName("facebook", 100)
	if err != nil {
		log.Fatal(err)
	}
	g := d.Build()
	fmt.Printf("graph %s: %d nodes, %d edges\n\n", d.Name, g.N, g.Edges())

	mrStats, mrTotal := runBaseline(g)
	imrPer, imrTotal, imrInit := runIMapReduce(g)

	fmt.Printf("%-6s %-18s %-18s %-14s\n", "iter", "MapReduce(cum)", "MR ex-init(cum)", "iMapReduce(cum)")
	for i := 0; i < iters; i++ {
		mrc, mrx, imrc := "-", "-", "-"
		if i < len(mrStats) {
			mrc = mrStats[i].CumulativeWall.Round(time.Millisecond).String()
			mrx = mrStats[i].CumulativeExInit.Round(time.Millisecond).String()
		}
		if i < len(imrPer) {
			imrc = imrPer[i].CompletedAt.Round(time.Millisecond).String()
		}
		fmt.Printf("%-6d %-18s %-18s %-14s\n", i+1, mrc, mrx, imrc)
	}
	fmt.Printf("\nMapReduce total:  %v (%d jobs launched)\n", mrTotal.Round(time.Millisecond), iters)
	fmt.Printf("iMapReduce total: %v (1 job, init %v)\n", imrTotal.Round(time.Millisecond), imrInit.Round(time.Millisecond))
	fmt.Printf("speedup: %.2fx (paper reports 2–3x on its local cluster)\n",
		float64(mrTotal)/float64(imrTotal))
}

func newSpec() cluster.Spec {
	spec := cluster.Uniform(4)
	spec.JobInitOverhead = 50 * time.Millisecond // emulated Hadoop job setup
	spec.TaskStartOverhead = 10 * time.Millisecond
	return spec
}

func newCluster(m *metrics.Set) *imr.Cluster {
	spec := newSpec()
	c, err := imr.NewCluster(imr.Options{Spec: &spec, Metrics: m})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func runBaseline(g *graph.Graph) ([]mapreduce.IterStats, time.Duration) {
	m := metrics.NewSet()
	c := newCluster(m)
	if err := c.Write("/in", sssp.CombinedPairs(g, 0), sssp.CombinedOps()); err != nil {
		log.Fatal(err)
	}
	chain := sssp.MRSpec("sssp-mr", "/in", "/work", 4, iters, 0)
	h, err := c.Submit(context.Background(), imr.JobSpec{Chain: &chain}, imr.SubmitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := h.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline shuffled %.1f MB in total (state AND adjacency every iteration)\n",
		float64(m.Get(metrics.ShuffleBytes))/(1<<20))
	return res.Chain.Stats, res.Chain.TotalWall
}

func runIMapReduce(g *graph.Graph) ([]core.IterInfo, time.Duration, time.Duration) {
	m := metrics.NewSet()
	c := newCluster(m)
	if err := sssp.WriteInputs(c.FS, c.Spec.IDs()[0], g, 0, "/static", "/state"); err != nil {
		log.Fatal(err)
	}
	job := sssp.IMRJob(sssp.IMRConfig{
		Name: "sssp-imr", StaticPath: "/static", StatePath: "/state", MaxIter: iters,
	})
	h, err := c.Submit(context.Background(), imr.JobSpec{Iterative: job}, imr.SubmitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := h.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iMapReduce shuffled %.1f MB in total (distance messages only)\n\n",
		float64(m.Get(metrics.ShuffleBytes))/(1<<20))
	return res.Iterative.PerIter, res.Iterative.TotalWall, res.Iterative.InitTime
}

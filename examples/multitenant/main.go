// Multitenant: one long-lived job service, many users.
//
// A serve.Service wraps an imr.Cluster with the three things a shared
// deployment needs: admission control (bounded queue, per-tenant
// quotas), weighted fair-share scheduling over a fixed slot pool, and
// per-job isolation (namespaced DFS paths, private metrics). Here two
// tenants — "research" with weight 2 and "batch" with weight 1 — each
// submit six PageRank jobs into a two-slot service and get slots in a
// 2:1 ratio, while a third tenant bounces off its quota.
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/graph"
	"imapreduce/internal/imr"
	"imapreduce/internal/metrics"
	"imapreduce/internal/serve"
)

func main() {
	// 1. The shared substrate: one cluster, one DFS.
	c, err := imr.NewCluster(imr.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	g := graph.Generate(graph.GenConfig{Nodes: 2000, Degree: graph.PageRankDegree, Seed: 1})
	if err := c.Write("/pr/static", graph.StaticPairs(g), graph.AdjOps()); err != nil {
		log.Fatal(err)
	}
	if err := c.Write("/pr/state", pagerank.StatePairs(g.N), pagerank.StateOps()); err != nil {
		log.Fatal(err)
	}

	// 2. The service: two slots, weighted tenants, a strict quota for
	// "guest".
	s, err := serve.New(serve.Config{
		Cluster:    c,
		Slots:      2,
		QueueLimit: 32,
		Tenants: map[string]serve.Quota{
			"research": {Weight: 2},
			"batch":    {Weight: 1},
			"guest":    {MaxQueued: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// 3. Each tenant submits six jobs at once. Names may repeat across
	// tenants — the service namespaces every run.
	job := func(i int) *pagerank.IMRConfig {
		return &pagerank.IMRConfig{
			Name: fmt.Sprintf("pagerank-%d", i), Nodes: g.N,
			StaticPath: "/pr/static", StatePath: "/pr/state", MaxIter: 3,
		}
	}
	var handles []*serve.Job
	for i := 0; i < 6; i++ {
		for _, tenant := range []string{"research", "batch"} {
			cfg := job(i)
			cfg.OutputPath = fmt.Sprintf("%s/pr-%d/out", serve.TenantRoot(tenant), i)
			h, err := s.Submit(context.Background(),
				imr.JobSpec{Iterative: pagerank.IMRJob(*cfg)},
				imr.SubmitOptions{Tenant: tenant})
			if err != nil {
				log.Fatal(err)
			}
			handles = append(handles, h)
		}
	}

	// 4. Quotas reject at admission, typed: guest fits one queued job,
	// the second bounces with ErrQuotaExceeded.
	guest, err := s.Submit(context.Background(),
		imr.JobSpec{Iterative: pagerank.IMRJob(*job(100))},
		imr.SubmitOptions{Tenant: "guest"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.Submit(context.Background(),
		imr.JobSpec{Iterative: pagerank.IMRJob(*job(101))},
		imr.SubmitOptions{Tenant: "guest"}); errors.Is(err, serve.ErrQuotaExceeded) {
		fmt.Println("guest over quota:", err)
	}
	guest.Cancel() // queued jobs cancel instantly, without ever running

	// 5. Wait, then look at who got dispatched when.
	for _, h := range handles {
		if err := h.Wait(context.Background()); err != nil {
			log.Fatalf("%s: %v", h.ID(), err)
		}
	}
	fmt.Println("dispatch order (ordinal: tenant/seq):")
	for _, h := range handles {
		fmt.Printf("  %2d: %-12s %s  (%d iterations)\n",
			h.DispatchSeq(), h.Tenant(), h.Name(),
			h.Metrics().Get(metrics.Iterations))
	}
	fmt.Printf("service totals: %d dispatched, %d completed, %d canceled\n",
		c.Metrics.Get(metrics.ServeDispatched),
		c.Metrics.Get(metrics.ServeCompleted),
		c.Metrics.Get(metrics.ServeCanceled))
}

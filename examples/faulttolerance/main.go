// Fault tolerance demo (paper §3.4.1): a PageRank run checkpoints its
// state to the DFS every two iterations, and three runs are compared:
//
//  1. a clean run;
//  2. a run where one worker is killed mid-run with an explicit failure
//     announcement (the paper's crash model);
//  3. a run where one worker silently hangs — no announcement at all —
//     and the master's heartbeat detector has to notice the missed
//     beats, declare the worker dead, and recover on its own.
//
// In both failure runs the master re-places the lost task pairs on the
// surviving workers, rolls every task back to the last durable
// checkpoint, and the computation finishes with exactly the same ranks
// the failure-free run produces.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math"
	"sync/atomic"
	"time"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

type failureMode int

const (
	clean failureMode = iota
	crash // announced worker kill (FailWorker)
	hang  // silent stall, recovered via heartbeat detection
)

func (m failureMode) String() string {
	switch m {
	case crash:
		return "crash run"
	case hang:
		return "hang run "
	default:
		return "clean run"
	}
}

func main() {
	g := graph.Generate(graph.GenConfig{Nodes: 8000, Degree: graph.PageRankDegree, Seed: 3})
	const iters = 12

	ref := run(g, iters, clean)
	for _, mode := range []failureMode{crash, hang} {
		got := run(g, iters, mode)
		var maxDiff float64
		for k, v := range ref {
			if d := math.Abs(v - got[k]); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("max rank difference, clean vs %s: %.3g\n\n", mode, maxDiff)
	}
}

func run(g *graph.Graph, iters int, mode failureMode) map[int64]float64 {
	spec := cluster.Uniform(4)
	copts := core.Options{}
	if mode == hang {
		// Schedule the silent hang in the cluster spec and arm heartbeat
		// detection: worker-2 freezes 40ms in, announces nothing, and the
		// master must notice its missed beats. Note there is no
		// FailWorker call anywhere on this path.
		spec.Nodes[2].StallAfter = 40 * time.Millisecond
		spec.Nodes[2].StallFor = 1500 * time.Millisecond
		copts.HeartbeatInterval = 20 * time.Millisecond
		copts.HeartbeatMisses = 4
	}
	m := metrics.NewSet()
	fs := dfs.New(dfs.DefaultConfig(), spec.IDs(), m)
	eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, copts)
	if err != nil {
		log.Fatal(err)
	}
	if err := pagerank.WriteInputs(fs, "worker-0", g, "/static", "/state"); err != nil {
		log.Fatal(err)
	}
	job := pagerank.IMRJob(pagerank.IMRConfig{
		Name: fmt.Sprintf("pr-ft-%d", mode), Nodes: g.N,
		StaticPath: "/static", StatePath: "/state",
		MaxIter: iters, Checkpoint: 2,
	})
	// Pace the reduce slightly so the failure lands mid-run.
	base := job.Reduce
	var paced atomic.Int64
	job.Reduce = func(key any, states []any) (any, error) {
		if paced.Add(1)%500 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return base(key, states)
	}

	if mode == crash {
		go func() {
			for {
				time.Sleep(5 * time.Millisecond)
				if err := eng.FailWorker("worker-2"); err == nil {
					fmt.Println("worker-2 killed mid-run (announced)")
					return
				}
			}
		}()
	}

	res, err := eng.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d iterations in %v, recoveries=%d, checkpoints=%d, heartbeat-detected failures=%d\n",
		mode, res.Iterations, res.TotalWall.Round(time.Millisecond),
		res.Recoveries, m.Get(metrics.Checkpoints), m.Get(metrics.FailuresDetected))

	out := map[int64]float64{}
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			out[r.Key.(int64)] = r.Value.(float64)
		}
	}
	return out
}

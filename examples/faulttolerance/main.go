// Fault tolerance demo (paper §3.4.1): a PageRank run checkpoints its
// state to the DFS every two iterations; halfway through, one worker is
// killed. The master re-places the lost task pairs on the surviving
// workers, rolls every task back to the last durable checkpoint, and the
// computation finishes with exactly the same ranks a failure-free run
// produces.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math"
	"sync/atomic"
	"time"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

func main() {
	g := graph.Generate(graph.GenConfig{Nodes: 8000, Degree: graph.PageRankDegree, Seed: 3})
	const iters = 12

	clean := run(g, iters, false)
	faulty := run(g, iters, true)

	var maxDiff float64
	for k, v := range clean {
		if d := math.Abs(v - faulty[k]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax rank difference between clean and failure run: %.3g\n", maxDiff)
	if maxDiff < 1e-9 {
		fmt.Println("recovery reproduced the failure-free result exactly")
	}
}

func run(g *graph.Graph, iters int, injectFailure bool) map[int64]float64 {
	spec := cluster.Uniform(4)
	m := metrics.NewSet()
	fs := dfs.New(dfs.DefaultConfig(), spec.IDs(), m)
	eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := pagerank.WriteInputs(fs, "worker-0", g, "/static", "/state"); err != nil {
		log.Fatal(err)
	}
	job := pagerank.IMRJob(pagerank.IMRConfig{
		Name: fmt.Sprintf("pr-ft-%v", injectFailure), Nodes: g.N,
		StaticPath: "/static", StatePath: "/state",
		MaxIter: iters, Checkpoint: 2,
	})
	// Pace the reduce slightly so the failure lands mid-run.
	base := job.Reduce
	var paced atomic.Int64
	job.Reduce = func(key any, states []any) (any, error) {
		if paced.Add(1)%500 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return base(key, states)
	}

	if injectFailure {
		go func() {
			for {
				time.Sleep(5 * time.Millisecond)
				if err := eng.FailWorker("worker-2"); err == nil {
					fmt.Println("worker-2 killed mid-run")
					return
				}
			}
		}()
	}

	res, err := eng.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	label := "clean run"
	if injectFailure {
		label = "failure run"
	}
	fmt.Printf("%s: %d iterations in %v, recoveries=%d, checkpoints=%d\n",
		label, res.Iterations, res.TotalWall.Round(time.Millisecond),
		res.Recoveries, m.Get(metrics.Checkpoints))

	out := map[int64]float64{}
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			out[r.Key.(int64)] = r.Value.(float64)
		}
	}
	return out
}

// Matrix power with multiple map-reduce phases per iteration (paper
// §5.2): phase 1 groups the iterated matrix N by join key, phase 2 joins
// it with the static multiplicand M and multiplies; AddSuccessor chains
// the two phases into one iMapReduce loop. The result is checked against
// direct multiplication.
//
//	go run ./examples/matrixpower
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"imapreduce/internal/algorithms/matpower"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

func main() {
	const n, iters = 48, 4 // computes M^(iters+1)
	m := matpower.Random(n, 11)

	spec := cluster.Uniform(3)
	ms := metrics.NewSet()
	fs := dfs.New(dfs.DefaultConfig(), spec.IDs(), ms)
	eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, ms, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := matpower.WriteInputs(fs, "worker-0", m, "/static", "/state"); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Run(matpower.IMRJob(matpower.IMRConfig{
		Name: "matpower", StaticPath: "/static", StatePath: "/state", MaxIter: iters,
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed M^%d for a %dx%d matrix in %v (%d iterations, 2 phases each)\n",
		iters+1, n, n, res.TotalWall.Round(time.Millisecond), res.Iterations)

	// Verify against the sequential reference.
	want := m.Pow(iters + 1)
	var maxErr float64
	got := map[int64]float64{}
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			got[r.Key.(int64)] = r.Value.(float64)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			diff := math.Abs(got[matpower.Pack(int32(i), int32(j))] - want.At(i, j))
			if diff > maxErr {
				maxErr = diff
			}
		}
	}
	fmt.Printf("max |engine - direct| = %.3g over %d entries\n", maxErr, n*n)
	fmt.Printf("trace of M^%d: %.6f\n", iters+1, trace(got, n))
	fmt.Printf("intermediate shuffle: %.1f MB across the two phases\n",
		float64(ms.Get(metrics.ShuffleBytes))/(1<<20))
}

func trace(m map[int64]float64, n int) float64 {
	var t float64
	for i := 0; i < n; i++ {
		t += m[matpower.Pack(int32(i), int32(i))]
	}
	return t
}

// Jacobi method for Ax = b (paper §5.1's first broadcast example):
// x(k+1) = D⁻¹(b − R·x(k)). Every mapper needs the whole iterated
// vector, so the reduce output is broadcast one-to-all; the static data
// (matrix rows and right-hand side) stays partitioned and local.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"time"

	"imapreduce/internal/algorithms/jacobi"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

func main() {
	const n = 200
	sys := jacobi.RandomDiagDominant(n, 4)

	spec := cluster.Uniform(4)
	m := metrics.NewSet()
	fs := dfs.New(dfs.DefaultConfig(), spec.IDs(), m)
	eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := jacobi.WriteInputs(fs, "worker-0", sys, "/j/rows", "/j/x"); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Run(jacobi.IMRJob(jacobi.IMRConfig{
		Name: "jacobi", StaticPath: "/j/rows", StatePath: "/j/x",
		MaxIter: 500, DistThreshold: 1e-10,
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved a %dx%d diagonally dominant system in %d iterations (%v)\n",
		n, n, res.Iterations, res.TotalWall.Round(time.Millisecond))

	// Check the residual against the exact solution.
	x := make([]float64, n)
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			x[r.Key.(int64)] = r.Value.(float64)
		}
	}
	fmt.Printf("max |Ax - b| = %.3g\n", jacobi.Residual(sys, x))
	exact, err := jacobi.Solve(sys)
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range x {
		if d := x[i] - exact[i]; d > maxDiff || -d > maxDiff {
			maxDiff = max(d, -d)
		}
	}
	fmt.Printf("max |x - x_direct| = %.3g (Gaussian elimination reference)\n", maxDiff)
	fmt.Printf("broadcast state traffic: %.1f MB (%.1f MB crossed workers)\n",
		float64(m.Get(metrics.StateBytes))/(1<<20), float64(m.Get(metrics.StateRemote))/(1<<20))
}

// K-means with the iMapReduce extensions (paper §5): one-to-all
// broadcast from reduces to maps, a map-side combiner to cut the point
// shuffle, and an auxiliary map-reduce phase that detects convergence
// (assignments stopped moving) in parallel with the main computation.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"time"

	"imapreduce/internal/algorithms/kmeans"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

func main() {
	points, cents := kmeans.Generate(kmeans.DataConfig{
		Users: 4000, Dim: 12, K: 6, Seed: 5, Spread: 0.7,
	})
	fmt.Printf("clustering %d points (%d dims) into %d clusters\n\n", len(points), 12, 6)

	// Fixed iterations, with and without the combiner (paper §5.1.3).
	plain := run(points, cents, kmeans.IMRConfig{Name: "km", MaxIter: 8})
	comb := run(points, cents, kmeans.IMRConfig{Name: "km-comb", MaxIter: 8, UseCombiner: true})
	fmt.Printf("8 fixed iterations:        %8v  shuffle %6.1f MB\n", plain.wall, plain.shuffleMB)
	fmt.Printf("8 iterations + combiner:   %8v  shuffle %6.1f MB (partial sums instead of raw points)\n\n",
		comb.wall, comb.shuffleMB)

	// Auxiliary convergence detection (paper §5.3): stop as soon as
	// fewer than 1% of the points change cluster.
	aux := run(points, cents, kmeans.IMRConfig{Name: "km-aux", MaxIter: 40, MoveThreshold: 40})
	fmt.Printf("aux convergence detection: %8v  stopped after %d iterations (converged=%v)\n",
		aux.wall, aux.iters, aux.converged)
	fmt.Println("\nfinal centroids:")
	for _, c := range aux.centroids {
		fmt.Printf("  cluster %v -> %.2f ...\n", c.key, c.head)
	}
}

type outcome struct {
	wall      time.Duration
	shuffleMB float64
	iters     int
	converged bool
	centroids []struct {
		key  any
		head float64
	}
}

func run(points, cents []kv.Pair, cfg kmeans.IMRConfig) outcome {
	spec := cluster.Uniform(3)
	m := metrics.NewSet()
	fs := dfs.New(dfs.DefaultConfig(), spec.IDs(), m)
	eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := kmeans.WriteInputs(fs, "worker-0", points, cents, "/points", "/cents"); err != nil {
		log.Fatal(err)
	}
	cfg.StaticPath, cfg.StatePath = "/points", "/cents"
	res, err := eng.Run(kmeans.IMRJob(cfg))
	if err != nil {
		log.Fatal(err)
	}
	out := outcome{
		wall:      res.TotalWall.Round(time.Millisecond),
		shuffleMB: float64(m.Get(metrics.ShuffleBytes)) / (1 << 20),
		iters:     res.Iterations,
		converged: res.Converged,
	}
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			out.centroids = append(out.centroids, struct {
				key  any
				head float64
			}{r.Key, r.Value.(kmeans.Point)[0]})
		}
	}
	return out
}

// Quickstart: PageRank in iMapReduce in under a minute.
//
// One imr.Cluster gives you the whole framework — a DFS, the transport,
// and both engines. We load a synthetic web graph once and run the
// paper's Fig. 3 PageRank job: persistent tasks, separated static/state
// data, asynchronous map execution, distance-based termination.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/graph"
	"imapreduce/internal/imr"
	"imapreduce/internal/metrics"
)

func main() {
	// 1. A cluster: four workers, in-memory DFS, in-process transport
	// (set TCP: true for real sockets between tasks).
	c, err := imr.NewCluster(imr.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Data: a 10k-node web graph with the paper's degree
	// distribution, written to the DFS once — adjacency lists as the
	// static data, uniform initial ranks as the state data.
	g := graph.Generate(graph.GenConfig{Nodes: 10000, Degree: graph.PageRankDegree, Seed: 1})
	if err := c.Write("/pr/static", graph.StaticPairs(g), graph.AdjOps()); err != nil {
		log.Fatal(err)
	}
	if err := c.Write("/pr/state", pagerank.StatePairs(g.N), pagerank.StateOps()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N, g.Edges())

	// 3. The job: map/reduce/distance as in the paper's §3.5 API, with
	// the distance-based termination its example uses.
	job := pagerank.IMRJob(pagerank.IMRConfig{
		Name:          "quickstart-pagerank",
		Nodes:         g.N,
		StaticPath:    "/pr/static",
		StatePath:     "/pr/state",
		OutputPath:    "/pr/out",
		MaxIter:       50,
		DistThreshold: 0.001, // stop when the rank vector settles
	})

	// 4. Submit. One job, persistent tasks, iterations inside. Submit
	// returns a handle immediately; Result blocks for the outcome (use
	// Wait/Cancel/Status for finer control over a running job).
	h, err := c.Submit(context.Background(), imr.JobSpec{Iterative: job}, imr.SubmitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	r, err := h.Result()
	if err != nil {
		log.Fatal(err)
	}
	res := r.Iterative
	for _, it := range res.PerIter {
		fmt.Printf("  iteration %2d  distance %.6f  at %v\n",
			it.Iter, it.Dist, it.CompletedAt.Round(time.Millisecond))
	}
	fmt.Printf("converged=%v after %d iterations in %v (init %v)\n",
		res.Converged, res.Iterations, res.TotalWall.Round(time.Millisecond), res.InitTime.Round(time.Millisecond))

	// 5. Read the converged ranks back from the DFS, typed.
	out, err := imr.ReadAllAs[int64, float64](c, res.OutputPath)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		node int64
		rank float64
	}
	all := make([]ranked, 0, len(out))
	for k, v := range out {
		all = append(all, ranked{k, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank > all[j].rank })
	fmt.Println("top 5 nodes by rank:")
	for _, r := range all[:5] {
		fmt.Printf("  node %-6d rank %.6f\n", r.node, r.rank)
	}
	fmt.Printf("traffic: shuffled %.1f MB, state loop-back %.1f MB (all local: %d remote bytes)\n",
		float64(c.Metrics.Get(metrics.ShuffleBytes))/(1<<20),
		float64(c.Metrics.Get(metrics.StateBytes))/(1<<20),
		c.Metrics.Get(metrics.StateRemote))
}

GO ?= go

.PHONY: all build vet lint test race short race-short bench bench-smoke trace-smoke serve-smoke soak proc-smoke ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific type-aware static analysis (internal/lint via
# cmd/imrlint): no sends under locks, paired trace spans, no silently
# dropped transport/DFS errors, seeded determinism in the simulator,
# constant metric/trace names, no pooled-slab memory used after
# release, protocol emit/dispatch exhaustiveness, acyclic lock order,
# threaded contexts in blocking code, no deprecated-API callers, and
# errors.Is on sentinels. Exits non-zero on any finding not
# grandfathered in lint-baseline.json (the baseline can only shrink:
# regenerate with -write-baseline after paying debt down), and leaves
# a machine-readable report in lint-findings.json.
lint:
	$(GO) run ./cmd/imrlint -baseline lint-baseline.json -json-out lint-findings.json ./...

# Full suite, including the chaos tests. Every test target carries an
# explicit -timeout: the leaktest watchdog (internal/leaktest) panics
# with a goroutine dump well before these fire, so the go test deadline
# is the backstop, not the diagnosis.
test:
	$(GO) test -timeout 10m ./...

# Full suite under the race detector (the chaos suite must stay
# race-clean — it exercises concurrent fault injection on purpose).
race:
	$(GO) test -race -timeout 15m ./...

# Quick loop: skips the chaos suite (guarded by testing.Short).
short:
	$(GO) test -short -timeout 5m ./...

# Race-enabled quick loop: the short suite under the race detector.
race-short:
	$(GO) test -race -short -timeout 10m ./...

# Data-plane benchmarks: the kv hot paths with allocation stats, the
# engine-level shuffle/iteration benchmarks, then the JSON snapshot
# that cmd/imrbench writes for regression comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/kv ./internal/core
	$(GO) test -run '^$$' -bench 'Fig0[46]' -benchtime 3x .
	$(GO) run ./cmd/imrbench -bench BENCH_core.json

# One-iteration benchmark compile-and-run: catches bit-rot in every
# benchmark without paying for steady-state timing. The alloc-budget
# test then gates the pooled decode path: DecodePairsSlab must stay
# within single-digit allocations per 4096-pair chunk.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/kv ./internal/graph ./internal/mapreduce ./internal/core
	$(GO) test ./internal/kv -run TestDecodePairsAllocBudget -count=1 -timeout 2m

# Traced quick run: records a real SSSP job, exports Chrome trace JSON,
# validates it parses, and prints the factor decomposition.
trace-smoke:
	$(GO) run ./cmd/imrbench -trace /tmp/imr-trace.json

# Multi-tenant job-service smoke: the serve test suite (fair-share
# scheduling, quotas, cancel semantics, bit-identical concurrent
# outputs), then a short open-loop load-generation run that writes the
# arrival-rate vs latency saturation curve to BENCH_serve.json and
# fails on any dropped/failed job or a p99 above the bound.
serve-smoke:
	$(GO) test ./internal/serve -count=1 -timeout 5m
	$(GO) run ./cmd/imrbench -serve BENCH_serve.json -serve-max-p99 30s

# Seeded chaos soak: deterministic fault schedules (worker crash, stall,
# link partition, DFS node loss, full engine kill + resume) against
# SSSP/PageRank, asserting bit-identical output vs the fault-free run.
# SOAK_ITERS scales the schedule length; failures print the reproducing
# seed. The -timeout sits far above the soak tests' own 5-minute
# leaktest watchdogs, which fire first with a goroutine dump.
SOAK_ITERS ?= 12
soak:
	$(GO) test ./internal/experiments -run 'TestSoak' -count=1 -v -timeout 15m -soak.iters=$(SOAK_ITERS)

# Real-binary cluster smoke: builds imrmaster/imrworker, runs
# 1-master/3-worker PageRank and SSSP over loopback TCP with a kill -9
# schedule (worker SIGKILL mid-iteration; master SIGKILL + relaunch
# with -resume), and diffs the canonical output byte-for-byte against
# the in-process engine. Guarded by the procsmoke build tag so the
# ordinary test sweep never forks processes.
proc-smoke:
	$(GO) test -tags procsmoke ./internal/proctest -run TestProc -count=1 -v -timeout 10m

ci: vet lint build race-short bench-smoke trace-smoke serve-smoke soak proc-smoke

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build vet test race short ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite, including the chaos tests.
test:
	$(GO) test ./...

# Full suite under the race detector (the chaos suite must stay
# race-clean — it exercises concurrent fault injection on purpose).
race:
	$(GO) test -race ./...

# Quick loop: skips the chaos suite (guarded by testing.Short).
short:
	$(GO) test -short ./...

ci: vet build race

clean:
	$(GO) clean ./...

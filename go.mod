module imapreduce

go 1.24

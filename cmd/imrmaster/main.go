// Command imrmaster is the master half of the out-of-process cluster:
// it owns the durable DFS image, admits imrworker processes on a fixed
// control address, deploys a registry job onto them, and coordinates
// the run — checkpoints, rollback recovery, migration — across process
// boundaries.
//
// Usage:
//
//	imrmaster -listen 127.0.0.1:7070 -data /tmp/imr -workers 3 -job pagerank -param name=pr
//	imrmaster -listen 127.0.0.1:7070 -data /tmp/imr -workers 3 -job pagerank -param name=pr -resume
//
// A fresh invocation seeds the job's input into the image and runs from
// iteration zero. With -resume the image is reopened instead: the run
// restarts from the newest durable checkpoint manifest, re-admitting
// the surviving workers that are still knocking on the control address.
// SIGINT/SIGTERM abort the run gracefully (workers are told to drop
// their tasks; the image keeps the last durable checkpoint).
//
// Progress lines ("ITER <n> ...") go to stdout as iterations commit —
// the process-level chaos harness keys its kill schedule off them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/jobs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// paramFlag collects repeated -param k=v flags.
type paramFlag map[string]string

func (p paramFlag) String() string { return fmt.Sprint(map[string]string(p)) }

func (p paramFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	p[k] = v
	return nil
}

func main() {
	params := paramFlag{}
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "control endpoint host:port workers dial")
		dataDir  = flag.String("data", "", "directory for the durable DFS image (required)")
		workers  = flag.Int("workers", 3, "worker processes to wait for before deploying")
		jobKey   = flag.String("job", "pagerank", "registry job to run: "+strings.Join(jobs.Keys(), " | "))
		resume   = flag.Bool("resume", false, "reopen the image and restart from the newest durable checkpoint")
		waitFor  = flag.Duration("wait", 60*time.Second, "how long to wait for worker registrations")
		hbEvery  = flag.Duration("heartbeat", time.Second, "worker heartbeat sweep interval")
		hbMisses = flag.Int("heartbeat-misses", 5, "silent intervals before a worker is declared dead")
		timeout  = flag.Duration("timeout", 2*time.Minute, "no-progress abort")
		outPath  = flag.String("out", "", "write the canonical sorted output to this local file")
	)
	flag.Var(params, "param", "job parameter key=value (repeatable)")
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "imrmaster: -data is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *listen, *dataDir, *workers, *jobKey, params, *resume,
		*waitFor, *hbEvery, *hbMisses, *timeout, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "imrmaster:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, listen, dataDir string, workers int, jobKey string,
	params map[string]string, resume bool, waitFor, hbEvery time.Duration,
	hbMisses int, timeout time.Duration, outPath string) error {

	cfg, err := dfs.ImageInDir(dataDir)
	if err != nil {
		return err
	}
	spec := cluster.Uniform(workers)
	m := metrics.NewSet()
	fs, err := dfs.Open(cfg, spec.IDs(), m)
	if err != nil {
		return err
	}

	dir := transport.NewDirectory()
	net := transport.NewTCPNetworkOpts(transport.TCPOptions{Resolver: dir.Resolve})
	defer net.Close()
	rc, err := core.NewRemoteCluster(net, dir, core.RemoteClusterOptions{Listen: listen})
	if err != nil {
		return err
	}
	defer rc.Close()
	hp, _ := net.ListenAddr(core.CtlMasterAddr)
	fmt.Printf("MASTER control=%s resume=%v\n", hp, resume)

	fsEp, err := net.Endpoint(core.DFSAddr)
	if err != nil {
		return err
	}
	svc := dfs.Serve(fs, fsEp)
	// Defers run LIFO: the endpoint must close before Wait, or Wait
	// blocks on a serve loop that nothing is stopping.
	defer func() { fsEp.Close(); svc.Wait() }()
	if dhp, ok := net.ListenAddr(core.DFSAddr); ok {
		dir.Set(core.DFSAddr, dhp)
	}

	eng, err := core.NewEngine(fs, net, spec, m, core.Options{
		Timeout:           timeout,
		HeartbeatInterval: hbEvery,
		HeartbeatMisses:   hbMisses,
		OnIteration: func(info core.IterInfo) {
			fmt.Printf("ITER %d dist=%v wall=%v\n", info.Iter, info.Dist, info.CompletedAt.Round(time.Millisecond))
		},
	})
	if err != nil {
		return err
	}
	eng.AttachRemote(rc)

	wctx, cancel := context.WithTimeout(ctx, waitFor)
	ids, err := rc.WaitForWorkers(wctx, workers)
	cancel()
	if err != nil {
		return fmt.Errorf("waiting for %d workers: %w", workers, err)
	}
	fmt.Printf("WORKERS %s\n", strings.Join(ids, " "))

	if !resume {
		if err := jobs.Seed(fs, spec.IDs()[0], jobKey, params); err != nil {
			return fmt.Errorf("seed %s: %w", jobKey, err)
		}
	}
	job, err := jobs.Build(jobKey, params)
	if err != nil {
		return err
	}

	var res *core.Result
	if resume {
		res, err = eng.ResumeCtx(ctx, job)
	} else {
		res, err = eng.RunCtx(ctx, job)
	}
	if err != nil {
		return err
	}
	fmt.Printf("DONE iters=%d converged=%v recoveries=%d wall=%v\n",
		res.Iterations, res.Converged, res.Recoveries, res.TotalWall.Round(time.Millisecond))

	if outPath != "" {
		if err := dumpOutput(fs, spec.IDs()[0], res.OutputPath, outPath); err != nil {
			return err
		}
		fmt.Printf("OUTPUT %s\n", outPath)
	}
	return nil
}

// dumpOutput flattens the run's output partitions into one canonical
// local file: "key<TAB>value" lines sorted by key string. Go's %v float
// formatting is shortest-roundtrip, so two bit-identical runs produce
// byte-identical files.
func dumpOutput(fs *dfs.DFS, at, outDir, path string) error {
	var recs []kv.Pair
	for _, f := range fs.List(outDir + "/") {
		pairs, err := fs.ReadFile(f, at)
		if err != nil {
			return fmt.Errorf("read output %s: %w", f, err)
		}
		recs = append(recs, pairs...)
	}
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = fmt.Sprintf("%v\t%v", r.Key, r.Value)
	}
	sort.Strings(lines)
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// Command imrgen generates the synthetic datasets the experiments run
// on: the paper's catalog graphs (Tables 1–2) in the text interchange
// format, custom log-normal graphs, and K-means point sets.
//
// Usage:
//
//	imrgen -list
//	imrgen -dataset dblp -scale 100 -out dblp.txt
//	imrgen -kind sssp -nodes 50000 -seed 7 -out g.txt
//	imrgen -kind pagerank -nodes 50000 -out g.txt
//	imrgen -kind points -users 5000 -dim 16 -k 8 -out pts.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"imapreduce/internal/algorithms/kmeans"
	"imapreduce/internal/graph"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the paper's dataset catalog and exit")
		dataset = flag.String("dataset", "", "catalog dataset name (dblp, facebook, sssp-s/m/l, google, berkstan, pagerank-s/m/l)")
		scale   = flag.Int("scale", graph.DefaultScale, "divide the paper's node counts by this factor")
		kind    = flag.String("kind", "", "custom dataset kind: sssp | pagerank | points")
		nodes   = flag.Int("nodes", 10000, "node count for custom graphs")
		seed    = flag.Int64("seed", 1, "generator seed")
		users   = flag.Int("users", 1000, "points: number of points")
		dim     = flag.Int("dim", 8, "points: dimensions")
		k       = flag.Int("k", 5, "points: cluster count")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-6s %-10s %-12s %s\n", "NAME", "TABLE", "NODES", "EDGES(paper)", "KIND")
		for _, d := range graph.Catalog(*scale) {
			kind := "pagerank (unweighted)"
			if d.Table == 1 {
				kind = "sssp (weighted)"
			}
			fmt.Printf("%-12s %-6d %-10d %-12d %s\n", d.Name, d.Table, d.Nodes, d.PaperEdges, kind)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch {
	case *dataset != "":
		d, err := graph.ByName(*dataset, *scale)
		if err != nil {
			fatal(err)
		}
		g := d.Build()
		if err := graph.Save(w, g); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "imrgen: %s at scale 1/%d: %d nodes, %d edges\n", d.Name, *scale, g.N, g.Edges())

	case *kind == "sssp" || *kind == "pagerank":
		cfg := graph.GenConfig{Nodes: *nodes, Seed: *seed}
		if *kind == "sssp" {
			cfg.Degree, cfg.Weighted, cfg.Weight = graph.SSSPDegree, true, graph.SSSPWeight
		} else {
			cfg.Degree = graph.PageRankDegree
		}
		g := graph.Generate(cfg)
		if err := graph.Save(w, g); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "imrgen: %s graph: %d nodes, %d edges\n", *kind, g.N, g.Edges())

	case *kind == "points":
		points, cents := kmeans.Generate(kmeans.DataConfig{Users: *users, Dim: *dim, K: *k, Seed: *seed})
		for _, p := range points {
			writePoint(w, p.Key.(int64), p.Value.(kmeans.Point))
		}
		fmt.Fprintf(os.Stderr, "imrgen: %d points in %d dims around %d centers; initial centroids:\n", *users, *dim, *k)
		for _, c := range cents {
			var sb strings.Builder
			writePoint(&sb, c.Key.(int64), c.Value.(kmeans.Point))
			fmt.Fprint(os.Stderr, "  ", sb.String())
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writePoint(w interface{ WriteString(string) (int, error) }, id int64, p kmeans.Point) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d\t", id)
	for i, v := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%g", v)
	}
	sb.WriteByte('\n')
	w.WriteString(sb.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imrgen:", err)
	os.Exit(1)
}

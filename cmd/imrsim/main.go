// Command imrsim drives the EC2-scale cluster simulator directly:
// sweep cluster sizes, iteration counts and cost-model parameters for
// any catalog workload, printing per-iteration series, totals and
// traffic for both engines.
//
// Usage:
//
//	imrsim -workload sssp-l                       # 20 instances, 10 iterations
//	imrsim -workload pagerank-m -instances 20,50,80
//	imrsim -workload sssp-s -iters 20 -sync       # the sync-map variant
//	imrsim -workload sssp-m -factors              # Fig. 10 decomposition
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"imapreduce/internal/graph"
	"imapreduce/internal/simcluster"
)

func main() {
	var (
		workload  = flag.String("workload", "sssp-l", "catalog dataset (sssp-s/m/l, pagerank-s/m/l, dblp, facebook, google, berkstan)")
		instances = flag.String("instances", "20", "comma-separated cluster sizes")
		iters     = flag.Int("iters", 10, "iterations")
		sync      = flag.Bool("sync", false, "disable asynchronous map execution in the iMapReduce model")
		factors   = flag.Bool("factors", false, "print the factor decomposition (one-time init / static shuffle / async)")
		perIter   = flag.Bool("periter", false, "print per-iteration durations")
	)
	flag.Parse()

	d, err := graph.ByName(*workload, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imrsim:", err)
		os.Exit(2)
	}
	var w simcluster.Workload
	if d.Table == 1 {
		w = simcluster.SSSPWorkload(d)
	} else {
		w = simcluster.PageRankWorkload(d)
	}
	fmt.Printf("workload %s: %d nodes, %d edges, static %.1f MB\n\n",
		w.Name, w.Nodes, w.Edges, float64(w.StaticBytes)/(1<<20))

	sizes, err := parseInts(*instances)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imrsim:", err)
		os.Exit(2)
	}

	fmt.Printf("%-6s %-14s %-14s %-8s %-14s %-14s\n",
		"n", "MapReduce(s)", "iMapReduce(s)", "ratio", "MR comm(GB)", "iMR comm(GB)")
	for _, n := range sizes {
		p := simcluster.DefaultParams(n)
		mr := simcluster.SimulateMR(p, w, *iters)
		imr := simcluster.SimulateIMR(p, w, *iters, simcluster.IMROptions{SyncMap: *sync})
		ratio := fmt.Sprintf("%.1f%%", 100*imr.TotalSec/mr.TotalSec)
		fmt.Printf("%-6d %-14.1f %-14.1f %-8s %-14.1f %-14.1f\n",
			n, mr.TotalSec, imr.TotalSec, ratio,
			mr.CommMB/1024, imr.CommMB/1024)
		if *perIter {
			fmt.Printf("       MR per-iter:  %s\n", fmtSeries(mr.IterSec))
			fmt.Printf("       iMR per-iter: %s\n", fmtSeries(imr.IterSec))
		}
		if *factors {
			base := imr.TotalSec
			noInit := simcluster.SimulateIMR(p, w, *iters, simcluster.IMROptions{PerIterationInit: true, SyncMap: *sync}).TotalSec
			noStatic := simcluster.SimulateIMR(p, w, *iters, simcluster.IMROptions{ShuffleStatic: true, SyncMap: *sync}).TotalSec
			noAsync := simcluster.SimulateIMR(p, w, *iters, simcluster.IMROptions{SyncMap: true}).TotalSec
			fmt.Printf("       factors (share of MR time saved): one-time init %.1f%%, static shuffle %.1f%%, async %.1f%%\n",
				100*(noInit-base)/mr.TotalSec, 100*(noStatic-base)/mr.TotalSec, 100*(noAsync-base)/mr.TotalSec)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad instance count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fmtSeries(xs []float64) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f", x)
	}
	return b.String()
}

// Command imrrun executes an iterative graph algorithm on either engine
// over an in-process cluster and prints per-iteration timings, the
// traffic counters, and a sample of the result — the quickest way to see
// the two frameworks side by side on real data.
//
// Usage:
//
//	imrrun -algo pagerank -graph g.txt -engine imr -iters 10
//	imrrun -algo sssp -graph g.txt -engine both -source 0 -threshold 1e-9
//	imrrun -algo kmeans -points pts.txt -k 8 -iters 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"imapreduce/internal/algorithms/concomp"
	"imapreduce/internal/algorithms/kmeans"
	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/imr"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
)

func main() {
	var (
		algo      = flag.String("algo", "pagerank", "sssp | pagerank | concomp | kmeans")
		graphPath = flag.String("graph", "", "graph file in imrgen text format (sssp/pagerank)")
		pointsArg = flag.String("points", "", "point file in imrgen text format (kmeans)")
		k         = flag.Int("k", 8, "kmeans: cluster count")
		engine    = flag.String("engine", "imr", "imr | mr | both")
		iters     = flag.Int("iters", 10, "iteration bound")
		threshold = flag.Float64("threshold", 0, "distance threshold (0 = fixed iterations)")
		source    = flag.Int64("source", 0, "SSSP source node")
		workers   = flag.Int("workers", 4, "cluster size")
		tasks     = flag.Int("tasks", 0, "iMapReduce task pairs (0 = one per worker)")
		sync      = flag.Bool("sync", false, "disable asynchronous map execution")
		tcp       = flag.Bool("tcp", false, "use real TCP sockets between tasks")
		sample    = flag.Int("sample", 5, "result records to print")
		traceRun  = flag.Bool("trace", false, "record events and print the per-iteration factor decomposition (imr engine)")
		resume    = flag.Bool("resume", false, "kill the whole engine mid-run, then cold-restart a fresh engine over the same DFS from the newest durable checkpoint (imr engine)")
		ckpt      = flag.Int("ckpt", 2, "checkpoint every N iterations (imr engine, used by -resume)")
	)
	flag.Parse()
	if *algo == "kmeans" {
		if *pointsArg == "" {
			fmt.Fprintln(os.Stderr, "imrrun: -points is required for kmeans (generate with imrgen -kind points)")
			os.Exit(2)
		}
		runKMeans(*pointsArg, *k, *iters, *workers, *engine)
		return
	}
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "imrrun: -graph is required (generate one with imrgen)")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, weighted=%v\n", g.N, g.Edges(), g.Weighted())
	if *algo == "sssp" && !g.Weighted() {
		fatal(fmt.Errorf("sssp needs a weighted graph"))
	}

	if *engine == "imr" || *engine == "both" {
		runIMR(g, *algo, *source, *iters, *threshold, *workers, *tasks, *sync, *tcp, *sample, *traceRun, *resume, *ckpt)
	}
	if *engine == "mr" || *engine == "both" {
		runMR(g, *algo, *source, *iters, *threshold, *workers, *sample)
	}
}

// newCluster builds the in-process cluster every mode runs over, with
// Hadoop-like scheduling overheads enabled so timings look realistic.
func newCluster(workers int, tcp bool, rec *trace.Recorder, copts *core.Options) *imr.Cluster {
	c, err := imr.NewCluster(imr.Options{
		Workers:           workers,
		TCP:               tcp,
		Trace:             rec,
		JobInitOverhead:   50 * time.Millisecond,
		TaskStartOverhead: 10 * time.Millisecond,
		Core:              copts,
	})
	if err != nil {
		fatal(err)
	}
	return c
}

func runIMR(g *graph.Graph, algo string, source int64, iters int, threshold float64, workers, tasks int, sync, tcp bool, sample int, traceRun, resume bool, ckpt int) {
	var rec *trace.Recorder
	if traceRun {
		rec = trace.NewRecorder(0)
	}
	copts := core.Options{Timeout: 10 * time.Minute}
	var iterNow atomic.Int64
	if resume {
		copts.OnIteration = func(it core.IterInfo) { iterNow.Store(int64(it.Iter)) }
	}
	c := newCluster(workers, tcp, rec, &copts)
	spec, m, fs := c.Spec, c.Metrics, c.FS
	var job *core.Job
	switch algo {
	case "sssp":
		if err := sssp.WriteInputs(fs, spec.IDs()[0], g, source, "/static", "/state"); err != nil {
			fatal(err)
		}
		job = sssp.IMRJob(sssp.IMRConfig{
			Name: "cli-sssp", StaticPath: "/static", StatePath: "/state",
			MaxIter: iters, DistThreshold: threshold, NumTasks: tasks, SyncMap: sync,
		})
	case "pagerank":
		if err := pagerank.WriteInputs(fs, spec.IDs()[0], g, "/static", "/state"); err != nil {
			fatal(err)
		}
		job = pagerank.IMRJob(pagerank.IMRConfig{
			Name: "cli-pagerank", Nodes: g.N, StaticPath: "/static", StatePath: "/state",
			MaxIter: iters, DistThreshold: threshold, NumTasks: tasks, SyncMap: sync,
		})
	case "concomp":
		if err := concomp.WriteInputs(fs, spec.IDs()[0], g, "/static", "/state"); err != nil {
			fatal(err)
		}
		if threshold <= 0 {
			threshold = 0.5 // stop when no label changes
		}
		job = concomp.IMRJob(concomp.IMRConfig{
			Name: "cli-concomp", StaticPath: "/static", StatePath: "/state",
			MaxIter: iters, DistThreshold: threshold, NumTasks: tasks,
		})
	default:
		fatal(fmt.Errorf("unknown algorithm %q", algo))
	}
	ctx := context.Background()
	var res *core.Result
	var err error
	if resume {
		// Crash-restart demo: checkpoint as we go, kill the run
		// (master and every task) halfway, then resubmit with
		// Resume set to cold-restart from the newest durable manifest.
		if job.CheckpointEvery <= 0 {
			job.CheckpointEvery = ckpt
		}
		target := int64(iters / 2)
		if target < 1 {
			target = 1
		}
		go func() {
			for iterNow.Load() < target {
				time.Sleep(time.Millisecond)
			}
			for c.KillRun() != nil {
				time.Sleep(time.Millisecond)
			}
		}()
		h, err2 := c.Submit(ctx, imr.JobSpec{Iterative: job}, imr.SubmitOptions{})
		if err2 != nil {
			fatal(err2)
		}
		_, err = h.Result()
		switch {
		case errors.Is(err, core.ErrKilled):
			fmt.Printf("run killed at iteration %d; cold-restarting from the newest durable checkpoint\n", iterNow.Load())
		case err != nil:
			fatal(err)
		default:
			fatal(fmt.Errorf("run finished before the kill landed; raise -iters"))
		}
		h, err = c.Submit(ctx, imr.JobSpec{Iterative: job}, imr.SubmitOptions{Resume: true})
		if err != nil {
			fatal(err)
		}
		var r *imr.JobResult
		r, err = h.Result()
		if r != nil {
			res = r.Iterative
		}
	} else {
		var h *imr.JobHandle
		h, err = c.Submit(ctx, imr.JobSpec{Iterative: job}, imr.SubmitOptions{})
		if err != nil {
			fatal(err)
		}
		var r *imr.JobResult
		r, err = h.Result()
		if r != nil {
			res = r.Iterative
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n=== iMapReduce (%s, sync=%v, tcp=%v, resumed=%v) ===\n", algo, sync, tcp, resume)
	fmt.Printf("%-6s %-12s %-12s\n", "iter", "cumulative", "distance")
	for _, it := range res.PerIter {
		fmt.Printf("%-6d %-12s %-12.6g\n", it.Iter, it.CompletedAt.Round(time.Millisecond), it.Dist)
	}
	fmt.Printf("init %v, total %v, converged=%v, iterations=%d\n",
		res.InitTime.Round(time.Millisecond), res.TotalWall.Round(time.Millisecond), res.Converged, res.Iterations)
	fmt.Printf("traffic: shuffle=%s (remote %s), state=%s (remote %s)\n",
		mb(m.Get(metrics.ShuffleBytes)), mb(m.Get(metrics.ShuffleRemote)),
		mb(m.Get(metrics.StateBytes)), mb(m.Get(metrics.StateRemote)))
	if rec != nil {
		fmt.Printf("\nper-iteration factor decomposition (Fig. 10 factors):\n")
		trace.Decompose(rec.Events()).WriteTable(os.Stdout)
		if d := rec.Dropped(); d > 0 {
			fmt.Printf("note: ring overflow dropped the %d oldest events\n", d)
		}
	}
	printSample(fs, spec.IDs()[0], res.OutputPath, sample, numeric)
}

// numeric renders any scalar state value as float64 for display.
func numeric(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	default:
		return 0
	}
}

func runMR(g *graph.Graph, algo string, source int64, iters int, threshold float64, workers, sample int) {
	c := newCluster(workers, false, nil, nil)
	spec, m, fs := c.Spec, c.Metrics, c.FS
	var spec2 mapreduce.IterSpec
	switch algo {
	case "sssp":
		if err := fs.WriteFile("/in", spec.IDs()[0], sssp.CombinedPairs(g, source), sssp.CombinedOps()); err != nil {
			fatal(err)
		}
		spec2 = sssp.MRSpec("cli-sssp-mr", "/in", "/work", workers, iters, threshold)
	case "pagerank":
		if err := fs.WriteFile("/in", spec.IDs()[0], pagerank.CombinedPairs(g), pagerank.CombinedOps()); err != nil {
			fatal(err)
		}
		spec2 = pagerank.MRSpec("cli-pagerank-mr", "/in", "/work", g.N, workers, iters, threshold)
	case "concomp":
		if err := fs.WriteFile("/in", spec.IDs()[0], concomp.CombinedPairs(g), concomp.CombinedOps()); err != nil {
			fatal(err)
		}
		if threshold <= 0 {
			threshold = 0.5
		}
		spec2 = concomp.MRSpec("cli-concomp-mr", "/in", "/work", workers, iters, threshold)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", algo))
	}
	h, err := c.Submit(context.Background(), imr.JobSpec{Chain: &spec2}, imr.SubmitOptions{})
	if err != nil {
		fatal(err)
	}
	r, err := h.Result()
	if err != nil {
		fatal(err)
	}
	res := r.Chain
	fmt.Printf("\n=== MapReduce baseline (%s) ===\n", algo)
	fmt.Printf("%-6s %-12s %-12s %-12s\n", "iter", "cumulative", "ex-init", "distance")
	for _, st := range res.Stats {
		fmt.Printf("%-6d %-12s %-12s %-12.6g\n", st.Iteration,
			st.CumulativeWall.Round(time.Millisecond), st.CumulativeExInit.Round(time.Millisecond), st.Distance)
	}
	fmt.Printf("total %v, converged=%v, iterations=%d, jobs=%d\n",
		res.TotalWall.Round(time.Millisecond), res.Converged, res.Iterations, m.Get(metrics.JobsLaunched))
	fmt.Printf("traffic: shuffle=%s (remote %s)\n",
		mb(m.Get(metrics.ShuffleBytes)), mb(m.Get(metrics.ShuffleRemote)))
	printSample(fs, spec.IDs()[0], res.OutputPath, sample, func(v any) float64 {
		return numeric(v.(mapreduce.IterValue).State)
	})
}

func printSample(fs *dfs.DFS, at, dir string, n int, val func(any) float64) {
	var recs []kv.Pair
	for _, p := range fs.List(dir + "/") {
		rs, err := fs.ReadFile(p, at)
		if err != nil {
			fatal(err)
		}
		recs = append(recs, rs...)
	}
	sort.Slice(recs, func(i, j int) bool { return val(recs[i].Value) > val(recs[j].Value) })
	if n > len(recs) {
		n = len(recs)
	}
	fmt.Printf("top %d results:\n", n)
	for _, r := range recs[:n] {
		fmt.Printf("  node %v: %.6g\n", r.Key, val(r.Value))
	}
}

// runKMeans clusters a point file on one or both engines.
func runKMeans(pointsPath string, k, iters, workers int, engine string) {
	f, err := os.Open(pointsPath)
	if err != nil {
		fatal(err)
	}
	points, err := kmeans.LoadPoints(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	cents := kmeans.RandomInitCentroids(points, k, 1)
	fmt.Printf("%d points, %d dims, k=%d\n", len(points), len(points[0].Value.(kmeans.Point)), k)

	if engine == "imr" || engine == "both" {
		c := newCluster(workers, false, nil, &core.Options{Timeout: 10 * time.Minute})
		spec, m, fs := c.Spec, c.Metrics, c.FS
		if err := kmeans.WriteInputs(fs, spec.IDs()[0], points, cents, "/points", "/cents"); err != nil {
			fatal(err)
		}
		h, err := c.Submit(context.Background(), imr.JobSpec{Iterative: kmeans.IMRJob(kmeans.IMRConfig{
			Name: "cli-kmeans", StaticPath: "/points", StatePath: "/cents", MaxIter: iters,
		})}, imr.SubmitOptions{})
		if err != nil {
			fatal(err)
		}
		r, err := h.Result()
		if err != nil {
			fatal(err)
		}
		res := r.Iterative
		fmt.Printf("\n=== iMapReduce (kmeans, one2all broadcast) ===\n")
		fmt.Printf("%d iterations in %v (init %v); shuffle %s\n",
			res.Iterations, res.TotalWall.Round(time.Millisecond), res.InitTime.Round(time.Millisecond),
			mb(m.Get(metrics.ShuffleBytes)))
		printCentroids(fs, spec.IDs()[0], res.OutputPath)
	}
	if engine == "mr" || engine == "both" {
		c := newCluster(workers, false, nil, nil)
		spec, m, fs := c.Spec, c.Metrics, c.FS
		if err := fs.WriteFile("/points", spec.IDs()[0], points, kmeans.PointOps()); err != nil {
			fatal(err)
		}
		start := time.Now()
		// kmeans.RunMR is a bespoke driver loop, not an IterSpec chain,
		// so it runs on the baseline engine directly.
		res, err := kmeans.RunMR(c.MapReduceEngine(), kmeans.MRConfig{
			Name: "cli-kmeans-mr", PointsPath: "/points", WorkDir: "/work",
			Centroids: cents, NumReduce: workers, MaxIter: iters,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n=== MapReduce baseline (kmeans) ===\n")
		fmt.Printf("%d iterations in %v (%d jobs); shuffle %s\n",
			res.Iterations, time.Since(start).Round(time.Millisecond), m.Get(metrics.JobsLaunched),
			mb(m.Get(metrics.ShuffleBytes)))
		for _, c := range res.Centroids {
			fmt.Printf("  centroid %v: %.3f ...\n", c.Key, c.Value.(kmeans.Point)[0])
		}
	}
}

func printCentroids(fs *dfs.DFS, at, dir string) {
	for _, p := range fs.List(dir + "/") {
		recs, err := fs.ReadFile(p, at)
		if err != nil {
			fatal(err)
		}
		for _, r := range recs {
			fmt.Printf("  centroid %v: %.3f ...\n", r.Key, r.Value.(kmeans.Point)[0])
		}
	}
}

func mb(b int64) string { return fmt.Sprintf("%.1fMB", float64(b)/(1<<20)) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imrrun:", err)
	os.Exit(1)
}

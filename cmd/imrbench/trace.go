package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"imapreduce/internal/experiments"
	"imapreduce/internal/trace"
)

// runTrace executes one quick SSSP job with the event recorder on,
// writes the run as Chrome trace_event JSON (load into
// chrome://tracing or Perfetto), validates that the written file
// parses back, and prints the per-iteration factor decomposition.
func runTrace(path string, cfg experiments.Config) error {
	rec := trace.NewRecorder(0)
	res, err := experiments.TracedRun(cfg, "dblp", "sssp", cfg.SSSPIters, rec)
	if err != nil {
		return err
	}
	events := rec.Events()

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, events); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	// Re-read and validate: the export must be well-formed JSON with at
	// least one slice per task pair.
	written, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var parsed []map[string]any
	if err := json.Unmarshal(written, &parsed); err != nil {
		return fmt.Errorf("trace %s does not parse: %w", path, err)
	}
	if len(parsed) == 0 {
		return fmt.Errorf("trace %s is empty", path)
	}

	fmt.Printf("traced sssp/dblp: %d iterations in %v, %d events (%d dropped), %d chrome records -> %s\n",
		res.Iterations, res.TotalWall, len(events), rec.Dropped(), len(parsed), path)
	fmt.Printf("\nper-iteration factor decomposition (Fig. 10 factors):\n")
	trace.Decompose(events).WriteTable(os.Stdout)
	return nil
}

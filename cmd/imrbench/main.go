// Command imrbench regenerates the paper's tables and figures: the
// local-cluster experiments run the real engines, the EC2-scale
// experiments run the calibrated cluster simulator. Output is one text
// table per figure with notes comparing against the paper's numbers.
//
// Usage:
//
//	imrbench                  # everything, default configuration
//	imrbench -fig fig08,fig11 # selected experiments
//	imrbench -quick           # small/fast configuration
//	imrbench -scale 50        # larger datasets (paper/50)
//	imrbench -bench out.json  # data-plane benchmark snapshot (JSON)
//	imrbench -bench out.json -pprof prof/  # plus CPU/heap profiles per scenario
//	imrbench -trace out.json  # traced quick SSSP run, Chrome trace JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"imapreduce/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "comma-separated experiment ids (table1, table2, fig04..fig20) or 'all'")
		quick   = flag.Bool("quick", false, "use the small/fast configuration")
		scale   = flag.Int("scale", 0, "override dataset scale divisor")
		workers = flag.Int("workers", 0, "override local cluster size")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csvDir  = flag.String("csv", "", "also write each figure's series as CSV into this directory")
		bench   = flag.String("bench", "", "run the data-plane benchmark suite at the quick configuration and write results as JSON to this path")
		pprofTo = flag.String("pprof", "", "with -bench: write per-scenario CPU and heap pprof profiles into this directory")
		traceTo = flag.String("trace", "", "run a traced quick SSSP job, write Chrome trace_event JSON to this path, and print the factor decomposition")
		serveTo = flag.String("serve", "", "run the multi-tenant job-service load generator and write the arrival-rate vs latency saturation curve as JSON to this path")
		servP99 = flag.Duration("serve-max-p99", 30*time.Second, "with -serve: fail if any rate point's p99 latency exceeds this bound (0 disables)")
	)
	flag.Parse()

	if *serveTo != "" {
		if err := runServeBench(*serveTo, *servP99); err != nil {
			fmt.Fprintln(os.Stderr, "imrbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	if *bench != "" {
		cfg := experiments.Quick()
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *workers > 0 {
			cfg.Workers = *workers
		}
		cfg.ProfileDir = *pprofTo
		if err := runBench(*bench, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "imrbench:", err)
			os.Exit(1)
		}
		return
	}

	if *traceTo != "" {
		cfg := experiments.Quick()
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *workers > 0 {
			cfg.Workers = *workers
		}
		if err := runTrace(*traceTo, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "imrbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	var ids []string
	if *fig == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*fig, ",")
	}

	failed := 0
	for _, id := range ids {
		run, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "imrbench:", err)
			failed++
			continue
		}
		figOut, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imrbench: %s: %v\n", id, err)
			failed++
			continue
		}
		figOut.Render(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "imrbench:", err)
				failed++
				continue
			}
			if err := figOut.WriteCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "imrbench: %s: csv: %v\n", id, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"imapreduce/internal/imr"
	"imapreduce/internal/jobs"
	"imapreduce/internal/serve"
)

// serveFile is the BENCH_serve.json layout: the saturation curve of the
// multi-tenant job service — arrival rate vs latency percentiles.
// Baseline is preserved verbatim across runs, like BENCH_core.json.
type serveFile struct {
	Config   string            `json:"config"`
	Baseline json.RawMessage   `json:"baseline,omitempty"`
	Slots    int               `json:"slots"`
	SoloMs   float64           `json:"solo_ms"`
	Results  []serve.LoadPoint `json:"results"`
}

// lgParams is the shared input definition every load-generated job
// reads (static/state files are read-only, so all jobs share them).
var lgParams = map[string]string{
	"name": "lgin", "nodes": "64", "maxiter": "3", "ckpt": "0",
}

// lgJob builds one load-generation job over the shared input with a
// collision-free name and output path.
func lgJob(tenant string, i int) (imr.JobSpec, imr.SubmitOptions, error) {
	job, err := jobs.Build("pagerank", lgParams)
	if err != nil {
		return imr.JobSpec{}, imr.SubmitOptions{}, err
	}
	job.Name = fmt.Sprintf("lg-%d", i)
	job.OutputPath = fmt.Sprintf("%s/lg-%d/out", serve.TenantRoot(tenant), i)
	return imr.JobSpec{Iterative: job}, imr.SubmitOptions{}, nil
}

// runServeBench drives the open-loop load generator against a 4-slot
// service: it calibrates the solo job duration, sweeps arrival rates
// from well below to twice the implied capacity, writes the saturation
// curve to path, and enforces the smoke gates (no drops, no failures,
// p99 under maxP99 when set).
func runServeBench(path string, maxP99 time.Duration) error {
	const slots = 4
	c, err := imr.NewCluster(imr.Options{Workers: 4})
	if err != nil {
		return err
	}
	if err := jobs.Seed(c.FS, c.Spec.IDs()[0], "pagerank", lgParams); err != nil {
		return err
	}

	// Calibration: one solo run of the exact job the generator submits.
	spec, _, err := lgJob("cal", -1)
	if err != nil {
		return err
	}
	soloStart := time.Now()
	h, err := c.Submit(context.Background(), spec, imr.SubmitOptions{})
	if err != nil {
		return err
	}
	if _, err := h.Result(); err != nil {
		return err
	}
	solo := time.Since(soloStart)
	if solo <= 0 {
		solo = time.Millisecond
	}
	capacity := float64(slots) / solo.Seconds() // jobs/sec at full slots

	s, err := serve.New(serve.Config{Cluster: c, Slots: slots, QueueLimit: 4096})
	if err != nil {
		return err
	}
	defer s.Close()

	var buildErr error
	points, err := serve.RunLoad(s, serve.LoadSpec{
		Rates:       []float64{0.25 * capacity, 0.5 * capacity, 1.0 * capacity, 2.0 * capacity},
		JobsPerRate: 16,
		Tenants:     []string{"alpha", "beta"},
		Make: func(tenant string, i int) (imr.JobSpec, imr.SubmitOptions) {
			spec, opts, err := lgJob(tenant, i)
			if err != nil && buildErr == nil {
				buildErr = err
			}
			return spec, opts
		},
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		return err
	}
	if buildErr != nil {
		return buildErr
	}

	out := serveFile{Config: "quick", Slots: slots, SoloMs: float64(solo) / float64(time.Millisecond), Results: points}
	if prev, err := os.ReadFile(path); err == nil {
		var old struct {
			Baseline json.RawMessage `json:"baseline"`
		}
		if json.Unmarshal(prev, &old) == nil {
			out.Baseline = old.Baseline
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("solo job: %.1f ms, capacity ~%.1f jobs/s at %d slots\n",
		out.SoloMs, capacity, slots)
	fmt.Printf("%10s %5s %5s %5s %5s %9s %9s %9s %9s\n",
		"rate/s", "jobs", "done", "rej", "fail", "p50 ms", "p95 ms", "p99 ms", "thru/s")
	for _, p := range points {
		fmt.Printf("%10.2f %5d %5d %5d %5d %9.1f %9.1f %9.1f %9.2f\n",
			p.RatePerSec, p.Jobs, p.Completed, p.Rejected, p.Failed,
			p.P50Ms, p.P95Ms, p.P99Ms, p.ThroughputPerSec)
	}

	// Smoke gates.
	for _, p := range points {
		if p.Rejected != 0 {
			return fmt.Errorf("serve bench: %d jobs rejected at rate %.2f/s (queue limit mis-sized)",
				p.Rejected, p.RatePerSec)
		}
		if p.Failed != 0 {
			return fmt.Errorf("serve bench: %d jobs failed at rate %.2f/s", p.Failed, p.RatePerSec)
		}
		if maxP99 > 0 && p.P99Ms > float64(maxP99)/float64(time.Millisecond) {
			return fmt.Errorf("serve bench: p99 %.1f ms at rate %.2f/s exceeds the %s gate",
				p.P99Ms, p.RatePerSec, maxP99)
		}
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"imapreduce/internal/experiments"
	"imapreduce/internal/kv"
)

// benchFile is the BENCH_core.json layout. Baseline is preserved
// verbatim across runs so a checked-in before-snapshot survives
// regeneration of the results.
type benchFile struct {
	Config   string                        `json:"config"`
	Baseline json.RawMessage               `json:"baseline,omitempty"`
	Results  []experiments.CoreBenchResult `json:"results"`
}

// runBench measures the data plane — the kv hot-path microbenchmarks
// plus full PageRank/SSSP jobs on both transports — and writes the
// snapshot to path.
func runBench(path string, cfg experiments.Config) error {
	results, err := microBench(cfg.ProfileDir)
	if err != nil {
		return err
	}
	engine, err := experiments.CoreBench(cfg, 2)
	if err != nil {
		return err
	}
	results = append(results, engine...)

	out := benchFile{Config: "quick", Results: results}
	if prev, err := os.ReadFile(path); err == nil {
		var old struct {
			Baseline json.RawMessage `json:"baseline"`
		}
		if json.Unmarshal(prev, &old) == nil {
			out.Baseline = old.Baseline
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-28s %12d ns/op", r.Name, r.NsPerOp)
		if r.AllocsPerOp != nil {
			fmt.Printf(" %10d B/op %8d allocs/op", r.BytesPerOp, *r.AllocsPerOp)
		}
		if r.ShuffleBytes > 0 {
			fmt.Printf(" %12d shuffle B", r.ShuffleBytes)
		}
		fmt.Println()
	}
	fmt.Println("wrote", path)
	return nil
}

// microBench times the kv hot paths (encode, decode, sort, group) on a
// duplicate-heavy int64→float64 workload via testing.Benchmark. The
// decode row measures the pooled slab path the engine actually runs;
// decodePairsHeap keeps the old allocating decoder for comparison. When
// profileDir is set each row also gets CPU and heap pprof dumps.
func microBench(profileDir string) ([]experiments.CoreBenchResult, error) {
	const n, keys = 4096, 512
	ops := kv.OpsFor[int64, float64](func(float64) int { return 8 })
	rng := rand.New(rand.NewSource(1))
	src := make([]kv.Pair, n)
	for i := range src {
		src[i] = kv.Pair{Key: int64(rng.Intn(keys)), Value: rng.Float64()}
	}
	enc, ok := kv.AppendPairs(nil, src)
	if !ok {
		panic("imrbench: builtin pairs must encode")
	}

	var results []experiments.CoreBenchResult
	run := func(name string, fn func(b *testing.B)) error {
		stopProf, err := experiments.StartProfiles(profileDir, name)
		if err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		stopProf()
		allocs := r.AllocsPerOp()
		results = append(results, experiments.CoreBenchResult{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: &allocs,
		})
		return nil
	}

	rows := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"kv/encodePairs/n=4096", func(b *testing.B) {
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf, _ = kv.AppendPairs(buf[:0], src)
			}
		}},
		{"kv/decodePairs/n=4096", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := kv.AcquireSlab()
				if _, _, err := kv.DecodePairsSlab(enc, s); err != nil {
					b.Fatal(err)
				}
				s.Release()
			}
		}},
		{"kv/decodePairsHeap/n=4096", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := kv.DecodePairs(enc); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"kv/sortPairs/n=4096", func(b *testing.B) {
			work := make([]kv.Pair, n)
			for i := 0; i < b.N; i++ {
				copy(work, src)
				ops.SortPairs(work)
			}
		}},
		{"kv/groupPairs/n=4096", func(b *testing.B) {
			work := make([]kv.Pair, n)
			for i := 0; i < b.N; i++ {
				copy(work, src)
				kv.GroupPairs(work, ops)
			}
		}},
	}
	for _, row := range rows {
		if err := run(row.name, row.fn); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Command imrworker is the worker half of the out-of-process cluster:
// it registers with an imrmaster over the control address, hosts
// whatever task pairs the master's plans assign, and keeps probing for
// master liveness — a vanished master tears the run down and re-enters
// the join loop, so a restarted `imrmaster -resume` finds this process
// already knocking.
//
// Usage:
//
//	imrworker -master 127.0.0.1:7070 -id worker-0
//
// SIGINT/SIGTERM deregister gracefully (the master re-places our pairs
// through its normal recovery path, minus the detection delay) and
// exit. Anything harsher — kill -9 included — is what the master's
// heartbeat deadline is for.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imapreduce/internal/core"
	"imapreduce/internal/jobs"
	"imapreduce/internal/metrics"
)

func main() {
	var (
		master     = flag.String("master", "", "master control host:port (required)")
		id         = flag.String("id", "", "stable worker identity, e.g. worker-0 (required)")
		listenHost = flag.String("listen-host", "127.0.0.1", "interface task endpoints bind")
		pingEvery  = flag.Duration("ping", 500*time.Millisecond, "master liveness probe interval")
		pingMisses = flag.Int("ping-misses", 6, "silent intervals before the master is declared lost")
	)
	flag.Parse()
	if *master == "" || *id == "" {
		fmt.Fprintln(os.Stderr, "imrworker: -master and -id are required")
		os.Exit(2)
	}

	host, err := core.NewWorkerHost(core.WorkerHostOptions{
		ID:           *id,
		MasterAddr:   *master,
		ListenHost:   *listenHost,
		Build:        jobs.Build,
		Metrics:      metrics.NewSet(),
		PingInterval: *pingEvery,
		PingMisses:   *pingMisses,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "imrworker:", err)
		os.Exit(1)
	}
	fmt.Printf("WORKER %s master=%s\n", *id, *master)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := host.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "imrworker:", err)
		os.Exit(1)
	}
}

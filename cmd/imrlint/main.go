// Command imrlint runs the project's static-analysis suite
// (internal/lint) over the given packages and exits non-zero on any
// finding. It is wired into `make lint` (and therefore `make ci`) so
// the invariants the analyzers encode — no sends under locks, paired
// trace spans, no silently dropped transport/DFS errors, seeded
// determinism in the simulator, constant metric names, no pooled-slab
// memory retained past its release — hold on every change.
//
// Usage:
//
//	imrlint [-json] [-tests] [-list] [packages]
//
// Packages are directories, optionally suffixed with /... for a
// recursive walk (default "./..."). Findings print as
//
//	file:line:col: [analyzer] message
//
// or, with -json, as a machine-readable array CI can diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"imapreduce/internal/lint"
)

// jsonFinding is the -json output shape; field names are part of the CI
// contract, keep them stable.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: imrlint [-json] [-tests] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(patterns, lint.LoadOptions{Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.All())

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "imrlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "imrlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

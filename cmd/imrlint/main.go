// Command imrlint runs the project's static-analysis suite
// (internal/lint) over the given packages and exits non-zero on any
// new finding. It is wired into `make lint` (and therefore `make ci`)
// so the invariants the analyzers encode — no sends under locks, paired
// trace spans, no silently dropped transport/DFS errors, seeded
// determinism in the simulator, constant metric names, no pooled-slab
// memory retained past its release, protocol exhaustiveness, acyclic
// lock order, threaded contexts, no deprecated-API callers, errors.Is
// on sentinels — hold on every change.
//
// Usage:
//
//	imrlint [-json] [-json-out file] [-tests] [-list]
//	        [-baseline file] [-write-baseline] [packages]
//
// Packages are directories, optionally suffixed with /... for a
// recursive walk (default "./..."). Findings print as
//
//	file:line:col: [analyzer] message
//
// or, with -json, as a machine-readable array CI can diff; -json-out
// writes the same array to a file alongside the human output.
//
// The baseline ratchet: -baseline FILE loads a set of grandfathered
// findings (the -json shape). Findings present in the baseline are
// reported but tolerated; anything NOT in the baseline fails the run.
// Matching ignores line and column — fixing unrelated code must not
// re-trip a grandfathered finding — and is multiset-counted per
// (file, analyzer, message), so a finding can only be duplicated by
// really introducing a second instance. When grandfathered findings
// disappear, the run says so: regenerate with -write-baseline to
// ratchet the debt down. It can only shrink — -write-baseline refuses
// to add new entries over an existing baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"imapreduce/internal/lint"
)

// jsonFinding is the -json output shape; field names are part of the CI
// contract, keep them stable.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineKey identifies a finding for ratchet matching: line numbers
// shift with every edit, so they are deliberately not part of the key.
type baselineKey struct {
	file     string
	analyzer string
	message  string
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	jsonFile := flag.String("json-out", "", "also write findings as JSON to this file")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	baseline := flag.String("baseline", "", "tolerate findings recorded in this JSON baseline; fail only on new ones")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite -baseline from the current findings (ratchet down only)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: imrlint [-json] [-json-out file] [-tests] [-list] [-baseline file] [-write-baseline] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(patterns, lint.LoadOptions{Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.All())

	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "imrlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if *jsonFile != "" {
		if err := writeJSON(*jsonFile, out); err != nil {
			fmt.Fprintf(os.Stderr, "imrlint: %v\n", err)
			os.Exit(2)
		}
	}

	if *baseline == "" {
		if len(findings) > 0 {
			if !*jsonOut {
				fmt.Fprintf(os.Stderr, "imrlint: %d finding(s)\n", len(findings))
			}
			os.Exit(1)
		}
		return
	}

	old, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrlint: %v\n", err)
		os.Exit(2)
	}
	budget := map[baselineKey]int{}
	for _, f := range old {
		budget[baselineKey{f.File, f.Analyzer, f.Message}]++
	}
	var fresh []jsonFinding
	for _, f := range out {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	stale := 0
	for _, n := range budget {
		stale += n
	}

	if *writeBaseline {
		if len(fresh) > 0 {
			fmt.Fprintf(os.Stderr,
				"imrlint: refusing to write baseline: %d new finding(s) — the ratchet only goes down; fix or suppress them instead\n",
				len(fresh))
			os.Exit(1)
		}
		if err := writeJSON(*baseline, out); err != nil {
			fmt.Fprintf(os.Stderr, "imrlint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "imrlint: baseline %s rewritten with %d finding(s)\n", *baseline, len(out))
		return
	}

	if stale > 0 {
		fmt.Fprintf(os.Stderr,
			"imrlint: %d baseline finding(s) no longer occur — run with -write-baseline to ratchet %s down\n",
			stale, *baseline)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "imrlint: %d new finding(s) not in baseline %s (%d grandfathered)\n",
			len(fresh), *baseline, len(out)-len(fresh))
		os.Exit(1)
	}
}

// readBaseline loads a baseline file; a missing file is an empty
// baseline, so bootstrapping a repo needs no special case.
func readBaseline(path string) ([]jsonFinding, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []jsonFinding
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

func writeJSON(path string, findings []jsonFinding) error {
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Package imapreduce is a from-scratch Go implementation of iMapReduce
// (Zhang, Gao, Gao, Wang — "iMapReduce: A Distributed Computing
// Framework for Iterative Computation", IPDPS Workshops 2011 / J. Grid
// Computing 2012), together with the Hadoop-like baseline engine and
// the substrates the paper evaluates it on.
//
// Start with README.md for an overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The runnable entry points live under
// examples/ and cmd/; the library packages live under internal/ with
// internal/core implementing the paper's contribution.
package imapreduce

package matpower

import (
	"math"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/enginetest"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

func TestPackUnpack(t *testing.T) {
	cases := [][2]int32{{0, 0}, {1, 2}, {1000, 999}, {1 << 20, 1<<20 + 1}}
	for _, c := range cases {
		i, j := Unpack(Pack(c[0], c[1]))
		if i != c[0] || j != c[1] {
			t.Fatalf("pack/unpack (%d,%d) -> (%d,%d)", c[0], c[1], i, j)
		}
	}
}

func TestDensePow(t *testing.T) {
	m := &Dense{N: 2, V: []float64{1, 1, 0, 1}}
	p := m.Pow(3)
	// [[1,1],[0,1]]^3 = [[1,3],[0,1]]
	want := []float64{1, 3, 0, 1}
	for i := range want {
		if math.Abs(p.V[i]-want[i]) > 1e-12 {
			t.Fatalf("pow: %v", p.V)
		}
	}
	if q := m.Pow(1); q != m {
		t.Fatal("Pow(1) should be identity on the input")
	}
}

func TestIMRMatrixPower(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	const n, iters = 12, 3 // result = M^(iters+1)
	m := Random(n, 31)
	if err := WriteInputs(env.FS, env.At(), m, "/mp/static", "/mp/state"); err != nil {
		t.Fatal(err)
	}
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "mp", StaticPath: "/mp/static", StatePath: "/mp/state", MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := m.Pow(iters + 1)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n*n {
		t.Fatalf("%d entries, want %d", len(out), n*n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := out[Pack(int32(i), int32(j))].(float64)
			if math.Abs(got-want.At(i, j)) > 1e-9 {
				t.Fatalf("(%d,%d): engine %v, reference %v", i, j, got, want.At(i, j))
			}
		}
	}
}

func TestMRMatrixPower(t *testing.T) {
	env, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	const n, iters = 10, 2
	m := Random(n, 32)
	if err := env.FS.WriteFile("/mp/m", env.At(), StatePairs(m), EntryOps()); err != nil {
		t.Fatal(err)
	}
	res, err := RunMR(env.MR, "mp-mr", "/mp/m", m, "/mp/work", 2, iters)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Pow(iters + 1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := res.Result[Pack(int32(i), int32(j))]
			if math.Abs(got-want.At(i, j)) > 1e-9 {
				t.Fatalf("(%d,%d): baseline %v, reference %v", i, j, got, want.At(i, j))
			}
		}
	}
	if len(res.Walls) != iters {
		t.Fatalf("wall stats: %d", len(res.Walls))
	}
}

// TestIMROnTCP pushes the Row/Col/Entry record types through the real
// socket transport (gob round trip).
func TestIMROnTCP(t *testing.T) {
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2}, spec.IDs(), m)
	eng, err := core.NewEngine(fs, transport.NewTCPNetwork(), spec, m, core.Options{Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	const n, iters = 6, 2
	mtx := Random(n, 41)
	if err := WriteInputs(fs, "worker-0", mtx, "/mp/static", "/mp/state"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(IMRJob(IMRConfig{
		Name: "mp-tcp", StaticPath: "/mp/static", StatePath: "/mp/state", MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := mtx.Pow(iters + 1)
	out := map[int64]float64{}
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			out[r.Key.(int64)] = r.Value.(float64)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(out[Pack(int32(i), int32(j))]-want.At(i, j)) > 1e-9 {
				t.Fatalf("tcp run diverged at (%d,%d)", i, j)
			}
		}
	}
}

func TestEnginesAgree(t *testing.T) {
	const n, iters = 8, 2
	m := Random(n, 33)

	envA, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInputs(envA.FS, envA.At(), m, "/mp/static", "/mp/state"); err != nil {
		t.Fatal(err)
	}
	resA, err := envA.Core.Run(IMRJob(IMRConfig{
		Name: "mp-a", StaticPath: "/mp/static", StatePath: "/mp/state", MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	outA, _ := envA.ReadDir(resA.OutputPath)

	envB, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := envB.FS.WriteFile("/mp/m", envB.At(), StatePairs(m), EntryOps()); err != nil {
		t.Fatal(err)
	}
	resB, err := RunMR(envB.MR, "mp-b", "/mp/m", m, "/mp/work", 2, iters)
	if err != nil {
		t.Fatal(err)
	}
	for k, a := range outA {
		if math.Abs(a.(float64)-resB.Result[k.(int64)]) > 1e-9 {
			t.Fatalf("engines disagree at %v", k)
		}
	}
}

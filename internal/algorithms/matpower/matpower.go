// Package matpower implements repeated matrix multiplication M^k (paper
// §5.2) with two map-reduce phases per iteration: phase 1 keys the
// iterated matrix N by column-group index j; phase 2 joins row j of N
// with column j of the static multiplicand M and emits the products,
// which phase 2's reduce sums into N' = M·N.
//
// Also provided: the baseline two-jobs-per-iteration MapReduce chain and
// a direct sequential reference.
package matpower

import (
	"fmt"
	"math/rand"

	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
)

// Pack encodes matrix coordinates (i, j) into one int64 key.
func Pack(i, j int32) int64 { return int64(i)<<32 | int64(uint32(j)) }

// Unpack reverses Pack.
func Unpack(key int64) (i, j int32) { return int32(key >> 32), int32(uint32(key)) }

// Entry is one (index, value) element of a row or column vector.
type Entry struct {
	K int32
	V float64
}

// Row is row j of the iterated matrix, the state record between phase 1
// and phase 2.
type Row struct {
	Entries []Entry
}

// Bytes implements kv.Sized.
func (r Row) Bytes() int { return 12*len(r.Entries) + 4 }

// Col is column j of the static multiplicand M.
type Col struct {
	Idx []int32
	Val []float64
}

// Bytes implements kv.Sized.
func (c Col) Bytes() int { return 12*len(c.Idx) + 4 }

func appendEntries(buf []byte, es []Entry) []byte {
	buf = kv.AppendUvarint(buf, uint64(len(es)))
	for _, e := range es {
		buf = kv.AppendFloat64(kv.AppendVarint(buf, int64(e.K)), e.V)
	}
	return buf
}

func entriesAt(data []byte) ([]Entry, int, error) {
	l, n, err := kv.Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if l == 0 {
		return nil, n, nil
	}
	out := make([]Entry, l)
	for i := range out {
		k, m, err := kv.Varint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		v, m, err := kv.Float64At(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		out[i] = Entry{K: int32(k), V: v}
	}
	return out, n, nil
}

func init() {
	kv.RegisterWireType(Entry{})
	kv.RegisterWireType(Row{})
	kv.RegisterWireType(Col{})
	kv.RegisterWireType([]Entry{})
	kv.RegisterValueCodec(Entry{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			e := v.(Entry)
			return kv.AppendFloat64(kv.AppendVarint(buf, int64(e.K)), e.V), true
		},
		Decode: func(data []byte) (any, int, error) {
			k, n, err := kv.Varint(data)
			if err != nil {
				return nil, 0, err
			}
			v, m, err := kv.Float64At(data[n:])
			if err != nil {
				return nil, 0, err
			}
			return Entry{K: int32(k), V: v}, n + m, nil
		},
	})
	kv.RegisterValueCodec(Row{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			return appendEntries(buf, v.(Row).Entries), true
		},
		Decode: func(data []byte) (any, int, error) {
			es, n, err := entriesAt(data)
			return Row{Entries: es}, n, err
		},
	})
	kv.RegisterValueCodec([]Entry{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			return appendEntries(buf, v.([]Entry)), true
		},
		Decode: func(data []byte) (any, int, error) {
			return entriesAt(data)
		},
	})
	kv.RegisterValueCodec(Col{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			c := v.(Col)
			return kv.AppendFloat64Slice(kv.AppendInt32Slice(buf, c.Idx), c.Val), true
		},
		Decode: func(data []byte) (any, int, error) {
			idx, n, err := kv.Int32SliceAt(data)
			if err != nil {
				return nil, 0, err
			}
			val, m, err := kv.Float64SliceAt(data[n:])
			if err != nil {
				return nil, 0, err
			}
			return Col{Idx: idx, Val: val}, n + m, nil
		},
	})
}

// Dense is a square matrix in row-major order.
type Dense struct {
	N int
	V []float64
}

// Random generates an N×N matrix with entries in [0, 1/N) so powers stay
// bounded.
func Random(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := &Dense{N: n, V: make([]float64, n*n)}
	for i := range m.V {
		m.V[i] = rng.Float64() / float64(n)
	}
	return m
}

// At returns m[i][j].
func (m *Dense) At(i, j int) float64 { return m.V[i*m.N+j] }

// Mul returns m·x.
func (m *Dense) Mul(x *Dense) *Dense {
	n := m.N
	out := &Dense{N: n, V: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			mik := m.V[i*n+k]
			if mik == 0 {
				continue
			}
			row := x.V[k*n:]
			outRow := out.V[i*n:]
			for j := 0; j < n; j++ {
				outRow[j] += mik * row[j]
			}
		}
	}
	return out
}

// Pow returns m^k (k ≥ 1) by repeated multiplication — the sequential
// reference.
func (m *Dense) Pow(k int) *Dense {
	cur := m
	for i := 1; i < k; i++ {
		cur = m.Mul(cur)
	}
	return cur
}

// EntryOps is the kv.Ops for packed-coordinate float records.
func EntryOps() kv.Ops { return kv.OpsFor[int64, float64](nil) }

// StatePairs flattens a matrix into (Pack(i,j) → value) records — the
// initial N = M.
func StatePairs(m *Dense) []kv.Pair {
	out := make([]kv.Pair, 0, m.N*m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			out = append(out, kv.Pair{Key: Pack(int32(i), int32(j)), Value: m.At(i, j)})
		}
	}
	return out
}

// StaticPairs builds M's columns keyed by column index — the static data
// joined at phase 2's map (§5.2.2).
func StaticPairs(m *Dense) []kv.Pair {
	out := make([]kv.Pair, m.N)
	for j := 0; j < m.N; j++ {
		c := Col{Idx: make([]int32, m.N), Val: make([]float64, m.N)}
		for i := 0; i < m.N; i++ {
			c.Idx[i] = int32(i)
			c.Val[i] = m.At(i, j)
		}
		out[j] = kv.Pair{Key: int64(j), Value: c}
	}
	return out
}

// WriteInputs stores the static columns of M and the initial state
// N = M.
func WriteInputs(fs *dfs.DFS, at string, m *Dense, staticPath, statePath string) error {
	if err := fs.WriteFile(staticPath, at, StaticPairs(m), kv.OpsFor[int64, Col](Col.Bytes)); err != nil {
		return err
	}
	return fs.WriteFile(statePath, at, StatePairs(m), EntryOps())
}

// IMRConfig parameterizes the two-phase iMapReduce job.
type IMRConfig struct {
	Name       string
	StaticPath string // columns of M
	StatePath  string // entries of N (initially M)
	OutputPath string
	MaxIter    int // number of multiplications: result is M^(MaxIter+1)
	NumTasks   int
	Checkpoint int
}

// IMRJob builds the chained two-phase job (§5.2.2:
// job1.addSuccessor(job2), job2.addSuccessor(job1) implied by the loop).
func IMRJob(cfg IMRConfig) *core.Job {
	phase1 := &core.Job{
		Name:      cfg.Name,
		StatePath: cfg.StatePath,
		// Map 1: route N's entry (j,k) to key j (§5.2.1 Map 1, N side).
		Map: func(key, state, static any, emit kv.Emit) error {
			j, k := Unpack(key.(int64))
			emit(int64(j), Entry{K: k, V: state.(float64)})
			return nil
		},
		// Reduce 1: collect row j of N (§5.2.1 Reduce 1).
		Reduce: func(key any, states []any) (any, error) {
			row := Row{Entries: make([]Entry, 0, len(states))}
			for _, s := range states {
				row.Entries = append(row.Entries, s.(Entry))
			}
			return row, nil
		},
		Ops: kv.OpsFor[int64, Row](Row.Bytes),
	}
	phase2 := &core.Job{
		Name:       cfg.Name + "-p2",
		StaticPath: cfg.StaticPath,
		// Map 2: multiply column j of M with row j of N (§5.2.1 Map 2).
		Map: func(key, state, static any, emit kv.Emit) error {
			if static == nil {
				return fmt.Errorf("matpower: missing column %v of M", key)
			}
			col := static.(Col)
			row := state.(Row)
			for ci := range col.Idx {
				mij := col.Val[ci]
				i := col.Idx[ci]
				for _, e := range row.Entries {
					emit(Pack(i, e.K), mij*e.V)
				}
			}
			return nil
		},
		// Reduce 2: sum the products into P(i,k) (§5.2.1 Reduce 2).
		Reduce: func(key any, states []any) (any, error) {
			var sum float64
			for _, s := range states {
				sum += s.(float64)
			}
			return sum, nil
		},
		MaxIter:         cfg.MaxIter,
		NumTasks:        cfg.NumTasks,
		CheckpointEvery: cfg.Checkpoint,
		OutputPath:      cfg.OutputPath,
		Ops:             EntryOps(),
	}
	phase1.NumTasks = cfg.NumTasks
	phase1.OutputPath = cfg.OutputPath
	phase1.AddSuccessor(phase2)
	return phase1
}

// MRResult reports the baseline chain.
type MRResult struct {
	Iterations int
	// Result maps packed coordinates to values of M^(Iterations+1).
	Result map[int64]float64
	// Walls/Inits are per-iteration totals over the two jobs
	// (nanoseconds).
	Walls []int64
	Inits []int64
}

type taggedEntry struct {
	FromM bool
	I     int32 // row (M) or column (N) index
	V     float64
}

type joined struct {
	Ms []taggedEntry
	Ns []taggedEntry
}

func (j joined) Bytes() int { return 16 * (len(j.Ms) + len(j.Ns)) }

func appendTagged(buf []byte, es []taggedEntry) []byte {
	buf = kv.AppendUvarint(buf, uint64(len(es)))
	for _, e := range es {
		f := byte(0)
		if e.FromM {
			f = 1
		}
		buf = kv.AppendFloat64(kv.AppendVarint(append(buf, f), int64(e.I)), e.V)
	}
	return buf
}

func taggedAt(data []byte) ([]taggedEntry, int, error) {
	l, n, err := kv.Uvarint(data)
	if err != nil {
		return nil, 0, err
	}
	if l == 0 {
		return nil, n, nil
	}
	out := make([]taggedEntry, l)
	for j := range out {
		if len(data) <= n {
			return nil, 0, fmt.Errorf("matpower: truncated tagged entry")
		}
		fromM := data[n] != 0
		n++
		i, m, err := kv.Varint(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		v, m, err := kv.Float64At(data[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		out[j] = taggedEntry{FromM: fromM, I: int32(i), V: v}
	}
	return out, n, nil
}

func init() {
	kv.RegisterWireType(taggedEntry{})
	kv.RegisterWireType(joined{})
	kv.RegisterValueCodec(taggedEntry{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			e := v.(taggedEntry)
			f := byte(0)
			if e.FromM {
				f = 1
			}
			return kv.AppendFloat64(kv.AppendVarint(append(buf, f), int64(e.I)), e.V), true
		},
		Decode: func(data []byte) (any, int, error) {
			if len(data) == 0 {
				return nil, 0, fmt.Errorf("matpower: truncated tagged entry")
			}
			fromM := data[0] != 0
			i, n, err := kv.Varint(data[1:])
			if err != nil {
				return nil, 0, err
			}
			v, m, err := kv.Float64At(data[1+n:])
			if err != nil {
				return nil, 0, err
			}
			return taggedEntry{FromM: fromM, I: int32(i), V: v}, 1 + n + m, nil
		},
	})
	kv.RegisterValueCodec(joined{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			j := v.(joined)
			return appendTagged(appendTagged(buf, j.Ms), j.Ns), true
		},
		Decode: func(data []byte) (any, int, error) {
			ms, n, err := taggedAt(data)
			if err != nil {
				return nil, 0, err
			}
			ns, m, err := taggedAt(data[n:])
			if err != nil {
				return nil, 0, err
			}
			return joined{Ms: ms, Ns: ns}, n + m, nil
		},
	})
}

// RunMR executes the baseline: each iteration is TWO chained MapReduce
// jobs (join, then multiply/sum), with M re-read and re-shuffled every
// iteration (§5.2.1).
func RunMR(e *mapreduce.Engine, name, mPath string, m *Dense, workDir string, numReduce, iters int) (*MRResult, error) {
	fs := e.FS()
	// The iterated matrix starts as M's entries.
	nPath := workDir + "/n-000"
	if err := fs.WriteFile(nPath, e.Spec().IDs()[0], StatePairs(m), EntryOps()); err != nil {
		return nil, err
	}
	res := &MRResult{}
	for it := 1; it <= iters; it++ {
		joinOut := fmt.Sprintf("%s/join-%03d", workDir, it)
		job1 := &mapreduce.Job{
			Name:   fmt.Sprintf("%s-join-%03d", name, it),
			Input:  []string{mPath, nPath},
			Output: joinOut,
			// Map 1: key M's (i,j) by j, N's (j,k) by j (§5.2.1).
			MapSrc: func(path string, key, value any, emit kv.Emit) error {
				i, j := Unpack(key.(int64))
				if path == mPath {
					emit(int64(j), taggedEntry{FromM: true, I: i, V: value.(float64)})
				} else {
					emit(int64(i), taggedEntry{FromM: false, I: j, V: value.(float64)})
				}
				return nil
			},
			Reduce: func(key any, values []any, emit kv.Emit) error {
				var jn joined
				for _, v := range values {
					t := v.(taggedEntry)
					if t.FromM {
						jn.Ms = append(jn.Ms, t)
					} else {
						jn.Ns = append(jn.Ns, t)
					}
				}
				emit(key, jn)
				return nil
			},
			NumReduce: numReduce,
			Ops:       kv.OpsFor[int64, joined](joined.Bytes),
		}
		r1, err := e.Submit(job1)
		if err != nil {
			return nil, err
		}

		mulOut := fmt.Sprintf("%s/n-%03d", workDir, it)
		job2 := &mapreduce.Job{
			Name:   fmt.Sprintf("%s-mul-%03d", name, it),
			Input:  []string{joinOut},
			Output: mulOut,
			// Map 2: all M×N permutations per join key (§5.2.1).
			Map: func(key, value any, emit kv.Emit) error {
				jn := value.(joined)
				for _, me := range jn.Ms {
					for _, ne := range jn.Ns {
						emit(Pack(me.I, ne.I), me.V*ne.V)
					}
				}
				return nil
			},
			Reduce: func(key any, values []any, emit kv.Emit) error {
				var sum float64
				for _, v := range values {
					sum += v.(float64)
				}
				emit(key, sum)
				return nil
			},
			NumReduce: numReduce,
			Ops:       EntryOps(),
		}
		r2, err := e.Submit(job2)
		if err != nil {
			return nil, err
		}
		res.Walls = append(res.Walls, int64(r1.Wall+r2.Wall))
		res.Inits = append(res.Inits, int64(r1.Init+r2.Init))
		res.Iterations = it

		// Clean up the previous N and the join output.
		for _, p := range fs.List(joinOut + "/") {
			fs.Delete(p)
		}
		if it >= 2 {
			for _, p := range fs.List(fmt.Sprintf("%s/n-%03d/", workDir, it-1)) {
				fs.Delete(p)
			}
		}
		nPath = mulOut
	}
	res.Result = map[int64]float64{}
	for _, p := range fs.List(nPath + "/") {
		recs, err := fs.ReadFile(p, e.Spec().IDs()[0])
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			res.Result[r.Key.(int64)] = r.Value.(float64)
		}
	}
	return res, nil
}

package matpower

import (
	"bytes"
	"reflect"
	"testing"

	"imapreduce/internal/kv"
)

// TestJoinCodecsRoundTrip covers the unexported join-phase record types
// the external codec tests cannot reach.
func TestJoinCodecsRoundTrip(t *testing.T) {
	pairs := []kv.Pair{
		{Key: int64(1), Value: taggedEntry{FromM: true, I: 3, V: -1.5}},
		{Key: int64(2), Value: taggedEntry{FromM: false, I: -9, V: 2.25}},
		{Key: int64(3), Value: joined{
			Ms: []taggedEntry{{FromM: true, I: 0, V: 1}},
			Ns: []taggedEntry{{I: 1, V: 2}, {I: 2, V: 3}},
		}},
		{Key: int64(4), Value: joined{}},
	}
	enc, ok := kv.AppendPairs(nil, pairs)
	if !ok {
		t.Fatal("AppendPairs refused join types")
	}
	dec, n, err := kv.DecodePairs(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(pairs, dec) {
		t.Fatalf("round trip mismatch:\n in  %#v\n out %#v", pairs, dec)
	}
	re, ok := kv.AppendPairs(nil, dec)
	if !ok || !bytes.Equal(enc, re) {
		t.Fatal("re-encoding decoded pairs changed the bytes")
	}
}

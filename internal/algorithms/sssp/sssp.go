// Package sssp implements Single Source Shortest Path (paper §2.1.1)
// three ways: as an iMapReduce job, as a baseline MapReduce job chain,
// and as sequential references (Bellman-Ford and Dijkstra) used as test
// oracles.
//
// State: each node's current shortest distance from the source (∞
// initially, 0 at the source). Static: each node's outgoing links and
// weights. Map relaxes every outgoing edge; reduce keeps the minimum.
package sssp

import (
	"container/heap"
	"math"

	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
)

// Inf is the initial distance of unreached nodes.
var Inf = math.Inf(1)

// StateOps is the kv.Ops for (node id → distance) records.
func StateOps() kv.Ops { return kv.OpsFor[int64, float64](nil) }

// StatePairs builds the initial state: d(source)=0, d(v)=∞ otherwise.
func StatePairs(n int, source int64) []kv.Pair {
	out := make([]kv.Pair, n)
	for i := range out {
		d := Inf
		if int64(i) == source {
			d = 0
		}
		out[i] = kv.Pair{Key: int64(i), Value: d}
	}
	return out
}

// WriteInputs stores the static graph and initial state in the DFS.
func WriteInputs(fs *dfs.DFS, at string, g *graph.Graph, source int64, staticPath, statePath string) error {
	if err := fs.WriteFile(staticPath, at, graph.StaticPairs(g), graph.AdjOps()); err != nil {
		return err
	}
	return fs.WriteFile(statePath, at, StatePairs(g.N, source), StateOps())
}

// mapFn relaxes u's outgoing edges and re-emits u's own distance so the
// reduce sees every node each iteration.
func mapFn(key, state, static any, emit kv.Emit) error {
	d := state.(float64)
	emit(key, d)
	if static == nil {
		return nil
	}
	adj := static.(graph.Adj)
	if math.IsInf(d, 1) {
		return nil // nothing to relax yet
	}
	for i, v := range adj.Dst {
		emit(int64(v), d+float64(adj.W[i]))
	}
	return nil
}

func reduceFn(key any, states []any) (any, error) {
	min := Inf
	for _, s := range states {
		if d := s.(float64); d < min {
			min = d
		}
	}
	return min, nil
}

// DistanceFn measures per-node change; unreached-to-unreached counts as
// no change, a node becoming reached counts as 1.
func DistanceFn(key, prev, curr any) float64 {
	p, c := prev.(float64), curr.(float64)
	pInf, cInf := math.IsInf(p, 1), math.IsInf(c, 1)
	switch {
	case pInf && cInf:
		return 0
	case pInf != cInf:
		return 1
	default:
		return math.Abs(p - c)
	}
}

// IMRConfig parameterizes the iMapReduce job.
type IMRConfig struct {
	Name          string
	StaticPath    string
	StatePath     string
	OutputPath    string
	MaxIter       int
	DistThreshold float64
	NumTasks      int
	SyncMap       bool // the paper's "iMapReduce (sync.)" configuration
	Checkpoint    int
}

// IMRJob builds the iMapReduce SSSP job.
func IMRJob(cfg IMRConfig) *core.Job {
	return &core.Job{
		Name:            cfg.Name,
		StatePath:       cfg.StatePath,
		StaticPath:      cfg.StaticPath,
		OutputPath:      cfg.OutputPath,
		Map:             mapFn,
		Reduce:          reduceFn,
		Distance:        DistanceFn,
		MaxIter:         cfg.MaxIter,
		DistThreshold:   cfg.DistThreshold,
		NumTasks:        cfg.NumTasks,
		SyncMap:         cfg.SyncMap,
		CheckpointEvery: cfg.Checkpoint,
		Ops:             StateOps(),
	}
}

// CombinedPairs builds the baseline's input records: state and static
// travel together (paper §2.1.1's map input value).
func CombinedPairs(g *graph.Graph, source int64) []kv.Pair {
	out := make([]kv.Pair, g.N)
	for i := 0; i < g.N; i++ {
		d := Inf
		if int64(i) == source {
			d = 0
		}
		dst, w := g.Neighbors(int32(i))
		out[i] = kv.Pair{Key: int64(i), Value: mapreduce.IterValue{State: d, Static: graph.Adj{Dst: dst, W: w}}}
	}
	return out
}

// CombinedOps is the kv.Ops for the baseline's combined records.
func CombinedOps() kv.Ops {
	return kv.OpsFor[int64, mapreduce.IterValue](mapreduce.IterValue.Bytes)
}

// MRSpec builds the baseline iterative chain (one MapReduce job per
// iteration; the adjacency lists are shuffled every iteration).
func MRSpec(name, input, workDir string, numReduce, maxIter int, distThreshold float64) mapreduce.IterSpec {
	return mapreduce.IterSpec{
		Name:    name,
		Input:   input,
		WorkDir: workDir,
		Map: func(key, value any, emit kv.Emit) error {
			v := value.(mapreduce.IterValue)
			d := v.State.(float64)
			emit(key, v) // carrier: distance + adjacency together
			if math.IsInf(d, 1) {
				return nil
			}
			adj := v.Static.(graph.Adj)
			for i, dst := range adj.Dst {
				emit(int64(dst), d+float64(adj.W[i]))
			}
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			min := Inf
			var carrier *mapreduce.IterValue
			for _, v := range values {
				switch x := v.(type) {
				case float64:
					if x < min {
						min = x
					}
				case mapreduce.IterValue:
					c := x
					carrier = &c
					if d := x.State.(float64); d < min {
						min = d
					}
				}
			}
			if carrier == nil {
				// Message for a node whose carrier landed elsewhere can
				// not happen: every node emits its own carrier.
				return nil
			}
			emit(key, mapreduce.IterValue{State: min, Static: carrier.Static})
			return nil
		},
		NumReduce:     numReduce,
		Ops:           CombinedOps(),
		MaxIter:       maxIter,
		DistThreshold: distThreshold,
		Distance: func(key, prev, curr any) float64 {
			return DistanceFn(key, prev.(mapreduce.IterValue).State, curr.(mapreduce.IterValue).State)
		},
	}
}

// BellmanFord is the synchronous sequential reference: exactly the state
// the distributed engines must hold after iters iterations, plus the
// iteration at which the computation converged (0 if it never did
// within iters).
func BellmanFord(g *graph.Graph, source int64, iters int) ([]float64, int) {
	cur := make([]float64, g.N)
	for i := range cur {
		cur[i] = Inf
	}
	cur[source] = 0
	convergedAt := 0
	for k := 1; k <= iters; k++ {
		next := make([]float64, g.N)
		copy(next, cur)
		for u := 0; u < g.N; u++ {
			if math.IsInf(cur[u], 1) {
				continue
			}
			dst, w := g.Neighbors(int32(u))
			for i, v := range dst {
				if d := cur[u] + float64(w[i]); d < next[v] {
					next[v] = d
				}
			}
		}
		changed := false
		for i := range next {
			if next[i] != cur[i] {
				changed = true
				break
			}
		}
		cur = next
		if !changed && convergedAt == 0 {
			convergedAt = k
			break
		}
	}
	return cur, convergedAt
}

// Dijkstra computes exact shortest distances, the ground truth for
// converged runs.
func Dijkstra(g *graph.Graph, source int64) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	pq := &distHeap{{int32(source), 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		dst, w := g.Neighbors(item.v)
		for i, v := range dst {
			if d := item.d + float64(w[i]); d < dist[v] {
				dist[v] = d
				heap.Push(pq, distItem{v, d})
			}
		}
	}
	return dist
}

type distItem struct {
	v int32
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

package sssp

import (
	"math"
	"testing"
	"testing/quick"

	"imapreduce/internal/enginetest"
	"imapreduce/internal/graph"
	"imapreduce/internal/mapreduce"
)

func testGraph(n int, seed int64) *graph.Graph {
	return graph.Generate(graph.GenConfig{
		Nodes: n, Degree: graph.SSSPDegree, Weighted: true,
		Weight: graph.SSSPWeight, Seed: seed,
	})
}

func TestBellmanFordMatchesDijkstraWhenConverged(t *testing.T) {
	g := testGraph(300, 1)
	bf, converged := BellmanFord(g, 0, 1000)
	if converged == 0 {
		t.Fatal("BF did not converge in 1000 iterations")
	}
	dj := Dijkstra(g, 0)
	for i := range bf {
		if !floatEq(bf[i], dj[i]) {
			t.Fatalf("node %d: BF %v, Dijkstra %v", i, bf[i], dj[i])
		}
	}
}

func floatEq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) < 1e-6
}

func TestIMRMatchesBellmanFord(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(250, 2)
	if err := WriteInputs(env.FS, env.At(), g, 0, "/g/static", "/g/state"); err != nil {
		t.Fatal(err)
	}
	const iters = 6
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "sssp", StaticPath: "/g/static", StatePath: "/g/state",
		MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BellmanFord(g, 0, iters)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != g.N {
		t.Fatalf("%d outputs for %d nodes", len(out), g.N)
	}
	for i := 0; i < g.N; i++ {
		if got := out[int64(i)].(float64); !floatEq(got, want[i]) {
			t.Fatalf("node %d: engine %v, reference %v", i, got, want[i])
		}
	}
}

func TestIMRConvergesToDijkstra(t *testing.T) {
	env, err := enginetest.New(4)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(200, 3)
	if err := WriteInputs(env.FS, env.At(), g, 0, "/g/static", "/g/state"); err != nil {
		t.Fatal(err)
	}
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "sssp-conv", StaticPath: "/g/static", StatePath: "/g/state",
		MaxIter: 500, DistThreshold: 1e-12,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want := Dijkstra(g, 0)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		if got := out[int64(i)].(float64); !floatEq(got, want[i]) {
			t.Fatalf("node %d: engine %v, dijkstra %v", i, got, want[i])
		}
	}
}

func TestMRChainMatchesBellmanFord(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(150, 4)
	if err := env.FS.WriteFile("/mr/init", env.At(), CombinedPairs(g, 0), CombinedOps()); err != nil {
		t.Fatal(err)
	}
	const iters = 5
	spec := MRSpec("sssp-mr", "/mr/init", "/mr/work", 3, iters, 0)
	res, err := mapreduce.RunIterative(env.MR, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BellmanFord(g, 0, iters)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		got := out[int64(i)].(mapreduce.IterValue).State.(float64)
		if !floatEq(got, want[i]) {
			t.Fatalf("node %d: baseline %v, reference %v", i, got, want[i])
		}
	}
}

func TestMRChainDistanceTermination(t *testing.T) {
	env, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(100, 5)
	if err := env.FS.WriteFile("/mr/init", env.At(), CombinedPairs(g, 0), CombinedOps()); err != nil {
		t.Fatal(err)
	}
	spec := MRSpec("sssp-mr-dist", "/mr/init", "/mr/work", 2, 100, 1e-12)
	res, err := mapreduce.RunIterative(env.MR, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("baseline did not converge")
	}
	want := Dijkstra(g, 0)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		got := out[int64(i)].(mapreduce.IterValue).State.(float64)
		if !floatEq(got, want[i]) {
			t.Fatalf("node %d: baseline %v, dijkstra %v", i, got, want[i])
		}
	}
}

func TestSyncAsyncAgree(t *testing.T) {
	g := testGraph(120, 6)
	results := make([]map[any]any, 2)
	for i, sync := range []bool{false, true} {
		env, err := enginetest.New(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteInputs(env.FS, env.At(), g, 0, "/g/static", "/g/state"); err != nil {
			t.Fatal(err)
		}
		res, err := env.Core.Run(IMRJob(IMRConfig{
			Name: "sssp-sync", StaticPath: "/g/static", StatePath: "/g/state",
			MaxIter: 5, SyncMap: sync,
		}))
		if err != nil {
			t.Fatal(err)
		}
		results[i], err = env.ReadDir(res.OutputPath)
		if err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range results[0] {
		if !floatEq(v.(float64), results[1][k].(float64)) {
			t.Fatalf("sync and async disagree at %v: %v vs %v", k, v, results[1][k])
		}
	}
}

// TestPropertyConvergedEqualsDijkstra: for random graphs and sources,
// the converged distributed SSSP equals Dijkstra.
func TestPropertyConvergedEqualsDijkstra(t *testing.T) {
	f := func(seed int64, srcRaw uint8) bool {
		g := testGraph(60, seed%1000)
		src := int64(srcRaw) % int64(g.N)
		env, err := enginetest.New(2)
		if err != nil {
			return false
		}
		if err := WriteInputs(env.FS, env.At(), g, src, "/g/static", "/g/state"); err != nil {
			return false
		}
		res, err := env.Core.Run(IMRJob(IMRConfig{
			Name: "sssp-prop", StaticPath: "/g/static", StatePath: "/g/state",
			MaxIter: 200, DistThreshold: 1e-12,
		}))
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		want := Dijkstra(g, src)
		out, err := env.ReadDir(res.OutputPath)
		if err != nil {
			return false
		}
		for i := 0; i < g.N; i++ {
			if !floatEq(out[int64(i)].(float64), want[i]) {
				t.Logf("seed %d src %d node %d: %v vs %v", seed, src, i, out[int64(i)], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceFn(t *testing.T) {
	if DistanceFn(nil, Inf, Inf) != 0 {
		t.Fatal("inf/inf should be 0")
	}
	if DistanceFn(nil, Inf, 3.0) != 1 {
		t.Fatal("becoming reachable should count as 1")
	}
	if DistanceFn(nil, 2.0, 3.5) != 1.5 {
		t.Fatal("finite distance diff")
	}
}

func TestStatePairs(t *testing.T) {
	ps := StatePairs(5, 2)
	for i, p := range ps {
		d := p.Value.(float64)
		if i == 2 && d != 0 {
			t.Fatal("source not zero")
		}
		if i != 2 && !math.IsInf(d, 1) {
			t.Fatal("non-source not inf")
		}
	}
}

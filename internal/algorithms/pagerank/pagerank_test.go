package pagerank

import (
	"math"
	"testing"

	"imapreduce/internal/enginetest"
	"imapreduce/internal/graph"
	"imapreduce/internal/mapreduce"
)

func testGraph(n int, seed int64) *graph.Graph {
	return graph.Generate(graph.GenConfig{
		Nodes: n, Degree: graph.PageRankDegree, Seed: seed,
	})
}

func TestIMRMatchesReference(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(300, 11)
	if err := WriteInputs(env.FS, env.At(), g, "/pr/static", "/pr/state"); err != nil {
		t.Fatal(err)
	}
	const iters = 10
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "pr", Nodes: g.N, StaticPath: "/pr/static", StatePath: "/pr/state",
		MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, iters)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != g.N {
		t.Fatalf("%d outputs", len(out))
	}
	var sum float64
	for i := 0; i < g.N; i++ {
		got := out[int64(i)].(float64)
		if math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("node %d: engine %v, reference %v", i, got, want[i])
		}
		sum += got
	}
	// Rank mass is at most 1 (dangling nodes leak, never create).
	if sum > 1+1e-9 {
		t.Fatalf("rank mass %v exceeds 1", sum)
	}
}

func TestMRChainMatchesReference(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(200, 12)
	if err := env.FS.WriteFile("/pr/init", env.At(), CombinedPairs(g), CombinedOps()); err != nil {
		t.Fatal(err)
	}
	const iters = 8
	res, err := mapreduce.RunIterative(env.MR, MRSpec("pr-mr", "/pr/init", "/pr/work", g.N, 3, iters, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, iters)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		got := out[int64(i)].(mapreduce.IterValue).State.(float64)
		if math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("node %d: baseline %v, reference %v", i, got, want[i])
		}
	}
}

func TestEnginesAgree(t *testing.T) {
	g := testGraph(150, 13)
	const iters = 6

	envA, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInputs(envA.FS, envA.At(), g, "/pr/static", "/pr/state"); err != nil {
		t.Fatal(err)
	}
	resA, err := envA.Core.Run(IMRJob(IMRConfig{
		Name: "pr-a", Nodes: g.N, StaticPath: "/pr/static", StatePath: "/pr/state", MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	outA, _ := envA.ReadDir(resA.OutputPath)

	envB, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := envB.FS.WriteFile("/pr/init", envB.At(), CombinedPairs(g), CombinedOps()); err != nil {
		t.Fatal(err)
	}
	resB, err := mapreduce.RunIterative(envB.MR, MRSpec("pr-b", "/pr/init", "/pr/work", g.N, 2, iters, 0))
	if err != nil {
		t.Fatal(err)
	}
	outB, _ := envB.ReadDir(resB.OutputPath)

	for i := 0; i < g.N; i++ {
		a := outA[int64(i)].(float64)
		b := outB[int64(i)].(mapreduce.IterValue).State.(float64)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("node %d: imr %v, mr %v", i, a, b)
		}
	}
}

func TestDistanceTermination(t *testing.T) {
	env, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(120, 14)
	if err := WriteInputs(env.FS, env.At(), g, "/pr/static", "/pr/state"); err != nil {
		t.Fatal(err)
	}
	// The paper's example threshold: 0.01 Manhattan distance.
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "pr-conv", Nodes: g.N, StaticPath: "/pr/static", StatePath: "/pr/state",
		MaxIter: 200, DistThreshold: 0.01,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Iterations < 2 || res.Iterations > 100 {
		t.Fatalf("implausible convergence at %d", res.Iterations)
	}
	last := res.PerIter[len(res.PerIter)-1]
	if last.Dist >= 0.01 {
		t.Fatalf("final distance %v not below threshold", last.Dist)
	}
}

func TestRanksNonNegativeAndOrdered(t *testing.T) {
	// A node pointed to by everyone should outrank an isolated one.
	b := graph.NewBuilder(10, false)
	for i := int32(1); i < 10; i++ {
		b.AddEdge(i, 0, 0)
	}
	g := b.Build()
	want := Reference(g, 20)
	for i, r := range want {
		if r < 0 {
			t.Fatalf("negative rank at %d", i)
		}
	}
	if want[0] <= want[1] {
		t.Fatalf("hub rank %v not above leaf rank %v", want[0], want[1])
	}
}

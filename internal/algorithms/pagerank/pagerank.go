// Package pagerank implements PageRank (paper §2.1.2) as an iMapReduce
// job, as a baseline MapReduce job chain, and as a sequential power-
// iteration reference.
//
// State: each node's ranking score (1/|V| initially). Static: each
// node's outbound neighbor set. Map distributes d·R(u)/|N⁺(u)| to the
// out-neighbors and retains (1−d)/|V|; reduce sums the arriving partial
// scores. Dangling nodes leak rank, exactly as in the paper's
// formulation.
package pagerank

import (
	"math"

	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
)

// Damping is the paper's damping factor d.
const Damping = 0.85

// StateOps is the kv.Ops for (node id → rank) records.
func StateOps() kv.Ops { return kv.OpsFor[int64, float64](nil) }

// StatePairs builds the uniform initial rank vector.
func StatePairs(n int) []kv.Pair {
	out := make([]kv.Pair, n)
	r := 1.0 / float64(n)
	for i := range out {
		out[i] = kv.Pair{Key: int64(i), Value: r}
	}
	return out
}

// WriteInputs stores the static graph and the initial ranks in the DFS.
func WriteInputs(fs *dfs.DFS, at string, g *graph.Graph, staticPath, statePath string) error {
	if err := fs.WriteFile(staticPath, at, graph.StaticPairs(g), graph.AdjOps()); err != nil {
		return err
	}
	return fs.WriteFile(statePath, at, StatePairs(g.N), StateOps())
}

func mapFnFor(n int) core.MapFunc {
	retained := (1 - Damping) / float64(n)
	return func(key, state, static any, emit kv.Emit) error {
		emit(key, retained)
		if static == nil {
			return nil
		}
		adj := static.(graph.Adj)
		if len(adj.Dst) == 0 {
			return nil
		}
		share := Damping * state.(float64) / float64(len(adj.Dst))
		for _, v := range adj.Dst {
			emit(int64(v), share)
		}
		return nil
	}
}

func reduceFn(key any, states []any) (any, error) {
	var sum float64
	for _, s := range states {
		sum += s.(float64)
	}
	return sum, nil
}

// DistanceFn is the Manhattan distance the paper's example uses.
func DistanceFn(key, prev, curr any) float64 {
	return math.Abs(prev.(float64) - curr.(float64))
}

// IMRConfig parameterizes the iMapReduce job.
type IMRConfig struct {
	Name          string
	Nodes         int
	StaticPath    string
	StatePath     string
	OutputPath    string
	MaxIter       int
	DistThreshold float64
	NumTasks      int
	SyncMap       bool
	Checkpoint    int
}

// IMRJob builds the iMapReduce PageRank job (the paper's Fig. 3
// example).
func IMRJob(cfg IMRConfig) *core.Job {
	return &core.Job{
		Name:            cfg.Name,
		StatePath:       cfg.StatePath,
		StaticPath:      cfg.StaticPath,
		OutputPath:      cfg.OutputPath,
		Map:             mapFnFor(cfg.Nodes),
		Reduce:          reduceFn,
		Distance:        DistanceFn,
		MaxIter:         cfg.MaxIter,
		DistThreshold:   cfg.DistThreshold,
		NumTasks:        cfg.NumTasks,
		SyncMap:         cfg.SyncMap,
		CheckpointEvery: cfg.Checkpoint,
		Ops:             StateOps(),
	}
}

// CombinedPairs builds the baseline's combined rank+adjacency records.
func CombinedPairs(g *graph.Graph) []kv.Pair {
	out := make([]kv.Pair, g.N)
	r := 1.0 / float64(g.N)
	for i := 0; i < g.N; i++ {
		dst, _ := g.Neighbors(int32(i))
		out[i] = kv.Pair{Key: int64(i), Value: mapreduce.IterValue{State: r, Static: graph.Adj{Dst: dst}}}
	}
	return out
}

// CombinedOps is the kv.Ops for the baseline's combined records.
func CombinedOps() kv.Ops {
	return kv.OpsFor[int64, mapreduce.IterValue](mapreduce.IterValue.Bytes)
}

// MRSpec builds the baseline iterative chain.
func MRSpec(name, input, workDir string, nodes, numReduce, maxIter int, distThreshold float64) mapreduce.IterSpec {
	retained := (1 - Damping) / float64(nodes)
	return mapreduce.IterSpec{
		Name:    name,
		Input:   input,
		WorkDir: workDir,
		Map: func(key, value any, emit kv.Emit) error {
			v := value.(mapreduce.IterValue)
			// Retained score and the neighbor set shuffle to the node
			// itself (paper §2.1.2).
			adj := v.Static.(graph.Adj)
			emit(key, mapreduce.IterValue{State: retained, Static: adj})
			if len(adj.Dst) == 0 {
				return nil
			}
			share := Damping * v.State.(float64) / float64(len(adj.Dst))
			for _, dst := range adj.Dst {
				emit(int64(dst), share)
			}
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			var sum float64
			var carrier *mapreduce.IterValue
			for _, v := range values {
				switch x := v.(type) {
				case float64:
					sum += x
				case mapreduce.IterValue:
					c := x
					carrier = &c
					sum += x.State.(float64)
				}
			}
			if carrier == nil {
				return nil
			}
			emit(key, mapreduce.IterValue{State: sum, Static: carrier.Static})
			return nil
		},
		NumReduce:     numReduce,
		Ops:           CombinedOps(),
		MaxIter:       maxIter,
		DistThreshold: distThreshold,
		Distance: func(key, prev, curr any) float64 {
			return DistanceFn(key, prev.(mapreduce.IterValue).State, curr.(mapreduce.IterValue).State)
		},
	}
}

// Reference runs iters synchronous power iterations — the exact state
// the engines must produce.
func Reference(g *graph.Graph, iters int) []float64 {
	n := g.N
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = 1.0 / float64(n)
	}
	retained := (1 - Damping) / float64(n)
	for k := 0; k < iters; k++ {
		next := make([]float64, n)
		for i := range next {
			next[i] = retained
		}
		for u := 0; u < n; u++ {
			dst, _ := g.Neighbors(int32(u))
			if len(dst) == 0 {
				continue
			}
			share := Damping * cur[u] / float64(len(dst))
			for _, v := range dst {
				next[v] += share
			}
		}
		cur = next
	}
	return cur
}

package pagerank

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/enginetest"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// TestChaosPageRankDropsAndHang is the end-to-end robustness check:
// PageRank over a network that drops, duplicates, and reorders frames
// from a fixed seed, while one worker silently hangs mid-run — no
// FailWorker announcement. Bounded send retries absorb the drops, the
// sequence/generation guards absorb the duplicates and reorders, and
// the heartbeat detector must notice the hang and recover through the
// checkpoint rollback. The converged ranks must equal the sequential
// power-iteration reference.
func TestChaosPageRankDropsAndHang(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	g := testGraph(400, 11)
	const iters = 10

	spec := cluster.Uniform(3)
	spec.Nodes[1].StallAfter = 80 * time.Millisecond // undetected hang:
	spec.Nodes[1].StallFor = 900 * time.Millisecond  // tasks freeze, beats stop
	env, fnet, err := enginetest.NewChaos(spec, core.Options{
		Timeout:           30 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMisses:   4,
		SendRetries:       6,
	}, &transport.FaultyOptions{
		Seed: 1, DropRate: 0.02, DupRate: 0.01, ReorderRate: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInputs(env.FS, env.At(), g, "/pr/static", "/pr/state"); err != nil {
		t.Fatal(err)
	}
	job := IMRJob(IMRConfig{
		Name: "pr-chaos", Nodes: g.N,
		StaticPath: "/pr/static", StatePath: "/pr/state",
		MaxIter: iters, Checkpoint: 2,
	})
	// Pace the reduce so the stall window lands mid-computation.
	base := job.Reduce
	var calls atomic.Int64
	job.Reduce = func(key any, states []any) (any, error) {
		if calls.Add(1)%10 == 0 {
			time.Sleep(time.Millisecond)
		}
		return base(key, states)
	}

	res, err := env.Core.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Fatalf("recoveries = %d, want >= 1 (hang never detected)", res.Recoveries)
	}
	if env.M.Get(metrics.FailuresDetected) < 1 {
		t.Fatal("recovery happened but not via heartbeat detection")
	}
	if fnet.Drops() == 0 {
		t.Fatal("no drops injected — fault profile inert")
	}
	if res.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", res.Iterations, iters)
	}

	want := Reference(g, iters)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != g.N {
		t.Fatalf("%d outputs", len(out))
	}
	for i := 0; i < g.N; i++ {
		got := out[int64(i)].(float64)
		if math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("node %d: chaos run %v, reference %v", i, got, want[i])
		}
	}
	t.Logf("drops=%d dups=%d reorders=%d retries=%d recoveries=%d detected=%d",
		fnet.Drops(), fnet.Dups(), fnet.Reorders(),
		env.M.Get(metrics.SendRetries), res.Recoveries, env.M.Get(metrics.FailuresDetected))
}

package jacobi

import (
	"math"
	"testing"
	"testing/quick"

	"imapreduce/internal/enginetest"
)

func TestSolveExact(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	s := &System{N: 2, A: []float64{2, 1, 1, 3}, B: []float64{5, 10}}
	x, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solve: %v", x)
	}
	if r := Residual(s, x); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
}

func TestSolveSingular(t *testing.T) {
	s := &System{N: 2, A: []float64{1, 1, 1, 1}, B: []float64{1, 2}}
	if _, err := Solve(s); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestReferenceConverges(t *testing.T) {
	s := RandomDiagDominant(40, 1)
	want, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	got := Reference(s, 200)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d]: jacobi %v, direct %v", i, got[i], want[i])
		}
	}
}

func TestIMRMatchesReference(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	s := RandomDiagDominant(60, 2)
	if err := WriteInputs(env.FS, env.At(), s, "/j/static", "/j/state"); err != nil {
		t.Fatal(err)
	}
	const iters = 8
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "jacobi", StaticPath: "/j/static", StatePath: "/j/state", MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(s, iters)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != s.N {
		t.Fatalf("%d outputs", len(out))
	}
	for i := 0; i < s.N; i++ {
		got := out[int64(i)].(float64)
		if math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("x[%d]: engine %v, reference %v", i, got, want[i])
		}
	}
}

func TestIMRConvergesToSolution(t *testing.T) {
	env, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	s := RandomDiagDominant(40, 3)
	if err := WriteInputs(env.FS, env.At(), s, "/j/static", "/j/state"); err != nil {
		t.Fatal(err)
	}
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "jacobi-conv", StaticPath: "/j/static", StatePath: "/j/state",
		MaxIter: 500, DistThreshold: 1e-11,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, s.N)
	for i := range x {
		x[i] = out[int64(i)].(float64)
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]: engine %v, direct %v", i, x[i], want[i])
		}
	}
	if r := Residual(s, x); r > 1e-6 {
		t.Fatalf("residual %v", r)
	}
}

// TestPropertyConvergence: random diagonally dominant systems always
// converge to the direct solution.
func TestPropertyConvergence(t *testing.T) {
	f := func(seed int64) bool {
		s := RandomDiagDominant(20, seed%100)
		want, err := Solve(s)
		if err != nil {
			return false
		}
		got := Reference(s, 300)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRowBytes(t *testing.T) {
	r := Row{B: 1, Diag: 2, Idx: []int32{1, 2}, Val: []float64{0.5, 0.5}}
	if r.Bytes() != 16+24+4 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
}

func TestLookup(t *testing.T) {
	pairs := StatePairs(5)
	for i := int64(0); i < 5; i++ {
		if v, err := lookup(pairs, i); err != nil || v != 0 {
			t.Fatalf("lookup(%d) = %v, %v", i, v, err)
		}
	}
	if _, err := lookup(pairs, 99); err == nil {
		t.Fatal("missing key accepted")
	}
}

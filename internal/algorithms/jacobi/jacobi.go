// Package jacobi implements the Jacobi method for linear systems
// Ax = b, the paper's first example of an algorithm that needs the
// one-to-all broadcast (§5.1): x(k+1) = D⁻¹(b − R·x(k)), where every
// mapper needs the entire iterated vector x.
//
// Static data: one record per row i holding bᵢ, the diagonal dᵢᵢ, and
// the off-diagonal entries Rᵢ. State data: the solution vector x,
// broadcast from all reduce tasks to all map tasks each iteration.
package jacobi

import (
	"fmt"
	"math"
	"math/rand"

	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
)

// Row is one equation of the system: the static record for key i.
type Row struct {
	B    float64   // right-hand side bᵢ
	Diag float64   // dᵢᵢ (must be non-zero)
	Idx  []int32   // column indices of the off-diagonal entries
	Val  []float64 // their values (Rᵢⱼ)
}

// Bytes implements kv.Sized.
func (r Row) Bytes() int { return 16 + 12*len(r.Idx) + 4 }

func init() {
	kv.RegisterWireType(Row{})
	kv.RegisterValueCodec(Row{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			r := v.(Row)
			buf = kv.AppendFloat64(buf, r.B)
			buf = kv.AppendFloat64(buf, r.Diag)
			buf = kv.AppendInt32Slice(buf, r.Idx)
			return kv.AppendFloat64Slice(buf, r.Val), true
		},
		Decode: func(data []byte) (any, int, error) {
			var r Row
			b, n, err := kv.Float64At(data)
			if err != nil {
				return nil, 0, err
			}
			d, m, err := kv.Float64At(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m
			r.B, r.Diag = b, d
			if r.Idx, m, err = kv.Int32SliceAt(data[n:]); err != nil {
				return nil, 0, err
			}
			n += m
			if r.Val, m, err = kv.Float64SliceAt(data[n:]); err != nil {
				return nil, 0, err
			}
			return r, n + m, nil
		},
	})
}

// System is a dense linear system Ax = b.
type System struct {
	N int
	A []float64 // row-major
	B []float64
}

// RandomDiagDominant generates a strictly diagonally dominant system,
// for which Jacobi is guaranteed to converge.
func RandomDiagDominant(n int, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	s := &System{N: n, A: make([]float64, n*n), B: make([]float64, n)}
	for i := 0; i < n; i++ {
		var offSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Float64()*2 - 1
			s.A[i*n+j] = v
			offSum += math.Abs(v)
		}
		s.A[i*n+i] = offSum + 1 + rng.Float64() // strict dominance
		s.B[i] = rng.Float64() * 10
	}
	return s
}

// StaticPairs converts the system to per-row static records.
func StaticPairs(s *System) []kv.Pair {
	out := make([]kv.Pair, s.N)
	for i := 0; i < s.N; i++ {
		row := Row{B: s.B[i], Diag: s.A[i*s.N+i]}
		for j := 0; j < s.N; j++ {
			if j == i || s.A[i*s.N+j] == 0 {
				continue
			}
			row.Idx = append(row.Idx, int32(j))
			row.Val = append(row.Val, s.A[i*s.N+j])
		}
		out[i] = kv.Pair{Key: int64(i), Value: row}
	}
	return out
}

// StatePairs is the initial guess x⁰ = 0.
func StatePairs(n int) []kv.Pair {
	out := make([]kv.Pair, n)
	for i := range out {
		out[i] = kv.Pair{Key: int64(i), Value: 0.0}
	}
	return out
}

// StateOps is the kv.Ops for (row → xᵢ) records.
func StateOps() kv.Ops { return kv.OpsFor[int64, float64](nil) }

// WriteInputs stores the system (static) and the zero guess (state).
func WriteInputs(fs *dfs.DFS, at string, s *System, staticPath, statePath string) error {
	if err := fs.WriteFile(staticPath, at, StaticPairs(s), kv.OpsFor[int64, Row](Row.Bytes)); err != nil {
		return err
	}
	return fs.WriteFile(statePath, at, StatePairs(s.N), StateOps())
}

// IMRConfig parameterizes the iMapReduce job.
type IMRConfig struct {
	Name          string
	StaticPath    string
	StatePath     string
	OutputPath    string
	MaxIter       int
	DistThreshold float64
	NumTasks      int
	Checkpoint    int
}

// IMRJob builds the broadcast Jacobi job: map receives the whole x
// vector (state list) with its static row and emits the row's new
// component; reduce is the identity over single values.
func IMRJob(cfg IMRConfig) *core.Job {
	return &core.Job{
		Name:       cfg.Name,
		StatePath:  cfg.StatePath,
		StaticPath: cfg.StaticPath,
		OutputPath: cfg.OutputPath,
		Mapping:    core.OneToAll,
		SyncMap:    true, // broadcast input implies synchronous maps (§5.1.2)
		Map: func(key, state, static any, emit kv.Emit) error {
			row := static.(Row)
			// Index the broadcast vector once per call; the state list
			// is key-sorted so direct indexing by position works for
			// dense vectors, but we look up defensively by key.
			x := state.([]kv.Pair)
			sum := row.B
			for k, j := range row.Idx {
				xv, err := lookup(x, int64(j))
				if err != nil {
					return err
				}
				sum -= row.Val[k] * xv
			}
			emit(key, sum/row.Diag)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			if len(states) != 1 {
				return nil, fmt.Errorf("jacobi: row %v received %d values, want 1", key, len(states))
			}
			return states[0], nil
		},
		Distance: func(key, prev, curr any) float64 {
			return math.Abs(prev.(float64) - curr.(float64))
		},
		MaxIter:         cfg.MaxIter,
		DistThreshold:   cfg.DistThreshold,
		NumTasks:        cfg.NumTasks,
		CheckpointEvery: cfg.Checkpoint,
		Ops:             StateOps(),
	}
}

// lookup finds key in a key-sorted pair list by binary search.
func lookup(pairs []kv.Pair, key int64) (float64, error) {
	lo, hi := 0, len(pairs)
	for lo < hi {
		mid := (lo + hi) / 2
		k := pairs[mid].Key.(int64)
		switch {
		case k == key:
			return pairs[mid].Value.(float64), nil
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, fmt.Errorf("jacobi: x[%d] missing from broadcast state", key)
}

// Reference runs iters sequential Jacobi iterations from x⁰ = 0.
func Reference(s *System, iters int) []float64 {
	n := s.N
	x := make([]float64, n)
	for k := 0; k < iters; k++ {
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			sum := s.B[i]
			for j := 0; j < n; j++ {
				if j != i {
					sum -= s.A[i*n+j] * x[j]
				}
			}
			next[i] = sum / s.A[i*n+i]
		}
		x = next
	}
	return x
}

// Solve computes the exact solution by Gaussian elimination with
// partial pivoting — the ground truth the converged iteration must
// approach.
func Solve(s *System) ([]float64, error) {
	n := s.N
	a := make([]float64, len(s.A))
	copy(a, s.A)
	b := make([]float64, len(s.B))
	copy(b, s.B)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r*n+col]) > math.Abs(a[piv*n+col]) {
				piv = r
			}
		}
		if a[piv*n+col] == 0 {
			return nil, fmt.Errorf("jacobi: singular matrix")
		}
		if piv != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[piv*n+j] = a[piv*n+j], a[col*n+j]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] / a[col*n+col]
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i*n+j] * x[j]
		}
		x[i] = sum / a[i*n+i]
	}
	return x, nil
}

// Residual returns max |Ax − b|.
func Residual(s *System, x []float64) float64 {
	var worst float64
	for i := 0; i < s.N; i++ {
		sum := -s.B[i]
		for j := 0; j < s.N; j++ {
			sum += s.A[i*s.N+j] * x[j]
		}
		if r := math.Abs(sum); r > worst {
			worst = r
		}
	}
	return worst
}

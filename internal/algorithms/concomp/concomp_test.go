package concomp

import (
	"testing"
	"testing/quick"

	"imapreduce/internal/enginetest"
	"imapreduce/internal/graph"
	"imapreduce/internal/mapreduce"
)

// sparseGraph generates a graph sparse enough to have several weakly
// connected components.
func sparseGraph(n int, seed int64) *graph.Graph {
	return graph.Generate(graph.GenConfig{
		Nodes:  n,
		Degree: graph.LogNormalParams{Sigma: 1.0, Mu: -0.8}, // mean ≈ 0.74 edges/node
		Seed:   seed,
	})
}

func TestReferenceSmall(t *testing.T) {
	// Components {0,1,2} (0→1→2) and {3,4} (4→3), {5} isolated.
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(4, 3, 0)
	g := b.Build()
	want := []int64{0, 0, 0, 3, 3, 5}
	got := Reference(g)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("node %d: label %d, want %d (all %v)", i, got[i], w, got)
		}
	}
}

func TestIMRMatchesUnionFind(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	g := sparseGraph(400, 51)
	if err := WriteInputs(env.FS, env.At(), g, "/cc/static", "/cc/state"); err != nil {
		t.Fatal(err)
	}
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "cc", StaticPath: "/cc/static", StatePath: "/cc/state",
		MaxIter: 500, DistThreshold: 0.5, // stop when no label changed
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want := Reference(g)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		if got := out[int64(i)].(int64); got != want[i] {
			t.Fatalf("node %d: engine %d, union-find %d", i, got, want[i])
		}
	}
}

func TestMRMatchesUnionFind(t *testing.T) {
	env, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	g := sparseGraph(250, 52)
	if err := env.FS.WriteFile("/cc/init", env.At(), CombinedPairs(g), CombinedOps()); err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.RunIterative(env.MR, MRSpec("cc-mr", "/cc/init", "/cc/work", 2, 500, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("baseline did not converge")
	}
	want := Reference(g)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		got := out[int64(i)].(mapreduce.IterValue).State.(int64)
		if got != want[i] {
			t.Fatalf("node %d: baseline %d, union-find %d", i, got, want[i])
		}
	}
}

// TestPropertyComponentsAreMinLabeled: on random sparse graphs the
// converged labels always equal the union-find reference.
func TestPropertyComponentsAreMinLabeled(t *testing.T) {
	f := func(seed int64) bool {
		g := sparseGraph(80, seed%1000)
		env, err := enginetest.New(2)
		if err != nil {
			return false
		}
		if err := WriteInputs(env.FS, env.At(), g, "/cc/static", "/cc/state"); err != nil {
			return false
		}
		res, err := env.Core.Run(IMRJob(IMRConfig{
			Name: "cc-prop", StaticPath: "/cc/static", StatePath: "/cc/state",
			MaxIter: 300, DistThreshold: 0.5,
		}))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := Reference(g)
		out, err := env.ReadDir(res.OutputPath)
		if err != nil {
			return false
		}
		for i := 0; i < g.N; i++ {
			if out[int64(i)].(int64) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrizedStaticPairs(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 0, 0) // self loops dropped
	g := b.Build()
	pairs := SymmetrizedStaticPairs(g)
	adj0 := pairs[0].Value.(graph.Adj)
	adj1 := pairs[1].Value.(graph.Adj)
	if len(adj0.Dst) != 1 || adj0.Dst[0] != 1 {
		t.Fatalf("node 0 adjacency: %v", adj0.Dst)
	}
	if len(adj1.Dst) != 1 || adj1.Dst[0] != 0 {
		t.Fatalf("node 1 should see the reverse edge: %v", adj1.Dst)
	}
	if len(pairs[2].Value.(graph.Adj).Dst) != 0 {
		t.Fatal("isolated node should have no neighbors")
	}
}

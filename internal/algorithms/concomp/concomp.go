// Package concomp implements connected components by minimum-label
// propagation — a further member of the graph-based iterative class the
// paper's framework targets (§2.2): each node's state is the smallest
// node id it has heard of; maps push labels along edges, reduce keeps
// the minimum, and the computation converges when no label changes.
//
// Labels propagate along the symmetrized adjacency, so components are
// the weakly connected components of a directed graph.
package concomp

import (
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
)

// StateOps is the kv.Ops for (node id → label) records.
func StateOps() kv.Ops { return kv.OpsFor[int64, int64](nil) }

// SymmetrizedStaticPairs builds each node's undirected neighborhood
// (out-edges plus in-edges, deduplicated) as the static data.
func SymmetrizedStaticPairs(g *graph.Graph) []kv.Pair {
	nbr := make([]map[int32]bool, g.N)
	for i := range nbr {
		nbr[i] = map[int32]bool{}
	}
	for u := 0; u < g.N; u++ {
		dst, _ := g.Neighbors(int32(u))
		for _, v := range dst {
			if int(v) != u {
				nbr[u][v] = true
				nbr[v][int32(u)] = true
			}
		}
	}
	out := make([]kv.Pair, g.N)
	for u := 0; u < g.N; u++ {
		adj := graph.Adj{Dst: make([]int32, 0, len(nbr[u]))}
		for v := range nbr[u] {
			adj.Dst = append(adj.Dst, v)
		}
		out[u] = kv.Pair{Key: int64(u), Value: adj}
	}
	return out
}

// StatePairs is the initial labeling: every node labels itself.
func StatePairs(n int) []kv.Pair {
	out := make([]kv.Pair, n)
	for i := range out {
		out[i] = kv.Pair{Key: int64(i), Value: int64(i)}
	}
	return out
}

// WriteInputs stores the symmetrized adjacency and initial labels.
func WriteInputs(fs *dfs.DFS, at string, g *graph.Graph, staticPath, statePath string) error {
	if err := fs.WriteFile(staticPath, at, SymmetrizedStaticPairs(g), graph.AdjOps()); err != nil {
		return err
	}
	return fs.WriteFile(statePath, at, StatePairs(g.N), StateOps())
}

func mapFn(key, state, static any, emit kv.Emit) error {
	label := state.(int64)
	emit(key, label)
	if static == nil {
		return nil
	}
	for _, v := range static.(graph.Adj).Dst {
		emit(int64(v), label)
	}
	return nil
}

func reduceFn(key any, states []any) (any, error) {
	min := states[0].(int64)
	for _, s := range states[1:] {
		if v := s.(int64); v < min {
			min = v
		}
	}
	return min, nil
}

// DistanceFn counts label changes, so a threshold below 1 stops the
// computation exactly when labels are stable.
func DistanceFn(key, prev, curr any) float64 {
	if prev.(int64) == curr.(int64) {
		return 0
	}
	return 1
}

// IMRConfig parameterizes the iMapReduce job.
type IMRConfig struct {
	Name          string
	StaticPath    string
	StatePath     string
	OutputPath    string
	MaxIter       int
	DistThreshold float64
	NumTasks      int
	Checkpoint    int
}

// IMRJob builds the iMapReduce connected-components job.
func IMRJob(cfg IMRConfig) *core.Job {
	return &core.Job{
		Name:            cfg.Name,
		StatePath:       cfg.StatePath,
		StaticPath:      cfg.StaticPath,
		OutputPath:      cfg.OutputPath,
		Map:             mapFn,
		Reduce:          reduceFn,
		Distance:        DistanceFn,
		MaxIter:         cfg.MaxIter,
		DistThreshold:   cfg.DistThreshold,
		NumTasks:        cfg.NumTasks,
		CheckpointEvery: cfg.Checkpoint,
		Ops:             StateOps(),
	}
}

// CombinedPairs builds the baseline's label+adjacency records.
func CombinedPairs(g *graph.Graph) []kv.Pair {
	static := SymmetrizedStaticPairs(g)
	out := make([]kv.Pair, g.N)
	for i := 0; i < g.N; i++ {
		out[i] = kv.Pair{Key: int64(i), Value: mapreduce.IterValue{State: int64(i), Static: static[i].Value}}
	}
	return out
}

// CombinedOps is the kv.Ops for the baseline's records.
func CombinedOps() kv.Ops {
	return kv.OpsFor[int64, mapreduce.IterValue](mapreduce.IterValue.Bytes)
}

// MRSpec builds the baseline iterative chain.
func MRSpec(name, input, workDir string, numReduce, maxIter int, distThreshold float64) mapreduce.IterSpec {
	return mapreduce.IterSpec{
		Name:    name,
		Input:   input,
		WorkDir: workDir,
		Map: func(key, value any, emit kv.Emit) error {
			v := value.(mapreduce.IterValue)
			emit(key, v)
			label := v.State.(int64)
			for _, dst := range v.Static.(graph.Adj).Dst {
				emit(int64(dst), label)
			}
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			var min int64 = 1<<62 - 1
			var carrier *mapreduce.IterValue
			for _, v := range values {
				switch x := v.(type) {
				case int64:
					if x < min {
						min = x
					}
				case mapreduce.IterValue:
					c := x
					carrier = &c
					if l := x.State.(int64); l < min {
						min = l
					}
				}
			}
			if carrier == nil {
				return nil
			}
			emit(key, mapreduce.IterValue{State: min, Static: carrier.Static})
			return nil
		},
		NumReduce:     numReduce,
		Ops:           CombinedOps(),
		MaxIter:       maxIter,
		DistThreshold: distThreshold,
		Distance: func(key, prev, curr any) float64 {
			return DistanceFn(key, prev.(mapreduce.IterValue).State, curr.(mapreduce.IterValue).State)
		},
	}
}

// Reference computes weakly connected components with union-find,
// labeling every node with its component's minimum node id.
func Reference(g *graph.Graph) []int64 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for u := 0; u < g.N; u++ {
		dst, _ := g.Neighbors(int32(u))
		for _, v := range dst {
			union(int32(u), v)
		}
	}
	// With min-id unions plus path compression, roots are component
	// minima only if we normalize: compute min per root explicitly.
	minOf := map[int32]int64{}
	for i := 0; i < g.N; i++ {
		r := find(int32(i))
		if m, ok := minOf[r]; !ok || int64(i) < m {
			minOf[r] = int64(i)
		}
	}
	out := make([]int64, g.N)
	for i := 0; i < g.N; i++ {
		out[i] = minOf[find(int32(i))]
	}
	return out
}

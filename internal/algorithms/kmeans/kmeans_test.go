package kmeans

import (
	"bytes"
	"math"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/enginetest"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

func centroidsEqual(t *testing.T, got map[any]any, want []kv.Pair, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d centroids, want %d", len(got), len(want))
	}
	for _, w := range want {
		g, ok := got[w.Key]
		if !ok {
			t.Fatalf("centroid %v missing", w.Key)
		}
		gp, wp := g.(Point), w.Value.(Point)
		for d := range wp {
			if math.Abs(gp[d]-wp[d]) > tol {
				t.Fatalf("centroid %v dim %d: %v vs %v", w.Key, d, gp[d], wp[d])
			}
		}
	}
}

func TestIMRMatchesLloyd(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	points, cents := Generate(DataConfig{Users: 400, Dim: 4, K: 5, Seed: 21})
	if err := WriteInputs(env.FS, env.At(), points, cents, "/km/points", "/km/cents"); err != nil {
		t.Fatal(err)
	}
	const iters = 6
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "km", StaticPath: "/km/points", StatePath: "/km/cents", MaxIter: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(points, cents, iters)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	centroidsEqual(t, out, want, 1e-6)
}

func TestCombinerSameResultLessShuffle(t *testing.T) {
	points, cents := Generate(DataConfig{Users: 600, Dim: 3, K: 4, Seed: 22})
	var results [2]map[any]any
	var shuffle [2]int64
	for i, comb := range []bool{false, true} {
		env, err := enginetest.New(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteInputs(env.FS, env.At(), points, cents, "/km/points", "/km/cents"); err != nil {
			t.Fatal(err)
		}
		res, err := env.Core.Run(IMRJob(IMRConfig{
			Name: "km-comb", StaticPath: "/km/points", StatePath: "/km/cents",
			MaxIter: 4, UseCombiner: comb,
		}))
		if err != nil {
			t.Fatal(err)
		}
		results[i], err = env.ReadDir(res.OutputPath)
		if err != nil {
			t.Fatal(err)
		}
		shuffle[i] = env.M.Get(metrics.ShuffleBytes)
	}
	if shuffle[1] >= shuffle[0] {
		t.Fatalf("combiner did not cut shuffle: %d vs %d", shuffle[1], shuffle[0])
	}
	for k, a := range results[0] {
		b := results[1][k].(Point)
		for d, av := range a.(Point) {
			if math.Abs(av-b[d]) > 1e-6 {
				t.Fatalf("combiner changed centroid %v dim %d: %v vs %v", k, d, av, b[d])
			}
		}
	}
}

func TestAuxConvergenceDetection(t *testing.T) {
	env, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	points, cents := Generate(DataConfig{Users: 300, Dim: 3, K: 4, Seed: 23})
	if err := WriteInputs(env.FS, env.At(), points, cents, "/km/points", "/km/cents"); err != nil {
		t.Fatal(err)
	}
	res, err := env.Core.Run(IMRJob(IMRConfig{
		Name: "km-aux", StaticPath: "/km/points", StatePath: "/km/cents",
		MaxIter: 50, MoveThreshold: 1, // stop when assignments freeze
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("aux phase did not stop the job")
	}
	if res.Iterations >= 50 {
		t.Fatalf("ran to the bound: %d", res.Iterations)
	}
	// At convergence the centroids equal a fixed point of Lloyd's.
	want := Reference(points, cents, res.Iterations)
	out, err := env.ReadDir(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	centroidsEqual(t, out, want, 1e-6)
}

func TestMRMatchesLloyd(t *testing.T) {
	env, err := enginetest.New(3)
	if err != nil {
		t.Fatal(err)
	}
	points, cents := Generate(DataConfig{Users: 300, Dim: 4, K: 4, Seed: 24})
	if err := env.FS.WriteFile("/km/points", env.At(), points, PointOps()); err != nil {
		t.Fatal(err)
	}
	const iters = 5
	res, err := RunMR(env.MR, MRConfig{
		Name: "km-mr", PointsPath: "/km/points", WorkDir: "/km/work",
		Centroids: cents, NumReduce: 3, MaxIter: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(points, cents, iters)
	got := map[any]any{}
	for _, c := range res.Centroids {
		got[c.Key] = c.Value
	}
	centroidsEqual(t, got, want, 1e-6)
	if len(res.Stats) != iters {
		t.Fatalf("stats: %d", len(res.Stats))
	}
}

func TestMRWithCombinerAgrees(t *testing.T) {
	points, cents := Generate(DataConfig{Users: 300, Dim: 3, K: 3, Seed: 25})
	var outs [2][]kv.Pair
	for i, comb := range []bool{false, true} {
		env, err := enginetest.New(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.FS.WriteFile("/km/points", env.At(), points, PointOps()); err != nil {
			t.Fatal(err)
		}
		res, err := RunMR(env.MR, MRConfig{
			Name: "km-mrc", PointsPath: "/km/points", WorkDir: "/km/work",
			Centroids: cents, NumReduce: 2, MaxIter: 3, UseCombiner: comb,
		})
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = res.Centroids
	}
	for i := range outs[0] {
		a, b := outs[0][i].Value.(Point), outs[1][i].Value.(Point)
		for d := range a {
			if math.Abs(a[d]-b[d]) > 1e-6 {
				t.Fatalf("combiner changed baseline centroid %d", i)
			}
		}
	}
}

func TestMRConvergenceCheckJob(t *testing.T) {
	env, err := enginetest.New(2)
	if err != nil {
		t.Fatal(err)
	}
	points, cents := Generate(DataConfig{Users: 200, Dim: 3, K: 3, Seed: 26})
	if err := env.FS.WriteFile("/km/points", env.At(), points, PointOps()); err != nil {
		t.Fatal(err)
	}
	res, err := RunMR(env.MR, MRConfig{
		Name: "km-conv", PointsPath: "/km/points", WorkDir: "/km/work",
		Centroids: cents, NumReduce: 2, MaxIter: 50, MoveThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("baseline check job never detected convergence")
	}
	if res.Iterations >= 50 {
		t.Fatalf("ran to the bound: %d", res.Iterations)
	}
	// The check job ran each iteration: stats carry its wall time.
	for _, st := range res.Stats {
		if st.CheckWall <= 0 {
			t.Fatalf("iteration %d has no check job time", st.Iteration)
		}
	}
}

func TestNearestTieBreaksLowestKey(t *testing.T) {
	cents := []kv.Pair{
		{Key: int64(0), Value: Point{0}},
		{Key: int64(1), Value: Point{2}},
	}
	if Nearest(cents, Point{1}) != 0 {
		t.Fatal("tie should go to the lowest key")
	}
}

// TestIMROnTCPWithCombiner pushes Point and PartialSum through the real
// socket transport, broadcast mode included.
func TestIMROnTCPWithCombiner(t *testing.T) {
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2}, spec.IDs(), m)
	eng, err := core.NewEngine(fs, transport.NewTCPNetwork(), spec, m, core.Options{Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	points, cents := Generate(DataConfig{Users: 100, Dim: 3, K: 3, Seed: 61})
	if err := WriteInputs(fs, "worker-0", points, cents, "/km/points", "/km/cents"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(IMRJob(IMRConfig{
		Name: "km-tcp", StaticPath: "/km/points", StatePath: "/km/cents",
		MaxIter: 3, UseCombiner: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(points, cents, 3)
	got := map[any]any{}
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, err := fs.ReadFile(part, "worker-0")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			got[r.Key] = r.Value
		}
	}
	centroidsEqual(t, got, want, 1e-6)
}

func TestPointsSaveLoadRoundtrip(t *testing.T) {
	points, _ := Generate(DataConfig{Users: 40, Dim: 3, K: 2, Seed: 8})
	var buf bytes.Buffer
	if err := SavePoints(&buf, points); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(points) {
		t.Fatalf("%d points, want %d", len(got), len(points))
	}
	for i := range points {
		if got[i].Key != points[i].Key {
			t.Fatalf("point %d key changed", i)
		}
		a, b := points[i].Value.(Point), got[i].Value.(Point)
		for d := range a {
			if math.Abs(a[d]-b[d]) > 1e-12 {
				t.Fatalf("point %d dim %d: %v vs %v", i, d, a[d], b[d])
			}
		}
	}
}

func TestLoadPointsErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"noid",         // no tab
		"x\t1,2",       // bad id
		"1\t1,zebra",   // bad value
		"1\t1,2\n2\t1", // dim mismatch
	}
	for _, c := range cases {
		if _, err := LoadPoints(bytes.NewBufferString(c)); err == nil {
			t.Errorf("LoadPoints(%q) should fail", c)
		}
	}
}

func TestRandomInitCentroids(t *testing.T) {
	points, _ := Generate(DataConfig{Users: 50, Dim: 2, K: 3, Seed: 12})
	cents := RandomInitCentroids(points, 4, 1)
	if len(cents) != 4 {
		t.Fatalf("%d centroids", len(cents))
	}
	for i, c := range cents {
		if c.Key.(int64) != int64(i) {
			t.Fatalf("centroid keys must be 0..k-1, got %v", c.Key)
		}
		if len(c.Value.(Point)) != 2 {
			t.Fatalf("bad centroid dims")
		}
	}
	// Mutating a centroid must not touch the source point (deep copy).
	cents[0].Value.(Point)[0] = 12345
	for _, p := range points {
		if p.Value.(Point)[0] == 12345 {
			t.Fatal("centroid aliases a point")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p1, c1 := Generate(DataConfig{Users: 50, Dim: 2, K: 3, Seed: 9})
	p2, c2 := Generate(DataConfig{Users: 50, Dim: 2, K: 3, Seed: 9})
	for i := range p1 {
		a, b := p1[i].Value.(Point), p2[i].Value.(Point)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatal("same seed, different points")
		}
	}
	for i := range c1 {
		a, b := c1[i].Value.(Point), c2[i].Value.(Point)
		if a[0] != b[0] {
			t.Fatal("same seed, different centroids")
		}
	}
}

package kmeans

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"imapreduce/internal/kv"
)

// The point text format, one line per point: "<id>\t<v1>,<v2>,...".
// imrgen -kind points emits it; imrrun -algo kmeans consumes it.

// SavePoints writes point records in text format.
func SavePoints(w io.Writer, points []kv.Pair) error {
	bw := bufio.NewWriter(w)
	for _, p := range points {
		if _, err := fmt.Fprintf(bw, "%d\t", p.Key.(int64)); err != nil {
			return err
		}
		for i, v := range p.Value.(Point) {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadPoints parses the text format. All points must share one
// dimensionality.
func LoadPoints(r io.Reader) ([]kv.Pair, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []kv.Pair
	dim := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		head, rest, ok := strings.Cut(text, "\t")
		if !ok {
			return nil, fmt.Errorf("kmeans: line %d: missing tab separator", line)
		}
		id, err := strconv.ParseInt(strings.TrimSpace(head), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("kmeans: line %d: bad id %q", line, head)
		}
		fields := strings.Split(rest, ",")
		if dim == -1 {
			dim = len(fields)
		} else if len(fields) != dim {
			return nil, fmt.Errorf("kmeans: line %d: %d dims, want %d", line, len(fields), dim)
		}
		p := make(Point, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("kmeans: line %d: bad value %q", line, f)
			}
			p[i] = v
		}
		out = append(out, kv.Pair{Key: id, Value: p})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("kmeans: empty point file")
	}
	return out, nil
}

// Package kmeans implements K-means clustering (paper §5.1) as an
// iMapReduce job with one-to-all broadcast, optionally with a map-side
// combiner (§5.1.3) and an auxiliary convergence-detection phase (§5.3),
// plus the baseline MapReduce loop and a sequential Lloyd's reference.
//
// Static: the point coordinates. State: the k cluster centroids, which
// every map task needs — hence the broadcast mapping and synchronous map
// execution.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
)

// Point is one observation (or one centroid coordinate).
type Point []float64

// Bytes implements kv.Sized.
func (p Point) Bytes() int { return 8*len(p) + 4 }

// PartialSum is the combiner's aggregate: a vector sum with a count.
type PartialSum struct {
	Vec   []float64
	Count int64
}

// Bytes implements kv.Sized.
func (s PartialSum) Bytes() int { return 8*len(s.Vec) + 12 }

func init() {
	kv.RegisterWireType(Point{})
	kv.RegisterWireType(PartialSum{})
	kv.RegisterValueCodec(Point{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			return kv.AppendFloat64Slice(buf, v.(Point)), true
		},
		Decode: func(data []byte) (any, int, error) {
			xs, n, err := kv.Float64SliceAt(data)
			return Point(xs), n, err
		},
	})
	kv.RegisterValueCodec(PartialSum{}, kv.ValueCodec{
		Append: func(buf []byte, v any) ([]byte, bool) {
			s := v.(PartialSum)
			return kv.AppendVarint(kv.AppendFloat64Slice(buf, s.Vec), s.Count), true
		},
		Decode: func(data []byte) (any, int, error) {
			vec, n, err := kv.Float64SliceAt(data)
			if err != nil {
				return nil, 0, err
			}
			count, m, err := kv.Varint(data[n:])
			if err != nil {
				return nil, 0, err
			}
			return PartialSum{Vec: vec, Count: count}, n + m, nil
		},
	})
}

// PointOps is the kv.Ops for (id → Point) records.
func PointOps() kv.Ops { return kv.OpsFor[int64, Point](Point.Bytes) }

// DataConfig drives the synthetic Last.fm-like dataset: Users points in
// Dim dimensions drawn around K well-separated cluster centers — the
// stand-in for the paper's listening-history feature vectors.
type DataConfig struct {
	Users int
	Dim   int
	K     int
	Seed  int64
	// Spread is the intra-cluster standard deviation relative to the
	// inter-center distance (default 0.15).
	Spread float64
}

// Generate produces the points and the initial centroids (the true
// centers perturbed, so no cluster starts empty).
func Generate(cfg DataConfig) (points []kv.Pair, centroids []kv.Pair) {
	if cfg.Spread <= 0 {
		cfg.Spread = 0.15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]Point, cfg.K)
	for c := range centers {
		centers[c] = make(Point, cfg.Dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64() * 100
		}
	}
	points = make([]kv.Pair, cfg.Users)
	for i := range points {
		c := centers[i%cfg.K]
		p := make(Point, cfg.Dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*cfg.Spread*10
		}
		points[i] = kv.Pair{Key: int64(i), Value: p}
	}
	centroids = make([]kv.Pair, cfg.K)
	for c := range centroids {
		p := make(Point, cfg.Dim)
		for d := range p {
			p[d] = centers[c][d] + rng.NormFloat64()*cfg.Spread*5
		}
		centroids[c] = kv.Pair{Key: int64(c), Value: p}
	}
	return points, centroids
}

// RandomInitCentroids picks k distinct random points as the starting
// centroids — the classic Lloyd's initialization. Unlike Generate's
// near-center initialization it can place several centroids in one true
// cluster, so convergence takes visibly many iterations.
func RandomInitCentroids(points []kv.Pair, k int, seed int64) []kv.Pair {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(points))[:k]
	out := make([]kv.Pair, k)
	for c, i := range idx {
		src := points[i].Value.(Point)
		p := make(Point, len(src))
		copy(p, src)
		out[c] = kv.Pair{Key: int64(c), Value: p}
	}
	return out
}

// WriteInputs stores points (static) and initial centroids (state).
func WriteInputs(fs *dfs.DFS, at string, points, centroids []kv.Pair, staticPath, statePath string) error {
	if err := fs.WriteFile(staticPath, at, points, PointOps()); err != nil {
		return err
	}
	return fs.WriteFile(statePath, at, centroids, PointOps())
}

// Nearest returns the centroid key closest to p (lowest key wins ties;
// the centroid list must be key-sorted).
func Nearest(centroids []kv.Pair, p Point) int64 {
	best, bestD := int64(-1), math.MaxFloat64
	for _, c := range centroids {
		if d := sqDist(c.Value.(Point), p); d < bestD {
			best, bestD = c.Key.(int64), d
		}
	}
	return best
}

func sqDist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// mapFn assigns this task's points to the nearest broadcast centroid
// (paper §5.1.1 Map).
func mapFn(key, state, static any, emit kv.Emit) error {
	centroids := state.([]kv.Pair)
	p := static.(Point)
	emit(Nearest(centroids, p), p)
	return nil
}

// reduceFn averages the members of a cluster (paper §5.1.1 Reduce); it
// accepts raw points and combiner partial sums.
func reduceFn(key any, values []any) (any, error) {
	var vec []float64
	var count int64
	add := func(v []float64, c int64) {
		if vec == nil {
			vec = make([]float64, len(v))
		}
		for i := range v {
			vec[i] += v[i]
		}
		count += c
	}
	for _, v := range values {
		switch x := v.(type) {
		case Point:
			add(x, 1)
		case PartialSum:
			add(x.Vec, x.Count)
		default:
			return nil, fmt.Errorf("kmeans: unexpected reduce value %T", v)
		}
	}
	out := make(Point, len(vec))
	for i := range vec {
		out[i] = vec[i] / float64(count)
	}
	return out, nil
}

// combineFn is the map-side partial aggregation (§5.1.3).
func combineFn(key any, values []any) (any, error) {
	var sum PartialSum
	for _, v := range values {
		switch x := v.(type) {
		case Point:
			if sum.Vec == nil {
				sum.Vec = make([]float64, len(x))
			}
			for i := range x {
				sum.Vec[i] += x[i]
			}
			sum.Count++
		case PartialSum:
			if sum.Vec == nil {
				sum.Vec = make([]float64, len(x.Vec))
			}
			for i := range x.Vec {
				sum.Vec[i] += x.Vec[i]
			}
			sum.Count += x.Count
		}
	}
	return sum, nil
}

// DistanceFn is the Euclidean centroid movement.
func DistanceFn(key, prev, curr any) float64 {
	return math.Sqrt(sqDist(prev.(Point), curr.(Point)))
}

// IMRConfig parameterizes the iMapReduce job.
type IMRConfig struct {
	Name          string
	StaticPath    string // points
	StatePath     string // initial centroids
	OutputPath    string
	MaxIter       int
	DistThreshold float64
	NumTasks      int
	UseCombiner   bool
	Checkpoint    int
	// MoveThreshold, when > 0, attaches the auxiliary convergence-
	// detection phase (§5.3): terminate when fewer than this many
	// points changed cluster.
	MoveThreshold int64
}

// IMRJob builds the iMapReduce K-means job: one-to-all mapping with
// synchronous map execution, as §5.1.2 requires.
func IMRJob(cfg IMRConfig) *core.Job {
	job := &core.Job{
		Name:            cfg.Name,
		StatePath:       cfg.StatePath,
		StaticPath:      cfg.StaticPath,
		OutputPath:      cfg.OutputPath,
		Mapping:         core.OneToAll,
		SyncMap:         true,
		Map:             mapFn,
		Reduce:          reduceFn,
		Distance:        DistanceFn,
		MaxIter:         cfg.MaxIter,
		DistThreshold:   cfg.DistThreshold,
		NumTasks:        cfg.NumTasks,
		CheckpointEvery: cfg.Checkpoint,
		Ops:             PointOps(),
	}
	if cfg.UseCombiner {
		job.Combine = combineFn
	}
	if cfg.MoveThreshold > 0 {
		var assignments sync.Map // nid → cid, kept across iterations
		aux := &core.Job{
			Name:       cfg.Name + "-conv",
			StaticPath: cfg.StaticPath,
			Mapping:    core.OneToAll,
			SyncMap:    true,
			Map: func(key, state, static any, emit kv.Emit) error {
				cid := Nearest(state.([]kv.Pair), static.(Point))
				prev, seen := assignments.Load(key)
				assignments.Store(key, cid)
				moved := int64(1)
				if seen && prev.(int64) == cid {
					moved = 0
				}
				emit(int64(0), moved)
				return nil
			},
			Reduce: func(key any, values []any) (any, error) {
				var moved int64
				for _, v := range values {
					moved += v.(int64)
				}
				return moved, nil
			},
			Ops: kv.OpsFor[int64, int64](nil),
		}
		job.AddAuxiliary(aux)
		job.AuxDecide = func(iter int, outputs []kv.Pair) bool {
			if iter < 2 { // first assignment round always "moves" everyone
				return false
			}
			var moved int64
			for _, p := range outputs {
				moved += p.Value.(int64)
			}
			return moved < cfg.MoveThreshold
		}
	}
	return job
}

// MRConfig parameterizes the baseline loop.
type MRConfig struct {
	Name        string
	PointsPath  string
	WorkDir     string
	Centroids   []kv.Pair // initial centroids
	NumReduce   int
	MaxIter     int
	UseCombiner bool
	// MoveThreshold > 0 runs the extra per-iteration convergence-check
	// MapReduce job (Fig. 20's baseline).
	MoveThreshold int64
}

// MRIterStats captures one baseline iteration.
type MRIterStats struct {
	Iteration            int
	JobWall, JobInit     int64 // nanoseconds
	CheckWall, CheckInit int64
}

// MRResult is the baseline outcome.
type MRResult struct {
	Iterations int
	Centroids  []kv.Pair
	Stats      []MRIterStats
	Converged  bool
}

// RunMR executes the baseline: every iteration reloads and reshuffles
// the full point set through a fresh MapReduce job; the centroids travel
// through the job closure the way Hadoop ships them in the distributed
// cache.
func RunMR(e *mapreduce.Engine, cfg MRConfig) (*MRResult, error) {
	centroids := append([]kv.Pair(nil), cfg.Centroids...)
	PointOps().SortPairs(centroids)
	res := &MRResult{}
	prevAssign := map[int64]int64{}
	for i := 1; cfg.MaxIter <= 0 || i <= cfg.MaxIter; i++ {
		cur := centroids
		job := &mapreduce.Job{
			Name:   fmt.Sprintf("%s-iter-%03d", cfg.Name, i),
			Input:  []string{cfg.PointsPath},
			Output: fmt.Sprintf("%s/iter-%03d", cfg.WorkDir, i),
			Map: func(key, value any, emit kv.Emit) error {
				emit(Nearest(cur, value.(Point)), value)
				return nil
			},
			Reduce: func(key any, values []any, emit kv.Emit) error {
				v, err := reduceFn(key, values)
				if err != nil {
					return err
				}
				emit(key, v)
				return nil
			},
			NumReduce: cfg.NumReduce,
			Ops:       PointOps(),
		}
		if cfg.UseCombiner {
			job.Combine = func(key any, values []any, emit kv.Emit) error {
				v, err := combineFn(key, values)
				if err != nil {
					return err
				}
				emit(key, v)
				return nil
			}
		}
		jr, err := e.Submit(job)
		if err != nil {
			return nil, err
		}
		next, err := readCentroids(e, job.Output)
		if err != nil {
			return nil, err
		}
		st := MRIterStats{Iteration: i, JobWall: int64(jr.Wall), JobInit: int64(jr.Init)}

		converged := false
		if cfg.MoveThreshold > 0 {
			moved, cw, err := runMoveCheck(e, cfg, next, prevAssign, i)
			if err != nil {
				return nil, err
			}
			st.CheckWall, st.CheckInit = int64(cw.Wall), int64(cw.Init)
			if i >= 2 && moved < cfg.MoveThreshold {
				converged = true
			}
		}
		res.Stats = append(res.Stats, st)
		res.Iterations = i
		centroids = next
		if converged {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// runMoveCheck is the baseline's separate convergence-detection job: it
// re-assigns every point under the new centroids and counts moves
// against the driver-kept previous assignment.
func runMoveCheck(e *mapreduce.Engine, cfg MRConfig, centroids []kv.Pair, prevAssign map[int64]int64, iter int) (int64, *mapreduce.JobResult, error) {
	var mu sync.Mutex
	newAssign := map[int64]int64{}
	job := &mapreduce.Job{
		Name:   fmt.Sprintf("%s-check-%03d", cfg.Name, iter),
		Input:  []string{cfg.PointsPath},
		Output: fmt.Sprintf("%s/check-%03d", cfg.WorkDir, iter),
		Map: func(key, value any, emit kv.Emit) error {
			cid := Nearest(centroids, value.(Point))
			nid := key.(int64)
			mu.Lock()
			newAssign[nid] = cid
			prev, seen := prevAssign[nid]
			mu.Unlock()
			moved := int64(1)
			if seen && prev == cid {
				moved = 0
			}
			emit(int64(0), moved)
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			var moved int64
			for _, v := range values {
				moved += v.(int64)
			}
			emit(key, moved)
			return nil
		},
		NumReduce: 1,
		Ops:       kv.OpsFor[int64, int64](nil),
	}
	jr, err := e.Submit(job)
	if err != nil {
		return 0, nil, err
	}
	var moved int64
	for _, part := range e.FS().List(job.Output + "/") {
		recs, err := e.FS().ReadFile(part, e.Spec().IDs()[0])
		if err != nil {
			return 0, nil, err
		}
		for _, r := range recs {
			moved += r.Value.(int64)
		}
		e.FS().Delete(part)
	}
	for k, v := range newAssign {
		prevAssign[k] = v
	}
	return moved, jr, nil
}

func readCentroids(e *mapreduce.Engine, dir string) ([]kv.Pair, error) {
	var out []kv.Pair
	for _, part := range e.FS().List(dir + "/") {
		recs, err := e.FS().ReadFile(part, e.Spec().IDs()[0])
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	PointOps().SortPairs(out)
	return out, nil
}

// Reference runs iters rounds of sequential Lloyd's algorithm from the
// given centroids.
func Reference(points, centroids []kv.Pair, iters int) []kv.Pair {
	cur := append([]kv.Pair(nil), centroids...)
	PointOps().SortPairs(cur)
	for k := 0; k < iters; k++ {
		sums := map[int64][]float64{}
		counts := map[int64]int64{}
		for _, pp := range points {
			p := pp.Value.(Point)
			cid := Nearest(cur, p)
			if sums[cid] == nil {
				sums[cid] = make([]float64, len(p))
			}
			for i := range p {
				sums[cid][i] += p[i]
			}
			counts[cid]++
		}
		next := make([]kv.Pair, 0, len(sums))
		for _, c := range cur {
			cid := c.Key.(int64)
			if counts[cid] == 0 {
				continue // cluster emptied: key drops, as in the engines
			}
			p := make(Point, len(sums[cid]))
			for i := range p {
				p[i] = sums[cid][i] / float64(counts[cid])
			}
			next = append(next, kv.Pair{Key: cid, Value: p})
		}
		cur = next
	}
	return cur
}

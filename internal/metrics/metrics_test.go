package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddGet(t *testing.T) {
	s := NewSet()
	if s.Get("x") != 0 {
		t.Fatal("fresh counter not zero")
	}
	s.Add("x", 5)
	s.Add("x", -2)
	if got := s.Get("x"); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Add(ShuffleBytes, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(ShuffleBytes); got != 16000 {
		t.Fatalf("lost updates: got %d", got)
	}
}

func TestSpans(t *testing.T) {
	s := NewSet()
	s.AddSpan("init", 2*time.Second)
	s.AddSpan("init", time.Second)
	if got := s.Span("init"); got != 3*time.Second {
		t.Fatalf("got %v", got)
	}
	if s.Span("missing") != 0 {
		t.Fatal("missing span not zero")
	}
}

func TestTimed(t *testing.T) {
	s := NewSet()
	s.Timed("work", func() { time.Sleep(5 * time.Millisecond) })
	if s.Span("work") < 5*time.Millisecond {
		t.Fatalf("Timed undercounted: %v", s.Span("work"))
	}
}

func TestSnapshotAndString(t *testing.T) {
	s := NewSet()
	s.Add("b", 2)
	s.Add("a", 1)
	s.AddSpan("t", time.Millisecond)
	snap := s.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 || snap["t"] != int64(time.Millisecond) {
		t.Fatalf("bad snapshot: %v", snap)
	}
	str := s.String()
	if !strings.Contains(str, "a=1") || strings.Index(str, "a=1") > strings.Index(str, "b=2") {
		t.Fatalf("String not sorted: %q", str)
	}
}

func TestNilSetIsSafe(t *testing.T) {
	var s *Set
	s.Add("x", 1)
	s.AddSpan("y", time.Second)
	if s.Get("x") != 0 || s.Span("y") != 0 || s.Snapshot() != nil {
		t.Fatal("nil set should be inert")
	}
}

// Package metrics provides the lightweight instrumentation both engines
// report through: named atomic counters, duration accumulators, and
// per-iteration time series. A metrics.Set is created per run and is safe
// for concurrent use by worker goroutines.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known counter names shared by the engines, so the experiment
// harness can read them uniformly.
const (
	ShuffleBytes      = "shuffle.bytes"        // map→reduce data volume
	ShuffleRemote     = "shuffle.remote"       // portion crossing worker boundaries
	StateBytes        = "state.bytes"          // reduce→map iterated state volume
	StateRemote       = "state.remote"         // portion crossing worker boundaries
	DFSReadBytes      = "dfs.read.bytes"       // total DFS reads
	DFSReadRemote     = "dfs.read.remote"      // DFS reads served by a remote replica
	DFSWriteBytes     = "dfs.write.bytes"      // DFS writes (x replication)
	TasksLaunched     = "tasks.launched"       // map+reduce task launches
	JobsLaunched      = "jobs.launched"        // MapReduce jobs submitted
	TaskMigrations    = "tasks.migrations"     // iMapReduce load-balancing moves
	Checkpoints       = "checkpoints.written"  // state checkpoints dumped to DFS
	SpeculativeTasks  = "tasks.speculative"    // speculative (backup) task launches
	TaskRetries       = "tasks.retries"        // failed task re-executions
	SendRetries       = "send.retries"         // transport sends that needed retrying
	SendFailures      = "send.failures"        // sends abandoned after all retries
	HeartbeatsSent    = "heartbeats.sent"      // worker→master liveness beats
	Iterations        = "iterations.completed" // committed iteration boundaries
	FailuresDetected  = "failures.detected"    // workers declared dead by missed heartbeats
	CheckpointsGCed   = "checkpoints.gced"     // superseded checkpoint/manifest files deleted
	CheckpointsStale  = "checkpoints.stale"    // checkpoint writes abandoned by a generation change
	CheckpointRetries = "checkpoints.retries"  // checkpoint DFS writes that needed retrying
	CheckpointsLost   = "checkpoints.lost"     // checkpoint writes abandoned after all retries
	ManifestCommits   = "manifests.committed"  // durable checkpoint manifests committed
	RunsResumed       = "runs.resumed"         // cold restarts from a durable manifest
)

// Counter names reported by the multi-tenant job service
// (internal/serve). ServeQueueWait is a duration accumulator (AddSpan).
const (
	ServeSubmitted     = "serve.jobs.submitted"          // jobs admitted into a queue
	ServeRejectedQueue = "serve.jobs.rejected.queuefull" // submissions bounced by the bounded queue
	ServeRejectedQuota = "serve.jobs.rejected.quota"     // submissions bounced by a tenant quota
	ServeDispatched    = "serve.jobs.dispatched"         // jobs handed a slot by the scheduler
	ServeCompleted     = "serve.jobs.completed"          // jobs finished successfully
	ServeFailed        = "serve.jobs.failed"             // jobs finished with a non-cancel error
	ServeCanceled      = "serve.jobs.canceled"           // jobs canceled while queued or running
	ServeQueueWait     = "serve.queue.wait"              // cumulative submit→dispatch wait
)

// Set is a registry of counters and timers for one engine run.
type Set struct {
	mu       sync.Mutex
	counters map[string]*int64
	spans    map[string]*int64 // accumulated nanoseconds
}

// NewSet returns an empty metrics set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*int64),
		spans:    make(map[string]*int64),
	}
}

func (s *Set) counter(name string) *int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = new(int64)
		s.counters[name] = c
	}
	return c
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(s.counter(name), delta)
}

// Get returns the current value of counter name (0 if never written).
func (s *Set) Get(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	c, ok := s.counters[name]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	return atomic.LoadInt64(c)
}

// AddSpan accumulates d into the named duration accumulator.
func (s *Set) AddSpan(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	c, ok := s.spans[name]
	if !ok {
		c = new(int64)
		s.spans[name] = c
	}
	s.mu.Unlock()
	atomic.AddInt64(c, int64(d))
}

// Span returns the accumulated duration for name.
func (s *Set) Span(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.spans[name]
	if !ok {
		return 0
	}
	return time.Duration(atomic.LoadInt64(c))
}

// Timed runs fn and accumulates its wall time under name.
func (s *Set) Timed(name string, fn func()) {
	start := time.Now()
	fn()
	s.AddSpan(name, time.Since(start))
}

// Snapshot returns a copy of all counters (durations reported in
// nanoseconds under their span name).
func (s *Set) Snapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters)+len(s.spans))
	for name, c := range s.counters {
		out[name] = atomic.LoadInt64(c)
	}
	for name, c := range s.spans {
		out[name] = atomic.LoadInt64(c)
	}
	return out
}

// String renders the snapshot sorted by name, for logs and debugging.
func (s *Set) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d ", n, snap[n])
	}
	return strings.TrimSpace(b.String())
}

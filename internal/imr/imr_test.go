package imr

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

func TestBatchJob(t *testing.T) {
	c, err := NewCluster(Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	recs := []kv.Pair{
		{Key: int64(0), Value: "a b a"},
		{Key: int64(1), Value: "b c"},
	}
	if err := c.Write("/in", recs, kv.OpsFor[int64, string](nil)); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunJob(&mapreduce.Job{
		Name: "wc", Input: []string{"/in"}, Output: "/out",
		Map: func(key, value any, emit kv.Emit) error {
			for _, w := range strings.Fields(value.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			var n int64
			for _, v := range values {
				n += v.(int64)
			}
			emit(key, n)
			return nil
		},
		NumReduce: 2,
		Ops:       kv.OpsFor[string, int64](nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRecords != 3 {
		t.Fatalf("output records = %d", res.OutputRecords)
	}
	out, err := c.ReadAll("/out")
	if err != nil {
		t.Fatal(err)
	}
	if out["a"] != int64(2) || out["b"] != int64(2) || out["c"] != int64(1) {
		t.Fatalf("counts: %v", out)
	}
}

func TestIterativeJob(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []kv.Pair
	for i := 0; i < 12; i++ {
		recs = append(recs, kv.Pair{Key: int64(i), Value: 1.0})
	}
	if err := c.Write("/state", recs, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIterative(&core.Job{
		Name: "halve", StatePath: "/state", MaxIter: 5,
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			return states[0].(float64) / 2, nil
		},
		Ops: kv.OpsFor[int64, float64](nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadAll(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if math.Abs(v.(float64)-1.0/32) > 1e-12 {
			t.Fatalf("key %v = %v", k, v)
		}
	}
}

func TestJobChain(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []kv.Pair
	for i := 0; i < 6; i++ {
		recs = append(recs, kv.Pair{Key: int64(i), Value: mapreduce.IterValue{State: 1.0}})
	}
	if err := c.Write("/init", recs, kv.OpsFor[int64, mapreduce.IterValue](nil)); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunJobChain(mapreduce.IterSpec{
		Name: "chain", Input: "/init", WorkDir: "/work",
		Map: func(key, value any, emit kv.Emit) error {
			emit(key, value)
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			v := values[0].(mapreduce.IterValue)
			emit(key, mapreduce.IterValue{State: v.State.(float64) * 2})
			return nil
		},
		NumReduce: 2,
		Ops:       kv.OpsFor[int64, mapreduce.IterValue](nil),
		MaxIter:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	out, err := c.ReadAll(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if v.(mapreduce.IterValue).State.(float64) != 8 {
			t.Fatalf("key %v = %v", k, v)
		}
	}
}

func TestOptionsPlumbing(t *testing.T) {
	m := metrics.NewSet()
	c, err := NewCluster(Options{
		Workers: 5,
		TCP:     true,
		DFS:     &dfs.Config{BlockSize: 1 << 10, Replication: 2},
		Core:    &core.Options{Timeout: 7 * time.Second},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Spec.Nodes) != 5 {
		t.Fatalf("workers: %d", len(c.Spec.Nodes))
	}
	if c.Metrics != m {
		t.Fatal("metrics not plumbed")
	}
	if c.MapReduceEngine() == nil || c.CoreEngine() == nil {
		t.Fatal("engines missing")
	}
	if err := c.FailWorker("worker-0"); err == nil {
		t.Fatal("FailWorker with no active run should error")
	}
}

// TestNetworkOverrideAndStall runs an iterative job through the facade
// over a duplicating FaultyNetwork, with heartbeats on and a short
// undetected stall injected mid-run via the passthrough.
func TestNetworkOverrideAndStall(t *testing.T) {
	fnet := transport.NewFaultyNetwork(transport.NewChanNetwork(),
		transport.FaultyOptions{Seed: 5, DupRate: 0.1})
	c, err := NewCluster(Options{
		Workers: 2,
		Network: fnet,
		Core: &core.Options{
			Timeout:           20 * time.Second,
			HeartbeatInterval: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var recs []kv.Pair
	for i := 0; i < 12; i++ {
		recs = append(recs, kv.Pair{Key: int64(i), Value: 1.0})
	}
	if err := c.Write("/state", recs, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
	// A stall shorter than the detection window: the run just rides it
	// out; nothing may be lost or double-applied.
	time.AfterFunc(5*time.Millisecond, func() { c.StallWorker("worker-1", 15*time.Millisecond) })
	res, err := c.RunIterative(&core.Job{
		Name: "halve-faulty", StatePath: "/state", MaxIter: 8, CheckpointEvery: 2,
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			time.Sleep(500 * time.Microsecond)
			return states[0].(float64) / 2, nil
		},
		Ops: kv.OpsFor[int64, float64](nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadAll(res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 12 {
		t.Fatalf("%d outputs", len(out))
	}
	for k, v := range out {
		if math.Abs(v.(float64)-1.0/256) > 1e-12 {
			t.Fatalf("key %v = %v", k, v)
		}
	}
	if fnet.Dups() == 0 {
		t.Fatal("faulty network not in the path")
	}
}

func TestReadAllMissing(t *testing.T) {
	c, err := NewCluster(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAll("/nope"); err == nil {
		t.Fatal("expected error")
	}
	// Single-file (non-directory) read works too.
	if err := c.Write("/single", []kv.Pair{{Key: int64(1), Value: 2.0}}, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadAll("/single")
	if err != nil || out[int64(1)] != 2.0 {
		t.Fatalf("single read: %v %v", out, err)
	}
}

func TestReadAllAsTyped(t *testing.T) {
	c, err := NewCluster(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := []kv.Pair{{Key: int64(1), Value: 0.5}, {Key: int64(2), Value: 0.25}}
	if err := c.Write("/typed", recs, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAllAs[int64, float64](c, "/typed")
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != 0.5 || out[2] != 0.25 {
		t.Fatalf("typed read: %v", out)
	}
	// Wrong type parameters fail loudly, not with a zero value.
	if _, err := ReadAllAs[string, float64](c, "/typed"); err == nil {
		t.Fatal("key type mismatch accepted")
	}
	if _, err := ReadAllAs[int64, string](c, "/typed"); err == nil {
		t.Fatal("value type mismatch accepted")
	}
}

func TestReadAllConflictingParts(t *testing.T) {
	c, err := NewCluster(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ops := kv.OpsFor[int64, float64](nil)
	if err := c.Write("/dup/part-0", []kv.Pair{{Key: int64(1), Value: 1.0}}, ops); err != nil {
		t.Fatal(err)
	}
	// Same key, same value in another part file: fine (replicated output).
	if err := c.Write("/dup/part-1", []kv.Pair{{Key: int64(1), Value: 1.0}}, ops); err != nil {
		t.Fatal(err)
	}
	if out, err := c.ReadAll("/dup"); err != nil || out[int64(1)] != 1.0 {
		t.Fatalf("equal duplicates rejected: %v %v", out, err)
	}
	// Same key, different value: an error, not a silent overwrite.
	if err := c.Write("/dup/part-2", []kv.Pair{{Key: int64(1), Value: 2.0}}, ops); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAll("/dup"); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflict not reported: %v", err)
	}
}

func halveJob(name string, maxIter int) *core.Job {
	return &core.Job{
		Name: name, StatePath: "/state", MaxIter: maxIter,
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			time.Sleep(200 * time.Microsecond)
			return states[0].(float64) / 2, nil
		},
		Ops: kv.OpsFor[int64, float64](nil),
	}
}

func TestRunIterativeCtxCancel(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []kv.Pair
	for i := 0; i < 12; i++ {
		recs = append(recs, kv.Pair{Key: int64(i), Value: 1.0})
	}
	if err := c.Write("/state", recs, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunIterativeCtx(ctx, halveJob("canceled", 100000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The engine must be reusable after a canceled run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel2)
	if _, err := c.RunIterativeCtx(ctx2, halveJob("canceled-midway", 100000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: want context.Canceled, got %v", err)
	}
	if res, err := c.RunIterative(halveJob("clean", 3)); err != nil || res.Iterations != 3 {
		t.Fatalf("engine not reusable after cancel: %v %v", res, err)
	}
}

func TestRunJobCtxCancel(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write("/in", []kv.Pair{{Key: int64(0), Value: "a b"}}, kv.OpsFor[int64, string](nil)); err != nil {
		t.Fatal(err)
	}
	job := &mapreduce.Job{
		Name: "wc-canceled", Input: []string{"/in"}, Output: "/out",
		Map: func(key, value any, emit kv.Emit) error {
			for _, w := range strings.Fields(value.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Reduce: func(key any, values []any, emit kv.Emit) error {
			emit(key, int64(len(values)))
			return nil
		},
		NumReduce: 1,
		Ops:       kv.OpsFor[string, int64](nil),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunJobCtx(ctx, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res, err := c.RunJobCtx(context.Background(), job); err != nil || res.OutputRecords != 2 {
		t.Fatalf("engine not reusable after cancel: %v %v", res, err)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	empty := cluster.Spec{} // no nodes, no slots
	if _, err := NewCluster(Options{Spec: &empty}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestKillRunAndResumeIterative exercises the facade's durable-recovery
// surface: kill the active run mid-flight, then resume from the newest
// durable checkpoint manifest and finish with the exact result.
func TestKillRunAndResumeIterative(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []kv.Pair
	for i := 0; i < 12; i++ {
		recs = append(recs, kv.Pair{Key: int64(i), Value: 1.0})
	}
	if err := c.Write("/state", recs, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}

	const maxIter = 20
	job := halveJob("killed", maxIter)
	job.CheckpointEvery = 2
	go func() {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-deadline:
				return
			default:
			}
			if c.KillRun() == nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	if _, err := c.RunIterative(job); !errors.Is(err, core.ErrKilled) {
		t.Fatalf("want core.ErrKilled, got %v", err)
	}

	job2 := halveJob("killed", maxIter)
	job2.CheckpointEvery = 2
	res, err := c.ResumeIterative(job2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != maxIter {
		t.Fatalf("resumed iterations = %d, want %d", res.Iterations, maxIter)
	}
	out, err := ReadAllAs[int64, float64](c, res.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(2, -maxIter)
	for k, v := range out {
		if v != want {
			t.Fatalf("key %d = %v, want %v", k, v, want)
		}
	}
	if len(out) != 12 {
		t.Fatalf("output keys = %d, want 12", len(out))
	}
}

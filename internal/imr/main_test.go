package imr

import (
	"testing"

	"imapreduce/internal/leaktest"
)

// TestMain fails the package when any goroutine born during the tests
// is still running after the last one finishes — the teardown
// discipline (every engine Run and network Close must join its
// goroutines) is enforced, not just hoped for. See internal/leaktest.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

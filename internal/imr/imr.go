// Package imr is the front door of the framework: one Cluster owning
// the DFS, the metrics, and both engines, mirroring the paper's
// prototype, which "supports any Hadoop job" and lets users "turn on
// iterative processing functionalities for implementing iterative
// algorithms, or turn them off for implementing MapReduce jobs as
// usual" (§3.5).
//
//	c, _ := imr.NewCluster(imr.Options{Workers: 4})
//	h, _ := c.Submit(ctx, imr.JobSpec{Iterative: iterJob}, imr.SubmitOptions{})
//	res, err := h.Result() // or h.Wait(ctx) / h.Cancel() / h.Status()
//
// Submit is the single entry point for all three execution styles —
// iMapReduce iterative jobs, plain batch MapReduce, and the baseline
// job-chain pattern — and returns a JobHandle immediately; the former
// blocking Run*/Resume* methods survive as deprecated wrappers.
package imr

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
	"imapreduce/internal/transport"
)

// Options configures a Cluster. The zero value gives 4 uniform workers,
// an in-process transport, an in-memory DFS with the paper's block size
// and replication, and Hadoop-like defaults everywhere else.
type Options struct {
	// Workers is the cluster size (default 4, the paper's local
	// cluster).
	Workers int
	// Spec overrides the generated uniform spec entirely (Workers is
	// then ignored).
	Spec *cluster.Spec
	// TCP uses real loopback sockets between tasks instead of
	// in-process channels.
	TCP bool
	// Network overrides the task transport entirely — e.g. a
	// transport.FaultyNetwork for chaos testing. TCP is then ignored.
	Network transport.Network
	// DFS overrides the file system configuration.
	DFS *dfs.Config
	// JobInitOverhead / TaskStartOverhead emulate Hadoop scheduling
	// costs (0 = free, the default).
	JobInitOverhead   time.Duration
	TaskStartOverhead time.Duration
	// MapReduce tunes the baseline engine (locality scheduling defaults
	// to on).
	MapReduce *mapreduce.Options
	// Core tunes the iMapReduce engine.
	Core *core.Options
	// Metrics receives the run counters (a fresh set by default).
	Metrics *metrics.Set
	// Trace, if set, receives structured events from both engines and
	// (on TCP clusters) the transport. Nil disables tracing at no cost.
	Trace *trace.Recorder
	// OnIteration, if set, is called from the iterative master at every
	// committed iteration boundary.
	OnIteration func(core.IterInfo)
}

// Cluster bundles one simulated cluster with both execution engines
// over a shared DFS and metrics set. Submit is the front door; many
// jobs may run concurrently (the cluster grows per-run engines over
// the shared substrate on demand), as long as their names differ.
type Cluster struct {
	Spec    cluster.Spec
	FS      *dfs.DFS
	Metrics *metrics.Set

	net      transport.Network
	coreOpts core.Options
	mrOpts   mapreduce.Options

	mr   *mapreduce.Engine
	core *core.Engine

	// engMu guards the engine pools and the active-run name registry
	// that Submit maintains.
	engMu       sync.Mutex
	coreFree    []*core.Engine
	coreActive  []*core.Engine
	mrFree      []*mapreduce.Engine
	activeNames map[string]bool
}

// NewCluster builds a cluster from opts.
func NewCluster(opts Options) (*Cluster, error) {
	spec := cluster.Uniform(4)
	if opts.Workers > 0 {
		spec = cluster.Uniform(opts.Workers)
	}
	if opts.Spec != nil {
		spec = *opts.Spec
	}
	spec.JobInitOverhead = opts.JobInitOverhead
	spec.TaskStartOverhead = opts.TaskStartOverhead
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	m := opts.Metrics
	if m == nil {
		m = metrics.NewSet()
	}
	dcfg := dfs.DefaultConfig()
	if opts.DFS != nil {
		dcfg = *opts.DFS
	}
	fs := dfs.New(dcfg, spec.IDs(), m)

	mrOpts := mapreduce.Options{LocalityAware: true}
	if opts.MapReduce != nil {
		mrOpts = *opts.MapReduce
	}
	if mrOpts.Trace == nil {
		mrOpts.Trace = opts.Trace
	}
	mrEngine, err := mapreduce.NewEngine(fs, spec, m, mrOpts)
	if err != nil {
		return nil, err
	}

	var net transport.Network = transport.NewChanNetwork()
	if opts.TCP {
		tcp := transport.NewTCPNetwork()
		tcp.SetTrace(opts.Trace)
		net = tcp
	}
	if opts.Network != nil {
		net = opts.Network
	}
	coreOpts := core.Options{}
	if opts.Core != nil {
		coreOpts = *opts.Core
	}
	if coreOpts.Trace == nil {
		coreOpts.Trace = opts.Trace
	}
	if coreOpts.OnIteration == nil {
		coreOpts.OnIteration = opts.OnIteration
	}
	coreEngine, err := core.NewEngine(fs, net, spec, m, coreOpts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Spec: spec, FS: fs, Metrics: m,
		net: net, coreOpts: coreOpts, mrOpts: mrOpts,
		mr: mrEngine, core: coreEngine,
		activeNames: make(map[string]bool),
	}
	// The engines built above seed the Submit pools.
	c.coreFree = []*core.Engine{coreEngine}
	c.mrFree = []*mapreduce.Engine{mrEngine}
	return c, nil
}

// RunJob executes a plain batch MapReduce job (iterative features off).
//
// Deprecated: use Submit with JobSpec{Batch: job}.
func (c *Cluster) RunJob(job *mapreduce.Job) (*mapreduce.JobResult, error) {
	return c.RunJobCtx(context.Background(), job)
}

// RunJobCtx is RunJob with cancellation: when ctx is canceled the job
// stops at the next phase-collection point and the returned error wraps
// context.Canceled (or ctx's cause).
//
// Deprecated: use Submit with JobSpec{Batch: job}.
func (c *Cluster) RunJobCtx(ctx context.Context, job *mapreduce.Job) (*mapreduce.JobResult, error) {
	r, err := c.submitWait(ctx, JobSpec{Batch: job}, SubmitOptions{})
	if err != nil {
		return nil, err
	}
	return r.Batch, nil
}

// RunJobChain executes the baseline's iterative pattern: one job per
// iteration plus convergence-check jobs, driven from the client.
//
// Deprecated: use Submit with JobSpec{Chain: &spec}.
func (c *Cluster) RunJobChain(spec mapreduce.IterSpec) (*mapreduce.IterResult, error) {
	r, err := c.submitWait(context.Background(), JobSpec{Chain: &spec}, SubmitOptions{})
	if err != nil {
		return nil, err
	}
	return r.Chain, nil
}

// RunIterative executes an iMapReduce job (iterative features on):
// persistent tasks, static/state separation, asynchronous maps.
//
// Deprecated: use Submit with JobSpec{Iterative: job}.
func (c *Cluster) RunIterative(job *core.Job) (*core.Result, error) {
	return c.RunIterativeCtx(context.Background(), job)
}

// RunIterativeCtx is RunIterative with cancellation: when ctx is
// canceled the master aborts every persistent task (no final output is
// written) and the returned error wraps context.Canceled (or ctx's
// cause).
//
// Deprecated: use Submit with JobSpec{Iterative: job}.
func (c *Cluster) RunIterativeCtx(ctx context.Context, job *core.Job) (*core.Result, error) {
	r, err := c.submitWait(ctx, JobSpec{Iterative: job}, SubmitOptions{})
	if err != nil {
		return nil, err
	}
	return r.Iterative, nil
}

// ResumeIterative cold-restarts an iterative job from its newest
// durable checkpoint manifest in this cluster's DFS — the recovery path
// for a run whose entire engine (master included) died. The cluster is
// typically freshly constructed over the surviving DFS; the job must be
// the same definition that wrote the checkpoints (the manifest's
// configuration fingerprint is verified, as are every partition file's
// existence, size, and CRC).
//
// Deprecated: use Submit with JobSpec{Iterative: job} and
// SubmitOptions{Resume: true}.
func (c *Cluster) ResumeIterative(job *core.Job) (*core.Result, error) {
	return c.ResumeIterativeCtx(context.Background(), job)
}

// ResumeIterativeCtx is ResumeIterative with cancellation.
//
// Deprecated: use Submit with JobSpec{Iterative: job} and
// SubmitOptions{Resume: true}.
func (c *Cluster) ResumeIterativeCtx(ctx context.Context, job *core.Job) (*core.Result, error) {
	r, err := c.submitWait(ctx, JobSpec{Iterative: job}, SubmitOptions{Resume: true})
	if err != nil {
		return nil, err
	}
	return r.Iterative, nil
}

// ErrNoActiveRun is returned by KillRun when no iterative run is
// active. It wraps core.ErrKilled so callers probing for "the kill
// path" with errors.Is(err, core.ErrKilled) see both the no-run
// rejection and a killed run's error uniformly.
var ErrNoActiveRun = fmt.Errorf("imr: no active iterative run: %w", core.ErrKilled)

// KillRun tears down an active iterative run as if the engine process
// crashed: no final output, checkpoints and manifests left in place for
// a later resume. With several concurrent runs the earliest-acquired
// engine's run is killed. The killed run returns an error wrapping
// core.ErrKilled; when no run is active KillRun returns ErrNoActiveRun
// (never a silent nil).
func (c *Cluster) KillRun() error {
	c.engMu.Lock()
	engines := append([]*core.Engine(nil), c.coreActive...)
	c.engMu.Unlock()
	for _, eng := range engines {
		if eng.Kill() == nil {
			return nil
		}
	}
	return ErrNoActiveRun
}

// MapReduceEngine exposes the baseline engine for advanced use.
func (c *Cluster) MapReduceEngine() *mapreduce.Engine { return c.mr }

// CoreEngine exposes the iMapReduce engine for advanced use.
func (c *Cluster) CoreEngine() *core.Engine { return c.core }

// FailWorker injects a worker crash into an active iterative run (with
// several concurrent runs, the earliest-acquired engine's run).
func (c *Cluster) FailWorker(id string) error {
	c.engMu.Lock()
	engines := append([]*core.Engine(nil), c.coreActive...)
	c.engMu.Unlock()
	var last error = ErrNoActiveRun
	for _, eng := range engines {
		if err := eng.FailWorker(id); err == nil {
			return nil
		} else {
			last = err
		}
	}
	return last
}

// StallWorker freezes worker id's tasks for d without any announcement
// — an undetected hang, recoverable only through heartbeat detection
// (core.Options.HeartbeatInterval). The stall applies to every engine
// with an active run.
func (c *Cluster) StallWorker(id string, d time.Duration) {
	c.engMu.Lock()
	engines := append([]*core.Engine(nil), c.coreActive...)
	c.engMu.Unlock()
	if len(engines) == 0 {
		engines = []*core.Engine{c.core}
	}
	for _, eng := range engines {
		eng.StallWorker(id, d)
	}
}

// Write stores records as a DFS file at the first worker.
func (c *Cluster) Write(path string, recs []kv.Pair, ops kv.Ops) error {
	return c.FS.WriteFile(path, c.Spec.IDs()[0], recs, ops)
}

// ReadAll collects every record under a part-file directory (or a
// single file) into a key→value map. It is ReadAllAs with both types
// left dynamic; the same merge rule applies.
func (c *Cluster) ReadAll(dir string) (map[any]any, error) {
	return ReadAllAs[any, any](c, dir)
}

// ReadAllAs collects every record under a part-file directory (or a
// single file) into a typed key→value map, asserting each record to
// K/V. Merge rule: a key may appear in several part files only if every
// occurrence carries an equal value (replicated output); part files
// that disagree on a key are an error, never a silent overwrite.
func ReadAllAs[K comparable, V any](c *Cluster, dir string) (map[K]V, error) {
	paths := c.FS.List(dir + "/")
	if len(paths) == 0 {
		if !c.FS.Exists(dir) {
			return nil, fmt.Errorf("imr: no output at %q", dir)
		}
		paths = []string{dir}
	}
	out := map[K]V{}
	for _, p := range paths {
		recs, err := c.FS.ReadFile(p, c.Spec.IDs()[0])
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			k, ok := r.Key.(K)
			if !ok {
				return nil, fmt.Errorf("imr: %s: key %v is %T, want %T", p, r.Key, r.Key, *new(K))
			}
			v, ok := r.Value.(V)
			if !ok {
				return nil, fmt.Errorf("imr: %s: value for key %v is %T, want %T", p, r.Key, r.Value, *new(V))
			}
			if prev, dup := out[k]; dup && !reflect.DeepEqual(prev, v) {
				return nil, fmt.Errorf("imr: %s: key %v has conflicting values %v and %v across part files", dir, k, prev, v)
			}
			out[k] = v
		}
	}
	return out, nil
}

// Package imr is the front door of the framework: one Cluster owning
// the DFS, the metrics, and both engines, mirroring the paper's
// prototype, which "supports any Hadoop job" and lets users "turn on
// iterative processing functionalities for implementing iterative
// algorithms, or turn them off for implementing MapReduce jobs as
// usual" (§3.5).
//
//	c, _ := imr.NewCluster(imr.Options{Workers: 4})
//	c.RunJob(batchJob)         // plain MapReduce, Hadoop-style
//	c.RunIterative(iterJob)    // iMapReduce persistent-task execution
package imr

import (
	"fmt"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// Options configures a Cluster. The zero value gives 4 uniform workers,
// an in-process transport, an in-memory DFS with the paper's block size
// and replication, and Hadoop-like defaults everywhere else.
type Options struct {
	// Workers is the cluster size (default 4, the paper's local
	// cluster).
	Workers int
	// Spec overrides the generated uniform spec entirely (Workers is
	// then ignored).
	Spec *cluster.Spec
	// TCP uses real loopback sockets between tasks instead of
	// in-process channels.
	TCP bool
	// Network overrides the task transport entirely — e.g. a
	// transport.FaultyNetwork for chaos testing. TCP is then ignored.
	Network transport.Network
	// DFS overrides the file system configuration.
	DFS *dfs.Config
	// JobInitOverhead / TaskStartOverhead emulate Hadoop scheduling
	// costs (0 = free, the default).
	JobInitOverhead   time.Duration
	TaskStartOverhead time.Duration
	// MapReduce tunes the baseline engine (locality scheduling defaults
	// to on).
	MapReduce *mapreduce.Options
	// Core tunes the iMapReduce engine.
	Core *core.Options
	// Metrics receives the run counters (a fresh set by default).
	Metrics *metrics.Set
}

// Cluster bundles one simulated cluster with both execution engines
// over a shared DFS and metrics set.
type Cluster struct {
	Spec    cluster.Spec
	FS      *dfs.DFS
	Metrics *metrics.Set

	mr   *mapreduce.Engine
	core *core.Engine
}

// NewCluster builds a cluster from opts.
func NewCluster(opts Options) (*Cluster, error) {
	spec := cluster.Uniform(4)
	if opts.Workers > 0 {
		spec = cluster.Uniform(opts.Workers)
	}
	if opts.Spec != nil {
		spec = *opts.Spec
	}
	spec.JobInitOverhead = opts.JobInitOverhead
	spec.TaskStartOverhead = opts.TaskStartOverhead
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	m := opts.Metrics
	if m == nil {
		m = metrics.NewSet()
	}
	dcfg := dfs.DefaultConfig()
	if opts.DFS != nil {
		dcfg = *opts.DFS
	}
	fs := dfs.New(dcfg, spec.IDs(), m)

	mrOpts := mapreduce.Options{LocalityAware: true}
	if opts.MapReduce != nil {
		mrOpts = *opts.MapReduce
	}
	mrEngine, err := mapreduce.NewEngine(fs, spec, m, mrOpts)
	if err != nil {
		return nil, err
	}

	var net transport.Network = transport.NewChanNetwork()
	if opts.TCP {
		net = transport.NewTCPNetwork()
	}
	if opts.Network != nil {
		net = opts.Network
	}
	coreOpts := core.Options{}
	if opts.Core != nil {
		coreOpts = *opts.Core
	}
	coreEngine, err := core.NewEngine(fs, net, spec, m, coreOpts)
	if err != nil {
		return nil, err
	}
	return &Cluster{Spec: spec, FS: fs, Metrics: m, mr: mrEngine, core: coreEngine}, nil
}

// RunJob executes a plain batch MapReduce job (iterative features off).
func (c *Cluster) RunJob(job *mapreduce.Job) (*mapreduce.JobResult, error) {
	return c.mr.Submit(job)
}

// RunJobChain executes the baseline's iterative pattern: one job per
// iteration plus convergence-check jobs, driven from the client.
func (c *Cluster) RunJobChain(spec mapreduce.IterSpec) (*mapreduce.IterResult, error) {
	return mapreduce.RunIterative(c.mr, spec)
}

// RunIterative executes an iMapReduce job (iterative features on):
// persistent tasks, static/state separation, asynchronous maps.
func (c *Cluster) RunIterative(job *core.Job) (*core.Result, error) {
	return c.core.Run(job)
}

// MapReduceEngine exposes the baseline engine for advanced use.
func (c *Cluster) MapReduceEngine() *mapreduce.Engine { return c.mr }

// CoreEngine exposes the iMapReduce engine for advanced use.
func (c *Cluster) CoreEngine() *core.Engine { return c.core }

// FailWorker injects a worker crash into the active iterative run.
func (c *Cluster) FailWorker(id string) error { return c.core.FailWorker(id) }

// StallWorker freezes worker id's tasks for d without any announcement
// — an undetected hang, recoverable only through heartbeat detection
// (core.Options.HeartbeatInterval).
func (c *Cluster) StallWorker(id string, d time.Duration) { c.core.StallWorker(id, d) }

// Write stores records as a DFS file at the first worker.
func (c *Cluster) Write(path string, recs []kv.Pair, ops kv.Ops) error {
	return c.FS.WriteFile(path, c.Spec.IDs()[0], recs, ops)
}

// ReadAll collects every record under a part-file directory (or a
// single file) into a key→value map.
func (c *Cluster) ReadAll(dir string) (map[any]any, error) {
	paths := c.FS.List(dir + "/")
	if len(paths) == 0 {
		if !c.FS.Exists(dir) {
			return nil, fmt.Errorf("imr: no output at %q", dir)
		}
		paths = []string{dir}
	}
	out := map[any]any{}
	for _, p := range paths {
		recs, err := c.FS.ReadFile(p, c.Spec.IDs()[0])
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			out[r.Key] = r.Value
		}
	}
	return out, nil
}

package imr

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"imapreduce/internal/core"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
)

// JobSpec names the work a Submit call runs. Exactly one field must be
// set: an iMapReduce iterative job (persistent tasks, static/state
// separation), a plain batch MapReduce job, or a baseline client-driven
// iterative chain (one MapReduce job per iteration).
type JobSpec struct {
	// Iterative is an iMapReduce job executed by the core engine.
	Iterative *core.Job
	// Batch is a plain MapReduce job executed by the baseline engine.
	Batch *mapreduce.Job
	// Chain is the baseline's iterative pattern: one job per iteration
	// plus convergence-check jobs, driven from the client.
	Chain *mapreduce.IterSpec
}

// kind classifies a validated spec.
type specKind int

const (
	specIterative specKind = iota
	specBatch
	specChain
)

func (s JobSpec) validate() (specKind, error) {
	set := 0
	kind := specIterative
	if s.Iterative != nil {
		set++
	}
	if s.Batch != nil {
		set++
		kind = specBatch
	}
	if s.Chain != nil {
		set++
		kind = specChain
	}
	if set != 1 {
		return 0, fmt.Errorf("imr: JobSpec must set exactly one of Iterative, Batch, Chain (got %d)", set)
	}
	return kind, nil
}

// Name returns the job's user-assigned name.
func (s JobSpec) Name() string {
	switch {
	case s.Iterative != nil:
		return s.Iterative.Name
	case s.Batch != nil:
		return s.Batch.Name
	case s.Chain != nil:
		return s.Chain.Name
	}
	return ""
}

// SubmitOptions carries per-submission options. The zero value is a
// plain foreground-priority run under the default tenant.
type SubmitOptions struct {
	// Tenant names the submitting tenant. The cluster itself treats it
	// as a label; the serve.Service uses it for fair-share scheduling,
	// quotas and DFS namespacing. Empty means "default".
	Tenant string
	// Priority orders jobs within one tenant's queue (higher first) when
	// the job goes through a serve.Service scheduler; a plain cluster
	// Submit starts the job immediately regardless.
	Priority int
	// Resume cold-restarts an Iterative job from its newest durable
	// checkpoint manifest instead of initializing from StatePath.
	Resume bool
	// Metrics, if set, receives this job's engine counters instead of
	// the cluster-wide set (the DFS keeps reporting into the cluster
	// set). Used by serve for per-job metric isolation.
	Metrics *metrics.Set
	// Trace, if set, receives this job's engine events instead of the
	// cluster-wide recorder.
	Trace *trace.Recorder
}

// JobStatus is a JobHandle's lifecycle state.
type JobStatus int

const (
	// StatusQueued: admitted by a scheduler but not yet running (plain
	// cluster Submits never report this; serve queues do).
	StatusQueued JobStatus = iota
	// StatusRunning: the job is executing on an engine.
	StatusRunning
	// StatusDone: finished successfully; Result carries the outcome.
	StatusDone
	// StatusFailed: finished with an error other than cancellation.
	StatusFailed
	// StatusCanceled: finished due to Cancel or context cancellation.
	StatusCanceled
)

func (s JobStatus) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobStatus(%d)", int(s))
}

// JobResult is the typed outcome of a submitted job; exactly the field
// matching the JobSpec kind is set.
type JobResult struct {
	Iterative *core.Result
	Batch     *mapreduce.JobResult
	Chain     *mapreduce.IterResult
}

// JobHandle tracks one submitted job. Handles are safe for concurrent
// use; Wait/Result may be called from any number of goroutines.
type JobHandle struct {
	spec JobSpec
	opts SubmitOptions

	cancel context.CancelCauseFunc
	done   chan struct{}

	mu     sync.Mutex
	status JobStatus
	res    *JobResult
	err    error
}

// Wait blocks until the job finishes or ctx is done. It returns the
// job's terminal error (nil on success); if ctx expires first it
// returns ctx.Err() and the job keeps running.
func (h *JobHandle) Wait(ctx context.Context) error {
	select {
	case <-h.done:
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cancellation: the engine aborts the run at its next
// collection point and the job finishes with an error wrapping
// context.Canceled. Cancel on an already-finished handle is a no-op —
// the terminal status and result are never disturbed.
func (h *JobHandle) Cancel() {
	h.cancel(context.Canceled)
}

// Status reports the job's current lifecycle state.
func (h *JobHandle) Status() JobStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.status
}

// Result blocks until the job finishes and returns its typed outcome
// and terminal error. On error the result may be nil.
func (h *JobHandle) Result() (*JobResult, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

// finish records the terminal state exactly once.
func (h *JobHandle) finish(res *JobResult, err error) {
	h.mu.Lock()
	h.res, h.err = res, err
	switch {
	case err == nil:
		h.status = StatusDone
	case errors.Is(err, context.Canceled):
		h.status = StatusCanceled
	default:
		h.status = StatusFailed
	}
	h.mu.Unlock()
	close(h.done)
}

// Submit starts the job described by spec and returns a handle to it
// without blocking. The ctx bounds the whole run: when it is done the
// engine aborts the job and the handle finishes with an error wrapping
// ctx's cause. Concurrent Submits run concurrently — the cluster grows
// a per-run engine pool over the shared DFS, transport and spec — with
// one restriction: two active jobs cannot share a name, because a job's
// name namespaces its transport endpoints, checkpoints and manifests.
//
// This is the single entry point the former Run*/Resume* methods now
// delegate to.
func (c *Cluster) Submit(ctx context.Context, spec JobSpec, opts SubmitOptions) (*JobHandle, error) {
	kind, err := spec.validate()
	if err != nil {
		return nil, err
	}
	if opts.Resume && kind != specIterative {
		return nil, fmt.Errorf("imr: Resume applies to Iterative jobs only")
	}
	name := spec.Name()
	if name == "" {
		return nil, fmt.Errorf("imr: job without a name")
	}
	if err := c.claimName(name); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	h := &JobHandle{
		spec: spec, opts: opts,
		cancel: cancel, done: make(chan struct{}),
		status: StatusRunning,
	}
	go func() {
		defer c.releaseName(name)
		defer cancel(nil)
		h.finish(c.execute(runCtx, kind, spec, opts))
	}()
	return h, nil
}

// execute runs the job on an engine acquired from the matching pool.
func (c *Cluster) execute(ctx context.Context, kind specKind, spec JobSpec, opts SubmitOptions) (*JobResult, error) {
	switch kind {
	case specIterative:
		eng, release, err := c.acquireCore(opts)
		if err != nil {
			return nil, err
		}
		defer release()
		var res *core.Result
		if opts.Resume {
			res, err = eng.ResumeCtx(ctx, spec.Iterative)
		} else {
			res, err = eng.RunCtx(ctx, spec.Iterative)
		}
		if err != nil {
			return nil, err
		}
		return &JobResult{Iterative: res}, nil
	case specBatch:
		eng, release, err := c.acquireMR(opts)
		if err != nil {
			return nil, err
		}
		defer release()
		res, err := eng.SubmitCtx(ctx, spec.Batch)
		if err != nil {
			return nil, err
		}
		return &JobResult{Batch: res}, nil
	default: // specChain
		eng, release, err := c.acquireMR(opts)
		if err != nil {
			return nil, err
		}
		defer release()
		res, err := mapreduce.RunIterativeCtx(ctx, eng, *spec.Chain)
		if err != nil {
			return nil, err
		}
		return &JobResult{Chain: res}, nil
	}
}

// submitWait is the blocking form the deprecated wrappers share.
func (c *Cluster) submitWait(ctx context.Context, spec JobSpec, opts SubmitOptions) (*JobResult, error) {
	h, err := c.Submit(ctx, spec, opts)
	if err != nil {
		return nil, err
	}
	return h.Result()
}

// claimName reserves a job name for the duration of its run.
func (c *Cluster) claimName(name string) error {
	c.engMu.Lock()
	defer c.engMu.Unlock()
	if c.activeNames[name] {
		return fmt.Errorf("imr: job %q is already active on this cluster", name)
	}
	c.activeNames[name] = true
	return nil
}

func (c *Cluster) releaseName(name string) {
	c.engMu.Lock()
	delete(c.activeNames, name)
	c.engMu.Unlock()
}

// acquireCore hands out an idle core engine, creating one when the pool
// is empty or when per-job metrics/trace isolation asks for a dedicated
// instance. The release closure returns poolable engines to the free
// list; dedicated ones are dropped. Every engine with an active run is
// tracked in coreActive so KillRun can find it.
func (c *Cluster) acquireCore(opts SubmitOptions) (*core.Engine, func(), error) {
	dedicated := opts.Metrics != nil || opts.Trace != nil
	var eng *core.Engine
	if dedicated {
		o := c.coreOpts
		if opts.Trace != nil {
			o.Trace = opts.Trace
		}
		m := opts.Metrics
		if m == nil {
			m = c.Metrics
		}
		e, err := core.NewEngine(c.FS, c.net, c.Spec, m, o)
		if err != nil {
			return nil, nil, err
		}
		eng = e
	} else {
		c.engMu.Lock()
		if n := len(c.coreFree); n > 0 {
			eng = c.coreFree[n-1]
			c.coreFree = c.coreFree[:n-1]
		}
		c.engMu.Unlock()
		if eng == nil {
			e, err := core.NewEngine(c.FS, c.net, c.Spec, c.Metrics, c.coreOpts)
			if err != nil {
				return nil, nil, err
			}
			eng = e
		}
	}
	c.engMu.Lock()
	c.coreActive = append(c.coreActive, eng)
	c.engMu.Unlock()
	release := func() {
		c.engMu.Lock()
		for i, e := range c.coreActive {
			if e == eng {
				c.coreActive = append(c.coreActive[:i], c.coreActive[i+1:]...)
				break
			}
		}
		if !dedicated {
			c.coreFree = append(c.coreFree, eng)
		}
		c.engMu.Unlock()
	}
	return eng, release, nil
}

// acquireMR is acquireCore for the baseline engine (which also runs one
// job at a time per instance).
func (c *Cluster) acquireMR(opts SubmitOptions) (*mapreduce.Engine, func(), error) {
	dedicated := opts.Metrics != nil || opts.Trace != nil
	var eng *mapreduce.Engine
	if dedicated {
		o := c.mrOpts
		if opts.Trace != nil {
			o.Trace = opts.Trace
		}
		m := opts.Metrics
		if m == nil {
			m = c.Metrics
		}
		e, err := mapreduce.NewEngine(c.FS, c.Spec, m, o)
		if err != nil {
			return nil, nil, err
		}
		eng = e
	} else {
		c.engMu.Lock()
		if n := len(c.mrFree); n > 0 {
			eng = c.mrFree[n-1]
			c.mrFree = c.mrFree[:n-1]
		}
		c.engMu.Unlock()
		if eng == nil {
			e, err := mapreduce.NewEngine(c.FS, c.Spec, c.Metrics, c.mrOpts)
			if err != nil {
				return nil, nil, err
			}
			eng = e
		}
	}
	release := func() {
		if dedicated {
			return
		}
		c.engMu.Lock()
		c.mrFree = append(c.mrFree, eng)
		c.engMu.Unlock()
	}
	return eng, release, nil
}

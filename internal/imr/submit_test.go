package imr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"imapreduce/internal/core"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
)

func seedHalveState(t *testing.T, c *Cluster) {
	t.Helper()
	var recs []kv.Pair
	for i := 0; i < 12; i++ {
		recs = append(recs, kv.Pair{Key: int64(i), Value: 1.0})
	}
	if err := c.Write("/state", recs, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitHandle walks the happy path of the handle API: immediate
// return, running status, Wait and Result agreeing, terminal Done.
func TestSubmitHandle(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	seedHalveState(t, c)
	h, err := c.Submit(context.Background(), JobSpec{Iterative: halveJob("handle", 5)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); st != StatusRunning && st != StatusDone {
		t.Fatalf("fresh handle status %v", st)
	}
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := h.Result()
	if err != nil || res == nil || res.Iterative == nil {
		t.Fatalf("result %v %v", res, err)
	}
	if res.Iterative.Iterations != 5 {
		t.Fatalf("iterations = %d", res.Iterative.Iterations)
	}
	if h.Status() != StatusDone {
		t.Fatalf("terminal status %v", h.Status())
	}
	// Cancel after finish is a documented no-op.
	h.Cancel()
	if h.Status() != StatusDone {
		t.Fatalf("cancel flipped terminal status to %v", h.Status())
	}
}

// TestSubmitConcurrentJobs runs several iterative jobs at once on one
// cluster — the engine-pool behavior the serve layer builds on — and
// checks each result is exact.
func TestSubmitConcurrentJobs(t *testing.T) {
	c, err := NewCluster(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seedHalveState(t, c)
	const jobsN = 6
	handles := make([]*JobHandle, jobsN)
	sets := make([]*metrics.Set, jobsN)
	for i := range handles {
		iters := 3 + i
		job := halveJob(fmt.Sprintf("conc-%d", i), iters)
		job.OutputPath = fmt.Sprintf("/out/conc-%d", i)
		sets[i] = metrics.NewSet()
		h, err := c.Submit(context.Background(), JobSpec{Iterative: job},
			SubmitOptions{Metrics: sets[i]})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Result()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		iters := 3 + i
		if res.Iterative.Iterations != iters {
			t.Fatalf("job %d iterations = %d, want %d", i, res.Iterative.Iterations, iters)
		}
		out, err := ReadAllAs[int64, float64](c, fmt.Sprintf("/out/conc-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(2, -float64(iters))
		for k, v := range out {
			if v != want {
				t.Fatalf("job %d key %d = %v, want %v", i, k, v, want)
			}
		}
		// Per-job metric isolation: each private set saw exactly its
		// own run's iterations.
		if n := sets[i].Get(metrics.Iterations); n != int64(iters) {
			t.Fatalf("job %d private iterations = %d, want %d", i, n, iters)
		}
	}
}

// TestSubmitDuplicateNameRejected: two active jobs cannot share a name
// (it namespaces endpoints, checkpoints, manifests).
func TestSubmitDuplicateNameRejected(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	seedHalveState(t, c)
	h, err := c.Submit(context.Background(), JobSpec{Iterative: halveJob("dup", 100000)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), JobSpec{Iterative: halveJob("dup", 3)}, SubmitOptions{}); err == nil {
		t.Fatal("duplicate active name admitted")
	}
	h.Cancel()
	if err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel err = %v", err)
	}
	if h.Status() != StatusCanceled {
		t.Fatalf("status %v", h.Status())
	}
	// The name frees once the first run is gone.
	h2, err := c.Submit(context.Background(), JobSpec{Iterative: halveJob("dup", 3)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitValidation covers the admission errors of the unified entry
// point.
func TestSubmitValidation(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), JobSpec{}, SubmitOptions{}); err == nil {
		t.Fatal("empty spec admitted")
	}
	if _, err := c.Submit(context.Background(),
		JobSpec{Iterative: halveJob("x", 1), Batch: &batchJobForTest}, SubmitOptions{}); err == nil {
		t.Fatal("double spec admitted")
	}
	if _, err := c.Submit(context.Background(), JobSpec{Batch: &batchJobForTest},
		SubmitOptions{Resume: true}); err == nil {
		t.Fatal("Resume on a batch job admitted")
	}
	if _, err := c.Submit(context.Background(), JobSpec{Iterative: halveJob("", 1)}, SubmitOptions{}); err == nil {
		t.Fatal("nameless job admitted")
	}
}

var batchJobForTest = mapreduce.Job{Name: "b"}

// TestKillRunNoActive: KillRun with nothing running returns the typed
// ErrNoActiveRun, which wraps core.ErrKilled.
func TestKillRunNoActive(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = c.KillRun()
	if !errors.Is(err, ErrNoActiveRun) {
		t.Fatalf("err = %v, want ErrNoActiveRun", err)
	}
	if !errors.Is(err, core.ErrKilled) {
		t.Fatalf("ErrNoActiveRun does not wrap core.ErrKilled: %v", err)
	}
}

// TestSubmitWaitCtxExpiry: Wait's ctx expiring does not finish the job.
func TestSubmitWaitCtxExpiry(t *testing.T) {
	c, err := NewCluster(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	seedHalveState(t, c)
	h, err := c.Submit(context.Background(), JobSpec{Iterative: halveJob("waitctx", 100000)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := h.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if st := h.Status(); st != StatusRunning {
		t.Fatalf("job finished with the waiter's ctx: %v", st)
	}
	h.Cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // Wait is safe from many goroutines
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
				t.Errorf("wait err = %v", err)
			}
		}()
	}
	wg.Wait()
}

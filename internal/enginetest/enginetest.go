// Package enginetest provides shared fixtures for algorithm and
// experiment tests: ready-made engines over a fresh in-process cluster
// and output readers.
package enginetest

import (
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// Env bundles both engines over one DFS and metrics set.
type Env struct {
	Core *core.Engine
	MR   *mapreduce.Engine
	FS   *dfs.DFS
	M    *metrics.Set
	Spec cluster.Spec
}

// New builds an Env with the given number of uniform workers.
func New(workers int) (*Env, error) {
	return NewSpec(cluster.Uniform(workers))
}

// NewSpec builds an Env over an explicit cluster spec.
func NewSpec(spec cluster.Spec) (*Env, error) {
	env, _, err := NewChaos(spec, core.Options{Timeout: 60 * time.Second}, nil)
	return env, err
}

// NewChaos builds an Env whose core engine runs over a FaultyNetwork
// with the given fault profile (nil profile = clean channel transport),
// for chaos tests. The returned FaultyNetwork exposes the injection
// counters; it is nil when fopts is nil.
func NewChaos(spec cluster.Spec, copts core.Options, fopts *transport.FaultyOptions) (*Env, *transport.FaultyNetwork, error) {
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2}, spec.IDs(), m)
	var net transport.Network = transport.NewChanNetwork()
	var fnet *transport.FaultyNetwork
	if fopts != nil {
		fnet = transport.NewFaultyNetwork(net, *fopts)
		net = fnet
	}
	ce, err := core.NewEngine(fs, net, spec, m, copts)
	if err != nil {
		return nil, nil, err
	}
	me, err := mapreduce.NewEngine(fs, spec, m, mapreduce.Options{LocalityAware: true})
	if err != nil {
		return nil, nil, err
	}
	return &Env{Core: ce, MR: me, FS: fs, M: m, Spec: spec}, fnet, nil
}

// At returns a node id records can be read/written at.
func (e *Env) At() string { return e.Spec.IDs()[0] }

// ReadDir collects every record under dir (a part-file directory) into a
// key→value map.
func (e *Env) ReadDir(dir string) (map[any]any, error) {
	out := map[any]any{}
	for _, p := range e.FS.List(dir + "/") {
		recs, err := e.FS.ReadFile(p, e.At())
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			out[r.Key] = r.Value
		}
	}
	return out, nil
}

package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// directory is a tiny shared address book standing in for the cluster
// directory the master broadcasts: logical address -> host:port.
type directory struct {
	mu sync.Mutex
	m  map[string]string
}

func (d *directory) set(logical, hostport string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.m == nil {
		d.m = make(map[string]string)
	}
	d.m[logical] = hostport
}

func (d *directory) resolve(logical string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	hp, ok := d.m[logical]
	return hp, ok
}

// TestTCPCrossNetworkResolver wires two separate TCPNetworks — the
// multi-process topology — through a shared directory and proves
// traffic flows both ways purely by string address, with no in-process
// listener references between the networks.
func TestTCPCrossNetworkResolver(t *testing.T) {
	dir := &directory{}
	nwA := NewTCPNetworkOpts(TCPOptions{Resolver: dir.resolve})
	defer nwA.Close()
	nwB := NewTCPNetworkOpts(TCPOptions{Resolver: dir.resolve})
	defer nwB.Close()

	a, err := nwA.Endpoint("proc-a/ep")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nwB.Endpoint("proc-b/ep")
	if err != nil {
		t.Fatal(err)
	}
	for _, nw := range []*TCPNetwork{nwA, nwB} {
		for _, logical := range []string{"proc-a/ep", "proc-b/ep"} {
			if hp, ok := nw.ListenAddr(logical); ok {
				dir.set(logical, hp)
			}
		}
	}

	if err := a.Send("proc-b/ep", Message{Kind: "k", Payload: "ping", Size: 4}); err != nil {
		t.Fatalf("cross-network send: %v", err)
	}
	got := collect(t, b, 1, 2*time.Second)
	if len(got) != 1 || got[0].Payload.(string) != "ping" || got[0].From != "proc-a/ep" {
		t.Fatalf("cross-network delivery wrong: %v", got)
	}
	// And the reverse direction, resolved the same way.
	if err := b.Send("proc-a/ep", Message{Kind: "k", Payload: "pong", Size: 4}); err != nil {
		t.Fatalf("reverse cross-network send: %v", err)
	}
	if got := collect(t, a, 1, 2*time.Second); len(got) != 1 || got[0].Payload.(string) != "pong" {
		t.Fatalf("reverse delivery wrong: %v", got)
	}
}

// TestTCPEndpointAt pins an endpoint to an explicit listen address and
// verifies the address is advertised verbatim and claims are exclusive.
func TestTCPEndpointAt(t *testing.T) {
	fixed := deadTarget(t) // a free loopback port
	nw := NewTCPNetwork()
	defer nw.Close()
	if _, err := nw.EndpointAt("ctl/master", fixed); err != nil {
		t.Fatalf("EndpointAt(%s): %v", fixed, err)
	}
	if hp, ok := nw.ListenAddr("ctl/master"); !ok || hp != fixed {
		t.Fatalf("ListenAddr = %q,%v, want %q", hp, ok, fixed)
	}
	if _, err := nw.EndpointAt("ctl/master", fixed); err == nil {
		t.Fatal("second EndpointAt claim succeeded, want exclusive-ownership error")
	}
}

// TestTCPVersionMismatch proves a protocol skew is a typed, actionable
// dial-time failure, not a decode error mid-stream.
func TestTCPVersionMismatch(t *testing.T) {
	dir := &directory{}
	oldProc := NewTCPNetworkOpts(TCPOptions{Resolver: dir.resolve})
	defer oldProc.Close()
	newProc := NewTCPNetworkOpts(TCPOptions{Resolver: dir.resolve})
	defer newProc.Close()
	newProc.helloVersion = ProtocolVersion + 1 // a build from a newer tree

	if _, err := oldProc.Endpoint("old/ep"); err != nil {
		t.Fatal(err)
	}
	src, err := newProc.Endpoint("new/ep")
	if err != nil {
		t.Fatal(err)
	}
	hp, _ := oldProc.ListenAddr("old/ep")
	dir.set("old/ep", hp)

	err = src.Send("old/ep", Message{Kind: "k", Payload: "x", Size: 1})
	var vme *VersionMismatchError
	if !errors.As(err, &vme) {
		t.Fatalf("send across version skew: got %v, want VersionMismatchError", err)
	}
	if vme.Local != ProtocolVersion+1 || vme.Remote != ProtocolVersion || vme.Peer != "old/ep" {
		t.Fatalf("mismatch error fields wrong: %+v", vme)
	}
}

// Package transport moves control and data messages between the master
// and the workers. Two interchangeable backends implement the same
// interface:
//
//   - ChanNetwork: in-process delivery with unbounded per-endpoint
//     queues. Fast path for tests, examples and benchmarks.
//   - TCPNetwork: real sockets on the loopback interface with one
//     persistent gob-encoded connection per (sender, receiver) pair —
//     the mechanism iMapReduce uses for its reduce→map state channels
//     (paper §3.2.1).
//
// Senders never block: every endpoint owns an unbounded inbox, so
// cyclic flows (map→reduce shuffle concurrent with reduce→map state
// return) cannot deadlock.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is one framed unit between endpoints.
type Message struct {
	From    string
	To      string
	Kind    string // engine-defined discriminator, e.g. "shuffle", "state"
	Payload any
	// Size is the sender's estimate of the payload's serialized size in
	// bytes; in-process delivery uses it for traffic accounting, the TCP
	// backend additionally counts real wire bytes.
	Size int64
}

// Endpoint is one addressable party (a worker, a task, or the master).
type Endpoint interface {
	// Addr returns the endpoint's name on the network.
	Addr() string
	// Send enqueues msg for endpoint to. It does not block on the
	// receiver and returns an error only if the network is shut down or
	// the destination is unknown.
	Send(to string, msg Message) error
	// Recv returns the channel incoming messages are delivered on. The
	// channel is closed when the endpoint is closed.
	Recv() <-chan Message
	// Close tears the endpoint down and releases its queue.
	Close() error
}

// Preconnector is the optional connection-warming interface. The TCP
// backend implements it to dial persistent connections ahead of first
// use; channel-based endpoints connect instantly and don't need it.
type Preconnector interface {
	// Preconnect starts background dials to peers, ignoring failures
	// (the next Send re-dials as usual).
	Preconnect(peers ...string)
}

// Preconnect warms ep's connections to peers when the transport
// supports it, and is a no-op otherwise.
func Preconnect(ep Endpoint, peers ...string) {
	if p, ok := ep.(Preconnector); ok {
		p.Preconnect(peers...)
	}
}

// Network creates endpoints and accounts traffic.
type Network interface {
	// Endpoint registers (or returns) the endpoint named addr.
	Endpoint(addr string) (Endpoint, error)
	// Close shuts down all endpoints.
	Close() error
	// BytesSent returns the total payload bytes sent so far (estimated
	// sizes for in-process delivery, real wire bytes for TCP).
	BytesSent() int64
	// Messages returns the total number of messages sent.
	Messages() int64
}

// inbox is an unbounded FIFO pumping into a delivery channel.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	// inflight is true while the pump holds a popped message it has not
	// yet handed to out; push's direct fast path must stay off then or
	// it would overtake that older message.
	inflight bool
	// done is closed by close() so a pump parked on a full out channel
	// wakes up and exits instead of leaking when the receiver is gone.
	done chan struct{}
	out  chan Message
}

func newInbox() *inbox {
	ib := &inbox{out: make(chan Message, 64), done: make(chan struct{})}
	ib.cond = sync.NewCond(&ib.mu)
	go ib.pump()
	return ib
}

func (ib *inbox) push(m Message) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return false
	}
	// Fast path: nothing older is queued or mid-handoff, so delivering
	// straight into the buffered channel keeps FIFO order and skips the
	// pump goroutine's scheduling hop — one fewer wakeup on the
	// per-message latency chain.
	if len(ib.queue) == 0 && !ib.inflight {
		select {
		case ib.out <- m:
			return true
		default:
		}
	}
	ib.queue = append(ib.queue, m)
	ib.cond.Signal()
	return true
}

func (ib *inbox) pump() {
	for {
		ib.mu.Lock()
		for len(ib.queue) == 0 && !ib.closed {
			ib.cond.Wait()
		}
		if len(ib.queue) == 0 && ib.closed {
			ib.mu.Unlock()
			close(ib.out)
			return
		}
		m := ib.queue[0]
		ib.queue = ib.queue[1:]
		ib.inflight = true
		ib.mu.Unlock()
		select {
		case ib.out <- m:
		default:
			// Receiver is not keeping up; block, but give up if the
			// inbox is closed while we wait — a closed endpoint's
			// receiver may be gone for good, and parking on the send
			// forever leaks the pump (Close documents that it releases
			// the queue, so dropping the remainder here is correct).
			select {
			case ib.out <- m:
			case <-ib.done:
				close(ib.out)
				return
			}
		}
		ib.mu.Lock()
		ib.inflight = false
		ib.mu.Unlock()
	}
}

func (ib *inbox) close() {
	ib.mu.Lock()
	if ib.closed {
		ib.mu.Unlock()
		return
	}
	ib.closed = true
	close(ib.done)
	ib.cond.Signal()
	ib.mu.Unlock()
}

// ChanNetwork is the in-process backend.
type ChanNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*chanEndpoint
	closed    bool
	bytes     atomic.Int64
	msgs      atomic.Int64
}

// NewChanNetwork returns an empty in-process network.
func NewChanNetwork() *ChanNetwork {
	return &ChanNetwork{endpoints: make(map[string]*chanEndpoint)}
}

type chanEndpoint struct {
	net  *ChanNetwork
	addr string
	ib   *inbox
}

// Endpoint implements Network.
func (n *ChanNetwork) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if ep, ok := n.endpoints[addr]; ok {
		return ep, nil
	}
	ep := &chanEndpoint{net: n, addr: addr, ib: newInbox()}
	n.endpoints[addr] = ep
	return ep, nil
}

func (e *chanEndpoint) Addr() string { return e.addr }

func (e *chanEndpoint) Send(to string, msg Message) error {
	e.net.mu.Lock()
	dst, ok := e.net.endpoints[to]
	closed := e.net.closed
	e.net.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: network closed")
	}
	if !ok {
		return fmt.Errorf("transport: unknown endpoint %q", to)
	}
	msg.From = e.addr
	msg.To = to
	if !dst.ib.push(msg) {
		return fmt.Errorf("transport: endpoint %q closed", to)
	}
	e.net.bytes.Add(msg.Size)
	e.net.msgs.Add(1)
	return nil
}

func (e *chanEndpoint) Recv() <-chan Message { return e.ib.out }

func (e *chanEndpoint) Close() error {
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	e.ib.close()
	return nil
}

// Close implements Network.
func (n *ChanNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*chanEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.endpoints = make(map[string]*chanEndpoint)
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.ib.close()
	}
	return nil
}

// BytesSent implements Network.
func (n *ChanNetwork) BytesSent() int64 { return n.bytes.Load() }

// Messages implements Network.
func (n *ChanNetwork) Messages() int64 { return n.msgs.Load() }

package transport

import (
	"sync"
	"time"
)

// LatencyNetwork wraps another Network and delays every message by a
// fixed latency plus a per-byte serialization cost, preserving
// per-sender/per-destination FIFO order. It turns the in-process
// backend into a stand-in for a slow network, for latency-sensitivity
// experiments.
type LatencyNetwork struct {
	inner Network
	// Latency is added to every message; PerMB adds transfer time
	// proportional to Message.Size.
	latency time.Duration
	perMB   time.Duration

	mu     sync.Mutex
	eps    map[string]*latEndpoint
	closed bool
}

// NewLatencyNetwork wraps inner. latency is the per-message delay;
// perMB the additional delay per MiB of payload (by Message.Size).
func NewLatencyNetwork(inner Network, latency, perMB time.Duration) *LatencyNetwork {
	return &LatencyNetwork{
		inner:   inner,
		latency: latency,
		perMB:   perMB,
		eps:     make(map[string]*latEndpoint),
	}
}

type latEndpoint struct {
	net   *LatencyNetwork
	inner Endpoint

	mu     sync.Mutex
	lanes  map[string]*lane // per destination, to keep FIFO per pair
	closed bool
}

// lane is an unbounded delay queue with one pump goroutine.
type lane struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delayed
	closed bool
}

type delayed struct {
	to  string
	msg Message
	at  time.Time
}

// Endpoint implements Network.
func (n *LatencyNetwork) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[addr]; ok {
		return ep, nil
	}
	inner, err := n.inner.Endpoint(addr)
	if err != nil {
		return nil, err
	}
	ep := &latEndpoint{net: n, inner: inner, lanes: make(map[string]*lane)}
	n.eps[addr] = ep
	return ep, nil
}

func (e *latEndpoint) Addr() string         { return e.inner.Addr() }
func (e *latEndpoint) Recv() <-chan Message { return e.inner.Recv() }

func (e *latEndpoint) Send(to string, msg Message) error {
	delay := e.net.latency +
		time.Duration(float64(e.net.perMB)*float64(msg.Size)/(1<<20))
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return e.inner.Send(to, msg) // degrade to direct send
	}
	ln, ok := e.lanes[to]
	if !ok {
		ln = &lane{}
		ln.cond = sync.NewCond(&ln.mu)
		e.lanes[to] = ln
		go e.pump(ln)
	}
	e.mu.Unlock()
	ln.mu.Lock()
	ln.queue = append(ln.queue, delayed{to: to, msg: msg, at: time.Now().Add(delay)})
	ln.cond.Signal()
	ln.mu.Unlock()
	return nil
}

func (e *latEndpoint) pump(ln *lane) {
	for {
		ln.mu.Lock()
		for len(ln.queue) == 0 && !ln.closed {
			ln.cond.Wait()
		}
		if len(ln.queue) == 0 && ln.closed {
			ln.mu.Unlock()
			return
		}
		d := ln.queue[0]
		ln.queue = ln.queue[1:]
		ln.mu.Unlock()
		if wait := time.Until(d.at); wait > 0 {
			time.Sleep(wait)
		}
		_ = e.inner.Send(d.to, d.msg) // peer may be gone during shutdown
	}
}

func (e *latEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	for _, ln := range e.lanes {
		ln.mu.Lock()
		ln.closed = true
		ln.cond.Signal()
		ln.mu.Unlock()
	}
	e.mu.Unlock()
	return e.inner.Close()
}

// Close implements Network.
func (n *LatencyNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*latEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		for _, ln := range ep.lanes {
			ln.mu.Lock()
			ln.closed = true
			ln.cond.Signal()
			ln.mu.Unlock()
		}
		ep.mu.Unlock()
	}
	return n.inner.Close()
}

// BytesSent implements Network.
func (n *LatencyNetwork) BytesSent() int64 { return n.inner.BytesSent() }

// Messages implements Network.
func (n *LatencyNetwork) Messages() int64 { return n.inner.Messages() }

package transport

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestPropertyPerSenderOrderAndDelivery: for any interleaving of
// senders and message counts, every message arrives exactly once and
// per-sender order is preserved.
func TestPropertyPerSenderOrderAndDelivery(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) == 0 || len(counts) > 6 {
			return true // shape constraint, not a failure
		}
		nw := NewChanNetwork()
		defer nw.Close()
		dst, err := nw.Endpoint("dst")
		if err != nil {
			return false
		}
		total := 0
		for s, c := range counts {
			n := int(c % 50)
			total += n
			ep, err := nw.Endpoint(fmt.Sprintf("s%d", s))
			if err != nil {
				return false
			}
			go func(ep Endpoint, n int) {
				for i := 0; i < n; i++ {
					_ = ep.Send("dst", Message{Kind: "p", Payload: payload{N: i}})
				}
			}(ep, n)
		}
		next := map[string]int{}
		for i := 0; i < total; i++ {
			m, ok := <-dst.Recv()
			if !ok {
				return false
			}
			seq := m.Payload.(payload).N
			if seq != next[m.From] {
				return false // per-sender order broken
			}
			next[m.From]++
		}
		got := 0
		for s, c := range counts {
			if next[fmt.Sprintf("s%d", s)] != int(c%50) {
				return false
			}
			got += next[fmt.Sprintf("s%d", s)]
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

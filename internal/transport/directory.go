package transport

import "sync"

// Directory is a concurrent logical-address → host:port table whose
// Resolve method satisfies AddrResolver. A multi-process cluster shares
// one: each process registers the listen addresses of its own endpoints
// and merges snapshots the master distributes, so any process can dial
// any logical address without the processes sharing a Network.
type Directory struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{m: make(map[string]string)}
}

// Set maps a logical address to a host:port.
func (d *Directory) Set(logical, hostport string) {
	d.mu.Lock()
	d.m[logical] = hostport
	d.mu.Unlock()
}

// SetAll merges a snapshot and returns the logical addresses whose
// mapping changed — the peers whose cached connections the caller
// should invalidate, since they now point at a dead listener.
func (d *Directory) SetAll(entries map[string]string) []string {
	var changed []string
	d.mu.Lock()
	for k, v := range entries {
		if old, ok := d.m[k]; !ok || old != v {
			if ok {
				changed = append(changed, k)
			}
			d.m[k] = v
		}
	}
	d.mu.Unlock()
	return changed
}

// Resolve looks a logical address up; it matches AddrResolver.
func (d *Directory) Resolve(logical string) (string, bool) {
	d.mu.RLock()
	hp, ok := d.m[logical]
	d.mu.RUnlock()
	return hp, ok
}

// Snapshot copies the current table.
func (d *Directory) Snapshot() map[string]string {
	d.mu.RLock()
	out := make(map[string]string, len(d.m))
	for k, v := range d.m {
		out[k] = v
	}
	d.mu.RUnlock()
	return out
}

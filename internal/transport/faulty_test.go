package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// collect drains up to n messages from ep with a deadline.
func collect(t *testing.T, ep Endpoint, n int, wait time.Duration) []Message {
	t.Helper()
	var out []Message
	deadline := time.After(wait)
	for len(out) < n {
		select {
		case m, ok := <-ep.Recv():
			if !ok {
				return out
			}
			out = append(out, m)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestFaultyDropsAreDeterministicAndDetectable(t *testing.T) {
	run := func() (delivered int, drops int64) {
		nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 7, DropRate: 0.3})
		defer nw.Close()
		a, _ := nw.Endpoint("a")
		b, _ := nw.Endpoint("b")
		for i := 0; i < 200; i++ {
			err := a.Send("b", Message{Kind: "k", Payload: i, Size: 8})
			if err == nil {
				delivered++
			} else if !errors.Is(err, ErrDropped) {
				t.Fatalf("unexpected error: %v", err)
			}
		}
		got := collect(t, b, delivered, time.Second)
		if len(got) != delivered {
			t.Fatalf("delivered %d, received %d", delivered, len(got))
		}
		return delivered, nw.Drops()
	}
	d1, drops1 := run()
	d2, drops2 := run()
	if d1 != d2 || drops1 != drops2 {
		t.Fatalf("fault pattern not deterministic: (%d,%d) vs (%d,%d)", d1, drops1, d2, drops2)
	}
	if drops1 == 0 || d1 == 200 {
		t.Fatalf("no drops injected at 30%% rate (delivered=%d)", d1)
	}
	if d1+int(drops1) != 200 {
		t.Fatalf("accounting mismatch: %d delivered + %d dropped != 200", d1, drops1)
	}
}

func TestFaultyDuplicates(t *testing.T) {
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 3, DupRate: 0.5})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send("b", Message{Kind: "k", Payload: i, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	dups := int(nw.Dups())
	if dups == 0 {
		t.Fatal("no duplicates at 50% rate")
	}
	got := collect(t, b, n+dups, time.Second)
	if len(got) != n+dups {
		t.Fatalf("received %d, want %d originals + %d dups", len(got), n, dups)
	}
	// Message accounting counts what hit the wire: originals plus dups.
	if nw.Messages() != int64(n+dups) {
		t.Fatalf("Messages() = %d, want %d", nw.Messages(), n+dups)
	}
}

func TestFaultyReordersAdjacentAndLosesNothing(t *testing.T) {
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 11, ReorderRate: 0.3})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("b", Message{Kind: "k", Payload: i, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, b, n, 2*time.Second)
	if len(got) != n {
		t.Fatalf("received %d of %d (reordering must not lose frames)", len(got), n)
	}
	if nw.Reorders() == 0 {
		t.Fatal("no reorders injected at 30% rate")
	}
	seen := make(map[int]bool, n)
	inversions := 0
	prev := -1
	for _, m := range got {
		v := m.Payload.(int)
		if seen[v] {
			t.Fatalf("duplicate %d under reorder-only faults", v)
		}
		seen[v] = true
		if v < prev {
			inversions++
		}
		prev = v
	}
	if inversions == 0 {
		t.Fatal("stream arrived fully ordered despite injected reorders")
	}
}

func TestFaultyHeldFrameFlushedWithoutSuccessor(t *testing.T) {
	// ReorderRate 1 with a single message: the frame is held, no
	// successor ever comes, and the HoldMax timer must flush it.
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 1, ReorderRate: 1, HoldMax: 5 * time.Millisecond})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	if err := a.Send("b", Message{Kind: "k", Payload: 42, Size: 8}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, b, 1, time.Second)
	if len(got) != 1 || got[0].Payload.(int) != 42 {
		t.Fatalf("held frame lost: %v", got)
	}
}

func TestFaultyPartitionAndHeal(t *testing.T) {
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 5})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	nw.Partition("a", "b")
	if err := a.Send("b", Message{Kind: "k"}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	if err := b.Send("a", Message{Kind: "k"}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse direction not cut: %v", err)
	}
	nw.Heal("a", "b")
	if err := a.Send("b", Message{Kind: "k", Payload: 1}); err != nil {
		t.Fatalf("healed link still failing: %v", err)
	}
	if got := collect(t, b, 1, time.Second); len(got) != 1 {
		t.Fatal("message lost after heal")
	}
}

func TestReliableSendRetriesThroughDrops(t *testing.T) {
	// 60% drop rate: a single Send usually fails eventually, but 10
	// retries push delivery probability to ~1-0.6^11.
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 9, DropRate: 0.6})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	const n = 50
	totalAttempts := 0
	for i := 0; i < n; i++ {
		attempts, err := ReliableSend(a, "b", Message{Kind: "k", Payload: i, Size: 8}, 10, 100*time.Microsecond)
		if err != nil {
			t.Fatalf("message %d not delivered after %d attempts: %v", i, attempts, err)
		}
		totalAttempts += attempts
	}
	if totalAttempts <= n {
		t.Fatalf("no retries recorded (%d attempts for %d messages) at 60%% drop", totalAttempts, n)
	}
	if got := collect(t, b, n, 2*time.Second); len(got) != n {
		t.Fatalf("received %d of %d", len(got), n)
	}
}

func TestReliableSendGivesUp(t *testing.T) {
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 1})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	if _, err := nw.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	nw.Partition("a", "b")
	attempts, err := ReliableSend(a, "b", Message{Kind: "k"}, 3, 50*time.Microsecond)
	if err == nil {
		t.Fatal("send through a partition succeeded")
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 1+3", attempts)
	}
}

func TestFaultyAccountingDelegates(t *testing.T) {
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 2})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Message{Kind: "k", Payload: i, Size: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, b, 10, time.Second); len(got) != 10 {
		t.Fatalf("received %d", len(got))
	}
	if nw.BytesSent() != 1000 || nw.Messages() != 10 {
		t.Fatalf("accounting: %d bytes, %d msgs", nw.BytesSent(), nw.Messages())
	}
	if a.Addr() != "a" {
		t.Fatalf("Addr() = %q", a.Addr())
	}
}

func ExampleNewFaultyNetwork() {
	nw := NewFaultyNetwork(NewChanNetwork(), FaultyOptions{Seed: 1, DropRate: 0.5})
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	nw.Endpoint("b")
	delivered := 0
	for i := 0; i < 100; i++ {
		if _, err := ReliableSend(a, "b", Message{Kind: "k", Payload: i}, 8, time.Microsecond); err == nil {
			delivered++
		}
	}
	fmt.Println(delivered)
	// Output: 100
}

package transport

import (
	"testing"
	"time"
)

func TestLatencyDelaysDelivery(t *testing.T) {
	nw := NewLatencyNetwork(NewChanNetwork(), 30*time.Millisecond, 0)
	defer nw.Close()
	a, err := nw.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send("b", Message{Kind: "x", Payload: payload{N: 1}}); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("message arrived after %v, want >= 30ms latency", elapsed)
	}
	if m.Payload.(payload).N != 1 {
		t.Fatal("payload lost")
	}
}

func TestLatencyPreservesOrder(t *testing.T) {
	nw := NewLatencyNetwork(NewChanNetwork(), 2*time.Millisecond, 0)
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send("b", Message{Kind: "seq", Payload: payload{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if got := recvOne(t, b).Payload.(payload).N; got != i {
			t.Fatalf("out of order: got %d at %d", got, i)
		}
	}
}

func TestLatencyPerByteCost(t *testing.T) {
	// 100ms per MiB: a 512 KiB message takes ≥ 50ms.
	nw := NewLatencyNetwork(NewChanNetwork(), 0, 100*time.Millisecond)
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	start := time.Now()
	a.Send("b", Message{Kind: "big", Payload: payload{}, Size: 512 << 10})
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("large message arrived after %v, want >= ~50ms", elapsed)
	}
	// A tiny message is near-instant.
	start = time.Now()
	a.Send("b", Message{Kind: "small", Payload: payload{}, Size: 16})
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("small message took %v", elapsed)
	}
}

func TestLatencySenderNeverBlocks(t *testing.T) {
	nw := NewLatencyNetwork(NewChanNetwork(), 50*time.Millisecond, 0)
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	nw.Endpoint("b")
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5000; i++ {
			_ = a.Send("b", Message{Kind: "flood", Payload: payload{N: i}})
		}
		close(done)
	}()
	select {
	case <-done: // queueing must be instant despite the 50ms latency
	case <-time.After(2 * time.Second):
		t.Fatal("latency wrapper blocked the sender")
	}
}

func TestLatencyEndpointIdempotentAndCounters(t *testing.T) {
	nw := NewLatencyNetwork(NewChanNetwork(), time.Millisecond, 0)
	defer nw.Close()
	e1, _ := nw.Endpoint("same")
	e2, _ := nw.Endpoint("same")
	if e1 != e2 {
		t.Fatal("Endpoint not idempotent")
	}
	b, _ := nw.Endpoint("b")
	e1.Send("b", Message{Kind: "x", Size: 64})
	recvOne(t, b)
	if nw.BytesSent() != 64 || nw.Messages() != 1 {
		t.Fatalf("counters not delegated: %d bytes %d msgs", nw.BytesSent(), nw.Messages())
	}
	if e1.Addr() != "same" {
		t.Fatal("addr not delegated")
	}
}

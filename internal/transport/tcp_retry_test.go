package transport

import (
	"testing"
	"time"
)

// TestTCPSendSurvivesDeadConnection proves the first-message-lost bug is
// fixed: after the persistent connection under an established pair dies,
// the very next Send re-dials and the frame still arrives — it is not
// sacrificed to mark the connection dead.
func TestTCPSendSurvivesDeadConnection(t *testing.T) {
	nw := NewTCPNetwork()
	defer nw.Close()
	a, err := nw.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send("b", Message{Kind: "k", Payload: "first", Size: 5}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, b, 1, 2*time.Second); len(got) != 1 {
		t.Fatal("first message lost")
	}
	if nw.Dials() != 1 {
		t.Fatalf("dials = %d, want 1", nw.Dials())
	}

	// Kill the established connection out from under the sender, the way
	// a peer restart or idle-timeout reset does.
	ta := a.(*tcpEndpoint)
	ta.mu.Lock()
	conn := ta.conns["b"]
	ta.mu.Unlock()
	conn.mu.Lock()
	conn.c.Close()
	conn.mu.Unlock()

	// The next sends must still deliver: the first Send may need one or
	// two attempts for the kernel to surface the reset, so mark the conn
	// dead explicitly to model the deterministic half of the failure,
	// then send.
	conn.mu.Lock()
	conn.dead = true
	conn.mu.Unlock()

	if err := a.Send("b", Message{Kind: "k", Payload: "second", Size: 6}); err != nil {
		t.Fatalf("send after dead connection: %v", err)
	}
	got := collect(t, b, 1, 2*time.Second)
	if len(got) != 1 || got[0].Payload.(string) != "second" {
		t.Fatalf("frame lost across reconnect: %v", got)
	}
	if nw.Dials() != 2 {
		t.Fatalf("dials = %d, want 2 (one re-dial)", nw.Dials())
	}

	// And a raw socket close without the dead mark: Send sees the encode
	// failure, marks the conn dead, and retransmits through a fresh
	// dial — at most one frame is duplicated, none lost.
	ta.mu.Lock()
	conn2 := ta.conns["b"]
	ta.mu.Unlock()
	conn2.mu.Lock()
	conn2.c.Close()
	conn2.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		// The first write after a close can be buffered by the kernel and
		// "succeed"; keep sending until the reset surfaces and the
		// re-dial path runs, or the frames simply all arrive.
		if err := a.Send("b", Message{Kind: "k", Payload: "third", Size: 5}); err != nil {
			t.Fatalf("send after socket close: %v", err)
		}
		if nw.Dials() == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("re-dial never happened after socket close")
		}
		time.Sleep(time.Millisecond)
	}
	if got := collect(t, b, 1, 2*time.Second); len(got) == 0 {
		t.Fatal("no frame delivered after re-dial")
	}
}

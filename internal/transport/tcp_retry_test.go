package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestTCPSendSurvivesDeadConnection proves the first-message-lost bug is
// fixed: after the persistent connection under an established pair dies,
// the very next Send re-dials and the frame still arrives — it is not
// sacrificed to mark the connection dead.
func TestTCPSendSurvivesDeadConnection(t *testing.T) {
	nw := NewTCPNetwork()
	defer nw.Close()
	a, err := nw.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send("b", Message{Kind: "k", Payload: "first", Size: 5}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, b, 1, 2*time.Second); len(got) != 1 {
		t.Fatal("first message lost")
	}
	if nw.Dials() != 1 {
		t.Fatalf("dials = %d, want 1", nw.Dials())
	}

	// Kill the established connection out from under the sender, the way
	// a peer restart or idle-timeout reset does.
	ta := a.(*tcpEndpoint)
	ta.mu.Lock()
	conn := ta.conns["b"]
	ta.mu.Unlock()
	conn.mu.Lock()
	conn.c.Close()
	conn.mu.Unlock()

	// The next sends must still deliver: the first Send may need one or
	// two attempts for the kernel to surface the reset, so mark the conn
	// dead explicitly to model the deterministic half of the failure,
	// then send.
	conn.mu.Lock()
	conn.dead = true
	conn.mu.Unlock()

	if err := a.Send("b", Message{Kind: "k", Payload: "second", Size: 6}); err != nil {
		t.Fatalf("send after dead connection: %v", err)
	}
	got := collect(t, b, 1, 2*time.Second)
	if len(got) != 1 || got[0].Payload.(string) != "second" {
		t.Fatalf("frame lost across reconnect: %v", got)
	}
	if nw.Dials() != 2 {
		t.Fatalf("dials = %d, want 2 (one re-dial)", nw.Dials())
	}

	// And a raw socket close without the dead mark: Send sees the encode
	// failure, marks the conn dead, and retransmits through a fresh
	// dial — at most one frame is duplicated, none lost.
	ta.mu.Lock()
	conn2 := ta.conns["b"]
	ta.mu.Unlock()
	conn2.mu.Lock()
	conn2.c.Close()
	conn2.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		// The first write after a close can be buffered by the kernel and
		// "succeed"; keep sending until the reset surfaces and the
		// re-dial path runs, or the frames simply all arrive.
		if err := a.Send("b", Message{Kind: "k", Payload: "third", Size: 5}); err != nil {
			t.Fatalf("send after socket close: %v", err)
		}
		if nw.Dials() == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("re-dial never happened after socket close")
		}
		time.Sleep(time.Millisecond)
	}
	if got := collect(t, b, 1, 2*time.Second); len(got) == 0 {
		t.Fatal("no frame delivered after re-dial")
	}
}

// deadTarget returns a loopback host:port with nothing listening on it:
// dials to it fail fast with connection-refused.
func deadTarget(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestDialBackoffCapsAttempts hammers Send at an unreachable peer and
// proves the per-peer gate turns the hot loop into a bounded, spaced
// dial schedule: attempts are exponentially separated (each gap at
// least half the base backoff, growing to the cap), the total is far
// below the send count, and sends inside the window fail fast with a
// typed DialBackoffError instead of touching the kernel.
func TestDialBackoffCapsAttempts(t *testing.T) {
	target := deadTarget(t)
	var mu sync.Mutex
	var attemptTimes []time.Time
	nw := NewTCPNetworkOpts(TCPOptions{
		DialTimeout:     250 * time.Millisecond,
		DialBackoffBase: 10 * time.Millisecond,
		DialBackoffMax:  40 * time.Millisecond,
		Resolver: func(logical string) (string, bool) {
			if logical != "ghost" {
				return "", false
			}
			mu.Lock()
			attemptTimes = append(attemptTimes, time.Now())
			mu.Unlock()
			return target, true
		},
	})
	defer nw.Close()
	a, err := nw.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}

	sends := 0
	deadline := time.Now().Add(310 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := a.Send("ghost", Message{Kind: "k", Payload: "x", Size: 1}); err == nil {
			t.Fatal("send to unreachable peer succeeded")
		}
		sends++
		time.Sleep(time.Millisecond)
	}

	attempts := nw.DialAttempts()
	if attempts < 3 {
		t.Fatalf("dial attempts = %d, want >= 3 (gate never re-opened?)", attempts)
	}
	if attempts > 20 {
		t.Fatalf("dial storm: %d dial attempts for %d sends", attempts, sends)
	}
	if int64(sends) < attempts*3 {
		t.Fatalf("sends (%d) not decoupled from dial attempts (%d)", sends, attempts)
	}

	// Spacing: every gap between real dial attempts must be at least
	// half the base backoff (the deterministic half of the jittered
	// wait); scheduling delays only widen gaps, never shrink them.
	mu.Lock()
	times := append([]time.Time(nil), attemptTimes...)
	mu.Unlock()
	for i := 1; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap < 5*time.Millisecond {
			t.Fatalf("attempts %d and %d only %v apart, want >= 5ms", i-1, i, gap)
		}
	}

	// The gate reached the configured cap via doubling.
	ta := a.(*tcpEndpoint)
	ta.mu.Lock()
	g := ta.gates["ghost"]
	ta.mu.Unlock()
	if g == nil || g.backoff != 40*time.Millisecond {
		t.Fatalf("gate backoff = %v, want capped at 40ms", g)
	}

	// Inside the window the failure is the typed fail-fast error.
	var dbe *DialBackoffError
	err = a.Send("ghost", Message{Kind: "k", Payload: "x", Size: 1})
	if !errors.As(err, &dbe) && nw.DialAttempts() != attempts+1 {
		t.Fatalf("send inside backoff window: got %v, want DialBackoffError or a fresh attempt", err)
	}

	// A directory change clears the gate so the remapped peer is dialed
	// immediately.
	nw.Invalidate("ghost")
	ta.mu.Lock()
	cleared := ta.gates["ghost"] == nil
	ta.mu.Unlock()
	if !cleared {
		t.Fatal("Invalidate left the dial gate armed")
	}
}

// recordingEndpoint timestamps every Send for retry-schedule asserts.
type recordingEndpoint struct {
	Endpoint
	mu    sync.Mutex
	times []time.Time
}

func (r *recordingEndpoint) Send(to string, msg Message) error {
	r.mu.Lock()
	r.times = append(r.times, time.Now())
	r.mu.Unlock()
	return r.Endpoint.Send(to, msg)
}

// TestReconnectBackoffUnderPartition runs the control-plane retry
// discipline over a seeded FaultyNetwork partition on top of real
// sockets: attempts are capped at retries+1 and exponentially spaced,
// and the partition causes zero TCP dial attempts — no dial storm
// behind the chaos layer. After Heal the same send goes through.
func TestReconnectBackoffUnderPartition(t *testing.T) {
	inner := NewTCPNetwork()
	f := NewFaultyNetwork(inner, FaultyOptions{Seed: 7})
	defer f.Close()
	a, err := f.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}

	// Establish the persistent connection, then cut the link.
	if err := a.Send("b", Message{Kind: "k", Payload: "pre", Size: 3}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, b, 1, 2*time.Second); len(got) != 1 {
		t.Fatal("pre-partition message lost")
	}
	f.Partition("a", "b")
	dialsBefore := inner.DialAttempts()

	rec := &recordingEndpoint{Endpoint: a}
	base := 8 * time.Millisecond
	attempts, err := ReliableSend(rec, "b", Message{Kind: "k", Payload: "cut", Size: 3}, 4, base)
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send across partition: got %v, want ErrPartitioned", err)
	}
	if attempts != 5 {
		t.Fatalf("attempts = %d, want exactly retries+1 = 5 (capped)", attempts)
	}
	rec.mu.Lock()
	times := append([]time.Time(nil), rec.times...)
	rec.mu.Unlock()
	if len(times) != 5 {
		t.Fatalf("recorded %d sends, want 5", len(times))
	}
	want := base
	for i := 1; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap < want {
			t.Fatalf("retry %d came %v after retry %d, want >= %v (exponential spacing)", i, gap, i-1, want)
		}
		want *= 2
	}
	if got := inner.DialAttempts(); got != dialsBefore {
		t.Fatalf("partition caused %d TCP dial attempts, want 0", got-dialsBefore)
	}

	f.Heal("a", "b")
	if _, err := ReliableSend(a, "b", Message{Kind: "k", Payload: "post", Size: 4}, 4, base); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if got := collect(t, b, 1, 2*time.Second); len(got) != 1 || got[0].Payload.(string) != "post" {
		t.Fatalf("post-heal message lost: %v", got)
	}
}

package transport

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// binPayload is a WireMarshaler test type; Refuse forces the gob
// fallback from inside the marshaler.
type binPayload struct {
	A      int64
	B      string
	Refuse bool
}

func (p binPayload) WireTag() string { return "test.bin" }

func (p binPayload) AppendWire(buf []byte) ([]byte, bool) {
	if p.Refuse {
		return buf, false
	}
	buf = binary.AppendVarint(buf, p.A)
	buf = binary.AppendUvarint(buf, uint64(len(p.B)))
	return append(buf, p.B...), true
}

// gobOnlyPayload has no WireMarshaler implementation at all.
type gobOnlyPayload struct {
	N int
	S []string
}

func init() {
	gob.Register(binPayload{})
	gob.Register(gobOnlyPayload{})
	RegisterWireUnmarshaler("test.bin", func(data []byte) (any, error) {
		a, n := binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("bad varint")
		}
		l, m := binary.Uvarint(data[n:])
		if m <= 0 || uint64(len(data)-n-m) < l {
			return nil, fmt.Errorf("bad string")
		}
		n += m
		return binPayload{A: a, B: string(data[n : n+int(l)])}, nil
	})
}

func recvWire(t *testing.T, ep Endpoint) Message {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	return Message{}
}

// TestTCPBinaryAndGobFrames sends, over one connection: a binary-framed
// payload, a marshaler that refuses (gob fallback mid-stream), and a
// payload with no marshaler. All three must arrive intact and in order.
func TestTCPBinaryAndGobFrames(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	sent := []Message{
		{Kind: "k1", Payload: binPayload{A: -42, B: "fast path"}, Size: 10},
		{Kind: "k2", Payload: binPayload{A: 7, B: "refused", Refuse: true}, Size: 20},
		{Kind: "k3", Payload: gobOnlyPayload{N: 3, S: []string{"x", "y"}}, Size: 30},
	}
	for _, m := range sent {
		if err := a.Send("b", m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sent {
		got := recvWire(t, b)
		if got.From != "a" || got.To != "b" || got.Kind != want.Kind || got.Size != want.Size {
			t.Fatalf("message %d header mismatch: %+v", i, got)
		}
		wantPayload := want.Payload
		if bp, ok := wantPayload.(binPayload); ok && bp.Refuse {
			// The refusing marshaler travels by gob, arriving intact
			// including the Refuse field.
			wantPayload = bp
		}
		if !reflect.DeepEqual(got.Payload, wantPayload) {
			t.Fatalf("message %d payload: got %#v want %#v", i, got.Payload, wantPayload)
		}
	}
	if n.Messages() != 3 {
		t.Fatalf("message count %d", n.Messages())
	}
	if n.Dials() != 1 {
		t.Fatalf("dials %d, want 1 persistent connection", n.Dials())
	}
}

// TestTCPCoalescedBytesAccounted: BytesSent must converge to the full
// framed byte count once the flusher drains, and binary framing must
// cost fewer wire bytes than gob for the same records.
func TestTCPCoalescedBytesAccounted(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	const sends = 64
	for i := 0; i < sends; i++ {
		if err := a.Send("b", Message{Kind: "k", Payload: binPayload{A: int64(i), B: "payload"}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		recvWire(t, b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.BytesSent() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := n.BytesSent()
	if got == 0 {
		t.Fatal("no bytes accounted after flush")
	}
	// Hello frame + 64 binary frames of ~30 bytes each; a gob stream of
	// the same messages costs several times that.
	if got > int64(sends*80) {
		t.Fatalf("binary frames cost %d bytes for %d sends — fallback suspected", got, sends)
	}
}

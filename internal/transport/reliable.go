package transport

import "time"

// ReliableSend sends msg to to, retrying a failed Send up to retries
// additional times with exponential backoff starting at base (doubling
// per attempt). It returns the number of attempts made and the last
// error (nil once an attempt succeeds).
//
// This is the delivery discipline for control-plane traffic over lossy
// or flapping links: the FaultyNetwork surfaces injected drops and
// partitions as Send errors, and the TCP backend surfaces a dead
// persistent connection the same way — one bounded retry loop covers
// both. Callers that can tolerate loss (or are racing shutdown) may
// ignore the error after counting it.
func ReliableSend(ep Endpoint, to string, msg Message, retries int, base time.Duration) (int, error) {
	if retries < 0 {
		retries = 0
	}
	if base <= 0 {
		base = time.Millisecond
	}
	var err error
	attempts := 0
	backoff := base
	for try := 0; try <= retries; try++ {
		attempts++
		if err = ep.Send(to, msg); err == nil {
			return attempts, nil
		}
		if try < retries {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	return attempts, err
}

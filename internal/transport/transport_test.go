package transport

import (
	"encoding/gob"
	"fmt"
	"sync"
	"testing"
	"time"
)

type payload struct {
	N  int
	Vs []float64
}

func init() { gob.Register(payload{}) }

// networks returns both backends so every behavioural test runs against
// each.
func networks(t *testing.T) map[string]Network {
	t.Helper()
	return map[string]Network{
		"chan": NewChanNetwork(),
		"tcp":  NewTCPNetwork(),
	}
}

func recvOne(t *testing.T, ep Endpoint) Message {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	panic("unreachable")
}

func TestRoundtrip(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			a, err := nw.Endpoint("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := nw.Endpoint("b")
			if err != nil {
				t.Fatal(err)
			}
			want := payload{N: 7, Vs: []float64{1, 2, 3}}
			if err := a.Send("b", Message{Kind: "data", Payload: want, Size: 28}); err != nil {
				t.Fatal(err)
			}
			m := recvOne(t, b)
			if m.From != "a" || m.To != "b" || m.Kind != "data" {
				t.Fatalf("bad envelope: %+v", m)
			}
			got, ok := m.Payload.(payload)
			if !ok {
				t.Fatalf("payload type %T", m.Payload)
			}
			if got.N != want.N || len(got.Vs) != 3 || got.Vs[2] != 3 {
				t.Fatalf("payload mismatch: %+v", got)
			}
		})
	}
}

func TestOrderingPerSender(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			a, _ := nw.Endpoint("a")
			b, _ := nw.Endpoint("b")
			const n = 200
			for i := 0; i < n; i++ {
				if err := a.Send("b", Message{Kind: "seq", Payload: payload{N: i}}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				m := recvOne(t, b)
				if m.Payload.(payload).N != i {
					t.Fatalf("out of order: got %d at position %d", m.Payload.(payload).N, i)
				}
			}
		})
	}
}

func TestSenderNeverBlocks(t *testing.T) {
	// 10k sends with nobody receiving must complete promptly.
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			a, _ := nw.Endpoint("a")
			if _, err := nw.Endpoint("b"); err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				for i := 0; i < 10000; i++ {
					_ = a.Send("b", Message{Kind: "flood", Payload: payload{N: i}})
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("sender blocked")
			}
		})
	}
}

func TestUnknownEndpoint(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			a, _ := nw.Endpoint("a")
			if err := a.Send("ghost", Message{Kind: "x"}); err == nil {
				t.Fatal("expected error for unknown endpoint")
			}
		})
	}
}

func TestConcurrentSenders(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			dst, _ := nw.Endpoint("dst")
			const senders, per = 8, 100
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				ep, err := nw.Endpoint(fmt.Sprintf("s%d", s))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(ep Endpoint) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := ep.Send("dst", Message{Kind: "c", Payload: payload{N: i}}); err != nil {
							t.Error(err)
							return
						}
					}
				}(ep)
			}
			wg.Wait()
			for i := 0; i < senders*per; i++ {
				recvOne(t, dst)
			}
			if got := nw.Messages(); got != senders*per {
				t.Fatalf("message count %d, want %d", got, senders*per)
			}
		})
	}
}

func TestBytesAccounting(t *testing.T) {
	nw := NewChanNetwork()
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	nw.Endpoint("b")
	a.Send("b", Message{Kind: "x", Size: 100})
	a.Send("b", Message{Kind: "x", Size: 50})
	if got := nw.BytesSent(); got != 150 {
		t.Fatalf("BytesSent = %d, want 150", got)
	}
}

func TestTCPBytesAreRealWireBytes(t *testing.T) {
	nw := NewTCPNetwork()
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = 1.0 / float64(i+3)
	}
	a.Send("b", Message{Kind: "x", Payload: payload{N: 1, Vs: vs}})
	recvOne(t, b)
	if nw.BytesSent() < 800 {
		t.Fatalf("wire bytes %d implausibly small for 100 float64s", nw.BytesSent())
	}
}

func TestTCPConnectionsArePersistent(t *testing.T) {
	nw := NewTCPNetwork()
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	for i := 0; i < 50; i++ {
		if err := a.Send("b", Message{Kind: "x", Payload: payload{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		recvOne(t, b)
	}
	if got := nw.Dials(); got != 1 {
		t.Fatalf("dialed %d times for 50 sends, want 1 persistent connection", got)
	}
	// Reverse direction opens its own connection.
	if err := b.Send("a", Message{Kind: "y", Payload: payload{}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a)
	if got := nw.Dials(); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}
}

func TestEndpointIdempotent(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			e1, _ := nw.Endpoint("same")
			e2, _ := nw.Endpoint("same")
			if e1 != e2 {
				t.Fatal("Endpoint not idempotent")
			}
		})
	}
}

func TestCloseDrainsAndStops(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := nw.Endpoint("a")
			b, _ := nw.Endpoint("b")
			a.Send("b", Message{Kind: "x", Payload: payload{N: 1}})
			recvOne(t, b)
			nw.Close()
			if err := a.Send("b", Message{Kind: "x"}); err == nil {
				t.Fatal("send after close should fail")
			}
			if _, err := nw.Endpoint("c"); err == nil {
				t.Fatal("endpoint creation after close should fail")
			}
			// Recv channel must eventually close.
			for range b.Recv() {
			}
		})
	}
}

func TestSendToClosedEndpoint(t *testing.T) {
	nw := NewChanNetwork()
	defer nw.Close()
	a, _ := nw.Endpoint("a")
	b, _ := nw.Endpoint("b")
	b.Close()
	if err := a.Send("b", Message{Kind: "x"}); err == nil {
		t.Fatal("expected error sending to closed endpoint")
	}
}

// TestDeliveryOrderUnderMixedPaths pins the inbox FIFO guarantee: the
// direct fast path (queue empty, pump idle) and the pump path mix
// freely as the receiver stalls and catches up, and messages from one
// sender must still arrive in send order.
func TestDeliveryOrderUnderMixedPaths(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer n.Close()
			a, err := n.Endpoint("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := n.Endpoint("b")
			if err != nil {
				t.Fatal(err)
			}
			const total = 500
			go func() {
				for i := 0; i < total; i++ {
					if err := a.Send("b", Message{Kind: fmt.Sprint(i)}); err != nil {
						return
					}
				}
			}()
			for i := 0; i < total; i++ {
				m := recvOne(t, b)
				if m.Kind != fmt.Sprint(i) {
					t.Fatalf("message %d arrived as %q", i, m.Kind)
				}
				if i%97 == 0 {
					// Stall so the out channel fills and later sends take
					// the queued pump path.
					time.Sleep(2 * time.Millisecond)
				}
			}
		})
	}
}

package transport

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection errors. Drops and partitions are *detectable* losses:
// Send returns an error and the frame never reaches the wire, the way a
// broken TCP connection or an unreachable host fails. Callers that need
// delivery retry (see ReliableSend); callers that don't lose the frame,
// exactly as they would on a real lossy link. Duplication and
// reordering are silent — the receiver cannot tell, so the protocol
// above must be idempotent.
var (
	ErrDropped     = errors.New("transport: message dropped by fault injection")
	ErrPartitioned = errors.New("transport: link partitioned")
)

// FaultyOptions configures a FaultyNetwork. All rates are probabilities
// in [0,1) drawn from a per-link deterministic RNG seeded from Seed and
// the (from, to) address pair, so a fixed seed yields a reproducible
// fault pattern per link regardless of cross-link interleaving.
type FaultyOptions struct {
	// Seed keys every per-link RNG. Two networks with the same Seed and
	// the same per-link send sequences inject identical faults.
	Seed int64
	// DropRate is the probability a Send fails with ErrDropped.
	DropRate float64
	// DupRate is the probability a delivered message is delivered twice.
	DupRate float64
	// ReorderRate is the probability a message is held back and
	// delivered after the link's next message (adjacent swap). A held
	// message with no successor is flushed after HoldMax.
	ReorderRate float64
	// HoldMax bounds how long a reorder-held message waits for a
	// successor before being flushed anyway. Default 2ms.
	HoldMax time.Duration
}

// FaultyNetwork wraps another Network and injects message drops,
// duplicates, adjacent reordering, and per-link partitions — the chaos
// layer for robustness tests. Byte and message accounting is delegated
// to the inner network: dropped frames are never counted, duplicated
// frames are counted twice, matching what a wire-level observer sees.
type FaultyNetwork struct {
	inner Network
	opts  FaultyOptions

	mu     sync.Mutex
	eps    map[string]*faultyEndpoint
	cut    map[[2]string]bool // directed severed links
	closed bool

	drops    atomic.Int64
	dups     atomic.Int64
	reorders atomic.Int64
}

// NewFaultyNetwork wraps inner with fault injection per opts.
func NewFaultyNetwork(inner Network, opts FaultyOptions) *FaultyNetwork {
	if opts.HoldMax <= 0 {
		opts.HoldMax = 2 * time.Millisecond
	}
	return &FaultyNetwork{
		inner: inner,
		opts:  opts,
		eps:   make(map[string]*faultyEndpoint),
		cut:   make(map[[2]string]bool),
	}
}

// Drops returns how many sends were failed with ErrDropped (partition
// losses included).
func (n *FaultyNetwork) Drops() int64 { return n.drops.Load() }

// Dups returns how many extra deliveries were injected.
func (n *FaultyNetwork) Dups() int64 { return n.dups.Load() }

// Reorders returns how many messages were delivered out of order.
func (n *FaultyNetwork) Reorders() int64 { return n.reorders.Load() }

// Partition severs both directions between a and b: sends fail with
// ErrPartitioned until Heal.
func (n *FaultyNetwork) Partition(a, b string) {
	n.mu.Lock()
	n.cut[[2]string{a, b}] = true
	n.cut[[2]string{b, a}] = true
	n.mu.Unlock()
}

// Heal restores the link between a and b.
func (n *FaultyNetwork) Heal(a, b string) {
	n.mu.Lock()
	delete(n.cut, [2]string{a, b})
	delete(n.cut, [2]string{b, a})
	n.mu.Unlock()
}

func (n *FaultyNetwork) partitioned(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cut[[2]string{from, to}]
}

type faultyEndpoint struct {
	net   *FaultyNetwork
	inner Endpoint

	mu    sync.Mutex
	links map[string]*faultyLink
}

// faultyLink holds per-destination fault state: the deterministic RNG
// and at most one reorder-held message. mu serializes senders on the
// link so the RNG stream position depends only on the link's send
// sequence.
type faultyLink struct {
	mu    sync.Mutex
	rng   *rand.Rand
	held  *Message
	timer *time.Timer
}

// Endpoint implements Network.
func (n *FaultyNetwork) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if ep, ok := n.eps[addr]; ok {
		return ep, nil
	}
	inner, err := n.inner.Endpoint(addr)
	if err != nil {
		return nil, err
	}
	ep := &faultyEndpoint{net: n, inner: inner, links: make(map[string]*faultyLink)}
	n.eps[addr] = ep
	return ep, nil
}

func (e *faultyEndpoint) Addr() string         { return e.inner.Addr() }
func (e *faultyEndpoint) Recv() <-chan Message { return e.inner.Recv() }

// linkTo returns the per-destination fault state, creating it with an
// RNG seeded from (Seed, from, to) on first use.
func (e *faultyEndpoint) linkTo(to string) *faultyLink {
	e.mu.Lock()
	defer e.mu.Unlock()
	ln, ok := e.links[to]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(e.inner.Addr()))
		h.Write([]byte{0})
		h.Write([]byte(to))
		ln = &faultyLink{rng: rand.New(rand.NewSource(e.net.opts.Seed ^ int64(h.Sum64())))}
		e.links[to] = ln
	}
	return ln
}

func (e *faultyEndpoint) Send(to string, msg Message) error {
	if e.net.partitioned(e.inner.Addr(), to) {
		e.net.drops.Add(1)
		return fmt.Errorf("%w: %s->%s", ErrPartitioned, e.inner.Addr(), to)
	}
	opts := e.net.opts
	ln := e.linkTo(to)
	ln.mu.Lock()
	// One draw per fault class per message keeps the per-link stream
	// aligned across runs with the same send sequence.
	drop := ln.rng.Float64() < opts.DropRate
	dup := ln.rng.Float64() < opts.DupRate
	reorder := ln.rng.Float64() < opts.ReorderRate

	if drop {
		ln.mu.Unlock()
		e.net.drops.Add(1)
		return fmt.Errorf("%w: %s->%s %s", ErrDropped, e.inner.Addr(), to, msg.Kind)
	}

	// A message held for reordering is released right after the current
	// one — an adjacent swap, the minimal reordering a FIFO link can
	// exhibit.
	var release *Message
	if ln.held != nil && !reorder {
		if ln.timer != nil {
			ln.timer.Stop()
			ln.timer = nil
		}
		release = ln.held
		ln.held = nil
	}

	hold := reorder && ln.held == nil
	if hold {
		held := msg
		ln.held = &held
		e.net.reorders.Add(1)
		ln.timer = time.AfterFunc(opts.HoldMax, func() { e.flushHeld(ln, to) })
	}
	ln.mu.Unlock()

	if !hold {
		if err := e.deliver(to, msg, dup); err != nil {
			return err
		}
	}
	if release != nil {
		_ = e.deliver(to, *release, false)
	}
	return nil
}

// flushHeld delivers a reorder-held message whose successor never came.
func (e *faultyEndpoint) flushHeld(ln *faultyLink, to string) {
	ln.mu.Lock()
	var msg *Message
	if ln.held != nil {
		msg = ln.held
		ln.held = nil
		ln.timer = nil
	}
	ln.mu.Unlock()
	if msg != nil {
		_ = e.inner.Send(to, *msg) // peer may be gone during shutdown
	}
}

func (e *faultyEndpoint) deliver(to string, msg Message, dup bool) error {
	if err := e.inner.Send(to, msg); err != nil {
		return err
	}
	if dup {
		e.net.dups.Add(1)
		_ = e.inner.Send(to, msg)
	}
	return nil
}

func (e *faultyEndpoint) Close() error {
	e.mu.Lock()
	links := make(map[string]*faultyLink, len(e.links))
	for to, ln := range e.links {
		links[to] = ln
	}
	e.mu.Unlock()
	for to, ln := range links {
		// Flush any reorder-held frame so teardown itself loses nothing.
		e.flushHeld(ln, to)
	}
	// Deregister so a later Endpoint(addr) builds a fresh wrapper over a
	// fresh inner endpoint — without this, a restarted engine would get
	// this stale wrapper whose inner endpoint is closed.
	e.net.mu.Lock()
	if e.net.eps[e.inner.Addr()] == e {
		delete(e.net.eps, e.inner.Addr())
	}
	e.net.mu.Unlock()
	return e.inner.Close()
}

// Addrs returns the sorted addresses of the currently open endpoints —
// the live link targets a chaos schedule can partition.
func (n *FaultyNetwork) Addrs() []string {
	n.mu.Lock()
	out := make([]string, 0, len(n.eps))
	for a := range n.eps {
		out = append(out, a)
	}
	n.mu.Unlock()
	sort.Strings(out)
	return out
}

// Close implements Network.
func (n *FaultyNetwork) Close() error {
	n.mu.Lock()
	n.closed = true
	eps := make([]*faultyEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[string]*faultyEndpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		for _, ln := range ep.links {
			ln.mu.Lock()
			if ln.timer != nil {
				ln.timer.Stop()
				ln.timer = nil
			}
			ln.held = nil
			ln.mu.Unlock()
		}
		ep.mu.Unlock()
	}
	return n.inner.Close()
}

// BytesSent implements Network.
func (n *FaultyNetwork) BytesSent() int64 { return n.inner.BytesSent() }

// Messages implements Network.
func (n *FaultyNetwork) Messages() int64 { return n.inner.Messages() }

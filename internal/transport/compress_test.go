package transport

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestTCPCompressedFramesRoundTrip runs compressible and incompressible
// payloads, binary and gob framed, over a CompressThreshold network, and
// checks every payload survives byte-identically while the compressible
// ones actually went out flate-wrapped and smaller.
func TestTCPCompressedFramesRoundTrip(t *testing.T) {
	n := NewTCPNetworkOpts(TCPOptions{CompressThreshold: 256})
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("the same words over and over ", 200) // ~6 KB, very compressible
	sent := []Message{
		{Kind: "bin-big", Payload: binPayload{A: 1, B: big}, Size: 1},
		{Kind: "bin-small", Payload: binPayload{A: 2, B: "tiny"}, Size: 2}, // under threshold
		{Kind: "gob-big", Payload: gobOnlyPayload{N: 3, S: []string{big, big}}, Size: 3},
		{Kind: "bin-big-2", Payload: binPayload{A: 4, B: big + big}, Size: 4},
	}
	for _, m := range sent {
		if err := a.Send("b", m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sent {
		got := recvWire(t, b)
		if got.Kind != want.Kind || !reflect.DeepEqual(got.Payload, want.Payload) {
			t.Fatalf("message %d (%s) corrupted through compression: %#v", i, want.Kind, got.Payload)
		}
	}
	if cf := n.CompressedFrames(); cf != 3 {
		t.Fatalf("compressed frames = %d, want 3 (the big payloads)", cf)
	}
	if n.CompressionSaved() <= 0 {
		t.Fatal("compression saved no bytes")
	}
}

// TestTCPCompressionOffByDefault pins the default: no threshold, no
// flate frames, whatever the payload size.
func TestTCPCompressionOffByDefault(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	if err := a.Send("b", Message{Kind: "k", Payload: binPayload{A: 9, B: strings.Repeat("z", 1<<16)}}); err != nil {
		t.Fatal(err)
	}
	recvWire(t, b)
	if n.CompressedFrames() != 0 {
		t.Fatalf("compressed %d frames with compression disabled", n.CompressedFrames())
	}
}

// TestTCPIncompressibleFrameShipsRaw: a frame over the threshold whose
// flate output is not smaller must go out uncompressed (and still
// arrive).
func TestTCPIncompressibleFrameShipsRaw(t *testing.T) {
	n := NewTCPNetworkOpts(TCPOptions{CompressThreshold: 64})
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	// Pseudo-random bytes: flate cannot shrink these.
	noise := make([]byte, 4096)
	x := uint32(2463534242)
	for i := range noise {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		noise[i] = byte(x)
	}
	msg := Message{Kind: "noise", Payload: binPayload{A: 1, B: string(noise)}}
	if err := a.Send("b", msg); err != nil {
		t.Fatal(err)
	}
	got := recvWire(t, b)
	if !reflect.DeepEqual(got.Payload, msg.Payload) {
		t.Fatal("noise payload corrupted")
	}
	if n.CompressedFrames() != 0 {
		t.Fatalf("incompressible frame was sent compressed (%d)", n.CompressedFrames())
	}
}

// TestTCPCompressedStreamSustained interleaves many compressed and raw
// frames on one connection to shake out state-reuse bugs in the per-conn
// compressor and the read loop's reused buffers.
func TestTCPCompressedStreamSustained(t *testing.T) {
	n := NewTCPNetworkOpts(TCPOptions{CompressThreshold: 128})
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	const rounds = 200
	for i := 0; i < rounds; i++ {
		body := fmt.Sprintf("round %d ", i)
		if i%3 != 0 {
			body = strings.Repeat(body, 100) // over threshold, compressible
		}
		if err := a.Send("b", Message{Kind: "k", Payload: binPayload{A: int64(i), B: body}}); err != nil {
			t.Fatal(err)
		}
		got := recvWire(t, b)
		if got.Payload.(binPayload).A != int64(i) || got.Payload.(binPayload).B != body {
			t.Fatalf("round %d corrupted", i)
		}
	}
	if cf := n.CompressedFrames(); cf == 0 || cf >= rounds {
		t.Fatalf("compressed frames = %d, want mixed stream", cf)
	}
}

package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"imapreduce/internal/trace"
)

// ProtocolVersion is the wire protocol generation carried in every hello
// handshake. Bump it whenever the frame format changes incompatibly;
// mixed-version peers then fail fast with a VersionMismatchError instead
// of a confusing decode failure mid-stream.
const ProtocolVersion byte = 1

// AddrResolver maps a logical endpoint address (e.g. "job/map/0/3" or
// "ctl/master") to the "host:port" its listener is bound to in another
// process. Returning ok=false means the resolver does not know the peer;
// the dial then fails with an unknown-endpoint error. Resolvers are
// consulted only after the local endpoint table misses, so in-process
// peers never pay the indirection.
type AddrResolver func(logical string) (hostport string, ok bool)

// TCPOptions configures a TCPNetwork. The zero value reproduces the
// historical behavior: loopback listeners on ephemeral ports, no
// cross-process resolution.
type TCPOptions struct {
	// ListenHost is the interface new listeners bind to (default
	// "127.0.0.1"; use "0.0.0.0" to accept off-host peers).
	ListenHost string
	// Resolver resolves logical addresses that are not local to this
	// network — the bridge that lets endpoints live in different
	// processes. Nil restricts dialing to in-process endpoints.
	Resolver AddrResolver
	// DialTimeout bounds one dial plus its hello handshake (default 3s).
	DialTimeout time.Duration
	// DialBackoffBase is the first delay after a failed dial to a peer
	// (default 25ms). Subsequent failures double it up to DialBackoffMax;
	// sends inside the window fail fast with a DialBackoffError rather
	// than hammering the kernel with connection attempts.
	DialBackoffBase time.Duration
	// DialBackoffMax caps the per-peer dial backoff (default 2s).
	DialBackoffMax time.Duration
}

// TCPNetwork is the real-socket backend. Every endpoint owns a listener;
// the first Send from A to B dials one connection that stays open for
// the lifetime of the network — the persistent sockets the paper builds
// between reduce tasks and their map tasks. Peers are dialed by string
// address: local endpoints resolve through the in-process table, remote
// ones through TCPOptions.Resolver, so the same engine code runs
// single-process or spread across imrmaster/imrworker processes.
//
// Frames are length-prefixed: a 4-byte big-endian body length, a frame
// type byte, then the body. Payloads implementing WireMarshaler travel
// as reflection-free binary (frameBin); everything else — control
// messages and unregistered job types — falls back to a stateless gob
// encoding per frame (frameGob), so gob registration via
// kv.RegisterWireType keeps working unchanged.
//
// Writes are coalesced: each connection buffers frames in a
// bufio.Writer and a per-connection flusher goroutine flushes when the
// sender goes idle, so a burst of shuffle chunks shares syscalls while
// a lone control message still leaves within microseconds.
type TCPNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*tcpEndpoint
	closed    bool
	opts      TCPOptions
	// helloVersion is what this network advertises and accepts; it is
	// ProtocolVersion except in tests that force a skew.
	helloVersion byte
	rngMu        sync.Mutex
	rng          *rand.Rand // dial-backoff jitter
	bytes        atomic.Int64
	msgs         atomic.Int64
	dials        atomic.Int64
	dialTries    atomic.Int64
	flushes      atomic.Int64
	tr           atomic.Pointer[trace.Recorder]
}

// SetTrace attaches a recorder; connection flushes emit KindNetFlush
// events into it. Call before traffic starts — connections dialed
// earlier keep the recorder (possibly nil) they were created with.
func (n *TCPNetwork) SetTrace(r *trace.Recorder) { n.tr.Store(r) }

// Flushes reports how many coalesced buffer flushes have happened.
func (n *TCPNetwork) Flushes() int64 { return n.flushes.Load() }

// NewTCPNetwork returns an empty TCP network on the loopback interface.
func NewTCPNetwork() *TCPNetwork { return NewTCPNetworkOpts(TCPOptions{}) }

// NewTCPNetworkOpts returns an empty TCP network configured by opts.
func NewTCPNetworkOpts(opts TCPOptions) *TCPNetwork {
	if opts.ListenHost == "" {
		opts.ListenHost = "127.0.0.1"
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 3 * time.Second
	}
	if opts.DialBackoffBase <= 0 {
		opts.DialBackoffBase = 25 * time.Millisecond
	}
	if opts.DialBackoffMax <= 0 {
		opts.DialBackoffMax = 2 * time.Second
	}
	return &TCPNetwork{
		endpoints:    make(map[string]*tcpEndpoint),
		opts:         opts,
		helloVersion: ProtocolVersion,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Dials returns how many connections have been established; tests use it
// to prove connections are persistent (one per sender/receiver pair).
func (n *TCPNetwork) Dials() int64 { return n.dials.Load() }

// DialAttempts returns how many TCP connection attempts have been made,
// successful or not — the quantity the dial-backoff gate bounds.
func (n *TCPNetwork) DialAttempts() int64 { return n.dialTries.Load() }

// Frame type bytes.
const (
	frameHello    byte = 1 // body: version byte, then sender's logical address
	frameGob      byte = 2 // body: stateless gob encoding of wireMessage
	frameBin      byte = 3 // body: binary header + WireMarshaler payload
	frameHelloAck byte = 4 // body: acceptor's version byte, then status byte
)

// Hello-ack status bytes.
const (
	helloAccept byte = 0
	helloReject byte = 1
)

// maxFrameSize bounds a single frame; larger length prefixes are treated
// as stream corruption.
const maxFrameSize = 1 << 30

// VersionMismatchError reports a hello handshake that failed because the
// two processes speak different protocol generations.
type VersionMismatchError struct {
	Peer   string // logical address dialed
	Local  byte   // our ProtocolVersion
	Remote byte   // what the peer advertised in its hello ack
}

func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("transport: protocol version mismatch dialing %q: local v%d, peer v%d — rebuild both sides from the same source tree",
		e.Peer, e.Local, e.Remote)
}

// DialBackoffError is returned by Send while a peer's dial-backoff gate
// is armed: a recent dial failed and the next attempt is deferred so a
// hot retry loop cannot turn into a dial storm. It wraps the dial error
// that armed the gate.
type DialBackoffError struct {
	Peer  string
	Until time.Time // when the next dial attempt is allowed
	Err   error     // the dial failure that armed the gate
}

func (e *DialBackoffError) Error() string {
	return fmt.Sprintf("transport: dial %q backing off until %s: %v", e.Peer, e.Until.Format("15:04:05.000"), e.Err)
}

func (e *DialBackoffError) Unwrap() error { return e.Err }

// WireMarshaler is implemented by payload types that can encode
// themselves into the binary fast-path frame. AppendWire appends the
// encoding to buf; ok=false (a nested value has no registered codec)
// makes the transport silently fall back to the gob frame for this
// message.
type WireMarshaler interface {
	WireTag() string
	AppendWire(buf []byte) ([]byte, bool)
}

var wireUnmarshalers sync.Map // tag string -> func([]byte) (any, error)

// RegisterWireUnmarshaler installs the decoder for a WireMarshaler tag.
// Like gob.Register it is meant for init functions; duplicate tags
// panic. Registration is process-global, which matches the in-process
// cluster model: every endpoint sees the same registry.
func RegisterWireUnmarshaler(tag string, fn func(data []byte) (any, error)) {
	if tag == "" || fn == nil {
		panic("transport: RegisterWireUnmarshaler with empty tag or nil func")
	}
	if _, dup := wireUnmarshalers.LoadOrStore(tag, fn); dup {
		panic(fmt.Sprintf("transport: wire unmarshaler %q registered twice", tag))
	}
}

type tcpEndpoint struct {
	net      *TCPNetwork
	addr     string
	listener net.Listener
	ib       *inbox

	mu    sync.Mutex
	conns map[string]*tcpConn  // persistent outbound connections by peer
	gates map[string]*dialGate // per-peer dial backoff state
	done  chan struct{}

	// accepted has its own lock: e.mu is held across dial+handshake, and
	// an accept path waiting on it would deadlock two endpoints dialing
	// each other (neither can answer the other's hello) until the dial
	// timeout.
	acceptMu sync.Mutex
	accepted map[net.Conn]bool // live inbound connections
}

// dialGate tracks exponential dial backoff toward one peer. It is
// guarded by the owning endpoint's mu.
type dialGate struct {
	until   time.Time
	backoff time.Duration
	lastErr error
}

type tcpConn struct {
	mu       sync.Mutex
	c        net.Conn
	bw       *bufio.Writer
	dead     bool
	buf      []byte       // frame scratch, reused under mu
	gobBuf   bytes.Buffer // gob fallback scratch, reused under mu
	flushReq chan struct{}
	net      *TCPNetwork
	owner    string // local endpoint address, for flush attribution
	peer     string
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// wireMessage is the gob fallback frame body.
type wireMessage struct {
	From    string
	Kind    string
	Payload any
	Size    int64
}

// Endpoint implements Network. The listener binds to ListenHost on an
// ephemeral port; use EndpointAt for a fixed, advertisable address.
func (n *TCPNetwork) Endpoint(addr string) (Endpoint, error) {
	return n.endpoint(addr, net.JoinHostPort(n.opts.ListenHost, "0"), true)
}

// EndpointAt registers endpoint addr with its listener bound to the
// explicit TCP address listen (e.g. "127.0.0.1:7070" or ":7070") — the
// well-known bootstrap address a master advertises to workers. Unlike
// Endpoint it refuses to adopt an existing endpoint: a fixed address is
// a claim of exclusive ownership.
func (n *TCPNetwork) EndpointAt(addr, listen string) (Endpoint, error) {
	return n.endpoint(addr, listen, false)
}

func (n *TCPNetwork) endpoint(addr, listen string, reuse bool) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if ep, ok := n.endpoints[addr]; ok {
		if reuse {
			return ep, nil
		}
		return nil, fmt.Errorf("transport: endpoint %q already exists", addr)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen for %q on %s: %w", addr, listen, err)
	}
	ep := &tcpEndpoint{
		net:      n,
		addr:     addr,
		listener: l,
		ib:       newInbox(),
		conns:    make(map[string]*tcpConn),
		gates:    make(map[string]*dialGate),
		accepted: make(map[net.Conn]bool),
		done:     make(chan struct{}),
	}
	n.endpoints[addr] = ep
	go ep.accept()
	return ep, nil
}

// ListenAddr reports the host:port endpoint addr's listener is bound to
// — the address to publish in a cluster directory so other processes
// can dial it.
func (n *TCPNetwork) ListenAddr(addr string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.endpoints[addr]
	if !ok {
		return "", false
	}
	return ep.listener.Addr().String(), true
}

// Invalidate drops every cached outbound connection to logical address
// peer and clears its dial-backoff gates, forcing the next Send to
// re-resolve and re-dial. Call it after a directory change remaps peer
// to a different process (task respawn after a worker death).
func (n *TCPNetwork) Invalidate(peer string) {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, e := range eps {
		e.mu.Lock()
		if c, ok := e.conns[peer]; ok {
			delete(e.conns, peer)
			c.mu.Lock()
			if !c.dead {
				c.dead = true
				c.bw.Flush()
			}
			c.mu.Unlock()
			c.c.Close()
		}
		delete(e.gates, peer)
		e.mu.Unlock()
	}
}

func (e *tcpEndpoint) accept() {
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		// Inbound connections must die with the endpoint: a peer whose
		// frames keep landing on a closed endpoint's socket would see its
		// sends succeed into a black hole and never re-dial — exactly the
		// signal a restarted master depends on workers getting.
		e.acceptMu.Lock()
		select {
		case <-e.done: // raced with Close after the listener check
			e.acceptMu.Unlock()
			c.Close()
			continue
		default:
		}
		e.accepted[c] = true
		e.acceptMu.Unlock()
		go func() {
			e.readLoop(c)
			e.acceptMu.Lock()
			delete(e.accepted, c)
			e.acceptMu.Unlock()
		}()
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameSize {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		switch body[0] {
		case frameHello:
			// Connection identification and version negotiation; data
			// frames carry From themselves. The ack is written straight to
			// the socket — the dialer blocks on it before sending data, so
			// there is nothing to interleave with.
			if len(body) < 2 {
				return
			}
			status := helloAccept
			if body[1] != e.net.helloVersion {
				status = helloReject
			}
			ack := []byte{0, 0, 0, 3, frameHelloAck, e.net.helloVersion, status}
			c.SetWriteDeadline(time.Now().Add(e.net.opts.DialTimeout))
			_, err := c.Write(ack)
			c.SetWriteDeadline(time.Time{})
			if err != nil || status == helloReject {
				return
			}
		case frameGob:
			var wm wireMessage
			if err := gob.NewDecoder(bytes.NewReader(body[1:])).Decode(&wm); err != nil {
				return
			}
			e.ib.push(Message{From: wm.From, To: e.addr, Kind: wm.Kind, Payload: wm.Payload, Size: wm.Size})
		case frameBin:
			msg, err := decodeBinFrame(body[1:], e.addr)
			if err != nil {
				return
			}
			e.ib.push(msg)
		default:
			return // unknown frame type: stream corruption
		}
	}
}

func appendLPString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readLPString(data []byte) (string, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return "", 0, fmt.Errorf("transport: truncated string in frame")
	}
	return string(data[n : n+int(l)]), n + int(l), nil
}

func decodeBinFrame(body []byte, to string) (Message, error) {
	from, n, err := readLPString(body)
	if err != nil {
		return Message{}, err
	}
	kind, m, err := readLPString(body[n:])
	if err != nil {
		return Message{}, err
	}
	n += m
	size, m := binary.Varint(body[n:])
	if m <= 0 {
		return Message{}, fmt.Errorf("transport: truncated size in frame")
	}
	n += m
	tag, m, err := readLPString(body[n:])
	if err != nil {
		return Message{}, err
	}
	n += m
	fn, ok := wireUnmarshalers.Load(tag)
	if !ok {
		return Message{}, fmt.Errorf("transport: no wire unmarshaler for tag %q", tag)
	}
	payload, err := fn.(func([]byte) (any, error))(body[n:])
	if err != nil {
		return Message{}, fmt.Errorf("transport: decode %q payload: %w", tag, err)
	}
	return Message{From: from, To: to, Kind: kind, Payload: payload, Size: size}, nil
}

func (e *tcpEndpoint) Addr() string { return e.addr }

func (e *tcpEndpoint) Send(to string, msg Message) error {
	err := e.sendOnce(to, msg)
	if err == nil {
		return nil
	}
	// The persistent connection may have died since the last send (peer
	// restart, half-open socket, flush failure marking it dead). The
	// frame was lost with it, so re-dial through connTo once and
	// retransmit instead of surfacing a loss the caller cannot see.
	// Retransmission over a fresh stream is at-least-once: if the first
	// write reached the peer before the connection died, the receiver
	// sees a duplicate.
	if err2 := e.sendOnce(to, msg); err2 != nil {
		return err2
	}
	return nil
}

func (e *tcpEndpoint) sendOnce(to string, msg Message) error {
	conn, err := e.connTo(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.dead {
		return fmt.Errorf("transport: connection %s->%s is down", e.addr, to)
	}
	frame, err := conn.buildFrame(e.addr, msg)
	if err != nil {
		// Encoding failure (e.g. a type gob does not know) is the
		// caller's problem, not the connection's.
		return fmt.Errorf("transport: encode %s->%s: %w", e.addr, to, err)
	}
	if _, err := conn.bw.Write(frame); err != nil {
		conn.dead = true
		conn.c.Close()
		return fmt.Errorf("transport: send %s->%s: %w", e.addr, to, err)
	}
	// Wake the flusher; a pending signal already covers this frame.
	select {
	case conn.flushReq <- struct{}{}:
	default:
	}
	e.net.msgs.Add(1)
	return nil
}

// buildFrame encodes msg into conn's reusable scratch buffer, returning
// the complete frame (length prefix included). Payloads implementing
// WireMarshaler get the binary frame; everything else, and marshalers
// that report ok=false, get the stateless gob frame.
func (conn *tcpConn) buildFrame(from string, msg Message) ([]byte, error) {
	buf := append(conn.buf[:0], 0, 0, 0, 0)
	if wm, ok := msg.Payload.(WireMarshaler); ok {
		buf = append(buf, frameBin)
		buf = appendLPString(buf, from)
		buf = appendLPString(buf, msg.Kind)
		buf = binary.AppendVarint(buf, msg.Size)
		buf = appendLPString(buf, wm.WireTag())
		if out, ok := wm.AppendWire(buf); ok {
			binary.BigEndian.PutUint32(out, uint32(len(out)-4))
			conn.buf = out
			return out, nil
		}
		buf = append(conn.buf[:0], 0, 0, 0, 0)
	}
	buf = append(buf, frameGob)
	conn.gobBuf.Reset()
	wm := wireMessage{From: from, Kind: msg.Kind, Payload: msg.Payload, Size: msg.Size}
	if err := gob.NewEncoder(&conn.gobBuf).Encode(&wm); err != nil {
		conn.buf = buf
		return nil, err
	}
	buf = append(buf, conn.gobBuf.Bytes()...)
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	conn.buf = buf
	return buf, nil
}

// flushLoop drains buffered frames whenever the sender goes idle. On a
// flush error it marks the connection dead so the next Send re-dials.
func (conn *tcpConn) flushLoop(done <-chan struct{}) {
	for {
		select {
		case <-done:
			conn.mu.Lock()
			if !conn.dead {
				conn.bw.Flush()
			}
			conn.mu.Unlock()
			return
		case <-conn.flushReq:
			conn.mu.Lock()
			if conn.dead {
				conn.mu.Unlock()
				return
			}
			if err := conn.bw.Flush(); err != nil {
				conn.dead = true
				conn.c.Close()
				conn.mu.Unlock()
				return
			}
			conn.mu.Unlock()
			conn.net.flushes.Add(1)
			if tr := conn.net.tr.Load(); tr != nil {
				tr.Emit(trace.KindNetFlush, conn.owner, -1, 0,
					trace.Attr{Key: "peer", Value: conn.peer})
			}
		}
	}
}

// resolve maps a logical peer address to its TCP listen address: the
// in-process endpoint table first, then the configured resolver.
func (n *TCPNetwork) resolve(peer string) (string, error) {
	n.mu.Lock()
	dst, ok := n.endpoints[peer]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return "", fmt.Errorf("transport: network closed")
	}
	if ok {
		return dst.listener.Addr().String(), nil
	}
	if n.opts.Resolver != nil {
		if hp, found := n.opts.Resolver(peer); found {
			return hp, nil
		}
	}
	return "", fmt.Errorf("transport: unknown endpoint %q", peer)
}

// connTo returns the persistent connection to peer, dialing it on first
// use. Failed dials arm a per-peer exponential backoff gate (with
// jitter); sends inside the window fail fast with DialBackoffError.
func (e *tcpEndpoint) connTo(peer string) (*tcpConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[peer]; ok {
		c.mu.Lock()
		dead := c.dead // the flusher marks connections dead asynchronously
		c.mu.Unlock()
		if !dead {
			return c, nil
		}
	}
	if g, ok := e.gates[peer]; ok && time.Now().Before(g.until) {
		return nil, &DialBackoffError{Peer: peer, Until: g.until, Err: g.lastErr}
	}
	target, err := e.net.resolve(peer)
	if err != nil {
		return nil, err
	}
	conn, err := e.dial(peer, target)
	if err != nil {
		e.armGate(peer, err)
		return nil, err
	}
	delete(e.gates, peer)
	e.conns[peer] = conn
	return conn, nil
}

// armGate records a dial failure against peer, doubling the backoff up
// to the cap. Jitter desynchronizes retry schedules across processes so
// a master restart is not greeted by a thundering herd of re-dials.
func (e *tcpEndpoint) armGate(peer string, err error) {
	g := e.gates[peer]
	if g == nil {
		g = &dialGate{}
		e.gates[peer] = g
	}
	if g.backoff == 0 {
		g.backoff = e.net.opts.DialBackoffBase
	} else if g.backoff < e.net.opts.DialBackoffMax {
		g.backoff *= 2
		if g.backoff > e.net.opts.DialBackoffMax {
			g.backoff = e.net.opts.DialBackoffMax
		}
	}
	// Equal jitter: half the backoff is deterministic, half uniform.
	wait := g.backoff/2 + e.net.jitter(g.backoff/2)
	g.until = time.Now().Add(wait)
	g.lastErr = err
}

func (n *TCPNetwork) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return time.Duration(n.rng.Int63n(int64(max) + 1))
}

// dial opens and verifies one connection to peer at target. The hello
// carries our protocol version; the peer's ack either accepts or names
// its own version, which surfaces as a typed VersionMismatchError.
func (e *tcpEndpoint) dial(peer, target string) (*tcpConn, error) {
	e.net.dialTries.Add(1)
	raw, err := net.DialTimeout("tcp", target, e.net.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %s: %w", peer, target, err)
	}
	if err := e.handshake(raw, peer); err != nil {
		raw.Close()
		return nil, err
	}
	e.net.dials.Add(1)
	cw := &countingWriter{w: raw, n: &e.net.bytes}
	conn := &tcpConn{
		c:        raw,
		bw:       bufio.NewWriterSize(cw, 64<<10),
		flushReq: make(chan struct{}, 1),
		net:      e.net,
		owner:    e.addr,
		peer:     peer,
	}
	go conn.flushLoop(e.done)
	return conn, nil
}

// handshake sends the versioned hello and synchronously waits for the
// acceptor's ack, so a dead listener or a version skew is caught at
// dial time rather than surfacing as a decode failure mid-stream.
func (e *tcpEndpoint) handshake(raw net.Conn, peer string) error {
	raw.SetDeadline(time.Now().Add(e.net.opts.DialTimeout))
	defer raw.SetDeadline(time.Time{})
	hello := []byte{0, 0, 0, 0, frameHello, e.net.helloVersion}
	hello = append(hello, e.addr...)
	binary.BigEndian.PutUint32(hello, uint32(len(hello)-4))
	if _, err := raw.Write(hello); err != nil {
		return fmt.Errorf("transport: hello to %q: %w", peer, err)
	}
	e.net.bytes.Add(int64(len(hello)))
	var ack [7]byte
	if _, err := io.ReadFull(raw, ack[:]); err != nil {
		return fmt.Errorf("transport: hello ack from %q: %w", peer, err)
	}
	if binary.BigEndian.Uint32(ack[:4]) != 3 || ack[4] != frameHelloAck {
		return fmt.Errorf("transport: malformed hello ack from %q", peer)
	}
	if ack[6] != helloAccept || ack[5] != e.net.helloVersion {
		return &VersionMismatchError{Peer: peer, Local: e.net.helloVersion, Remote: ack[5]}
	}
	return nil
}

func (e *tcpEndpoint) Recv() <-chan Message { return e.ib.out }

func (e *tcpEndpoint) Close() error {
	select {
	case <-e.done:
		return nil
	default:
	}
	close(e.done)
	e.listener.Close()
	e.mu.Lock()
	for _, c := range e.conns {
		c.mu.Lock()
		if !c.dead {
			c.dead = true
			c.bw.Flush()
		}
		c.mu.Unlock()
		c.c.Close()
	}
	e.mu.Unlock()
	e.acceptMu.Lock()
	for c := range e.accepted {
		c.Close()
	}
	e.acceptMu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	e.ib.close()
	return nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// BytesSent implements Network.
func (n *TCPNetwork) BytesSent() int64 { return n.bytes.Load() }

// Messages implements Network.
func (n *TCPNetwork) Messages() int64 { return n.msgs.Load() }

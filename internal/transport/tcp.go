package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"imapreduce/internal/trace"
)

// TCPNetwork is the real-socket backend. Every endpoint owns a loopback
// listener; the first Send from A to B dials one connection that stays
// open for the lifetime of the network — the persistent sockets the
// paper builds between reduce tasks and their map tasks.
//
// Frames are length-prefixed: a 4-byte big-endian body length, a frame
// type byte, then the body. Payloads implementing WireMarshaler travel
// as reflection-free binary (frameBin); everything else — control
// messages and unregistered job types — falls back to a stateless gob
// encoding per frame (frameGob), so gob registration via
// kv.RegisterWireType keeps working unchanged.
//
// Writes are coalesced: each connection buffers frames in a
// bufio.Writer and a per-connection flusher goroutine flushes when the
// sender goes idle, so a burst of shuffle chunks shares syscalls while
// a lone control message still leaves within microseconds.
type TCPNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*tcpEndpoint
	closed    bool
	bytes     atomic.Int64
	msgs      atomic.Int64
	dials     atomic.Int64
	flushes   atomic.Int64
	tr        atomic.Pointer[trace.Recorder]
}

// SetTrace attaches a recorder; connection flushes emit KindNetFlush
// events into it. Call before traffic starts — connections dialed
// earlier keep the recorder (possibly nil) they were created with.
func (n *TCPNetwork) SetTrace(r *trace.Recorder) { n.tr.Store(r) }

// Flushes reports how many coalesced buffer flushes have happened.
func (n *TCPNetwork) Flushes() int64 { return n.flushes.Load() }

// NewTCPNetwork returns an empty TCP network on the loopback interface.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{endpoints: make(map[string]*tcpEndpoint)}
}

// Dials returns how many connections have been established; tests use it
// to prove connections are persistent (one per sender/receiver pair).
func (n *TCPNetwork) Dials() int64 { return n.dials.Load() }

// Frame type bytes.
const (
	frameHello byte = 1 // body: sender's logical address
	frameGob   byte = 2 // body: stateless gob encoding of wireMessage
	frameBin   byte = 3 // body: binary header + WireMarshaler payload
)

// maxFrameSize bounds a single frame; larger length prefixes are treated
// as stream corruption.
const maxFrameSize = 1 << 30

// WireMarshaler is implemented by payload types that can encode
// themselves into the binary fast-path frame. AppendWire appends the
// encoding to buf; ok=false (a nested value has no registered codec)
// makes the transport silently fall back to the gob frame for this
// message.
type WireMarshaler interface {
	WireTag() string
	AppendWire(buf []byte) ([]byte, bool)
}

var wireUnmarshalers sync.Map // tag string -> func([]byte) (any, error)

// RegisterWireUnmarshaler installs the decoder for a WireMarshaler tag.
// Like gob.Register it is meant for init functions; duplicate tags
// panic. Registration is process-global, which matches the in-process
// cluster model: every endpoint sees the same registry.
func RegisterWireUnmarshaler(tag string, fn func(data []byte) (any, error)) {
	if tag == "" || fn == nil {
		panic("transport: RegisterWireUnmarshaler with empty tag or nil func")
	}
	if _, dup := wireUnmarshalers.LoadOrStore(tag, fn); dup {
		panic(fmt.Sprintf("transport: wire unmarshaler %q registered twice", tag))
	}
}

type tcpEndpoint struct {
	net      *TCPNetwork
	addr     string
	listener net.Listener
	ib       *inbox

	mu    sync.Mutex
	conns map[string]*tcpConn // persistent outbound connections by peer
	done  chan struct{}
}

type tcpConn struct {
	mu       sync.Mutex
	c        net.Conn
	bw       *bufio.Writer
	dead     bool
	buf      []byte       // frame scratch, reused under mu
	gobBuf   bytes.Buffer // gob fallback scratch, reused under mu
	flushReq chan struct{}
	net      *TCPNetwork
	owner    string // local endpoint address, for flush attribution
	peer     string
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// wireMessage is the gob fallback frame body.
type wireMessage struct {
	From    string
	Kind    string
	Payload any
	Size    int64
}

// Endpoint implements Network.
func (n *TCPNetwork) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if ep, ok := n.endpoints[addr]; ok {
		return ep, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen for %q: %w", addr, err)
	}
	ep := &tcpEndpoint{
		net:      n,
		addr:     addr,
		listener: l,
		ib:       newInbox(),
		conns:    make(map[string]*tcpConn),
		done:     make(chan struct{}),
	}
	n.endpoints[addr] = ep
	go ep.accept()
	return ep, nil
}

func (e *tcpEndpoint) accept() {
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameSize {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		switch body[0] {
		case frameHello:
			// Connection identification; data frames carry From themselves.
		case frameGob:
			var wm wireMessage
			if err := gob.NewDecoder(bytes.NewReader(body[1:])).Decode(&wm); err != nil {
				return
			}
			e.ib.push(Message{From: wm.From, To: e.addr, Kind: wm.Kind, Payload: wm.Payload, Size: wm.Size})
		case frameBin:
			msg, err := decodeBinFrame(body[1:], e.addr)
			if err != nil {
				return
			}
			e.ib.push(msg)
		default:
			return // unknown frame type: stream corruption
		}
	}
}

func appendLPString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readLPString(data []byte) (string, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return "", 0, fmt.Errorf("transport: truncated string in frame")
	}
	return string(data[n : n+int(l)]), n + int(l), nil
}

func decodeBinFrame(body []byte, to string) (Message, error) {
	from, n, err := readLPString(body)
	if err != nil {
		return Message{}, err
	}
	kind, m, err := readLPString(body[n:])
	if err != nil {
		return Message{}, err
	}
	n += m
	size, m := binary.Varint(body[n:])
	if m <= 0 {
		return Message{}, fmt.Errorf("transport: truncated size in frame")
	}
	n += m
	tag, m, err := readLPString(body[n:])
	if err != nil {
		return Message{}, err
	}
	n += m
	fn, ok := wireUnmarshalers.Load(tag)
	if !ok {
		return Message{}, fmt.Errorf("transport: no wire unmarshaler for tag %q", tag)
	}
	payload, err := fn.(func([]byte) (any, error))(body[n:])
	if err != nil {
		return Message{}, fmt.Errorf("transport: decode %q payload: %w", tag, err)
	}
	return Message{From: from, To: to, Kind: kind, Payload: payload, Size: size}, nil
}

func (e *tcpEndpoint) Addr() string { return e.addr }

func (e *tcpEndpoint) Send(to string, msg Message) error {
	err := e.sendOnce(to, msg)
	if err == nil {
		return nil
	}
	// The persistent connection may have died since the last send (peer
	// restart, half-open socket, flush failure marking it dead). The
	// frame was lost with it, so re-dial through connTo once and
	// retransmit instead of surfacing a loss the caller cannot see.
	// Retransmission over a fresh stream is at-least-once: if the first
	// write reached the peer before the connection died, the receiver
	// sees a duplicate.
	if err2 := e.sendOnce(to, msg); err2 != nil {
		return err2
	}
	return nil
}

func (e *tcpEndpoint) sendOnce(to string, msg Message) error {
	conn, err := e.connTo(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.dead {
		return fmt.Errorf("transport: connection %s->%s is down", e.addr, to)
	}
	frame, err := conn.buildFrame(e.addr, msg)
	if err != nil {
		// Encoding failure (e.g. a type gob does not know) is the
		// caller's problem, not the connection's.
		return fmt.Errorf("transport: encode %s->%s: %w", e.addr, to, err)
	}
	if _, err := conn.bw.Write(frame); err != nil {
		conn.dead = true
		conn.c.Close()
		return fmt.Errorf("transport: send %s->%s: %w", e.addr, to, err)
	}
	// Wake the flusher; a pending signal already covers this frame.
	select {
	case conn.flushReq <- struct{}{}:
	default:
	}
	e.net.msgs.Add(1)
	return nil
}

// buildFrame encodes msg into conn's reusable scratch buffer, returning
// the complete frame (length prefix included). Payloads implementing
// WireMarshaler get the binary frame; everything else, and marshalers
// that report ok=false, get the stateless gob frame.
func (conn *tcpConn) buildFrame(from string, msg Message) ([]byte, error) {
	buf := append(conn.buf[:0], 0, 0, 0, 0)
	if wm, ok := msg.Payload.(WireMarshaler); ok {
		buf = append(buf, frameBin)
		buf = appendLPString(buf, from)
		buf = appendLPString(buf, msg.Kind)
		buf = binary.AppendVarint(buf, msg.Size)
		buf = appendLPString(buf, wm.WireTag())
		if out, ok := wm.AppendWire(buf); ok {
			binary.BigEndian.PutUint32(out, uint32(len(out)-4))
			conn.buf = out
			return out, nil
		}
		buf = append(conn.buf[:0], 0, 0, 0, 0)
	}
	buf = append(buf, frameGob)
	conn.gobBuf.Reset()
	wm := wireMessage{From: from, Kind: msg.Kind, Payload: msg.Payload, Size: msg.Size}
	if err := gob.NewEncoder(&conn.gobBuf).Encode(&wm); err != nil {
		conn.buf = buf
		return nil, err
	}
	buf = append(buf, conn.gobBuf.Bytes()...)
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	conn.buf = buf
	return buf, nil
}

// flushLoop drains buffered frames whenever the sender goes idle. On a
// flush error it marks the connection dead so the next Send re-dials.
func (conn *tcpConn) flushLoop(done <-chan struct{}) {
	for {
		select {
		case <-done:
			conn.mu.Lock()
			if !conn.dead {
				conn.bw.Flush()
			}
			conn.mu.Unlock()
			return
		case <-conn.flushReq:
			conn.mu.Lock()
			if conn.dead {
				conn.mu.Unlock()
				return
			}
			if err := conn.bw.Flush(); err != nil {
				conn.dead = true
				conn.c.Close()
				conn.mu.Unlock()
				return
			}
			conn.mu.Unlock()
			conn.net.flushes.Add(1)
			if tr := conn.net.tr.Load(); tr != nil {
				tr.Emit(trace.KindNetFlush, conn.owner, -1, 0,
					trace.Attr{Key: "peer", Value: conn.peer})
			}
		}
	}
}

// connTo returns the persistent connection to peer, dialing it on first
// use.
func (e *tcpEndpoint) connTo(peer string) (*tcpConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[peer]; ok {
		c.mu.Lock()
		dead := c.dead // the flusher marks connections dead asynchronously
		c.mu.Unlock()
		if !dead {
			return c, nil
		}
	}
	e.net.mu.Lock()
	dst, ok := e.net.endpoints[peer]
	closed := e.net.closed
	e.net.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if !ok {
		return nil, fmt.Errorf("transport: unknown endpoint %q", peer)
	}
	raw, err := net.Dial("tcp", dst.listener.Addr().String())
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", peer, err)
	}
	e.net.dials.Add(1)
	cw := &countingWriter{w: raw, n: &e.net.bytes}
	conn := &tcpConn{
		c:        raw,
		bw:       bufio.NewWriterSize(cw, 64<<10),
		flushReq: make(chan struct{}, 1),
		net:      e.net,
		owner:    e.addr,
		peer:     peer,
	}
	// Identify ourselves so the peer can attribute the stream, and flush
	// synchronously so a dead listener is caught at dial time.
	hello := append(conn.buf[:0], 0, 0, 0, 0, frameHello)
	hello = append(hello, e.addr...)
	binary.BigEndian.PutUint32(hello, uint32(len(hello)-4))
	conn.buf = hello
	if _, err := conn.bw.Write(hello); err != nil {
		raw.Close()
		return nil, err
	}
	if err := conn.bw.Flush(); err != nil {
		raw.Close()
		return nil, err
	}
	go conn.flushLoop(e.done)
	e.conns[peer] = conn
	return conn, nil
}

func (e *tcpEndpoint) Recv() <-chan Message { return e.ib.out }

func (e *tcpEndpoint) Close() error {
	select {
	case <-e.done:
		return nil
	default:
	}
	close(e.done)
	e.listener.Close()
	e.mu.Lock()
	for _, c := range e.conns {
		c.mu.Lock()
		if !c.dead {
			c.dead = true
			c.bw.Flush()
		}
		c.mu.Unlock()
		c.c.Close()
	}
	e.mu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	e.ib.close()
	return nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// BytesSent implements Network.
func (n *TCPNetwork) BytesSent() int64 { return n.bytes.Load() }

// Messages implements Network.
func (n *TCPNetwork) Messages() int64 { return n.msgs.Load() }

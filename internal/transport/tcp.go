package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCPNetwork is the real-socket backend. Every endpoint owns a loopback
// listener; the first Send from A to B dials one connection that stays
// open for the lifetime of the network — the persistent sockets the
// paper builds between reduce tasks and their map tasks. Payload types
// must be registered with gob (kv.RegisterWireType).
type TCPNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*tcpEndpoint
	closed    bool
	bytes     atomic.Int64
	msgs      atomic.Int64
	dials     atomic.Int64
}

// NewTCPNetwork returns an empty TCP network on the loopback interface.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{endpoints: make(map[string]*tcpEndpoint)}
}

// Dials returns how many connections have been established; tests use it
// to prove connections are persistent (one per sender/receiver pair).
func (n *TCPNetwork) Dials() int64 { return n.dials.Load() }

type tcpEndpoint struct {
	net      *TCPNetwork
	addr     string
	listener net.Listener
	ib       *inbox

	mu    sync.Mutex
	conns map[string]*tcpConn // persistent outbound connections by peer
	done  chan struct{}
}

type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	enc  *gob.Encoder
	cw   *countingWriter
	dead bool
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// wireMessage is the on-the-wire frame. A hello frame (Hello != "")
// identifies the sender once per connection.
type wireMessage struct {
	Hello   string
	From    string
	Kind    string
	Payload any
	Size    int64
}

// Endpoint implements Network.
func (n *TCPNetwork) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if ep, ok := n.endpoints[addr]; ok {
		return ep, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen for %q: %w", addr, err)
	}
	ep := &tcpEndpoint{
		net:      n,
		addr:     addr,
		listener: l,
		ib:       newInbox(),
		conns:    make(map[string]*tcpConn),
		done:     make(chan struct{}),
	}
	n.endpoints[addr] = ep
	go ep.accept()
	return ep, nil
}

func (e *tcpEndpoint) accept() {
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var wm wireMessage
		if err := dec.Decode(&wm); err != nil {
			return
		}
		if wm.Hello != "" {
			continue // connection identification frame
		}
		e.ib.push(Message{From: wm.From, To: e.addr, Kind: wm.Kind, Payload: wm.Payload, Size: wm.Size})
	}
}

func (e *tcpEndpoint) Addr() string { return e.addr }

func (e *tcpEndpoint) Send(to string, msg Message) error {
	err := e.sendOnce(to, msg)
	if err == nil {
		return nil
	}
	// The persistent connection may have died since the last send (peer
	// restart, half-open socket, encode failure marking it dead). The
	// frame was lost with it, so re-dial through connTo once and
	// retransmit instead of surfacing a loss the caller cannot see.
	// Retransmission over a fresh stream is at-least-once: if the first
	// write reached the peer before the connection died, the receiver
	// sees a duplicate.
	if err2 := e.sendOnce(to, msg); err2 != nil {
		return err2
	}
	return nil
}

func (e *tcpEndpoint) sendOnce(to string, msg Message) error {
	conn, err := e.connTo(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.dead {
		return fmt.Errorf("transport: connection %s->%s is down", e.addr, to)
	}
	before := conn.cw.n.Load()
	wm := wireMessage{From: e.addr, Kind: msg.Kind, Payload: msg.Payload, Size: msg.Size}
	if err := conn.enc.Encode(&wm); err != nil {
		conn.dead = true
		conn.c.Close()
		return fmt.Errorf("transport: send %s->%s: %w", e.addr, to, err)
	}
	e.net.bytes.Add(conn.cw.n.Load() - before)
	e.net.msgs.Add(1)
	return nil
}

// connTo returns the persistent connection to peer, dialing it on first
// use.
func (e *tcpEndpoint) connTo(peer string) (*tcpConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[peer]; ok && !c.dead {
		return c, nil
	}
	e.net.mu.Lock()
	dst, ok := e.net.endpoints[peer]
	closed := e.net.closed
	e.net.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if !ok {
		return nil, fmt.Errorf("transport: unknown endpoint %q", peer)
	}
	raw, err := net.Dial("tcp", dst.listener.Addr().String())
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", peer, err)
	}
	e.net.dials.Add(1)
	cw := &countingWriter{w: raw, n: &atomic.Int64{}}
	conn := &tcpConn{c: raw, enc: gob.NewEncoder(cw), cw: cw}
	// Identify ourselves so the peer's frames carry the logical sender.
	if err := conn.enc.Encode(&wireMessage{Hello: e.addr}); err != nil {
		raw.Close()
		return nil, err
	}
	e.conns[peer] = conn
	return conn, nil
}

func (e *tcpEndpoint) Recv() <-chan Message { return e.ib.out }

func (e *tcpEndpoint) Close() error {
	select {
	case <-e.done:
		return nil
	default:
	}
	close(e.done)
	e.listener.Close()
	e.mu.Lock()
	for _, c := range e.conns {
		c.c.Close()
	}
	e.mu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	e.ib.close()
	return nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// BytesSent implements Network.
func (n *TCPNetwork) BytesSent() int64 { return n.bytes.Load() }

// Messages implements Network.
func (n *TCPNetwork) Messages() int64 { return n.msgs.Load() }

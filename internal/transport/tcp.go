package transport

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"imapreduce/internal/trace"
)

// ProtocolVersion is the wire protocol generation carried in every hello
// handshake. Bump it whenever the frame format changes incompatibly;
// mixed-version peers then fail fast with a VersionMismatchError instead
// of a confusing decode failure mid-stream.
//
// v2 added the frameDeflate frame type (optional per-frame compression).
const ProtocolVersion byte = 2

// AddrResolver maps a logical endpoint address (e.g. "job/map/0/3" or
// "ctl/master") to the "host:port" its listener is bound to in another
// process. Returning ok=false means the resolver does not know the peer;
// the dial then fails with an unknown-endpoint error. Resolvers are
// consulted only after the local endpoint table misses, so in-process
// peers never pay the indirection.
type AddrResolver func(logical string) (hostport string, ok bool)

// TCPOptions configures a TCPNetwork. The zero value reproduces the
// historical behavior: loopback listeners on ephemeral ports, no
// cross-process resolution.
type TCPOptions struct {
	// ListenHost is the interface new listeners bind to (default
	// "127.0.0.1"; use "0.0.0.0" to accept off-host peers).
	ListenHost string
	// Resolver resolves logical addresses that are not local to this
	// network — the bridge that lets endpoints live in different
	// processes. Nil restricts dialing to in-process endpoints.
	Resolver AddrResolver
	// DialTimeout bounds one dial plus its hello handshake (default 3s).
	DialTimeout time.Duration
	// DialBackoffBase is the first delay after a failed dial to a peer
	// (default 25ms). Subsequent failures double it up to DialBackoffMax;
	// sends inside the window fail fast with a DialBackoffError rather
	// than hammering the kernel with connection attempts.
	DialBackoffBase time.Duration
	// DialBackoffMax caps the per-peer dial backoff (default 2s).
	DialBackoffMax time.Duration
	// ReadBufferSize and WriteBufferSize size each connection's buffered
	// reader/writer (default 256 KiB). Bigger buffers let a burst of
	// shuffle chunks share one syscall; the write side also bounds how
	// much a single coalesced flush writes at once.
	ReadBufferSize  int
	WriteBufferSize int
	// CompressThreshold enables per-frame flate compression for data
	// frames whose body reaches this many bytes. 0 (the default)
	// disables compression — on fast links the CPU usually costs more
	// than the bytes save; enable it when the network is the bottleneck.
	// A compressed frame that fails to shrink is sent uncompressed, so
	// the threshold never makes traffic bigger.
	CompressThreshold int
}

// TCPNetwork is the real-socket backend. Every endpoint owns a listener;
// the first Send from A to B dials one connection that stays open for
// the lifetime of the network — the persistent sockets the paper builds
// between reduce tasks and their map tasks. Peers are dialed by string
// address: local endpoints resolve through the in-process table, remote
// ones through TCPOptions.Resolver, so the same engine code runs
// single-process or spread across imrmaster/imrworker processes.
//
// Frames are length-prefixed: a 4-byte big-endian body length, a frame
// type byte, then the body. Payloads implementing WireMarshaler travel
// as reflection-free binary (frameBin); everything else — control
// messages and unregistered job types — falls back to a stateless gob
// encoding per frame (frameGob), so gob registration via
// kv.RegisterWireType keeps working unchanged.
//
// Writes are coalesced: each connection buffers frames in a
// bufio.Writer and a per-connection flusher goroutine flushes when the
// sender goes idle, so a burst of shuffle chunks shares syscalls while
// a lone control message still leaves within microseconds.
type TCPNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*tcpEndpoint
	closed    bool
	opts      TCPOptions
	// helloVersion is what this network advertises and accepts; it is
	// ProtocolVersion except in tests that force a skew.
	helloVersion byte
	rngMu        sync.Mutex
	rng          *rand.Rand // dial-backoff jitter
	bytes        atomic.Int64
	msgs         atomic.Int64
	dials        atomic.Int64
	dialTries    atomic.Int64
	flushes      atomic.Int64
	compFrames   atomic.Int64
	compSaved    atomic.Int64
	tr           atomic.Pointer[trace.Recorder]
}

// CompressedFrames reports how many data frames went out flate-wrapped
// (CompressThreshold reached and compression shrank the frame).
func (n *TCPNetwork) CompressedFrames() int64 { return n.compFrames.Load() }

// CompressionSaved reports the cumulative bytes compression removed from
// the stream (original frame size minus compressed frame size).
func (n *TCPNetwork) CompressionSaved() int64 { return n.compSaved.Load() }

// SetTrace attaches a recorder; connection flushes emit KindNetFlush
// events into it.
func (n *TCPNetwork) SetTrace(r *trace.Recorder) { n.tr.Store(r) }

// Flushes reports how many buffer flushes have happened (one per frame
// sent: frames flush inline to keep delivery latency off the iteration
// critical path).
func (n *TCPNetwork) Flushes() int64 { return n.flushes.Load() }

// NewTCPNetwork returns an empty TCP network on the loopback interface.
func NewTCPNetwork() *TCPNetwork { return NewTCPNetworkOpts(TCPOptions{}) }

// NewTCPNetworkOpts returns an empty TCP network configured by opts.
func NewTCPNetworkOpts(opts TCPOptions) *TCPNetwork {
	if opts.ListenHost == "" {
		opts.ListenHost = "127.0.0.1"
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 3 * time.Second
	}
	if opts.DialBackoffBase <= 0 {
		opts.DialBackoffBase = 25 * time.Millisecond
	}
	if opts.DialBackoffMax <= 0 {
		opts.DialBackoffMax = 2 * time.Second
	}
	if opts.ReadBufferSize <= 0 {
		opts.ReadBufferSize = 256 << 10
	}
	if opts.WriteBufferSize <= 0 {
		opts.WriteBufferSize = 256 << 10
	}
	return &TCPNetwork{
		endpoints:    make(map[string]*tcpEndpoint),
		opts:         opts,
		helloVersion: ProtocolVersion,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Dials returns how many connections have been established; tests use it
// to prove connections are persistent (one per sender/receiver pair).
func (n *TCPNetwork) Dials() int64 { return n.dials.Load() }

// DialAttempts returns how many TCP connection attempts have been made,
// successful or not — the quantity the dial-backoff gate bounds.
func (n *TCPNetwork) DialAttempts() int64 { return n.dialTries.Load() }

// Frame type bytes.
const (
	frameHello    byte = 1 // body: version byte, then sender's logical address
	frameGob      byte = 2 // body: stateless gob encoding of wireMessage
	frameBin      byte = 3 // body: binary header + WireMarshaler payload
	frameHelloAck byte = 4 // body: acceptor's version byte, then status byte
	// frameDeflate wraps a frameGob or frameBin frame: the body is a
	// uvarint decompressed length followed by a flate stream of the
	// original [type byte][body]. Sent only when CompressThreshold is
	// set and compressing actually shrank the frame.
	frameDeflate byte = 5
)

// Hello-ack status bytes.
const (
	helloAccept byte = 0
	helloReject byte = 1
)

// maxFrameSize bounds a single frame; larger length prefixes are treated
// as stream corruption.
const maxFrameSize = 1 << 30

// VersionMismatchError reports a hello handshake that failed because the
// two processes speak different protocol generations.
type VersionMismatchError struct {
	Peer   string // logical address dialed
	Local  byte   // our ProtocolVersion
	Remote byte   // what the peer advertised in its hello ack
}

func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("transport: protocol version mismatch dialing %q: local v%d, peer v%d — rebuild both sides from the same source tree",
		e.Peer, e.Local, e.Remote)
}

// DialBackoffError is returned by Send while a peer's dial-backoff gate
// is armed: a recent dial failed and the next attempt is deferred so a
// hot retry loop cannot turn into a dial storm. It wraps the dial error
// that armed the gate.
type DialBackoffError struct {
	Peer  string
	Until time.Time // when the next dial attempt is allowed
	Err   error     // the dial failure that armed the gate
}

func (e *DialBackoffError) Error() string {
	return fmt.Sprintf("transport: dial %q backing off until %s: %v", e.Peer, e.Until.Format("15:04:05.000"), e.Err)
}

func (e *DialBackoffError) Unwrap() error { return e.Err }

// WireMarshaler is implemented by payload types that can encode
// themselves into the binary fast-path frame. AppendWire appends the
// encoding to buf; ok=false (a nested value has no registered codec)
// makes the transport silently fall back to the gob frame for this
// message.
type WireMarshaler interface {
	WireTag() string
	AppendWire(buf []byte) ([]byte, bool)
}

var wireUnmarshalers sync.Map // tag string -> func([]byte) (any, error)

// RegisterWireUnmarshaler installs the decoder for a WireMarshaler tag.
// Like gob.Register it is meant for init functions; duplicate tags
// panic. Registration is process-global, which matches the in-process
// cluster model: every endpoint sees the same registry.
//
// Ownership: data is a window of the connection's reusable frame buffer
// and is overwritten by the next frame. The decoder must copy anything
// it keeps (string(...), arena interning, explicit copies) and must not
// retain data or subslices of it past the call.
func RegisterWireUnmarshaler(tag string, fn func(data []byte) (any, error)) {
	if tag == "" || fn == nil {
		panic("transport: RegisterWireUnmarshaler with empty tag or nil func")
	}
	if _, dup := wireUnmarshalers.LoadOrStore(tag, fn); dup {
		panic(fmt.Sprintf("transport: wire unmarshaler %q registered twice", tag))
	}
}

type tcpEndpoint struct {
	net      *TCPNetwork
	addr     string
	listener net.Listener
	ib       *inbox

	mu      sync.Mutex
	conns   map[string]*tcpConn      // persistent outbound connections by peer
	gates   map[string]*dialGate     // per-peer dial backoff state
	dialing map[string]chan struct{} // single-flight claims; closed when a dial settles
	done    chan struct{}

	// accepted has its own lock so an accept path never waits on e.mu —
	// two endpoints dialing each other must each be able to answer the
	// other's hello while their own dial is in flight.
	acceptMu sync.Mutex
	accepted map[net.Conn]bool // live inbound connections
}

// dialGate tracks exponential dial backoff toward one peer. It is
// guarded by the owning endpoint's mu.
type dialGate struct {
	until   time.Time
	backoff time.Duration
	lastErr error
}

type tcpConn struct {
	mu       sync.Mutex
	c        net.Conn
	bw       *bufio.Writer
	dead     bool
	buf      []byte       // frame scratch, reused under mu
	gobBuf   bytes.Buffer // gob fallback scratch, reused under mu
	fw       *flate.Writer // per-conn compressor, created on first use, reused via Reset
	cw       appendWriter  // compressed-frame scratch, reused under mu
	net      *TCPNetwork
	owner    string // local endpoint address, for flush attribution
	peer     string
}

// appendWriter adapts an append-grown byte slice to io.Writer for the
// flate compressor.
type appendWriter struct{ buf []byte }

func (aw *appendWriter) Write(p []byte) (int, error) {
	aw.buf = append(aw.buf, p...)
	return len(p), nil
}

// maybeCompress flate-wraps a data frame when the network's threshold
// says so and the result is actually smaller; otherwise the frame is
// returned untouched. Called under conn.mu; the returned slice is valid
// until the next buildFrame/maybeCompress on this connection.
func (conn *tcpConn) maybeCompress(frame []byte) []byte {
	th := conn.net.opts.CompressThreshold
	if th <= 0 || len(frame)-4 < th {
		return frame
	}
	if t := frame[4]; t != frameBin && t != frameGob {
		return frame
	}
	conn.cw.buf = append(conn.cw.buf[:0], 0, 0, 0, 0, frameDeflate)
	conn.cw.buf = binary.AppendUvarint(conn.cw.buf, uint64(len(frame)-4))
	if conn.fw == nil {
		// BestSpeed: the point is shedding bytes cheaper than sending
		// them, not archival ratios.
		conn.fw, _ = flate.NewWriter(&conn.cw, flate.BestSpeed)
	} else {
		conn.fw.Reset(&conn.cw)
	}
	if _, err := conn.fw.Write(frame[4:]); err != nil {
		return frame
	}
	if err := conn.fw.Close(); err != nil {
		return frame
	}
	out := conn.cw.buf
	if len(out) >= len(frame) {
		return frame // incompressible: ship the original
	}
	binary.BigEndian.PutUint32(out, uint32(len(out)-4))
	conn.net.compFrames.Add(1)
	conn.net.compSaved.Add(int64(len(frame) - len(out)))
	return out
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// wireMessage is the gob fallback frame body.
type wireMessage struct {
	From    string
	Kind    string
	Payload any
	Size    int64
}

// Endpoint implements Network. The listener binds to ListenHost on an
// ephemeral port; use EndpointAt for a fixed, advertisable address.
func (n *TCPNetwork) Endpoint(addr string) (Endpoint, error) {
	return n.endpoint(addr, net.JoinHostPort(n.opts.ListenHost, "0"), true)
}

// EndpointAt registers endpoint addr with its listener bound to the
// explicit TCP address listen (e.g. "127.0.0.1:7070" or ":7070") — the
// well-known bootstrap address a master advertises to workers. Unlike
// Endpoint it refuses to adopt an existing endpoint: a fixed address is
// a claim of exclusive ownership.
func (n *TCPNetwork) EndpointAt(addr, listen string) (Endpoint, error) {
	return n.endpoint(addr, listen, false)
}

func (n *TCPNetwork) endpoint(addr, listen string, reuse bool) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if ep, ok := n.endpoints[addr]; ok {
		if reuse {
			return ep, nil
		}
		return nil, fmt.Errorf("transport: endpoint %q already exists", addr)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen for %q on %s: %w", addr, listen, err)
	}
	ep := &tcpEndpoint{
		net:      n,
		addr:     addr,
		listener: l,
		ib:       newInbox(),
		conns:    make(map[string]*tcpConn),
		gates:    make(map[string]*dialGate),
		dialing:  make(map[string]chan struct{}),
		accepted: make(map[net.Conn]bool),
		done:     make(chan struct{}),
	}
	n.endpoints[addr] = ep
	go ep.accept()
	return ep, nil
}

// ListenAddr reports the host:port endpoint addr's listener is bound to
// — the address to publish in a cluster directory so other processes
// can dial it.
func (n *TCPNetwork) ListenAddr(addr string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.endpoints[addr]
	if !ok {
		return "", false
	}
	return ep.listener.Addr().String(), true
}

// Invalidate drops every cached outbound connection to logical address
// peer and clears its dial-backoff gates, forcing the next Send to
// re-resolve and re-dial. Call it after a directory change remaps peer
// to a different process (task respawn after a worker death).
func (n *TCPNetwork) Invalidate(peer string) {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, e := range eps {
		e.mu.Lock()
		if c, ok := e.conns[peer]; ok {
			delete(e.conns, peer)
			c.mu.Lock()
			if !c.dead {
				c.dead = true
				c.bw.Flush()
			}
			c.mu.Unlock()
			c.c.Close()
		}
		delete(e.gates, peer)
		e.mu.Unlock()
	}
}

func (e *tcpEndpoint) accept() {
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		// Inbound connections must die with the endpoint: a peer whose
		// frames keep landing on a closed endpoint's socket would see its
		// sends succeed into a black hole and never re-dial — exactly the
		// signal a restarted master depends on workers getting.
		e.acceptMu.Lock()
		select {
		case <-e.done: // raced with Close after the listener check
			e.acceptMu.Unlock()
			c.Close()
			continue
		default:
		}
		e.accepted[c] = true
		e.acceptMu.Unlock()
		go func() {
			e.readLoop(c)
			e.acceptMu.Lock()
			delete(e.accepted, c)
			e.acceptMu.Unlock()
		}()
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, e.net.opts.ReadBufferSize)
	var hdr [4]byte
	// Frame bodies land in a grow-only buffer reused across frames —
	// each frame's payload is fully consumed (decoded with copies; see
	// RegisterWireUnmarshaler) before the next read overwrites it. A
	// second buffer holds inflated bodies, and the inflater itself is
	// reused via flate.Resetter.
	var body, infBuf []byte
	var inflater io.ReadCloser
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameSize {
			return
		}
		if uint32(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		if body[0] == frameDeflate {
			dn, m := binary.Uvarint(body[1:])
			if m <= 0 || dn == 0 || dn > maxFrameSize {
				return
			}
			if uint64(cap(infBuf)) < dn {
				infBuf = make([]byte, dn)
			}
			infBuf = infBuf[:dn]
			src := bytes.NewReader(body[1+m:])
			if inflater == nil {
				inflater = flate.NewReader(src)
			} else if err := inflater.(flate.Resetter).Reset(src, nil); err != nil {
				return
			}
			if _, err := io.ReadFull(inflater, infBuf); err != nil {
				return
			}
			body, infBuf = infBuf, body // decode the inflated frame; reuse both
		}
		switch body[0] {
		case frameHello:
			// Connection identification and version negotiation; data
			// frames carry From themselves. The ack is written straight to
			// the socket — the dialer blocks on it before sending data, so
			// there is nothing to interleave with.
			if len(body) < 2 {
				return
			}
			status := helloAccept
			if body[1] != e.net.helloVersion {
				status = helloReject
			}
			ack := []byte{0, 0, 0, 3, frameHelloAck, e.net.helloVersion, status}
			c.SetWriteDeadline(time.Now().Add(e.net.opts.DialTimeout))
			_, err := c.Write(ack)
			c.SetWriteDeadline(time.Time{})
			if err != nil || status == helloReject {
				return
			}
		case frameGob:
			var wm wireMessage
			if err := gob.NewDecoder(bytes.NewReader(body[1:])).Decode(&wm); err != nil {
				return
			}
			e.ib.push(Message{From: wm.From, To: e.addr, Kind: wm.Kind, Payload: wm.Payload, Size: wm.Size})
		case frameBin:
			msg, err := decodeBinFrame(body[1:], e.addr)
			if err != nil {
				return
			}
			e.ib.push(msg)
		default:
			return // unknown frame type: stream corruption
		}
	}
}

func appendLPString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readLPString(data []byte) (string, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return "", 0, fmt.Errorf("transport: truncated string in frame")
	}
	return string(data[n : n+int(l)]), n + int(l), nil
}

func decodeBinFrame(body []byte, to string) (Message, error) {
	from, n, err := readLPString(body)
	if err != nil {
		return Message{}, err
	}
	kind, m, err := readLPString(body[n:])
	if err != nil {
		return Message{}, err
	}
	n += m
	size, m := binary.Varint(body[n:])
	if m <= 0 {
		return Message{}, fmt.Errorf("transport: truncated size in frame")
	}
	n += m
	tag, m, err := readLPString(body[n:])
	if err != nil {
		return Message{}, err
	}
	n += m
	fn, ok := wireUnmarshalers.Load(tag)
	if !ok {
		return Message{}, fmt.Errorf("transport: no wire unmarshaler for tag %q", tag)
	}
	payload, err := fn.(func([]byte) (any, error))(body[n:])
	if err != nil {
		return Message{}, fmt.Errorf("transport: decode %q payload: %w", tag, err)
	}
	return Message{From: from, To: to, Kind: kind, Payload: payload, Size: size}, nil
}

func (e *tcpEndpoint) Addr() string { return e.addr }

func (e *tcpEndpoint) Send(to string, msg Message) error {
	err := e.sendOnce(to, msg)
	if err == nil {
		return nil
	}
	// The persistent connection may have died since the last send (peer
	// restart, half-open socket, flush failure marking it dead). The
	// frame was lost with it, so re-dial through connTo once and
	// retransmit instead of surfacing a loss the caller cannot see.
	// Retransmission over a fresh stream is at-least-once: if the first
	// write reached the peer before the connection died, the receiver
	// sees a duplicate.
	if err2 := e.sendOnce(to, msg); err2 != nil {
		return err2
	}
	return nil
}

func (e *tcpEndpoint) sendOnce(to string, msg Message) error {
	conn, err := e.connTo(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.dead {
		return fmt.Errorf("transport: connection %s->%s is down", e.addr, to)
	}
	frame, err := conn.buildFrame(e.addr, msg)
	if err != nil {
		// Encoding failure (e.g. a type gob does not know) is the
		// caller's problem, not the connection's.
		return fmt.Errorf("transport: encode %s->%s: %w", e.addr, to, err)
	}
	frame = conn.maybeCompress(frame)
	if _, err := conn.bw.Write(frame); err != nil {
		conn.dead = true
		conn.c.Close()
		return fmt.Errorf("transport: send %s->%s: %w", e.addr, to, err)
	}
	// Flush inline. A loopback write syscall is cheaper than waking a
	// flusher goroutine, and per-message delivery latency sits on the
	// iteration critical path (sync barriers, reduce→map state return);
	// an extra scheduling hop per frame is exactly what the engine
	// benchmarks show as "syncwait".
	if err := conn.bw.Flush(); err != nil {
		conn.dead = true
		conn.c.Close()
		return fmt.Errorf("transport: flush %s->%s: %w", e.addr, to, err)
	}
	e.net.flushes.Add(1)
	if tr := e.net.tr.Load(); tr != nil {
		tr.Emit(trace.KindNetFlush, conn.owner, -1, 0,
			trace.Attr{Key: "peer", Value: conn.peer})
	}
	e.net.msgs.Add(1)
	return nil
}

// buildFrame encodes msg into conn's reusable scratch buffer, returning
// the complete frame (length prefix included). Payloads implementing
// WireMarshaler get the binary frame; everything else, and marshalers
// that report ok=false, get the stateless gob frame.
func (conn *tcpConn) buildFrame(from string, msg Message) ([]byte, error) {
	buf := append(conn.buf[:0], 0, 0, 0, 0)
	if wm, ok := msg.Payload.(WireMarshaler); ok {
		buf = append(buf, frameBin)
		buf = appendLPString(buf, from)
		buf = appendLPString(buf, msg.Kind)
		buf = binary.AppendVarint(buf, msg.Size)
		buf = appendLPString(buf, wm.WireTag())
		if out, ok := wm.AppendWire(buf); ok {
			binary.BigEndian.PutUint32(out, uint32(len(out)-4))
			conn.buf = out
			return out, nil
		}
		buf = append(conn.buf[:0], 0, 0, 0, 0)
	}
	buf = append(buf, frameGob)
	conn.gobBuf.Reset()
	wm := wireMessage{From: from, Kind: msg.Kind, Payload: msg.Payload, Size: msg.Size}
	if err := gob.NewEncoder(&conn.gobBuf).Encode(&wm); err != nil {
		conn.buf = buf
		return nil, err
	}
	buf = append(buf, conn.gobBuf.Bytes()...)
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	conn.buf = buf
	return buf, nil
}

// resolve maps a logical peer address to its TCP listen address: the
// in-process endpoint table first, then the configured resolver.
func (n *TCPNetwork) resolve(peer string) (string, error) {
	n.mu.Lock()
	dst, ok := n.endpoints[peer]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return "", fmt.Errorf("transport: network closed")
	}
	if ok {
		return dst.listener.Addr().String(), nil
	}
	if n.opts.Resolver != nil {
		if hp, found := n.opts.Resolver(peer); found {
			return hp, nil
		}
	}
	return "", fmt.Errorf("transport: unknown endpoint %q", peer)
}

// connTo returns the persistent connection to peer, dialing it on first
// use. Dials are single-flight per peer and run with e.mu RELEASED: a
// run's first iteration dials every peer pair, and holding the endpoint
// lock across each dial+handshake round trip would serialize all of
// them — and block sends to peers that are already connected — behind
// whichever dial happens to be in flight. Failed dials arm a per-peer
// exponential backoff gate (with jitter); sends inside the window fail
// fast with DialBackoffError.
func (e *tcpEndpoint) connTo(peer string) (*tcpConn, error) {
	var claim chan struct{}
	for {
		e.mu.Lock()
		if c, ok := e.conns[peer]; ok {
			c.mu.Lock()
			dead := c.dead // the flusher marks connections dead asynchronously
			c.mu.Unlock()
			if !dead {
				e.mu.Unlock()
				return c, nil
			}
		}
		if g, ok := e.gates[peer]; ok && time.Now().Before(g.until) {
			e.mu.Unlock()
			return nil, &DialBackoffError{Peer: peer, Until: g.until, Err: g.lastErr}
		}
		inflight, busy := e.dialing[peer]
		if !busy {
			claim = make(chan struct{})
			e.dialing[peer] = claim
			e.mu.Unlock()
			break
		}
		// Another goroutine is mid-dial to this peer: wait for it to
		// settle, then re-check (it installed a conn or armed the gate).
		e.mu.Unlock()
		select {
		case <-inflight:
		case <-e.done:
			return nil, fmt.Errorf("transport: endpoint %s closed", e.addr)
		}
	}

	target, err := e.net.resolve(peer)
	var conn *tcpConn
	if err == nil {
		conn, err = e.dial(peer, target)
	}

	e.mu.Lock()
	delete(e.dialing, peer)
	close(claim)
	if err != nil {
		if conn == nil && target != "" {
			// Gate only actual dial failures; an unresolvable peer (not
			// registered yet) should not penalize the first real send.
			e.armGate(peer, err)
		}
		e.mu.Unlock()
		return nil, err
	}
	select {
	case <-e.done:
		// The endpoint closed while this dial was in flight; installing
		// the conn now would leak a live socket past Close's sweep.
		e.mu.Unlock()
		conn.c.Close()
		return nil, fmt.Errorf("transport: endpoint %s closed", e.addr)
	default:
	}
	delete(e.gates, peer)
	e.conns[peer] = conn // a dead predecessor's socket is already closed
	e.mu.Unlock()
	return conn, nil
}

// Preconnect dials the given peers concurrently in the background,
// warming the persistent connections before first use: a task that is
// about to shuffle to every partition would otherwise pay one
// sequential dial+handshake round trip per peer inside its send loop.
// Failures are ignored — an unresolvable peer arms no gate, and the
// next Send re-dials exactly as without warming.
func (e *tcpEndpoint) Preconnect(peers ...string) {
	for _, p := range peers {
		go func(peer string) {
			_, _ = e.connTo(peer)
		}(p)
	}
}

// armGate records a dial failure against peer, doubling the backoff up
// to the cap. Jitter desynchronizes retry schedules across processes so
// a master restart is not greeted by a thundering herd of re-dials.
func (e *tcpEndpoint) armGate(peer string, err error) {
	g := e.gates[peer]
	if g == nil {
		g = &dialGate{}
		e.gates[peer] = g
	}
	if g.backoff == 0 {
		g.backoff = e.net.opts.DialBackoffBase
	} else if g.backoff < e.net.opts.DialBackoffMax {
		g.backoff *= 2
		if g.backoff > e.net.opts.DialBackoffMax {
			g.backoff = e.net.opts.DialBackoffMax
		}
	}
	// Equal jitter: half the backoff is deterministic, half uniform.
	wait := g.backoff/2 + e.net.jitter(g.backoff/2)
	g.until = time.Now().Add(wait)
	g.lastErr = err
}

func (n *TCPNetwork) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return time.Duration(n.rng.Int63n(int64(max) + 1))
}

// dial opens and verifies one connection to peer at target. The hello
// carries our protocol version; the peer's ack either accepts or names
// its own version, which surfaces as a typed VersionMismatchError.
func (e *tcpEndpoint) dial(peer, target string) (*tcpConn, error) {
	e.net.dialTries.Add(1)
	raw, err := net.DialTimeout("tcp", target, e.net.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %s: %w", peer, target, err)
	}
	if err := e.handshake(raw, peer); err != nil {
		raw.Close()
		return nil, err
	}
	e.net.dials.Add(1)
	cw := &countingWriter{w: raw, n: &e.net.bytes}
	conn := &tcpConn{
		c:     raw,
		bw:    bufio.NewWriterSize(cw, e.net.opts.WriteBufferSize),
		net:   e.net,
		owner: e.addr,
		peer:  peer,
	}
	return conn, nil
}

// handshake sends the versioned hello and synchronously waits for the
// acceptor's ack, so a dead listener or a version skew is caught at
// dial time rather than surfacing as a decode failure mid-stream.
func (e *tcpEndpoint) handshake(raw net.Conn, peer string) error {
	raw.SetDeadline(time.Now().Add(e.net.opts.DialTimeout))
	defer raw.SetDeadline(time.Time{})
	hello := []byte{0, 0, 0, 0, frameHello, e.net.helloVersion}
	hello = append(hello, e.addr...)
	binary.BigEndian.PutUint32(hello, uint32(len(hello)-4))
	if _, err := raw.Write(hello); err != nil {
		return fmt.Errorf("transport: hello to %q: %w", peer, err)
	}
	e.net.bytes.Add(int64(len(hello)))
	var ack [7]byte
	if _, err := io.ReadFull(raw, ack[:]); err != nil {
		return fmt.Errorf("transport: hello ack from %q: %w", peer, err)
	}
	if binary.BigEndian.Uint32(ack[:4]) != 3 || ack[4] != frameHelloAck {
		return fmt.Errorf("transport: malformed hello ack from %q", peer)
	}
	if ack[6] != helloAccept || ack[5] != e.net.helloVersion {
		return &VersionMismatchError{Peer: peer, Local: e.net.helloVersion, Remote: ack[5]}
	}
	return nil
}

func (e *tcpEndpoint) Recv() <-chan Message { return e.ib.out }

func (e *tcpEndpoint) Close() error {
	select {
	case <-e.done:
		return nil
	default:
	}
	close(e.done)
	e.listener.Close()
	e.mu.Lock()
	for _, c := range e.conns {
		c.mu.Lock()
		if !c.dead {
			c.dead = true
			c.bw.Flush()
		}
		c.mu.Unlock()
		c.c.Close()
	}
	e.mu.Unlock()
	e.acceptMu.Lock()
	for c := range e.accepted {
		c.Close()
	}
	e.acceptMu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	e.ib.close()
	return nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// BytesSent implements Network.
func (n *TCPNetwork) BytesSent() int64 { return n.bytes.Load() }

// Messages implements Network.
func (n *TCPNetwork) Messages() int64 { return n.msgs.Load() }

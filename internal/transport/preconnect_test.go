package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPreconnectWarmsConnection checks that Preconnect dials ahead of
// first use: after the warm-up settles, a Send reuses the persistent
// connection instead of dialing inline.
func TestPreconnectWarmsConnection(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	Preconnect(a, "b")
	deadline := time.Now().Add(5 * time.Second)
	for n.Dials() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("preconnect never dialed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.Send("b", Message{Kind: "warm", Payload: "hi"}); err != nil {
		t.Fatal(err)
	}
	if got := (<-b.Recv()).Kind; got != "warm" {
		t.Fatalf("got kind %q", got)
	}
	if n.Dials() != 1 {
		t.Fatalf("send after preconnect dialed again: %d dials", n.Dials())
	}
}

// TestPreconnectUnknownPeerHarmless: warming a peer that is not
// registered yet must not arm a dial-backoff gate — the first real Send
// after the peer appears should succeed immediately.
func TestPreconnectUnknownPeerHarmless(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	Preconnect(a, "late")
	time.Sleep(10 * time.Millisecond) // let the doomed warm-up settle
	late, err := n.Endpoint("late")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("late", Message{Kind: "k", Payload: "v"}); err != nil {
		t.Fatalf("send after failed warm-up: %v", err)
	}
	if got := (<-late.Recv()).Kind; got != "k" {
		t.Fatalf("got kind %q", got)
	}
}

// TestDialSingleFlight floods one endpoint with concurrent first sends
// to the same peer: exactly one dial may happen, every send must
// succeed, and every message must arrive.
func TestDialSingleFlight(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	const senders = 16
	var wg sync.WaitGroup
	errs := make([]error, senders)
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.Send("b", Message{Kind: fmt.Sprint(i), Payload: "x"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
	for i := 0; i < senders; i++ {
		<-b.Recv()
	}
	if got := n.DialAttempts(); got != 1 {
		t.Fatalf("%d concurrent first sends made %d dial attempts, want 1", senders, got)
	}
}

// TestDialDoesNotBlockConnectedPeers: a dial in flight toward one peer
// must not serialize sends to peers that already have a connection
// (the old behavior held the endpoint lock across the handshake).
func TestDialDoesNotBlockConnectedPeers(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	if err := a.Send("b", Message{Kind: "prime", Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	<-b.Recv()
	// A dial to an unresolvable peer fails quickly but still exercises
	// the lock structure: run many of them racing sends to b.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = a.Send("nowhere", Message{Kind: "k", Payload: "x"})
		}
	}()
	for i := 0; i < 50; i++ {
		if err := a.Send("b", Message{Kind: "k", Payload: "x"}); err != nil {
			t.Fatal(err)
		}
		<-b.Recv()
	}
	<-done
}

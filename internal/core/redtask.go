package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
	"imapreduce/internal/transport"
)

// reduceTask is one persistent reduce task. It collects shuffle chunks
// from every map task of its phase, reactivates when all of them have
// finished the iteration (the maps→reduce barrier the paper keeps), runs
// the user reduce, and streams the new state over the persistent
// connection to its paired map task — plus broadcast/auxiliary copies
// when configured.
type reduceTask struct {
	e       *Engine
	run     *runState
	jobName string
	job     *Job
	phase   int
	idx     int
	isAux   bool
	// isTermination marks the main chain's final phase: it keeps the
	// previous iteration's state for the Distance test, reports
	// iteration completions to the master, writes checkpoints, and
	// produces the final output.
	isTermination bool

	worker string
	gen    int
	iter   int
	// genAtomic mirrors gen for the checkpoint writer goroutines: a
	// writer that finds the generation moved on while it wrote must not
	// commit its file or its ack under the new generation.
	genAtomic atomic.Int64
	// ckptWG joins the checkpoint writers at loop exit, so no checkpoint
	// goroutine outlives the run.
	ckptWG sync.WaitGroup

	ep      transport.Endpoint
	numMaps int

	// Routing of the new state: targetAddrs are the next phase's maps
	// (one for OneToOne, all for broadcast); targetIterDelta is 1 when
	// this reduce closes the iteration loop (last phase → first phase)
	// and 0 between consecutive phases of one iteration.
	targetAddrs     []string
	targetPhase     int
	targetIterDelta int
	// toMaster replaces targets for an auxiliary phase's reduce: output
	// goes to the master for the AuxDecide test.
	toMaster bool
	// auxAddrs receive an extra copy of the state (termination phase of
	// a job with an auxiliary phase).
	auxAddrs []string
	auxPhase int

	bufThresh int
	outBuf    []kv.Pair
	pend      map[int]*redAccum
	// lastIn is the previous iteration's total shuffle input, used to
	// presize the next accumulator — iterative jobs move nearly the same
	// record count every round.
	lastIn int
	prev   map[any]any
	// feedMain gates loop-back delivery: once the iteration bound is
	// reached the termination reduce stops feeding the next iteration,
	// so the final state is exactly iteration MaxIter.
	feedMain bool
	// gated marks a termination reduce whose job can stop at any
	// iteration boundary (distance threshold or auxiliary decision):
	// loop-back output is held until the master's proceed command so
	// the computation never runs past the decided stop.
	gated bool
	held  map[int][]kv.Pair
	// seq numbers outgoing state chunks for receiver-side duplicate
	// suppression.
	seq int64
	// ownDone records, per pending iteration, when this pair's own map
	// finished (its End chunk arrived). Tracing only: the interval from
	// there to the last map's End is the barrier wait — the §3.3 cost
	// the asynchronous engine tries to hide.
	ownDone map[int]time.Time
	// idleSince is when this reduce last went idle (finished delivering
	// an iteration). Tracing only: from the second iteration on, the
	// barrier span starts here, so inter-iteration idle is classified as
	// sync wait — mirroring the map side's SpanWait window.
	idleSince time.Time
}

// tid mirrors mapTask.tid: auxiliary pairs get their own trace lanes.
func (t *reduceTask) tid() int {
	if t.isAux {
		return t.run.mainTasks + t.idx
	}
	return t.idx
}

type redAccum struct {
	pairs []kv.Pair
	ends  int
	seen  map[chunkKey]bool
}

func (t *reduceTask) loop() {
	var beat <-chan time.Time
	if hb := t.e.opts.HeartbeatInterval; hb > 0 {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		beat = tick.C
	}
	// However the loop exits, in-flight checkpoint writers are joined
	// first: a checkpoint goroutine must never touch the DFS after the
	// run has returned.
	defer t.ckptWG.Wait()
	for {
		select {
		case msg, ok := <-t.ep.Recv():
			if !ok {
				return
			}
			t.e.stallPoint(t.worker)
			switch pl := msg.Payload.(type) {
			case shuffleChunk:
				t.handleShuffle(pl)
			case cmdMsg:
				switch pl.Kind {
				case cmdTerminate:
					t.writeFinal()
					return
				case cmdAbort:
					return
				case cmdReassign:
					t.worker = pl.Worker
				case cmdRollback:
					t.rollback(pl)
				case cmdProceed:
					if pairs, ok := t.held[pl.ToIter]; ok {
						delete(t.held, pl.ToIter)
						t.outBuf = pairs
						t.deliverMain(pl.ToIter)
					}
				}
			}
		case <-beat:
			t.e.stallPoint(t.worker)
			t.e.m.Add(metrics.HeartbeatsSent, 1)
			t.send(masterAddr(t.jobName), kindBeat, heartbeatMsg{Worker: t.worker, Phase: t.phase, Task: t.idx}, 0)
		}
	}
}

func (t *reduceTask) fatal(err error) {
	t.send(masterAddr(t.jobName), kindFail, taskErrMsg{Phase: t.phase, Task: t.idx, Err: err.Error()}, 0)
}

func (t *reduceTask) send(to, kind string, payload any, size int64) {
	_ = t.e.sendReliable(t.ep, to, transport.Message{Kind: kind, Payload: payload, Size: size})
}

// rollback resets to checkpoint iteration cmd.ToIter; the termination
// phase reloads its previous-state table from the checkpoint so the
// next distance measurement is taken against the right baseline.
func (t *reduceTask) rollback(cmd cmdMsg) {
	if cmd.Gen <= t.gen {
		return // duplicated or reordered rollback: already adopted
	}
	t.gen = cmd.Gen
	t.genAtomic.Store(int64(cmd.Gen))
	t.iter = cmd.ToIter + 1
	t.pend = make(map[int]*redAccum)
	t.outBuf = nil
	t.held = make(map[int][]kv.Pair)
	t.ownDone = nil
	if t.e.opts.Trace != nil {
		t.idleSince = time.Now()
	}
	defer t.send(masterAddr(t.jobName), kindCmd, rbAckMsg{Gen: t.gen, Phase: t.phase, Task: t.idx}, 0)
	if !t.isTermination {
		return
	}
	pairs, err := t.e.fs.ReadFile(t.run.ckptPath(cmd.ToIter, t.idx), t.worker)
	if err != nil {
		t.fatal(fmt.Errorf("reduce %d/%d: load checkpoint %d: %w", t.phase, t.idx, cmd.ToIter, err))
		return
	}
	t.prev = make(map[any]any, len(pairs))
	for _, p := range pairs {
		t.prev[p.Key] = p.Value
	}
}

func (t *reduceTask) handleShuffle(c shuffleChunk) {
	// The chunk's pairs are copied into the accumulator below; the decode
	// arena is recycled on return (boxed values stay valid — see
	// stateChunk.release).
	defer c.release()
	if c.Gen != t.gen || c.Iter < t.iter {
		return
	}
	a := t.pend[c.Iter]
	if a == nil {
		a = &redAccum{pairs: make([]kv.Pair, 0, t.lastIn), seen: make(map[chunkKey]bool)}
		t.pend[c.Iter] = a
	}
	k := chunkKey{from: c.FromMap, seq: c.Seq}
	if a.seen[k] {
		return // network-duplicated delivery
	}
	a.seen[k] = true
	a.pairs = append(a.pairs, c.Pairs...)
	if c.End {
		a.ends++
		if t.e.opts.Trace != nil && c.FromMap == t.idx {
			if t.ownDone == nil {
				t.ownDone = make(map[int]time.Time)
			}
			t.ownDone[c.Iter] = time.Now()
		}
	}
	for {
		a := t.pend[t.iter]
		if a == nil || a.ends < t.numMaps {
			return
		}
		if tr := t.e.opts.Trace; tr != nil {
			// The barrier window opens when this reduce went idle (or,
			// in the first iteration, when its own map finished) and
			// closes now that the slowest map's End has arrived. The
			// window may overlap the pair's own map spans — the
			// decomposition sweep resolves that by factor priority, so
			// only genuine idle time lands in sync wait.
			start := t.idleSince
			if own, ok := t.ownDone[t.iter]; ok && start.IsZero() {
				start = own
			}
			delete(t.ownDone, t.iter)
			if !start.IsZero() {
				tr.RecordSpan(trace.SpanBarrier, t.worker, t.tid(), t.iter,
					start, time.Since(start))
			}
		}
		t.lastIn = len(a.pairs)
		t.finishIteration(t.iter, a.pairs)
		delete(t.pend, t.iter)
		t.iter++
		if t.e.opts.Trace != nil {
			t.idleSince = time.Now()
		}
	}
}

// finishIteration groups, reduces, measures distance, streams the new
// state out, checkpoints, and reports.
func (t *reduceTask) finishIteration(iter int, pairs []kv.Pair) {
	start := time.Now()
	t.feedMain = !(t.isTermination && t.job.MaxIter > 0 && iter >= t.job.MaxIter)
	groups := kv.GroupPairs(pairs, t.job.Ops)
	t.e.opts.Trace.RecordSpan(trace.SpanSortGroup, t.worker, t.tid(), iter, start, time.Since(start))
	// Large group sets run the user reduce across the pool first (the
	// user function must be safe to call concurrently — see
	// Options.Parallelism); distance, prev-state, and output streaming
	// then apply serially in group order, so results and chunk boundaries
	// are identical to the all-serial path.
	var nvals []any
	if shards := t.run.pool.shardsFor(len(groups)); shards > 1 {
		nvals = make([]any, len(groups))
		errs := make([]error, shards)
		t.run.pool.runShards(shards, func(sh int) {
			lo, hi := shardRange(len(groups), shards, sh)
			for i := lo; i < hi; i++ {
				ns, err := t.job.Reduce(groups[i].Key, groups[i].Values)
				if err != nil {
					errs[sh] = fmt.Errorf("reduce %d/%d key %v: %w", t.phase, t.idx, groups[i].Key, err)
					return
				}
				nvals[i] = ns
			}
		})
		for _, err := range errs {
			if err != nil {
				t.fatal(err)
				return
			}
		}
	}
	out := make([]kv.Pair, 0, len(groups))
	var dist float64
	for gi, g := range groups {
		var ns any
		if nvals != nil {
			ns = nvals[gi]
		} else {
			var err error
			if ns, err = t.job.Reduce(g.Key, g.Values); err != nil {
				t.fatal(fmt.Errorf("reduce %d/%d key %v: %w", t.phase, t.idx, g.Key, err))
				return
			}
		}
		if t.isTermination {
			if t.job.Distance != nil {
				if pv, ok := t.prev[g.Key]; ok {
					dist += t.job.Distance(g.Key, pv, ns)
				}
			}
			t.prev[g.Key] = ns
		}
		out = append(out, kv.Pair{Key: g.Key, Value: ns})
		if !t.gated {
			if t.outBuf == nil {
				// flushStreaming hands the slice to the network, so each
				// flush needs a fresh buffer; allocate it at full size.
				t.outBuf = make([]kv.Pair, 0, t.bufThresh)
			}
			t.outBuf = append(t.outBuf, kv.Pair{Key: g.Key, Value: ns})
			if len(t.outBuf) >= t.bufThresh {
				t.flushStreaming(iter, false)
			}
		}
	}
	compute := time.Since(start)
	t.e.stretch(t.worker, compute)
	elapsed := t.e.spec.StretchFor(t.worker, compute)
	t.e.opts.Trace.RecordSpan(trace.SpanReduce, t.worker, t.tid(), iter, start, time.Since(start))

	if t.gated {
		// Auxiliary copies flow immediately (the aux phase must see the
		// data to decide); the loop-back is held for the master's
		// termination verdict.
		if len(t.auxAddrs) > 0 {
			t.deliverChunk(t.auxAddrs, t.auxPhase, iter, iter, out, true)
		}
		if t.feedMain && !t.toMaster {
			t.held[iter] = out
		}
	} else {
		t.flushStreaming(iter, true)
	}

	if t.toMaster {
		t.send(masterAddr(t.jobName), kindAuxOut,
			auxOutMsg{Gen: t.gen, Iter: iter, Task: t.idx, Pairs: out}, 0)
		return
	}
	if !t.isTermination {
		return
	}
	if t.job.CheckpointEvery > 0 && iter%t.job.CheckpointEvery == 0 {
		t.checkpoint(iter, out)
	}
	t.send(masterAddr(t.jobName), kindReport, reportMsg{
		Gen: t.gen, Iter: iter, Task: t.idx, Dist: dist,
		ElapsedNanos: int64(elapsed), Worker: t.worker,
	}, 0)
}

// deliverMain releases held output for iter to the main targets.
func (t *reduceTask) deliverMain(iter int) {
	pairs := t.outBuf
	t.outBuf = nil
	t.deliverChunk(t.targetAddrs, t.targetPhase, iter, iter+t.targetIterDelta, pairs, true)
}

// flushStreaming sends buffered new-state records to the next phase's
// map(s) — and an auxiliary copy — in BufferThreshold-sized chunks
// (§3.3's buffered eager triggering).
func (t *reduceTask) flushStreaming(iter int, end bool) {
	pairs := t.outBuf
	t.outBuf = nil
	if len(pairs) == 0 && !end {
		return
	}
	if !t.toMaster && t.feedMain {
		t.deliverChunk(t.targetAddrs, t.targetPhase, iter, iter+t.targetIterDelta, pairs, end)
	}
	if len(t.auxAddrs) > 0 {
		t.deliverChunk(t.auxAddrs, t.auxPhase, iter, iter, pairs, end)
	}
}

// deliverChunk sends one state chunk to each address, accounting local
// vs cross-worker traffic. srcIter is the iteration that produced the
// chunk (its trace attribution); tagIter is the iteration the receiver
// files it under (srcIter+1 across the loop-back).
func (t *reduceTask) deliverChunk(addrs []string, phase, srcIter, tagIter int, pairs []kv.Pair, end bool) {
	var sstart time.Time
	if tr := t.e.opts.Trace; tr != nil {
		sstart = time.Now()
		defer func() {
			tr.RecordSpan(trace.SpanStateSend, t.worker, t.tid(), srcIter, sstart, time.Since(sstart))
		}()
	}
	var size int64
	for _, p := range pairs {
		size += int64(t.job.Ops.PairSize(p))
	}
	t.seq++
	for i, addr := range addrs {
		tgt := i
		if len(addrs) == 1 {
			tgt = t.idx // one-to-one: the paired map has our index
		}
		t.e.m.Add(metrics.StateBytes, size)
		if t.run.workerOfPhasePair(phase, tgt) != t.worker {
			t.e.m.Add(metrics.StateRemote, size)
		}
		t.send(addr, kindState, stateChunk{
			Gen: t.gen, Iter: tagIter, From: t.idx, Seq: t.seq, Pairs: pairs, End: end,
		}, size)
	}
}

// checkpoint dumps this partition's state to DFS in parallel with the
// iterative computation (§3.4.1) and tells the master when it is
// durable. The write goes temp-then-rename so readers only ever see a
// complete file; a failed write is retried with backoff and node
// re-placement, and an abandoned checkpoint degrades the rollback
// target instead of killing the run.
func (t *reduceTask) checkpoint(iter int, out []kv.Pair) {
	snapshot := make([]kv.Pair, len(out))
	copy(snapshot, out)
	path := t.run.ckptPath(iter, t.idx)
	gen := t.gen
	worker := t.worker // capture: the loop may reassign while we write
	tid := t.tid()
	t.ckptWG.Add(1)
	go func() {
		defer t.ckptWG.Done()
		// The temp name carries the generation so writers racing across a
		// rollback never collide on the same uncommitted file.
		tmp := fmt.Sprintf("%s.tmp-g%d", path, gen)
		at := worker
		backoff := t.e.opts.CheckpointRetryBackoff
		var err error
		for attempt := 0; attempt <= t.e.opts.CheckpointRetries; attempt++ {
			if attempt > 0 {
				time.Sleep(backoff)
				backoff *= 2
				// Re-place: drop the node pin so the namenode picks any
				// live datanode — the pinned worker may be the failure.
				at = ""
				t.e.m.Add(metrics.CheckpointRetries, 1)
			}
			if err = t.e.fs.WriteFile(tmp, at, snapshot, t.job.Ops); err == nil {
				break
			}
		}
		if err != nil {
			// Abandoned: the run continues, rollbacks keep targeting the
			// last durable manifest.
			t.e.m.Add(metrics.CheckpointsLost, 1)
			return
		}
		if t.genAtomic.Load() != int64(gen) {
			// A rollback or migration landed while we wrote: the new
			// generation owns this iteration now. Committing the file or
			// the ack under the old generation could hand the master a
			// checkpoint the new generation is still recomputing.
			t.e.fs.Delete(tmp)
			t.e.m.Add(metrics.CheckpointsStale, 1)
			return
		}
		if err := t.e.fs.Rename(tmp, path); err != nil {
			t.e.m.Add(metrics.CheckpointsLost, 1)
			return
		}
		t.e.m.Add(metrics.Checkpoints, 1)
		t.e.opts.Trace.Emit(trace.KindCheckpoint, worker, tid, iter)
		t.send(masterAddr(t.jobName), kindCkpt, ckptMsg{Gen: gen, Iter: iter, Task: t.idx}, 0)
	}()
}

// writeFinal writes this partition of the converged state to the output
// path (the single DFS write of the whole run, §3.1) and acknowledges
// the master.
func (t *reduceTask) writeFinal() {
	if !t.isTermination {
		return
	}
	var fstart time.Time
	if tr := t.e.opts.Trace; tr != nil {
		fstart = time.Now()
		defer func() {
			tr.RecordSpan(trace.SpanFinal, t.worker, t.tid(), t.iter, fstart, time.Since(fstart))
			tr.Emit(trace.KindTaskFinish, t.worker, t.tid(), t.iter)
		}()
	}
	out := make([]kv.Pair, 0, len(t.prev))
	for k, v := range t.prev {
		out = append(out, kv.Pair{Key: k, Value: v})
	}
	t.job.Ops.SortPairs(out)
	path := fmt.Sprintf("%s/part-%d", t.run.outputPath, t.idx)
	if err := t.e.fs.WriteFile(path, t.worker, out, t.job.Ops); err != nil {
		t.send(masterAddr(t.jobName), kindFinal, finalMsg{Task: t.idx, Err: err.Error()}, 0)
		return
	}
	t.send(masterAddr(t.jobName), kindFinal, finalMsg{Task: t.idx, Records: len(out)}, 0)
}

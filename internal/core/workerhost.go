package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"imapreduce/internal/dfs"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// JobBuilder rebuilds a job definition from its registry key and
// parameters — the worker-side half of Job.Registry/Job.Params, since
// map/reduce functions cannot cross the wire.
type JobBuilder func(key string, params map[string]string) (*Job, error)

// WorkerHostOptions configures one worker process.
type WorkerHostOptions struct {
	// ID names this worker; it doubles as its DFS datanode name and must
	// be stable across restarts so a rejoin is recognizable. Required.
	ID string
	// MasterAddr is the host:port of the master's control endpoint.
	// Required.
	MasterAddr string
	// ListenHost is the interface task endpoints bind (default
	// 127.0.0.1).
	ListenHost string
	// Build rebuilds jobs from plan messages. Required.
	Build JobBuilder
	// Metrics may be nil.
	Metrics *metrics.Set

	// PingInterval paces the liveness probes to the master (default
	// 500ms); PingMisses consecutive silent intervals declare the master
	// dead (default 6), tearing the run down and re-entering the join
	// loop.
	PingInterval time.Duration
	PingMisses   int
	// JoinBackoff/JoinBackoffMax bound the jittered exponential backoff
	// between registration attempts (defaults 100ms / 3s).
	JoinBackoff    time.Duration
	JoinBackoffMax time.Duration
}

// WorkerHost is one worker process: it registers with the master,
// hosts the task pairs plans assign to it, pings for master liveness,
// and deregisters gracefully on shutdown. All run mutation happens on
// the Run goroutine; the task goroutines touch only their own engine
// context.
type WorkerHost struct {
	opts WorkerHostOptions
	dir  *transport.Directory
	net  *transport.TCPNetwork
	ctl  transport.Endpoint
	fsEp transport.Endpoint
	fs   *dfs.Client

	mu  sync.Mutex
	run *hostedRun
}

// hostedRun is one deployed job on this worker.
type hostedRun struct {
	jobName string
	epoch   int
	engine  *Engine
	factory *taskFactory
	run     *runState
	phases  int
	eps     []transport.Endpoint
	tasks   map[string]bool
	wg      sync.WaitGroup
}

// NewWorkerHost builds the host and binds its control endpoint; Run
// starts the protocol.
func NewWorkerHost(opts WorkerHostOptions) (*WorkerHost, error) {
	if opts.ID == "" || opts.MasterAddr == "" || opts.Build == nil {
		return nil, fmt.Errorf("core: WorkerHostOptions needs ID, MasterAddr and Build")
	}
	if opts.PingInterval <= 0 {
		opts.PingInterval = 500 * time.Millisecond
	}
	if opts.PingMisses <= 0 {
		opts.PingMisses = 6
	}
	if opts.JoinBackoff <= 0 {
		opts.JoinBackoff = 100 * time.Millisecond
	}
	if opts.JoinBackoffMax <= 0 {
		opts.JoinBackoffMax = 3 * time.Second
	}
	dir := transport.NewDirectory()
	dir.Set(CtlMasterAddr, opts.MasterAddr)
	net := transport.NewTCPNetworkOpts(transport.TCPOptions{
		ListenHost: opts.ListenHost,
		Resolver:   dir.Resolve,
	})
	ctl, err := net.Endpoint(ctlAddr(opts.ID))
	if err != nil {
		net.Close()
		return nil, err
	}
	// The DFS client endpoint lives as long as the host (not one run):
	// its listen address travels in the join frame, so the master can
	// route RPC responses back before the first plan is even applied —
	// the worker's very first static load depends on that.
	fsEp, err := net.Endpoint(dfsClientAddr(opts.ID))
	if err != nil {
		net.Close()
		return nil, err
	}
	fs := dfs.NewClient(fsEp, DFSAddr, dfs.ClientOptions{})
	return &WorkerHost{opts: opts, dir: dir, net: net, ctl: ctl, fsEp: fsEp, fs: fs}, nil
}

// Terminate kills the host abruptly — no leave, no drain — as close to
// kill -9 as one process can emulate another's death. Run returns
// shortly after.
func (w *WorkerHost) Terminate() { w.net.Close() }

// Run drives the worker protocol until ctx is canceled (graceful
// shutdown: deregister, drain, exit) or the host is terminated. A lost
// master tears the current run down and re-enters the join loop with
// backoff, so an `imrmaster -resume` finds its surviving workers
// already knocking.
func (w *WorkerHost) Run(ctx context.Context) error {
	defer func() {
		w.teardownRun()
		w.net.Close()
	}()

	joined := false
	var joinedEpoch int64
	lastPong := time.Now()
	var lastTick time.Time
	nextJoin := time.Now()
	joinBackoff := w.opts.JoinBackoff
	// The join pacing rides the ping ticker: at PingInterval granularity
	// the worker either re-sends a registration (gated by the jittered
	// backoff) or probes the master it is registered with.
	tick := time.NewTicker(w.opts.PingInterval)
	defer tick.Stop()

	unregister := func() {
		w.teardownRun()
		joined = false
		joinBackoff = w.opts.JoinBackoff
		nextJoin = time.Now()
		lastPong = time.Now()
	}

	for {
		select {
		case <-ctx.Done():
			if joined {
				// Graceful deregistration: the master re-places our pairs
				// through the same path a detected crash takes, minus the
				// detection delay.
				_, _ = transport.ReliableSend(w.ctl, CtlMasterAddr,
					transport.Message{Kind: kindLeave, Payload: leaveMsg{Worker: w.opts.ID}},
					3, 10*time.Millisecond)
			}
			return nil

		case <-tick.C:
			if !joined {
				if !time.Now().After(nextJoin) {
					continue
				}
				join := joinMsg{Worker: w.opts.ID, Endpoints: map[string]string{}}
				for _, addr := range []string{ctlAddr(w.opts.ID), dfsClientAddr(w.opts.ID)} {
					if hp, ok := w.net.ListenAddr(addr); ok {
						join.Endpoints[addr] = hp
					}
				}
				// Registration is retried on this backoff schedule until
				// the master answers; dial failures additionally sit behind
				// the transport's own dial gate.
				_ = w.ctl.Send(CtlMasterAddr, transport.Message{Kind: kindJoin, Payload: join})
				nextJoin = time.Now().Add(joinBackoff/2 + time.Duration(rand.Int63n(int64(joinBackoff/2)+1)))
				if joinBackoff *= 2; joinBackoff > w.opts.JoinBackoffMax {
					joinBackoff = w.opts.JoinBackoffMax
				}
				continue
			}
			// Probes are periodic; a dropped one is indistinguishable from
			// a missed pong and the next tick re-probes.
			_ = w.ctl.Send(CtlMasterAddr, transport.Message{Kind: kindPing, Payload: pingMsg{Worker: w.opts.ID}})
			// Silence only counts if this loop was actually probing: a
			// tick arriving late means the loop itself was busy (applying
			// a plan is the long pole — every static block loads inside
			// it), not that the master went quiet. Skip one check so the
			// queued pongs drain and the probe cadence re-establishes.
			if !lastTick.IsZero() && time.Since(lastTick) > 2*w.opts.PingInterval {
				lastTick = time.Now()
				continue
			}
			lastTick = time.Now()
			if time.Since(lastPong) > time.Duration(w.opts.PingMisses)*w.opts.PingInterval {
				// Master lost: drop the run (its DFS lives in the master
				// process anyway) and re-register — a resumed master
				// rebuilds membership from exactly these rejoin attempts.
				unregister()
			}

		case msg, ok := <-w.ctl.Recv():
			if !ok {
				return nil // terminated
			}
			switch pl := msg.Payload.(type) {
			case joinAckMsg:
				if pl.Worker != w.opts.ID {
					continue
				}
				w.dir.SetAll(pl.Directory)
				joined, joinedEpoch, lastPong = true, pl.Epoch, time.Now()
			case pongMsg:
				if joined && pl.Epoch != joinedEpoch {
					// A pong from a different master process: it restarted
					// and our membership is void. Rejoin from scratch.
					unregister()
					continue
				}
				lastPong = time.Now()
			case planMsg:
				ack := w.applyPlan(pl)
				// The master re-plans (and eventually declares us failed)
				// if the ack is lost; re-delivered plans re-ack.
				_ = w.ctl.Send(msg.From, transport.Message{Kind: kindPlanAck, Payload: ack})
				// A plan is proof of master liveness as strong as any
				// pong — and applying it blocked this loop for as long as
				// the static loads took, a span that must not be read as
				// master silence (it would tear down the run just planned).
				lastPong = time.Now()
			case dirMsg:
				for _, peer := range w.dir.SetAll(pl.Entries) {
					w.net.Invalidate(peer)
				}
				lastPong = time.Now()
			case releaseMsg:
				w.teardownRun()
				lastPong = time.Now()
			}
		}
	}
}

// applyPlan deploys (or re-deploys) a plan: build the run context if
// this is the first plan of the job, adopt the plan's placement
// wholesale, spawn whatever assigned task pairs are missing, and report
// every hosted endpoint's listen address. Idempotent: re-delivered and
// superseded plans just re-ack the current state.
func (w *WorkerHost) applyPlan(p planMsg) planAckMsg {
	ack := planAckMsg{Worker: w.opts.ID, Epoch: p.Epoch, Endpoints: map[string]string{}}
	for _, peer := range w.dir.SetAll(p.Directory) {
		w.net.Invalidate(peer)
	}
	w.mu.Lock()
	r := w.run
	w.mu.Unlock()
	if r != nil && r.jobName != p.Run.Name {
		w.teardownRun()
		r = nil
	}
	if r == nil {
		var err error
		if r, err = w.newRun(p); err != nil {
			ack.Err = err.Error()
			return ack
		}
		w.mu.Lock()
		w.run = r
		w.mu.Unlock()
	}
	if p.Epoch > r.epoch {
		r.epoch = p.Epoch
		r.run.mu.Lock()
		copy(r.run.pairWorker, p.Run.Placement)
		copy(r.run.auxWorker, p.Run.AuxPlacement)
		r.run.mu.Unlock()
		for _, a := range p.Assigns {
			first, limit := 0, r.phases
			if a.Aux {
				first, limit = r.phases, r.phases+1
			}
			for phase := first; phase < limit; phase++ {
				if err := w.spawnPair(r, phase, a.Idx); err != nil {
					ack.Err = err.Error()
					return ack
				}
			}
		}
	}
	for addr := range r.tasks {
		if hp, ok := w.net.ListenAddr(addr); ok {
			ack.Endpoints[addr] = hp
		}
	}
	if hp, ok := w.net.ListenAddr(dfsClientAddr(w.opts.ID)); ok {
		ack.Endpoints[dfsClientAddr(w.opts.ID)] = hp
	}
	return ack
}

// newRun builds the per-job context: the job from the registry, the
// DFS client against the master's block service, and a task-context
// engine sharing this host's network.
func (w *WorkerHost) newRun(p planMsg) (*hostedRun, error) {
	job, err := w.opts.Build(p.JobKey, p.Params)
	if err != nil {
		return nil, fmt.Errorf("core: worker %s: build job %q: %w", w.opts.ID, p.JobKey, err)
	}
	phases := job.Phases()
	if len(phases) != p.Run.MainPhases {
		return nil, fmt.Errorf("core: worker %s: job %q built %d phases, plan says %d — registry drift",
			w.opts.ID, p.JobKey, len(phases), p.Run.MainPhases)
	}
	if (job.auxiliary != nil) != (p.Run.AuxTasks > 0) {
		return nil, fmt.Errorf("core: worker %s: job %q auxiliary phase mismatch with plan — registry drift", w.opts.ID, p.JobKey)
	}
	eng, err := NewEngine(w.fs, w.net, p.Spec, w.opts.Metrics, Options{
		Timeout:                p.Tuning.Timeout,
		HeartbeatInterval:      p.Tuning.HeartbeatInterval,
		HeartbeatMisses:        p.Tuning.HeartbeatMisses,
		SendRetries:            p.Tuning.SendRetries,
		SendRetryBackoff:       p.Tuning.SendRetryBackoff,
		CheckpointRetries:      p.Tuning.CheckpointRetries,
		CheckpointRetryBackoff: p.Tuning.CheckpointRetryBackoff,
		Parallelism:            p.Tuning.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	run := &runState{
		name:       p.Run.Name,
		mainPhases: p.Run.MainPhases,
		mainTasks:  p.Run.MainTasks,
		auxTasks:   p.Run.AuxTasks,
		outputPath: p.Run.OutputPath,
		pool:       newWorkerPool(p.Tuning.Parallelism),
		pairWorker: make([]string, p.Run.MainTasks),
		auxWorker:  make([]string, p.Run.AuxTasks),
	}
	return &hostedRun{
		jobName: p.Run.Name,
		engine:  eng,
		factory: &taskFactory{e: eng, job: job, phases: phases, aux: job.auxiliary, run: run, n: p.Run.MainTasks, auxN: p.Run.AuxTasks},
		run:     run,
		phases:  p.Run.MainPhases,
		tasks:   make(map[string]bool),
	}, nil
}

// spawnPair starts the map and reduce tasks of (phase, idx) unless they
// already run here.
func (w *WorkerHost) spawnPair(r *hostedRun, phase, idx int) error {
	jobName := r.jobName
	ma, ra := mapAddr(jobName, phase, idx), redAddr(jobName, phase, idx)
	if r.tasks[ma] && r.tasks[ra] {
		return nil
	}
	mep, err := w.net.Endpoint(ma)
	if err != nil {
		return err
	}
	mt := r.factory.buildMapTask(phase, idx, mep)
	if err := mt.loadStatic(); err != nil {
		return err
	}
	rep, err := w.net.Endpoint(ra)
	if err != nil {
		return err
	}
	rt := r.factory.buildReduceTask(phase, idx, rep)
	r.tasks[ma], r.tasks[ra] = true, true
	r.eps = append(r.eps, mep, rep)
	if m := w.opts.Metrics; m != nil {
		m.Add(metrics.TasksLaunched, 2)
	}
	r.wg.Add(2)
	go func() { defer r.wg.Done(); mt.loop() }()
	go func() { defer r.wg.Done(); rt.loop() }()
	return nil
}

// teardownRun closes the current run's endpoints (task loops exit on
// their closed inbox) and joins the task goroutines — with a short
// grace, since a run torn down because the master vanished may hold
// tasks wedged inside user functions or in-flight DFS calls. The DFS
// endpoint stays open: it belongs to the host, and the host's own
// shutdown (net.Close) is what fails those calls fast.
func (w *WorkerHost) teardownRun() {
	w.mu.Lock()
	r := w.run
	w.run = nil
	w.mu.Unlock()
	if r == nil {
		return
	}
	for _, ep := range r.eps {
		ep.Close()
	}
	// Stop the pair-loop pool first (stragglers fall back to inline
	// shards), then join tasks and pool workers together.
	r.run.pool.close()
	done := make(chan struct{})
	go func() { r.wg.Wait(); r.run.pool.join(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
}

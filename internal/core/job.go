// Package core implements iMapReduce, the paper's contribution: a
// MapReduce-style engine with built-in iteration support.
//
// Compared to the baseline engine (internal/mapreduce), core provides:
//
//   - Persistent tasks (§3.1.1): map/reduce task pairs are created once
//     and stay alive across every iteration, eliminating per-iteration
//     job and task scheduling.
//   - Static/state separation (§3.2): the unchanged data (graph
//     adjacency, point coordinates, the multiplicand matrix) is
//     partitioned and loaded once; only the iterated state is shuffled.
//     The engine joins state and static records automatically before
//     each map invocation.
//   - Persistent reduce→map connections (§3.2.1): reduce task i streams
//     its output directly to map task i over one persistent connection;
//     the pair is placed on the same worker so the transfer is local.
//   - Asynchronous map execution (§3.3): a map task starts as soon as
//     state data arrives from its reduce task, without waiting for the
//     other reduce tasks; sends are buffered to avoid eager-trigger
//     context switching.
//   - Termination (§3.1.2): by iteration bound or by a user Distance
//     function whose per-task sums the master merges each iteration.
//   - Fault tolerance (§3.4.1): reduce tasks checkpoint state to DFS
//     every few iterations; recovery rolls every task back to the last
//     checkpoint and relaunches lost pairs elsewhere.
//   - Load balancing (§3.4.2): per-iteration completion reports let the
//     master migrate a task pair from the slowest worker to the fastest.
//   - Extensions (§5): one-to-all broadcast from reduces to maps
//     (K-means), multiple map-reduce phases per iteration via
//     AddSuccessor (matrix power), and auxiliary map-reduce phases via
//     AddAuxiliary (convergence detection).
package core

import (
	"fmt"

	"imapreduce/internal/kv"
)

// MapFunc is the iMapReduce map interface (§3.5): one input key with its
// state value and its joined static value. In OneToOne mapping it is
// invoked once per arriving state record, with static the record joined
// by key (nil when the key has no static record). In OneToAll mapping it
// is invoked once per *static* record, and state carries []kv.Pair — the
// full broadcast state set from all reduce tasks (§5.1.2).
type MapFunc func(key, state, static any, emit kv.Emit) error

// ReduceFunc is the iMapReduce reduce interface (§3.5): the input values
// are state data only (static data never reaches reduce), and the return
// value is the key's new state.
type ReduceFunc func(key any, states []any) (any, error)

// DistFunc measures a key's change between consecutive iterations
// (§3.5); the engine sums it across keys and tasks and the master
// compares the total against the job's DistThreshold.
type DistFunc func(key, prev, curr any) float64

// Mapping selects how reduce output reaches the next map (§5.1).
type Mapping int

const (
	// OneToOne connects reduce task i to map task i; state records stay
	// in their partition. The default, used by the graph algorithms.
	OneToOne Mapping = iota
	// OneToAll broadcasts every reduce task's output to every map task;
	// map execution is necessarily synchronous. Used by K-means.
	OneToAll
)

func (m Mapping) String() string {
	if m == OneToAll {
		return "one2all"
	}
	return "one2one"
}

// Job configures one iMapReduce computation. The field set mirrors the
// paper's JobConf parameters (mapred.iterjob.*).
type Job struct {
	Name string

	// StatePath is the DFS path of the initial state records
	// (mapred.iterjob.statepath). Required on the first phase.
	StatePath string
	// StaticPath is the DFS path of the static records
	// (mapred.iterjob.staticpath); empty means the phase has no static
	// data and map's static argument is always nil.
	StaticPath string
	// OutputPath receives the final state when the iteration
	// terminates; it is written once (§3.1).
	OutputPath string

	Map    MapFunc
	Reduce ReduceFunc
	// Combine, if set, aggregates each outgoing shuffle chunk per key on
	// the map side before it is sent — Hadoop's Combiner, which the
	// paper applies to K-means (§5.1.3) to cut shuffle volume. Its
	// output values must be acceptable reduce inputs.
	Combine func(key any, values []any) (any, error)
	// Distance enables distance-based termination
	// (mapred.iterjob.disthresh); may be nil when only MaxIter is used.
	Distance DistFunc

	// MaxIter is the iteration bound (mapred.iterjob.maxiter); 0 means
	// unbounded (then DistThreshold or an auxiliary decision must stop
	// the job).
	MaxIter int
	// DistThreshold stops the job when the merged distance between two
	// consecutive iterations falls below it.
	DistThreshold float64

	// NumTasks is the number of persistent map-reduce task pairs;
	// 0 means one pair per worker. The engine verifies the cluster has
	// enough task slots for all pairs to start at once (§3.1.1).
	NumTasks int

	// Mapping selects one-to-one or one-to-all reduce→map connections
	// (mapred.iterjob.mapping).
	Mapping Mapping
	// SyncMap forces synchronous map execution
	// (mapred.iterjob.sync); implied by OneToAll.
	SyncMap bool

	// BufferThreshold is the number of output records a reduce task
	// buffers before flushing to its map task (§3.3); 0 means the
	// engine default (DefaultBufferThreshold).
	BufferThreshold int
	// CheckpointEvery dumps the state to DFS every this many iterations
	// for fault tolerance (§3.4.1); 0 disables periodic checkpoints
	// (the initial state is always checkpointed as iteration 0).
	CheckpointEvery int

	// Ops supplies hashing/ordering/sizing for this phase's keys and
	// values.
	Ops kv.Ops

	// AuxDecide, with AddAuxiliary, receives the auxiliary phase's
	// reduce output each iteration and returns true to terminate the
	// main job (§5.3).
	AuxDecide func(iter int, outputs []kv.Pair) bool

	// Registry and Params identify this job in the process-global job
	// registry so a remote worker can rebuild the identical definition
	// from a plan message (functions do not cross the wire). Builders in
	// internal/jobs set them; required for remote runs, ignored
	// in-process.
	Registry string
	Params   map[string]string

	successor *Job
	auxiliary *Job
}

// AddSuccessor chains another map-reduce phase after this one inside
// each iteration (§5.2.2, job1.addSuccessor(job2)). The last phase
// implicitly feeds the first, closing the loop; do not add the first job
// as an explicit successor. Termination settings (MaxIter,
// DistThreshold, Distance, OutputPath, checkpoints) are taken from the
// chain's final phase.
func (j *Job) AddSuccessor(next *Job) { j.successor = next }

// AddAuxiliary attaches an auxiliary map-reduce phase (§5.3,
// job1.addAuxiliary(job2)): each iteration, the main chain's final
// reduce output is also fed to aux's map tasks; aux's reduce output is
// delivered to the main job's AuxDecide at the master, which can
// terminate the computation. The auxiliary phase runs in parallel with
// the main iteration.
func (j *Job) AddAuxiliary(aux *Job) { j.auxiliary = aux }

// Phases returns the main chain starting at j.
func (j *Job) Phases() []*Job {
	var out []*Job
	for p := j; p != nil; p = p.successor {
		out = append(out, p)
		if len(out) > 64 {
			panic("core: successor chain too long or cyclic")
		}
	}
	return out
}

// DefaultBufferThreshold is the reduce→map send buffer size in records
// when Job.BufferThreshold is zero.
const DefaultBufferThreshold = 512

func (j *Job) validate(phaseIdx int, isAux bool) error {
	where := fmt.Sprintf("core: job %s (phase %d)", j.Name, phaseIdx)
	if j.Name == "" {
		return fmt.Errorf("core: job without a name")
	}
	if j.Map == nil || j.Reduce == nil {
		return fmt.Errorf("%s: Map and Reduce are required", where)
	}
	if j.Ops.Hash == nil || j.Ops.Less == nil {
		return fmt.Errorf("%s: incomplete kv.Ops", where)
	}
	if phaseIdx == 0 && !isAux && j.StatePath == "" {
		return fmt.Errorf("%s: first phase needs StatePath", where)
	}
	if j.Mapping == OneToAll && phaseIdx > 0 && !isAux {
		return fmt.Errorf("%s: OneToAll is only supported on the first phase", where)
	}
	if isAux && (j.successor != nil || j.auxiliary != nil) {
		return fmt.Errorf("%s: auxiliary phases cannot chain further phases", where)
	}
	return nil
}

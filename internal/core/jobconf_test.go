package core

import (
	"math"
	"strings"
	"testing"

	"imapreduce/internal/kv"
)

func TestJobConfBuild(t *testing.T) {
	conf := NewJobConf("pr").
		Set(ConfStatePath, "/state").
		Set(ConfStaticPath, "/static").
		Set(ConfOutputPath, "/out").
		SetInt(ConfMaxIter, 7).
		SetFloat(ConfDistThresh, 0.01).
		SetBool(ConfSync, true).
		SetInt(ConfNumTasks, 3).
		SetInt(ConfBuffer, 128).
		SetInt(ConfCheckpoint, 2).
		SetMap(func(key, state, static any, emit kv.Emit) error { return nil }).
		SetReduce(func(key any, states []any) (any, error) { return nil, nil }).
		SetDistance(func(key, prev, curr any) float64 { return 0 }).
		SetOps(kv.OpsFor[int64, float64](nil))
	job, err := conf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "pr" || job.StatePath != "/state" || job.StaticPath != "/static" ||
		job.OutputPath != "/out" || job.MaxIter != 7 || job.DistThreshold != 0.01 ||
		!job.SyncMap || job.NumTasks != 3 || job.BufferThreshold != 128 || job.CheckpointEvery != 2 {
		t.Fatalf("job misconfigured: %+v", job)
	}
}

func TestJobConfStringForms(t *testing.T) {
	conf := NewJobConf("x").
		Set(ConfMaxIter, "9").
		Set(ConfDistThresh, "0.5").
		Set(ConfSync, "true").
		Set(ConfMapping, "one2all")
	job, err := conf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if job.MaxIter != 9 || job.DistThreshold != 0.5 || !job.SyncMap || job.Mapping != OneToAll {
		t.Fatalf("string forms misparsed: %+v", job)
	}
}

func TestJobConfErrors(t *testing.T) {
	cases := []*JobConf{
		NewJobConf("a").Set("bogus.key", "v"),
		NewJobConf("b").Set(ConfMaxIter, "notanumber"),
		NewJobConf("c").Set(ConfDistThresh, "x"),
		NewJobConf("d").Set(ConfSync, "maybe"),
		NewJobConf("e").Set(ConfMapping, "one2many"),
		NewJobConf("f").SetInt(ConfDistThresh, 1),
		NewJobConf("g").SetFloat(ConfMaxIter, 1),
		NewJobConf("h").SetBool(ConfMaxIter, true),
	}
	for i, c := range cases {
		if _, err := c.Build(); err == nil {
			t.Errorf("case %d: bad configuration accepted", i)
		}
	}
}

func TestJobConfUnknownKeySuggestion(t *testing.T) {
	_, err := NewJobConf("t").Set("mapred.iterjob.statepaths", "/s").Build()
	if err == nil {
		t.Fatal("misspelled key accepted")
	}
	if !strings.Contains(err.Error(), string(KeyStatePath)) {
		t.Fatalf("no suggestion in error: %v", err)
	}
	// Keys far from any mapred.* key get no guess.
	_, err = NewJobConf("t").Set("bogus.key", "v").Build()
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("unexpected suggestion: %v", err)
	}
}

func TestJobConfJoinsAllErrors(t *testing.T) {
	_, err := NewJobConf("t").
		Set("bogus.key", "v").
		Set(ConfMaxIter, "notanumber").
		Build()
	if err == nil {
		t.Fatal("errors swallowed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bogus.key") || !strings.Contains(msg, "notanumber") {
		t.Fatalf("Build dropped an error: %v", err)
	}
}

func TestJobConfChaining(t *testing.T) {
	p2 := NewJobConf("p2").
		SetMap(func(key, state, static any, emit kv.Emit) error { return nil }).
		SetReduce(func(key any, states []any) (any, error) { return nil, nil }).
		SetInt(ConfMaxIter, 3).
		SetOps(kv.OpsFor[int64, float64](nil))
	p1 := NewJobConf("p1").
		Set(ConfStatePath, "/state").
		SetMap(func(key, state, static any, emit kv.Emit) error { return nil }).
		SetReduce(func(key any, states []any) (any, error) { return nil, nil }).
		SetOps(kv.OpsFor[int64, float64](nil)).
		AddSuccessor(p2)
	job, err := p1.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Phases()) != 2 || job.Phases()[1].Name != "p2" {
		t.Fatalf("successor lost: %v", job.Phases())
	}
	// Errors in a successor surface at the root.
	bad := NewJobConf("bad").Set("nope", "x")
	root := NewJobConf("root").AddSuccessor(bad)
	if _, err := root.Build(); err == nil {
		t.Fatal("successor error swallowed")
	}
}

func TestJobConfCombineAndAuxiliary(t *testing.T) {
	aux := NewJobConf("watch").
		SetMap(func(key, state, static any, emit kv.Emit) error { return nil }).
		SetReduce(func(key any, states []any) (any, error) { return nil, nil }).
		SetOps(kv.OpsFor[int64, float64](nil))
	conf := NewJobConf("main").
		Set(ConfStatePath, "/s").
		SetMap(func(key, state, static any, emit kv.Emit) error { return nil }).
		SetReduce(func(key any, states []any) (any, error) { return nil, nil }).
		SetCombine(func(key any, values []any) (any, error) { return values[0], nil }).
		SetOps(kv.OpsFor[int64, float64](nil)).
		AddAuxiliary(aux, func(iter int, outputs []kv.Pair) bool { return true })
	job, err := conf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if job.Combine == nil || job.auxiliary == nil || job.AuxDecide == nil {
		t.Fatal("combine/auxiliary not attached")
	}
	// Aux configuration errors surface at the root.
	badAux := NewJobConf("bad").Set("nope", "x")
	root := NewJobConf("root").AddAuxiliary(badAux, nil)
	if _, err := root.Build(); err == nil {
		t.Fatal("auxiliary error swallowed")
	}
}

// TestJobConfEndToEnd runs a JobConf-assembled job on the engine, the
// way the paper's Fig. 3 example is written.
func TestJobConfEndToEnd(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 10)
	conf := NewJobConf("conf-halve").
		Set(ConfStatePath, "/state").
		SetInt(ConfMaxIter, 4).
		SetMap(func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		}).
		SetReduce(func(key any, states []any) (any, error) {
			return states[0].(float64) / 2, nil
		}).
		SetOps(f64Ops())
	job, err := conf.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		if math.Abs(val.(float64)-1.0/16) > 1e-12 {
			t.Fatalf("key %d = %v", k, val)
		}
	}
}

package core

import (
	"fmt"
	"time"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
	"imapreduce/internal/transport"
)

// mapTask is one persistent map task (§3.1.1). It lives for the whole
// run as a single goroutine draining its endpoint: state chunks from its
// feeding reduce task(s), and control commands from the master. All
// fields are owned by that goroutine.
type mapTask struct {
	e       *Engine
	run     *runState
	jobName string
	job     *Job
	phase   int // global phase index (for error reports)
	idx     int
	isAux   bool
	// selfLoads marks the main chain's first phase: its input for
	// iteration c+1 after a (rollback to c) comes from the checkpoint
	// files in DFS rather than from a feeding reduce.
	selfLoads bool
	// broadcast marks OneToAll input: state chunks arrive from every
	// reduce task and Map runs once per static record with the full
	// state list (§5.1.2).
	broadcast bool
	// stream marks asynchronous execution (§3.3): chunks of the current
	// iteration are joined and mapped the moment they arrive.
	stream  bool
	feeders int // reduce tasks feeding this map per iteration

	worker string
	gen    int
	iter   int // iteration currently awaiting/accumulating input

	ep          transport.Endpoint
	redAddrs    []string
	numReduce   int
	bufThresh   int
	outBuf      [][]kv.Pair
	staticIdx   map[any]any
	staticPairs []kv.Pair
	pend        map[int]*mapAccum
	// lastIn is the previous iteration's state-input size, used to
	// presize the next accumulator.
	lastIn int
	// seq numbers outgoing shuffle chunks so receivers can discard
	// network duplicates; loadedGen records the generation whose go
	// command was already obeyed, making duplicated cmdGo a no-op.
	seq       int64
	loadedGen int
	// idleAt marks when the task last went idle; set only when tracing,
	// it anchors the per-iteration wait span. Compute spans emitted for
	// streamed chunks inside the window are carved out of the wait by
	// the decomposition's factor priority, so the wait never double-
	// counts asynchronous work.
	idleAt time.Time
}

// tid is the task's pair lane in the trace: auxiliary pairs are offset
// past the main pairs so the two never share a lane.
func (t *mapTask) tid() int {
	if t.isAux {
		return t.run.mainTasks + t.idx
	}
	return t.idx
}

// chunkKey identifies one data chunk within an iteration accumulator:
// the sending task plus its per-sender sequence number. Receivers use
// it to drop duplicated deliveries.
type chunkKey struct {
	from int
	seq  int64
}

type mapAccum struct {
	pairs []kv.Pair
	ends  int
	seen  map[chunkKey]bool
}

// loop is the task body; it returns when the master terminates the run.
// With heartbeats enabled the task also beats the master every interval
// — from this goroutine, so a hung task (stalled worker) stops beating
// and becomes detectable (§3.4.1 extended).
func (t *mapTask) loop() {
	var beat <-chan time.Time
	if hb := t.e.opts.HeartbeatInterval; hb > 0 {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		beat = tick.C
	}
	for {
		select {
		case msg, ok := <-t.ep.Recv():
			if !ok {
				return
			}
			t.e.stallPoint(t.worker)
			switch pl := msg.Payload.(type) {
			case stateChunk:
				t.handleState(pl)
			case cmdMsg:
				switch pl.Kind {
				case cmdTerminate, cmdAbort:
					return
				case cmdReassign:
					t.worker = pl.Worker
					// A relaunched map task loads its static data block from
					// its DFS replica (§3.4.2), now typically a remote read.
					var lstart time.Time
					if tr := t.e.opts.Trace; tr != nil {
						lstart = time.Now()
					}
					if err := t.loadStatic(); err != nil {
						t.fatal(err)
						return
					}
					if tr := t.e.opts.Trace; tr != nil {
						tr.RecordSpan(trace.SpanLoad, t.worker, t.tid(), max(t.iter, 1),
							lstart, time.Since(lstart))
					}
				case cmdRollback:
					t.rollback(pl)
				case cmdGo:
					t.selfLoad(pl)
				}
			}
		case <-beat:
			t.e.stallPoint(t.worker)
			t.e.m.Add(metrics.HeartbeatsSent, 1)
			t.send(masterAddr(t.jobName), kindBeat, heartbeatMsg{Worker: t.worker, Phase: t.phase, Task: t.idx}, 0)
		}
	}
}

func (t *mapTask) fatal(err error) {
	t.send(masterAddr(t.jobName), kindFail, taskErrMsg{Phase: t.phase, Task: t.idx, Err: err.Error()}, 0)
}

func (t *mapTask) send(to, kind string, payload any, size int64) {
	// Retried; a frame still failing after that is counted and dropped —
	// send errors during shutdown are expected (peers already gone).
	_ = t.e.sendReliable(t.ep, to, transport.Message{Kind: kind, Payload: payload, Size: size})
}

// loadStatic reads this task's static partition from the DFS.
func (t *mapTask) loadStatic() error {
	t.staticIdx = nil
	t.staticPairs = nil
	if t.job.StaticPath == "" {
		return nil
	}
	pairs, err := t.e.fs.ReadFile(t.run.staticPartPath(t.phase, t.idx), t.worker)
	if err != nil {
		return fmt.Errorf("map %d/%d: load static: %w", t.phase, t.idx, err)
	}
	t.staticPairs = pairs
	t.staticIdx = make(map[any]any, len(pairs))
	for _, p := range pairs {
		t.staticIdx[p.Key] = p.Value
	}
	return nil
}

// rollback resets the task to restart from checkpoint iteration
// cmd.ToIter (§3.4.1): buffered state is discarded and in-flight traffic
// of the old generation will be dropped by the Gen check. The task acks
// so the master knows when the whole cluster is quiesced. A duplicated
// or reordered rollback for a generation already adopted is ignored —
// re-resetting mid-iteration would desync the task from the master.
func (t *mapTask) rollback(cmd cmdMsg) {
	if cmd.Gen <= t.gen {
		return
	}
	t.gen = cmd.Gen
	t.iter = cmd.ToIter + 1
	t.pend = make(map[int]*mapAccum)
	t.outBuf = make([][]kv.Pair, t.numReduce)
	if t.e.opts.Trace != nil {
		t.idleAt = time.Now()
	}
	t.send(masterAddr(t.jobName), kindCmd, rbAckMsg{Gen: t.gen, Phase: t.phase, Task: t.idx}, 0)
}

// selfLoad starts iteration toIter+1 on a first-phase map by reading the
// checkpointed state from DFS — the initial state at startup, or the
// last durable checkpoint after a failure or migration. One load per
// generation: a duplicated go command must not inject the state twice.
func (t *mapTask) selfLoad(cmd cmdMsg) {
	toIter := cmd.ToIter
	if !t.selfLoads || cmd.Gen != t.gen || t.loadedGen >= t.gen {
		return
	}
	t.loadedGen = t.gen
	parts := []int{t.idx}
	if t.broadcast {
		// Broadcast input: the whole state set, i.e. every checkpoint
		// part.
		parts = make([]int, t.run.mainTasks)
		for i := range parts {
			parts[i] = i
		}
	}
	var pairs []kv.Pair
	var lstart time.Time
	if tr := t.e.opts.Trace; tr != nil {
		lstart = time.Now()
	}
	for _, p := range parts {
		recs, err := t.e.fs.ReadFile(t.run.ckptPath(toIter, p), t.worker)
		if err != nil {
			t.fatal(fmt.Errorf("map %d/%d: load checkpoint %d: %w", t.phase, t.idx, toIter, err))
			return
		}
		pairs = append(pairs, recs...)
	}
	if tr := t.e.opts.Trace; tr != nil {
		tr.RecordSpan(trace.SpanLoad, t.worker, t.tid(), t.iter, lstart, time.Since(lstart))
	}
	t.seq++
	t.handleState(stateChunk{Gen: t.gen, Iter: t.iter, From: -1, Seq: t.seq, Pairs: pairs, End: true})
	if t.broadcast {
		// The self-load stands in for all feeders at once.
		if a := t.pend[t.iter]; a != nil {
			a.ends = t.feeders
			t.tryComplete()
		}
	}
}

// handleState ingests one chunk of iterated state.
func (t *mapTask) handleState(c stateChunk) {
	// This handler owns the chunk's decode arena: c.Pairs is only read
	// within this call (streamed straight into process, or copied into
	// the accumulator), so the arena goes back to the pool on return.
	defer c.release()
	if c.Gen != t.gen || c.Iter < t.iter {
		return // stale: pre-rollback traffic
	}
	a := t.pend[c.Iter]
	if a == nil {
		a = &mapAccum{seen: make(map[chunkKey]bool)}
		if !t.stream {
			a.pairs = make([]kv.Pair, 0, t.lastIn)
		}
		t.pend[c.Iter] = a
	}
	k := chunkKey{from: c.From, seq: c.Seq}
	if a.seen[k] {
		return // network-duplicated delivery
	}
	a.seen[k] = true
	if len(c.Pairs) > 0 {
		if t.stream && c.Iter == t.iter {
			// Asynchronous execution: join + map immediately (§3.3).
			t.process(c.Iter, c.Pairs)
		} else {
			a.pairs = append(a.pairs, c.Pairs...)
		}
	}
	if c.End {
		a.ends++
	}
	t.tryComplete()
}

// tryComplete finishes every iteration whose input is fully here.
func (t *mapTask) tryComplete() {
	for {
		a := t.pend[t.iter]
		if a == nil || a.ends < t.feeders {
			return
		}
		// The idle window closes here: everything since the task last
		// went idle that wasn't covered by a compute/shuffle span
		// (streamed chunks) was spent waiting for this iteration's
		// input.
		if tr := t.e.opts.Trace; tr != nil && !t.idleAt.IsZero() {
			tr.RecordSpan(trace.SpanWait, t.worker, t.tid(), t.iter,
				t.idleAt, time.Since(t.idleAt))
		}
		t.lastIn = len(a.pairs)
		if t.broadcast {
			t.processBroadcast(t.iter, a.pairs)
		} else if len(a.pairs) > 0 {
			t.process(t.iter, a.pairs)
		}
		t.flushEnds(t.iter)
		delete(t.pend, t.iter)
		t.iter++
		if t.e.opts.Trace != nil {
			t.idleAt = time.Now()
		}
	}
}

// process joins state records with this task's static records and runs
// the user map, partitioning emitted pairs toward the phase's reduces.
// Large inputs shard across the run's worker pool; the merged output is
// identical to the serial loop's (contiguous shards, merged in order).
func (t *mapTask) process(iter int, pairs []kv.Pair) {
	start := time.Now()
	if shards := t.run.pool.shardsFor(len(pairs)); shards > 1 {
		err := t.runSharded(iter, shards, len(pairs), func(lo, hi int, em kv.Emit) error {
			return t.mapRange(pairs[lo:hi], em)
		})
		if err != nil {
			t.fatal(err)
			return
		}
	} else if err := t.mapRange(pairs, t.emitFn(iter)); err != nil {
		t.fatal(err)
		return
	}
	t.e.stretch(t.worker, time.Since(start))
	t.e.opts.Trace.RecordSpan(trace.SpanMap, t.worker, t.tid(), iter, start, time.Since(start))
}

// mapRange runs the user map over one range of state pairs.
func (t *mapTask) mapRange(pairs []kv.Pair, em kv.Emit) error {
	for _, p := range pairs {
		var static any
		if t.staticIdx != nil {
			static = t.staticIdx[p.Key]
		}
		if err := t.job.Map(p.Key, p.Value, static, em); err != nil {
			return fmt.Errorf("map %d/%d key %v: %w", t.phase, t.idx, p.Key, err)
		}
	}
	return nil
}

// processBroadcast runs the user map once per static record with the
// complete state list (OneToAll); large static sets shard like process.
func (t *mapTask) processBroadcast(iter int, statePairs []kv.Pair) {
	start := time.Now()
	t.job.Ops.SortPairs(statePairs) // deterministic state order across runs
	if shards := t.run.pool.shardsFor(len(t.staticPairs)); shards > 1 {
		err := t.runSharded(iter, shards, len(t.staticPairs), func(lo, hi int, em kv.Emit) error {
			return t.broadcastRange(t.staticPairs[lo:hi], statePairs, em)
		})
		if err != nil {
			t.fatal(err)
			return
		}
	} else if err := t.broadcastRange(t.staticPairs, statePairs, t.emitFn(iter)); err != nil {
		t.fatal(err)
		return
	}
	t.e.stretch(t.worker, time.Since(start))
	t.e.opts.Trace.RecordSpan(trace.SpanMap, t.worker, t.tid(), iter, start, time.Since(start))
}

// broadcastRange runs the user map over one range of static pairs with
// the full state list.
func (t *mapTask) broadcastRange(static, statePairs []kv.Pair, em kv.Emit) error {
	for _, sp := range static {
		if err := t.job.Map(sp.Key, statePairs, sp.Value, em); err != nil {
			return fmt.Errorf("map %d/%d key %v: %w", t.phase, t.idx, sp.Key, err)
		}
	}
	return nil
}

// runSharded splits an n-record map loop into contiguous shards run on
// the pool, each emitting into its own buffers, then merges the shards'
// output in order through the regular buffered send path — so chunk
// contents and boundaries are exactly the serial loop's. The user map
// must be safe to call concurrently (Options.Parallelism).
func (t *mapTask) runSharded(iter, shards, n int, body func(lo, hi int, em kv.Emit) error) error {
	se := newShardedEmits(shards, t.numReduce)
	errs := make([]error, shards)
	part := func(k any) int { return t.job.Ops.Partition(k, t.numReduce) }
	t.run.pool.runShards(shards, func(sh int) {
		lo, hi := shardRange(n, shards, sh)
		errs[sh] = body(lo, hi, se.emit(sh, part))
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for r := 0; r < t.numReduce; r++ {
		se.forPartition(r, func(ps []kv.Pair) {
			for len(ps) > 0 {
				if t.outBuf[r] == nil {
					t.outBuf[r] = make([]kv.Pair, 0, t.bufThresh)
				}
				take := t.bufThresh - len(t.outBuf[r])
				if take > len(ps) {
					take = len(ps)
				}
				t.outBuf[r] = append(t.outBuf[r], ps[:take]...)
				ps = ps[take:]
				if len(t.outBuf[r]) >= t.bufThresh {
					t.sendShuffle(iter, r, false)
				}
			}
		})
	}
	return nil
}

// emitFn returns the emit callback for one iteration's map output: pairs
// are partitioned by the phase's Ops and flushed to the reduce tasks in
// BufferThreshold-sized chunks.
func (t *mapTask) emitFn(iter int) kv.Emit {
	return func(k, v any) {
		r := t.job.Ops.Partition(k, t.numReduce)
		if t.outBuf[r] == nil {
			t.outBuf[r] = make([]kv.Pair, 0, t.bufThresh)
		}
		t.outBuf[r] = append(t.outBuf[r], kv.Pair{Key: k, Value: v})
		if len(t.outBuf[r]) >= t.bufThresh {
			t.sendShuffle(iter, r, false)
		}
	}
}

// sendShuffle flushes the buffer for reduce r, running the combiner
// over the chunk first when one is configured.
//
// Ownership: a pair slice handed to Send belongs to the network from
// that moment (channel transports pass it by reference; the chaos
// wrapper may hold it to reorder or duplicate), so a sent slice is
// never written again. The buffer is reused only on the combiner
// shrink path, where the sent slice is a fresh allocation.
func (t *mapTask) sendShuffle(iter, r int, end bool) {
	var sstart time.Time
	if tr := t.e.opts.Trace; tr != nil {
		sstart = time.Now()
		defer func() {
			tr.RecordSpan(trace.SpanShuffle, t.worker, t.tid(), iter, sstart, time.Since(sstart))
		}()
	}
	pairs := t.outBuf[r]
	reused := false
	if t.job.Combine != nil && len(pairs) > 1 {
		groups := kv.GroupPairs(pairs, t.job.Ops)
		if len(groups) < len(pairs) {
			combined := make([]kv.Pair, 0, len(groups))
			for _, g := range groups {
				v, err := t.job.Combine(g.Key, g.Values)
				if err != nil {
					t.fatal(fmt.Errorf("map %d/%d combine key %v: %w", t.phase, t.idx, g.Key, err))
					return
				}
				combined = append(combined, kv.Pair{Key: g.Key, Value: v})
			}
			pairs, reused = combined, true
		}
		// Every key unique: combining cannot shrink the chunk, and reduce
		// functions accept uncombined values (the Hadoop combiner
		// contract), so skip the pass and ship the buffer itself.
	}
	if reused {
		t.outBuf[r] = t.outBuf[r][:0]
	} else {
		t.outBuf[r] = nil // sent slice now belongs to the network
	}
	var size int64
	for _, p := range pairs {
		size += int64(t.job.Ops.PairSize(p))
	}
	t.e.m.Add(metrics.ShuffleBytes, size)
	if t.run.workerOfPhasePair(t.phase, r) != t.worker {
		t.e.m.Add(metrics.ShuffleRemote, size)
	}
	t.seq++
	t.send(t.redAddrs[r], kindShuffle, shuffleChunk{
		Gen: t.gen, Iter: iter, FromMap: t.idx, Seq: t.seq, Pairs: pairs, End: end,
	}, size)
}

// flushEnds sends every reduce its remaining pairs with the
// end-of-iteration marker (the maps→reduce barrier signal).
func (t *mapTask) flushEnds(iter int) {
	for r := 0; r < t.numReduce; r++ {
		t.sendShuffle(iter, r, true)
	}
}

package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// restartEngine builds a second engine over the same DFS, metrics, and
// spec — the cold-restart scenario: the process died, the DFS survived.
func restartEngine(t *testing.T, v *env, opts Options) *Engine {
	t.Helper()
	if opts.Timeout == 0 {
		opts.Timeout = 20 * time.Second
	}
	e, err := NewEngine(v.fs, transport.NewChanNetwork(), v.spec, v.m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// killAfterManifest kills the run as soon as a manifest for iter (or
// later) is durable, so Resume is guaranteed a checkpoint to restart
// from. Returns a channel closed once the kill landed (or gave up).
func killAfterManifest(v *env, jobName string, iter int) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.After(10 * time.Second)
		for {
			select {
			case <-deadline:
				return
			default:
			}
			committed := false
			for _, p := range v.fs.List(fmt.Sprintf("/_imr/%s/", jobName)) {
				if it, ok := manifestIter(jobName, p); ok && it >= iter {
					committed = true
					break
				}
			}
			if committed {
				if v.e.Kill() == nil {
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	return done
}

// TestKillAndResumeBitIdentical is the headline recovery contract: the
// whole engine (master and every worker task) dies mid-run after a
// durable checkpoint, a fresh engine over the surviving DFS resumes,
// and the final output is bit-identical to an uninterrupted run.
func TestKillAndResumeBitIdentical(t *testing.T) {
	const (
		maxIter = 16
		ckpt    = 2
		keys    = 24
	)

	// Reference: same job on an untouched cluster.
	ref := newEnv(t, 3, Options{})
	ref.writeState(t, "/state", keys)
	refRes, err := ref.e.Run(slowHalvingJob("halve-kill", maxIter, ckpt))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.readOutput(t, refRes.OutputPath)
	if len(want) != keys {
		t.Fatalf("reference output has %d keys", len(want))
	}

	// Chaos cluster: kill once checkpoint 6 is durable.
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", keys)
	killed := killAfterManifest(v, "halve-kill", 6)
	_, err = v.e.Run(slowHalvingJob("halve-kill", maxIter, ckpt))
	<-killed
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("killed run error = %v, want ErrKilled", err)
	}
	if parts := v.fs.List(refRes.OutputPath + "/"); len(parts) != 0 {
		t.Fatalf("killed run wrote final output: %v", parts)
	}

	// Cold restart: fresh engine, same DFS, same job definition.
	e2 := restartEngine(t, v, Options{})
	res, err := e2.Resume(slowHalvingJob("halve-kill", maxIter, ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != maxIter {
		t.Fatalf("resumed iterations = %d, want %d", res.Iterations, maxIter)
	}
	if len(res.PerIter) == 0 || res.PerIter[0].Iter < 7 {
		t.Fatalf("resume replayed from iteration %d, want >= 7 (checkpoint 6 was durable)", res.PerIter[0].Iter)
	}
	if got := v.m.Get(metrics.RunsResumed); got != 1 {
		t.Fatalf("runs.resumed = %d, want 1", got)
	}
	out := v.readOutput(t, res.OutputPath)
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("resumed output differs from uninterrupted run:\n got %v\nwant %v", out, want)
	}
}

// TestResumeVerifiesManifest covers the refusal paths: no durable
// manifest at all, and a manifest written by a different job
// definition (configuration fingerprint mismatch).
func TestResumeVerifiesManifest(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 12)

	// Nothing checkpointed yet: resume must refuse, not run from scratch.
	if _, err := v.e.Resume(halvingJob("halve-fp", 6, 0)); err == nil {
		t.Fatal("Resume with no manifest succeeded")
	}

	job := halvingJob("halve-fp", 6, 0)
	job.CheckpointEvery = 2
	if _, err := v.e.Run(job); err != nil {
		t.Fatal(err)
	}

	// The completed run's last manifest is still durable; resuming with
	// a structurally different job must be rejected outright.
	alt := halvingJob("halve-fp", 9, 0)
	alt.CheckpointEvery = 2
	e2 := restartEngine(t, v, Options{})
	_, err := e2.Resume(alt)
	if err == nil || !strings.Contains(err.Error(), "different job definition") {
		t.Fatalf("mismatched resume error = %v, want fingerprint rejection", err)
	}
}

// TestStaleGenCheckpointNotCommitted forces the interleaving where a
// checkpoint write is still in flight when a worker failure rolls the
// job back: the write must be abandoned (no file commit, no ckptMsg
// under the new generation), never reported as the new generation's
// progress.
func TestStaleGenCheckpointNotCommitted(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 24)
	const maxIter = 12
	job := slowHalvingJob("halve-stale", maxIter, 1)

	// The hook freezes part-0's first iteration-1 checkpoint write. It
	// is released only when the *re-issued* write for the same part
	// arrives — which can only happen after the rollback landed on the
	// task and iteration 1 re-ran, so the stale writer is guaranteed to
	// observe the new generation.
	var once sync.Once
	release := make(chan struct{})
	frozen := make(chan struct{})
	var seen atomic.Bool
	v.fs.SetWriteHook(func(path string) error {
		if !strings.Contains(path, "/ckpt-000001/part-0.tmp-g") {
			return nil
		}
		if seen.CompareAndSwap(false, true) {
			close(frozen)
			<-release
			return nil
		}
		once.Do(func() { close(release) })
		return nil
	})

	failed := make(chan struct{})
	go func() {
		defer close(failed)
		<-frozen
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-deadline:
				return
			default:
			}
			if err := v.e.FailWorker("worker-1"); err == nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Watchdog: if the failure never lands (run raced to completion),
	// unfreeze the writer so teardown's checkpoint join can't deadlock;
	// the stale-count assertion below then reports the real problem.
	// testDone cancels the watchdog so it doesn't outlive the test.
	testDone := make(chan struct{})
	defer close(testDone)
	go func() {
		<-failed
		select {
		case <-time.After(10 * time.Second):
			once.Do(func() { close(release) })
		case <-testDone:
		}
	}()

	res, err := v.e.Run(job)
	<-failed
	if err != nil {
		t.Fatal(err)
	}
	if got := v.m.Get(metrics.CheckpointsStale); got < 1 {
		t.Fatalf("checkpoints.stale = %d, want >= 1 (stale writer was not abandoned)", got)
	}
	out := v.readOutput(t, res.OutputPath)
	wantVal := math.Pow(2, -maxIter)
	for k, val := range out {
		if val.(float64) != wantVal {
			t.Fatalf("key %d = %v, want %v", k, val, wantVal)
		}
	}
	if len(out) != 24 {
		t.Fatalf("output keys = %d, want 24", len(out))
	}
}

// TestCheckpointWriteFailureRetries injects transient DFS write
// failures into checkpoint commits: the task must retry with
// re-placement rather than abort the whole run.
func TestCheckpointWriteFailureRetries(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 24)
	const maxIter = 6

	var fails atomic.Int32
	v.fs.SetWriteHook(func(path string) error {
		if strings.Contains(path, ".tmp-g") && fails.Add(1) <= 2 {
			return errors.New("injected transient write failure")
		}
		return nil
	})

	res, err := v.e.Run(slowHalvingJob("halve-retry", maxIter, 2))
	if err != nil {
		t.Fatalf("transient checkpoint failure aborted the run: %v", err)
	}
	if got := v.m.Get(metrics.CheckpointRetries); got < 2 {
		t.Fatalf("checkpoints.retries = %d, want >= 2", got)
	}
	if got := v.m.Get(metrics.Checkpoints); got < 1 {
		t.Fatalf("checkpoints.written = %d, want >= 1", got)
	}
	out := v.readOutput(t, res.OutputPath)
	wantVal := math.Pow(2, -maxIter)
	for k, val := range out {
		if val.(float64) != wantVal {
			t.Fatalf("key %d = %v, want %v", k, val, wantVal)
		}
	}
}

// TestCheckpointGC: superseded checkpoints and manifests are deleted as
// newer ones become durable; only the newest generation (and at most
// the final racing one) survive the run.
func TestCheckpointGC(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 12)
	job := halvingJob("halve-gc", 8, 0)
	job.CheckpointEvery = 2
	if _, err := v.e.Run(job); err != nil {
		t.Fatal(err)
	}

	if got := v.m.Get(metrics.CheckpointsGCed); got < 1 {
		t.Fatalf("checkpoints.gced = %d, want >= 1", got)
	}
	iters := map[int]bool{}
	for _, p := range v.fs.List("/_imr/halve-gc/ckpt-") {
		var it, part int
		if _, err := fmt.Sscanf(p, "/_imr/halve-gc/ckpt-%06d/part-%d", &it, &part); err != nil {
			t.Fatalf("unparseable checkpoint path %q", p)
		}
		iters[it] = true
	}
	for _, p := range v.fs.List("/_imr/halve-gc/" + manifestPrefix) {
		if it, ok := manifestIter("halve-gc", p); ok {
			iters[it] = true
		}
	}
	if len(iters) == 0 || len(iters) > 2 {
		t.Fatalf("surviving checkpoint iterations = %v, want 1 or 2 newest", iters)
	}
	for it := range iters {
		if it < 6 {
			t.Fatalf("superseded checkpoint iteration %d not collected (survivors %v)", it, iters)
		}
	}
}

// TestFailNodeDuringCheckpointWrite: a DFS datanode dies while a
// checkpoint write to it is in flight. The write must land on the
// surviving nodes and the run must complete; re-replication heals the
// lost replicas concurrently.
func TestFailNodeDuringCheckpointWrite(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 24)
	const maxIter = 8

	var seen atomic.Bool
	frozen := make(chan struct{})
	release := make(chan struct{})
	v.fs.SetWriteHook(func(path string) error {
		if strings.Contains(path, ".tmp-g") && seen.CompareAndSwap(false, true) {
			close(frozen)
			<-release
		}
		return nil
	})
	go func() {
		<-frozen
		v.fs.FailNode("worker-0")
		time.Sleep(5 * time.Millisecond)
		close(release)
	}()

	res, err := v.e.Run(slowHalvingJob("halve-dfsfail", maxIter, 2))
	if err != nil {
		t.Fatalf("datanode loss during checkpoint write aborted the run: %v", err)
	}
	if got := v.m.Get(metrics.Checkpoints); got < 1 {
		t.Fatalf("checkpoints.written = %d, want >= 1", got)
	}
	out := v.readOutput(t, res.OutputPath)
	wantVal := math.Pow(2, -maxIter)
	for k, val := range out {
		if val.(float64) != wantVal {
			t.Fatalf("key %d = %v, want %v", k, val, wantVal)
		}
	}
}

// TestFreshRunClearsStaleCheckpoints: a non-resume run under a name
// that has old checkpoints must wipe them, so a later Resume can never
// restart from a previous job's state.
func TestFreshRunClearsStaleCheckpoints(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 12)

	// Plant a fake durable-looking manifest from a "previous" run.
	if err := v.fs.WriteFile(manifestPath("halve-fresh", 99), v.spec.IDs()[0],
		[]kv.Pair{{Key: "manifest", Value: "{}"}}, manifestOps); err != nil {
		t.Fatal(err)
	}
	job := halvingJob("halve-fresh", 4, 0)
	if _, err := v.e.Run(job); err != nil {
		t.Fatal(err)
	}
	if v.fs.Exists(manifestPath("halve-fresh", 99)) {
		t.Fatal("stale manifest from a previous run survived a fresh start")
	}
}

// TestChanEndpointReuseAfterRestart: a second engine over the same
// transport addresses must be able to re-open them — endpoint names
// are freed on close (regression guard for the restart path when the
// network, unlike the process, survives).
func TestChanEndpointReuseAfterRestart(t *testing.T) {
	net := transport.NewChanNetwork()
	ep, err := net.Endpoint("worker-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	ep2, err := net.Endpoint("worker-0")
	if err != nil {
		t.Fatalf("re-open after close failed: %v", err)
	}
	ep2.Close()
}

package core_test

import (
	"fmt"
	"sort"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// ExampleEngine_Run computes, for every node of a tiny ring, the sum of
// its own value and its successor's value, iterated twice — showing the
// full lifecycle: cluster, DFS inputs, job, run, output.
func ExampleEngine_Run() {
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.DefaultConfig(), spec.IDs(), m)
	engine, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, core.Options{})
	if err != nil {
		panic(err)
	}

	ops := kv.OpsFor[int64, float64](nil)
	// Static: each node's successor on a ring of 4. State: node values.
	static := []kv.Pair{
		{Key: int64(0), Value: int64(1)}, {Key: int64(1), Value: int64(2)},
		{Key: int64(2), Value: int64(3)}, {Key: int64(3), Value: int64(0)},
	}
	state := []kv.Pair{
		{Key: int64(0), Value: 1.0}, {Key: int64(1), Value: 2.0},
		{Key: int64(2), Value: 3.0}, {Key: int64(3), Value: 4.0},
	}
	if err := fs.WriteFile("/succ", "worker-0", static, kv.OpsFor[int64, int64](nil)); err != nil {
		panic(err)
	}
	if err := fs.WriteFile("/vals", "worker-0", state, ops); err != nil {
		panic(err)
	}

	job := &core.Job{
		Name:       "ring-sum",
		StatePath:  "/vals",
		StaticPath: "/succ",
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)            // keep own value
			emit(static.(int64), state) // and send it to the successor
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			var sum float64
			for _, s := range states {
				sum += s.(float64)
			}
			return sum, nil
		},
		MaxIter: 2,
		Ops:     ops,
	}
	res, err := engine.Run(job)
	if err != nil {
		panic(err)
	}

	var keys []int64
	out := map[int64]float64{}
	for _, part := range fs.List(res.OutputPath + "/") {
		recs, _ := fs.ReadFile(part, "worker-0")
		for _, r := range recs {
			out[r.Key.(int64)] = r.Value.(float64)
			keys = append(keys, r.Key.(int64))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("node %d: %g\n", k, out[k])
	}
	// Each iteration: new[v] = old[v] + old[predecessor of v].
	// [1 2 3 4] -> [5 3 5 7] -> [12 8 8 12].
	fmt.Println("iterations:", res.Iterations)

	// Output:
	// node 0: 12
	// node 1: 8
	// node 2: 8
	// node 3: 12
	// iterations: 2
}

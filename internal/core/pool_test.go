package core

import (
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

var errBoom = errors.New("boom")

func TestShardRangeCoversExactly(t *testing.T) {
	for _, n := range []int{1, 2, 127, 128, 256, 257, 1000, 4096} {
		for shards := 1; shards <= 7; shards++ {
			prev := 0
			for i := 0; i < shards; i++ {
				lo, hi := shardRange(n, shards, i)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d shards=%d shard %d: range [%d,%d) after %d", n, shards, i, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: ranges cover %d", n, shards, prev)
			}
		}
	}
}

func TestShardsForThresholds(t *testing.T) {
	p := newWorkerPool(4)
	defer func() { p.close(); p.join() }()
	if got := p.shardsFor(parallelMinPairs - 1); got != 1 {
		t.Fatalf("below min: %d shards", got)
	}
	if got := p.shardsFor(parallelMinPairs); got < 2 {
		t.Fatalf("at min: %d shards", got)
	}
	if got := p.shardsFor(1 << 20); got != 4 {
		t.Fatalf("huge input: %d shards, want parallelism cap 4", got)
	}
	var nilPool *workerPool
	if got := nilPool.shardsFor(1 << 20); got != 1 {
		t.Fatalf("nil pool: %d shards", got)
	}
	serial := newWorkerPool(1)
	defer func() { serial.close(); serial.join() }()
	if got := serial.shardsFor(1 << 20); got != 1 {
		t.Fatalf("parallelism 1: %d shards", got)
	}
}

// TestRunShardsAfterClose pins the straggler contract: a task that
// submits shards after run teardown closed the pool still executes every
// shard (inline), rather than deadlocking or panicking.
func TestRunShardsAfterClose(t *testing.T) {
	p := newWorkerPool(4)
	p.close()
	p.join()
	var ran atomic.Int64
	p.runShards(4, func(int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("ran %d shards after close, want 4", ran.Load())
	}
	p.close() // idempotent
}

func TestRunShardsExecutesEveryShardOnce(t *testing.T) {
	p := newWorkerPool(4)
	defer func() { p.close(); p.join() }()
	for trial := 0; trial < 50; trial++ {
		counts := make([]atomic.Int64, 8)
		p.runShards(8, func(sh int) { counts[sh].Add(1) })
		for sh := range counts {
			if counts[sh].Load() != 1 {
				t.Fatalf("trial %d: shard %d ran %d times", trial, sh, counts[sh].Load())
			}
		}
	}
}

// TestParallelismMatchesSerial runs the same job serially and with
// intra-task parallelism forced on, over inputs big enough to shard both
// the map and the reduce loops, and requires identical results — the
// ordering guarantee sharded execution promises.
func TestParallelismMatchesSerial(t *testing.T) {
	const n = 2000 // >> parallelMinPairs with NumTasks 1
	run := func(parallelism int) (map[int64]any, int) {
		v := newEnv(t, 2, Options{Parallelism: parallelism})
		v.writeState(t, "/state", n)
		job := halvingJob("par-eq", 4, 0)
		job.NumTasks = 1
		res, err := v.e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return v.readOutput(t, res.OutputPath), res.Iterations
	}
	serialOut, serialIters := run(1)
	parOut, parIters := run(4)
	if serialIters != parIters {
		t.Fatalf("iterations: serial %d, parallel %d", serialIters, parIters)
	}
	if len(serialOut) != n || !reflect.DeepEqual(serialOut, parOut) {
		t.Fatalf("parallel output diverges from serial (%d vs %d records)", len(parOut), len(serialOut))
	}
	for k, val := range parOut {
		if got := val.(float64); math.Abs(got-1.0/16) > 1e-12 {
			t.Fatalf("key %d = %v, want 1/16", k, got)
		}
	}
}

// TestParallelReduceErrorSurfaces checks that a user reduce error from a
// pool shard still aborts the run with the key in the message.
func TestParallelReduceErrorSurfaces(t *testing.T) {
	v := newEnv(t, 2, Options{Parallelism: 4})
	v.writeState(t, "/state", 1000)
	job := halvingJob("par-err", 4, 0)
	job.NumTasks = 1
	orig := job.Reduce
	job.Reduce = func(key any, states []any) (any, error) {
		if key.(int64) == 617 {
			return nil, errBoom
		}
		return orig(key, states)
	}
	if _, err := v.e.Run(job); err == nil {
		t.Fatal("run succeeded despite reduce error")
	}
}

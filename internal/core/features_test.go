package core

import (
	"math"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

// TestOneToAllBroadcast runs a miniature K-means (1-D, two well-separated
// clusters) through the broadcast path: reduce output (centroids) is
// broadcast to every map task; maps assign their static points to the
// nearest centroid.
func TestOneToAllBroadcast(t *testing.T) {
	v := newEnv(t, 3, Options{})
	// Static: 20 points at 0..9 and 100..109. State: centroids 1 and 101.
	var points []kv.Pair
	for i := 0; i < 10; i++ {
		points = append(points, kv.Pair{Key: int64(i), Value: float64(i)})
		points = append(points, kv.Pair{Key: int64(100 + i), Value: float64(100 + i)})
	}
	if err := v.fs.WriteFile("/km/points", "worker-0", points, f64Ops()); err != nil {
		t.Fatal(err)
	}
	cents := []kv.Pair{{Key: int64(0), Value: 1.0}, {Key: int64(1), Value: 101.0}}
	if err := v.fs.WriteFile("/km/cents", "worker-0", cents, f64Ops()); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:       "mini-kmeans",
		StatePath:  "/km/cents",
		StaticPath: "/km/points",
		Mapping:    OneToAll,
		Map: func(key, state, static any, emit kv.Emit) error {
			coord := static.(float64)
			best, bestD := int64(-1), math.MaxFloat64
			for _, c := range state.([]kv.Pair) {
				if d := math.Abs(c.Value.(float64) - coord); d < bestD {
					best, bestD = c.Key.(int64), d
				}
			}
			emit(best, coord)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			var sum float64
			for _, s := range states {
				sum += s.(float64)
			}
			return sum / float64(len(states)), nil
		},
		MaxIter: 5,
		Ops:     f64Ops(),
	}
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 2 {
		t.Fatalf("got %d centroids", len(out))
	}
	if math.Abs(out[0].(float64)-4.5) > 1e-9 || math.Abs(out[1].(float64)-104.5) > 1e-9 {
		t.Fatalf("centroids: %v", out)
	}
	// Broadcast means reduce output crossed workers.
	if v.m.Get(metrics.StateRemote) == 0 {
		t.Fatal("broadcast produced no cross-worker state traffic")
	}
}

// TestMultiPhase chains two map-reduce phases per iteration (x → 2x+1)
// via AddSuccessor, the paper's matrix-power structure.
func TestMultiPhase(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 12)
	identityMap := func(key, state, static any, emit kv.Emit) error {
		emit(key, state)
		return nil
	}
	phase1 := &Job{
		Name: "affine", StatePath: "/state",
		Map: identityMap,
		Reduce: func(key any, states []any) (any, error) {
			return states[0].(float64) * 2, nil
		},
		Ops: f64Ops(),
	}
	phase2 := &Job{
		Name: "affine-p2",
		Map:  identityMap,
		Reduce: func(key any, states []any) (any, error) {
			return states[0].(float64) + 1, nil
		},
		MaxIter: 3,
		Ops:     f64Ops(),
	}
	phase1.AddSuccessor(phase2)
	res, err := v.e.Run(phase1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	// x=1: 1→3→7→15.
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 12 {
		t.Fatalf("%d outputs", len(out))
	}
	for k, val := range out {
		if math.Abs(val.(float64)-15) > 1e-12 {
			t.Fatalf("key %d = %v, want 15", k, val)
		}
	}
}

// TestMultiPhaseBothStatics joins static data at both phases: phase 1
// multiplies by a per-key factor, phase 2 adds a per-key offset.
func TestMultiPhaseBothStatics(t *testing.T) {
	v := newEnv(t, 2, Options{})
	const n = 10
	v.writeState(t, "/state", n)
	factors := make([]kv.Pair, n)
	offsets := make([]kv.Pair, n)
	for i := 0; i < n; i++ {
		factors[i] = kv.Pair{Key: int64(i), Value: 2.0}
		offsets[i] = kv.Pair{Key: int64(i), Value: float64(i)}
	}
	if err := v.fs.WriteFile("/factors", "worker-0", factors, f64Ops()); err != nil {
		t.Fatal(err)
	}
	if err := v.fs.WriteFile("/offsets", "worker-0", offsets, f64Ops()); err != nil {
		t.Fatal(err)
	}
	p1 := &Job{
		Name: "both-statics", StatePath: "/state", StaticPath: "/factors",
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state.(float64)*static.(float64))
			return nil
		},
		Reduce: func(key any, states []any) (any, error) { return states[0], nil },
		Ops:    f64Ops(),
	}
	p2 := &Job{
		Name: "both-statics-p2", StaticPath: "/offsets",
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state.(float64)+static.(float64))
			return nil
		},
		Reduce:  func(key any, states []any) (any, error) { return states[0], nil },
		MaxIter: 3,
		Ops:     f64Ops(),
	}
	p1.AddSuccessor(p2)
	res, err := v.e.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	out := v.readOutput(t, res.OutputPath)
	for i := 0; i < n; i++ {
		// x -> 2x + i, three times from 1: ((1*2+i)*2+i)*2+i = 8 + 7i.
		want := 8 + 7*float64(i)
		if got := out[int64(i)].(float64); math.Abs(got-want) > 1e-12 {
			t.Fatalf("key %d = %v, want %v", i, got, want)
		}
	}
}

// TestAuxiliaryPhase terminates an unbounded halving job through an
// auxiliary phase that watches the state magnitude (§5.3).
func TestAuxiliaryPhase(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 6)
	main := halvingJob("halve-aux", 0, 0) // no built-in termination
	aux := &Job{
		Name: "halve-aux-watch",
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			return states[0], nil
		},
		Ops: f64Ops(),
	}
	main.AddAuxiliary(aux)
	main.AuxDecide = func(iter int, outputs []kv.Pair) bool {
		for _, p := range outputs {
			if p.Value.(float64) >= 0.1 {
				return false
			}
		}
		return true
	}
	res, err := v.e.Run(main)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("aux decision did not mark convergence")
	}
	// 2^-4 = 0.0625 < 0.1: decidable at iteration 4; applied at the next
	// boundary, so allow a small overshoot but not a runaway.
	if res.Iterations < 4 || res.Iterations > 8 {
		t.Fatalf("iterations = %d, want 4..8", res.Iterations)
	}
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		want := math.Pow(2, -float64(res.Iterations))
		if math.Abs(val.(float64)-want) > 1e-12 {
			t.Fatalf("key %d = %v, want %v", k, val, want)
		}
	}
}

// TestAuxiliaryWithMultiPhase attaches a convergence watcher to a
// two-phase chain: the aux phase is fed by the FINAL phase's reduce.
func TestAuxiliaryWithMultiPhase(t *testing.T) {
	spec := cluster.Uniform(2)
	spec.MapSlots, spec.ReduceSlots = 3, 3 // two phases + the aux pair
	v := newEnvSpec(t, spec, Options{})
	v.writeState(t, "/state", 8)
	id := func(key, state, static any, emit kv.Emit) error {
		emit(key, state)
		return nil
	}
	p1 := &Job{Name: "aux-mp", StatePath: "/state", Map: id,
		Reduce: func(key any, states []any) (any, error) { return states[0].(float64) / 2, nil },
		Ops:    f64Ops()}
	p2 := &Job{Name: "aux-mp2", Map: id,
		Reduce: func(key any, states []any) (any, error) { return states[0].(float64) / 2, nil },
		Ops:    f64Ops()}
	p1.AddSuccessor(p2)
	aux := &Job{Name: "aux-mp-watch", Map: id,
		Reduce: func(key any, states []any) (any, error) { return states[0], nil },
		Ops:    f64Ops()}
	p1.AddAuxiliary(aux)
	p1.AuxDecide = func(iter int, outputs []kv.Pair) bool {
		for _, p := range outputs {
			if p.Value.(float64) >= 0.01 {
				return false
			}
		}
		return true
	}
	res, err := v.e.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("aux never stopped the chain")
	}
	// Each iteration quarters the value; 4^-k < 0.01 at k=4.
	if res.Iterations < 4 || res.Iterations > 8 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	out := v.readOutput(t, res.OutputPath)
	want := math.Pow(4, -float64(res.Iterations))
	for k, val := range out {
		if math.Abs(val.(float64)-want) > 1e-15 {
			t.Fatalf("key %d = %v, want %v", k, val, want)
		}
	}
}

// TestMigrationDuringMultiPhase runs load balancing on a two-phase job
// with a slow worker: the whole pair (both phases) must migrate and the
// result must stay exact.
func TestMigrationDuringMultiPhase(t *testing.T) {
	spec := cluster.Heterogeneous([]float64{1, 0.05, 1, 1})
	v := newEnvSpec(t, spec, Options{LoadBalance: true, LBThreshold: 0.5, LBMinIter: 3})
	v.writeState(t, "/state", 24)
	id := func(key, state, static any, emit kv.Emit) error {
		emit(key, state)
		return nil
	}
	p1 := &Job{Name: "mig-mp", StatePath: "/state", Map: id,
		Reduce: func(key any, states []any) (any, error) { return states[0].(float64) * 2, nil },
		Ops:    f64Ops()}
	p2 := &Job{Name: "mig-mp2", Map: id,
		Reduce: func(key any, states []any) (any, error) {
			time.Sleep(400 * time.Microsecond)
			return states[0].(float64) + 1, nil
		},
		MaxIter: 10, CheckpointEvery: 2, Ops: f64Ops()}
	p1.AddSuccessor(p2)
	res, err := v.e.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("no migration despite 20x-slow worker")
	}
	// x -> 2x+1, ten times from 1: 2^10 + (2^10 - 1) = 2047.
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		if math.Abs(val.(float64)-2047) > 1e-9 {
			t.Fatalf("key %d = %v, want 2047", k, val)
		}
	}
}

// TestAuxMissingDecide rejects an auxiliary phase without AuxDecide.
func TestAuxMissingDecide(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 4)
	main := halvingJob("aux-bad", 3, 0)
	main.AddAuxiliary(halvingJob("aux-watch", 0, 0))
	if _, err := v.e.Run(main); err == nil {
		t.Fatal("expected error")
	}
}

// slowHalvingJob paces iterations so a failure can be injected mid-run.
func slowHalvingJob(name string, maxIter int, ckptEvery int) *Job {
	j := halvingJob(name, maxIter, 0)
	j.CheckpointEvery = ckptEvery
	base := j.Reduce
	j.Reduce = func(key any, states []any) (any, error) {
		time.Sleep(500 * time.Microsecond)
		return base(key, states)
	}
	return j
}

func TestWorkerFailureRecovery(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 24)
	job := slowHalvingJob("halve-fail", 10, 2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-deadline:
				return
			default:
			}
			if err := v.e.FailWorker("worker-1"); err == nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	res, err := v.e.Run(job)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Recoveries)
	}
	if res.Iterations != 10 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 24 {
		t.Fatalf("%d outputs survived the failure", len(out))
	}
	for k, val := range out {
		if math.Abs(val.(float64)-math.Pow(2, -10)) > 1e-15 {
			t.Fatalf("key %d = %v after recovery", k, val)
		}
	}
	if v.m.Get(metrics.Checkpoints) == 0 {
		t.Fatal("no checkpoints written")
	}
}

func TestFailWorkerWithoutRun(t *testing.T) {
	v := newEnv(t, 2, Options{})
	if err := v.e.FailWorker("worker-0"); err == nil {
		t.Fatal("expected error with no active run")
	}
}

func TestLoadBalancingMigration(t *testing.T) {
	// worker-1 runs at 1/20 speed; with load balancing on, its pair
	// should migrate to a fast worker and the run should still be exact.
	spec := cluster.Heterogeneous([]float64{1, 0.05, 1, 1})
	v := newEnvSpec(t, spec, Options{LoadBalance: true, LBThreshold: 0.5, LBMinIter: 3})
	v.writeState(t, "/state", 40)
	job := slowHalvingJob("halve-lb", 8, 2)
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("no migration despite 20x slow worker")
	}
	if v.m.Get(metrics.TaskMigrations) != int64(res.Migrations) {
		t.Fatal("migration metric mismatch")
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 40 {
		t.Fatalf("%d outputs", len(out))
	}
	for k, val := range out {
		if math.Abs(val.(float64)-math.Pow(2, -8)) > 1e-15 {
			t.Fatalf("key %d = %v after migration", k, val)
		}
	}
}

// TestConfinedLoadBalancing: a pair that is slow because its partition
// is skewed (not because its worker is) must stop migrating after
// MaxPairMigrations moves (§3.4.2's confinement).
func TestConfinedLoadBalancing(t *testing.T) {
	v := newEnvSpec(t, cluster.Uniform(4), Options{LoadBalance: true, LBThreshold: 0.5, LBMinIter: 3})
	v.writeState(t, "/state", 40)
	job := halvingJob("halve-confined", 14, 0)
	job.CheckpointEvery = 2
	ops := f64Ops()
	base := job.Reduce
	job.Reduce = func(key any, states []any) (any, error) {
		if ops.Partition(key, 4) == 0 {
			time.Sleep(2 * time.Millisecond) // partition 0 is heavy wherever it runs
		}
		return base(key, states)
	}
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations > MaxPairMigrations {
		t.Fatalf("skewed pair migrated %d times, cap is %d", res.Migrations, MaxPairMigrations)
	}
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		if math.Abs(val.(float64)-math.Pow(2, -14)) > 1e-15 {
			t.Fatalf("key %d = %v after confinement", k, val)
		}
	}
}

func TestLoadBalancingOffNoMigration(t *testing.T) {
	spec := cluster.Heterogeneous([]float64{1, 0.05, 1, 1})
	v := newEnvSpec(t, spec, Options{LoadBalance: false})
	v.writeState(t, "/state", 40)
	job := slowHalvingJob("halve-nolb", 5, 2)
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatal("migration happened with load balancing off")
	}
}

func TestConcurrentRunRejected(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 10)
	job := slowHalvingJob("halve-conc", 20, 0)
	errc := make(chan error, 1)
	go func() {
		_, err := v.e.Run(job)
		errc <- err
	}()
	// Wait for the first run to become active, then a second Run must
	// be rejected immediately.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("first run never became active")
		default:
		}
		if err := v.e.FailWorker("nonexistent"); err == nil {
			break // active master exists
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := v.e.Run(halvingJob("second", 1, 0)); err == nil {
		t.Fatal("concurrent run accepted")
	}
	if err := <-errc; err != nil {
		t.Fatalf("first run failed: %v", err)
	}
}

func TestPhasesChain(t *testing.T) {
	a := &Job{Name: "a"}
	b := &Job{Name: "b"}
	c := &Job{Name: "c"}
	a.AddSuccessor(b)
	b.AddSuccessor(c)
	ph := a.Phases()
	if len(ph) != 3 || ph[0] != a || ph[2] != c {
		t.Fatalf("phases: %v", ph)
	}
	// Cycle protection.
	c.AddSuccessor(a)
	defer func() {
		if recover() == nil {
			t.Fatal("cyclic chain should panic")
		}
	}()
	a.Phases()
}

func TestMappingString(t *testing.T) {
	if OneToOne.String() != "one2one" || OneToAll.String() != "one2all" {
		t.Fatal("mapping names")
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
)

// The checkpoint commit protocol (DESIGN.md §9): each CheckpointEvery
// boundary writes one checkpoint file per partition, then the master
// commits a small *manifest* describing the durable cut — job identity,
// a fingerprint of the job configuration, the phase layout, the
// iteration, and each partition file with its size and CRC. Both the
// partition files and the manifest go through write-temp-then-rename, so
// a crash at any instant leaves either the previous complete checkpoint
// or the new complete one, never a torn state. A cold restart (Resume)
// scans the manifests, verifies the newest complete one, and continues
// from its iteration.

// manifest is the durable record of one committed checkpoint. It is
// stored JSON-encoded as a one-record DFS file so it survives engine
// death, spills cleanly, and stays human-readable in dumps.
type manifest struct {
	Job         string
	Fingerprint uint64
	Iter        int
	Phases      int
	Tasks       int
	AuxTasks    int
	// Placement is the worker binding of each main task pair at commit
	// time; Resume adopts it so partitions land where their static data
	// already is.
	Placement    []string
	AuxPlacement []string
	Parts        []manifestPart
}

// manifestPart describes one partition's checkpoint file.
type manifestPart struct {
	Path    string
	Bytes   int64
	Records int
	CRC     uint32
}

// manifestOps sizes the single string record a manifest file holds.
var manifestOps = kv.OpsFor[string, string](nil)

func manifestPath(jobName string, iter int) string {
	return fmt.Sprintf("/_imr/%s/manifest-%06d", jobName, iter)
}

const manifestPrefix = "manifest-"

// manifestIter parses the iteration out of a manifest path; ok=false for
// temp files and foreign paths.
func manifestIter(jobName, path string) (int, bool) {
	prefix := "/_imr/" + jobName + "/" + manifestPrefix
	rest, found := strings.CutPrefix(path, prefix)
	if !found {
		return 0, false
	}
	it, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return it, true
}

// confFingerprint hashes the structure of the job definition — phase
// layout, data paths, termination settings, task counts, mappings — so a
// Resume against a *different* job definition is rejected instead of
// feeding mismatched checkpoints into it. User functions cannot be
// hashed; the structural fields are the detectable surface.
func confFingerprint(job *Job) uint64 {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
	}
	hashPhase := func(p *Job, tag string) {
		w(tag, p.Name, p.StatePath, p.StaticPath, p.OutputPath,
			strconv.Itoa(p.MaxIter),
			strconv.FormatFloat(p.DistThreshold, 'g', -1, 64),
			strconv.Itoa(p.NumTasks),
			p.Mapping.String(),
			strconv.FormatBool(p.SyncMap),
			strconv.Itoa(p.CheckpointEvery),
		)
	}
	for i, p := range job.Phases() {
		hashPhase(p, "phase"+strconv.Itoa(i))
	}
	if job.auxiliary != nil {
		hashPhase(job.auxiliary, "aux")
	}
	return h.Sum64()
}

// commitManifest makes checkpoint iteration iter durable: it stats and
// checksums every partition file, then writes the manifest via
// temp-then-rename. An error means the checkpoint is NOT durable (the
// master keeps the previous rollback target); the run itself continues.
func (e *Engine) commitManifest(run *runState, fp uint64, iter, phases int) error {
	m := manifest{
		Job:         run.name,
		Fingerprint: fp,
		Iter:        iter,
		Phases:      phases,
		Tasks:       run.mainTasks,
		AuxTasks:    run.auxTasks,
	}
	run.mu.RLock()
	m.Placement = append([]string(nil), run.pairWorker...)
	m.AuxPlacement = append([]string(nil), run.auxWorker...)
	run.mu.RUnlock()
	for i := 0; i < run.mainTasks; i++ {
		path := run.ckptPath(iter, i)
		st, err := e.fs.StatFile(path)
		if err != nil {
			return fmt.Errorf("core: manifest %d: %w", iter, err)
		}
		crc, err := e.fs.Checksum(path)
		if err != nil {
			return fmt.Errorf("core: manifest %d: %w", iter, err)
		}
		m.Parts = append(m.Parts, manifestPart{Path: path, Bytes: st.Bytes, Records: st.Records, CRC: crc})
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("core: manifest %d: %w", iter, err)
	}
	final := manifestPath(run.name, iter)
	tmp := final + ".tmp"
	rec := []kv.Pair{{Key: "manifest", Value: string(data)}}
	if err := e.fs.WriteFile(tmp, "", rec, manifestOps); err != nil {
		return fmt.Errorf("core: manifest %d: %w", iter, err)
	}
	if err := e.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("core: manifest %d: %w", iter, err)
	}
	e.m.Add(metrics.ManifestCommits, 1)
	e.opts.Trace.Emit(trace.KindManifest, "master", -1, iter)
	return nil
}

// loadManifest reads and decodes one manifest file.
func (e *Engine) loadManifest(path string) (*manifest, error) {
	recs, err := e.fs.ReadFile(path, "")
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("core: manifest %s: %d records, want 1", path, len(recs))
	}
	s, ok := recs[0].Value.(string)
	if !ok {
		return nil, fmt.Errorf("core: manifest %s: value is %T, want string", path, recs[0].Value)
	}
	var m manifest
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		return nil, fmt.Errorf("core: manifest %s: %w", path, err)
	}
	return &m, nil
}

// verifyManifest checks that every partition file the manifest names
// still exists with the recorded size, record count, and CRC.
func (e *Engine) verifyManifest(m *manifest) error {
	if len(m.Parts) != m.Tasks {
		return fmt.Errorf("core: manifest %d lists %d parts, want %d", m.Iter, len(m.Parts), m.Tasks)
	}
	for _, p := range m.Parts {
		st, err := e.fs.StatFile(p.Path)
		if err != nil {
			return fmt.Errorf("core: manifest %d: %w", m.Iter, err)
		}
		if st.Bytes != p.Bytes || st.Records != p.Records {
			return fmt.Errorf("core: manifest %d: %s is %d bytes / %d records, manifest says %d / %d",
				m.Iter, p.Path, st.Bytes, st.Records, p.Bytes, p.Records)
		}
		crc, err := e.fs.Checksum(p.Path)
		if err != nil {
			return fmt.Errorf("core: manifest %d: %w", m.Iter, err)
		}
		if crc != p.CRC {
			return fmt.Errorf("core: manifest %d: %s CRC %08x, manifest says %08x", m.Iter, p.Path, crc, p.CRC)
		}
	}
	return nil
}

// findManifest locates the newest complete, verifiable manifest for job
// and checks it against the submitted job definition. A fingerprint or
// layout mismatch on a readable manifest is a hard error — resuming a
// different job over these checkpoints would corrupt it silently. A
// manifest whose partition files are damaged is skipped in favor of the
// next older one (the crash may have interrupted the GC, not the
// commit).
func (e *Engine) findManifest(job *Job, n, auxN, phases int) (*manifest, error) {
	fp := confFingerprint(job)
	paths := e.fs.List("/_imr/" + job.Name + "/" + manifestPrefix)
	type cand struct {
		iter int
		path string
	}
	var cands []cand
	for _, p := range paths {
		if it, ok := manifestIter(job.Name, p); ok {
			cands = append(cands, cand{iter: it, path: p})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: job %s: no durable checkpoint manifest to resume from", job.Name)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].iter > cands[j].iter })
	var lastErr error
	for _, c := range cands {
		m, err := e.loadManifest(c.path)
		if err != nil {
			lastErr = err
			continue
		}
		if m.Fingerprint != fp {
			return nil, fmt.Errorf("core: job %s: manifest %d was written by a different job definition (fingerprint %016x, submitted job %016x)",
				job.Name, m.Iter, m.Fingerprint, fp)
		}
		if m.Tasks != n || m.AuxTasks != auxN || m.Phases != phases {
			return nil, fmt.Errorf("core: job %s: manifest %d layout %d tasks / %d aux / %d phases does not match submitted job (%d / %d / %d)",
				job.Name, m.Iter, m.Tasks, m.AuxTasks, m.Phases, n, auxN, phases)
		}
		if err := e.verifyManifest(m); err != nil {
			lastErr = err
			continue
		}
		return m, nil
	}
	return nil, fmt.Errorf("core: job %s: no verifiable checkpoint manifest: %w", job.Name, lastErr)
}

// gcCheckpoints deletes checkpoint files and manifests superseded by the
// checkpoint at keepIter — anything strictly older. Newer entries are
// left alone: they may be a checkpoint currently being committed.
func (e *Engine) gcCheckpoints(run *runState, keepIter int) {
	removed := int64(0)
	prefix := "/_imr/" + run.name + "/ckpt-"
	for _, p := range e.fs.List(prefix) {
		rest := strings.TrimPrefix(p, prefix)
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			continue
		}
		it, err := strconv.Atoi(rest[:slash])
		if err != nil || it >= keepIter {
			continue
		}
		e.fs.Delete(p)
		removed++
	}
	for _, p := range e.fs.List("/_imr/" + run.name + "/" + manifestPrefix) {
		if it, ok := manifestIter(run.name, p); ok && it < keepIter {
			e.fs.Delete(p)
			removed++
		}
	}
	if removed > 0 {
		e.m.Add(metrics.CheckpointsGCed, removed)
	}
}

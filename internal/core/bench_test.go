package core

import (
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// BenchmarkIterationLatency measures the per-iteration cost of the
// persistent-task loop itself (tiny state, many iterations): the floor
// that job-per-iteration scheduling would multiply.
func BenchmarkIterationLatency(b *testing.B) {
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2}, spec.IDs(), m)
	e, err := NewEngine(fs, transport.NewChanNetwork(), spec, m, Options{Timeout: 2 * time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]kv.Pair, 64)
	for i := range recs {
		recs[i] = kv.Pair{Key: int64(i), Value: 1.0}
	}
	if err := fs.WriteFile("/state", "worker-0", recs, f64Ops()); err != nil {
		b.Fatal(err)
	}
	const iters = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := halvingJob("bench-latency", iters, 0)
		res, err := e.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations != iters {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*iters)*1e6, "µs/iteration")
}

// BenchmarkShuffleThroughput measures records/second through the full
// map→shuffle→reduce→loop-back path with a fan-out workload.
func BenchmarkShuffleThroughput(b *testing.B) {
	spec := cluster.Uniform(4)
	const n, iters = 20000, 3
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := metrics.NewSet()
		fs := dfs.New(dfs.Config{BlockSize: 1 << 18, Replication: 2}, spec.IDs(), m)
		e, err := NewEngine(fs, transport.NewChanNetwork(), spec, m, Options{Timeout: 2 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		v := &env{e: e, fs: fs, m: m, spec: spec}
		job, _ := ringSetup(b, v, n)
		job.MaxIter = iters
		b.StartTimer()
		if _, err := e.Run(job); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*n*iters*b.N)/b.Elapsed().Seconds(), "records/s")
}

package core

import (
	"fmt"

	"imapreduce/internal/kv"
	"imapreduce/internal/transport"
)

// Endpoint naming: every persistent task and the master own one
// transport endpoint for the lifetime of the run.
func mapAddr(job string, phase, idx int) string { return fmt.Sprintf("%s/map/%d/%d", job, phase, idx) }
func redAddr(job string, phase, idx int) string { return fmt.Sprintf("%s/red/%d/%d", job, phase, idx) }
func masterAddr(job string) string              { return job + "/master" }

// Message kinds on the wire.
const (
	kindState   = "state"   // reduce → map (or self-load) iterated state
	kindShuffle = "shuffle" // map → reduce intermediate data
	kindReport  = "report"  // reduce → master iteration completion report
	kindAuxOut  = "auxout"  // aux reduce → master auxiliary output
	kindCkpt    = "ckpt"    // reduce → master checkpoint completion
	kindFinal   = "final"   // reduce → master final output written
	kindCmd     = "cmd"     // master → task control
	kindFail    = "fail"    // external → master worker failure injection
	kindBeat    = "beat"    // task → master periodic liveness heartbeat
)

// stateChunk carries iterated state records from a reduce task to a map
// task over the pair's persistent connection (or a broadcast copy of
// them). Gen guards against messages from before a rollback; Iter is the
// iteration the receiving map will process. From identifies the feeding
// reduce task; End marks its last chunk for this iteration. Seq is a
// per-sender monotone counter: together with From it lets the receiver
// discard network-duplicated chunks, so data flows stay correct over
// at-least-once transports.
type stateChunk struct {
	Gen   int
	Iter  int
	From  int
	Seq   int64
	Pairs []kv.Pair
	End   bool

	// slab is the decode arena Pairs was carved from when the chunk came
	// off the binary wire path (nil for locally-built and gob-decoded
	// chunks). Unexported, so gob and the wire encoding never see it.
	// The receiving handler owns the chunk and must release() it.
	slab *kv.Slab
}

// release recycles the chunk's decode arena, if any. Pairs (and any
// slices of it) must not be used afterwards; boxed keys and values that
// escaped into accumulators stay valid (ReleaseRetainValues). Handlers
// call this exactly once, via defer, when they are done with Pairs.
func (c stateChunk) release() {
	if c.slab != nil {
		c.slab.ReleaseRetainValues()
	}
}

// shuffleChunk carries map output to a reduce task of the same phase.
// (FromMap, Seq) deduplicates, as for stateChunk.
type shuffleChunk struct {
	Gen     int
	Iter    int
	FromMap int
	Seq     int64
	Pairs   []kv.Pair
	End     bool

	// slab: see stateChunk.slab.
	slab *kv.Slab
}

// release: see stateChunk.release.
func (c shuffleChunk) release() {
	if c.slab != nil {
		c.slab.ReleaseRetainValues()
	}
}

// reportMsg is the per-iteration completion report each termination-
// phase reduce task sends the master (§3.4.2): task id, iteration
// number, processing time — plus the local distance sum the master
// merges for the convergence test (§3.1.2).
type reportMsg struct {
	Gen          int
	Iter         int
	Task         int
	Dist         float64
	ElapsedNanos int64
	Worker       string
}

// auxOutMsg delivers an auxiliary phase's reduce output to the master.
type auxOutMsg struct {
	Gen   int
	Iter  int
	Task  int
	Pairs []kv.Pair
}

// ckptMsg acknowledges that a reduce task's checkpoint for Iter reached
// the DFS.
type ckptMsg struct {
	Gen  int
	Iter int
	Task int
}

// finalMsg acknowledges that a reduce task wrote its final output part.
type finalMsg struct {
	Task    int
	Records int
	Err     string
}

// cmdMsg is a master → task control command.
type cmdMsg struct {
	Kind string // cmdRollback | cmdTerminate | cmdReassign
	// Gen is the new generation (rollback).
	Gen int
	// ToIter is the checkpoint iteration to restart from (rollback).
	ToIter int
	// Worker is the new worker binding (reassign).
	Worker string
}

const (
	cmdRollback  = "rollback"
	cmdTerminate = "terminate"
	cmdReassign  = "reassign"
	// cmdAbort tears a task down *without* writing final output — the
	// shutdown path for canceled and killed runs. A killed run's output
	// directory must stay untouched so a later Resume restarts from the
	// durable checkpoints, not from a half-written final state.
	cmdAbort = "abort"
	// cmdGo is the second half of the rollback protocol: once every
	// task has acknowledged the reset (so no old-generation traffic can
	// be mistaken for new), the master tells the first phase's maps to
	// load the checkpointed state and start iterating.
	cmdGo = "go"
	// cmdProceed releases a gated termination reduce's held output for
	// iteration ToIter: when the job can stop at any boundary (distance
	// threshold or auxiliary decision), the loop-back waits for the
	// master's termination check so the final state is exactly the
	// decided iteration.
	cmdProceed = "proceed"
)

// rbAckMsg acknowledges a rollback reset.
type rbAckMsg struct {
	Gen   int
	Phase int
	Task  int
}

// failMsg asks the master to treat a worker as crashed.
type failMsg struct {
	Worker string
}

// heartbeatMsg is a task's periodic liveness beat (§3.4.1 extended):
// the master refreshes the deadline of the worker the task is bound to.
// A worker that stops beating for HeartbeatMisses intervals is declared
// failed through the same rollback machinery injected failures use.
type heartbeatMsg struct {
	Worker string
	Phase  int
	Task   int
}

// taskErrMsg reports a fatal user-function or I/O error from a task; the
// master aborts the run.
type taskErrMsg struct {
	Phase int
	Task  int
	Err   string
}

// Wire marshaling: the two data-plane chunk types implement
// transport.WireMarshaler so the TCP backend carries them as
// length-prefixed binary frames (header varints + kv codec pair bytes)
// instead of reflective gob. A chunk whose records hold a type with no
// registered kv codec reports ok=false and the transport falls back to
// gob for that message — correctness never depends on registration.
const (
	wireTagState   = "imr.state"
	wireTagShuffle = "imr.shuffle"
)

// appendChunkHeader encodes the common chunk header: Gen, Iter, sender
// task id, Seq, and the End flag.
func appendChunkHeader(buf []byte, gen, iter, from int, seq int64, end bool) []byte {
	buf = kv.AppendVarint(buf, int64(gen))
	buf = kv.AppendVarint(buf, int64(iter))
	buf = kv.AppendVarint(buf, int64(from))
	buf = kv.AppendVarint(buf, seq)
	e := byte(0)
	if end {
		e = 1
	}
	return append(buf, e)
}

func decodeChunkHeader(data []byte) (gen, iter, from int, seq int64, end bool, n int, err error) {
	var v int64
	var m int
	for _, dst := range []*int{&gen, &iter, &from} {
		if v, m, err = kv.Varint(data[n:]); err != nil {
			return
		}
		*dst, n = int(v), n+m
	}
	if seq, m, err = kv.Varint(data[n:]); err != nil {
		return
	}
	n += m
	if len(data) <= n {
		err = fmt.Errorf("core: truncated chunk header")
		return
	}
	end, n = data[n] != 0, n+1
	return
}

func (c stateChunk) WireTag() string { return wireTagState }

func (c stateChunk) AppendWire(buf []byte) ([]byte, bool) {
	start := len(buf)
	out, ok := kv.AppendPairs(appendChunkHeader(buf, c.Gen, c.Iter, c.From, c.Seq, c.End), c.Pairs)
	if !ok {
		return out[:start], false
	}
	return out, true
}

func (c shuffleChunk) WireTag() string { return wireTagShuffle }

func (c shuffleChunk) AppendWire(buf []byte) ([]byte, bool) {
	start := len(buf)
	out, ok := kv.AppendPairs(appendChunkHeader(buf, c.Gen, c.Iter, c.FromMap, c.Seq, c.End), c.Pairs)
	if !ok {
		return out[:start], false
	}
	return out, true
}

func decodeStateChunk(data []byte) (any, error) {
	gen, iter, from, seq, end, n, err := decodeChunkHeader(data)
	if err != nil {
		return nil, err
	}
	s := kv.AcquireSlab()
	pairs, _, err := kv.DecodePairsSlab(data[n:], s)
	if err != nil {
		s.Release()
		return nil, err
	}
	return stateChunk{Gen: gen, Iter: iter, From: from, Seq: seq, Pairs: pairs, End: end, slab: s}, nil
}

func decodeShuffleChunk(data []byte) (any, error) {
	gen, iter, from, seq, end, n, err := decodeChunkHeader(data)
	if err != nil {
		return nil, err
	}
	s := kv.AcquireSlab()
	pairs, _, err := kv.DecodePairsSlab(data[n:], s)
	if err != nil {
		s.Release()
		return nil, err
	}
	return shuffleChunk{Gen: gen, Iter: iter, FromMap: from, Seq: seq, Pairs: pairs, End: end, slab: s}, nil
}

func init() {
	transport.RegisterWireUnmarshaler(wireTagState, decodeStateChunk)
	transport.RegisterWireUnmarshaler(wireTagShuffle, decodeShuffleChunk)
	kv.RegisterWireType(stateChunk{})
	kv.RegisterWireType(shuffleChunk{})
	kv.RegisterWireType(reportMsg{})
	kv.RegisterWireType(auxOutMsg{})
	kv.RegisterWireType(ckptMsg{})
	kv.RegisterWireType(finalMsg{})
	kv.RegisterWireType(cmdMsg{})
	kv.RegisterWireType(failMsg{})
	kv.RegisterWireType(taskErrMsg{})
	kv.RegisterWireType(rbAckMsg{})
	kv.RegisterWireType(heartbeatMsg{})
}

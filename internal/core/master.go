package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
	"imapreduce/internal/transport"
)

// masterLoop is the job master (§3.1.2, §3.4): it merges per-iteration
// distance reports, decides termination, coordinates checkpoints,
// migrates task pairs off slow workers, and recovers from worker
// failures by rolling the cluster back to the last durable checkpoint.
func (e *Engine) masterLoop(ctx context.Context, job *Job, phases []*Job, aux *Job, run *runState,
	n, auxN int, master transport.Endpoint, ts *taskSet, start time.Time, resumeFrom int) (*Result, error) {

	last := phases[len(phases)-1]
	totalTasks := len(ts.all)
	fp := confFingerprint(job)

	sendCmd := func(addrs []string, c cmdMsg) {
		for _, a := range addrs {
			// Command frames drive the protocol forward; retried sends
			// keep a transient link fault from deadlocking the run.
			_ = e.sendReliable(master, a, transport.Message{Kind: kindCmd, Payload: c})
		}
	}

	gen := 1
	rbToIter := 0
	acks := 0
	ackSeen := make(map[string]bool) // dedup of rollback acks by endpoint address
	ckptLast := resumeFrom           // latest manifest-durable checkpoint
	reports := make(map[int]map[int]reportMsg)
	reportDone := make(map[int]bool) // iterations whose barrier already fired
	auxBuf := make(map[int]map[int][]kv.Pair)
	auxHandled := make(map[int]bool) // aux iterations already decided
	ckptAcks := make(map[int]map[int]bool)
	finalSeen := make(map[int]bool)
	perIter := make(map[int]IterInfo)
	live := make(map[string]bool, len(e.spec.Nodes))
	for _, w := range e.spec.IDs() {
		live[w] = true
	}

	terminated := false
	converged := false
	auxStop := false
	stopIter := 0
	finals := 0
	outputRecords := 0
	migrations, recoveries := 0, 0
	lastMigIter := 0
	// migratedCount guards against the §3.4.2 pathology: on a uniform
	// cluster a skewed partition would otherwise keep moving from
	// worker to worker. After MaxPairMigrations moves the pair is
	// confined and no longer migrated.
	migratedCount := make(map[int]int)
	// Auxiliary flow control: the loop-back for iteration k is released
	// only once the auxiliary phase has evaluated iteration k-1, so the
	// aux phase overlaps the next iteration (§5.3's parallelism) without
	// falling arbitrarily far behind the decision point.
	auxDone := 0
	pendingProceed := map[int]bool{}

	rollbackAll := func(toIter int) {
		gen++
		acks = 0
		ackSeen = make(map[string]bool)
		rbToIter = toIter
		reports = make(map[int]map[int]reportMsg)
		reportDone = make(map[int]bool)
		auxBuf = make(map[int]map[int][]kv.Pair)
		auxHandled = make(map[int]bool)
		ckptAcks = make(map[int]map[int]bool)
		pendingProceed = map[int]bool{}
		if auxDone > toIter {
			auxDone = toIter
		}
		for it := range perIter {
			if it > toIter {
				delete(perIter, it)
			}
		}
		e.opts.Trace.Emit(trace.KindRollback, "master", -1, toIter,
			trace.Attr{Key: "gen", Value: fmt.Sprint(gen)})
		sendCmd(ts.all, cmdMsg{Kind: cmdRollback, Gen: gen, ToIter: toIter})
	}

	terminate := func() {
		terminated = true
		sendCmd(ts.all, cmdMsg{Kind: cmdTerminate})
	}

	// abort is the crash/cancel shutdown: tasks exit without writing
	// final output, leaving the DFS exactly as the last durable
	// checkpoint left it — the state a Resume restarts from.
	abort := func() {
		terminated = true
		sendCmd(ts.all, cmdMsg{Kind: cmdAbort})
	}

	// leastLoaded picks the live worker hosting the fewest main pairs.
	leastLoaded := func() string {
		load := map[string]int{}
		run.mu.RLock()
		for _, w := range run.pairWorker {
			load[w]++
		}
		run.mu.RUnlock()
		best := ""
		for w := range live {
			if !live[w] {
				continue
			}
			if best == "" || load[w] < load[best] {
				best = w
			}
		}
		return best
	}

	// respawnPending tracks an in-flight remote respawn: the workers
	// whose plan acks are still owed, and when patience runs out. The
	// recovery rollback waits on it — freshly planned tasks do not exist
	// until their worker acks, and a rollback they never saw would stall
	// the generation forever.
	var respawnPending map[string]bool
	var respawnDeadline time.Time

	// failWorker is the single recovery path for crashed, hung, and
	// injected failures: mark the worker dead, re-place every pair that
	// lived on it, then roll the whole computation back to the last
	// durable checkpoint (§3.4.1). In-process, the task goroutines
	// survive "their" worker's death and are just relabeled; in remote
	// mode the pairs are respawned on their new owners via a new plan
	// epoch, and the rollback is deferred until every live worker has
	// acknowledged it. Returns a non-nil error only when no worker is
	// left to recover onto.
	failWorker := func(worker string) error {
		if !live[worker] || terminated {
			return nil
		}
		live[worker] = false
		if !anyLive(live) {
			terminate()
			return fmt.Errorf("core: job %s: all workers failed", job.Name)
		}
		e.fs.FailNode(worker)
		for i := 0; i < n; i++ {
			if run.workerOfPhasePair(0, i) == worker {
				nw := leastLoaded()
				run.setPairWorker(i, nw, false)
				if e.remote == nil {
					sendCmd(ts.byPair[i], cmdMsg{Kind: cmdReassign, Worker: nw})
				}
			}
		}
		for i := 0; i < auxN; i++ {
			if run.workerOfPhasePair(len(phases), i) == worker {
				nw := leastLoaded()
				run.setPairWorker(i, nw, true)
				if e.remote == nil {
					sendCmd(ts.auxByPair[i], cmdMsg{Kind: cmdReassign, Worker: nw})
				}
			}
		}
		recoveries++
		if e.remote != nil {
			respawnPending = e.respawnPlans(master, run, live)
			respawnDeadline = time.Now().Add(planEndpointTimeout)
			return nil
		}
		rollbackAll(ckptLast)
		return nil
	}

	// hostingWorkers lists the workers that currently host at least one
	// task pair — the set whose heartbeats matter. A live worker all of
	// whose pairs migrated away legitimately goes silent.
	hostingWorkers := func() map[string]bool {
		out := make(map[string]bool, len(live))
		run.mu.RLock()
		for _, w := range run.pairWorker {
			out[w] = true
		}
		for _, w := range run.auxWorker {
			out[w] = true
		}
		run.mu.RUnlock()
		return out
	}

	// Kick the computation off: reset everyone to the starting
	// checkpoint — iteration 0 on a fresh run, the resumed manifest's
	// iteration on a cold restart — then (on full acknowledgement) tell
	// the first phase's maps to load it.
	rollbackAll(resumeFrom)

	// Heartbeat bookkeeping: every task beats with its bound worker's
	// name; a hosting worker silent for HeartbeatMisses intervals is
	// declared failed — the detection half of §3.4.1, which the paper
	// delegates to Hadoop's heartbeat machinery.
	var beatCheck <-chan time.Time
	if e.opts.HeartbeatInterval > 0 {
		tick := time.NewTicker(e.opts.HeartbeatInterval)
		defer tick.Stop()
		beatCheck = tick.C
	}
	lastBeat := make(map[string]time.Time, len(live))
	for w := range live {
		lastBeat[w] = time.Now()
	}
	var lastSweep time.Time

	// Progress timeout, deadline-tracked: the deadline advances on every
	// received message; the timer only ever *checks* it, so a fire that
	// raced a delivered message cannot abort a healthy run (the old
	// Reset-without-drain idiom could double-fire).
	deadline := time.Now().Add(e.opts.Timeout)
	timer := time.NewTimer(e.opts.Timeout)
	defer timer.Stop()
	for {
		var msg transport.Message
		select {
		case m, ok := <-master.Recv():
			if !ok {
				return nil, fmt.Errorf("core: job %s: master endpoint closed", job.Name)
			}
			deadline = time.Now().Add(e.opts.Timeout)
			msg = m
		case <-ctx.Done():
			abort()
			return nil, fmt.Errorf("core: job %s: run canceled: %w", job.Name, context.Cause(ctx))
		case <-beatCheck:
			// Silence is only evidence if the detector was listening: a
			// sweep arriving late means this loop itself was blocked (a
			// remote respawn, slow sends) with unread beats queued in the
			// inbox. Skip one sweep so they drain; a genuinely dead worker
			// is still caught on the next timely one.
			if !lastSweep.IsZero() && time.Since(lastSweep) > 2*e.opts.HeartbeatInterval {
				lastSweep = time.Now()
				continue
			}
			lastSweep = time.Now()
			limit := time.Duration(e.opts.HeartbeatMisses) * e.opts.HeartbeatInterval
			hosting := hostingWorkers()
			// A rollback in flight commands every task into a blocking
			// checkpoint reload, during which none of them can reach their
			// beat ticker — that silence is expected, not evidence of
			// death. Staleness detection resumes once the generation is
			// fully acknowledged; a quiesce that never completes is caught
			// by the progress timeout instead.
			quiescing := acks < totalTasks
			for w := range hosting {
				if !quiescing && live[w] && time.Since(lastBeat[w]) > limit {
					e.m.Add(metrics.FailuresDetected, 1)
					if err := failWorker(w); err != nil {
						return nil, err
					}
				}
			}
			// A worker that dies *during* a respawn may host no pairs and
			// so escape heartbeat detection; past the deadline its missing
			// ack is itself the failure signal.
			if respawnPending != nil && time.Now().After(respawnDeadline) {
				overdue := make([]string, 0, len(respawnPending))
				for w := range respawnPending {
					overdue = append(overdue, w)
				}
				sort.Strings(overdue)
				for _, w := range overdue {
					if err := failWorker(w); err != nil {
						return nil, err
					}
				}
			}
			continue
		case <-timer.C:
			// Drain pending progress before declaring silence: with both
			// channels ready the select may pick the timer even though a
			// message is waiting.
			select {
			case m, ok := <-master.Recv():
				if !ok {
					return nil, fmt.Errorf("core: job %s: master endpoint closed", job.Name)
				}
				deadline = time.Now().Add(e.opts.Timeout)
				msg = m
			default:
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("core: job %s: no progress for %v (deadlock or lost tasks)", job.Name, e.opts.Timeout)
				}
				timer.Reset(time.Until(deadline))
				continue
			}
			timer.Reset(e.opts.Timeout)
		}

		switch pl := msg.Payload.(type) {
		case heartbeatMsg:
			if live[pl.Worker] {
				lastBeat[pl.Worker] = time.Now()
			}

		case rbAckMsg:
			// Dedup by sender endpoint: map and reduce tasks of one pair
			// share (Phase, Task), but each owns a unique address.
			if pl.Gen != gen || ackSeen[msg.From] {
				continue
			}
			ackSeen[msg.From] = true
			acks++
			if acks == totalTasks {
				// The quiesce is over: beats flow again from this instant,
				// so silence accumulated during the reload must not count.
				for w := range lastBeat {
					lastBeat[w] = time.Now()
				}
				sendCmd(ts.phase0Maps, cmdMsg{Kind: cmdGo, Gen: gen, ToIter: rbToIter})
			}

		case taskErrMsg:
			terminate()
			return nil, fmt.Errorf("core: job %s: task %d/%d failed: %s", job.Name, pl.Phase, pl.Task, pl.Err)

		case failMsg:
			if err := failWorker(pl.Worker); err != nil {
				return nil, err
			}

		case planAckMsg:
			// Remote respawn completion: once every live worker has
			// re-applied the plan (and reported where the replacement
			// endpoints listen), refresh the directory, drop stale cached
			// connections, and only then issue the recovery rollback.
			if e.remote == nil || pl.Epoch != e.remote.epoch || respawnPending == nil || !respawnPending[pl.Worker] {
				continue
			}
			if pl.Err != "" {
				terminate()
				return nil, fmt.Errorf("core: job %s: worker %s rejected respawn plan: %s", job.Name, pl.Worker, pl.Err)
			}
			e.rc.dir.SetAll(pl.Endpoints)
			delete(respawnPending, pl.Worker)
			if len(respawnPending) == 0 {
				respawnPending = nil
				liveWorkers := make([]string, 0, len(live))
				for w, ok := range live {
					if ok {
						liveWorkers = append(liveWorkers, w)
					}
				}
				sort.Strings(liveWorkers)
				e.broadcastDirectory(master, liveWorkers)
				e.invalidateRun(ts)
				rollbackAll(ckptLast)
			}

		case ckptMsg:
			if pl.Gen != gen {
				continue
			}
			if ckptAcks[pl.Iter] == nil {
				ckptAcks[pl.Iter] = make(map[int]bool)
			}
			ckptAcks[pl.Iter][pl.Task] = true
			if len(ckptAcks[pl.Iter]) == n && pl.Iter > ckptLast {
				// Every partition file is committed; the manifest commit
				// makes the checkpoint durable — only then does it become
				// the rollback target, and only then are its predecessors
				// garbage-collected. A failed commit (DFS trouble) leaves
				// the previous checkpoint in force; the run continues and
				// the next boundary tries again.
				if err := e.commitManifest(run, fp, pl.Iter, len(phases)); err == nil {
					ckptLast = pl.Iter
					e.gcCheckpoints(run, ckptLast)
				}
			}

		case auxOutMsg:
			if pl.Gen != gen || terminated || auxHandled[pl.Iter] {
				continue
			}
			if auxBuf[pl.Iter] == nil {
				auxBuf[pl.Iter] = make(map[int][]kv.Pair)
			}
			auxBuf[pl.Iter][pl.Task] = pl.Pairs
			if len(auxBuf[pl.Iter]) == auxN {
				auxHandled[pl.Iter] = true
				var all []kv.Pair
				for i := 0; i < auxN; i++ {
					all = append(all, auxBuf[pl.Iter][i]...)
				}
				aux.Ops.SortPairs(all)
				delete(auxBuf, pl.Iter)
				if pl.Iter > auxDone {
					auxDone = pl.Iter
				}
				if job.AuxDecide(pl.Iter, all) {
					// Termination signal from the auxiliary phase
					// (§5.3.2); applied at the next iteration boundary so
					// the final state is a consistent snapshot.
					auxStop = true
					converged = true
				}
				if pendingProceed[auxDone+1] {
					delete(pendingProceed, auxDone+1)
					if auxStop {
						// The held boundary is a consistent snapshot:
						// stop right here instead of feeding another
						// iteration.
						stopIter = auxDone + 1
						terminate()
					} else {
						sendCmd(ts.termReds, cmdMsg{Kind: cmdProceed, ToIter: auxDone + 1})
					}
				}
			}

		case reportMsg:
			if pl.Gen != gen || terminated || reportDone[pl.Iter] {
				continue
			}
			if reports[pl.Iter] == nil {
				reports[pl.Iter] = make(map[int]reportMsg)
			}
			reports[pl.Iter][pl.Task] = pl
			if len(reports[pl.Iter]) < n {
				continue
			}
			// Iteration boundary: merge the local distance values
			// (§3.1.2) and the timing reports (§3.4.2). Mark the boundary
			// handled so a duplicated report cannot re-fire it.
			iter := pl.Iter
			reportDone[iter] = true
			var dist float64
			var maxElapsed time.Duration
			for _, r := range reports[iter] {
				dist += r.Dist
				if d := time.Duration(r.ElapsedNanos); d > maxElapsed {
					maxElapsed = d
				}
			}
			perIter[iter] = IterInfo{
				Iter: iter, Dist: dist,
				CompletedAt:     time.Since(start),
				MaxTaskElapsed:  maxElapsed,
				CumShuffleBytes: e.m.Get(metrics.ShuffleBytes),
				CumStateBytes:   e.m.Get(metrics.StateBytes),
			}
			e.m.Add(metrics.Iterations, 1)
			e.opts.Trace.Emit(trace.KindIterDone, "master", -1, iter)
			if cb := e.opts.OnIteration; cb != nil {
				cb(perIter[iter])
			}
			stop := auxStop
			if last.MaxIter > 0 && iter >= last.MaxIter {
				stop = true
			}
			if last.DistThreshold > 0 && last.Distance != nil && dist < last.DistThreshold {
				stop = true
				converged = true
			}
			if stop {
				stopIter = iter
				terminate()
				continue
			}
			if mig := e.maybeMigrate(master, run, ts, reports[iter], live, iter, lastMigIter, migratedCount); mig {
				migrations++
				lastMigIter = iter
				rollbackAll(ckptLast)
				continue
			}
			// Release the gated loop-back: the termination check passed
			// and iteration iter+1 may be fed — unless an auxiliary
			// phase exists and has not yet evaluated iteration iter-1.
			if auxN > 0 && auxDone < iter-1 {
				pendingProceed[iter] = true
			} else {
				sendCmd(ts.termReds, cmdMsg{Kind: cmdProceed, ToIter: iter})
			}
			delete(reports, iter)

		case finalMsg:
			if pl.Err != "" {
				return nil, fmt.Errorf("core: job %s: final write of part %d: %s", job.Name, pl.Task, pl.Err)
			}
			if finalSeen[pl.Task] {
				continue
			}
			finalSeen[pl.Task] = true
			finals++
			outputRecords += pl.Records
			if finals == n {
				res := &Result{
					Iterations:    stopIter,
					Converged:     converged,
					OutputRecords: outputRecords,
					Migrations:    migrations,
					Recoveries:    recoveries,
				}
				iters := make([]int, 0, len(perIter))
				for it := range perIter {
					iters = append(iters, it)
				}
				sort.Ints(iters)
				for _, it := range iters {
					if it <= stopIter {
						res.PerIter = append(res.PerIter, perIter[it])
					}
				}
				return res, nil
			}
		}
	}
}

// maybeMigrate applies the paper's load-balancing rule (§3.4.2): compute
// the average iteration time excluding the longest and shortest, and if
// the slowest task deviates beyond the threshold, move its pair to the
// fastest worker. Returns true when a migration was issued (the caller
// rolls back).
func (e *Engine) maybeMigrate(master transport.Endpoint, run *runState, ts *taskSet, reps map[int]reportMsg,
	live map[string]bool, iter, lastMigIter int, migratedCount map[int]int) bool {
	// Remote mode moves pairs only through the plan/respawn protocol
	// (failure-driven); relabeling a goroutine is meaningless across
	// process boundaries.
	if e.remote != nil {
		return false
	}
	if !e.opts.LoadBalance || iter < e.opts.LBMinIter || iter <= lastMigIter+1 || len(reps) < 3 {
		return false
	}
	type te struct {
		task    int
		elapsed time.Duration
		worker  string
	}
	all := make([]te, 0, len(reps))
	for t, r := range reps {
		all = append(all, te{task: t, elapsed: time.Duration(r.ElapsedNanos), worker: r.Worker})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].elapsed < all[j].elapsed })
	var sum time.Duration
	for _, x := range all[1 : len(all)-1] {
		sum += x.elapsed
	}
	avg := sum / time.Duration(len(all)-2)
	slow := all[len(all)-1]
	if avg <= 0 || float64(slow.elapsed-avg)/float64(avg) <= e.opts.LBThreshold {
		return false
	}
	if migratedCount[slow.task] >= MaxPairMigrations {
		// Confined (§3.4.2): this pair is slow wherever it runs — the
		// partition itself is skewed, and moving it again would only
		// cost rollbacks.
		return false
	}
	// Fastest live worker by its worst task this iteration.
	worst := map[string]time.Duration{}
	for _, x := range all {
		if x.elapsed > worst[x.worker] {
			worst[x.worker] = x.elapsed
		}
	}
	fast := ""
	for w, d := range worst {
		if !live[w] || w == slow.worker {
			continue
		}
		if fast == "" || d < worst[fast] {
			fast = w
		}
	}
	if fast == "" {
		return false
	}
	run.setPairWorker(slow.task, fast, false)
	for _, a := range ts.byPair[slow.task] {
		_ = e.sendReliable(master, a, transport.Message{Kind: kindCmd, Payload: cmdMsg{Kind: cmdReassign, Worker: fast}})
	}
	migratedCount[slow.task]++
	e.m.Add(metrics.TaskMigrations, 1)
	e.opts.Trace.Emit(trace.KindTaskMigrate, fast, slow.task, iter,
		trace.Attr{Key: "from", Value: slow.worker})
	return true
}

// MaxPairMigrations bounds how often the load balancer will move one
// task pair before confining it (§3.4.2: a skewed partition on a
// uniform cluster would otherwise keep moving around).
const MaxPairMigrations = 2

func anyLive(live map[string]bool) bool {
	for _, ok := range live {
		if ok {
			return true
		}
	}
	return false
}

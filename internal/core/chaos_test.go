package core

import (
	"math"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// newFaultyEnv builds an engine over a FaultyNetwork wrapping the
// in-process channel transport.
func newFaultyEnv(t *testing.T, spec cluster.Spec, opts Options, fopts transport.FaultyOptions) (*env, *transport.FaultyNetwork) {
	t.Helper()
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	if opts.Timeout == 0 {
		opts.Timeout = 20 * time.Second
	}
	fnet := transport.NewFaultyNetwork(transport.NewChanNetwork(), fopts)
	e, err := NewEngine(fs, fnet, spec, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &env{e: e, fs: fs, m: m, spec: spec}, fnet
}

// TestChaosRingDropsDupsReorders runs the ring-diffusion job over a
// lossy, duplicating, reordering network. Drops are detectable send
// errors recovered by the engine's bounded retries; duplicates and
// reorders are silent and must be absorbed by the protocol's sequence
// dedup and generation guards. The converged state must match the
// sequential reference exactly.
func TestChaosRingDropsDupsReorders(t *testing.T) {
	guard(t, 2*time.Minute)
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	v, fnet := newFaultyEnv(t, cluster.Uniform(4), Options{SendRetries: 6},
		transport.FaultyOptions{Seed: 7, DropRate: 0.03, DupRate: 0.03, ReorderRate: 0.05})
	job, vals := ringSetup(t, v, 64)
	job.MaxIter = 9
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := ringReference(vals, 9)
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 64 {
		t.Fatalf("%d outputs", len(out))
	}
	for i := 0; i < 64; i++ {
		if got := out[int64(i)].(float64); math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("key %d: got %v want %v", i, got, want[i])
		}
	}
	if fnet.Drops() == 0 || fnet.Dups() == 0 || fnet.Reorders() == 0 {
		t.Fatalf("fault injection idle: drops=%d dups=%d reorders=%d",
			fnet.Drops(), fnet.Dups(), fnet.Reorders())
	}
	if v.m.Get(metrics.SendRetries) == 0 {
		t.Fatal("drops happened but nothing was retried")
	}
}

// TestChaosIdempotentControlPlane pushes duplicates and reorders (no
// drops) through a job that exercises every master-bound message kind —
// reports, checkpoint acks, auxiliary outputs, final acks — plus the
// rollback-free command path. The run must terminate with the state
// self-consistent with the iteration count: any double-applied report
// or auxiliary decision would show up as a wrong value or a runaway.
func TestChaosIdempotentControlPlane(t *testing.T) {
	guard(t, 2*time.Minute)
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	v, fnet := newFaultyEnv(t, cluster.Uniform(2), Options{},
		transport.FaultyOptions{Seed: 99, DupRate: 0.2, ReorderRate: 0.2})
	v.writeState(t, "/state", 6)
	main := halvingJob("halve-chaos-aux", 0, 0)
	main.CheckpointEvery = 2
	aux := &Job{
		Name: "halve-chaos-watch",
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) { return states[0], nil },
		Ops:    f64Ops(),
	}
	main.AddAuxiliary(aux)
	main.AuxDecide = func(iter int, outputs []kv.Pair) bool {
		for _, p := range outputs {
			if p.Value.(float64) >= 0.1 {
				return false
			}
		}
		return true
	}
	res, err := v.e.Run(main)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("aux decision lost under duplication/reordering")
	}
	if res.Iterations < 4 || res.Iterations > 10 {
		t.Fatalf("iterations = %d, want 4..10", res.Iterations)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 6 {
		t.Fatalf("%d outputs", len(out))
	}
	want := math.Pow(2, -float64(res.Iterations))
	for k, val := range out {
		if math.Abs(val.(float64)-want) > 1e-12 {
			t.Fatalf("key %d = %v, want %v (iterations=%d)", k, val, want, res.Iterations)
		}
	}
	if fnet.Dups() == 0 || fnet.Reorders() == 0 {
		t.Fatalf("fault injection idle: dups=%d reorders=%d", fnet.Dups(), fnet.Reorders())
	}
	if v.m.Get(metrics.Checkpoints) == 0 {
		t.Fatal("no checkpoints written")
	}
}

// TestHeartbeatHealthyRun: with detection on and nothing wrong, beats
// flow and nobody is declared dead.
func TestHeartbeatHealthyRun(t *testing.T) {
	guard(t, 2*time.Minute)
	v := newEnv(t, 3, Options{HeartbeatInterval: 5 * time.Millisecond, HeartbeatMisses: 5})
	v.writeState(t, "/state", 24)
	job := slowHalvingJob("halve-hb", 8, 2)
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 0 {
		t.Fatalf("spurious recovery: %d", res.Recoveries)
	}
	if v.m.Get(metrics.HeartbeatsSent) == 0 {
		t.Fatal("no heartbeats sent")
	}
	if v.m.Get(metrics.FailuresDetected) != 0 {
		t.Fatal("healthy worker declared dead")
	}
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		if math.Abs(val.(float64)-math.Pow(2, -8)) > 1e-15 {
			t.Fatalf("key %d = %v", k, val)
		}
	}
}

// TestHeartbeatDetectsStalledWorker injects an *undetected* hang: the
// worker's tasks freeze without announcing anything. The master must
// notice the missed beats, declare the worker failed, and recover
// through the checkpoint rollback — no FailWorker call anywhere.
func TestHeartbeatDetectsStalledWorker(t *testing.T) {
	guard(t, 2*time.Minute)
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	spec := cluster.Uniform(3)
	spec.Nodes[1].StallAfter = 60 * time.Millisecond
	spec.Nodes[1].StallFor = 700 * time.Millisecond
	v := newEnvSpec(t, spec, Options{
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMisses:   3,
	})
	v.writeState(t, "/state", 24)
	job := slowHalvingJob("halve-stall", 40, 2)
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Fatalf("recoveries = %d, want >= 1 (hang undetected)", res.Recoveries)
	}
	if v.m.Get(metrics.FailuresDetected) < 1 {
		t.Fatal("failure not attributed to heartbeat detection")
	}
	if res.Iterations != 40 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 24 {
		t.Fatalf("%d outputs survived the hang", len(out))
	}
	for k, val := range out {
		if math.Abs(val.(float64)-math.Pow(2, -40)) > 1e-18 {
			t.Fatalf("key %d = %v after recovery", k, val)
		}
	}
}

// TestTimeoutFiresOnGenuineSilence: a run whose tasks go quiet must be
// aborted by the master's silence backstop.
func TestTimeoutFiresOnGenuineSilence(t *testing.T) {
	guard(t, 2*time.Minute)
	v := newEnv(t, 2, Options{Timeout: 150 * time.Millisecond})
	v.writeState(t, "/state", 4)
	job := halvingJob("halve-silent", 5, 0)
	job.Reduce = func(key any, states []any) (any, error) {
		time.Sleep(3 * time.Second) // well past the master's patience
		return states[0], nil
	}
	start := time.Now()
	_, err := v.e.Run(job)
	if err == nil {
		t.Fatal("silent run not aborted")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v to fire", elapsed)
	}
}

// TestTimeoutNotSpuriousUnderSteadyProgress is the deflake regression:
// the master's deadline must track the last message received, so a run
// much longer than Options.Timeout survives as long as every silence
// gap stays short. The old reset idiom could abort such runs on a stale
// timer expiry.
func TestTimeoutNotSpuriousUnderSteadyProgress(t *testing.T) {
	guard(t, 2*time.Minute)
	v := newEnv(t, 2, Options{Timeout: 60 * time.Millisecond})
	v.writeState(t, "/state", 16)
	job := halvingJob("halve-steady", 120, 0)
	job.CheckpointEvery = 3 // extra master traffic between reports
	base := job.Reduce
	job.Reduce = func(key any, states []any) (any, error) {
		time.Sleep(100 * time.Microsecond) // pace: total wall >> Timeout
		return base(key, states)
	}
	start := time.Now()
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatalf("steady run aborted after %v: %v", time.Since(start), err)
	}
	if res.Iterations != 120 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.TotalWall <= 60*time.Millisecond {
		t.Skipf("run finished inside one timeout window (%v); regression not exercised", res.TotalWall)
	}
}

package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// TestBroadcastOnTCP runs the OneToAll path over real sockets: the
// broadcast chunks and the gob-encoded pair lists must survive the wire.
func TestBroadcastOnTCP(t *testing.T) {
	guard(t, 2*time.Minute)
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	e, err := NewEngine(fs, transport.NewTCPNetwork(), spec, m, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v := &env{e: e, fs: fs, m: m, spec: spec}

	var points []kv.Pair
	for i := 0; i < 12; i++ {
		points = append(points, kv.Pair{Key: int64(i), Value: float64(i * 10)})
	}
	if err := fs.WriteFile("/b/points", "worker-0", points, f64Ops()); err != nil {
		t.Fatal(err)
	}
	cents := []kv.Pair{{Key: int64(0), Value: 5.0}, {Key: int64(1), Value: 100.0}}
	if err := fs.WriteFile("/b/cents", "worker-0", cents, f64Ops()); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "tcp-broadcast", StatePath: "/b/cents", StaticPath: "/b/points",
		Mapping: OneToAll,
		Map: func(key, state, static any, emit kv.Emit) error {
			coord := static.(float64)
			best, bestD := int64(-1), math.MaxFloat64
			for _, c := range state.([]kv.Pair) {
				if d := math.Abs(c.Value.(float64) - coord); d < bestD {
					best, bestD = c.Key.(int64), d
				}
			}
			emit(best, coord)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			var sum float64
			for _, s := range states {
				sum += s.(float64)
			}
			return sum / float64(len(states)), nil
		},
		MaxIter: 4,
		Ops:     f64Ops(),
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 2 {
		t.Fatalf("%d centroids over TCP", len(out))
	}
}

// TestMultiPhaseOnTCP chains two phases over real sockets.
func TestMultiPhaseOnTCP(t *testing.T) {
	guard(t, 2*time.Minute)
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	e, err := NewEngine(fs, transport.NewTCPNetwork(), spec, m, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v := &env{e: e, fs: fs, m: m, spec: spec}
	v.writeState(t, "/mp/state", 8)
	id := func(key, state, static any, emit kv.Emit) error {
		emit(key, state)
		return nil
	}
	p1 := &Job{Name: "tcp-mp", StatePath: "/mp/state", Map: id,
		Reduce: func(key any, states []any) (any, error) { return states[0].(float64) * 3, nil },
		Ops:    f64Ops()}
	p2 := &Job{Name: "tcp-mp2", Map: id,
		Reduce:  func(key any, states []any) (any, error) { return states[0].(float64) - 1, nil },
		MaxIter: 3, Ops: f64Ops()}
	p1.AddSuccessor(p2)
	res, err := e.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	// x -> 3x-1, three times from 1: 2, 5, 14.
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		if math.Abs(val.(float64)-14) > 1e-12 {
			t.Fatalf("key %v = %v, want 14", k, val)
		}
	}
}

// opaqueVal is gob-registered but has no kv value codec: chunks
// carrying it cannot use the binary fast path, so every shuffle and
// state message must fall back to the per-frame gob encoding.
type opaqueVal struct {
	S string
	F []float64
}

// TestGobFallbackOnTCP proves correctness never depends on codec
// registration: a job whose values only gob knows runs exactly over
// real sockets.
func TestGobFallbackOnTCP(t *testing.T) {
	guard(t, 2*time.Minute)
	kv.RegisterWireType(opaqueVal{})
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	e, err := NewEngine(fs, transport.NewTCPNetwork(), spec, m, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v := &env{e: e, fs: fs, m: m, spec: spec}
	const n = 10
	state := make([]kv.Pair, n)
	for i := range state {
		state[i] = kv.Pair{Key: int64(i), Value: opaqueVal{S: "v", F: []float64{float64(i), 1}}}
	}
	ops := kv.OpsFor[int64, opaqueVal](nil)
	if err := fs.WriteFile("/gf/state", "worker-0", state, ops); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name: "tcp-gob-fallback", StatePath: "/gf/state",
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			ov := states[0].(opaqueVal)
			halved := make([]float64, len(ov.F))
			for i, f := range ov.F {
				halved[i] = f / 2
			}
			return opaqueVal{S: ov.S + "x", F: halved}, nil
		},
		MaxIter: 3,
		Ops:     ops,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != n {
		t.Fatalf("%d outputs over gob fallback", len(out))
	}
	for k, val := range out {
		ov := val.(opaqueVal)
		if ov.S != "vxxx" {
			t.Fatalf("key %v: S = %q after 3 iterations", k, ov.S)
		}
		if math.Abs(ov.F[0]-float64(k)/8) > 1e-12 || math.Abs(ov.F[1]-0.125) > 1e-12 {
			t.Fatalf("key %v: F = %v", k, ov.F)
		}
	}
}

// TestDiskBackedDFS runs a full job (including checkpoints and final
// output) over a DFS that spills every block to gob files on disk — the
// paper's file-backed storage mode.
func TestDiskBackedDFS(t *testing.T) {
	guard(t, 2*time.Minute)
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 12, Replication: 2, SpillDir: t.TempDir()}, spec.IDs(), m)
	e, err := NewEngine(fs, transport.NewChanNetwork(), spec, m, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v := &env{e: e, fs: fs, m: m, spec: spec}
	job, vals := ringSetup(t, v, 48)
	job.MaxIter = 6
	job.CheckpointEvery = 2
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := ringReference(vals, 6)
	out := v.readOutput(t, res.OutputPath)
	for i := 0; i < 48; i++ {
		if math.Abs(out[int64(i)].(float64)-want[i]) > 1e-9 {
			t.Fatalf("disk-backed run diverged at key %d", i)
		}
	}
	if m.Get(metrics.Checkpoints) == 0 {
		t.Fatal("no checkpoints written through the disk path")
	}
}

// TestLatencyNetworkEndToEnd runs a full job over the latency-injecting
// transport wrapper: correctness must be unaffected by message delays.
func TestLatencyNetworkEndToEnd(t *testing.T) {
	guard(t, 2*time.Minute)
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	net := transport.NewLatencyNetwork(transport.NewChanNetwork(), 2*time.Millisecond, 0)
	e, err := NewEngine(fs, net, spec, m, Options{Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v := &env{e: e, fs: fs, m: m, spec: spec}
	job, vals := ringSetup(t, v, 32)
	job.MaxIter = 4
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := ringReference(vals, 4)
	out := v.readOutput(t, res.OutputPath)
	for i := 0; i < 32; i++ {
		if math.Abs(out[int64(i)].(float64)-want[i]) > 1e-9 {
			t.Fatalf("latency run diverged at key %d", i)
		}
	}
	// Four iterations of barriered messaging with 2ms per hop cannot
	// complete instantly.
	if res.TotalWall < 8*time.Millisecond {
		t.Fatalf("latency not felt: %v", res.TotalWall)
	}
}

// TestRepeatedFailures injects two worker failures at different points
// of one run; the result must still be exact and every failure must be
// recovered.
func TestRepeatedFailures(t *testing.T) {
	guard(t, 2*time.Minute)
	v := newEnv(t, 4, Options{})
	v.writeState(t, "/state", 30)
	job := slowHalvingJob("halve-two-failures", 12, 2)

	go func() {
		for _, w := range []string{"worker-1", "worker-3"} {
			deadline := time.After(5 * time.Second)
			for {
				select {
				case <-deadline:
					return
				default:
				}
				if err := v.e.FailWorker(w); err == nil {
					break
				}
				time.Sleep(500 * time.Microsecond)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", res.Recoveries)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 30 {
		t.Fatalf("%d outputs", len(out))
	}
	for k, val := range out {
		if math.Abs(val.(float64)-math.Pow(2, -12)) > 1e-16 {
			t.Fatalf("key %d = %v", k, val)
		}
	}
}

// TestFailureDuringDistanceTermination: recovery must not confuse the
// distance-based convergence decision.
func TestFailureDuringDistanceTermination(t *testing.T) {
	guard(t, 2*time.Minute)
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 16)
	job := halvingJob("halve-fail-dist", 0, 0.05) // converges at iter 9: 16*2^-9 < 0.05
	job.CheckpointEvery = 2
	base := job.Reduce
	job.Reduce = func(key any, states []any) (any, error) {
		time.Sleep(300 * time.Microsecond)
		return base(key, states)
	}
	go func() {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-deadline:
				return
			default:
			}
			if err := v.e.FailWorker("worker-0"); err == nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge after failure")
	}
	if res.Iterations != 9 {
		t.Fatalf("converged at %d, want 9", res.Iterations)
	}
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		if math.Abs(val.(float64)-math.Pow(2, -9)) > 1e-15 {
			t.Fatalf("key %d = %v", k, val)
		}
	}
}

// TestAllWorkersFail: the run must abort with an error, not hang.
func TestAllWorkersFail(t *testing.T) {
	guard(t, 2*time.Minute)
	v := newEnv(t, 2, Options{Timeout: 10 * time.Second})
	v.writeState(t, "/state", 10)
	job := slowHalvingJob("halve-all-fail", 50, 2)
	go func() {
		for _, w := range []string{"worker-0", "worker-1"} {
			deadline := time.After(3 * time.Second)
			for {
				select {
				case <-deadline:
					return
				default:
				}
				if err := v.e.FailWorker(w); err == nil {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	if _, err := v.e.Run(job); err == nil {
		t.Fatal("run should fail when every worker is dead")
	}
}

// TestManyTasksManyIterations is a soak test: 12 pairs on 3 workers,
// 30 iterations, full async, verifying exactness end to end.
func TestManyTasksManyIterations(t *testing.T) {
	guard(t, 2*time.Minute)
	spec := cluster.Uniform(3)
	spec.MapSlots, spec.ReduceSlots = 4, 4
	v := newEnvSpec(t, spec, Options{})
	v.writeState(t, "/state", 200)
	job := halvingJob("halve-soak", 30, 0)
	job.NumTasks = 12
	job.BufferThreshold = 7 // force many partial chunks
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 200 {
		t.Fatalf("%d outputs", len(out))
	}
	want := math.Pow(2, -30)
	for k, val := range out {
		if math.Abs(val.(float64)-want) > want*1e-9 {
			t.Fatalf("key %d = %v", k, val)
		}
	}
	if len(res.PerIter) != 30 {
		t.Fatalf("per-iter: %d", len(res.PerIter))
	}
}

// TestBufferThresholdValues: results are identical across buffer
// thresholds (the §3.3 buffering is a performance knob, not semantics).
func TestBufferThresholdValues(t *testing.T) {
	guard(t, 2*time.Minute)
	var ref map[int64]any
	for _, thresh := range []int{1, 3, 1024} {
		v := newEnv(t, 2, Options{})
		v.writeState(t, "/state", 40)
		job, _ := ringSetup(t, v, 40)
		job.MaxIter = 5
		job.BufferThreshold = thresh
		job.Name = fmt.Sprintf("ring-buf-%d", thresh)
		res, err := v.e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		out := v.readOutput(t, res.OutputPath)
		if ref == nil {
			ref = out
			continue
		}
		for k, val := range out {
			if math.Abs(val.(float64)-ref[k].(float64)) > 1e-12 {
				t.Fatalf("threshold %d changed result at key %v", thresh, k)
			}
		}
	}
}

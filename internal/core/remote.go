package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/transport"
)

// Out-of-process deployment: one imrmaster process owns the namenode,
// the job master and the DFS block service; imrworker processes host
// the persistent task pairs. Workers register with the master over the
// same typed-frame transport the data plane uses; the master ships each
// worker a plan describing the task pairs it must spawn, and the
// workers answer with the listen addresses of the endpoints they bound,
// which the master folds into the shared address directory and
// re-broadcasts. Every control exchange rides at-least-once delivery,
// so all handlers here are idempotent.

// Control-plane logical addresses.
const (
	// CtlMasterAddr is the master's registration endpoint; it is the one
	// address a worker must know out-of-band (the -master flag).
	CtlMasterAddr = "ctl/master"
	// DFSAddr is the master-side block service endpoint.
	DFSAddr = "dfs/nn"
)

// ctlAddr is a worker's control endpoint.
func ctlAddr(worker string) string { return "ctl/" + worker }

// dfsClientAddr is a worker's DFS RPC reply endpoint.
func dfsClientAddr(worker string) string { return "dfs/c/" + worker }

// Control message kinds.
const (
	kindJoin    = "join"    // worker → master registration
	kindJoinAck = "joinack" // master → worker registration reply
	kindLeave   = "leave"   // worker → master graceful deregistration
	kindPing    = "ping"    // worker → master liveness probe
	kindPong    = "pong"    // master → worker liveness reply
	kindPlan    = "plan"    // master → worker task assignment
	kindPlanAck = "planack" // worker → master plan applied + endpoints
	kindDir     = "dir"     // master → worker directory snapshot
	kindRelease = "release" // master → worker run teardown
)

// joinMsg registers a worker. Endpoints carries the listen addresses of
// the worker's own control endpoints (its ctl address, at minimum).
type joinMsg struct {
	Worker    string
	Endpoints map[string]string
}

// joinAckMsg accepts a registration. Epoch identifies the master
// *process*: a worker seeing a different epoch in a pong knows the
// master restarted and its membership is gone. Directory is the
// master's current address table.
type joinAckMsg struct {
	Worker    string
	Epoch     int64
	Directory map[string]string
}

// leaveMsg deregisters a worker gracefully; during a run it feeds the
// same failure path a crash detection does, minus the detection delay.
type leaveMsg struct{ Worker string }

type pingMsg struct{ Worker string }

type pongMsg struct{ Epoch int64 }

// PairAssign names one task pair a plan assigns to a worker.
type PairAssign struct {
	Idx int
	Aux bool
}

// workerTuning is the scalar subset of Options a worker's task-context
// engine needs; the function-valued fields stay master-side.
type workerTuning struct {
	Timeout                time.Duration
	HeartbeatInterval      time.Duration
	HeartbeatMisses        int
	SendRetries            int
	SendRetryBackoff       time.Duration
	CheckpointRetries      int
	CheckpointRetryBackoff time.Duration
	Parallelism            int
}

// runMeta is the worker-side reconstruction recipe for runState.
type runMeta struct {
	Name         string
	MainPhases   int
	MainTasks    int
	AuxTasks     int
	OutputPath   string
	Placement    []string
	AuxPlacement []string
}

// planMsg tells a worker which task pairs to host. Epoch orders plans
// within a run: respawns after a failure bump it, and the master
// ignores acks from superseded epochs. Plans are full, not incremental
// — a worker spawns whatever assigned pairs it is missing and updates
// the placement table wholesale, so re-deliveries and re-plans are
// idempotent.
type planMsg struct {
	Epoch     int
	JobKey    string
	Params    map[string]string
	Spec      cluster.Spec
	Tuning    workerTuning
	Run       runMeta
	Assigns   []PairAssign
	Directory map[string]string
}

// planAckMsg reports a plan applied; Endpoints maps every task address
// the worker hosts to its listen address.
type planAckMsg struct {
	Worker    string
	Epoch     int
	Err       string
	Endpoints map[string]string
}

// dirMsg distributes a directory snapshot after endpoints moved.
type dirMsg struct {
	Entries map[string]string
}

// releaseMsg ends a run on the worker: tear down task endpoints and
// drop the run context.
type releaseMsg struct{ Job string }

func init() {
	kv.RegisterWireType(joinMsg{})
	kv.RegisterWireType(joinAckMsg{})
	kv.RegisterWireType(leaveMsg{})
	kv.RegisterWireType(pingMsg{})
	kv.RegisterWireType(pongMsg{})
	kv.RegisterWireType(planMsg{})
	kv.RegisterWireType(planAckMsg{})
	kv.RegisterWireType(dirMsg{})
	kv.RegisterWireType(releaseMsg{})
}

// RemoteClusterOptions configures the master's registration service.
type RemoteClusterOptions struct {
	// Listen is the host:port the control endpoint binds — the address
	// workers are pointed at. Required.
	Listen string
	// Epoch identifies this master process; 0 means derive one from the
	// wall clock. A restarted master presents a new epoch, which is how
	// surviving workers learn their registration is void.
	Epoch int64
}

// RemoteCluster is the master-side membership service: it owns the
// fixed control endpoint, admits joining workers, answers their
// liveness pings, and surfaces departures to the engine's failure path.
type RemoteCluster struct {
	net   *transport.TCPNetwork
	dir   *transport.Directory
	ep    transport.Endpoint
	epoch int64

	mu      sync.Mutex
	members map[string]bool
	changed chan struct{} // closed and replaced on every membership change
	onDown  func(worker string)

	wg sync.WaitGroup
}

// NewRemoteCluster binds the control endpoint at opts.Listen on net and
// starts admitting workers. dir must be the same directory net resolves
// through.
func NewRemoteCluster(net *transport.TCPNetwork, dir *transport.Directory, opts RemoteClusterOptions) (*RemoteCluster, error) {
	if opts.Listen == "" {
		return nil, fmt.Errorf("core: RemoteClusterOptions.Listen is required")
	}
	if opts.Epoch == 0 {
		opts.Epoch = time.Now().UnixNano()
	}
	ep, err := net.EndpointAt(CtlMasterAddr, opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("core: bind control endpoint: %w", err)
	}
	rc := &RemoteCluster{
		net: net, dir: dir, ep: ep, epoch: opts.Epoch,
		members: make(map[string]bool),
		changed: make(chan struct{}),
	}
	if hp, ok := net.ListenAddr(CtlMasterAddr); ok {
		dir.Set(CtlMasterAddr, hp)
	}
	rc.wg.Add(1)
	go rc.loop()
	return rc, nil
}

// Epoch identifies this master process to workers.
func (rc *RemoteCluster) Epoch() int64 { return rc.epoch }

// SetOnDown installs the callback invoked (from the control loop) when
// a registered worker leaves. The engine points it at FailWorker for
// the duration of a run.
func (rc *RemoteCluster) SetOnDown(fn func(worker string)) {
	rc.mu.Lock()
	rc.onDown = fn
	rc.mu.Unlock()
}

// Workers lists the registered worker IDs, sorted.
func (rc *RemoteCluster) Workers() []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]string, 0, len(rc.members))
	for w := range rc.members {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// WaitForWorkers blocks until at least min workers are registered and
// returns them.
func (rc *RemoteCluster) WaitForWorkers(ctx context.Context, min int) ([]string, error) {
	for {
		rc.mu.Lock()
		n := len(rc.members)
		ch := rc.changed
		rc.mu.Unlock()
		if n >= min {
			return rc.Workers(), nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, fmt.Errorf("core: waiting for %d workers (have %d): %w", min, n, ctx.Err())
		}
	}
}

// Spec builds a cluster spec over the registered workers.
func (rc *RemoteCluster) Spec(mapSlots, reduceSlots int) cluster.Spec {
	ids := rc.Workers()
	nodes := make([]cluster.Node, len(ids))
	for i, id := range ids {
		nodes[i] = cluster.Node{ID: id, Speed: 1.0}
	}
	return cluster.Spec{Nodes: nodes, MapSlots: mapSlots, ReduceSlots: reduceSlots}
}

func (rc *RemoteCluster) loop() {
	defer rc.wg.Done()
	for msg := range rc.ep.Recv() {
		switch pl := msg.Payload.(type) {
		case joinMsg:
			rc.dir.SetAll(pl.Endpoints)
			rc.mu.Lock()
			if !rc.members[pl.Worker] {
				rc.members[pl.Worker] = true
				close(rc.changed)
				rc.changed = make(chan struct{})
			}
			rc.mu.Unlock()
			ack := joinAckMsg{Worker: pl.Worker, Epoch: rc.epoch, Directory: rc.dir.Snapshot()}
			// The worker re-sends joins until it sees the ack; a lost
			// reply here only costs one retry round.
			_ = rc.ep.Send(ctlAddr(pl.Worker), transport.Message{Kind: kindJoinAck, Payload: ack})
		case leaveMsg:
			rc.mu.Lock()
			known := rc.members[pl.Worker]
			delete(rc.members, pl.Worker)
			down := rc.onDown
			if known {
				close(rc.changed)
				rc.changed = make(chan struct{})
			}
			rc.mu.Unlock()
			if known && down != nil {
				down(pl.Worker)
			}
		case pingMsg:
			// Liveness probes are periodic; a dropped pong is re-probed.
			_ = rc.ep.Send(ctlAddr(pl.Worker), transport.Message{Kind: kindPong, Payload: pongMsg{Epoch: rc.epoch}})
		}
	}
}

// Close shuts the control endpoint down and waits for the loop.
func (rc *RemoteCluster) Close() {
	rc.ep.Close()
	rc.wg.Wait()
}

// remoteRun is the engine's per-run remote deployment state: the
// membership service, the plan template re-sent (with bumped epochs and
// fresh placement) whenever pairs move, and the epoch counter.
type remoteRun struct {
	rc    *RemoteCluster
	plan  planMsg
	epoch int
}

// AttachRemote switches the engine to out-of-process deployment: runs
// ship task pairs to the registered workers via plans instead of
// spawning goroutine tasks. The engine's network must be rc's network.
func (e *Engine) AttachRemote(rc *RemoteCluster) {
	e.rc = rc
}

// planEndpointTimeout bounds how long the initial remote spawn waits
// for every worker's plan acknowledgement.
const planEndpointTimeout = 30 * time.Second

// assignsFor lists the pairs placed on worker w.
func assignsFor(run *runState, w string) []PairAssign {
	var out []PairAssign
	run.mu.RLock()
	for i, pw := range run.pairWorker {
		if pw == w {
			out = append(out, PairAssign{Idx: i})
		}
	}
	for i, aw := range run.auxWorker {
		if aw == w {
			out = append(out, PairAssign{Idx: i, Aux: true})
		}
	}
	run.mu.RUnlock()
	return out
}

// buildPlan instantiates the run's plan template for worker w at the
// given epoch, with the current placement and directory snapshot.
func (rr *remoteRun) buildPlan(run *runState, w string, epoch int) planMsg {
	p := rr.plan
	p.Epoch = epoch
	run.mu.RLock()
	p.Run.Placement = append([]string(nil), run.pairWorker...)
	p.Run.AuxPlacement = append([]string(nil), run.auxWorker...)
	run.mu.RUnlock()
	p.Assigns = assignsFor(run, w)
	p.Directory = rr.rc.dir.Snapshot()
	return p
}

// spawnRemote is the out-of-process counterpart of spawnTasks: instead
// of goroutines it sends every registered worker a plan, collects the
// endpoint listen addresses they bound, distributes the completed
// directory, and returns the same (master endpoint, task set) shape the
// master loop runs against — with no goroutines in the task set's wait
// group, since the tasks live in other processes.
func (e *Engine) spawnRemote(job *Job, phases []*Job, aux *Job, run *runState, n, auxN int) (transport.Endpoint, *taskSet, error) {
	if job.Registry == "" {
		return nil, nil, fmt.Errorf("core: job %s: remote runs need Job.Registry (build it through internal/jobs)", job.Name)
	}
	master, err := e.net.Endpoint(masterAddr(job.Name))
	if err != nil {
		return nil, nil, err
	}
	rc := e.rc
	if hp, ok := rc.net.ListenAddr(masterAddr(job.Name)); ok {
		rc.dir.Set(masterAddr(job.Name), hp)
	}
	ts := buildTaskSet(job.Name, len(phases), n, auxN)

	rr := &remoteRun{
		rc: rc,
		plan: planMsg{
			JobKey: job.Registry,
			Params: job.Params,
			Spec:   e.spec,
			Tuning: workerTuning{
				Timeout:                e.opts.Timeout,
				HeartbeatInterval:      e.opts.HeartbeatInterval,
				HeartbeatMisses:        e.opts.HeartbeatMisses,
				SendRetries:            e.opts.SendRetries,
				SendRetryBackoff:       e.opts.SendRetryBackoff,
				CheckpointRetries:      e.opts.CheckpointRetries,
				CheckpointRetryBackoff: e.opts.CheckpointRetryBackoff,
				Parallelism:            e.opts.Parallelism,
			},
			Run: runMeta{
				Name:       run.name,
				MainPhases: len(phases),
				MainTasks:  n,
				AuxTasks:   auxN,
				OutputPath: run.outputPath,
			},
		},
		epoch: 1,
	}

	workers := e.spec.IDs()
	pending := make(map[string]bool, len(workers))
	for _, w := range workers {
		pending[w] = true
		plan := rr.buildPlan(run, w, rr.epoch)
		if err := e.sendReliable(master, ctlAddr(w), transport.Message{Kind: kindPlan, Payload: plan}); err != nil {
			return nil, nil, fmt.Errorf("core: job %s: plan to %s: %w", job.Name, w, err)
		}
	}

	deadline := time.After(planEndpointTimeout)
	for len(pending) > 0 {
		select {
		case msg, ok := <-master.Recv():
			if !ok {
				return nil, nil, fmt.Errorf("core: job %s: master endpoint closed during deploy", job.Name)
			}
			ack, isAck := msg.Payload.(planAckMsg)
			if !isAck || ack.Epoch != rr.epoch || !pending[ack.Worker] {
				continue // early heartbeats and duplicate acks
			}
			if ack.Err != "" {
				return nil, nil, fmt.Errorf("core: job %s: worker %s rejected plan: %s", job.Name, ack.Worker, ack.Err)
			}
			rc.dir.SetAll(ack.Endpoints)
			delete(pending, ack.Worker)
		case <-deadline:
			missing := make([]string, 0, len(pending))
			for w := range pending {
				missing = append(missing, w)
			}
			sort.Strings(missing)
			return nil, nil, fmt.Errorf("core: job %s: workers %v never acknowledged their plan", job.Name, missing)
		}
	}
	e.broadcastDirectory(master, workers)
	e.remote = rr
	rc.SetOnDown(func(w string) { _ = e.FailWorker(w) })
	return master, ts, nil
}

// broadcastDirectory pushes the current directory snapshot to workers.
func (e *Engine) broadcastDirectory(master transport.Endpoint, workers []string) {
	snap := e.rc.dir.Snapshot()
	for _, w := range workers {
		// Workers that miss a snapshot re-learn moved addresses from the
		// next plan; the rollback that follows respawn re-drives traffic.
		_ = e.sendReliable(master, ctlAddr(w), transport.Message{Kind: kindDir, Payload: dirMsg{Entries: snap}})
	}
}

// respawnPlans re-sends full plans at a new epoch to every live worker
// after pairs moved off a dead one, and returns the ack-pending set.
// The caller (the master loop) defers the recovery rollback until every
// ack arrives, because tasks that do not exist yet cannot acknowledge a
// rollback.
func (e *Engine) respawnPlans(master transport.Endpoint, run *runState, live map[string]bool) map[string]bool {
	rr := e.remote
	rr.epoch++
	pending := make(map[string]bool)
	for w, ok := range live {
		if !ok {
			continue
		}
		pending[w] = true
		plan := rr.buildPlan(run, w, rr.epoch)
		// A worker that cannot be reached here is caught by the respawn
		// deadline in the master loop and declared failed itself.
		_ = e.sendReliable(master, ctlAddr(w), transport.Message{Kind: kindPlan, Payload: plan})
	}
	return pending
}

// invalidateRun drops every cached connection and dial gate pointing at
// the run's task addresses — after a respawn some of them moved to new
// listen addresses, and a cached conn or armed backoff gate would keep
// traffic pointed at the dead worker.
func (e *Engine) invalidateRun(ts *taskSet) {
	if e.rc == nil {
		return
	}
	for _, a := range ts.all {
		e.rc.net.Invalidate(a)
	}
}

// releaseRemote ends the run on every registered worker and detaches
// the engine's per-run remote state.
func (e *Engine) releaseRemote(master transport.Endpoint, jobName string) {
	rc := e.rc
	rc.SetOnDown(nil)
	for _, w := range rc.Workers() {
		// Best-effort: a worker that misses the release notices the
		// master's silence (or the next run's plan) and cleans up then.
		_ = master.Send(ctlAddr(w), transport.Message{Kind: kindRelease, Payload: releaseMsg{Job: jobName}})
	}
	e.remote = nil
}

// Ensure dfs.FS stays satisfied by both deployment shapes; the worker
// host hands tasks a *dfs.Client, the master a *dfs.DFS.
var _ dfs.FS = (*dfs.Client)(nil)

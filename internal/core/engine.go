package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
	"imapreduce/internal/transport"
)

// Options tunes the engine.
type Options struct {
	// LoadBalance enables per-iteration task-pair migration (§3.4.2).
	LoadBalance bool
	// LBThreshold is the relative deviation of the slowest worker from
	// the trimmed average that triggers a migration. Default 0.25.
	LBThreshold float64
	// LBMinIter is the first iteration at which migration may happen
	// (early iterations are noisy). Default 3.
	LBMinIter int
	// Timeout aborts a run whose master hears nothing for this long —
	// a deadlock/livelock backstop. Default 2 minutes.
	Timeout time.Duration

	// HeartbeatInterval enables heartbeat failure detection (§3.4.1
	// extended): every persistent task beats the master at this
	// interval, and a worker none of whose tasks has beaten for
	// HeartbeatInterval×HeartbeatMisses is declared failed and recovered
	// through the same rollback-to-checkpoint path an injected failure
	// takes. 0 (the default) disables detection; failures must then be
	// announced via FailWorker.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive silent intervals declare a
	// worker dead. Default 3.
	HeartbeatMisses int
	// SendRetries bounds how many times the engine retries a failed
	// transport send (control commands, data chunks, reports) before
	// abandoning the frame and counting it in metrics.SendFailures.
	// Retries back off exponentially from SendRetryBackoff. Default 3.
	SendRetries int
	// SendRetryBackoff is the initial retry backoff. Default 1ms.
	SendRetryBackoff time.Duration
	// CheckpointRetries bounds how many times a reduce task retries a
	// failed checkpoint DFS write (with exponential backoff and node
	// re-placement) before abandoning that checkpoint — the run then
	// continues with an older rollback target instead of dying. Default 4.
	CheckpointRetries int
	// CheckpointRetryBackoff is the initial checkpoint retry backoff.
	// Default 2ms.
	CheckpointRetryBackoff time.Duration

	// Parallelism bounds how many pair-loop shards one task may execute
	// concurrently (the task goroutine plus Parallelism-1 run-scoped pool
	// workers). 0 (the default) means runtime.GOMAXPROCS(0); 1 forces the
	// serial path. Sharding preserves output order exactly — shards are
	// contiguous ranges merged in order — so results are identical to the
	// serial execution for any value.
	Parallelism int

	// Trace receives the run's structured events: task lifecycle,
	// per-iteration spans per task pair, transport retries. nil (the
	// default) disables tracing; every emission site is behind a nil
	// check and reads no clock, so the off path is free.
	Trace *trace.Recorder
	// OnIteration, if set, is called from the master goroutine at every
	// committed iteration boundary with that iteration's merged info.
	// It must return quickly: the master loop blocks on it.
	OnIteration func(IterInfo)
}

// Engine executes iMapReduce jobs over a DFS, a transport network and a
// cluster spec. The file system is the dfs.FS interface: the master's
// engine holds the real *dfs.DFS, while the engine a WorkerHost builds
// as task context holds a *dfs.Client talking to the master's block
// service — task code cannot tell the difference.
type Engine struct {
	fs   dfs.FS
	net  transport.Network
	spec cluster.Spec
	m    *metrics.Set
	opts Options

	// rc, when set via AttachRemote, deploys runs onto registered worker
	// processes instead of spawning task goroutines; remote holds the
	// active run's plan state (master goroutine only).
	rc     *RemoteCluster
	remote *remoteRun

	mu           sync.Mutex
	running      bool
	activeMaster transport.Endpoint
	// cancelRun cancels the active run's context; Kill uses it to
	// emulate a whole-process crash (master included).
	cancelRun context.CancelCauseFunc

	// stallMu guards stalls: per-worker wake-up times for injected
	// undetected hangs (StallWorker). Tasks consult it at every
	// processing and heartbeat point.
	stallMu sync.Mutex
	stalls  map[string]time.Time
}

// NewEngine creates an engine. m may be nil.
func NewEngine(fs dfs.FS, net transport.Network, spec cluster.Spec, m *metrics.Set, opts Options) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.LBThreshold <= 0 {
		opts.LBThreshold = 0.25
	}
	if opts.LBMinIter <= 0 {
		opts.LBMinIter = 3
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Minute
	}
	if opts.HeartbeatMisses <= 0 {
		opts.HeartbeatMisses = 3
	}
	if opts.SendRetries <= 0 {
		opts.SendRetries = 3
	}
	if opts.SendRetryBackoff <= 0 {
		opts.SendRetryBackoff = time.Millisecond
	}
	if opts.CheckpointRetries <= 0 {
		opts.CheckpointRetries = 4
	}
	if opts.CheckpointRetryBackoff <= 0 {
		opts.CheckpointRetryBackoff = 2 * time.Millisecond
	}
	return &Engine{fs: fs, net: net, spec: spec, m: m, opts: opts, stalls: make(map[string]time.Time)}, nil
}

// sendReliable sends through the endpoint with the engine's bounded
// retry policy, counting retries and abandoned frames. It returns the
// final error so callers that must not lose the frame can escalate;
// most task-side callers ignore it (shutdown races are expected).
func (e *Engine) sendReliable(ep transport.Endpoint, to string, msg transport.Message) error {
	attempts, err := transport.ReliableSend(ep, to, msg, e.opts.SendRetries, e.opts.SendRetryBackoff)
	if attempts > 1 {
		e.m.Add(metrics.SendRetries, int64(attempts-1))
		e.opts.Trace.Emit(trace.KindSendRetry, "", -1, 0, trace.Attr{Key: "to", Value: to})
	}
	if err != nil {
		e.m.Add(metrics.SendFailures, 1)
		e.opts.Trace.Emit(trace.KindSendFail, "", -1, 0, trace.Attr{Key: "to", Value: to})
	}
	return err
}

// FS returns the engine's file system.
func (e *Engine) FS() dfs.FS { return e.fs }

// Spec returns the engine's cluster spec.
func (e *Engine) Spec() cluster.Spec { return e.spec }

// stretch emulates a slow worker by padding a nominal compute duration.
func (e *Engine) stretch(worker string, d time.Duration) {
	if extra := e.spec.StretchFor(worker, d) - d; extra > 0 {
		time.Sleep(extra)
	}
}

// ErrKilled is the cause a killed run's error wraps: Kill emulates the
// whole engine process dying mid-run.
var ErrKilled = errors.New("core: engine killed")

// Kill tears the active run down as if the engine process crashed: the
// master stops coordinating, every task aborts *without* writing final
// output, and the run returns an error wrapping ErrKilled. The DFS
// contents — checkpoints and committed manifests — survive untouched,
// so a fresh engine over the same DFS can Resume the job.
func (e *Engine) Kill() error {
	e.mu.Lock()
	cancel := e.cancelRun
	e.mu.Unlock()
	if cancel == nil {
		return fmt.Errorf("core: no active run")
	}
	cancel(ErrKilled)
	return nil
}

// FailWorker injects a worker crash into the active run: the master
// recovers by re-placing the worker's task pairs and rolling every task
// back to the last durable checkpoint (§3.4.1).
func (e *Engine) FailWorker(id string) error {
	e.mu.Lock()
	ep := e.activeMaster
	e.mu.Unlock()
	if ep == nil {
		return fmt.Errorf("core: no active run")
	}
	return ep.Send(ep.Addr(), transport.Message{Kind: kindFail, Payload: failMsg{Worker: id}})
}

// StallWorker freezes every task currently bound to worker id for d: the
// tasks stop processing messages and stop heartbeating but announce
// nothing — an *undetected* hang (GC pause, swap storm, wedged runtime).
// With heartbeat detection enabled (Options.HeartbeatInterval > 0) the
// master notices the missed beats, declares the worker failed, and rolls
// back to the last checkpoint; the stalled goroutines wake afterwards
// and rejoin at the new generation. Without detection the run sits until
// the stall ends or the global Timeout fires.
func (e *Engine) StallWorker(id string, d time.Duration) {
	until := time.Now().Add(d)
	e.stallMu.Lock()
	if cur, ok := e.stalls[id]; !ok || until.After(cur) {
		e.stalls[id] = until
	}
	e.stallMu.Unlock()
}

// stallPoint blocks the calling task goroutine while its worker is
// inside an injected hang window.
func (e *Engine) stallPoint(worker string) {
	e.stallMu.Lock()
	until, ok := e.stalls[worker]
	if ok && !time.Now().Before(until) {
		delete(e.stalls, worker) // expired: clean up lazily
		ok = false
	}
	e.stallMu.Unlock()
	if ok {
		if d := time.Until(until); d > 0 {
			time.Sleep(d)
		}
	}
}

// IterInfo describes one completed iteration.
type IterInfo struct {
	Iter int
	// Dist is the merged distance against the previous iteration (0
	// when the job has no Distance function).
	Dist float64
	// CompletedAt is when the iteration's last reduce report arrived,
	// measured from Run start.
	CompletedAt time.Duration
	// MaxTaskElapsed is the slowest task's processing time this
	// iteration — the signal the load balancer works from.
	MaxTaskElapsed time.Duration
	// CumShuffleBytes and CumStateBytes are the engine's cumulative
	// traffic counters sampled at this iteration boundary. With
	// asynchronous maps the next iteration may already be in flight, so
	// per-iteration deltas are approximate.
	CumShuffleBytes int64
	CumStateBytes   int64
}

// Result reports a completed run.
type Result struct {
	Iterations    int
	Converged     bool // stopped by DistThreshold or the auxiliary decision
	InitTime      time.Duration
	PerIter       []IterInfo
	TotalWall     time.Duration
	OutputPath    string
	OutputRecords int
	Migrations    int
	Recoveries    int
}

// runState is the shared routing table for one run. Task goroutines
// consult worker bindings through it; the master updates them on
// migration and recovery.
type runState struct {
	name       string
	mainPhases int
	mainTasks  int
	auxTasks   int
	outputPath string

	// pool is the run-scoped worker pool tasks shard their pair loops
	// across; closed (and joined) at run teardown.
	pool *workerPool

	mu         sync.RWMutex
	pairWorker []string // main task pairs
	auxWorker  []string
}

func (r *runState) ckptPath(iter, part int) string {
	return fmt.Sprintf("/_imr/%s/ckpt-%06d/part-%d", r.name, iter, part)
}

func (r *runState) staticPartPath(phase, part int) string {
	return fmt.Sprintf("/_imr/%s/static-%d/part-%d", r.name, phase, part)
}

// workerOfPhasePair returns the worker currently hosting pair idx of the
// given global phase (auxiliary phases index their own table).
func (r *runState) workerOfPhasePair(phase, idx int) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if phase >= r.mainPhases {
		return r.auxWorker[idx]
	}
	return r.pairWorker[idx]
}

func (r *runState) setPairWorker(idx int, w string, aux bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if aux {
		r.auxWorker[idx] = w
	} else {
		r.pairWorker[idx] = w
	}
}

// Run executes job to termination. One run at a time per engine:
// concurrent calls return an error rather than sharing endpoints.
func (e *Engine) Run(job *Job) (*Result, error) {
	return e.RunCtx(context.Background(), job)
}

// RunCtx is Run with cancellation: when ctx is done the master aborts
// every task and returns an error wrapping ctx's cause, so
// errors.Is(err, context.Canceled) (or DeadlineExceeded) holds. A
// canceled run writes no final output.
func (e *Engine) RunCtx(ctx context.Context, job *Job) (*Result, error) {
	return e.runCtx(ctx, job, false)
}

// Resume cold-restarts job from its newest durable checkpoint: the
// engine (typically a fresh one, after the previous engine died)
// discovers the newest complete manifest in the DFS, verifies it
// (partition files present with matching sizes and CRCs, job
// fingerprint matching the submitted definition), rebuilds the run
// state, and continues from the manifest's iteration. The completed
// run's output is identical to an uninterrupted run of the same job.
func (e *Engine) Resume(job *Job) (*Result, error) {
	return e.ResumeCtx(context.Background(), job)
}

// ResumeCtx is Resume with cancellation.
func (e *Engine) ResumeCtx(ctx context.Context, job *Job) (*Result, error) {
	return e.runCtx(ctx, job, true)
}

func (e *Engine) runCtx(ctx context.Context, job *Job, resume bool) (*Result, error) {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: engine already has an active run")
	}
	e.running = true
	e.mu.Unlock()
	ctx, cancel := context.WithCancelCause(ctx)
	e.mu.Lock()
	e.cancelRun = cancel
	e.mu.Unlock()
	defer func() {
		cancel(nil)
		e.mu.Lock()
		e.running = false
		e.cancelRun = nil
		e.mu.Unlock()
	}()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: job %s: %w", job.Name, err)
	}
	start := time.Now()
	e.opts.Trace.Emit(trace.KindRunStart, "master", -1, 0, trace.Attr{Key: "job", Value: job.Name})
	phases := job.Phases()
	aux := job.auxiliary
	for i, p := range phases {
		if err := p.validate(i, false); err != nil {
			return nil, err
		}
		if i > 0 && p.auxiliary != nil {
			return nil, fmt.Errorf("core: job %s: auxiliary phases attach to the first job only", p.Name)
		}
	}
	if aux != nil {
		if err := aux.validate(0, true); err != nil {
			return nil, err
		}
		if job.AuxDecide == nil {
			return nil, fmt.Errorf("core: job %s has an auxiliary phase but no AuxDecide", job.Name)
		}
	}
	last := phases[len(phases)-1]
	if last.MaxIter <= 0 && (last.DistThreshold <= 0 || last.Distance == nil) && aux == nil {
		return nil, fmt.Errorf("core: job %s has no termination condition", job.Name)
	}
	if last.Mapping == OneToAll && len(phases) > 1 {
		return nil, fmt.Errorf("core: job %s: OneToAll loop-back with multiple phases is unsupported", job.Name)
	}

	workers := e.spec.IDs()
	n := job.NumTasks
	if n <= 0 {
		n = len(workers)
	}
	auxN := 0
	if aux != nil {
		auxN = aux.NumTasks
		if auxN <= 0 {
			auxN = n
		}
		if aux.Mapping == OneToOne && auxN != n {
			return nil, fmt.Errorf("core: auxiliary phase with OneToOne mapping needs NumTasks == main (%d != %d)", auxN, n)
		}
		if aux.Mapping == OneToAll && aux.StaticPath == "" {
			return nil, fmt.Errorf("core: auxiliary OneToAll phase needs StaticPath")
		}
	}
	if job.Mapping == OneToAll && job.StaticPath == "" {
		return nil, fmt.Errorf("core: OneToAll job needs StaticPath")
	}

	// Persistent tasks need enough slots to all start at once (§3.1.1).
	perWorkerMain := (n + len(workers) - 1) / len(workers) * len(phases)
	perWorkerAux := 0
	if aux != nil {
		perWorkerAux = (auxN + len(workers) - 1) / len(workers)
	}
	if need := perWorkerMain + perWorkerAux; need > e.spec.MapSlots || need > e.spec.ReduceSlots {
		return nil, fmt.Errorf("core: job %s needs %d persistent task slots per worker, cluster provides %d map / %d reduce; lower NumTasks or raise slots",
			job.Name, need, e.spec.MapSlots, e.spec.ReduceSlots)
	}

	run := &runState{
		name:       job.Name,
		mainPhases: len(phases),
		mainTasks:  n,
		auxTasks:   auxN,
		outputPath: job.OutputPath,
		pool:       newWorkerPool(e.opts.Parallelism),
		pairWorker: make([]string, n),
		auxWorker:  make([]string, auxN),
	}
	if run.outputPath == "" {
		run.outputPath = "/_imr/" + job.Name + "/output"
	}
	for i := 0; i < n; i++ {
		run.pairWorker[i] = workers[i%len(workers)]
	}
	for i := 0; i < auxN; i++ {
		run.auxWorker[i] = workers[i%len(workers)]
	}

	// Resume: locate and verify the newest durable manifest before
	// spending anything on initialization. Its placement is adopted when
	// every recorded worker is still in the cluster, so partitions land
	// where their data already is; otherwise the round-robin default
	// stands and reads go remote.
	resumeFrom := 0
	if resume {
		man, err := e.findManifest(job, n, auxN, len(phases))
		if err != nil {
			return nil, err
		}
		resumeFrom = man.Iter
		known := make(map[string]bool, len(workers))
		for _, w := range workers {
			known[w] = true
		}
		adopt := len(man.Placement) == n && len(man.AuxPlacement) == auxN
		for _, w := range append(append([]string(nil), man.Placement...), man.AuxPlacement...) {
			if !known[w] {
				adopt = false
			}
		}
		if adopt {
			copy(run.pairWorker, man.Placement)
			copy(run.auxWorker, man.AuxPlacement)
		}
		e.m.Add(metrics.RunsResumed, 1)
		e.opts.Trace.Emit(trace.KindResume, "master", -1, resumeFrom,
			trace.Attr{Key: "job", Value: job.Name})
	}

	e.m.Add(metrics.JobsLaunched, 1)

	// Register every task endpoint and start dialing the connection mesh
	// now, so the TCP dial+handshake round trips overlap the scheduling
	// overhead the job sleeps off next and the static/state partitioning
	// after it, instead of competing with the first iteration.
	spawned := false
	if e.rc == nil {
		unwarm := e.prewarmNet(job, phases, n, auxN)
		defer func() {
			if !spawned {
				unwarm()
			}
		}()
	}

	// The one job submission and the one round of persistent-task
	// launches pay the scheduling overheads exactly once (§3.1.1).
	time.Sleep(e.spec.JobInitOverhead + e.spec.TaskStartOverhead)

	// One-time initialization (§3.1): partition the static data of every
	// phase and the initial state once, placing each part at its pair's
	// worker so subsequent loads are local. The initial state doubles as
	// checkpoint 0, the rollback base. A resumed run reuses the partition
	// files already in the DFS; a fresh run first clears the job's
	// checkpoint namespace so a stale manifest from an earlier run under
	// the same name can never satisfy a later Resume.
	staticPartsExist := func(phase, count int) bool {
		for i := 0; i < count; i++ {
			if !e.fs.Exists(run.staticPartPath(phase, i)) {
				return false
			}
		}
		return true
	}
	if !resume {
		e.gcCheckpoints(run, math.MaxInt)
	}
	for pi, p := range phases {
		if p.StaticPath == "" || (resume && staticPartsExist(pi, n)) {
			continue
		}
		if err := e.partitionToDFS(p.StaticPath, p.Ops, n, run, func(i int) string { return run.staticPartPath(pi, i) }, false); err != nil {
			return nil, fmt.Errorf("core: job %s: static init: %w", job.Name, err)
		}
	}
	if aux != nil && aux.StaticPath != "" && !(resume && staticPartsExist(len(phases), auxN)) {
		auxPhase := len(phases)
		if err := e.partitionToDFS(aux.StaticPath, aux.Ops, auxN, run, func(i int) string { return run.staticPartPath(auxPhase, i) }, true); err != nil {
			return nil, fmt.Errorf("core: job %s: aux static init: %w", job.Name, err)
		}
	}
	if !resume {
		if err := e.partitionToDFS(job.StatePath, last.Ops, n, run, func(i int) string { return run.ckptPath(0, i) }, false); err != nil {
			return nil, fmt.Errorf("core: job %s: state init: %w", job.Name, err)
		}
		// Checkpoint 0 is durable from the start: a run killed before its
		// first periodic checkpoint resumes from the initial state.
		if err := e.commitManifest(run, confFingerprint(job), 0, len(phases)); err != nil {
			return nil, fmt.Errorf("core: job %s: %w", job.Name, err)
		}
	}

	// Build and start the persistent tasks: goroutines in-process,
	// plans to registered worker processes in remote mode.
	spawn := e.spawnTasks
	if e.rc != nil {
		spawn = e.spawnRemote
	}
	master, tasks, err := spawn(job, phases, aux, run, n, auxN)
	if err != nil {
		return nil, err
	}
	spawned = true
	var runErr error
	defer func() {
		if e.rc != nil {
			// Remote tasks live in worker processes: release the run
			// there instead of touching local endpoints (Endpoint would
			// *create* them here).
			e.releaseRemote(master, job.Name)
		} else {
			for _, addr := range tasks.all {
				if ep, err := e.net.Endpoint(addr); err == nil {
					ep.Close()
				}
			}
		}
		master.Close()
		e.mu.Lock()
		e.activeMaster = nil
		e.mu.Unlock()
		// Join every task goroutine — including their in-flight
		// checkpoint writers — so no run-owned goroutine touches the DFS
		// or the network after a completed Run returns. A failed run may
		// hold a task wedged inside a user function (that is how silence
		// timeouts arise), so the error path waits only a short grace
		// before abandoning the stragglers, as the engine always has.
		// The pair-loop pool stops first: a straggler that still submits
		// shards just runs them inline (runShards never blocks on the
		// pool), and its workers are joined after the tasks so no
		// run-owned goroutine survives a clean return.
		run.pool.close()
		joined := make(chan struct{})
		go func() { tasks.wg.Wait(); run.pool.join(); close(joined) }()
		if runErr == nil {
			<-joined
			return
		}
		select {
		case <-joined:
		case <-time.After(500 * time.Millisecond):
		}
	}()
	e.mu.Lock()
	e.activeMaster = master
	e.mu.Unlock()

	// Arm the spec's chaos schedule: self-announced crashes and
	// undetected hangs, relative to the start of the run.
	var chaosTimers []*time.Timer
	for _, nd := range e.spec.Nodes {
		id := nd.ID
		if nd.CrashAfter > 0 {
			chaosTimers = append(chaosTimers, time.AfterFunc(nd.CrashAfter, func() {
				_ = e.FailWorker(id) // run may already be over
			}))
		}
		if nd.StallAfter > 0 && nd.StallFor > 0 {
			stallFor := nd.StallFor
			chaosTimers = append(chaosTimers, time.AfterFunc(nd.StallAfter, func() {
				e.StallWorker(id, stallFor)
			}))
		}
	}
	defer func() {
		for _, tm := range chaosTimers {
			tm.Stop()
		}
	}()

	initTime := time.Since(start)
	// The one-time init (§3.1) is charged to iteration 1, the way the
	// paper's first-iteration curves embed it.
	e.opts.Trace.RecordSpan(trace.SpanRunInit, "master", -1, 1, start, initTime)
	res, err := e.masterLoop(ctx, job, phases, aux, run, n, auxN, master, tasks, start, resumeFrom)
	runErr = err
	e.opts.Trace.Emit(trace.KindRunFinish, "master", -1, 0, trace.Attr{Key: "job", Value: job.Name})
	if err != nil {
		return nil, err
	}
	res.InitTime = initTime
	res.TotalWall = time.Since(start)
	res.OutputPath = run.outputPath
	return res, nil
}

// partitionToDFS reads a DFS input file, partitions its records with ops
// into parts, and writes each part at the worker hosting that pair —
// reads happen at a replica holder (local), writes pin the first replica
// at the consuming worker.
func (e *Engine) partitionToDFS(path string, ops kv.Ops, parts int, run *runState, partPath func(int) string, aux bool) error {
	splits, err := e.fs.Splits(path)
	if err != nil {
		return err
	}
	out := make([][]kv.Pair, parts)
	for _, s := range splits {
		at := ""
		if len(s.Locations) > 0 {
			at = s.Locations[0]
		}
		recs, err := e.fs.ReadSplit(s, at)
		if err != nil {
			return err
		}
		for _, r := range recs {
			p := ops.Partition(r.Key, parts)
			out[p] = append(out[p], r)
		}
	}
	for i, recs := range out {
		w := run.pairWorker[i]
		if aux {
			w = run.auxWorker[i]
		}
		if err := e.fs.WriteFile(partPath(i), w, recs, ops); err != nil {
			return err
		}
	}
	return nil
}

// taskSet records every spawned endpoint for command fan-out and
// cleanup.
type taskSet struct {
	// wg joins every task goroutine (and, transitively, the checkpoint
	// writers each reduce task joins before exiting) at run teardown.
	wg  sync.WaitGroup
	all []string // every task endpoint address
	// phase0Maps are the self-loading maps that receive the go command.
	phase0Maps []string
	// termReds are the termination-phase reduces (proceed commands and
	// final output).
	termReds []string
	// byPair[idx] lists the main-chain task addresses of pair idx
	// (across phases), for reassignment.
	byPair [][]string
	// auxByPair[idx] lists the auxiliary pair's addresses.
	auxByPair [][]string
}

// prewarmNet registers the master and every task endpoint up front and
// starts dialing the static connection mesh: master ↔ every task, each
// map to every reduce of its phase, and each reduce to its paired map
// of the next phase. OneToAll extras are warmed later by spawnTasks;
// warming is best-effort either way (a miss just means the first send
// dials inline). It returns a closer for the error path where the run
// dies before spawnTasks takes ownership of the endpoints.
func (e *Engine) prewarmNet(job *Job, phases []*Job, n, auxN int) func() {
	var eps []transport.Endpoint
	get := func(addr string) transport.Endpoint {
		ep, err := e.net.Endpoint(addr)
		if err != nil {
			return nil
		}
		eps = append(eps, ep)
		return ep
	}
	type pair struct{ mep, rep transport.Endpoint }
	master := get(masterAddr(job.Name))
	counts := make([]int, 0, len(phases)+1)
	for range phases {
		counts = append(counts, n)
	}
	if auxN > 0 {
		counts = append(counts, auxN)
	}
	mesh := make([][]pair, len(counts))
	for p, c := range counts {
		mesh[p] = make([]pair, c)
		for i := 0; i < c; i++ {
			mesh[p][i] = pair{get(mapAddr(job.Name, p, i)), get(redAddr(job.Name, p, i))}
		}
	}
	// Every endpoint exists now, so none of these dials can fail on an
	// unknown peer; fire them all and let them overlap.
	mAddr := masterAddr(job.Name)
	for p, c := range counts {
		reds := make([]string, c)
		for j := 0; j < c; j++ {
			reds[j] = redAddr(job.Name, p, j)
		}
		for i := 0; i < c; i++ {
			if master != nil {
				transport.Preconnect(master, mapAddr(job.Name, p, i), redAddr(job.Name, p, i))
			}
			if mep := mesh[p][i].mep; mep != nil {
				transport.Preconnect(mep, append([]string{mAddr}, reds...)...)
			}
			if rep := mesh[p][i].rep; rep != nil {
				peers := []string{mAddr}
				if p < len(phases) {
					peers = append(peers, mapAddr(job.Name, (p+1)%len(phases), i))
				}
				transport.Preconnect(rep, peers...)
			}
		}
	}
	return func() {
		for _, ep := range eps {
			ep.Close()
		}
	}
}

// spawnTasks creates the master endpoint and all persistent map/reduce
// task goroutines with their routing wired up.
func (e *Engine) spawnTasks(job *Job, phases []*Job, aux *Job, run *runState, n, auxN int) (transport.Endpoint, *taskSet, error) {
	master, err := e.net.Endpoint(masterAddr(job.Name))
	if err != nil {
		return nil, nil, err
	}
	ts := buildTaskSet(job.Name, len(phases), n, auxN)
	f := &taskFactory{e: e, job: job, phases: phases, aux: aux, run: run, n: n, auxN: auxN}

	// Deferred connection warming: every task's peer set is known here,
	// but the peer endpoints only exist once the spawn loops finish, so
	// the Preconnect calls are collected and fired at the end. On the TCP
	// transport this overlaps the dial+handshake round trips of the whole
	// mesh with the first iteration's load/compute instead of paying them
	// one by one inside the tasks' first send loops.
	var warm []func()

	spawnPair := func(phase, idx int, isAux bool) error {
		mep, err := e.net.Endpoint(mapAddr(job.Name, phase, idx))
		if err != nil {
			return err
		}
		mt := f.buildMapTask(phase, idx, mep)
		if err := mt.loadStatic(); err != nil {
			return err
		}
		rep, err := e.net.Endpoint(redAddr(job.Name, phase, idx))
		if err != nil {
			return err
		}
		rt := f.buildReduceTask(phase, idx, rep)
		warm = append(warm, func() {
			transport.Preconnect(mep, append([]string{masterAddr(job.Name)}, mt.redAddrs...)...)
			rtPeers := append([]string{masterAddr(job.Name)}, rt.targetAddrs...)
			transport.Preconnect(rep, append(rtPeers, rt.auxAddrs...)...)
		})
		worker, taskIdx, ph := run.pairWorker[idx], idx, fmt.Sprint(phase)
		if isAux {
			worker, taskIdx, ph = run.auxWorker[idx], n+idx, "aux"
		}
		e.m.Add(metrics.TasksLaunched, 2)
		e.opts.Trace.Emit(trace.KindTaskLaunch, worker, taskIdx, 0,
			trace.Attr{Key: "phase", Value: ph})
		ts.wg.Add(2)
		go func() { defer ts.wg.Done(); mt.loop() }()
		go func() { defer ts.wg.Done(); rt.loop() }()
		return nil
	}

	for pi := range phases {
		for i := 0; i < n; i++ {
			if err := spawnPair(pi, i, false); err != nil {
				return nil, nil, err
			}
		}
	}
	for i := 0; i < auxN; i++ {
		if err := spawnPair(len(phases), i, true); err != nil {
			return nil, nil, err
		}
	}
	transport.Preconnect(master, ts.all...)
	for _, w := range warm {
		w()
	}
	return master, ts, nil
}

package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"imapreduce/internal/kv"
)

// JobConf is the paper's string-keyed configuration interface (§3.5):
// jobs are assembled with job.set("mapred.iterjob.statepath", path),
// job.setInt("mapred.iterjob.maxiter", n), and so on, mirroring the
// Hadoop-based prototype's API. Build() returns the equivalent Job.
//
// Supported keys:
//
//	mapred.iterjob.statepath   string  initial state path (required)
//	mapred.iterjob.staticpath  string  static data path
//	mapred.iterjob.outputpath  string  final output path
//	mapred.iterjob.maxiter     int     iteration bound
//	mapred.iterjob.disthresh   float   distance threshold
//	mapred.iterjob.mapping     string  "one2one" (default) or "one2all"
//	mapred.iterjob.sync        bool    synchronous map execution
//	mapred.iterjob.numtasks    int     persistent task pairs
//	mapred.iterjob.buffer      int     reduce→map buffer threshold
//	mapred.iterjob.checkpoint  int     checkpoint interval
type JobConf struct {
	job  *Job
	errs []error
}

// Key is a typed JobConf configuration key. Using a distinct type makes
// a misspelled literal fail loudly at Build time with a suggestion,
// while untyped string constants (the Conf* aliases below, and string
// literals at call sites) still convert implicitly.
type Key string

// Configuration keys, named as in the paper.
const (
	KeyStatePath  Key = "mapred.iterjob.statepath"
	KeyStaticPath Key = "mapred.iterjob.staticpath"
	KeyOutputPath Key = "mapred.iterjob.outputpath"
	KeyMaxIter    Key = "mapred.iterjob.maxiter"
	KeyDistThresh Key = "mapred.iterjob.disthresh"
	KeyMapping    Key = "mapred.iterjob.mapping"
	KeySync       Key = "mapred.iterjob.sync"
	KeyNumTasks   Key = "mapred.iterjob.numtasks"
	KeyBuffer     Key = "mapred.iterjob.buffer"
	KeyCheckpoint Key = "mapred.iterjob.checkpoint"
)

// Aliases of the typed keys under their original names, kept for
// source compatibility.
const (
	ConfStatePath  = KeyStatePath
	ConfStaticPath = KeyStaticPath
	ConfOutputPath = KeyOutputPath
	ConfMaxIter    = KeyMaxIter
	ConfDistThresh = KeyDistThresh
	ConfMapping    = KeyMapping
	ConfSync       = KeySync
	ConfNumTasks   = KeyNumTasks
	ConfBuffer     = KeyBuffer
	ConfCheckpoint = KeyCheckpoint
)

// knownKeys lists every valid key, for the unknown-key suggestion.
var knownKeys = []Key{
	KeyStatePath, KeyStaticPath, KeyOutputPath, KeyMaxIter, KeyDistThresh,
	KeyMapping, KeySync, KeyNumTasks, KeyBuffer, KeyCheckpoint,
}

// failUnknown reports an unrecognized key, suggesting the closest known
// key when the typo is plausibly a misspelling of a mapred.* key.
func (c *JobConf) failUnknown(key Key) {
	best, bestDist := Key(""), 4
	if strings.HasPrefix(string(key), "mapred.") {
		for _, k := range knownKeys {
			if d := editDistance(string(key), string(k)); d < bestDist {
				best, bestDist = k, d
			}
		}
	}
	if best != "" {
		c.fail("core: unknown configuration key %q (did you mean %q?)", key, best)
		return
	}
	c.fail("core: unknown configuration key %q", key)
}

// editDistance is the Levenshtein distance, small-string sized.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// NewJobConf starts a configuration for a named job.
func NewJobConf(name string) *JobConf {
	return &JobConf{job: &Job{Name: name}}
}

func (c *JobConf) fail(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf(format, args...))
}

// Set assigns a string-valued key. Integer, float and boolean keys
// accept their string forms, as Hadoop configurations do. Unknown keys
// are collected and reported at Build time.
func (c *JobConf) Set(key Key, value string) *JobConf {
	switch key {
	case ConfStatePath:
		c.job.StatePath = value
	case ConfStaticPath:
		c.job.StaticPath = value
	case ConfOutputPath:
		c.job.OutputPath = value
	case ConfMapping:
		switch value {
		case "one2one":
			c.job.Mapping = OneToOne
		case "one2all":
			c.job.Mapping = OneToAll
		default:
			c.fail("core: %s must be one2one or one2all, got %q", ConfMapping, value)
		}
	case ConfMaxIter, ConfNumTasks, ConfBuffer, ConfCheckpoint:
		n, err := strconv.Atoi(value)
		if err != nil {
			c.fail("core: %s: %v", key, err)
			return c
		}
		c.SetInt(key, n)
	case ConfDistThresh:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			c.fail("core: %s: %v", key, err)
			return c
		}
		c.SetFloat(key, f)
	case ConfSync:
		b, err := strconv.ParseBool(value)
		if err != nil {
			c.fail("core: %s: %v", key, err)
			return c
		}
		c.SetBool(key, b)
	default:
		c.failUnknown(key)
	}
	return c
}

// SetInt assigns an integer-valued key
// (job.setInt("mapred.iterjob.maxiter", n) in the paper).
func (c *JobConf) SetInt(key Key, v int) *JobConf {
	switch key {
	case ConfMaxIter:
		c.job.MaxIter = v
	case ConfNumTasks:
		c.job.NumTasks = v
	case ConfBuffer:
		c.job.BufferThreshold = v
	case ConfCheckpoint:
		c.job.CheckpointEvery = v
	default:
		c.fail("core: %q is not an integer key", key)
	}
	return c
}

// SetFloat assigns a float-valued key
// (job.setFloat("mapred.iterjob.disthresh", eps)).
func (c *JobConf) SetFloat(key Key, v float64) *JobConf {
	switch key {
	case ConfDistThresh:
		c.job.DistThreshold = v
	default:
		c.fail("core: %q is not a float key", key)
	}
	return c
}

// SetBool assigns a boolean key
// (job.setBoolean("mapred.iterjob.sync", true)).
func (c *JobConf) SetBool(key Key, v bool) *JobConf {
	switch key {
	case ConfSync:
		c.job.SyncMap = v
	default:
		c.fail("core: %q is not a boolean key", key)
	}
	return c
}

// SetMap, SetReduce, SetCombine and SetDistance attach the user
// functions (the paper's map/reduce/distance interfaces).
func (c *JobConf) SetMap(fn MapFunc) *JobConf { c.job.Map = fn; return c }

// SetReduce attaches the reduce function.
func (c *JobConf) SetReduce(fn ReduceFunc) *JobConf { c.job.Reduce = fn; return c }

// SetCombine attaches the optional map-side combiner.
func (c *JobConf) SetCombine(fn func(key any, values []any) (any, error)) *JobConf {
	c.job.Combine = fn
	return c
}

// SetDistance attaches the distance measurement.
func (c *JobConf) SetDistance(fn DistFunc) *JobConf { c.job.Distance = fn; return c }

// SetOps attaches the key/value operations bundle.
func (c *JobConf) SetOps(ops kv.Ops) *JobConf { c.job.Ops = ops; return c }

// AddSuccessor chains another configured phase
// (job1.addSuccessor(job2), §5.2.2).
func (c *JobConf) AddSuccessor(next *JobConf) *JobConf {
	c.job.AddSuccessor(next.job)
	c.errs = append(c.errs, next.errs...)
	return c
}

// AddAuxiliary attaches an auxiliary phase with its master-side
// decision (job1.addAuxiliary(job2), §5.3.2).
func (c *JobConf) AddAuxiliary(aux *JobConf, decide func(iter int, outputs []kv.Pair) bool) *JobConf {
	c.job.AddAuxiliary(aux.job)
	c.job.AuxDecide = decide
	c.errs = append(c.errs, aux.errs...)
	return c
}

// Build returns the configured Job, or every configuration error
// collected so far, joined.
func (c *JobConf) Build() (*Job, error) {
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	return c.job, nil
}

package core

import (
	"runtime"
	"sync"

	"imapreduce/internal/kv"
)

// Intra-task parallelism (perf round 2): a run-scoped pool of worker
// goroutines that map and reduce tasks use to shard their pair loops.
// The task goroutine itself always executes shard 0, so a pool with no
// free workers degrades to the serial path instead of queueing — the
// pool only ever *adds* concurrency, never latency.
//
// Sharding thresholds: tiny chunks are not worth the handoff. A pair
// loop is sharded only when it has at least parallelMinPairs records,
// and each shard gets at least parallelShardPairs of them.
const (
	parallelMinPairs   = 256
	parallelShardPairs = 128
)

// workerPool runs closures on a fixed set of goroutines. Dispatch is
// strictly non-blocking: submit hands the closure to an idle worker or
// reports false so the caller runs it inline. close is idempotent and
// only stops workers; closures already accepted still complete (their
// completion is the caller's WaitGroup, not the pool's).
type workerPool struct {
	fns  chan func()
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
	n    int // target shard-count ceiling (Options.Parallelism)
}

// newWorkerPool starts parallelism-1 workers (the task goroutine is the
// remaining lane). parallelism <= 0 means runtime.GOMAXPROCS(0); a pool
// with parallelism 1 starts no goroutines and shards nothing.
func newWorkerPool(parallelism int) *workerPool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	p := &workerPool{
		fns:  make(chan func()),
		done: make(chan struct{}),
		n:    parallelism,
	}
	for i := 1; i < parallelism; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case fn := <-p.fns:
					fn()
				case <-p.done:
					return
				}
			}
		}()
	}
	return p
}

// close stops the workers. Safe to call more than once and while tasks
// still submit: fns is unbuffered and never closed, so a straggler's
// submit simply finds no receiver and runs inline.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.done) })
}

// join waits for the worker goroutines to exit; call after close.
func (p *workerPool) join() { p.wg.Wait() }

// shardsFor returns how many shards an n-pair loop should split into:
// 1 (serial) unless the loop is big enough, then at most p.n and at
// least parallelShardPairs pairs per shard.
func (p *workerPool) shardsFor(n int) int {
	if p == nil || p.n < 2 || n < parallelMinPairs {
		return 1
	}
	shards := n / parallelShardPairs
	if shards > p.n {
		shards = p.n
	}
	if shards < 2 {
		return 1
	}
	return shards
}

// shardRange returns the half-open pair range of shard i out of shards —
// contiguous, in order, covering [0, n) exactly.
func shardRange(n, shards, i int) (lo, hi int) {
	return i * n / shards, (i + 1) * n / shards
}

// runShards executes fn(shard) for every shard in [0, shards). Shards
// 1..shards-1 are offered to idle pool workers (inline when none is
// free); the calling task goroutine runs shard 0 and waits for the
// rest. fn must not touch task state that other shards write — each
// shard accumulates into its own slot and the caller merges.
func (p *workerPool) runShards(shards int, fn func(shard int)) {
	if shards < 2 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	for i := 1; i < shards; i++ {
		i := i
		job := func() {
			defer wg.Done()
			fn(i)
		}
		select {
		case p.fns <- job:
		default:
			job() // no idle worker: run in the caller's lane
		}
	}
	fn(0)
	wg.Wait()
}

// shardedEmits collects one emit buffer per (shard, reduce partition):
// workers append into their own shard's row, the task goroutine merges
// rows in shard order so the merged stream is byte-identical to the
// serial loop's.
type shardedEmits struct {
	bufs [][]kv.Pair // [shard][partition-interleaved] — see emit
	nred int
}

func newShardedEmits(shards, nred int) *shardedEmits {
	return &shardedEmits{bufs: make([][]kv.Pair, shards*nred), nred: nred}
}

// emit returns the kv.Emit for one shard; partition fn is the job's.
func (se *shardedEmits) emit(shard int, partition func(k any) int) kv.Emit {
	base := shard * se.nred
	return func(k, v any) {
		r := partition(k)
		se.bufs[base+r] = append(se.bufs[base+r], kv.Pair{Key: k, Value: v})
	}
}

// forPartition calls visit over every shard's buffer for reduce
// partition r, in shard order.
func (se *shardedEmits) forPartition(r int, visit func(ps []kv.Pair)) {
	for s := 0; s*se.nred < len(se.bufs); s++ {
		if ps := se.bufs[s*se.nred+r]; len(ps) > 0 {
			visit(ps)
		}
	}
}

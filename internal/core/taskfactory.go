package core

import (
	"imapreduce/internal/kv"
	"imapreduce/internal/transport"
)

// taskFactory builds persistent map/reduce tasks with their routing
// wired up. It is shared by the in-process spawner (spawnTasks) and the
// remote WorkerHost, which must construct identical task wiring for the
// pairs a plan assigns to it: the routing rules live here exactly once,
// so the two deployment modes cannot drift apart.
type taskFactory struct {
	e      *Engine
	job    *Job
	phases []*Job
	aux    *Job
	run    *runState
	n      int
	auxN   int
}

// auxPhaseIndex is the phase number of the auxiliary pairs (one past
// the main phases).
func (f *taskFactory) auxPhaseIndex() int { return len(f.phases) }

func bufThreshOf(j *Job) int {
	if j.BufferThreshold > 0 {
		return j.BufferThreshold
	}
	return DefaultBufferThreshold
}

// buildMapTask constructs (without starting) the map task of
// (phase, idx) bound to ep. phase == len(phases) selects the auxiliary
// job. loadStatic is not called here; the caller decides when the DFS
// read happens.
func (f *taskFactory) buildMapTask(phase, idx int, ep transport.Endpoint) *mapTask {
	if phase == f.auxPhaseIndex() {
		redAddrs := make([]string, f.auxN)
		for i := range redAddrs {
			redAddrs[i] = redAddr(f.job.Name, phase, i)
		}
		feeders := 1
		broadcast := false
		if f.aux.Mapping == OneToAll {
			feeders, broadcast = f.n, true // fed by all main termination reduces
		}
		return &mapTask{
			e: f.e, run: f.run, jobName: f.job.Name, job: f.aux,
			phase: phase, idx: idx, isAux: true,
			broadcast: broadcast,
			stream:    !f.aux.SyncMap && !broadcast,
			feeders:   feeders,
			worker:    f.run.auxWorker[idx],
			ep:        ep,
			redAddrs:  redAddrs,
			numReduce: f.auxN,
			bufThresh: bufThreshOf(f.aux),
			outBuf:    make([][]kv.Pair, f.auxN),
			pend:      make(map[int]*mapAccum),
		}
	}
	p := f.phases[phase]
	redAddrs := make([]string, f.n)
	for i := range redAddrs {
		redAddrs[i] = redAddr(f.job.Name, phase, i)
	}
	feeders := 1
	broadcast := false
	if phase == 0 && p.Mapping == OneToAll {
		feeders, broadcast = f.n, true
	}
	return &mapTask{
		e: f.e, run: f.run, jobName: f.job.Name, job: p,
		phase: phase, idx: idx,
		selfLoads: phase == 0,
		broadcast: broadcast,
		stream:    !p.SyncMap && !broadcast,
		feeders:   feeders,
		worker:    f.run.pairWorker[idx],
		ep:        ep,
		redAddrs:  redAddrs,
		numReduce: f.n,
		bufThresh: bufThreshOf(p),
		outBuf:    make([][]kv.Pair, f.n),
		pend:      make(map[int]*mapAccum),
	}
}

// buildReduceTask constructs (without starting) the reduce task of
// (phase, idx) bound to ep, including the loop-back / broadcast /
// auxiliary fan-out routing of its output state.
func (f *taskFactory) buildReduceTask(phase, idx int, ep transport.Endpoint) *reduceTask {
	if phase == f.auxPhaseIndex() {
		return &reduceTask{
			e: f.e, run: f.run, jobName: f.job.Name, job: f.aux,
			phase: phase, idx: idx, isAux: true,
			toMaster:  true,
			worker:    f.run.auxWorker[idx],
			ep:        ep,
			numMaps:   f.auxN,
			bufThresh: bufThreshOf(f.aux),
			pend:      make(map[int]*redAccum),
			prev:      make(map[any]any),
		}
	}
	p := f.phases[phase]
	last := len(f.phases) - 1
	lastJob := f.phases[last]
	gated := phase == last &&
		((lastJob.DistThreshold > 0 && lastJob.Distance != nil) || f.aux != nil)
	rt := &reduceTask{
		e: f.e, run: f.run, jobName: f.job.Name, job: p,
		phase: phase, idx: idx,
		isTermination: phase == last,
		gated:         gated,
		worker:        f.run.pairWorker[idx],
		ep:            ep,
		numMaps:       f.n,
		bufThresh:     bufThreshOf(p),
		pend:          make(map[int]*redAccum),
		prev:          make(map[any]any),
		held:          make(map[int][]kv.Pair),
	}
	// Route the new state: phase pi feeds phase pi+1's maps within the
	// iteration; the last phase loops back to phase 0's maps for the
	// next iteration.
	nextPhase := phase + 1
	rt.targetIterDelta = 0
	if phase == last {
		nextPhase = 0
		rt.targetIterDelta = 1
	}
	nextJob := f.phases[nextPhase]
	if nextPhase == 0 && nextJob.Mapping == OneToAll {
		rt.targetAddrs = make([]string, f.n)
		for j := range rt.targetAddrs {
			rt.targetAddrs[j] = mapAddr(f.job.Name, nextPhase, j)
		}
	} else {
		rt.targetAddrs = []string{mapAddr(f.job.Name, nextPhase, idx)}
	}
	rt.targetPhase = nextPhase
	if phase == last && f.aux != nil {
		auxPhase := f.auxPhaseIndex()
		rt.auxPhase = auxPhase
		if f.aux.Mapping == OneToAll {
			rt.auxAddrs = make([]string, f.auxN)
			for j := range rt.auxAddrs {
				rt.auxAddrs[j] = mapAddr(f.job.Name, auxPhase, j)
			}
		} else {
			rt.auxAddrs = []string{mapAddr(f.job.Name, auxPhase, idx)}
		}
	}
	return rt
}

// buildTaskSet computes the full address bookkeeping of a run without
// creating any endpoints. The in-process spawner binds every address
// locally; the remote spawner ships them out in plans instead and binds
// none.
func buildTaskSet(jobName string, numPhases, n, auxN int) *taskSet {
	ts := &taskSet{byPair: make([][]string, n), auxByPair: make([][]string, auxN)}
	last := numPhases - 1
	for pi := 0; pi < numPhases; pi++ {
		for i := 0; i < n; i++ {
			ma, ra := mapAddr(jobName, pi, i), redAddr(jobName, pi, i)
			ts.all = append(ts.all, ma, ra)
			ts.byPair[i] = append(ts.byPair[i], ma, ra)
			if pi == 0 {
				ts.phase0Maps = append(ts.phase0Maps, ma)
			}
			if pi == last {
				ts.termReds = append(ts.termReds, ra)
			}
		}
	}
	for i := 0; i < auxN; i++ {
		ma, ra := mapAddr(jobName, numPhases, i), redAddr(jobName, numPhases, i)
		ts.all = append(ts.all, ma, ra)
		ts.auxByPair[i] = append(ts.auxByPair[i], ma, ra)
	}
	return ts
}

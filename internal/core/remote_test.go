package core_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/jobs"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// These tests run the full out-of-process protocol — registration,
// plan deployment, DFS-over-the-wire, failure respawn, master restart —
// with master and workers as separate TCP networks inside one test
// process. The real-binary version lives in the proc harness; here the
// same protocol is exercised where the race detector and the package's
// leak check can see it.

const remoteWorkers = 3

// remoteMaster is the master half: control endpoint, namenode + block
// service, engine.
type remoteMaster struct {
	dir  *transport.Directory
	net  *transport.TCPNetwork
	rc   *core.RemoteCluster
	fs   *dfs.DFS
	m    *metrics.Set
	eng  *core.Engine
	svc  *dfs.Service
	spec cluster.Spec
	hp   string // concrete host:port of the control endpoint
}

// startMaster assembles a master over fs listening at listen
// ("127.0.0.1:0" for fresh tests, a previous hp to emulate a restart on
// the same address).
func startMaster(t *testing.T, fs *dfs.DFS, m *metrics.Set, listen string, opts core.Options) *remoteMaster {
	t.Helper()
	dir := transport.NewDirectory()
	net := transport.NewTCPNetworkOpts(transport.TCPOptions{Resolver: dir.Resolve})
	rc, err := core.NewRemoteCluster(net, dir, core.RemoteClusterOptions{Listen: listen})
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	hp, ok := net.ListenAddr(core.CtlMasterAddr)
	if !ok {
		t.Fatal("control endpoint has no listen address")
	}
	fsEp, err := net.Endpoint(core.DFSAddr)
	if err != nil {
		t.Fatal(err)
	}
	svc := dfs.Serve(fs, fsEp)
	if dhp, ok := net.ListenAddr(core.DFSAddr); ok {
		dir.Set(core.DFSAddr, dhp)
	}
	spec := cluster.Uniform(remoteWorkers)
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	eng, err := core.NewEngine(fs, net, spec, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachRemote(rc)
	return &remoteMaster{dir: dir, net: net, rc: rc, fs: fs, m: m, eng: eng, svc: svc, spec: spec, hp: hp}
}

// kill emulates the master process dying: every socket goes away at
// once, nothing is drained.
func (rm *remoteMaster) kill() {
	rm.rc.Close()
	rm.net.Close()
	rm.svc.Wait()
}

// workerProc is one worker "process".
type workerProc struct {
	host   *core.WorkerHost
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

func startWorker(t *testing.T, id, masterHP string) *workerProc {
	t.Helper()
	host, err := core.NewWorkerHost(core.WorkerHostOptions{
		ID:         id,
		MasterAddr: masterHP,
		Build:      jobs.Build,
		// Aggressive liveness so master-death tests converge quickly —
		// but with margin for the race detector's scheduling drag.
		PingInterval: 50 * time.Millisecond,
		PingMisses:   6,
		JoinBackoff:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &workerProc{host: host, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(w.done)
		w.err = host.Run(ctx)
	}()
	return w
}

// stop shuts the worker down gracefully and waits for Run to return.
func (w *workerProc) stop(t *testing.T) {
	t.Helper()
	w.cancel()
	select {
	case <-w.done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not shut down")
	}
	if w.err != nil {
		t.Fatalf("worker exited with error: %v", w.err)
	}
}

func startWorkers(t *testing.T, rm *remoteMaster) []*workerProc {
	t.Helper()
	ws := make([]*workerProc, remoteWorkers)
	for i := range ws {
		ws[i] = startWorker(t, fmt.Sprintf("worker-%d", i), rm.hp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := rm.rc.WaitForWorkers(ctx, remoteWorkers); err != nil {
		t.Fatal(err)
	}
	return ws
}

// readParts collects every output partition into one key→value map.
func readParts(t *testing.T, fs *dfs.DFS, at, dir string) map[int64]any {
	t.Helper()
	out := map[int64]any{}
	for _, p := range fs.List(dir + "/") {
		recs, err := fs.ReadFile(p, at)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			out[r.Key.(int64)] = r.Value
		}
	}
	return out
}

// inProcessRun runs the registry job on a classic single-process
// engine (channel transport, local DFS) — the reference every remote
// run must match bit for bit.
func inProcessRun(t *testing.T, key string, params map[string]string) map[int64]any {
	t.Helper()
	m := metrics.NewSet()
	spec := cluster.Uniform(remoteWorkers)
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	if err := jobs.Seed(fs, spec.IDs()[0], key, params); err != nil {
		t.Fatal(err)
	}
	job, err := jobs.Build(key, params)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(fs, transport.NewChanNetwork(), spec, m, core.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := readParts(t, fs, spec.IDs()[0], res.OutputPath)
	if len(out) == 0 {
		t.Fatal("reference run produced no output")
	}
	return out
}

// TestRemoteRunMatchesInProcess is the deployment contract: the same
// registry job run across master+worker networks produces output
// bit-identical to the single-process engine, for both PageRank
// (order-sensitive float sums made deterministic by the registry's
// sorted reduce) and SSSP (order-independent min).
func TestRemoteRunMatchesInProcess(t *testing.T) {
	cases := []struct {
		key    string
		params map[string]string
	}{
		{"pagerank", map[string]string{"name": "pr-remote", "nodes": "200", "maxiter": "6", "ckpt": "2", "tasks": "4"}},
		{"sssp", map[string]string{"name": "sssp-remote", "nodes": "200", "maxiter": "8", "ckpt": "2", "tasks": "4"}},
	}
	for _, tc := range cases {
		t.Run(tc.key, func(t *testing.T) {
			want := inProcessRun(t, tc.key, tc.params)

			m := metrics.NewSet()
			fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, cluster.Uniform(remoteWorkers).IDs(), m)
			rm := startMaster(t, fs, m, "127.0.0.1:0", core.Options{})
			ws := startWorkers(t, rm)
			defer rm.kill()
			defer func() {
				for _, w := range ws {
					w.stop(t)
				}
			}()

			if err := jobs.Seed(fs, rm.spec.IDs()[0], tc.key, tc.params); err != nil {
				t.Fatal(err)
			}
			job, err := jobs.Build(tc.key, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			res, err := rm.eng.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			got := readParts(t, fs, rm.spec.IDs()[0], res.OutputPath)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("remote output differs from in-process run:\n got %v\nwant %v", got, want)
			}
			if launched := m.Get(metrics.TasksLaunched); launched != 0 {
				t.Fatalf("master launched %d local tasks; remote runs must not", launched)
			}
		})
	}
}

// TestRemoteRunNeedsRegistry: a job built by hand (no registry key)
// cannot be shipped to workers and must be rejected up front.
func TestRemoteRunNeedsRegistry(t *testing.T) {
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, cluster.Uniform(remoteWorkers).IDs(), m)
	rm := startMaster(t, fs, m, "127.0.0.1:0", core.Options{})
	ws := startWorkers(t, rm)
	defer rm.kill()
	defer func() {
		for _, w := range ws {
			w.stop(t)
		}
	}()

	params := map[string]string{"name": "pr-bare", "nodes": "50", "maxiter": "2"}
	if err := jobs.Seed(fs, rm.spec.IDs()[0], "pagerank", params); err != nil {
		t.Fatal(err)
	}
	job, err := jobs.Build("pagerank", params)
	if err != nil {
		t.Fatal(err)
	}
	job.Registry = "" // hand-built job: functions cannot cross the wire
	if _, err := rm.eng.Run(job); err == nil || !strings.Contains(err.Error(), "Registry") {
		t.Fatalf("run without a registry key = %v, want registry error", err)
	}
}

// TestRemoteWorkerKillRecovers kills one worker process abruptly
// mid-iteration (sockets vanish, no leave): heartbeat deadlines detect
// it across the process boundary, its pairs respawn on survivors at a
// new plan epoch, the run rolls back to the last durable checkpoint and
// still produces the reference output.
func TestRemoteWorkerKillRecovers(t *testing.T) {
	params := map[string]string{"name": "pr-kill", "nodes": "200", "maxiter": "8", "ckpt": "2", "tasks": "4"}
	want := inProcessRun(t, "pagerank", params)

	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, cluster.Uniform(remoteWorkers).IDs(), m)

	var kill sync.Once
	var ws []*workerProc
	rm := startMaster(t, fs, m, "127.0.0.1:0", core.Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   5,
		OnIteration: func(it core.IterInfo) {
			if it.Iter >= 3 {
				// From the master goroutine, so fire-and-forget; the
				// worker's sockets all close at once, like a kill -9.
				kill.Do(func() { ws[1].host.Terminate() })
			}
		},
	})
	ws = startWorkers(t, rm)
	defer rm.kill()
	defer func() {
		for i, w := range ws {
			if i == 1 {
				w.cancel()
				<-w.done
				continue
			}
			w.stop(t)
		}
	}()

	if err := jobs.Seed(fs, rm.spec.IDs()[0], "pagerank", params); err != nil {
		t.Fatal(err)
	}
	job, err := jobs.Build("pagerank", params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rm.eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("run finished without recovering the killed worker")
	}
	got := readParts(t, fs, rm.spec.IDs()[0], res.OutputPath)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery output differs from reference:\n got %v\nwant %v", got, want)
	}
	if det := m.Get(metrics.FailuresDetected); det == 0 {
		t.Fatal("heartbeat detector never fired")
	}
}

// TestRemoteGracefulLeave cancels one worker's context mid-run: it
// deregisters with a leave frame, the master re-places its pairs
// through the same respawn path a crash takes, and the run completes
// with the reference output. The package's TestMain leak check owns
// the no-goroutine-leak half of the contract.
func TestRemoteGracefulLeave(t *testing.T) {
	params := map[string]string{"name": "pr-leave", "nodes": "200", "maxiter": "8", "ckpt": "2", "tasks": "4"}
	want := inProcessRun(t, "pagerank", params)

	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, cluster.Uniform(remoteWorkers).IDs(), m)

	var leave sync.Once
	var ws []*workerProc
	rm := startMaster(t, fs, m, "127.0.0.1:0", core.Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   5,
		OnIteration: func(it core.IterInfo) {
			if it.Iter >= 3 {
				leave.Do(func() { ws[2].cancel() })
			}
		},
	})
	ws = startWorkers(t, rm)
	defer rm.kill()
	defer func() {
		for i, w := range ws {
			if i == 2 {
				<-w.done
				if w.err != nil {
					t.Errorf("leaving worker exited with error: %v", w.err)
				}
				continue
			}
			w.stop(t)
		}
	}()

	if err := jobs.Seed(fs, rm.spec.IDs()[0], "pagerank", params); err != nil {
		t.Fatal(err)
	}
	job, err := jobs.Build("pagerank", params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rm.eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("run finished without re-placing the departed worker's pairs")
	}
	got := readParts(t, fs, rm.spec.IDs()[0], res.OutputPath)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("output after graceful leave differs from reference:\n got %v\nwant %v", got, want)
	}
}

// waitForManifest polls the namenode until a durable checkpoint
// manifest for iter (or later) exists.
func waitForManifest(t *testing.T, fs *dfs.DFS, jobName string, iter int) {
	t.Helper()
	prefix := "/_imr/" + jobName + "/manifest-"
	deadline := time.After(20 * time.Second)
	for {
		for _, p := range fs.List("/_imr/" + jobName + "/") {
			rest, found := strings.CutPrefix(p, prefix)
			if !found {
				continue
			}
			if it, err := strconv.Atoi(rest); err == nil && it >= iter {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("no manifest for %s at iter >= %d", jobName, iter)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestRemoteMasterRestartResume is the master half of the kill matrix:
// the master process dies mid-run (control endpoint, namenode RPC and
// job master all vanish at once), the workers notice via missed pongs,
// tear their runs down and fall back to the join loop; a new master on
// the same address reopens the durable namenode image, re-admits the
// surviving workers, and -resume semantics (ResumeCtx) finish the run
// from the last durable manifest with reference-identical output.
func TestRemoteMasterRestartResume(t *testing.T) {
	params := map[string]string{"name": "pr-mrestart", "nodes": "200", "maxiter": "8", "ckpt": "1", "tasks": "4"}
	want := inProcessRun(t, "pagerank", params)

	cfg, err := dfs.ImageInDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.BlockSize = 1 << 14
	cfg.Replication = 2
	ids := cluster.Uniform(remoteWorkers).IDs()

	m1 := metrics.NewSet()
	fs1, err := dfs.Open(cfg, ids, m1)
	if err != nil {
		t.Fatal(err)
	}
	rm1 := startMaster(t, fs1, m1, "127.0.0.1:0", core.Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   5,
	})
	ws := startWorkers(t, rm1)
	defer func() {
		for _, w := range ws {
			w.stop(t)
		}
	}()

	if err := jobs.Seed(fs1, ids[0], "pagerank", params); err != nil {
		t.Fatal(err)
	}
	job, err := jobs.Build("pagerank", params)
	if err != nil {
		t.Fatal(err)
	}

	runErr := make(chan error, 1)
	go func() {
		_, err := rm1.eng.Run(job)
		runErr <- err
	}()
	waitForManifest(t, fs1, "pr-mrestart", 3)
	if err := rm1.eng.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := <-runErr; !errors.Is(err, core.ErrKilled) {
		t.Fatalf("killed run error = %v, want ErrKilled", err)
	}
	rm1.kill() // the rest of the "process" dies with the run

	// New master process on the same control address: reopen the image,
	// wait for the survivors to knock, resume.
	m2 := metrics.NewSet()
	fs2, err := dfs.Open(cfg, ids, m2)
	if err != nil {
		t.Fatal(err)
	}
	rm2 := startMaster(t, fs2, m2, rm1.hp, core.Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   5,
	})
	defer rm2.kill()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := rm2.rc.WaitForWorkers(ctx, remoteWorkers); err != nil {
		t.Fatal(err)
	}

	job2, err := jobs.Build("pagerank", params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rm2.eng.ResumeCtx(ctx, job2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Get(metrics.RunsResumed); got != 1 {
		t.Fatalf("runs.resumed = %d, want 1", got)
	}
	got := readParts(t, fs2, ids[0], res.OutputPath)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed output differs from reference:\n got %v\nwant %v", got, want)
	}
}

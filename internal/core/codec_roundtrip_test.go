package core_test

// Round-trip property tests for the typed wire codecs of every
// algorithm's record types: values must survive Encode→Decode, and
// re-encoding the decoded pairs must reproduce the same bytes (the
// stability property the dedup/retransmission machinery relies on).

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"imapreduce/internal/algorithms/jacobi"
	"imapreduce/internal/algorithms/kmeans"
	"imapreduce/internal/algorithms/matpower"
	"imapreduce/internal/graph"
	"imapreduce/internal/kv"
	"imapreduce/internal/mapreduce"
)

func checkRoundTrip(t *testing.T, name string, pairs []kv.Pair) {
	t.Helper()
	enc, ok := kv.AppendPairs(nil, pairs)
	if !ok {
		t.Fatalf("%s: AppendPairs refused registered types", name)
	}
	dec, n, err := kv.DecodePairs(enc)
	if err != nil {
		t.Fatalf("%s: DecodePairs: %v", name, err)
	}
	if n != len(enc) {
		t.Fatalf("%s: consumed %d of %d bytes", name, n, len(enc))
	}
	if !reflect.DeepEqual(pairs, dec) {
		t.Fatalf("%s: round trip mismatch:\n in  %#v\n out %#v", name, pairs, dec)
	}
	re, ok := kv.AppendPairs(nil, dec)
	if !ok || !bytes.Equal(enc, re) {
		t.Fatalf("%s: re-encoding decoded pairs changed the bytes", name)
	}
}

func TestAlgorithmPairsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randF64s := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out
	}

	t.Run("pagerank-state", func(t *testing.T) {
		pairs := make([]kv.Pair, 64)
		for i := range pairs {
			pairs[i] = kv.Pair{Key: int64(i), Value: rng.Float64()}
		}
		checkRoundTrip(t, "pagerank", pairs)
	})

	t.Run("graph-static", func(t *testing.T) {
		pairs := []kv.Pair{
			{Key: int64(0), Value: graph.Adj{Dst: []int32{1, 2, 3}, W: []float32{0.5, 1.5, 2}}},
			{Key: int64(1), Value: graph.Adj{Dst: []int32{0}}},     // unweighted
			{Key: int64(2), Value: graph.Adj{}},                    // sink node
			{Key: int64(3), Value: graph.Adj{Dst: []int32{-1, 9}}}, // sentinel ids
		}
		checkRoundTrip(t, "graph.Adj", pairs)
	})

	t.Run("kmeans", func(t *testing.T) {
		pairs := []kv.Pair{
			{Key: int64(1), Value: kmeans.Point(randF64s(4))},
			{Key: int64(2), Value: kmeans.PartialSum{Vec: randF64s(4), Count: 17}},
			{Key: int64(3), Value: kmeans.PartialSum{Count: -1}},
		}
		checkRoundTrip(t, "kmeans", pairs)
	})

	t.Run("jacobi", func(t *testing.T) {
		pairs := []kv.Pair{
			{Key: int64(0), Value: jacobi.Row{B: 1.5, Diag: 4, Idx: []int32{1, 2}, Val: randF64s(2)}},
			{Key: int64(1), Value: jacobi.Row{B: -2, Diag: 0.25}},
			{Key: int64(2), Value: rng.Float64()}, // state record
		}
		checkRoundTrip(t, "jacobi", pairs)
	})

	t.Run("matpower", func(t *testing.T) {
		pairs := []kv.Pair{
			{Key: int64(0), Value: matpower.Entry{K: 3, V: 1.25}},
			{Key: int64(1), Value: matpower.Row{Entries: []matpower.Entry{{K: 0, V: -1}, {K: 7, V: 2}}}},
			{Key: int64(2), Value: matpower.Row{}},
			{Key: int64(3), Value: matpower.Col{Idx: []int32{0, 5}, Val: randF64s(2)}},
			{Key: int64(4), Value: []matpower.Entry{{K: 1, V: 0.5}}},
		}
		checkRoundTrip(t, "matpower", pairs)
	})

	t.Run("baseline-itervalue", func(t *testing.T) {
		pairs := []kv.Pair{
			{Key: int64(0), Value: mapreduce.IterValue{State: 0.25, Static: graph.Adj{Dst: []int32{1}}}},
			{Key: int64(1), Value: mapreduce.IterValue{State: kmeans.Point(randF64s(3))}},
			{Key: int64(2), Value: mapreduce.Tagged{Src: 1, Val: 3.5}},
			{Key: int64(3), Value: mapreduce.Tagged{Src: 0, Val: graph.Adj{Dst: []int32{2, 4}}}},
		}
		checkRoundTrip(t, "mapreduce", pairs)
	})
}

package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"imapreduce/internal/cluster"
	"imapreduce/internal/dfs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// env bundles an engine over a fresh in-process cluster.
type env struct {
	e    *Engine
	fs   *dfs.DFS
	m    *metrics.Set
	spec cluster.Spec
}

func newEnv(t *testing.T, workers int, opts Options) *env {
	t.Helper()
	return newEnvSpec(t, cluster.Uniform(workers), opts)
}

func newEnvSpec(t *testing.T, spec cluster.Spec, opts Options) *env {
	t.Helper()
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	if opts.Timeout == 0 {
		opts.Timeout = 20 * time.Second
	}
	e, err := NewEngine(fs, transport.NewChanNetwork(), spec, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &env{e: e, fs: fs, m: m, spec: spec}
}

func f64Ops() kv.Ops { return kv.OpsFor[int64, float64](nil) }

// writeState writes n records key i -> value 1.0 as the initial state.
func (v *env) writeState(t *testing.T, path string, n int) {
	t.Helper()
	recs := make([]kv.Pair, n)
	for i := range recs {
		recs[i] = kv.Pair{Key: int64(i), Value: 1.0}
	}
	if err := v.fs.WriteFile(path, v.spec.IDs()[0], recs, f64Ops()); err != nil {
		t.Fatal(err)
	}
}

// readOutput collects and sorts all output parts.
func (v *env) readOutput(t *testing.T, dir string) map[int64]any {
	t.Helper()
	out := map[int64]any{}
	for _, p := range v.fs.List(dir + "/") {
		recs, err := v.fs.ReadFile(p, v.spec.IDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			out[r.Key.(int64)] = r.Value
		}
	}
	return out
}

// halvingJob: every iteration every key's value halves. Carrier map.
func halvingJob(name string, maxIter int, distThresh float64) *Job {
	j := &Job{
		Name:      name,
		StatePath: "/state",
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			return states[0].(float64) / 2, nil
		},
		MaxIter: maxIter,
		Ops:     f64Ops(),
	}
	if distThresh > 0 {
		j.DistThreshold = distThresh
		j.Distance = func(key, prev, curr any) float64 {
			return math.Abs(prev.(float64) - curr.(float64))
		}
	}
	return j
}

func TestHalvingFixedIterations(t *testing.T) {
	v := newEnv(t, 3, Options{})
	v.writeState(t, "/state", 20)
	job := halvingJob("halve", 6, 0)
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 6 || res.Converged {
		t.Fatalf("iterations=%d converged=%v", res.Iterations, res.Converged)
	}
	if res.OutputRecords != 20 {
		t.Fatalf("output records = %d", res.OutputRecords)
	}
	out := v.readOutput(t, res.OutputPath)
	for k, val := range out {
		if got := val.(float64); math.Abs(got-1.0/64) > 1e-12 {
			t.Fatalf("key %d = %v, want 1/64", k, got)
		}
	}
	if len(res.PerIter) != 6 {
		t.Fatalf("per-iter entries: %d", len(res.PerIter))
	}
	for i, pi := range res.PerIter {
		if pi.Iter != i+1 {
			t.Fatalf("per-iter order wrong: %+v", res.PerIter)
		}
	}
	// Persistent tasks: exactly one job, 2*NumTasks tasks, launched once.
	if v.m.Get(metrics.JobsLaunched) != 1 {
		t.Fatalf("jobs launched = %d, want 1 (persistent tasks)", v.m.Get(metrics.JobsLaunched))
	}
	if v.m.Get(metrics.TasksLaunched) != 6 {
		t.Fatalf("tasks launched = %d, want 6", v.m.Get(metrics.TasksLaunched))
	}
}

func TestHalvingDistanceTermination(t *testing.T) {
	v := newEnv(t, 2, Options{})
	const n = 8
	v.writeState(t, "/state", n)
	// Distance after iteration i is 8 * 2^-i; threshold 0.1 crossed at
	// i=7 (8/128 = 0.0625 < 0.1).
	job := halvingJob("halve-dist", 0, 0.1)
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Iterations != 7 {
		t.Fatalf("iterations = %d, want 7", res.Iterations)
	}
	last := res.PerIter[len(res.PerIter)-1]
	if math.Abs(last.Dist-float64(n)/128) > 1e-9 {
		t.Fatalf("final distance %v", last.Dist)
	}
}

func TestSyncAndAsyncAgree(t *testing.T) {
	for _, sync := range []bool{false, true} {
		v := newEnv(t, 3, Options{})
		v.writeState(t, "/state", 50)
		job := halvingJob(fmt.Sprintf("halve-sync-%v", sync), 4, 0)
		job.SyncMap = sync
		res, err := v.e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		out := v.readOutput(t, res.OutputPath)
		if len(out) != 50 {
			t.Fatalf("sync=%v: %d outputs", sync, len(out))
		}
		for k, val := range out {
			if math.Abs(val.(float64)-1.0/16) > 1e-12 {
				t.Fatalf("sync=%v key %d = %v", sync, k, val)
			}
		}
	}
}

// ringJob exercises the static join and real shuffling: key i sends its
// value to (i+1) mod n via its static "adjacency" record; the reduce
// sums what arrives. After one iteration with all-ones state, every key
// is 1 again (a rotation); we instead make key 0 a source of weight: the
// static for key i holds its successor, and map forwards state*0.5 plus
// emits self-retention 0.5*state. The fixed point is uniform, so we
// check mass conservation and against a sequential simulation.
func ringSetup(t testing.TB, v *env, n int) (*Job, []float64) {
	t.Helper()
	adjOps := kv.OpsFor[int64, int64](nil)
	static := make([]kv.Pair, n)
	state := make([]kv.Pair, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		static[i] = kv.Pair{Key: int64(i), Value: int64((i + 1) % n)}
		val := float64(i + 1)
		state[i] = kv.Pair{Key: int64(i), Value: val}
		vals[i] = val
	}
	if err := v.fs.WriteFile("/ring/static", v.spec.IDs()[0], static, adjOps); err != nil {
		t.Fatal(err)
	}
	if err := v.fs.WriteFile("/ring/state", v.spec.IDs()[0], state, f64Ops()); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:       "ring",
		StatePath:  "/ring/state",
		StaticPath: "/ring/static",
		Map: func(key, state, static any, emit kv.Emit) error {
			val := state.(float64)
			succ := static.(int64)
			emit(succ, val/2)
			emit(key, val/2)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			var sum float64
			for _, s := range states {
				sum += s.(float64)
			}
			return sum, nil
		},
		Ops: f64Ops(),
	}
	return job, vals
}

func ringReference(vals []float64, iters int) []float64 {
	n := len(vals)
	cur := append([]float64(nil), vals...)
	for k := 0; k < iters; k++ {
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			next[i] += cur[i] / 2
			next[(i+1)%n] += cur[i] / 2
		}
		cur = next
	}
	return cur
}

func TestRingDiffusionMatchesReference(t *testing.T) {
	v := newEnv(t, 4, Options{})
	job, vals := ringSetup(t, v, 64)
	job.MaxIter = 9
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := ringReference(vals, 9)
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 64 {
		t.Fatalf("%d outputs", len(out))
	}
	for i := 0; i < 64; i++ {
		got := out[int64(i)].(float64)
		if math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("key %d: got %v want %v", i, got, want[i])
		}
	}
	// Static data was shuffled zero times after init: state bytes flow
	// but shuffle carries only the small float payloads.
	if v.m.Get(metrics.ShuffleBytes) == 0 || v.m.Get(metrics.StateBytes) == 0 {
		t.Fatal("expected shuffle and state traffic")
	}
}

func TestRingOnTCPTransport(t *testing.T) {
	spec := cluster.Uniform(2)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2}, spec.IDs(), m)
	e, err := NewEngine(fs, transport.NewTCPNetwork(), spec, m, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v := &env{e: e, fs: fs, m: m, spec: spec}
	job, vals := ringSetup(t, v, 16)
	job.MaxIter = 4
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := ringReference(vals, 4)
	out := v.readOutput(t, res.OutputPath)
	for i := 0; i < 16; i++ {
		if math.Abs(out[int64(i)].(float64)-want[i]) > 1e-9 {
			t.Fatalf("tcp run diverged at key %d", i)
		}
	}
}

func TestStateLocality(t *testing.T) {
	// One-to-one pairs are co-located: reduce→map state transfer must be
	// entirely local.
	v := newEnv(t, 4, Options{})
	job, _ := ringSetup(t, v, 64)
	job.MaxIter = 5
	if _, err := v.e.Run(job); err != nil {
		t.Fatal(err)
	}
	if v.m.Get(metrics.StateBytes) == 0 {
		t.Fatal("no state traffic measured")
	}
	if got := v.m.Get(metrics.StateRemote); got != 0 {
		t.Fatalf("state transfer crossed workers: %d bytes", got)
	}
}

func TestValidationErrors(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 4)
	cases := []*Job{
		{},
		{Name: "x", StatePath: "/state", Ops: f64Ops()},                                                  // no funcs
		{Name: "x", Map: halvingJob("h", 1, 0).Map, Reduce: halvingJob("h", 1, 0).Reduce, Ops: f64Ops()}, // no state path
		halvingJob("no-term", 0, 0),                                                                      // no termination
	}
	for i, j := range cases {
		if _, err := v.e.Run(j); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
	// Too many tasks for the slots.
	big := halvingJob("big", 2, 0)
	big.NumTasks = 50
	if _, err := v.e.Run(big); err == nil {
		t.Error("slot overflow accepted")
	}
	// OneToAll without static.
	bc := halvingJob("bc", 2, 0)
	bc.Mapping = OneToAll
	if _, err := v.e.Run(bc); err == nil {
		t.Error("OneToAll without StaticPath accepted")
	}
}

func TestUserErrorPropagates(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 4)
	job := halvingJob("boom", 5, 0)
	job.Reduce = func(key any, states []any) (any, error) {
		return nil, fmt.Errorf("kaboom")
	}
	if _, err := v.e.Run(job); err == nil {
		t.Fatal("expected reduce error")
	}
}

func TestUserMapErrorPropagates(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 4)
	job := halvingJob("boom-map", 5, 0)
	job.Map = func(key, state, static any, emit kv.Emit) error {
		return fmt.Errorf("map kaboom")
	}
	if _, err := v.e.Run(job); err == nil {
		t.Fatal("expected map error")
	}
}

func TestCombineErrorPropagates(t *testing.T) {
	v := newEnv(t, 2, Options{})
	v.writeState(t, "/state", 40)
	job := halvingJob("boom-combine", 5, 0)
	job.BufferThreshold = 4 // force combiner invocations on small chunks
	job.Map = func(key, state, static any, emit kv.Emit) error {
		// Duplicate keys so chunks actually shrink; the combiner is
		// skipped on all-unique chunks (it could not reduce them).
		emit(key, state)
		emit(key, state)
		return nil
	}
	job.Combine = func(key any, values []any) (any, error) {
		return nil, fmt.Errorf("combine kaboom")
	}
	if _, err := v.e.Run(job); err == nil {
		t.Fatal("expected combine error")
	}
}

func TestEngineAccessors(t *testing.T) {
	v := newEnv(t, 2, Options{})
	if v.e.FS() != v.fs {
		t.Fatal("FS accessor")
	}
	if len(v.e.Spec().Nodes) != 2 {
		t.Fatal("Spec accessor")
	}
}

func TestNumTasksMoreThanWorkers(t *testing.T) {
	spec := cluster.Uniform(2)
	spec.MapSlots, spec.ReduceSlots = 4, 4
	v := newEnvSpec(t, spec, Options{})
	v.writeState(t, "/state", 30)
	job := halvingJob("many-tasks", 3, 0)
	job.NumTasks = 7
	res, err := v.e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := v.readOutput(t, res.OutputPath)
	if len(out) != 30 {
		t.Fatalf("%d outputs", len(out))
	}
	for _, val := range out {
		if math.Abs(val.(float64)-1.0/8) > 1e-12 {
			t.Fatalf("wrong value %v", val)
		}
	}
}

package core

import (
	"testing"
	"time"

	"imapreduce/internal/leaktest"
)

// TestMain fails the package when any goroutine born during the tests
// is still running after the last one finishes — the teardown
// discipline (every engine Run and network Close must join its
// goroutines) is enforced, not just hoped for. See internal/leaktest.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

// guard arms the deadlock watchdog for a heavy test: if the test is
// still running after d, every goroutine's stack is dumped to stderr
// and the process panics, so a CI hang dies with a diagnosis instead of
// idling into the go test binary's global timeout. Size d well above
// the worst honest runtime — the watchdog is for hangs, not slowness.
func guard(t *testing.T, d time.Duration) {
	t.Cleanup(leaktest.Watchdog(t, d))
}

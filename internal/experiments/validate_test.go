package experiments

import (
	"testing"

	"imapreduce/internal/graph"
	"imapreduce/internal/simcluster"
)

// TestSimulatorRealEngineConsistency cross-checks the cost model against
// the real engines: both must agree on the paper's qualitative claims —
// iMapReduce beats the baseline, and removing initialization narrows but
// does not close the gap. (Absolute ratios differ by design: the
// simulator models 2011 EC2 constants, the real engines run in-process.)
func TestSimulatorRealEngineConsistency(t *testing.T) {
	// Simulator, deterministic cost model — valid under any build.
	d, err := graph.ByName("sssp-s", 1)
	if err != nil {
		t.Fatal(err)
	}
	w := simcluster.SSSPWorkload(d)
	p := simcluster.DefaultParams(20)
	simMR := simcluster.SimulateMR(p, w, 10)
	simIMR := simcluster.SimulateIMR(p, w, 10, simcluster.IMROptions{})
	simRatio := simIMR.TotalSec / simMR.TotalSec
	if simRatio >= 0.9 {
		t.Fatalf("simulator: iMR/MR ratio %.2f — no advantage modeled", simRatio)
	}
	if simMR.InitSec >= simMR.TotalSec {
		t.Fatal("simulator: init exceeds total")
	}

	// Real engines, quick configuration, SSSP on the facebook dataset.
	// This half is a wall-clock ratio; the race detector's uneven
	// instrumentation overhead (like the other raceDetectorEnabled
	// skips) swamps the iteration-structure advantage it measures.
	if raceDetectorEnabled {
		t.Logf("simulated iMR/MR = %.2f; real-engine ratio skipped under the race detector", simRatio)
		return
	}
	cfg := Quick()
	cfg.Scale = 400 // ~3k nodes: fast but not noise-dominated
	cfg.SSSPIters = 6
	fig, err := runGraphFigure(cfg, "validate", "validation", "facebook", "sssp", cfg.SSSPIters, "")
	if err != nil {
		t.Fatal(err)
	}
	finals := map[string]float64{}
	for _, s := range fig.Series {
		finals[s.Label] = s.Y[len(s.Y)-1]
	}
	realRatio := finals["iMapReduce"] / finals["MapReduce"]
	if realRatio >= 0.9 {
		t.Fatalf("real engines: iMR/MR ratio %.2f — no advantage measured", realRatio)
	}
	if finals["MapReduce (ex. init.)"] >= finals["MapReduce"] {
		t.Fatal("real engines: removing init did not reduce baseline time")
	}
	// Both substrates agree on the direction and the rough regime.
	if (realRatio < 1) != (simRatio < 1) {
		t.Fatalf("substrates disagree: real %.2f vs sim %.2f", realRatio, simRatio)
	}
	t.Logf("real iMR/MR = %.2f, simulated iMR/MR = %.2f", realRatio, simRatio)
}

//go:build race

package experiments

// raceDetectorEnabled reports whether the race detector is compiled in;
// wall-clock-shape assertions are skipped under it because its
// instrumentation inflates the engines' fine-grained paths unevenly.
const raceDetectorEnabled = true

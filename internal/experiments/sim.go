package experiments

import (
	"imapreduce/internal/graph"
	"imapreduce/internal/simcluster"
)

// The EC2-scale experiments (Figs. 8–14) run the calibrated cluster
// simulator at the paper's full data sizes. The paper runs ten
// iterations on 20 EC2 small instances unless the figure sweeps the
// cluster size.
const (
	ec2Iters     = 10
	ec2Instances = 20
)

func workload(name string) (simcluster.Workload, error) {
	d, err := graph.ByName(name, 1)
	if err != nil {
		return simcluster.Workload{}, err
	}
	if d.Table == 1 {
		return simcluster.SSSPWorkload(d), nil
	}
	return simcluster.PageRankWorkload(d), nil
}

// syntheticRuntime builds the Fig. 8/9 bar groups: total running time of
// both engines on the small/medium/large synthetic graphs.
func syntheticRuntime(id, title string, names []string, paperRatios []float64) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: "dataset (1=s 2=m 3=l)", YLabel: "total running time (s)"}
	mr := Series{Label: "MapReduce"}
	imr := Series{Label: "iMapReduce"}
	p := simcluster.DefaultParams(ec2Instances)
	for i, name := range names {
		w, err := workload(name)
		if err != nil {
			return nil, err
		}
		mrRun := simcluster.SimulateMR(p, w, ec2Iters)
		imrRun := simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{})
		mr.X = append(mr.X, float64(i+1))
		mr.Y = append(mr.Y, mrRun.TotalSec)
		imr.X = append(imr.X, float64(i+1))
		imr.Y = append(imr.Y, imrRun.TotalSec)
		fig.Note("%-11s iMR/MR time ratio: %.1f%% (paper: %.1f%%)",
			name, 100*imrRun.TotalSec/mrRun.TotalSec, 100*paperRatios[i])
	}
	fig.Series = []Series{mr, imr}
	return fig, nil
}

// Fig08 — SSSP on the synthetic graphs, 20 EC2 instances (paper
// Fig. 8).
func Fig08(Config) (*Figure, error) {
	return syntheticRuntime("fig08", "SSSP on synthetic graphs (simulated EC2, 20 instances)",
		[]string{"sssp-s", "sssp-m", "sssp-l"}, []float64{0.232, 0.370, 0.386})
}

// Fig09 — PageRank on the synthetic graphs (paper Fig. 9).
func Fig09(Config) (*Figure, error) {
	return syntheticRuntime("fig09", "PageRank on synthetic graphs (simulated EC2, 20 instances)",
		[]string{"pagerank-s", "pagerank-m", "pagerank-l"}, []float64{0.44, 0.60, 0.60})
}

// Fig10 — decomposition of the running-time reduction into the three
// factors: one-time initialization, static-shuffle avoidance, and
// asynchronous map execution (paper Fig. 10).
func Fig10(Config) (*Figure, error) {
	fig := &Figure{ID: "fig10", Title: "Factors' effects on running time reduction (simulated EC2, 20 instances)",
		XLabel: "workload (1=SSSP-m 2=PageRank-m)", YLabel: "share of MapReduce running time saved"}
	initS := Series{Label: "one-time init"}
	shufS := Series{Label: "static shuffle avoidance"}
	asyncS := Series{Label: "async map execution"}
	p := simcluster.DefaultParams(ec2Instances)
	for i, name := range []string{"sssp-m", "pagerank-m"} {
		w, err := workload(name)
		if err != nil {
			return nil, err
		}
		mrTotal := simcluster.SimulateMR(p, w, ec2Iters).TotalSec
		base := simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{}).TotalSec
		noAsync := simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{SyncMap: true}).TotalSec
		noStatic := simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{ShuffleStatic: true}).TotalSec
		noInit := simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{PerIterationInit: true}).TotalSec
		x := float64(i + 1)
		initS.X, initS.Y = append(initS.X, x), append(initS.Y, (noInit-base)/mrTotal)
		shufS.X, shufS.Y = append(shufS.X, x), append(shufS.Y, (noStatic-base)/mrTotal)
		asyncS.X, asyncS.Y = append(asyncS.X, x), append(asyncS.Y, (noAsync-base)/mrTotal)
		fig.Note("%-10s init %.1f%%, static shuffle %.1f%%, async %.1f%% of MapReduce time (paper: 5–10%%, larger for shuffle on big static data, 5–10%%)",
			name, 100*(noInit-base)/mrTotal, 100*(noStatic-base)/mrTotal, 100*(noAsync-base)/mrTotal)
	}
	fig.Series = []Series{initS, shufS, asyncS}
	return fig, nil
}

// Fig11 — total communication cost on the large graphs (paper Fig. 11).
func Fig11(Config) (*Figure, error) {
	fig := &Figure{ID: "fig11", Title: "Total communication cost (simulated EC2, 20 instances)",
		XLabel: "workload (1=SSSP-l 2=PageRank-l)", YLabel: "cross-worker traffic (GB)"}
	mr := Series{Label: "MapReduce"}
	imr := Series{Label: "iMapReduce"}
	p := simcluster.DefaultParams(ec2Instances)
	for i, name := range []string{"sssp-l", "pagerank-l"} {
		w, err := workload(name)
		if err != nil {
			return nil, err
		}
		mrRun := simcluster.SimulateMR(p, w, ec2Iters)
		imrRun := simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{})
		x := float64(i + 1)
		mr.X, mr.Y = append(mr.X, x), append(mr.Y, mrRun.CommMB/1024)
		imr.X, imr.Y = append(imr.X, x), append(imr.Y, imrRun.CommMB/1024)
		fig.Note("%-11s iMR/MR communication ratio: %.1f%% (paper: ~12%%)",
			name, 100*imrRun.CommMB/mrRun.CommMB)
	}
	fig.Series = []Series{mr, imr}
	return fig, nil
}

// scalingFigure builds Figs. 12–13: total time of both engines at 20,
// 50 and 80 instances.
func scalingFigure(id, title, dataset string, paperImprovement float64) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: "instances", YLabel: "total running time (s)"}
	w, err := workload(dataset)
	if err != nil {
		return nil, err
	}
	mr := Series{Label: "MapReduce"}
	imr := Series{Label: "iMapReduce"}
	var first, last float64
	for _, n := range []int{20, 50, 80} {
		p := simcluster.DefaultParams(n)
		mrRun := simcluster.SimulateMR(p, w, ec2Iters)
		imrRun := simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{})
		mr.X, mr.Y = append(mr.X, float64(n)), append(mr.Y, mrRun.TotalSec)
		imr.X, imr.Y = append(imr.X, float64(n)), append(imr.Y, imrRun.TotalSec)
		ratio := imrRun.TotalSec / mrRun.TotalSec
		if n == 20 {
			first = ratio
		}
		if n == 80 {
			last = ratio
		}
		fig.Note("n=%-3d iMR/MR time ratio %.1f%%", n, 100*ratio)
	}
	fig.Series = []Series{mr, imr}
	fig.Note("ratio improvement 20→80 instances: %.1f points (paper: ~%.0f%%)", 100*(first-last), 100*paperImprovement)
	return fig, nil
}

// Fig12 — SSSP speedup when scaling the cluster (paper Fig. 12).
func Fig12(Config) (*Figure, error) {
	return scalingFigure("fig12", "SSSP-l scaling from 20 to 80 instances", "sssp-l", 0.08)
}

// Fig13 — PageRank speedup when scaling the cluster (paper Fig. 13).
func Fig13(Config) (*Figure, error) {
	return scalingFigure("fig13", "PageRank-l scaling from 20 to 80 instances", "pagerank-l", 0.07)
}

// Fig14 — parallel efficiency T*/(n·Tn) for both engines on both
// workloads (paper Fig. 14).
func Fig14(Config) (*Figure, error) {
	fig := &Figure{ID: "fig14", Title: "Parallel efficiency (simulated EC2)",
		XLabel: "instances", YLabel: "T* / (n·Tn)"}
	for _, tc := range []struct {
		label   string
		dataset string
		imr     bool
	}{
		{"MapReduce SSSP", "sssp-l", false},
		{"iMapReduce SSSP", "sssp-l", true},
		{"MapReduce PageRank", "pagerank-l", false},
		{"iMapReduce PageRank", "pagerank-l", true},
	} {
		w, err := workload(tc.dataset)
		if err != nil {
			return nil, err
		}
		total := func(n int) float64 {
			p := simcluster.DefaultParams(n)
			if tc.imr {
				return simcluster.SimulateIMR(p, w, ec2Iters, simcluster.IMROptions{}).TotalSec
			}
			return simcluster.SimulateMR(p, w, ec2Iters).TotalSec
		}
		s := Series{Label: tc.label}
		for _, n := range []int{20, 50, 80} {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, simcluster.ParallelEfficiency(total, n))
		}
		fig.Series = append(fig.Series, s)
	}
	last := func(s Series) float64 { return s.Y[len(s.Y)-1] }
	fig.Note("at 80 instances: MR SSSP %.2f vs iMR SSSP %.2f (paper: ~0.40 vs ~0.57)",
		last(fig.Series[0]), last(fig.Series[1]))
	fig.Note("iMapReduce holds higher efficiency on both workloads, as in the paper")
	return fig, nil
}

package experiments

import (
	"flag"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// -soak.iters scales soak length: `make soak` raises it for longer
// schedules, the default keeps `go test ./...` quick.
var soakIters = flag.Int("soak.iters", 12, "iterations per soak run")

func soakCfg(seed int64, algo string) SoakConfig {
	return SoakConfig{Seed: seed, Algo: algo, Iters: *soakIters}
}

func TestSoakScheduleDeterministic(t *testing.T) {
	cfg := soakCfg(7, "sssp")
	a := SoakSchedule(cfg)
	b := SoakSchedule(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	kinds := map[string]bool{}
	for _, ev := range a {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{SoakCrash, SoakStall, SoakPartition, SoakDFSFail, SoakEngineKill} {
		if !kinds[k] {
			t.Fatalf("schedule %v never injects %q", a, k)
		}
	}
	if !reflect.DeepEqual(a, SoakSchedule(SoakConfig{Seed: 7, Algo: "sssp", Iters: *soakIters})) {
		t.Fatal("schedule depends on more than the config")
	}
}

func runSoak(t *testing.T, cfg SoakConfig) {
	t.Helper()
	// A wedged soak (lost recovery, stuck barrier) dies with a full
	// goroutine dump instead of hanging CI.
	guard(t, 5*time.Minute)
	rep, err := Soak(cfg)
	if err != nil {
		t.Fatalf("soak failed: %v\nreproduce with: go test ./internal/experiments -run TestSoak -soak.iters=%d (seed %d, algo %s)\nschedule: %v",
			err, cfg.Iters, cfg.Seed, cfg.Algo, rep.Schedule)
	}
	t.Logf("seed %d %s: %d iters, %d restarts, %d recoveries, drops=%d dups=%d reorders=%d over %d keys",
		rep.Seed, rep.Algo, rep.Iterations, rep.Restarts, rep.Recoveries, rep.Drops, rep.Dups, rep.Reorders, rep.Keys)
	if rep.Iterations != cfg.withDefaults().Iters {
		t.Fatalf("soak ran %d iterations, want %d", rep.Iterations, cfg.withDefaults().Iters)
	}
}

// TestSoakSSSP replays the full fault schedule — crash, stall,
// partition, datanode loss, engine kill — for three distinct seeds and
// asserts bit-identical output against the fault-free run each time.
func TestSoakSSSP(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode (run `make soak`)")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSoak(t, soakCfg(seed, "sssp"))
		})
	}
}

// TestSoakPageRank covers the order-sensitive floating-point reduce
// (made order-independent by the soak job's sorted sum).
func TestSoakPageRank(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode (run `make soak`)")
	}
	runSoak(t, soakCfg(4, "pagerank"))
}

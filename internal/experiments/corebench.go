package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/graph"
	"imapreduce/internal/metrics"
)

// CoreBenchResult is one measured data-plane scenario, serialized by
// cmd/imrbench into BENCH_core.json.
type CoreBenchResult struct {
	Name string `json:"name"`
	// NsPerOp is wall time per operation: one full iterative job for
	// the engine scenarios, one call for the kv microbenchmarks.
	NsPerOp int64 `json:"ns_per_op"`
	// BytesPerOp is heap allocated per op (microbenchmarks only).
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is allocations per op. Every microbenchmark row sets
	// it — a pointer, so a genuine zero (the pooled decode path) still
	// serializes instead of vanishing under omitempty; engine rows leave
	// it nil.
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// ShuffleBytes is the map→reduce data volume of one engine run.
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
}

// CoreBench runs the figure workloads that exercise the data plane
// (PageRank and SSSP on the real core engine) over both transports,
// reporting wall time per job and the shuffle volume. reps > 1 keeps
// the fastest run, which damps scheduler noise the way benchstat's
// min-selection does.
func CoreBench(cfg Config, reps int) ([]CoreBenchResult, error) {
	if reps < 1 {
		reps = 1
	}
	type scenario struct {
		name    string
		dataset string
		algo    string
		iters   int
	}
	scenarios := []scenario{
		{"pagerank/google", "google", "pagerank", cfg.PageRankIters},
		{"sssp/dblp", "dblp", "sssp", cfg.SSSPIters},
	}
	var out []CoreBenchResult
	for _, sc := range scenarios {
		d, err := graph.ByName(sc.dataset, cfg.Scale)
		if err != nil {
			return nil, err
		}
		g := d.Build()
		for _, tr := range []string{"chan", "tcp"} {
			c := cfg
			c.Transport = tr
			name := sc.name + "/" + tr
			stopProf, err := StartProfiles(cfg.ProfileDir, name)
			if err != nil {
				return nil, err
			}
			best := time.Duration(0)
			var shuffle int64
			for r := 0; r < reps; r++ {
				wall, sb, err := runCoreJob(c, g, sc.algo, sc.iters)
				if err != nil {
					stopProf()
					return nil, fmt.Errorf("%s: %w", name, err)
				}
				if best == 0 || wall < best {
					best = wall
				}
				shuffle = sb
			}
			stopProf()
			out = append(out, CoreBenchResult{
				Name:         name,
				NsPerOp:      best.Nanoseconds(),
				ShuffleBytes: shuffle,
			})
		}
	}
	return out, nil
}

// StartProfiles begins a CPU profile for one benchmark scenario and
// returns a stop function that finishes it and dumps a heap profile
// alongside — <dir>/<name>.cpu.pprof and <dir>/<name>.heap.pprof, with
// "/" in names flattened. An empty dir makes both calls no-ops.
func StartProfiles(dir, name string) (stop func(), err error) {
	if dir == "" {
		return func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	base := filepath.Join(dir, strings.ReplaceAll(name, "/", "_"))
	cf, err := os.Create(base + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, fmt.Errorf("experiments: cpu profile %s: %w", name, err)
	}
	return func() {
		pprof.StopCPUProfile()
		cf.Close()
		hf, err := os.Create(base + ".heap.pprof")
		if err != nil {
			return
		}
		defer hf.Close()
		runtime.GC() // settle the heap so the profile shows live data
		_ = pprof.WriteHeapProfile(hf)
	}, nil
}

// runCoreJob runs one asynchronous iMapReduce job on a fresh local
// cluster and returns its wall time and shuffle volume.
func runCoreJob(cfg Config, g *graph.Graph, algo string, iters int) (time.Duration, int64, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return 0, 0, err
	}
	switch algo {
	case "pagerank":
		if err := pagerank.WriteInputs(e.fs, e.at(), g, "/static", "/state"); err != nil {
			return 0, 0, err
		}
		res, err := e.core.Run(pagerank.IMRJob(pagerank.IMRConfig{
			Name: "bench-pr", Nodes: g.N, StaticPath: "/static", StatePath: "/state",
			MaxIter: iters,
		}))
		if err != nil {
			return 0, 0, err
		}
		return res.TotalWall, e.m.Get(metrics.ShuffleBytes), nil
	case "sssp":
		if err := sssp.WriteInputs(e.fs, e.at(), g, 0, "/static", "/state"); err != nil {
			return 0, 0, err
		}
		res, err := e.core.Run(sssp.IMRJob(sssp.IMRConfig{
			Name: "bench-sssp", StaticPath: "/static", StatePath: "/state",
			MaxIter: iters,
		}))
		if err != nil {
			return 0, 0, err
		}
		return res.TotalWall, e.m.Get(metrics.ShuffleBytes), nil
	}
	return 0, 0, fmt.Errorf("experiments: unknown algo %q", algo)
}

package experiments

import (
	"sort"
	"testing"
	"time"

	"imapreduce/internal/graph"
	"imapreduce/internal/simcluster"
	"imapreduce/internal/trace"
)

// TestTraceDecompositionCoverage is the golden property of the factor
// decomposition: on a Quick PageRank run the four factors must account
// for at least 90% of the measured wall time (every pair is busy doing
// something classified most of the run), without overshooting past the
// slack the averaging allows.
func TestTraceDecompositionCoverage(t *testing.T) {
	cfg := Quick()
	rec := trace.NewRecorder(0)
	res, err := TracedRun(cfg, "google", "pagerank", cfg.PageRankIters, rec)
	if err != nil {
		t.Fatal(err)
	}
	d := trace.Decompose(rec.Events())
	if len(d.PerIter) != res.Iterations {
		t.Fatalf("decomposition has %d iterations, run had %d", len(d.PerIter), res.Iterations)
	}
	minCov := 0.9
	if raceDetectorEnabled {
		// Race instrumentation stretches the unclassified gaps between
		// spans (scheduling, channel handoff) more than the spans.
		minCov = 0.7
	}
	if cov := d.Coverage(); cov < minCov || cov > 1.5 {
		t.Fatalf("factor coverage %.3f outside [%.2f, 1.5] (wall %v)", cov, minCov, d.Wall)
	}
	tot := d.Totals()
	if tot.Init <= 0 || tot.Compute <= 0 || tot.Shuffle <= 0 || tot.SyncWait <= 0 {
		t.Fatalf("degenerate decomposition: %+v", tot)
	}
	t.Logf("coverage %.3f over %v: init=%v shuffle=%v wait=%v compute=%v",
		d.Coverage(), d.Wall, tot.Init, tot.Shuffle, tot.SyncWait, tot.Compute)
}

// factorOrder ranks the four factor names largest-first.
func factorOrder(init, shuffle, wait, compute float64) []string {
	fs := []struct {
		name string
		v    float64
	}{{"init", init}, {"shuffle", shuffle}, {"wait", wait}, {"compute", compute}}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].v > fs[j].v })
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.name
	}
	return out
}

// localSimParams calibrates the cluster simulator to the Quick local
// environment: an in-memory substrate (no real disk, no real NIC
// bottleneck), the configured Hadoop-emulation overheads, and
// per-record costs measured from the real engines at this scale.
func localSimParams(cfg Config) simcluster.Params {
	p := simcluster.DefaultParams(cfg.Workers)
	p.DiskMBps = 4000
	p.NicMBps = 4000
	p.NetEfficiency = 1
	p.JobInitSec = cfg.JobInit.Seconds()
	p.TaskStartSec = cfg.TaskStart.Seconds()
	p.SchedPerTaskSec = 0
	p.BarrierSec = 0.0004
	p.MapRecUs = 0.1
	p.ReduceRecUs = 0.1
	return p
}

// TestTraceDecompositionMatchesSim cross-checks the trace-derived
// decomposition of a real Quick PageRank run against the calibrated
// simulator's DecomposeIMR on the same workload: both must agree on
// which factor dominates and on shuffle being the smallest (a local
// in-memory cluster shuffling state-only messages spends nearly nothing
// on network transfer — the regime where one-time init pays off most,
// paper §4.3).
func TestTraceDecompositionMatchesSim(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation inflates wait/compute but not the fixed init overheads, changing the factor ordering")
	}
	cfg := Quick()
	iters := cfg.PageRankIters

	rec := trace.NewRecorder(0)
	if _, err := TracedRun(cfg, "google", "pagerank", iters, rec); err != nil {
		t.Fatal(err)
	}
	tot := trace.Decompose(rec.Events()).Totals()
	real := factorOrder(tot.Init.Seconds(), tot.Shuffle.Seconds(),
		tot.SyncWait.Seconds(), tot.Compute.Seconds())

	d, err := graph.ByName("google", cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Build()
	w := simcluster.Workload{
		Name: "google-local", Nodes: int64(g.N), Edges: g.Edges(),
		StateRecBytes: 12, MsgBytes: 12,
		StaticBytes: 7*g.Edges() + 8*int64(g.N),
		Activity:    simcluster.FullActivity,
	}
	sd := simcluster.DecomposeIMR(localSimParams(cfg), w, iters, simcluster.IMROptions{})
	sim := factorOrder(sd.InitSec, sd.ShuffleSec, sd.SyncWaitSec, sd.ComputeSec)

	t.Logf("real order %v (init=%v shuffle=%v wait=%v compute=%v)",
		real, tot.Init, tot.Shuffle, tot.SyncWait, tot.Compute)
	t.Logf("sim  order %v (init=%.4fs shuffle=%.4fs wait=%.4fs compute=%.4fs)",
		sim, sd.InitSec, sd.ShuffleSec, sd.SyncWaitSec, sd.ComputeSec)

	// Qualitative agreement: the same two factors dominate (init and
	// sync wait trade first place within noise on a run this short, so
	// the top-2 set is the stable signature), and both agree shuffle is
	// negligible — the paper's point about state-only shuffling.
	if !(real[0] == sim[0] && real[1] == sim[1] || real[0] == sim[1] && real[1] == sim[0]) {
		t.Errorf("top-2 factors disagree: real %v, sim %v", real[:2], sim[:2])
	}
	if real[3] != "shuffle" || sim[3] != "shuffle" {
		t.Errorf("shuffle should be the smallest factor in both: real %v, sim %v", real, sim)
	}
}

// TestTraceIterationCallbacks checks the OnIteration hook and the
// iteration counter fire once per committed boundary.
func TestTraceIterationCallbacks(t *testing.T) {
	cfg := Quick()
	rec := trace.NewRecorder(0)
	res, err := TracedRun(cfg, "dblp", "sssp", cfg.SSSPIters, rec)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries int
	var last time.Duration
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindIterDone {
			boundaries++
			if ev.Time < last {
				t.Fatalf("iteration boundaries out of order at iter %d", ev.Iter)
			}
			last = ev.Time
		}
	}
	if boundaries != res.Iterations {
		t.Fatalf("%d iter.done events for %d iterations", boundaries, res.Iterations)
	}
}

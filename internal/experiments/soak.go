// Seeded chaos soak: one deterministic fault schedule interleaving
// worker crashes, undetected stalls, link partitions, DFS datanode
// failures, and full engine kills against an iterative job, asserting
// the final output is bit-identical to a fault-free run of the same
// job. The schedule, the graph, and the transport's drop/dup/reorder
// pattern are all derived from one seed, so any failure replays from
// that seed alone.
package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// Soak fault kinds. A schedule with at least five events covers every
// kind at least once.
const (
	SoakCrash      = "crash"      // announced worker failure (§3.4.1 rollback)
	SoakStall      = "stall"      // undetected hang, caught by heartbeats
	SoakPartition  = "partition"  // master<->task link severed, healed later
	SoakDFSFail    = "dfsfail"    // datanode loss, healed by re-replication
	SoakEngineKill = "enginekill" // whole-engine death, healed by Resume
)

// SoakEvent is one scheduled fault. AtIter is the committed-iteration
// threshold that triggers it; Worker names the victim (crash, stall,
// dfsfail), Task the reduce task whose master link is cut (partition),
// and Dur how long a stall, partition, or datanode outage lasts.
type SoakEvent struct {
	Kind   string
	AtIter int
	Worker string
	Task   int
	Dur    time.Duration
}

// SoakConfig parameterizes one soak run. The zero value is filled with
// small-but-meaningful defaults; Seed selects the entire fault pattern.
type SoakConfig struct {
	Seed    int64
	Algo    string // "sssp" (default) or "pagerank"
	Workers int    // cluster size (default 3)
	Nodes   int    // graph size (default 192)
	Iters   int    // fixed iteration count (default 12)
	Ckpt    int    // CheckpointEvery (default 2)
	Events  int    // scheduled faults (default 5, one per kind)
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Algo == "" {
		c.Algo = "sssp"
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Nodes <= 0 {
		c.Nodes = 192
	}
	if c.Iters <= 0 {
		c.Iters = 12
	}
	if c.Ckpt <= 0 {
		c.Ckpt = 2
	}
	if c.Events <= 0 {
		c.Events = 5
	}
	return c
}

// SoakReport summarizes one soak run for the caller (and, on failure,
// for the reproduction message).
type SoakReport struct {
	Seed       int64
	Algo       string
	Schedule   []SoakEvent
	Restarts   int // engine kills survived via Resume
	Recoveries int // worker-failure rollbacks inside runs
	Iterations int
	Drops      int64
	Dups       int64
	Reorders   int64
	Keys       int
}

// SoakSchedule derives the deterministic fault schedule for cfg: same
// config, same schedule. With Events >= 5 every fault kind appears at
// least once; extra events draw kinds uniformly. Events are ordered by
// trigger iteration.
func SoakSchedule(cfg SoakConfig) []SoakEvent {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	kinds := []string{SoakCrash, SoakStall, SoakPartition, SoakDFSFail, SoakEngineKill}
	events := make([]SoakEvent, cfg.Events)
	perm := rng.Perm(len(kinds))
	span := cfg.Iters - 3
	if span < 1 {
		span = 1
	}
	for i := range events {
		kind := kinds[rng.Intn(len(kinds))]
		if i < len(kinds) {
			kind = kinds[perm[i]]
		}
		ev := SoakEvent{
			Kind:   kind,
			AtIter: 1 + rng.Intn(span),
			Worker: fmt.Sprintf("worker-%d", rng.Intn(cfg.Workers)),
			Task:   rng.Intn(cfg.Workers),
		}
		switch kind {
		case SoakStall:
			// Stalls must overshoot the heartbeat tolerance (200ms, see
			// soakOptions) by a wide margin so detection is certain while
			// honest scheduling jitter on a loaded machine stays far
			// below it.
			ev.Dur = 400*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond
		case SoakPartition:
			// Kept well inside the ReliableSend retry envelope so cut
			// links heal before senders give up.
			ev.Dur = 10*time.Millisecond + time.Duration(rng.Intn(30))*time.Millisecond
		case SoakDFSFail:
			ev.Dur = 30*time.Millisecond + time.Duration(rng.Intn(50))*time.Millisecond
		}
		events[i] = ev
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtIter < events[j].AtIter })
	return events
}

// soakJob builds the iterative job under test. The reduce is paced a
// little so iterations are wide enough for the fault driver to land
// every scheduled event, and PageRank's floating-point sum is made
// order-independent by sorting contributions first (SSSP's min already
// is), so a chaotic run can be compared bit-for-bit with a calm one.
func soakJob(cfg SoakConfig, g *graph.Graph) *core.Job {
	var job *core.Job
	switch cfg.Algo {
	case "pagerank":
		job = pagerank.IMRJob(pagerank.IMRConfig{
			Name: "soak-pagerank", Nodes: g.N,
			StaticPath: "/static", StatePath: "/state",
			MaxIter: cfg.Iters, Checkpoint: cfg.Ckpt,
		})
	default:
		job = sssp.IMRJob(sssp.IMRConfig{
			Name:       "soak-sssp",
			StaticPath: "/static", StatePath: "/state",
			MaxIter: cfg.Iters, Checkpoint: cfg.Ckpt,
		})
	}
	base := job.Reduce
	job.Reduce = func(key any, states []any) (any, error) {
		time.Sleep(150 * time.Microsecond)
		if cfg.Algo == "pagerank" {
			sort.Slice(states, func(i, j int) bool {
				return states[i].(float64) < states[j].(float64)
			})
		}
		return base(key, states)
	}
	return job
}

// soakGraph generates the (seeded, hence identical across the calm and
// chaotic runs) input graph.
func soakGraph(cfg SoakConfig) *graph.Graph {
	return graph.Generate(graph.GenConfig{
		Nodes:    cfg.Nodes,
		Degree:   graph.LogNormalParams{Mu: 0.8, Sigma: 0.8},
		Weighted: cfg.Algo != "pagerank",
		Weight:   graph.SSSPWeight,
		Seed:     cfg.Seed,
	})
}

func soakWriteInputs(cfg SoakConfig, fs *dfs.DFS, at string, g *graph.Graph) error {
	if cfg.Algo == "pagerank" {
		return pagerank.WriteInputs(fs, at, g, "/static", "/state")
	}
	return sssp.WriteInputs(fs, at, g, 0, "/static", "/state")
}

func soakOutput(fs *dfs.DFS, at, dir string) (map[int64]float64, error) {
	out := map[int64]float64{}
	for _, p := range fs.List(dir + "/") {
		recs, err := fs.ReadFile(p, at)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			out[r.Key.(int64)] = r.Value.(float64)
		}
	}
	return out, nil
}

// soakOptions: heartbeats on so stalls are *detected* faults, generous
// send retries so partitions inside the schedule's durations heal
// before any sender gives up. The 200ms miss tolerance sits a factor
// of two under the shortest injected stall (400ms) and far above the
// scheduling jitter of a loaded or single-CPU machine — tightening it
// reintroduces spurious all-workers-dead flakes.
func soakOptions(onIter func(core.IterInfo)) core.Options {
	return core.Options{
		Timeout:           time.Minute,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   10,
		SendRetries:       9,
		OnIteration:       onIter,
	}
}

// Soak runs cfg's deterministic fault schedule against a chaotic
// cluster and compares the final output bit-for-bit with a fault-free
// run of the same job on a calm cluster. A non-nil error means the
// soak failed; replaying with the same SoakConfig reproduces it
// exactly.
func Soak(cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	sched := SoakSchedule(cfg)
	g := soakGraph(cfg)
	rep := &SoakReport{Seed: cfg.Seed, Algo: cfg.Algo, Schedule: sched}

	// Calm reference run.
	refSpec := cluster.Uniform(cfg.Workers)
	refFS := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2}, refSpec.IDs(), nil)
	if err := soakWriteInputs(cfg, refFS, refSpec.IDs()[0], g); err != nil {
		return rep, err
	}
	// The reference run injects no faults, so aggressive failure
	// detection buys nothing and costs flake: on a loaded (or
	// single-CPU) machine a scheduling hiccup longer than the 50ms
	// chaotic-run tolerance spuriously kills every calm worker at once.
	// Keep heartbeats on but give the calm cluster two full seconds of
	// silence before declaring anyone dead.
	refOpts := soakOptions(nil)
	refOpts.HeartbeatInterval = 50 * time.Millisecond
	refOpts.HeartbeatMisses = 40
	refEng, err := core.NewEngine(refFS, transport.NewChanNetwork(), refSpec, nil, refOpts)
	if err != nil {
		return rep, err
	}
	refRes, err := refEng.Run(soakJob(cfg, g))
	if err != nil {
		return rep, fmt.Errorf("reference run: %w", err)
	}
	want, err := soakOutput(refFS, refSpec.IDs()[0], refRes.OutputPath)
	if err != nil {
		return rep, err
	}

	// Chaotic run: seeded lossy transport, replication 3 so a datanode
	// outage never makes a block unreachable.
	spec := cluster.Uniform(cfg.Workers)
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 3}, spec.IDs(), m)
	fnet := transport.NewFaultyNetwork(transport.NewChanNetwork(), transport.FaultyOptions{
		Seed: cfg.Seed, DropRate: 0.02, DupRate: 0.02, ReorderRate: 0.02,
	})
	if err := soakWriteInputs(cfg, fs, spec.IDs()[0], g); err != nil {
		return rep, err
	}
	job := soakJob(cfg, g)

	var iterNow atomic.Int64
	opts := soakOptions(func(it core.IterInfo) {
		for {
			cur := iterNow.Load()
			if int64(it.Iter) <= cur || iterNow.CompareAndSwap(cur, int64(it.Iter)) {
				return
			}
		}
	})
	var engMu sync.Mutex
	var eng *core.Engine
	current := func() *core.Engine {
		engMu.Lock()
		defer engMu.Unlock()
		return eng
	}
	newEngine := func() (*core.Engine, error) {
		e, err := core.NewEngine(fs, fnet, spec, m, opts)
		if err != nil {
			return nil, err
		}
		engMu.Lock()
		eng = e
		engMu.Unlock()
		return e, nil
	}

	done := make(chan struct{})
	var healers sync.WaitGroup
	fire := func(ev SoakEvent) {
		switch ev.Kind {
		case SoakCrash, SoakEngineKill:
			// The run may be mid-restart when the event fires: keep
			// trying until an active run accepts the fault.
			deadline := time.After(2 * time.Second)
			for {
				var err error
				if ev.Kind == SoakCrash {
					err = current().FailWorker(ev.Worker)
				} else {
					err = current().Kill()
				}
				if err == nil {
					return
				}
				select {
				case <-done:
					return
				case <-deadline:
					return
				case <-time.After(time.Millisecond):
				}
			}
		case SoakStall:
			current().StallWorker(ev.Worker, ev.Dur)
		case SoakPartition:
			a := job.Name + "/master"
			b := fmt.Sprintf("%s/red/0/%d", job.Name, ev.Task)
			fnet.Partition(a, b)
			healers.Add(1)
			go func() {
				defer healers.Done()
				time.Sleep(ev.Dur)
				fnet.Heal(a, b)
			}()
		case SoakDFSFail:
			fs.FailNode(ev.Worker)
			healers.Add(1)
			go func() {
				defer healers.Done()
				time.Sleep(ev.Dur)
				fs.RestoreNode(ev.Worker)
			}()
		}
	}
	go func() {
		idx := 0
		for idx < len(sched) {
			select {
			case <-done:
				return
			default:
			}
			if iterNow.Load() >= int64(sched[idx].AtIter) {
				fire(sched[idx])
				idx++
				continue
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var res *core.Result
	resume := false
	for {
		e, err := newEngine()
		if err != nil {
			close(done)
			return rep, err
		}
		if resume {
			res, err = e.Resume(job)
		} else {
			res, err = e.Run(job)
		}
		if errors.Is(err, core.ErrKilled) {
			rep.Restarts++
			resume = true
			continue
		}
		if err != nil {
			close(done)
			return rep, fmt.Errorf("chaotic run: %w", err)
		}
		break
	}
	close(done)
	healers.Wait()

	rep.Iterations = res.Iterations
	rep.Recoveries = res.Recoveries
	rep.Drops = fnet.Drops()
	rep.Dups = fnet.Dups()
	rep.Reorders = fnet.Reorders()
	rep.Keys = len(want)

	got, err := soakOutput(fs, spec.IDs()[0], res.OutputPath)
	if err != nil {
		return rep, err
	}
	if len(got) != len(want) {
		return rep, fmt.Errorf("chaotic run produced %d keys, fault-free run %d", len(got), len(want))
	}
	for k, w := range want {
		gv, ok := got[k]
		if !ok {
			return rep, fmt.Errorf("key %d missing from chaotic output", k)
		}
		if gv != w {
			return rep, fmt.Errorf("key %d: chaotic %v != fault-free %v", k, gv, w)
		}
	}
	return rep, nil
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"imapreduce/internal/algorithms/kmeans"
	"imapreduce/internal/algorithms/matpower"
	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/cluster"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
	"imapreduce/internal/mapreduce"
	"imapreduce/internal/metrics"
	"imapreduce/internal/transport"
)

// env is one fresh local cluster (both engines share DFS and metrics so
// cross-engine comparisons read one counter set per run).
type env struct {
	core *core.Engine
	mr   *mapreduce.Engine
	fs   *dfs.DFS
	m    *metrics.Set
	spec cluster.Spec
}

func newEnv(cfg Config) (*env, error) {
	spec := cluster.Uniform(cfg.Workers)
	spec.JobInitOverhead = cfg.JobInit
	spec.TaskStartOverhead = cfg.TaskStart
	m := metrics.NewSet()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 2}, spec.IDs(), m)
	var net transport.Network
	switch cfg.Transport {
	case "", "chan":
		net = transport.NewChanNetwork()
	case "tcp":
		tcp := transport.NewTCPNetwork()
		tcp.SetTrace(cfg.Trace)
		net = tcp
	default:
		return nil, fmt.Errorf("experiments: unknown transport %q", cfg.Transport)
	}
	ce, err := core.NewEngine(fs, net, spec, m, core.Options{Timeout: 5 * time.Minute, Trace: cfg.Trace})
	if err != nil {
		return nil, err
	}
	me, err := mapreduce.NewEngine(fs, spec, m, mapreduce.Options{LocalityAware: true, Trace: cfg.Trace})
	if err != nil {
		return nil, err
	}
	return &env{core: ce, mr: me, fs: fs, m: m, spec: spec}, nil
}

func (e *env) at() string { return e.spec.IDs()[0] }

func secs(d time.Duration) float64 { return d.Seconds() }

// cumulativeSeries turns per-iteration completion timestamps into a
// cumulative running-time curve.
func perIterSeries(label string, per []core.IterInfo) Series {
	s := Series{Label: label}
	for _, it := range per {
		s.X = append(s.X, float64(it.Iter))
		s.Y = append(s.Y, secs(it.CompletedAt))
	}
	return s
}

// runGraphFigure produces the four curves of Figs. 4–7 for one dataset:
// MapReduce, MapReduce (ex. init.), iMapReduce (sync.), iMapReduce.
func runGraphFigure(cfg Config, id, title, dataset, algo string, iters int, paperNote string) (*Figure, error) {
	d, err := graph.ByName(dataset, cfg.Scale)
	if err != nil {
		return nil, err
	}
	g := d.Build()
	fig := &Figure{ID: id, Title: title, XLabel: "iterations", YLabel: "cumulative running time (s)"}

	// Baseline chain.
	envMR, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	var iterStats []mapreduce.IterStats
	switch algo {
	case "sssp":
		if err := envMR.fs.WriteFile("/in", envMR.at(), sssp.CombinedPairs(g, 0), sssp.CombinedOps()); err != nil {
			return nil, err
		}
		res, err := mapreduce.RunIterativeCtx(context.Background(), envMR.mr, sssp.MRSpec("mr-"+dataset, "/in", "/work", cfg.Workers, iters, 0))
		if err != nil {
			return nil, err
		}
		iterStats = res.Stats
	case "pagerank":
		if err := envMR.fs.WriteFile("/in", envMR.at(), pagerank.CombinedPairs(g), pagerank.CombinedOps()); err != nil {
			return nil, err
		}
		res, err := mapreduce.RunIterativeCtx(context.Background(), envMR.mr, pagerank.MRSpec("mr-"+dataset, "/in", "/work", g.N, cfg.Workers, iters, 0))
		if err != nil {
			return nil, err
		}
		iterStats = res.Stats
	}
	mrCurve := Series{Label: "MapReduce"}
	mrExInit := Series{Label: "MapReduce (ex. init.)"}
	for _, st := range iterStats {
		mrCurve.X = append(mrCurve.X, float64(st.Iteration))
		mrCurve.Y = append(mrCurve.Y, secs(st.CumulativeWall))
		mrExInit.X = append(mrExInit.X, float64(st.Iteration))
		mrExInit.Y = append(mrExInit.Y, secs(st.CumulativeExInit))
	}

	// iMapReduce, synchronous then asynchronous.
	runIMR := func(sync bool) ([]core.IterInfo, time.Duration, error) {
		e, err := newEnv(cfg)
		if err != nil {
			return nil, 0, err
		}
		var job *core.Job
		switch algo {
		case "sssp":
			if err := sssp.WriteInputs(e.fs, e.at(), g, 0, "/static", "/state"); err != nil {
				return nil, 0, err
			}
			job = sssp.IMRJob(sssp.IMRConfig{
				Name:       fmt.Sprintf("imr-%s-sync%v", dataset, sync),
				StaticPath: "/static", StatePath: "/state",
				MaxIter: iters, SyncMap: sync,
			})
		case "pagerank":
			if err := pagerank.WriteInputs(e.fs, e.at(), g, "/static", "/state"); err != nil {
				return nil, 0, err
			}
			job = pagerank.IMRJob(pagerank.IMRConfig{
				Name:  fmt.Sprintf("imr-%s-sync%v", dataset, sync),
				Nodes: g.N, StaticPath: "/static", StatePath: "/state",
				MaxIter: iters, SyncMap: sync,
			})
		}
		res, err := e.core.Run(job)
		if err != nil {
			return nil, 0, err
		}
		return res.PerIter, res.TotalWall, nil
	}
	syncPer, _, err := runIMR(true)
	if err != nil {
		return nil, err
	}
	asyncPer, asyncTotal, err := runIMR(false)
	if err != nil {
		return nil, err
	}

	fig.Series = []Series{
		mrCurve, mrExInit,
		perIterSeries("iMapReduce (sync.)", syncPer),
		perIterSeries("iMapReduce", asyncPer),
	}
	mrTotal := mrCurve.Y[len(mrCurve.Y)-1]
	fig.Note("dataset %s: %d nodes, %d edges (paper: %d nodes, scale 1/%d)", d.Name, g.N, g.Edges(), d.PaperNodes, cfg.Scale)
	fig.Note("measured speedup iMapReduce over MapReduce: %.2fx", mrTotal/secs(asyncTotal))
	fig.Note("paper: %s", paperNote)
	return fig, nil
}

// Fig04 — SSSP on the DBLP author cooperation graph (paper Fig. 4).
func Fig04(cfg Config) (*Figure, error) {
	return runGraphFigure(cfg, "fig04", "SSSP running time on DBLP-like graph",
		"dblp", "sssp", cfg.SSSPIters,
		"2–3x speedup over Hadoop; ~20% saved by one-time init, ~15% by async maps, ~20% by avoiding static shuffle")
}

// Fig05 — SSSP on the Facebook user interaction graph (paper Fig. 5).
func Fig05(cfg Config) (*Figure, error) {
	return runGraphFigure(cfg, "fig05", "SSSP running time on Facebook-like graph",
		"facebook", "sssp", cfg.SSSPIters,
		"2–3x speedup over Hadoop")
}

// Fig06 — PageRank on the Google webgraph (paper Fig. 6).
func Fig06(cfg Config) (*Figure, error) {
	return runGraphFigure(cfg, "fig06", "PageRank running time on Google-like webgraph",
		"google", "pagerank", cfg.PageRankIters,
		"~2x speedup; ~10% init, ~30% static shuffle, ~10% async")
}

// Fig07 — PageRank on the Berkeley-Stanford webgraph (paper Fig. 7).
func Fig07(cfg Config) (*Figure, error) {
	return runGraphFigure(cfg, "fig07", "PageRank running time on BerkStan-like webgraph",
		"berkstan", "pagerank", cfg.PageRankIters,
		"~2x speedup")
}

// Fig16 — K-means on the Last.fm-like dataset, with and without
// Combiner (paper Fig. 16 and §5.1.3).
func Fig16(cfg Config) (*Figure, error) {
	points, cents := kmeans.Generate(kmeans.DataConfig{
		Users: cfg.KMeansUsers, Dim: cfg.KMeansDim, K: cfg.KMeansK, Seed: 42, Spread: 0.6,
	})
	fig := &Figure{ID: "fig16", Title: "K-means running time on Last.fm-like data",
		XLabel: "iterations", YLabel: "cumulative running time (s)"}

	runMR := func(comb bool) ([]kmeans.MRIterStats, float64, int64, error) {
		e, err := newEnv(cfg)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := e.fs.WriteFile("/points", e.at(), points, kmeans.PointOps()); err != nil {
			return nil, 0, 0, err
		}
		res, err := kmeans.RunMR(e.mr, kmeans.MRConfig{
			Name: "km-mr", PointsPath: "/points", WorkDir: "/work",
			Centroids: cents, NumReduce: cfg.Workers, MaxIter: cfg.KMeansIters, UseCombiner: comb,
		})
		if err != nil {
			return nil, 0, 0, err
		}
		var total float64
		for _, st := range res.Stats {
			total += float64(st.JobWall+st.CheckWall) / 1e9
		}
		return res.Stats, total, e.m.Get(metrics.ShuffleBytes), nil
	}
	runIMR := func(comb bool) ([]core.IterInfo, float64, int64, error) {
		e, err := newEnv(cfg)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := kmeans.WriteInputs(e.fs, e.at(), points, cents, "/points", "/cents"); err != nil {
			return nil, 0, 0, err
		}
		res, err := e.core.Run(kmeans.IMRJob(kmeans.IMRConfig{
			Name: fmt.Sprintf("km-imr-%v", comb), StaticPath: "/points", StatePath: "/cents",
			MaxIter: cfg.KMeansIters, UseCombiner: comb,
		}))
		if err != nil {
			return nil, 0, 0, err
		}
		return res.PerIter, secs(res.TotalWall), e.m.Get(metrics.ShuffleBytes), nil
	}

	mrStats, mrTotal, mrShuffle, err := runMR(false)
	if err != nil {
		return nil, err
	}
	imrPer, imrTotal, imrShuffle, err := runIMR(false)
	if err != nil {
		return nil, err
	}
	_, mrCombTotal, mrCombShuffle, err := runMR(true)
	if err != nil {
		return nil, err
	}
	_, imrCombTotal, imrCombShuffle, err := runIMR(true)
	if err != nil {
		return nil, err
	}

	mrCurve := Series{Label: "MapReduce"}
	var cum float64
	for _, st := range mrStats {
		cum += float64(st.JobWall) / 1e9
		mrCurve.X = append(mrCurve.X, float64(st.Iteration))
		mrCurve.Y = append(mrCurve.Y, cum)
	}
	fig.Series = []Series{mrCurve, perIterSeries("iMapReduce", imrPer)}
	fig.Note("measured speedup: %.2fx (paper: ~1.2x — K-means must shuffle points and run maps synchronously)", mrTotal/imrTotal)
	fig.Note("with Combiner: MapReduce %.2fs → %.2fs, shuffle %.1fMB → %.1fMB (%.0f%% less); iMapReduce %.2fs → %.2fs, shuffle %.1fMB → %.1fMB (%.0f%% less)",
		mrTotal, mrCombTotal, mbf(mrShuffle), mbf(mrCombShuffle), 100*(1-float64(mrCombShuffle)/float64(mrShuffle)),
		imrTotal, imrCombTotal, mbf(imrShuffle), mbf(imrCombShuffle), 100*(1-float64(imrCombShuffle)/float64(imrShuffle)))
	fig.Note("paper: Combiner cut Hadoop 2881s → 2226s (23%%) and iMapReduce 2338s → 1733s (26%%); the in-process substrate shows the saving mostly in shuffle volume")
	return fig, nil
}

// Fig18 — matrix power computation, two map-reduce phases per iteration
// (paper Fig. 18).
func Fig18(cfg Config) (*Figure, error) {
	m := matpower.Random(cfg.MatrixN, 7)
	fig := &Figure{ID: "fig18", Title: fmt.Sprintf("Matrix power (%dx%d) running time", cfg.MatrixN, cfg.MatrixN),
		XLabel: "iterations", YLabel: "cumulative running time (s)"}

	envMR, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	if err := envMR.fs.WriteFile("/m", envMR.at(), matpower.StatePairs(m), matpower.EntryOps()); err != nil {
		return nil, err
	}
	mrRes, err := matpower.RunMR(envMR.mr, "mp-mr", "/m", m, "/work", cfg.Workers, cfg.MatrixIters)
	if err != nil {
		return nil, err
	}
	mrCurve := Series{Label: "MapReduce"}
	var cum float64
	for i, wall := range mrRes.Walls {
		cum += float64(wall) / 1e9
		mrCurve.X = append(mrCurve.X, float64(i+1))
		mrCurve.Y = append(mrCurve.Y, cum)
	}

	envIMR, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	if err := matpower.WriteInputs(envIMR.fs, envIMR.at(), m, "/static", "/state"); err != nil {
		return nil, err
	}
	imrRes, err := envIMR.core.Run(matpower.IMRJob(matpower.IMRConfig{
		Name: "mp-imr", StaticPath: "/static", StatePath: "/state", MaxIter: cfg.MatrixIters,
	}))
	if err != nil {
		return nil, err
	}
	fig.Series = []Series{mrCurve, perIterSeries("iMapReduce", imrRes.PerIter)}
	fig.Note("measured speedup: %.2fx (paper: ~1.1x — intermediate shuffle between the two phases dominates)",
		cum/secs(imrRes.TotalWall))
	return fig, nil
}

// Fig20 — K-means with convergence detection via the auxiliary phase
// vs the baseline's extra check job per iteration (paper Fig. 20).
func Fig20(cfg Config) (*Figure, error) {
	// Random centroid initialization plus overlapping clusters make
	// Lloyd's take several iterations to settle, as on the paper's
	// Last.fm data.
	points, _ := kmeans.Generate(kmeans.DataConfig{
		Users: cfg.KMeansUsers, Dim: cfg.KMeansDim, K: cfg.KMeansK, Seed: 43, Spread: 1.2,
	})
	cents := kmeans.RandomInitCentroids(points, cfg.KMeansK, 99)
	moveThreshold := int64(cfg.KMeansUsers/200 + 1)
	fig := &Figure{ID: "fig20", Title: "K-means with convergence detection",
		XLabel: "iterations", YLabel: "cumulative running time (s)"}

	envMR, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	if err := envMR.fs.WriteFile("/points", envMR.at(), points, kmeans.PointOps()); err != nil {
		return nil, err
	}
	mrRes, err := kmeans.RunMR(envMR.mr, kmeans.MRConfig{
		Name: "km-conv-mr", PointsPath: "/points", WorkDir: "/work",
		Centroids: cents, NumReduce: cfg.Workers, MaxIter: 40, MoveThreshold: moveThreshold,
	})
	if err != nil {
		return nil, err
	}
	mrCurve := Series{Label: "MapReduce (with check job)"}
	var cum float64
	for _, st := range mrRes.Stats {
		cum += float64(st.JobWall+st.CheckWall) / 1e9
		mrCurve.X = append(mrCurve.X, float64(st.Iteration))
		mrCurve.Y = append(mrCurve.Y, cum)
	}

	envIMR, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	if err := kmeans.WriteInputs(envIMR.fs, envIMR.at(), points, cents, "/points", "/cents"); err != nil {
		return nil, err
	}
	imrRes, err := envIMR.core.Run(kmeans.IMRJob(kmeans.IMRConfig{
		Name: "km-conv-imr", StaticPath: "/points", StatePath: "/cents",
		MaxIter: 40, MoveThreshold: moveThreshold,
	}))
	if err != nil {
		return nil, err
	}
	fig.Series = []Series{mrCurve, perIterSeries("iMapReduce (aux phase)", imrRes.PerIter)}
	fig.Note("baseline converged after %d iterations (%.2fs); iMapReduce after %d (%.2fs): %.0f%% time reduction",
		mrRes.Iterations, cum, imrRes.Iterations, secs(imrRes.TotalWall),
		100*(1-secs(imrRes.TotalWall)/cum))
	fig.Note("paper: 25%% reduction, terminating after 6 iterations — the auxiliary phase runs in parallel instead of as a chained job")
	return fig, nil
}

// Table1 and Table2 regenerate the dataset-statistics tables at the
// configured scale.
func datasetTable(cfg Config, id, title string, table int) (*Figure, error) {
	fig := &Figure{ID: id, Title: title}
	for _, d := range graph.Catalog(cfg.Scale) {
		if d.Table != table {
			continue
		}
		g := d.Build()
		st := g.StatsOf()
		fig.Note("%-12s nodes=%-9d edges=%-10d est.size=%s (paper: %d nodes, %d edges)",
			d.Name, st.Nodes, st.Edges, fmtBytes(st.EstBytes), d.PaperNodes, d.PaperEdges)
	}
	fig.Note("generated with the paper's log-normal parameters at scale 1/%d", cfg.Scale)
	return fig, nil
}

// Table1 — SSSP dataset statistics (paper Table 1).
func Table1(cfg Config) (*Figure, error) {
	return datasetTable(cfg, "table1", "SSSP data sets statistics", 1)
}

// Table2 — PageRank dataset statistics (paper Table 2).
func Table2(cfg Config) (*Figure, error) {
	return datasetTable(cfg, "table2", "PageRank data sets statistics", 2)
}

func mbf(b int64) float64 { return float64(b) / (1 << 20) }

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dKB", b/1024)
	}
}

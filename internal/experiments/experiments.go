// Package experiments regenerates every table and figure of the paper's
// evaluation (§4, §5). Local-cluster figures (4–7, 16, 18, 20) run the
// real engines on scaled synthetic datasets; EC2-scale figures (8–14)
// run the calibrated cluster simulator at the paper's full data sizes.
//
// Each experiment returns a Figure: labeled series plus notes comparing
// the measured shape against the paper's reported numbers. cmd/imrbench
// prints them; bench_test.go wraps each in a benchmark.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"imapreduce/internal/trace"
)

// Series is one labeled curve or bar group.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is one reproduced table or figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Note appends a formatted note line.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Render writes the figure as an aligned text table: one row per X
// value, one column per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		header := []string{f.XLabel}
		for _, s := range f.Series {
			header = append(header, s.Label)
		}
		rows := map[float64][]string{}
		var xs []float64
		for si, s := range f.Series {
			for i, x := range s.X {
				row, ok := rows[x]
				if !ok {
					row = make([]string, len(f.Series))
					for j := range row {
						row[j] = "-"
					}
					rows[x] = row
					xs = append(xs, x)
					row = rows[x]
				}
				row[si] = fmt.Sprintf("%.2f", s.Y[i])
			}
		}
		sort.Float64s(xs)
		widths := make([]int, len(header))
		for i, h := range header {
			widths[i] = len(h)
		}
		var lines [][]string
		for _, x := range xs {
			line := append([]string{trimFloat(x)}, rows[x]...)
			for i, c := range line {
				if len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
			lines = append(lines, line)
		}
		printRow := func(cells []string) {
			for i, c := range cells {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
			fmt.Fprintln(w)
		}
		printRow(header)
		printRow(dashes(widths))
		for _, l := range lines {
			printRow(l)
		}
	}
	if f.YLabel != "" {
		fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the figure's series as a CSV file (one row per X
// value, one column per series) under dir, named <ID>.csv, for external
// plotting.
func (f *Figure) WriteCSV(dir string) error {
	if len(f.Series) == 0 {
		return nil
	}
	path := filepath.Join(dir, f.ID+".csv")
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	w := csv.NewWriter(file)
	if err := w.Write(header); err != nil {
		return err
	}
	rows := map[float64][]string{}
	var xs []float64
	for si, s := range f.Series {
		for i, x := range s.X {
			if _, ok := rows[x]; !ok {
				row := make([]string, len(f.Series))
				rows[x] = row
				xs = append(xs, x)
			}
			rows[x][si] = fmt.Sprintf("%g", s.Y[i])
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		if err := w.Write(append([]string{fmt.Sprintf("%g", x)}, rows[x]...)); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Config scales the experiments. Default reproduces the paper's shapes
// in tens of seconds; Quick is for tests and benchmarks.
type Config struct {
	// Scale divides the paper's dataset sizes (graph.Catalog scale).
	Scale int
	// Workers is the local-cluster size (the paper's local cluster has
	// 4 nodes).
	Workers int
	// JobInit and TaskStart emulate Hadoop's scheduling costs in the
	// real-engine runs, scaled down with the data.
	JobInit   time.Duration
	TaskStart time.Duration
	// Iterations for the per-iteration figures (paper: 16 for SSSP,
	// 20 for PageRank, 10 for both on EC2, 10 for K-means, 5 for matrix
	// power).
	SSSPIters     int
	PageRankIters int
	KMeansIters   int
	MatrixIters   int
	// K-means dataset shape (Last.fm stand-in).
	KMeansUsers int
	KMeansDim   int
	KMeansK     int
	// MatrixN is the dense matrix dimension.
	MatrixN int
	// Transport selects the real-engine message backend: "" or "chan"
	// for in-process channels, "tcp" for real loopback sockets (the
	// paper's persistent connections, exercising the wire codecs).
	Transport string
	// Trace, if set, receives structured events from every engine run
	// built on this Config (and from the transport when Transport is
	// "tcp").
	Trace *trace.Recorder
	// ProfileDir, if set, makes CoreBench write per-scenario CPU and
	// heap profiles (pprof format) into this directory.
	ProfileDir string
}

// Default is the full-size (still laptop-friendly) configuration.
func Default() Config {
	return Config{
		Scale:         100,
		Workers:       4,
		JobInit:       40 * time.Millisecond,
		TaskStart:     10 * time.Millisecond,
		SSSPIters:     16,
		PageRankIters: 20,
		KMeansIters:   10,
		MatrixIters:   5,
		KMeansUsers:   100000, // compute-dominated, as the paper's 359k-user run was
		KMeansDim:     32,
		KMeansK:       20,
		MatrixN:       144,
	}
}

// Quick shrinks everything for unit tests and benchmarks.
func Quick() Config {
	return Config{
		Scale:         2000,
		Workers:       3,
		JobInit:       4 * time.Millisecond,
		TaskStart:     time.Millisecond,
		SSSPIters:     6,
		PageRankIters: 6,
		KMeansIters:   4,
		MatrixIters:   3,
		KMeansUsers:   300,
		KMeansDim:     6,
		KMeansK:       4,
		MatrixN:       16,
	}
}

// Runner produces one figure.
type Runner func(Config) (*Figure, error)

// All maps experiment ids to runners, in paper order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"fig04", Fig04},
		{"fig05", Fig05},
		{"fig06", Fig06},
		{"fig07", Fig07},
		{"fig08", Fig08},
		{"fig09", Fig09},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig16", Fig16},
		{"fig18", Fig18},
		{"fig20", Fig20},
	}
}

// ByID returns the runner for one experiment id.
func ByID(id string) (Runner, error) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

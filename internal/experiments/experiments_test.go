package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment at the Quick
// configuration and sanity-checks the figures.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Quick()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			fig, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fig.ID != e.ID {
				t.Fatalf("figure id %q for experiment %q", fig.ID, e.ID)
			}
			if len(fig.Series) == 0 && len(fig.Notes) == 0 {
				t.Fatal("empty figure")
			}
			for _, s := range fig.Series {
				if len(s.X) != len(s.Y) {
					t.Fatalf("series %q has mismatched lengths", s.Label)
				}
				for _, y := range s.Y {
					if y < 0 {
						t.Fatalf("series %q has negative value %v", s.Label, y)
					}
				}
			}
			var buf bytes.Buffer
			fig.Render(&buf)
			if !strings.Contains(buf.String(), fig.ID) {
				t.Fatal("render lost the figure id")
			}
		})
	}
}

// TestGraphFigureShape checks the paper's curve ordering on Fig. 4:
// MapReduce ≥ MapReduce(ex. init.) ≥ iMapReduce(sync.) ≥ iMapReduce at
// the final iteration.
func TestGraphFigureShape(t *testing.T) {
	// The curve ordering needs realistic data volumes: run at the
	// default scale with fewer iterations.
	cfg := Default()
	cfg.SSSPIters = 6
	fig, err := Fig04(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 curves, got %d", len(fig.Series))
	}
	finals := make([]float64, 4)
	for i, s := range fig.Series {
		finals[i] = s.Y[len(s.Y)-1]
	}
	if raceDetectorEnabled {
		// The curves are measured wall time; race instrumentation slows
		// the engines' fine-grained paths far more than the batch paths
		// and flips the ordering. Structural checks below still run.
		t.Log("race detector on: skipping curve-ordering assertions")
	}
	if !raceDetectorEnabled && !(finals[0] > finals[1]) {
		t.Errorf("MapReduce (%.3f) should exceed ex-init (%.3f)", finals[0], finals[1])
	}
	if !raceDetectorEnabled && !(finals[1] > finals[3]) {
		t.Errorf("MapReduce ex-init (%.3f) should exceed iMapReduce (%.3f)", finals[1], finals[3])
	}
	if !raceDetectorEnabled && !(finals[2] >= finals[3]*0.9) {
		t.Errorf("sync iMapReduce (%.3f) implausibly below async (%.3f)", finals[2], finals[3])
	}
	// Cumulative curves increase.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("series %q not cumulative", s.Label)
			}
		}
	}
}

// TestRegistryCoversEveryPaperExperiment guards the experiment set: all
// of the paper's evaluation tables and figures must stay registered.
func TestRegistryCoversEveryPaperExperiment(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig04", "fig05", "fig06", "fig07", // local-cluster SSSP/PageRank
		"fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", // EC2
		"fig16", "fig18", "fig20", // K-means, matrix power, aux phase
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("registry[%d] = %q, want %q", i, got[i].ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig08"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID: "figx", XLabel: "iter",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{1.5, 2.5}},
			{Label: "b", X: []float64{2}, Y: []float64{9}},
		},
	}
	dir := t.TempDir()
	if err := fig.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figx.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	want := "iter,a,b\n1,1.5,\n2,2.5,9\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
	// A series-less figure writes nothing.
	if err := (&Figure{ID: "empty"}).WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "empty.csv")); err == nil {
		t.Fatal("empty figure produced a csv")
	}
}

func TestRenderTable(t *testing.T) {
	fig := &Figure{
		ID: "x", Title: "t", XLabel: "iter",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{1.5, 2.5}},
			{Label: "b", X: []float64{1}, Y: []float64{9}},
		},
	}
	fig.Note("hello %d", 7)
	var buf bytes.Buffer
	fig.Render(&buf)
	out := buf.String()
	for _, want := range []string{"iter", "a", "b", "1.50", "9.00", "hello 7", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

package experiments

import (
	"fmt"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/core"
	"imapreduce/internal/graph"
	"imapreduce/internal/trace"
)

// TracedRun executes one iterative figure workload ("pagerank" or
// "sssp" on a catalog dataset) on a fresh local cluster with rec
// capturing events, and returns the run result. It is the shared
// substrate for imrrun/imrbench's -trace modes and the decomposition
// validation tests.
func TracedRun(cfg Config, dataset, algo string, iters int, rec *trace.Recorder) (*core.Result, error) {
	d, err := graph.ByName(dataset, cfg.Scale)
	if err != nil {
		return nil, err
	}
	g := d.Build()
	cfg.Trace = rec
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	var job *core.Job
	switch algo {
	case "pagerank":
		if err := pagerank.WriteInputs(e.fs, e.at(), g, "/static", "/state"); err != nil {
			return nil, err
		}
		job = pagerank.IMRJob(pagerank.IMRConfig{
			Name: "trace-pr", Nodes: g.N, StaticPath: "/static", StatePath: "/state",
			MaxIter: iters,
		})
	case "sssp":
		if err := sssp.WriteInputs(e.fs, e.at(), g, 0, "/static", "/state"); err != nil {
			return nil, err
		}
		job = sssp.IMRJob(sssp.IMRConfig{
			Name: "trace-sssp", StaticPath: "/static", StatePath: "/state",
			MaxIter: iters,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown algo %q", algo)
	}
	return e.core.Run(job)
}

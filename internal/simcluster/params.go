// Package simcluster reproduces the paper's EC2-scale experiments
// (Figs. 8–14) with a discrete-event cost model: 20–80 small instances,
// Hadoop-era job/task launch overheads, slot-limited task waves, shared
// network bandwidth, and the two engines' different data movement
// (static+state reshuffled per iteration vs state-only with persistent
// tasks).
//
// The model is deliberately parameter-light; every constant is declared
// here and documented. Absolute seconds are not the goal — the
// engine-vs-engine ratios and their trends with graph size and cluster
// size are.
package simcluster

// Params is the simulated cluster and cost model.
type Params struct {
	// Instances is the cluster size (the paper sweeps 20, 50, 80).
	Instances int
	// MapSlots/ReduceSlots per instance (Hadoop default: 2 + 2).
	MapSlots    int
	ReduceSlots int

	// DiskMBps is sequential disk bandwidth per instance; NicMBps the
	// NIC bandwidth (1 Gbps ≈ 125 MB/s in the paper's local cluster;
	// EC2 small instances were closer to 30–60 MB/s sustained).
	DiskMBps float64
	NicMBps  float64
	// NetEfficiency discounts the aggregate all-to-all bandwidth for
	// switch contention (0.5 = half the sum of NICs usable).
	NetEfficiency float64

	// JobInitSec is the per-job submission/setup/cleanup cost the
	// baseline pays every iteration (JVM-era Hadoop: 10–20 s).
	JobInitSec float64
	// TaskStartSec is the per-task launch cost (task JVM start).
	TaskStartSec float64
	// SchedPerTaskSec is the job tracker's per-task scheduling cost,
	// paid as part of every job's initialization; it grows with task
	// count and therefore with cluster size, which is why the baseline
	// scales worse (Figs. 12–13). Persistent tasks pay it once.
	SchedPerTaskSec float64
	// BarrierSec is iMapReduce's per-iteration coordination cost:
	// reduce reports, master distance merge and termination check, and
	// the reduce→map socket turnaround. The prototype is file-backed
	// and Hadoop-hosted, so this is seconds, not milliseconds.
	BarrierSec float64

	// MapRecUs / ReduceRecUs are per-record compute costs in
	// microseconds, calibrated against the real engines (see
	// TestCalibration).
	MapRecUs    float64
	ReduceRecUs float64

	// BlockMB is the DFS block size (64 MB in the paper).
	BlockMB float64
	// Replication is the DFS replication factor (3).
	Replication int

	// TaskSkew spreads per-task work deterministically by ±TaskSkew
	// (data skew from the log-normal degree distribution); it is what
	// asynchronous map execution exploits.
	TaskSkew float64

	// HadoopShuffleOverhead scales the baseline's shuffle volume for
	// Hadoop's spill/merge/HTTP materialization.
	HadoopShuffleOverhead float64

	// LocalityMissRate is the fraction of baseline map input read from
	// a remote replica despite locality scheduling.
	LocalityMissRate float64

	// SpeedFactors, when non-nil, gives per-instance relative speeds
	// (heterogeneity experiments); len must equal Instances.
	SpeedFactors []float64
}

// DefaultParams models the paper's EC2 small-instance cluster.
func DefaultParams(instances int) Params {
	return Params{
		Instances:             instances,
		MapSlots:              2,
		ReduceSlots:           2,
		DiskMBps:              55,
		NicMBps:               60,
		NetEfficiency:         0.5,
		JobInitSec:            5,
		TaskStartSec:          1.5,
		SchedPerTaskSec:       0.05,
		BarrierSec:            2.5,
		MapRecUs:              1.4,
		ReduceRecUs:           2.5,
		BlockMB:               64,
		Replication:           3,
		TaskSkew:              0.5,
		HadoopShuffleOverhead: 1.3,
		LocalityMissRate:      0.1,
	}
}

func (p Params) speedOf(node int) float64 {
	if p.SpeedFactors == nil || node >= len(p.SpeedFactors) || p.SpeedFactors[node] <= 0 {
		return 1
	}
	return p.SpeedFactors[node]
}

// aggNetMBps is the usable all-to-all network bandwidth.
func (p Params) aggNetMBps() float64 {
	return float64(p.Instances) * p.NicMBps * p.NetEfficiency
}

// remoteFrac is the probability a hashed partition lands off-node.
func (p Params) remoteFrac() float64 {
	if p.Instances <= 1 {
		return 0
	}
	return float64(p.Instances-1) / float64(p.Instances)
}

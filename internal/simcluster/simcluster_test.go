package simcluster

import (
	"math"
	"testing"
	"testing/quick"

	"imapreduce/internal/graph"
)

func dataset(t *testing.T, name string) graph.Dataset {
	t.Helper()
	d, err := graph.ByName(name, graph.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIMRBeatsMR(t *testing.T) {
	for _, name := range []string{"sssp-s", "sssp-m", "sssp-l"} {
		w := SSSPWorkload(dataset(t, name))
		p := DefaultParams(20)
		mr := SimulateMR(p, w, 10)
		imr := SimulateIMR(p, w, 10, IMROptions{})
		if imr.TotalSec >= mr.TotalSec {
			t.Errorf("%s: iMR %.1fs not faster than MR %.1fs", name, imr.TotalSec, mr.TotalSec)
		}
		ratio := imr.TotalSec / mr.TotalSec
		// Paper Fig. 8: 23.2%, 37.0%, 38.6% — allow a generous band but
		// require the right regime.
		if ratio < 0.1 || ratio > 0.7 {
			t.Errorf("%s: ratio %.2f outside plausible band", name, ratio)
		}
		t.Logf("%s: MR %.1fs iMR %.1fs ratio %.1f%%", name, mr.TotalSec, imr.TotalSec, 100*ratio)
	}
}

func TestSmallGraphsBenefitMore(t *testing.T) {
	// Fig. 8/9: iMR's advantage is largest on small inputs, where init
	// dominates.
	p := DefaultParams(20)
	ratio := func(name string) float64 {
		w := SSSPWorkload(dataset(t, name))
		return SimulateIMR(p, w, 10, IMROptions{}).TotalSec / SimulateMR(p, w, 10).TotalSec
	}
	small, large := ratio("sssp-s"), ratio("sssp-l")
	if small >= large {
		t.Fatalf("small-graph ratio %.2f should beat large-graph ratio %.2f", small, large)
	}
}

func TestFactorOrdering(t *testing.T) {
	// Fig. 10: each disabled optimization must cost time; sync ≥ async,
	// static-shuffle ≥ none, per-iter init ≥ one-time.
	w := SSSPWorkload(dataset(t, "sssp-m"))
	p := DefaultParams(20)
	base := SimulateIMR(p, w, 10, IMROptions{}).TotalSec
	sync := SimulateIMR(p, w, 10, IMROptions{SyncMap: true}).TotalSec
	shuf := SimulateIMR(p, w, 10, IMROptions{ShuffleStatic: true}).TotalSec
	init := SimulateIMR(p, w, 10, IMROptions{PerIterationInit: true}).TotalSec
	if sync < base || shuf <= base || init <= base {
		t.Fatalf("factors not costly: base %.1f sync %.1f shuffle %.1f init %.1f", base, sync, shuf, init)
	}
}

func TestDecomposeIMRCoversWall(t *testing.T) {
	// The four factors are exhaustive: per-pair-average init + shuffle +
	// compute + sync-wait must reassemble the simulated wall time (the
	// residual construction can only undershoot when an iteration's
	// modeled work exceeds its wall, which the clamp forgives).
	for _, tc := range []struct {
		name string
		w    Workload
	}{
		{"sssp-m", SSSPWorkload(dataset(t, "sssp-m"))},
		{"pagerank-m", PageRankWorkload(dataset(t, "pagerank-m"))},
	} {
		p := DefaultParams(20)
		d := DecomposeIMR(p, tc.w, 10, IMROptions{})
		sum := d.InitSec + d.ShuffleSec + d.SyncWaitSec + d.ComputeSec
		if d.TotalSec <= 0 || sum < 0.85*d.TotalSec || sum > 1.15*d.TotalSec {
			t.Errorf("%s: factors %.1fs don't cover wall %.1fs", tc.name, sum, d.TotalSec)
		}
		if d.InitSec <= 0 || d.ComputeSec <= 0 || d.ShuffleSec <= 0 {
			t.Errorf("%s: degenerate decomposition %+v", tc.name, d)
		}
		t.Logf("%s: init %.1f shuffle %.1f wait %.1f compute %.1f / wall %.1f",
			tc.name, d.InitSec, d.ShuffleSec, d.SyncWaitSec, d.ComputeSec, d.TotalSec)
	}
}

func TestCommunicationSavings(t *testing.T) {
	// Fig. 11: iMR's traffic is a small fraction of the baseline's.
	for _, tc := range []struct {
		name string
		w    Workload
	}{
		{"sssp-l", SSSPWorkload(dataset(t, "sssp-l"))},
		{"pagerank-l", PageRankWorkload(dataset(t, "pagerank-l"))},
	} {
		p := DefaultParams(20)
		mr := SimulateMR(p, tc.w, 10)
		imr := SimulateIMR(p, tc.w, 10, IMROptions{})
		ratio := imr.CommMB / mr.CommMB
		if ratio > 0.5 {
			t.Errorf("%s: comm ratio %.2f too high", tc.name, ratio)
		}
		t.Logf("%s: MR %.0fMB iMR %.0fMB ratio %.1f%%", tc.name, mr.CommMB, imr.CommMB, 100*ratio)
	}
}

func TestScalingImprovesRatio(t *testing.T) {
	// Figs. 12–13: the iMR/MR ratio improves as the cluster grows.
	w := SSSPWorkload(dataset(t, "sssp-l"))
	ratio := func(n int) float64 {
		p := DefaultParams(n)
		return SimulateIMR(p, w, 10, IMROptions{}).TotalSec / SimulateMR(p, w, 10).TotalSec
	}
	r20, r50, r80 := ratio(20), ratio(50), ratio(80)
	if !(r80 < r50 && r50 < r20) {
		t.Fatalf("ratio not improving with scale: %.3f %.3f %.3f", r20, r50, r80)
	}
	t.Logf("scaling ratios: 20→%.1f%% 50→%.1f%% 80→%.1f%%", 100*r20, 100*r50, 100*r80)
}

func TestParallelEfficiency(t *testing.T) {
	// Fig. 14: efficiencies in (0,1], decreasing with n, and iMR above
	// MR.
	w := SSSPWorkload(dataset(t, "sssp-l"))
	mrTotal := func(n int) float64 { return SimulateMR(DefaultParams(n), w, 10).TotalSec }
	imrTotal := func(n int) float64 {
		return SimulateIMR(DefaultParams(n), w, 10, IMROptions{}).TotalSec
	}
	for _, n := range []int{20, 50, 80} {
		em := ParallelEfficiency(mrTotal, n)
		ei := ParallelEfficiency(imrTotal, n)
		if em <= 0 || em > 1.05 || ei <= 0 || ei > 1.05 {
			t.Fatalf("n=%d: efficiencies out of range: mr %.2f imr %.2f", n, em, ei)
		}
		if ei <= em {
			t.Errorf("n=%d: iMR efficiency %.2f not above MR %.2f", n, ei, em)
		}
		t.Logf("n=%d: mr %.2f imr %.2f", n, em, ei)
	}
}

func TestIterationsMonotone(t *testing.T) {
	w := PageRankWorkload(dataset(t, "pagerank-m"))
	p := DefaultParams(20)
	for _, run := range []*RunStats{
		SimulateMR(p, w, 8),
		SimulateIMR(p, w, 8, IMROptions{}),
	} {
		if len(run.IterSec) != 8 || len(run.CumSec) != 8 {
			t.Fatalf("%s: wrong series lengths", run.Engine)
		}
		for i, d := range run.IterSec {
			if d <= 0 || math.IsNaN(d) {
				t.Fatalf("%s: iteration %d duration %v", run.Engine, i+1, d)
			}
			if i > 0 && run.CumSec[i] <= run.CumSec[i-1] {
				t.Fatalf("%s: cumulative time not increasing", run.Engine)
			}
		}
		if math.Abs(run.CumSec[7]-run.TotalSec) > 1e-9 {
			t.Fatalf("%s: total != last cumulative", run.Engine)
		}
	}
}

func TestFrontierActivity(t *testing.T) {
	f := FrontierActivity(1000000, 7)
	if f(1) >= f(3) || f(3) >= f(6) {
		t.Fatal("activity should grow")
	}
	if f(20) != 1 {
		t.Fatal("activity should saturate at 1")
	}
	if FullActivity(3) != 1 {
		t.Fatal("full activity")
	}
}

// TestPropertyMoreInstancesNeverSlower: while the workload is still
// compute-dominated (small clusters), doubling the instances must not
// make either engine slower. Past that regime per-task scheduling and
// coordination floors legitimately flatten and eventually invert the
// curve, as on real clusters — so the property stops at 32 instances.
func TestPropertyMoreInstancesNeverSlower(t *testing.T) {
	w := SSSPWorkload(dataset(t, "sssp-m"))
	f := func(nRaw uint8) bool {
		n := int(nRaw%28) + 4 // 4..31 instances
		mrSmall := SimulateMR(DefaultParams(n), w, 5).TotalSec
		mrBig := SimulateMR(DefaultParams(n*2), w, 5).TotalSec
		imrSmall := SimulateIMR(DefaultParams(n), w, 5, IMROptions{}).TotalSec
		imrBig := SimulateIMR(DefaultParams(n*2), w, 5, IMROptions{}).TotalSec
		// Allow a sliver of slack: per-task scheduling costs grow with n.
		return mrBig <= mrSmall*1.05 && imrBig <= imrSmall*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMoreIterationsMoreTime: totals grow monotonically with the
// iteration count.
func TestPropertyMoreIterationsMoreTime(t *testing.T) {
	w := PageRankWorkload(dataset(t, "pagerank-s"))
	p := DefaultParams(20)
	f := func(kRaw uint8) bool {
		k := int(kRaw%20) + 1
		return SimulateMR(p, w, k+1).TotalSec > SimulateMR(p, w, k).TotalSec &&
			SimulateIMR(p, w, k+1, IMROptions{}).TotalSec > SimulateIMR(p, w, k, IMROptions{}).TotalSec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFrontierActivityMatchesRealBFS validates the SSSP activity model
// against an actual breadth-first expansion on a generated catalog
// graph: the modeled reached-fraction must track the measured one
// within an order of magnitude through the ramp-up and agree at
// saturation.
func TestFrontierActivityMatchesRealBFS(t *testing.T) {
	d := dataset(t, "sssp-s") // scaled generation, same degree law
	g := d.Build()
	reached := make([]bool, g.N)
	reached[0] = true
	frontier := []int32{0}
	count := 1
	model := FrontierActivity(int64(g.N), float64(g.Edges())/float64(g.N))
	for iter := 1; iter <= 12 && len(frontier) > 0; iter++ {
		var next []int32
		for _, u := range frontier {
			dst, _ := g.Neighbors(u)
			for _, v := range dst {
				if !reached[v] {
					reached[v] = true
					count++
					next = append(next, v)
				}
			}
		}
		frontier = next
		measured := float64(count) / float64(g.N)
		predicted := model(iter + 1) // model(k) = reached after k-1 rounds
		if measured >= 0.99 {
			if predicted < 0.5 {
				t.Fatalf("iter %d: graph saturated but model says %.3f", iter, predicted)
			}
			break
		}
		if predicted > 0 && (measured/predicted > 30 || predicted/measured > 30) {
			t.Fatalf("iter %d: measured %.4f vs modeled %.4f — off by >30x", iter, measured, predicted)
		}
	}
}

func TestHeterogeneousSlowsDown(t *testing.T) {
	w := SSSPWorkload(dataset(t, "sssp-m"))
	p := DefaultParams(20)
	slow := p
	slow.SpeedFactors = make([]float64, 20)
	for i := range slow.SpeedFactors {
		slow.SpeedFactors[i] = 1
	}
	slow.SpeedFactors[3] = 0.3
	if SimulateIMR(slow, w, 10, IMROptions{}).TotalSec <= SimulateIMR(p, w, 10, IMROptions{}).TotalSec {
		t.Fatal("slow node did not slow the run")
	}
}

func TestSingleInstanceNoNetwork(t *testing.T) {
	w := PageRankWorkload(dataset(t, "pagerank-s"))
	p := DefaultParams(1)
	run := SimulateIMR(p, w, 5, IMROptions{})
	if run.CommMB != 0 {
		// Replication still writes off-node in principle, but with one
		// node there is nowhere to go; remoteFrac is 0 yet replication
		// terms remain — assert only shuffle is zero by comparing with
		// a two-node run.
		run2 := SimulateIMR(DefaultParams(2), w, 5, IMROptions{})
		if run.CommMB >= run2.CommMB {
			t.Fatalf("1-instance comm %.1f not below 2-instance %.1f", run.CommMB, run2.CommMB)
		}
	}
}

package simcluster

// Decomposition splits a simulated iMapReduce run into the four factors
// the trace recorder extracts from a real run (internal/trace): one-time
// initialization, shuffle (network transfer plus spill/merge/loop-back
// disk I/O), synchronization wait (barrier and straggler idle time), and
// compute (per-record map/reduce work). The factors are per-pair
// averages, matching trace.Decompose's 1/pairs weighting, so they sum to
// roughly the run's wall time.
type Decomposition struct {
	InitSec     float64
	ShuffleSec  float64
	SyncWaitSec float64
	ComputeSec  float64
	TotalSec    float64
}

// DecomposeIMR re-derives the factor totals for a SimulateIMR run from
// the same cost formulas; SimulateIMR itself is unchanged and supplies
// the per-iteration wall times. Sync wait is the residual — whatever
// wall time the average pair spends neither computing, shuffling, nor
// initializing — clamped at zero, exactly how idle-window spans absorb
// the remainder in a real trace.
func DecomposeIMR(p Params, w Workload, iters int, opt IMROptions) Decomposition {
	rs := SimulateIMR(p, w, iters, opt)
	staticMB := float64(w.StaticBytes) / mb
	stateMB := float64(w.Nodes*w.StateRecBytes) / mb
	pairs := p.Instances

	// Average work multiplier across pairs (skew is symmetric around 1
	// but heterogeneous speeds are not).
	var mapMult, redMult float64
	for i := 0; i < pairs; i++ {
		mapMult += p.skew(i, pairs) / p.speedOf(i%p.Instances)
		redMult += p.skew(pairs-1-i, pairs) / p.speedOf(i%p.Instances)
	}
	mapMult /= float64(pairs)
	redMult /= float64(pairs)

	var d Decomposition
	// The one-time initialization lands in iteration 1's duration in
	// SimulateIMR, mirroring how a trace charges the run.init span there.
	d.InitSec = rs.InitSec
	for k := 1; k <= iters; k++ {
		msgs := w.msgsAt(k)
		msgMB := msgs * float64(w.MsgBytes) / mb
		shuffleMB := msgMB
		if opt.ShuffleStatic {
			shuffleMB += staticMB
		}

		netSec := shuffleMB * p.remoteFrac() / p.aggNetMBps()
		spillSec := shuffleMB / float64(pairs) / p.DiskMBps * mapMult
		mergeSec := (shuffleMB/float64(pairs)/p.DiskMBps +
			2*stateMB/float64(pairs)/p.DiskMBps) * redMult
		shuffle := netSec + spillSec + mergeSec

		compute := (float64(w.Nodes)+msgs)/float64(pairs)*p.MapRecUs*1e-6*mapMult +
			(msgs+float64(w.Nodes))/float64(pairs)*p.ReduceRecUs*1e-6*redMult

		initExtra := 0.0
		if opt.PerIterationInit {
			initExtra = p.TaskStartSec + p.JobInitSec
		}

		wall := rs.IterSec[k-1]
		used := shuffle + compute + initExtra
		if k == 1 {
			used += rs.InitSec
		}
		d.ShuffleSec += shuffle
		d.ComputeSec += compute
		d.InitSec += initExtra
		d.SyncWaitSec += max(0, wall-used)
	}
	d.TotalSec = rs.TotalSec
	return d
}

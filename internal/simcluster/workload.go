package simcluster

import (
	"math"

	"imapreduce/internal/graph"
)

// Workload describes one iterative graph computation at the paper's
// full data scale (the simulator needs only counts and byte volumes, so
// no records are materialized).
type Workload struct {
	Name  string
	Nodes int64
	Edges int64

	// StateRecBytes is one (node id, state value) record; MsgBytes one
	// shuffled message; StaticBytes the total adjacency volume.
	StateRecBytes int64
	MsgBytes      int64
	StaticBytes   int64

	// Activity returns the fraction of nodes emitting messages at the
	// given iteration (1-based). PageRank is always 1; SSSP ramps up
	// with the breadth-first frontier.
	Activity func(iter int) float64
}

// FullActivity is the all-nodes-active profile (PageRank, K-means).
func FullActivity(int) float64 { return 1 }

// FrontierActivity models SSSP's reachable-set growth: after k-1
// relaxation rounds roughly avgDeg^(k-1) nodes are reached (capped at
// the graph size). Only reached nodes emit relaxation messages.
func FrontierActivity(nodes int64, avgDeg float64) func(int) float64 {
	return func(iter int) float64 {
		if iter <= 1 {
			return 1 / float64(nodes)
		}
		reached := math.Pow(avgDeg, float64(iter-1))
		if reached >= float64(nodes) {
			return 1
		}
		return reached / float64(nodes)
	}
}

// SSSPWorkload builds the workload for a Table-1 dataset at paper scale.
func SSSPWorkload(d graph.Dataset) Workload {
	avgDeg := float64(d.PaperEdges) / float64(d.PaperNodes)
	return Workload{
		Name:          d.Name,
		Nodes:         int64(d.PaperNodes),
		Edges:         d.PaperEdges,
		StateRecBytes: 12,                                      // id + float distance
		MsgBytes:      16,                                      // id + candidate distance
		StaticBytes:   13*d.PaperEdges + 8*int64(d.PaperNodes), // weighted text adjacency
		Activity:      FrontierActivity(int64(d.PaperNodes), avgDeg),
	}
}

// PageRankWorkload builds the workload for a Table-2 dataset at paper
// scale.
func PageRankWorkload(d graph.Dataset) Workload {
	return Workload{
		Name:          d.Name,
		Nodes:         int64(d.PaperNodes),
		Edges:         d.PaperEdges,
		StateRecBytes: 12,                                     // id + float rank
		MsgBytes:      12,                                     // id + partial score
		StaticBytes:   7*d.PaperEdges + 8*int64(d.PaperNodes), // unweighted text adjacency
		Activity:      FullActivity,
	}
}

// msgsAt returns the number of shuffled messages in one iteration: each
// active node relaxes its edges and re-emits itself.
func (w Workload) msgsAt(iter int) float64 {
	a := w.Activity(iter)
	return a*float64(w.Edges) + float64(w.Nodes)
}

package simcluster

import (
	"math"

	"imapreduce/internal/sim"
)

const mb = 1024 * 1024

// RunStats is one simulated engine run.
type RunStats struct {
	Name   string
	Engine string // "mapreduce" or "imapreduce"
	// InitSec: for the baseline, the summed per-job initialization time
	// (subtract for the "ex. init." curve); for iMapReduce, the
	// one-time initialization.
	InitSec float64
	// IterSec are per-iteration durations; CumSec their prefix sums
	// (the y-axis of Figs. 4–7).
	IterSec  []float64
	CumSec   []float64
	TotalSec float64
	// CommMB is total cross-worker traffic (Fig. 11).
	CommMB float64
}

func finish(rs *RunStats) *RunStats {
	var cum float64
	rs.CumSec = make([]float64, len(rs.IterSec))
	for i, d := range rs.IterSec {
		cum += d
		rs.CumSec[i] = cum
	}
	rs.TotalSec = cum
	return rs
}

// skew returns the deterministic per-task work multiplier in
// [1-TaskSkew, 1+TaskSkew].
func (p Params) skew(i, count int) float64 {
	if count <= 1 || p.TaskSkew <= 0 {
		return 1
	}
	return 1 + p.TaskSkew*(2*float64(i)/float64(count-1)-1)
}

// makespan runs task durations through slot-limited workers (round-robin
// placement, FCFS slots) on the DES kernel and returns the completion
// time.
func (p Params) makespan(slotsPer int, durations []float64) float64 {
	eng := sim.NewEngine()
	res := make([]*sim.Resource, p.Instances)
	for i := range res {
		res[i] = eng.NewResource(slotsPer)
	}
	for t, d := range durations {
		node := t % p.Instances
		res[node].Use(d/p.speedOf(node), nil)
	}
	return eng.Run()
}

// SimulateMR models the baseline: one full MapReduce job per iteration,
// with state and static data traveling together through DFS, map,
// shuffle and reduce (§2.2's three overheads).
func SimulateMR(p Params, w Workload, iters int) *RunStats {
	rs := &RunStats{Name: w.Name, Engine: "mapreduce"}
	staticMB := float64(w.StaticBytes) / mb
	stateMB := float64(w.Nodes*w.StateRecBytes) / mb
	inputMB := staticMB + stateMB
	numReduce := p.Instances

	for k := 1; k <= iters; k++ {
		msgs := w.msgsAt(k)
		msgMB := msgs * float64(w.MsgBytes) / mb

		// Map phase: one task per 64 MB block of the combined records.
		mapTasks := int(math.Ceil(inputMB / p.BlockMB))
		if mapTasks < 1 {
			mapTasks = 1
		}
		perTaskReadMB := inputMB / float64(mapTasks)
		mapDurs := make([]float64, mapTasks)
		for i := range mapDurs {
			read := perTaskReadMB/p.DiskMBps + p.LocalityMissRate*perTaskReadMB/p.NicMBps
			compute := (float64(w.Nodes) + msgs) / float64(mapTasks) * p.MapRecUs * 1e-6
			spill := (msgMB + inputMB) / float64(mapTasks) / p.DiskMBps
			mapDurs[i] = p.TaskStartSec + (read+compute+spill)*p.skew(i, mapTasks)
		}
		mapSpan := p.makespan(p.MapSlots, mapDurs)

		// Shuffle: messages plus the full static+state carrier records,
		// with Hadoop's materialization overhead.
		shuffleMB := (msgMB + inputMB) * p.HadoopShuffleOverhead
		shuffleSec := shuffleMB*p.remoteFrac()/p.aggNetMBps() +
			shuffleMB/float64(numReduce)/p.DiskMBps

		// Reduce phase: merge, reduce, write state+static back to DFS
		// with replication.
		redDurs := make([]float64, numReduce)
		outPerRed := inputMB / float64(numReduce)
		for i := range redDurs {
			merge := shuffleMB / float64(numReduce) / p.DiskMBps
			compute := (msgs + float64(w.Nodes)) / float64(numReduce) * p.ReduceRecUs * 1e-6
			write := outPerRed/p.DiskMBps + outPerRed*float64(p.Replication-1)/p.NicMBps
			redDurs[i] = p.TaskStartSec + (merge+compute+write)*p.skew(numReduce-1-i, numReduce)
		}
		redSpan := p.makespan(p.ReduceSlots, redDurs)

		jobInit := p.JobInitSec + p.SchedPerTaskSec*float64(mapTasks+numReduce)
		rs.InitSec += jobInit + p.TaskStartSec
		rs.IterSec = append(rs.IterSec, jobInit+mapSpan+shuffleSec+redSpan)
		rs.CommMB += shuffleMB*p.remoteFrac() +
			inputMB*p.LocalityMissRate +
			inputMB*float64(p.Replication-1)
	}
	return finish(rs)
}

// IMROptions toggles the iMapReduce factors for the Fig. 10
// decomposition.
type IMROptions struct {
	// SyncMap disables asynchronous map execution ("iMapReduce
	// (sync.)").
	SyncMap bool
	// ShuffleStatic forces the static data through the shuffle every
	// iteration (isolates the static-data-management factor).
	ShuffleStatic bool
	// PerIterationInit re-pays the job/task init cost every iteration
	// (isolates the one-time-initialization factor).
	PerIterationInit bool
	// CheckpointEvery dumps state to DFS every k iterations (traffic
	// only; the write is parallel). Default 5 when 0.
	CheckpointEvery int
}

// SimulateIMR models iMapReduce: persistent task pairs, one-time load of
// partitioned static data, state-only shuffle, local reduce→map return,
// and (optionally) asynchronous map execution.
func SimulateIMR(p Params, w Workload, iters int, opt IMROptions) *RunStats {
	rs := &RunStats{Name: w.Name, Engine: "imapreduce"}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 5
	}
	staticMB := float64(w.StaticBytes) / mb
	stateMB := float64(w.Nodes*w.StateRecBytes) / mb
	pairs := p.Instances

	// One-time initialization (§3.2): read the input once, partition,
	// and place each part at its pair's worker.
	loadSec := (staticMB+stateMB)/float64(p.Instances)/p.DiskMBps +
		(staticMB+stateMB)*p.remoteFrac()/p.aggNetMBps()
	rs.InitSec = p.JobInitSec + p.TaskStartSec + p.SchedPerTaskSec*float64(2*pairs) + loadSec
	rs.CommMB += (staticMB + stateMB) * p.remoteFrac()
	// Checkpoint 0 (the rollback base) is replicated in DFS.
	rs.CommMB += stateMB * float64(p.Replication-1)

	// Per-pair completion times for the async recurrence; everything
	// starts when initialization finishes. The one-time init lands in
	// the first iteration's duration so cumulative curves line up with
	// the baseline's (whose every iteration embeds a job init).
	rDone := make([]float64, pairs)
	prevEnd := 0.0
	for i := range rDone {
		rDone[i] = rs.InitSec
	}

	for k := 1; k <= iters; k++ {
		msgs := w.msgsAt(k)
		msgMB := msgs * float64(w.MsgBytes) / mb

		shuffleMB := msgMB
		if opt.ShuffleStatic {
			shuffleMB += staticMB
		}
		shuffleSec := shuffleMB * p.remoteFrac() / p.aggNetMBps()

		// The prototype stores intermediate data in local files (§6's
		// key difference from Twister), so both sides pay disk I/O on
		// the shuffled volume, and the reduce loops state back through
		// the local FS.
		mapT := func(i int) float64 {
			compute := (float64(w.Nodes)+msgs)/float64(pairs)*p.MapRecUs*1e-6 +
				shuffleMB/float64(pairs)/p.DiskMBps // local spill
			extra := 0.0
			if opt.PerIterationInit {
				extra = p.TaskStartSec
			}
			return extra + compute*p.skew(i, pairs)/p.speedOf(i%p.Instances)
		}
		// Reduce skew runs opposite to map skew: partition in-degree
		// weight is only weakly correlated with out-degree weight, and
		// this decorrelation is what async map execution exploits.
		redT := func(i int) float64 {
			compute := (msgs+float64(w.Nodes))/float64(pairs)*p.ReduceRecUs*1e-6 +
				shuffleMB/float64(pairs)/p.DiskMBps + // merge read
				2*stateMB/float64(pairs)/p.DiskMBps // state loop-back via local FS
			return compute * p.skew(pairs-1-i, pairs) / p.speedOf(i%p.Instances)
		}

		// map_k(i) starts when its own reduce finished iteration k-1
		// (async) or when every reduce finished (sync / broadcast).
		var maxPrev float64
		for _, r := range rDone {
			if r > maxPrev {
				maxPrev = r
			}
		}
		var mapsDone float64
		mapDone := make([]float64, pairs)
		for i := range mapDone {
			start := rDone[i]
			if opt.SyncMap {
				start = maxPrev
			}
			mapDone[i] = start + mapT(i)
			if mapDone[i] > mapsDone {
				mapsDone = mapDone[i]
			}
		}
		// Reduce barrier: every reduce waits for all maps (§3.3).
		iterEnd := 0.0
		for i := range rDone {
			rDone[i] = mapsDone + shuffleSec + redT(i)
			if rDone[i] > iterEnd {
				iterEnd = rDone[i]
			}
		}
		over := p.BarrierSec
		if opt.PerIterationInit {
			over += p.JobInitSec
		}
		for i := range rDone {
			rDone[i] += over
		}
		iterEnd += over

		rs.IterSec = append(rs.IterSec, iterEnd-prevEnd)
		prevEnd = iterEnd
		rs.CommMB += shuffleMB * p.remoteFrac()
		if k%opt.CheckpointEvery == 0 {
			rs.CommMB += stateMB * float64(p.Replication-1)
		}
	}
	// Final output write (once, §3.1).
	rs.CommMB += stateMB * float64(p.Replication-1)
	return finish(rs)
}

// ParallelEfficiency computes T* / (n·Tn) (paper Eq. 2): total is the
// simulated runtime as a function of cluster size; the single-instance
// run provides T*.
func ParallelEfficiency(total func(instances int) float64, n int) float64 {
	return total(1) / (total(n) * float64(n))
}

// Package jobs is the process-global registry of named, parameterized
// job definitions shared by the imrmaster and imrworker binaries and
// the multi-process test harness. Map/reduce functions cannot cross
// the wire, so a plan message carries only a registry key and a string
// parameter map; every process rebuilds the identical job from those.
//
// Registered jobs are deterministic end to end: inputs are seeded
// generators, and reduces are order-independent (PageRank sorts its
// float contributions before summing), so a multi-process run's output
// can be compared bit for bit against an in-process run of the same
// key and parameters.
package jobs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"imapreduce/internal/algorithms/pagerank"
	"imapreduce/internal/algorithms/sssp"
	"imapreduce/internal/core"
	"imapreduce/internal/dfs"
	"imapreduce/internal/graph"
)

// Entry is one registered job: Build reconstructs the definition from
// parameters; Seed writes its (deterministic, seeded) inputs into a
// DFS — called by whichever process owns the namenode.
type Entry struct {
	Build func(params map[string]string) (*core.Job, error)
	Seed  func(fs *dfs.DFS, at string, params map[string]string) error
}

var (
	mu       sync.RWMutex
	registry = map[string]Entry{}
)

// Register adds a job under key; duplicate keys panic (registration is
// an init-time act).
func Register(key string, e Entry) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[key]; dup {
		panic("jobs: duplicate registration of " + key)
	}
	registry[key] = e
}

// Keys lists the registered job keys, sorted.
func Keys() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs the job registered under key and stamps it with the
// registry identity remote plans need. Its signature matches
// core.JobBuilder.
func Build(key string, params map[string]string) (*core.Job, error) {
	mu.RLock()
	e, ok := registry[key]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("jobs: unknown job %q (have %v)", key, Keys())
	}
	job, err := e.Build(params)
	if err != nil {
		return nil, err
	}
	job.Registry = key
	job.Params = params
	return job, nil
}

// Seed writes key's inputs into fs, pinned at node at.
func Seed(fs *dfs.DFS, at, key string, params map[string]string) error {
	mu.RLock()
	e, ok := registry[key]
	mu.RUnlock()
	if !ok {
		return fmt.Errorf("jobs: unknown job %q (have %v)", key, Keys())
	}
	return e.Seed(fs, at, params)
}

// Parameter parsing: every parameter is optional with a stable default,
// so "the same params map" is well-defined across processes even when
// sparse.

func intParam(p map[string]string, key string, def int) (int, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("jobs: param %s=%q: %w", key, s, err)
	}
	return v, nil
}

func int64Param(p map[string]string, key string, def int64) (int64, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("jobs: param %s=%q: %w", key, s, err)
	}
	return v, nil
}

func floatParam(p map[string]string, key string, def float64) (float64, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("jobs: param %s=%q: %w", key, s, err)
	}
	return v, nil
}

// common holds the parameters every graph job shares.
type common struct {
	name    string
	nodes   int
	seed    int64
	maxIter int
	ckpt    int
	tasks   int
	dthresh float64
}

func commonParams(key string, p map[string]string) (common, error) {
	c := common{name: key}
	if n, ok := p["name"]; ok && n != "" {
		c.name = n
	}
	var err error
	if c.nodes, err = intParam(p, "nodes", 400); err != nil {
		return c, err
	}
	if c.seed, err = int64Param(p, "seed", 42); err != nil {
		return c, err
	}
	if c.maxIter, err = intParam(p, "maxiter", 10); err != nil {
		return c, err
	}
	if c.ckpt, err = intParam(p, "ckpt", 3); err != nil {
		return c, err
	}
	if c.tasks, err = intParam(p, "tasks", 0); err != nil {
		return c, err
	}
	if c.dthresh, err = floatParam(p, "dthresh", 0); err != nil {
		return c, err
	}
	return c, nil
}

// Conventional DFS layout per job name.
func (c common) staticPath() string { return "/jobs/" + c.name + "/static" }
func (c common) statePath() string  { return "/jobs/" + c.name + "/state" }

// OutputPath is where the registered job named name writes its final
// state — exported so harnesses know where to diff.
func OutputPath(name string) string { return "/jobs/" + name + "/out" }

func init() {
	Register("pagerank", Entry{
		Build: func(p map[string]string) (*core.Job, error) {
			c, err := commonParams("pagerank", p)
			if err != nil {
				return nil, err
			}
			job := pagerank.IMRJob(pagerank.IMRConfig{
				Name:          c.name,
				Nodes:         c.nodes,
				StaticPath:    c.staticPath(),
				StatePath:     c.statePath(),
				OutputPath:    OutputPath(c.name),
				MaxIter:       c.maxIter,
				DistThreshold: c.dthresh,
				NumTasks:      c.tasks,
				Checkpoint:    c.ckpt,
			})
			// Float addition is not associative: sort each key's
			// contributions before summing so the result is independent
			// of arrival order — the property that makes multi-process
			// output bit-identical to in-process output.
			base := job.Reduce
			job.Reduce = func(key any, states []any) (any, error) {
				sort.Slice(states, func(i, j int) bool {
					return states[i].(float64) < states[j].(float64)
				})
				return base(key, states)
			}
			return job, nil
		},
		Seed: func(fs *dfs.DFS, at string, p map[string]string) error {
			c, err := commonParams("pagerank", p)
			if err != nil {
				return err
			}
			g := graph.Generate(graph.GenConfig{Nodes: c.nodes, Degree: graph.PageRankDegree, Seed: c.seed})
			return pagerank.WriteInputs(fs, at, g, c.staticPath(), c.statePath())
		},
	})

	Register("sssp", Entry{
		Build: func(p map[string]string) (*core.Job, error) {
			c, err := commonParams("sssp", p)
			if err != nil {
				return nil, err
			}
			// Min is order-independent already; no reduce wrapper needed.
			return sssp.IMRJob(sssp.IMRConfig{
				Name:          c.name,
				StaticPath:    c.staticPath(),
				StatePath:     c.statePath(),
				OutputPath:    OutputPath(c.name),
				MaxIter:       c.maxIter,
				DistThreshold: c.dthresh,
				NumTasks:      c.tasks,
				Checkpoint:    c.ckpt,
			}), nil
		},
		Seed: func(fs *dfs.DFS, at string, p map[string]string) error {
			c, err := commonParams("sssp", p)
			if err != nil {
				return err
			}
			source, err := int64Param(p, "source", 0)
			if err != nil {
				return err
			}
			g := graph.Generate(graph.GenConfig{
				Nodes: c.nodes, Degree: graph.SSSPDegree,
				Weighted: true, Weight: graph.SSSPWeight, Seed: c.seed,
			})
			return sssp.WriteInputs(fs, at, g, source, c.staticPath(), c.statePath())
		},
	})
}

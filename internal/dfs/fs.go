package dfs

import "imapreduce/internal/kv"

// FS is the file-system surface the engines and tasks program against.
// Two implementations exist: *DFS, the in-process namenode+datanodes,
// and *Client, which forwards every call over the transport to a
// Service wrapping a *DFS in the master process. Task code is written
// once against FS and runs unchanged in either deployment.
type FS interface {
	// Splits returns one Split per block of path for map scheduling.
	Splits(path string) ([]Split, error)
	// ReadSplit returns the records of one block, read from atNode.
	ReadSplit(s Split, atNode string) ([]kv.Pair, error)
	// ReadFile reads every record of path from atNode, in block order.
	ReadFile(path, atNode string) ([]kv.Pair, error)
	// WriteFile writes all records in one call, sizing each with ops.
	WriteFile(path, atNode string, recs []kv.Pair, ops kv.Ops) error
	// StatFile returns size information for path.
	StatFile(path string) (Stat, error)
	// Exists reports whether path is committed.
	Exists(path string) bool
	// Delete removes path (no error if absent).
	Delete(path string)
	// List returns committed paths with the given prefix, sorted.
	List(prefix string) []string
	// Rename atomically moves oldPath to newPath.
	Rename(oldPath, newPath string) error
	// Checksum returns a placement-independent CRC-32 over path.
	Checksum(path string) (uint32, error)
	// FailNode marks a datanode dead and re-replicates its blocks.
	FailNode(id string)
	// RestoreNode brings a datanode back.
	RestoreNode(id string)
}

var (
	_ FS = (*DFS)(nil)
	_ FS = (*Client)(nil)
)

package dfs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"imapreduce/internal/metrics"
)

// The namenode image is what lets a kill -9'd master come back: block
// *data* already lives in SpillDir files, and the image records the
// file table that points at them (plus the spill sequence counter, so a
// restarted namenode never reuses a spill filename). It is JSON for the
// same reason the checkpoint manifests are — a human debugging a failed
// recovery can read it.

type imageBlock struct {
	DiskPath string   `json:"disk_path"`
	Checksum uint32   `json:"checksum"`
	Count    int      `json:"count"`
	Bytes    int64    `json:"bytes"`
	Replicas []string `json:"replicas"`
}

type imageFile struct {
	Path   string       `json:"path"`
	Bytes  int64        `json:"bytes"`
	Blocks []imageBlock `json:"blocks"`
}

type image struct {
	Seq     int64       `json:"seq"`
	NextPos int         `json:"next_pos"`
	Files   []imageFile `json:"files"`
}

// saveImageLocked persists the namenode state to cfg.ImagePath via
// temp+rename, so a crash mid-save leaves the previous complete image.
// No-op without an ImagePath. Caller holds fs.mu.
func (fs *DFS) saveImageLocked() error {
	if fs.cfg.ImagePath == "" {
		return nil
	}
	img := image{Seq: fs.seq, NextPos: fs.nextPos}
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f := fs.files[p]
		imf := imageFile{Path: p, Bytes: f.bytes, Blocks: make([]imageBlock, len(f.blocks))}
		for i, b := range f.blocks {
			imf.Blocks[i] = imageBlock{
				DiskPath: b.diskPath,
				Checksum: b.checksum,
				Count:    b.count,
				Bytes:    b.bytes,
				Replicas: append([]string(nil), b.replicas...),
			}
		}
		img.Files = append(img.Files, imf)
	}
	data, err := json.MarshalIndent(img, "", " ")
	if err != nil {
		return fmt.Errorf("dfs: encode image: %w", err)
	}
	tmp := fs.cfg.ImagePath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dfs: write image: %w", err)
	}
	if err := os.Rename(tmp, fs.cfg.ImagePath); err != nil {
		return fmt.Errorf("dfs: commit image: %w", err)
	}
	return nil
}

// Open creates a DFS over the given datanodes, recovering the file
// table from cfg.ImagePath when an image exists there — the cold-start
// entry point for a restarted master. A missing image means a fresh
// cluster and is not an error; a corrupt one is.
func Open(cfg Config, nodeIDs []string, m *metrics.Set) (*DFS, error) {
	if cfg.ImagePath == "" {
		return nil, fmt.Errorf("dfs: Open requires Config.ImagePath")
	}
	fs := New(cfg, nodeIDs, m)
	data, err := os.ReadFile(cfg.ImagePath)
	if os.IsNotExist(err) {
		return fs, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dfs: read image: %w", err)
	}
	var img image
	if err := json.Unmarshal(data, &img); err != nil {
		return nil, fmt.Errorf("dfs: decode image %s: %w", cfg.ImagePath, err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.seq = img.Seq
	fs.nextPos = img.NextPos
	for _, imf := range img.Files {
		f := &file{bytes: imf.Bytes, blocks: make([]*block, len(imf.Blocks))}
		for i, ib := range imf.Blocks {
			if ib.DiskPath == "" {
				return nil, fmt.Errorf("dfs: image %s: %s block %d has no spill file", cfg.ImagePath, imf.Path, i)
			}
			if _, err := os.Stat(ib.DiskPath); err != nil {
				return nil, fmt.Errorf("dfs: image %s: %s block %d: %w", cfg.ImagePath, imf.Path, i, err)
			}
			f.blocks[i] = &block{
				diskPath: ib.DiskPath,
				checksum: ib.Checksum,
				count:    ib.Count,
				bytes:    ib.Bytes,
				replicas: append([]string(nil), ib.Replicas...),
			}
		}
		fs.files[imf.Path] = f
	}
	return fs, nil
}

// ImageInDir is the conventional layout under a master's -data
// directory: the spill files in dir/blocks and the namenode image at
// dir/namenode.json.
func ImageInDir(dir string) (Config, error) {
	blocks := filepath.Join(dir, "blocks")
	if err := os.MkdirAll(blocks, 0o755); err != nil {
		return Config{}, fmt.Errorf("dfs: create block dir: %w", err)
	}
	cfg := DefaultConfig()
	cfg.SpillDir = blocks
	cfg.ImagePath = filepath.Join(dir, "namenode.json")
	return cfg, nil
}

package dfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRenameAtomicCommit(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, Replication: 2}, nodes(3), nil)
	in := recs(50)
	if err := fs.WriteFile("/f.tmp", "a", in, testOps()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/f.tmp", "/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f.tmp") || !fs.Exists("/f") {
		t.Fatalf("rename left tmp=%v final=%v", fs.Exists("/f.tmp"), fs.Exists("/f"))
	}
	out, err := fs.ReadFile("/f", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[0] != in[0] || out[49] != in[49] {
		t.Fatalf("renamed file content mismatch: %d records", len(out))
	}

	// Renaming over an existing target replaces it whole.
	if err := fs.WriteFile("/g.tmp", "a", recs(10), testOps()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/g.tmp", "/f"); err != nil {
		t.Fatal(err)
	}
	out, err = fs.ReadFile("/f", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("replaced file has %d records, want 10", len(out))
	}

	if err := fs.Rename("/missing", "/x"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
}

func TestChecksumStableAcrossReReplication(t *testing.T) {
	fs := New(Config{BlockSize: 256, Replication: 2}, nodes(3), nil)
	if err := fs.WriteFile("/f", "a", recs(100), testOps()); err != nil {
		t.Fatal(err)
	}
	crc1, err := fs.Checksum("/f")
	if err != nil {
		t.Fatal(err)
	}
	fs.FailNode("a")
	crc2, err := fs.Checksum("/f")
	if err != nil {
		t.Fatal(err)
	}
	if crc1 != crc2 {
		t.Fatalf("checksum changed across re-replication: %08x vs %08x", crc1, crc2)
	}
	if err := fs.WriteFile("/f", "b", recs(99), testOps()); err != nil {
		t.Fatal(err)
	}
	crc3, err := fs.Checksum("/f")
	if err != nil {
		t.Fatal(err)
	}
	if crc3 == crc1 {
		t.Fatal("checksum did not change for different content")
	}
}

// TestReReplicationRacesReadersAndWriters hammers node failure and
// recovery while concurrent readers (ReadFile and split-by-split) and
// writers — including writers pinned at the node being failed — keep
// working. With replication 2 and one node down at a time, every
// operation must succeed. Run under -race.
func TestReReplicationRacesReadersAndWriters(t *testing.T) {
	ids := nodes(4)
	fs := New(Config{BlockSize: 128, Replication: 2}, ids, nil)
	const files = 6
	for i := 0; i < files; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/base-%d", i), ids[i%len(ids)], recs(40), testOps()); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	var wg sync.WaitGroup

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/base-%d", i%files)
				if _, err := fs.ReadFile(path, ids[(r+i)%len(ids)]); err != nil {
					report(fmt.Errorf("ReadFile %s: %w", path, err))
					return
				}
				splits, err := fs.Splits(path)
				if err != nil {
					report(err)
					return
				}
				for _, s := range splits {
					if _, err := fs.ReadSplit(s, ids[(r+i)%len(ids)]); err != nil {
						report(fmt.Errorf("ReadSplit %s: %w", path, err))
						return
					}
				}
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Pin half the writes at node "a" — the one being failed.
				at := "a"
				if i%2 == 1 {
					at = ids[(w+i)%len(ids)]
				}
				path := fmt.Sprintf("/scratch-%d-%d", w, i%4)
				if err := fs.WriteFile(path, at, recs(20), testOps()); err != nil {
					report(fmt.Errorf("WriteFile %s at %s: %w", path, at, err))
					return
				}
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		fs.FailNode("a")
		time.Sleep(2 * time.Millisecond)
		fs.RestoreNode("a")
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestWriteHookFailureAbortsCommit(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, Replication: 2}, nodes(3), nil)
	injected := errors.New("injected")
	fs.SetWriteHook(func(path string) error {
		if path == "/guarded" {
			return injected
		}
		return nil
	})
	err := fs.WriteFile("/guarded", "a", recs(5), testOps())
	if !errors.Is(err, injected) {
		t.Fatalf("WriteFile error = %v, want injected failure", err)
	}
	if fs.Exists("/guarded") {
		t.Fatal("failed write left a committed file")
	}
	if err := fs.WriteFile("/free", "a", recs(5), testOps()); err != nil {
		t.Fatal(err)
	}
}

package dfs

import (
	"testing"
	"time"

	"imapreduce/internal/kv"
	"imapreduce/internal/transport"
)

func testPairs(n int) []kv.Pair {
	out := make([]kv.Pair, n)
	for i := range out {
		out[i] = kv.Pair{Key: int64(i), Value: float64(i) * 1.5}
	}
	return out
}

// TestRemoteFSRoundTrip drives every FS operation through the RPC
// client against a served DFS and checks the results match direct
// access.
func TestRemoteFSRoundTrip(t *testing.T) {
	fs := New(Config{BlockSize: 256, Replication: 2}, []string{"w0", "w1", "w2"}, nil)
	nw := transport.NewChanNetwork()
	defer nw.Close()
	sep, err := nw.Endpoint("dfs/nn")
	if err != nil {
		t.Fatal(err)
	}
	svc := Serve(fs, sep)
	cep, err := nw.Endpoint("dfs/c/w0")
	if err != nil {
		t.Fatal(err)
	}
	var cfs FS = NewClient(cep, "dfs/nn", ClientOptions{CallTimeout: 5 * time.Second})

	recs := testPairs(40)
	if err := cfs.WriteFile("/t/data", "w1", recs, testOps()); err != nil {
		t.Fatalf("remote WriteFile: %v", err)
	}
	if !cfs.Exists("/t/data") {
		t.Fatal("remote Exists = false after write")
	}
	st, err := cfs.StatFile("/t/data")
	if err != nil || st.Records != 40 {
		t.Fatalf("remote StatFile = %+v, %v", st, err)
	}
	splits, err := cfs.Splits("/t/data")
	if err != nil || len(splits) < 2 {
		t.Fatalf("remote Splits = %d blocks, %v (want multiple)", len(splits), err)
	}
	got, err := cfs.ReadSplit(splits[0], "w0")
	if err != nil || len(got) == 0 {
		t.Fatalf("remote ReadSplit: %d recs, %v", len(got), err)
	}
	all, err := cfs.ReadFile("/t/data", "w0")
	if err != nil || len(all) != 40 {
		t.Fatalf("remote ReadFile: %d recs, %v", len(all), err)
	}
	for i, p := range all {
		if p.Key.(int64) != int64(i) || p.Value.(float64) != float64(i)*1.5 {
			t.Fatalf("rec %d corrupted in transit: %+v", i, p)
		}
	}
	sumRemote, err := cfs.Checksum("/t/data")
	if err != nil {
		t.Fatal(err)
	}
	sumLocal, err := fs.Checksum("/t/data")
	if err != nil || sumRemote != sumLocal {
		t.Fatalf("checksum remote %08x != local %08x (%v)", sumRemote, sumLocal, err)
	}
	if err := cfs.Rename("/t/data", "/t/final"); err != nil {
		t.Fatalf("remote Rename: %v", err)
	}
	if paths := cfs.List("/t/"); len(paths) != 1 || paths[0] != "/t/final" {
		t.Fatalf("remote List = %v", paths)
	}
	cfs.FailNode("w1")
	if sp, err := cfs.Splits("/t/final"); err != nil {
		t.Fatal(err)
	} else {
		for _, s := range sp {
			for _, loc := range s.Locations {
				if loc == "w1" {
					t.Fatal("failed node still serving replicas")
				}
			}
		}
	}
	cfs.RestoreNode("w1")
	cfs.Delete("/t/final")
	if cfs.Exists("/t/final") {
		t.Fatal("remote Delete did not remove file")
	}

	sep.Close()
	svc.Wait()
	cep.Close()
	if _, err := cfs.(*Client).StatFile("/gone"); err == nil {
		t.Fatal("call after close succeeded")
	}
}

// TestServiceDedupReplays proves a duplicated non-idempotent request
// (at-least-once delivery) executes once and replays its response.
func TestServiceDedupReplays(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, Replication: 1}, []string{"w0"}, nil)
	if err := fs.WriteFile("/a", "w0", testPairs(3), testOps()); err != nil {
		t.Fatal(err)
	}
	nw := transport.NewChanNetwork()
	defer nw.Close()
	sep, _ := nw.Endpoint("dfs/nn")
	Serve(fs, sep)
	cep, _ := nw.Endpoint("c")

	// Hand-roll the duplicate: the same rename request frame twice.
	req := &rpcReq{ID: 7, Op: opRename, Path: "/a", Path2: "/b"}
	msg := transport.Message{Kind: KindDFSReq, Payload: req, Size: 32}
	if err := cep.Send("dfs/nn", msg); err != nil {
		t.Fatal(err)
	}
	if err := cep.Send("dfs/nn", msg); err != nil {
		t.Fatal(err)
	}
	var resps []*rpcResp
	timeout := time.After(2 * time.Second)
	for len(resps) < 2 {
		select {
		case m := <-cep.Recv():
			if r, ok := m.Payload.(*rpcResp); ok {
				resps = append(resps, r)
			}
		case <-timeout:
			t.Fatalf("got %d responses, want 2", len(resps))
		}
	}
	for i, r := range resps {
		if r.Err != "" {
			t.Fatalf("response %d errored on duplicate rename: %s", i, r.Err)
		}
	}
	if !fs.Exists("/b") || fs.Exists("/a") {
		t.Fatal("rename not applied exactly once")
	}
}

// TestImageRecovery writes through one DFS, "kills" it, and opens a
// fresh one over the same data directory: the files, contents and
// checksums must all survive, and the spill sequence must not collide.
func TestImageRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg, err := ImageInDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BlockSize = 256
	nodes := []string{"w0", "w1"}

	fs1, err := Open(cfg, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := testPairs(50)
	if err := fs1.WriteFile("/job/state", "w0", recs, testOps()); err != nil {
		t.Fatal(err)
	}
	if err := fs1.WriteFile("/job/tmp", "w1", testPairs(5), testOps()); err != nil {
		t.Fatal(err)
	}
	if err := fs1.Rename("/job/tmp", "/job/committed"); err != nil {
		t.Fatal(err)
	}
	sum1, err := fs1.Checksum("/job/state")
	if err != nil {
		t.Fatal(err)
	}
	// No Close: the process is presumed kill -9'd here.

	fs2, err := Open(cfg, nodes, nil)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if got := fs2.List("/job/"); len(got) != 2 || got[0] != "/job/committed" || got[1] != "/job/state" {
		t.Fatalf("recovered files = %v", got)
	}
	back, err := fs2.ReadFile("/job/state", "w0")
	if err != nil || len(back) != 50 {
		t.Fatalf("recovered read: %d recs, %v", len(back), err)
	}
	for i, p := range back {
		if p.Key.(int64) != int64(i) {
			t.Fatalf("recovered record %d wrong: %+v", i, p)
		}
	}
	sum2, err := fs2.Checksum("/job/state")
	if err != nil || sum2 != sum1 {
		t.Fatalf("checksum changed across recovery: %08x -> %08x (%v)", sum1, sum2, err)
	}
	// New writes must not clobber recovered spill files.
	if err := fs2.WriteFile("/job/next", "w0", testPairs(8), testOps()); err != nil {
		t.Fatal(err)
	}
	if again, err := fs2.ReadFile("/job/state", "w0"); err != nil || len(again) != 50 {
		t.Fatalf("old file damaged by new writes: %d recs, %v", len(again), err)
	}
}

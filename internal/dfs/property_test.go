package dfs

import (
	"testing"
	"testing/quick"
)

// TestPropertyRoundtripAnyShape: any record count, block size, and
// replication factor round-trips exactly.
func TestPropertyRoundtripAnyShape(t *testing.T) {
	f := func(nRaw uint16, blockRaw uint8, replRaw uint8) bool {
		n := int(nRaw%500) + 1
		blockSize := int64(blockRaw%200) + 16
		repl := int(replRaw%4) + 1
		fs := New(Config{BlockSize: blockSize, Replication: repl}, nodes(3), nil)
		in := recs(n)
		if err := fs.WriteFile("/p", "a", in, testOps()); err != nil {
			return false
		}
		out, err := fs.ReadFile("/p", "b")
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		// Stat agrees with the data.
		st, err := fs.StatFile("/p")
		return err == nil && st.Records == n && st.Blocks >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySplitsPartitionRecords: block splits always cover every
// record exactly once, in order.
func TestPropertySplitsPartitionRecords(t *testing.T) {
	f := func(nRaw uint16, blockRaw uint8) bool {
		n := int(nRaw%300) + 1
		blockSize := int64(blockRaw%100) + 16
		fs := New(Config{BlockSize: blockSize, Replication: 2}, nodes(2), nil)
		if err := fs.WriteFile("/s", "a", recs(n), testOps()); err != nil {
			return false
		}
		splits, err := fs.Splits("/s")
		if err != nil {
			return false
		}
		var keys []int64
		for _, s := range splits {
			rs, err := fs.ReadSplit(s, "a")
			if err != nil || len(rs) != s.Records {
				return false
			}
			for _, r := range rs {
				keys = append(keys, r.Key.(int64))
			}
		}
		if len(keys) != n {
			return false
		}
		for i, k := range keys {
			if k != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAccess exercises parallel writers and readers on
// disjoint paths plus readers on a shared path.
func TestConcurrentAccess(t *testing.T) {
	fs := New(Config{BlockSize: 128, Replication: 2}, nodes(4), nil)
	if err := fs.WriteFile("/shared", "a", recs(50), testOps()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 16)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			path := "/w" + string(rune('0'+i))
			if err := fs.WriteFile(path, "b", recs(40), testOps()); err != nil {
				done <- err
				return
			}
			out, err := fs.ReadFile(path, "c")
			if err == nil && len(out) != 40 {
				err = errWrongLen
			}
			done <- err
		}()
		go func() {
			out, err := fs.ReadFile("/shared", "d")
			if err == nil && len(out) != 50 {
				err = errWrongLen
			}
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errWrongLen = kvError("wrong record count")

type kvError string

func (e kvError) Error() string { return string(e) }

// Block service over the wire: a Service wraps the master's *DFS and
// answers file-system RPCs from worker processes, whose tasks hold a
// *Client implementing the same FS interface. Calls are
// request/response over the framework's own transport (one persistent
// connection each way), matched by request ID.
//
// Delivery is at-least-once in both directions — the TCP backend
// retransmits over a fresh stream after a connection death, and the
// client re-sends a request whose response never arrived — so the
// service deduplicates: each (client, request ID) is executed once and
// its response cached for replay. That keeps non-idempotent operations
// (Rename, the commit step of every checkpoint) safe under retries.
package dfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"imapreduce/internal/kv"
	"imapreduce/internal/transport"
)

// Message kinds on the block-service endpoint.
const (
	KindDFSReq  = "dfs.req"
	KindDFSResp = "dfs.resp"
)

// Operation names.
const (
	opSplits    = "splits"
	opReadSplit = "readsplit"
	opReadFile  = "readfile"
	opWrite     = "write"
	opStat      = "stat"
	opExists    = "exists"
	opDelete    = "delete"
	opList      = "list"
	opRename    = "rename"
	opChecksum  = "checksum"
	opFailNode  = "failnode"
	opRestore   = "restorenode"
)

type rpcReq struct {
	ID    int64
	Op    string
	Path  string // also the List prefix and the Rename source
	Path2 string // Rename destination
	Node  string // atNode / the failed or restored datanode
	Split Split
	Recs  []kv.Pair
	Sizes []int
}

type rpcResp struct {
	ID     int64
	Err    string
	Recs   []kv.Pair
	Splits []Split
	St     Stat
	Sum    uint32
	OK     bool
	Paths  []string
}

func init() {
	kv.RegisterWireType(&rpcReq{})
	kv.RegisterWireType(&rpcResp{})
}

// respCacheSize bounds the per-client replay cache. 256 responses is
// far beyond any plausible in-flight window (clients wait synchronously
// per call), so an evicted entry can no longer be asked for.
const respCacheSize = 256

// Service serves one *DFS on a transport endpoint.
type Service struct {
	fs   *DFS
	ep   transport.Endpoint
	done chan struct{}

	mu   sync.Mutex
	seen map[string]*clientCache
}

type clientCache struct {
	order []int64
	resps map[int64]*rpcResp
}

// Serve starts answering requests arriving on ep against fs. Requests
// are handled sequentially — FIFO per client matters more here than
// throughput, and it makes duplicate suppression exact.
func Serve(fs *DFS, ep transport.Endpoint) *Service {
	s := &Service{fs: fs, ep: ep, done: make(chan struct{}), seen: make(map[string]*clientCache)}
	go s.loop()
	return s
}

// Wait blocks until the serve loop has exited (close the endpoint to
// stop it).
func (s *Service) Wait() { <-s.done }

func (s *Service) loop() {
	defer close(s.done)
	for msg := range s.ep.Recv() {
		req, ok := msg.Payload.(*rpcReq)
		if !ok {
			continue // not ours; tolerate stray traffic
		}
		resp := s.respond(msg.From, req)
		// A lost response is recovered by the client's re-send hitting
		// the replay cache; nothing to do about the error here.
		_ = s.ep.Send(msg.From, transport.Message{Kind: KindDFSResp, Payload: resp, Size: respSize(resp)})
	}
}

// respond executes req once per (client, ID), replaying the cached
// response for duplicates.
func (s *Service) respond(from string, req *rpcReq) *rpcResp {
	s.mu.Lock()
	cc := s.seen[from]
	if cc == nil {
		cc = &clientCache{resps: make(map[int64]*rpcResp)}
		s.seen[from] = cc
	}
	if r, dup := cc.resps[req.ID]; dup {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	resp := s.handle(req)

	s.mu.Lock()
	cc.resps[req.ID] = resp
	cc.order = append(cc.order, req.ID)
	if len(cc.order) > respCacheSize {
		delete(cc.resps, cc.order[0])
		cc.order = cc.order[1:]
	}
	s.mu.Unlock()
	return resp
}

func (s *Service) handle(req *rpcReq) *rpcResp {
	resp := &rpcResp{ID: req.ID}
	fail := func(err error) *rpcResp {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case opSplits:
		sp, err := s.fs.Splits(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Splits = sp
	case opReadSplit:
		recs, err := s.fs.ReadSplit(req.Split, req.Node)
		if err != nil {
			return fail(err)
		}
		resp.Recs = recs
	case opReadFile:
		recs, err := s.fs.ReadFile(req.Path, req.Node)
		if err != nil {
			return fail(err)
		}
		resp.Recs = recs
	case opWrite:
		if err := s.fs.WriteFileSized(req.Path, req.Node, req.Recs, req.Sizes); err != nil {
			return fail(err)
		}
	case opStat:
		st, err := s.fs.StatFile(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.St = st
	case opExists:
		resp.OK = s.fs.Exists(req.Path)
	case opDelete:
		s.fs.Delete(req.Path)
	case opList:
		resp.Paths = s.fs.List(req.Path)
	case opRename:
		if err := s.fs.Rename(req.Path, req.Path2); err != nil {
			return fail(err)
		}
	case opChecksum:
		sum, err := s.fs.Checksum(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Sum = sum
	case opFailNode:
		s.fs.FailNode(req.Node)
	case opRestore:
		s.fs.RestoreNode(req.Node)
	default:
		return fail(fmt.Errorf("dfs: unknown op %q", req.Op))
	}
	return resp
}

func respSize(r *rpcResp) int64 {
	n := int64(64)
	for _, p := range r.Recs {
		n += int64(kv.DefaultSize(p.Key) + kv.DefaultSize(p.Value))
	}
	n += int64(24 * len(r.Splits))
	for _, p := range r.Paths {
		n += int64(len(p))
	}
	return n
}

func reqSize(r *rpcReq) int64 {
	n := int64(64 + len(r.Path) + len(r.Path2) + len(r.Node))
	for i, p := range r.Recs {
		if i < len(r.Sizes) {
			n += int64(r.Sizes[i])
		} else {
			n += int64(kv.DefaultSize(p.Key) + kv.DefaultSize(p.Value))
		}
	}
	return n
}

// ErrClientClosed is returned by calls in flight when the client's
// endpoint closes underneath them (worker teardown).
var ErrClientClosed = errors.New("dfs: client closed")

// ClientOptions tunes the remote FS client.
type ClientOptions struct {
	// CallTimeout bounds one logical call including all re-sends
	// (default 15s).
	CallTimeout time.Duration
	// SendRetries and SendBackoff shape the transport-level retry of
	// each request frame (defaults 4 and 5ms; see
	// transport.ReliableSend).
	SendRetries int
	SendBackoff time.Duration
}

// Client is the worker-side FS: every call is one RPC to the master's
// Service. Safe for concurrent use by all tasks of a worker.
type Client struct {
	ep     transport.Endpoint
	server string
	opts   ClientOptions

	mu      sync.Mutex
	nextID  int64
	waiters map[int64]chan *rpcResp
	closed  chan struct{}
}

// NewClient returns a client whose calls go from ep to the Service
// listening on logical address server. Closing ep stops the client;
// in-flight and later calls fail with ErrClientClosed.
func NewClient(ep transport.Endpoint, server string, opts ClientOptions) *Client {
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 15 * time.Second
	}
	if opts.SendRetries <= 0 {
		opts.SendRetries = 4
	}
	if opts.SendBackoff <= 0 {
		opts.SendBackoff = 5 * time.Millisecond
	}
	c := &Client{ep: ep, server: server, opts: opts, waiters: make(map[int64]chan *rpcResp), closed: make(chan struct{})}
	go c.pump()
	return c
}

func (c *Client) pump() {
	for msg := range c.ep.Recv() {
		resp, ok := msg.Payload.(*rpcResp)
		if !ok {
			continue
		}
		c.mu.Lock()
		ch := c.waiters[resp.ID]
		delete(c.waiters, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; never blocks
		}
	}
	close(c.closed)
}

func (c *Client) call(req *rpcReq) (*rpcResp, error) {
	c.mu.Lock()
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *rpcResp, 1)
	c.waiters[req.ID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, req.ID)
		c.mu.Unlock()
	}()

	deadline := time.NewTimer(c.opts.CallTimeout)
	defer deadline.Stop()
	msg := transport.Message{Kind: KindDFSReq, Payload: req, Size: reqSize(req)}
	var lastErr error
	// Re-send the request until the deadline: a response lost to a
	// connection death is recovered by the service's replay cache.
	for attempt := 0; ; attempt++ {
		if _, err := transport.ReliableSend(c.ep, c.server, msg, c.opts.SendRetries, c.opts.SendBackoff); err != nil {
			lastErr = err
		}
		wait := time.NewTimer(c.opts.CallTimeout / 3)
		select {
		case resp := <-ch:
			wait.Stop()
			if resp.Err != "" {
				return nil, errors.New(resp.Err)
			}
			return resp, nil
		case <-wait.C:
			// response overdue; re-send below
		case <-deadline.C:
			wait.Stop()
			if lastErr != nil {
				return nil, fmt.Errorf("dfs: %s %s: no response within %v (last send error: %v)", req.Op, req.Path, c.opts.CallTimeout, lastErr)
			}
			return nil, fmt.Errorf("dfs: %s %s: no response within %v", req.Op, req.Path, c.opts.CallTimeout)
		case <-c.closed:
			wait.Stop()
			return nil, ErrClientClosed
		}
	}
}

// Splits implements FS.
func (c *Client) Splits(path string) ([]Split, error) {
	resp, err := c.call(&rpcReq{Op: opSplits, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Splits, nil
}

// ReadSplit implements FS.
func (c *Client) ReadSplit(s Split, atNode string) ([]kv.Pair, error) {
	resp, err := c.call(&rpcReq{Op: opReadSplit, Split: s, Node: atNode})
	if err != nil {
		return nil, err
	}
	return resp.Recs, nil
}

// ReadFile implements FS.
func (c *Client) ReadFile(path, atNode string) ([]kv.Pair, error) {
	resp, err := c.call(&rpcReq{Op: opReadFile, Path: path, Node: atNode})
	if err != nil {
		return nil, err
	}
	return resp.Recs, nil
}

// WriteFile implements FS. Sizes are computed locally — sizing
// functions cannot cross the wire.
func (c *Client) WriteFile(path, atNode string, recs []kv.Pair, ops kv.Ops) error {
	sizes := make([]int, len(recs))
	for i, p := range recs {
		sizes[i] = ops.PairSize(p)
	}
	_, err := c.call(&rpcReq{Op: opWrite, Path: path, Node: atNode, Recs: recs, Sizes: sizes})
	return err
}

// StatFile implements FS.
func (c *Client) StatFile(path string) (Stat, error) {
	resp, err := c.call(&rpcReq{Op: opStat, Path: path})
	if err != nil {
		return Stat{}, err
	}
	return resp.St, nil
}

// Exists implements FS. A failed call reports false — the callers all
// treat Exists as a hint and re-verify through the erroring paths.
func (c *Client) Exists(path string) bool {
	resp, err := c.call(&rpcReq{Op: opExists, Path: path})
	return err == nil && resp.OK
}

// Delete implements FS. Best-effort, like the in-process Delete, which
// reports no errors either: a missed delete is re-collected by the next
// checkpoint GC pass.
func (c *Client) Delete(path string) {
	_, _ = c.call(&rpcReq{Op: opDelete, Path: path})
}

// List implements FS. A failed call lists nothing.
func (c *Client) List(prefix string) []string {
	resp, err := c.call(&rpcReq{Op: opList, Path: prefix})
	if err != nil {
		return nil
	}
	return resp.Paths
}

// Rename implements FS.
func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.call(&rpcReq{Op: opRename, Path: oldPath, Path2: newPath})
	return err
}

// Checksum implements FS.
func (c *Client) Checksum(path string) (uint32, error) {
	resp, err := c.call(&rpcReq{Op: opChecksum, Path: path})
	if err != nil {
		return 0, err
	}
	return resp.Sum, nil
}

// FailNode implements FS.
func (c *Client) FailNode(id string) {
	_, _ = c.call(&rpcReq{Op: opFailNode, Node: id})
}

// RestoreNode implements FS.
func (c *Client) RestoreNode(id string) {
	_, _ = c.call(&rpcReq{Op: opRestore, Node: id})
}

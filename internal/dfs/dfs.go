// Package dfs implements the distributed file system both engines store
// input, output and checkpoints in. It mirrors HDFS's architecture at
// the level the paper depends on: files are split into fixed-size blocks,
// each block is replicated on several datanodes, readers prefer a local
// replica, and the namenode tracks placement so the job tracker can
// schedule map tasks near their data.
//
// By default records are stored in memory (a run is one process); sizes
// are tracked from caller-provided estimates so that block splitting,
// replication traffic and locality accounting behave like a
// byte-addressed file system without serializing every record. Setting
// Config.SpillDir switches committed blocks to gob-encoded files on
// local disk — the file-backed storage the paper contrasts with
// Twister's memory-resident design (§6) — at the cost of a
// serialization round trip per block access.
package dfs

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

// Config sets the HDFS-like parameters. The paper's experiments use a
// 64 MB block size and (implicitly) 3-way replication.
type Config struct {
	BlockSize   int64 // bytes per block before a new block is cut
	Replication int   // replicas per block (capped at live datanodes)
	// SpillDir, when non-empty, stores committed blocks as gob files
	// under this directory instead of keeping records in memory. All
	// key and value types must be gob-registered
	// (kv.RegisterWireType).
	SpillDir string
	// ImagePath, when non-empty, persists the namenode state (the file
	// table, block metadata and spill sequence) to this path on every
	// mutation, temp+rename atomically — the durable image a restarted
	// master recovers with Open. Requires SpillDir: block *data* lives
	// in the spill files the image points at.
	ImagePath string
}

// DefaultConfig matches the paper's Hadoop configuration, scaled to the
// in-memory substrate.
func DefaultConfig() Config {
	return Config{BlockSize: 64 << 20, Replication: 3}
}

type block struct {
	recs     []kv.Pair // nil when spilled to disk
	diskPath string    // non-empty when spilled
	checksum uint32    // CRC-32 of the spilled encoding
	count    int
	bytes    int64
	replicas []string
}

// load returns the block's records, decoding from disk when spilled and
// verifying the stored checksum first, the way HDFS datanodes verify
// block CRCs on read.
func (b *block) load() ([]kv.Pair, error) {
	if b.diskPath == "" {
		return b.recs, nil
	}
	data, err := os.ReadFile(b.diskPath)
	if err != nil {
		return nil, fmt.Errorf("dfs: read spilled block: %w", err)
	}
	if sum := crc32.ChecksumIEEE(data); sum != b.checksum {
		return nil, fmt.Errorf("dfs: block %s corrupted (crc %08x, want %08x)", b.diskPath, sum, b.checksum)
	}
	var recs []kv.Pair
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return nil, fmt.Errorf("dfs: decode spilled block: %w", err)
	}
	return recs, nil
}

// spill writes the block to dir (with its checksum recorded at the
// namenode) and releases the in-memory records.
func (b *block) spill(dir string, seq int64) error {
	path := filepath.Join(dir, fmt.Sprintf("blk-%08d.gob", seq))
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b.recs); err != nil {
		return fmt.Errorf("dfs: encode block: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("dfs: spill block: %w", err)
	}
	b.checksum = crc32.ChecksumIEEE(buf.Bytes())
	b.diskPath = path
	b.recs = nil
	return nil
}

type file struct {
	blocks []*block
	bytes  int64
}

// DFS is the namenode plus all datanodes of one simulated cluster.
type DFS struct {
	mu      sync.Mutex
	cfg     Config
	nodes   []string
	alive   map[string]bool
	files   map[string]*file
	rng     *rand.Rand
	nextPos int   // round-robin start for replica placement
	seq     int64 // spill file counter
	m       *metrics.Set
	// writeHook, when set, runs at the start of every file commit
	// (Writer.Close) with the path being committed; a non-nil return
	// fails the commit. Fault injection for robustness tests: a
	// transient datanode write error looks exactly like this.
	writeHook func(path string) error
}

// SetWriteHook installs (or, with nil, removes) a commit-time fault
// hook: it runs at the start of every Writer.Close with the committing
// path, and a returned error fails that commit. The hook may also block
// to widen the race window between a write and a concurrent FailNode.
func (fs *DFS) SetWriteHook(h func(path string) error) {
	fs.mu.Lock()
	fs.writeHook = h
	fs.mu.Unlock()
}

// New creates a DFS over the given datanodes. m may be nil.
func New(cfg Config, nodeIDs []string, m *metrics.Set) *DFS {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultConfig().BlockSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.ImagePath != "" && cfg.SpillDir == "" {
		panic("dfs: ImagePath requires SpillDir (the image only records block metadata)")
	}
	alive := make(map[string]bool, len(nodeIDs))
	for _, id := range nodeIDs {
		alive[id] = true
	}
	return &DFS{
		cfg:   cfg,
		nodes: append([]string(nil), nodeIDs...),
		alive: alive,
		files: make(map[string]*file),
		rng:   rand.New(rand.NewSource(42)),
		m:     m,
	}
}

// Writer appends records to a file under construction. Close commits it.
type Writer struct {
	fs     *DFS
	path   string
	atNode string
	cur    *block
	blocks []*block
	bytes  int64
	closed bool
}

// Create starts writing path from atNode (the first replica of every
// block is pinned there when possible, like an HDFS client write).
// An existing file at path is replaced on Close.
func (fs *DFS) Create(path, atNode string) *Writer {
	return &Writer{fs: fs, path: path, atNode: atNode, cur: &block{}}
}

// Append adds one record of the given estimated size.
func (w *Writer) Append(p kv.Pair, size int) {
	if w.closed {
		panic("dfs: Append after Close")
	}
	if w.cur.bytes > 0 && w.cur.bytes+int64(size) > w.fs.cfg.BlockSize {
		w.blocks = append(w.blocks, w.cur)
		w.cur = &block{}
	}
	w.cur.recs = append(w.cur.recs, p)
	w.cur.bytes += int64(size)
	w.bytes += int64(size)
}

// Close places replicas for every block and commits the file to the
// namenode. It reports the replication write traffic to metrics.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.cur.recs) > 0 || len(w.blocks) == 0 {
		w.blocks = append(w.blocks, w.cur)
	}
	w.fs.mu.Lock()
	hook := w.fs.writeHook
	w.fs.mu.Unlock()
	if hook != nil {
		// Run outside the namenode lock: the hook may block (to widen a
		// race window) or call back into the DFS (FailNode).
		if err := hook(w.path); err != nil {
			return fmt.Errorf("dfs: create %s: %w", w.path, err)
		}
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	// Replacing a file releases its spilled blocks.
	if old, ok := w.fs.files[w.path]; ok {
		for _, b := range old.blocks {
			if b.diskPath != "" {
				os.Remove(b.diskPath)
			}
		}
	}
	for _, b := range w.blocks {
		reps, err := w.fs.placeLocked(w.atNode)
		if err != nil {
			return fmt.Errorf("dfs: create %s: %w", w.path, err)
		}
		b.replicas = reps
		b.count = len(b.recs)
		w.fs.m.Add(metrics.DFSWriteBytes, b.bytes*int64(len(reps)))
		if w.fs.cfg.SpillDir != "" {
			w.fs.seq++
			if err := b.spill(w.fs.cfg.SpillDir, w.fs.seq); err != nil {
				return err
			}
		}
	}
	w.fs.files[w.path] = &file{blocks: w.blocks, bytes: w.bytes}
	return w.fs.saveImageLocked()
}

// placeLocked picks replica nodes: first the writing node if alive, the
// rest round-robin over live nodes, HDFS-style.
func (fs *DFS) placeLocked(atNode string) ([]string, error) {
	live := fs.liveLocked()
	if len(live) == 0 {
		return nil, fmt.Errorf("no live datanodes")
	}
	want := fs.cfg.Replication
	if want > len(live) {
		want = len(live)
	}
	reps := make([]string, 0, want)
	if atNode != "" && fs.alive[atNode] {
		reps = append(reps, atNode)
	}
	for i := 0; len(reps) < want && i < len(live); i++ {
		cand := live[(fs.nextPos+i)%len(live)]
		dup := false
		for _, r := range reps {
			if r == cand {
				dup = true
				break
			}
		}
		if !dup {
			reps = append(reps, cand)
		}
	}
	fs.nextPos++
	return reps, nil
}

func (fs *DFS) liveLocked() []string {
	live := make([]string, 0, len(fs.nodes))
	for _, id := range fs.nodes {
		if fs.alive[id] {
			live = append(live, id)
		}
	}
	return live
}

// WriteFile is the convenience path: write all records in one call,
// sizing each with ops.
func (fs *DFS) WriteFile(path, atNode string, recs []kv.Pair, ops kv.Ops) error {
	w := fs.Create(path, atNode)
	for _, p := range recs {
		w.Append(p, ops.PairSize(p))
	}
	return w.Close()
}

// WriteFileSized is WriteFile with pre-computed per-record sizes — the
// form a remote client ships, since sizing functions cannot cross the
// wire. len(sizes) must equal len(recs).
func (fs *DFS) WriteFileSized(path, atNode string, recs []kv.Pair, sizes []int) error {
	if len(sizes) != len(recs) {
		return fmt.Errorf("dfs: WriteFileSized %s: %d records but %d sizes", path, len(recs), len(sizes))
	}
	w := fs.Create(path, atNode)
	for i, p := range recs {
		w.Append(p, sizes[i])
	}
	return w.Close()
}

// Split describes one block of one file for map-task scheduling.
type Split struct {
	Path      string
	Block     int
	Bytes     int64
	Records   int
	Locations []string // live replica holders
}

// Splits returns one Split per block of path, Hadoop's
// one-map-task-per-block input format.
func (fs *DFS) Splits(path string) ([]Split, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	splits := make([]Split, len(f.blocks))
	for i, b := range f.blocks {
		locs := make([]string, 0, len(b.replicas))
		for _, r := range b.replicas {
			if fs.alive[r] {
				locs = append(locs, r)
			}
		}
		splits[i] = Split{Path: path, Block: i, Bytes: b.bytes, Records: b.count, Locations: locs}
	}
	return splits, nil
}

// ReadSplit returns the records of one block, read from atNode. It
// accounts the read bytes and whether the read crossed the network.
func (fs *DFS) ReadSplit(s Split, atNode string) ([]kv.Pair, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[s.Path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", s.Path)
	}
	if s.Block < 0 || s.Block >= len(f.blocks) {
		return nil, fmt.Errorf("dfs: %s has no block %d", s.Path, s.Block)
	}
	b := f.blocks[s.Block]
	local := false
	anyAlive := false
	for _, r := range b.replicas {
		if fs.alive[r] {
			anyAlive = true
			if r == atNode {
				local = true
			}
		}
	}
	if !anyAlive {
		return nil, fmt.Errorf("dfs: all replicas of %s block %d are down", s.Path, s.Block)
	}
	fs.m.Add(metrics.DFSReadBytes, b.bytes)
	if !local {
		fs.m.Add(metrics.DFSReadRemote, b.bytes)
	}
	return b.load()
}

// ReadFile reads every record of path from atNode, in block order.
func (fs *DFS) ReadFile(path, atNode string) ([]kv.Pair, error) {
	splits, err := fs.Splits(path)
	if err != nil {
		return nil, err
	}
	var out []kv.Pair
	for _, s := range splits {
		recs, err := fs.ReadSplit(s, atNode)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// Stat describes a committed file.
type Stat struct {
	Bytes   int64
	Blocks  int
	Records int
}

// StatFile returns size information for path.
func (fs *DFS) StatFile(path string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return Stat{}, fmt.Errorf("dfs: no such file %q", path)
	}
	st := Stat{Bytes: f.bytes, Blocks: len(f.blocks)}
	for _, b := range f.blocks {
		st.Records += b.count
	}
	return st, nil
}

// Exists reports whether path is committed.
func (fs *DFS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Delete removes path (no error if absent), including any spilled block
// files.
func (fs *DFS) Delete(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[path]; ok {
		for _, b := range f.blocks {
			if b.diskPath != "" {
				os.Remove(b.diskPath)
			}
		}
	}
	delete(fs.files, path)
	// Deletion durability is best-effort: a lost image update re-surfaces
	// the file after a restart, which every caller tolerates (deletes are
	// cleanup, and Delete itself reports no errors).
	_ = fs.saveImageLocked()
}

// List returns committed paths with the given prefix, sorted.
func (fs *DFS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// FailNode marks a datanode dead: its replicas stop serving reads and it
// receives no new replicas until RestoreNode. As in HDFS, the namenode
// then re-replicates every under-replicated block onto live nodes (the
// copy traffic is charged to the write counters).
func (fs *DFS) FailNode(id string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.alive[id] = false
	fs.reReplicateLocked()
	_ = fs.saveImageLocked() // replica moves are recoverable; best-effort
}

// reReplicateLocked restores each block's live replica count to the
// configured factor where enough live nodes exist.
func (fs *DFS) reReplicateLocked() {
	live := fs.liveLocked()
	if len(live) == 0 {
		return
	}
	want := fs.cfg.Replication
	if want > len(live) {
		want = len(live)
	}
	for _, f := range fs.files {
		for _, b := range f.blocks {
			var liveReps []string
			has := map[string]bool{}
			for _, r := range b.replicas {
				if fs.alive[r] {
					liveReps = append(liveReps, r)
					has[r] = true
				}
			}
			if len(liveReps) == 0 || len(liveReps) >= want {
				// Every replica lost: nothing to copy from — the block
				// stays unavailable until a holder is restored.
				continue
			}
			for i := 0; len(liveReps) < want && i < len(live); i++ {
				cand := live[(fs.nextPos+i)%len(live)]
				if has[cand] {
					continue
				}
				liveReps = append(liveReps, cand)
				has[cand] = true
				fs.m.Add(metrics.DFSWriteBytes, b.bytes)
			}
			fs.nextPos++
			// Dead holders are dropped from the block map, as a namenode
			// would after the re-replication completes.
			b.replicas = liveReps
		}
	}
}

// RestoreNode brings a datanode back.
func (fs *DFS) RestoreNode(id string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.alive[id] = true
}

// Rename atomically moves oldPath to newPath under the namenode lock —
// the commit step of a write-temp-then-rename protocol: readers of
// newPath observe either the complete old file or the complete new one,
// never a partial write. A file already at newPath is replaced and its
// spilled blocks released.
func (fs *DFS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("dfs: rename: no such file %q", oldPath)
	}
	if old, ok := fs.files[newPath]; ok && old != f {
		for _, b := range old.blocks {
			if b.diskPath != "" {
				os.Remove(b.diskPath)
			}
		}
	}
	fs.files[newPath] = f
	delete(fs.files, oldPath)
	// Rename is the commit step of write-temp-then-rename protocols
	// (checkpoints, manifests); the image must capture it or a restarted
	// master would see the pre-commit state and re-run from older data.
	return fs.saveImageLocked()
}

// Checksum returns a CRC-32 over path's content: each block contributes
// the CRC of its gob encoding (the stored spill checksum when the block
// is on disk, a freshly computed one for memory-resident blocks — the
// two are identical for the same records), and the file checksum chains
// the per-block CRCs in block order. Replica placement does not affect
// the result, so a checksum recorded in a manifest stays valid across
// datanode failures and re-replication.
func (fs *DFS) Checksum(path string) (uint32, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return 0, fmt.Errorf("dfs: checksum: no such file %q", path)
	}
	blocks := append([]*block(nil), f.blocks...)
	fs.mu.Unlock()

	var acc []byte
	for _, b := range blocks {
		sum := b.checksum
		if b.diskPath == "" {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(b.recs); err != nil {
				return 0, fmt.Errorf("dfs: checksum %s: %w", path, err)
			}
			sum = crc32.ChecksumIEEE(buf.Bytes())
		}
		acc = append(acc, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	}
	return crc32.ChecksumIEEE(acc), nil
}

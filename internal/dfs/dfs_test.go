package dfs

import (
	"testing"

	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

func testOps() kv.Ops { return kv.OpsFor[int64, float64](nil) }

func nodes(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = string(rune('a' + i))
	}
	return ids
}

func recs(n int) []kv.Pair {
	out := make([]kv.Pair, n)
	for i := range out {
		out[i] = kv.Pair{Key: int64(i), Value: float64(i)}
	}
	return out
}

func TestWriteReadRoundtrip(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, Replication: 2}, nodes(3), nil)
	in := recs(100)
	if err := fs.WriteFile("/data", "a", in, testOps()); err != nil {
		t.Fatal(err)
	}
	out, err := fs.ReadFile("/data", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d mismatch: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestBlockSplitting(t *testing.T) {
	// 16 bytes per record, 64-byte blocks: 100 records -> 25 blocks.
	fs := New(Config{BlockSize: 64, Replication: 1}, nodes(2), nil)
	if err := fs.WriteFile("/big", "a", recs(100), testOps()); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.Splits("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 25 {
		t.Fatalf("got %d splits, want 25", len(splits))
	}
	total := 0
	for _, s := range splits {
		if s.Bytes > 64 {
			t.Fatalf("split %d overflows block size: %d", s.Block, s.Bytes)
		}
		total += s.Records
	}
	if total != 100 {
		t.Fatalf("records across splits = %d, want 100", total)
	}
}

func TestOversizedRecordGetsOwnBlock(t *testing.T) {
	fs := New(Config{BlockSize: 10, Replication: 1}, nodes(1), nil)
	w := fs.Create("/x", "a")
	w.Append(kv.Pair{Key: int64(0), Value: 0.0}, 100) // bigger than a block
	w.Append(kv.Pair{Key: int64(1), Value: 1.0}, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.StatFile("/x")
	if st.Blocks != 2 || st.Records != 2 {
		t.Fatalf("stat = %+v, want 2 blocks 2 records", st)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := New(Config{}, nodes(1), nil)
	if err := fs.WriteFile("/empty", "a", nil, testOps()); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/empty") {
		t.Fatal("empty file not committed")
	}
	out, err := fs.ReadFile("/empty", "a")
	if err != nil || len(out) != 0 {
		t.Fatalf("read empty: %v %v", out, err)
	}
}

func TestReplicationPlacement(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, Replication: 3}, nodes(5), nil)
	if err := fs.WriteFile("/r", "c", recs(10), testOps()); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/r")
	if len(splits[0].Locations) != 3 {
		t.Fatalf("got %d replicas, want 3", len(splits[0].Locations))
	}
	if splits[0].Locations[0] != "c" {
		t.Fatalf("first replica not at writer: %v", splits[0].Locations)
	}
	seen := map[string]bool{}
	for _, l := range splits[0].Locations {
		if seen[l] {
			t.Fatalf("duplicate replica %s", l)
		}
		seen[l] = true
	}
}

func TestReplicationCappedAtLiveNodes(t *testing.T) {
	fs := New(Config{Replication: 5}, nodes(2), nil)
	if err := fs.WriteFile("/r", "a", recs(3), testOps()); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/r")
	if len(splits[0].Locations) != 2 {
		t.Fatalf("got %d replicas, want 2 (live node cap)", len(splits[0].Locations))
	}
}

func TestLocalityAccounting(t *testing.T) {
	m := metrics.NewSet()
	fs := New(Config{BlockSize: 1 << 20, Replication: 1}, nodes(3), m)
	if err := fs.WriteFile("/loc", "a", recs(10), testOps()); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/loc")
	if _, err := fs.ReadSplit(splits[0], "a"); err != nil { // local
		t.Fatal(err)
	}
	if m.Get(metrics.DFSReadRemote) != 0 {
		t.Fatal("local read counted as remote")
	}
	if _, err := fs.ReadSplit(splits[0], "b"); err != nil { // remote
		t.Fatal(err)
	}
	if m.Get(metrics.DFSReadRemote) == 0 {
		t.Fatal("remote read not counted")
	}
	if m.Get(metrics.DFSReadBytes) <= m.Get(metrics.DFSReadRemote) {
		t.Fatal("total reads should exceed remote reads")
	}
}

func TestWriteBytesCountReplication(t *testing.T) {
	m := metrics.NewSet()
	fs := New(Config{BlockSize: 1 << 20, Replication: 2}, nodes(3), m)
	if err := fs.WriteFile("/w", "a", recs(10), testOps()); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.StatFile("/w")
	if got := m.Get(metrics.DFSWriteBytes); got != 2*st.Bytes {
		t.Fatalf("write bytes %d, want %d (2x replication)", got, 2*st.Bytes)
	}
}

func TestNodeFailureFallsBackToReplica(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, Replication: 2}, nodes(3), nil)
	if err := fs.WriteFile("/f", "a", recs(10), testOps()); err != nil {
		t.Fatal(err)
	}
	fs.FailNode("a")
	out, err := fs.ReadFile("/f", "b")
	if err != nil {
		t.Fatalf("read should survive one failure: %v", err)
	}
	if len(out) != 10 {
		t.Fatalf("got %d records", len(out))
	}
}

func TestAllReplicasDown(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, Replication: 1}, nodes(2), nil)
	if err := fs.WriteFile("/g", "a", recs(5), testOps()); err != nil {
		t.Fatal(err)
	}
	// With a single replica there is no live source to re-replicate
	// from, so the block stays pinned to its dead holder until that
	// node returns.
	fs.FailNode("a")
	fs.FailNode("b")
	if _, err := fs.ReadFile("/g", "a"); err == nil {
		t.Fatal("expected error with all replicas down")
	}
	fs.RestoreNode("a")
	if _, err := fs.ReadFile("/g", "a"); err != nil {
		t.Fatalf("restoring the holder did not bring data back: %v", err)
	}
}

func TestReReplicationAfterFailure(t *testing.T) {
	m := metrics.NewSet()
	fs := New(Config{BlockSize: 1 << 20, Replication: 2}, nodes(4), m)
	if err := fs.WriteFile("/rr", "a", recs(10), testOps()); err != nil {
		t.Fatal(err)
	}
	before := m.Get(metrics.DFSWriteBytes)
	fs.FailNode("a")
	// The block must regain two live replicas, neither on "a".
	splits, err := fs.Splits("/rr")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits[0].Locations) != 2 {
		t.Fatalf("re-replication left %d live replicas, want 2", len(splits[0].Locations))
	}
	for _, loc := range splits[0].Locations {
		if loc == "a" {
			t.Fatal("dead node still listed as replica holder")
		}
	}
	if m.Get(metrics.DFSWriteBytes) <= before {
		t.Fatal("re-replication traffic not accounted")
	}
	// Reads keep working from any node.
	if _, err := fs.ReadFile("/rr", "c"); err != nil {
		t.Fatal(err)
	}
}

func TestFailedNodeReceivesNoNewReplicas(t *testing.T) {
	fs := New(Config{Replication: 3}, nodes(3), nil)
	fs.FailNode("b")
	if err := fs.WriteFile("/h", "a", recs(5), testOps()); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/h")
	for _, loc := range splits[0].Locations {
		if loc == "b" {
			t.Fatal("dead node got a replica")
		}
	}
}

func TestDeleteListExists(t *testing.T) {
	fs := New(Config{}, nodes(1), nil)
	_ = fs.WriteFile("/dir/a", "a", recs(1), testOps())
	_ = fs.WriteFile("/dir/b", "a", recs(1), testOps())
	_ = fs.WriteFile("/other", "a", recs(1), testOps())
	got := fs.List("/dir/")
	if len(got) != 2 || got[0] != "/dir/a" || got[1] != "/dir/b" {
		t.Fatalf("List = %v", got)
	}
	fs.Delete("/dir/a")
	if fs.Exists("/dir/a") {
		t.Fatal("delete did not remove file")
	}
	fs.Delete("/dir/a") // idempotent
}

func TestOverwrite(t *testing.T) {
	fs := New(Config{}, nodes(1), nil)
	_ = fs.WriteFile("/o", "a", recs(5), testOps())
	_ = fs.WriteFile("/o", "a", recs(2), testOps())
	out, err := fs.ReadFile("/o", "a")
	if err != nil || len(out) != 2 {
		t.Fatalf("overwrite failed: %d records, err %v", len(out), err)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New(Config{}, nodes(1), nil)
	if _, err := fs.ReadFile("/nope", "a"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := fs.Splits("/nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := fs.StatFile("/nope"); err == nil {
		t.Fatal("expected error")
	}
}

package dfs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imapreduce/internal/kv"
)

func spillFS(t *testing.T, replication int) *DFS {
	t.Helper()
	return New(Config{BlockSize: 256, Replication: replication, SpillDir: t.TempDir()}, nodes(3), nil)
}

func spillFiles(t *testing.T, fs *DFS) []string {
	t.Helper()
	got, err := filepath.Glob(filepath.Join(fs.cfg.SpillDir, "blk-*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSpillRoundtrip(t *testing.T) {
	fs := spillFS(t, 2)
	in := recs(100) // 16 bytes each, 256-byte blocks → several blocks
	if err := fs.WriteFile("/spill", "a", in, testOps()); err != nil {
		t.Fatal(err)
	}
	if len(spillFiles(t, fs)) == 0 {
		t.Fatal("no blocks spilled to disk")
	}
	out, err := fs.ReadFile("/spill", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d records back, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || out[i].Value != in[i].Value {
			t.Fatalf("record %d changed: %v vs %v", i, out[i], in[i])
		}
	}
	// Splits still report correct record counts without touching disk.
	splits, err := fs.Splits("/spill")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range splits {
		total += s.Records
	}
	if total != len(in) {
		t.Fatalf("split records %d, want %d", total, len(in))
	}
}

func TestSpillDeleteRemovesFiles(t *testing.T) {
	fs := spillFS(t, 1)
	if err := fs.WriteFile("/d", "a", recs(50), testOps()); err != nil {
		t.Fatal(err)
	}
	if len(spillFiles(t, fs)) == 0 {
		t.Fatal("nothing spilled")
	}
	fs.Delete("/d")
	if got := spillFiles(t, fs); len(got) != 0 {
		t.Fatalf("delete leaked spill files: %v", got)
	}
}

func TestSpillOverwriteReleasesOldBlocks(t *testing.T) {
	fs := spillFS(t, 1)
	if err := fs.WriteFile("/o", "a", recs(50), testOps()); err != nil {
		t.Fatal(err)
	}
	before := len(spillFiles(t, fs))
	if err := fs.WriteFile("/o", "a", recs(50), testOps()); err != nil {
		t.Fatal(err)
	}
	after := len(spillFiles(t, fs))
	if after != before {
		t.Fatalf("overwrite leaked: %d -> %d spill files", before, after)
	}
	out, err := fs.ReadFile("/o", "a")
	if err != nil || len(out) != 50 {
		t.Fatalf("read after overwrite: %d, %v", len(out), err)
	}
}

func TestSpillComplexValues(t *testing.T) {
	fs := spillFS(t, 1)
	in := []kv.Pair{
		{Key: int64(1), Value: []float64{1.5, 2.5}},
		{Key: int64(2), Value: "hello"},
		{Key: int64(3), Value: []int32{7, 8, 9}},
	}
	if err := fs.WriteFile("/c", "a", in, testOps()); err != nil {
		t.Fatal(err)
	}
	out, err := fs.ReadFile("/c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Value.(string) != "hello" {
		t.Fatalf("string value lost: %v", out[1])
	}
	if vs := out[0].Value.([]float64); vs[1] != 2.5 {
		t.Fatalf("slice value lost: %v", vs)
	}
}

func TestSpillCorruptionDetected(t *testing.T) {
	fs := spillFS(t, 1)
	if err := fs.WriteFile("/crc", "a", recs(20), testOps()); err != nil {
		t.Fatal(err)
	}
	files := spillFiles(t, fs)
	if len(files) == 0 {
		t.Fatal("nothing spilled")
	}
	// Flip a byte in the middle of the first block file.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = fs.ReadFile("/crc", "a")
	if err == nil {
		t.Fatal("corrupted block read succeeded")
	}
	if !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("error should name corruption: %v", err)
	}
}

func TestSpillMissingFileErrors(t *testing.T) {
	fs := spillFS(t, 1)
	if err := fs.WriteFile("/m", "a", recs(5), testOps()); err != nil {
		t.Fatal(err)
	}
	for _, p := range spillFiles(t, fs) {
		os.Remove(p)
	}
	if _, err := fs.ReadFile("/m", "a"); err == nil {
		t.Fatal("expected error reading vanished spill file")
	}
}

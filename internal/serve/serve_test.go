package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"imapreduce/internal/core"
	"imapreduce/internal/imr"
	"imapreduce/internal/jobs"
	"imapreduce/internal/kv"
	"imapreduce/internal/metrics"
)

// newTestCluster builds the shared 4-worker in-process cluster the
// service tests run over.
func newTestCluster(t *testing.T) *imr.Cluster {
	t.Helper()
	c, err := imr.NewCluster(imr.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Cluster == nil {
		cfg.Cluster = newTestCluster(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitStats polls until the service occupancy satisfies ok.
func waitStats(t *testing.T, s *Service, what string, ok func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok(s.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s (stats %+v)", what, s.Stats())
}

// slowJob is an iterative job that runs effectively forever (one
// reduce sleep per iteration) until canceled; state must be seeded at
// statePath first.
func slowJob(name, statePath string) *core.Job {
	return &core.Job{
		Name: name, StatePath: statePath, MaxIter: 1 << 20,
		Map: func(key, state, static any, emit kv.Emit) error {
			emit(key, state)
			return nil
		},
		Reduce: func(key any, states []any) (any, error) {
			time.Sleep(2 * time.Millisecond)
			return states[0], nil
		},
		Ops: kv.OpsFor[int64, float64](nil),
	}
}

// quickJob finishes after one cheap iteration.
func quickJob(name, statePath string) *core.Job {
	j := slowJob(name, statePath)
	j.MaxIter = 1
	j.Reduce = func(key any, states []any) (any, error) { return states[0], nil }
	return j
}

func seedState(t *testing.T, c *imr.Cluster, path string) {
	t.Helper()
	recs := []kv.Pair{}
	for i := int64(0); i < 8; i++ {
		recs = append(recs, kv.Pair{Key: i, Value: float64(i)})
	}
	if err := c.Write(path, recs, kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
}

func iterSpec(j *core.Job) imr.JobSpec { return imr.JobSpec{Iterative: j} }

// submitBlocker occupies one slot with a cancelable job and returns it
// once it is running.
func submitBlocker(t *testing.T, s *Service, tenant string) *Job {
	t.Helper()
	seedState(t, s.cluster, "/block/state")
	b, err := s.Submit(context.Background(), iterSpec(slowJob("blocker", "/block/state")),
		imr.SubmitOptions{Tenant: tenant})
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, "blocker running", func(st Stats) bool { return st.Running >= 1 && st.Queued == 0 })
	return b
}

// TestServeSmoke is the acceptance scenario: 8 concurrent jobs across 2
// tenants, each job's output bit-identical to a solo run of the same
// definition on a fresh cluster.
func TestServeSmoke(t *testing.T) {
	mkParams := func(variant string) map[string]string {
		seed := "7"
		if variant == "prB" {
			seed = "11"
		}
		return map[string]string{
			"name": variant, "nodes": "48", "maxiter": "3", "ckpt": "0", "seed": seed,
		}
	}

	// Solo reference runs, one per input variant, on their own cluster.
	want := map[string]map[int64]float64{}
	for _, variant := range []string{"prA", "prB"} {
		solo := newTestCluster(t)
		if err := jobs.Seed(solo.FS, solo.Spec.IDs()[0], "pagerank", mkParams(variant)); err != nil {
			t.Fatal(err)
		}
		job, err := jobs.Build("pagerank", mkParams(variant))
		if err != nil {
			t.Fatal(err)
		}
		h, err := solo.Submit(context.Background(), iterSpec(job), imr.SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Result(); err != nil {
			t.Fatal(err)
		}
		out, err := imr.ReadAllAs[int64, float64](solo, jobs.OutputPath(variant))
		if err != nil {
			t.Fatal(err)
		}
		want[variant] = out
	}

	// The shared service: tenant a runs variant prA, tenant b variant
	// prB, four submissions each, all concurrent.
	c := newTestCluster(t)
	s := newService(t, Config{Cluster: c, Slots: 8})
	for _, variant := range []string{"prA", "prB"} {
		if err := jobs.Seed(c.FS, c.Spec.IDs()[0], "pagerank", mkParams(variant)); err != nil {
			t.Fatal(err)
		}
	}
	type sub struct {
		j       *Job
		variant string
		out     string
	}
	var subs []sub
	for i := 0; i < 8; i++ {
		tenant, variant := "a", "prA"
		if i%2 == 1 {
			tenant, variant = "b", "prB"
		}
		job, err := jobs.Build("pagerank", mkParams(variant))
		if err != nil {
			t.Fatal(err)
		}
		job.Name = fmt.Sprintf("pr-%d", i)
		job.OutputPath = fmt.Sprintf("%s/out-%d", TenantRoot(tenant), i)
		j, err := s.Submit(context.Background(), iterSpec(job), imr.SubmitOptions{Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{j: j, variant: variant, out: job.OutputPath})
	}
	for _, sb := range subs {
		if err := sb.j.Wait(context.Background()); err != nil {
			t.Fatalf("job %s: %v", sb.j.ID(), err)
		}
		if sb.j.Status() != imr.StatusDone {
			t.Fatalf("job %s status %v", sb.j.ID(), sb.j.Status())
		}
		got, err := imr.ReadAllAs[int64, float64](c, sb.out)
		if err != nil {
			t.Fatal(err)
		}
		ref := want[sb.variant]
		if len(got) != len(ref) {
			t.Fatalf("job %s: %d keys, want %d", sb.j.ID(), len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v { // bit-identical, not approximately equal
				t.Fatalf("job %s key %d = %v, want %v", sb.j.ID(), k, got[k], v)
			}
		}
	}

	// Service counters and per-tenant metric folding.
	if n := s.m.Get(metrics.ServeCompleted); n != 8 {
		t.Fatalf("completed = %d, want 8", n)
	}
	if n := s.m.Get(metrics.ServeDispatched); n != 8 {
		t.Fatalf("dispatched = %d, want 8", n)
	}
	for _, tenant := range []string{"a", "b"} {
		if n := s.m.Get("tenant." + tenant + "." + metrics.Iterations); n < 4*3 {
			t.Fatalf("tenant %s folded iterations = %d, want >= 12", tenant, n)
		}
	}
}

// TestServeFairness drives one slot to saturation from two tenants with
// weights 2:1 and checks the dispatch ordinals realize the weight ratio
// within 15%.
func TestServeFairness(t *testing.T) {
	c := newTestCluster(t)
	s := newService(t, Config{
		Cluster: c, Slots: 1, QueueLimit: 64,
		Tenants: map[string]Quota{"a": {Weight: 2}, "b": {Weight: 1}},
	})
	seedState(t, c, "/fair/state")
	blocker := submitBlocker(t, s, "z")

	var all []*Job
	for i := 0; i < 12; i++ {
		for _, tenant := range []string{"a", "b"} {
			j, err := s.Submit(context.Background(),
				iterSpec(quickJob(fmt.Sprintf("fair-%s-%d", tenant, i), "/fair/state")),
				imr.SubmitOptions{Tenant: tenant})
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, j)
		}
	}
	blocker.Cancel()
	if err := blocker.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocker err = %v", err)
	}
	for _, j := range all {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatalf("job %s: %v", j.ID(), err)
		}
	}

	// The blocker took ordinal 1; of the next 18 dispatches, weight 2:1
	// predicts 12 for tenant a. 15% of the window is ~2.7 → allow ±2.
	aFirst := 0
	for _, j := range all {
		seq := j.DispatchSeq()
		if seq < 0 {
			t.Fatalf("job %s never dispatched", j.ID())
		}
		if j.Tenant() == "a" && seq >= 2 && seq <= 19 {
			aFirst++
		}
	}
	if aFirst < 10 || aFirst > 14 {
		t.Fatalf("tenant a got %d of the first 18 slots, want 12±2", aFirst)
	}
}

// TestServePriority checks that within one tenant a higher-priority job
// overtakes earlier lower-priority submissions.
func TestServePriority(t *testing.T) {
	c := newTestCluster(t)
	s := newService(t, Config{Cluster: c, Slots: 1})
	seedState(t, c, "/prio/state")
	blocker := submitBlocker(t, s, "z")

	low, err := s.Submit(context.Background(), iterSpec(quickJob("low", "/prio/state")),
		imr.SubmitOptions{Tenant: "a", Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(context.Background(), iterSpec(quickJob("high", "/prio/state")),
		imr.SubmitOptions{Tenant: "a", Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	blocker.Cancel()
	if err := low.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := high.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if high.DispatchSeq() >= low.DispatchSeq() {
		t.Fatalf("priority 5 dispatched at %d, after priority 0 at %d",
			high.DispatchSeq(), low.DispatchSeq())
	}
}

// TestServeQueueFull exercises the bounded global queue.
func TestServeQueueFull(t *testing.T) {
	c := newTestCluster(t)
	s := newService(t, Config{Cluster: c, Slots: 1, QueueLimit: 2})
	seedState(t, c, "/qf/state")
	blocker := submitBlocker(t, s, "z")

	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(context.Background(), iterSpec(quickJob(fmt.Sprintf("qf-%d", i), "/qf/state")),
			imr.SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	_, err := s.Submit(context.Background(), iterSpec(quickJob("qf-over", "/qf/state")), imr.SubmitOptions{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if n := s.m.Get(metrics.ServeRejectedQueue); n != 1 {
		t.Fatalf("rejected.queuefull = %d, want 1", n)
	}
	blocker.Cancel()
	for _, j := range queued {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity freed: the same submission is admitted now.
	j, err := s.Submit(context.Background(), iterSpec(quickJob("qf-over", "/qf/state")), imr.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServeQuotas exercises the three per-tenant quota axes.
func TestServeQuotas(t *testing.T) {
	c := newTestCluster(t)
	s := newService(t, Config{
		Cluster: c, Slots: 2, QueueLimit: 64,
		Tenants: map[string]Quota{
			"q": {MaxQueued: 1},
			"r": {MaxConcurrent: 1},
			"d": {MaxDFSBytes: 1},
		},
	})
	seedState(t, c, "/quota/state")

	// MaxQueued: with both slots blocked, tenant q fits one queued job.
	b1 := submitBlocker(t, s, "z")
	b2, err := s.Submit(context.Background(), iterSpec(slowJob("blocker2", "/block/state")),
		imr.SubmitOptions{Tenant: "z"})
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, "both slots busy", func(st Stats) bool { return st.Running == 2 })

	q1, err := s.Submit(context.Background(), iterSpec(quickJob("q-0", "/quota/state")),
		imr.SubmitOptions{Tenant: "q"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(context.Background(), iterSpec(quickJob("q-1", "/quota/state")),
		imr.SubmitOptions{Tenant: "q"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	b1.Cancel()
	b2.Cancel()
	if err := q1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// MaxConcurrent: tenant r holds one slot even with a second free.
	r1, err := s.Submit(context.Background(), iterSpec(slowJob("r-0", "/block/state")),
		imr.SubmitOptions{Tenant: "r"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Submit(context.Background(), iterSpec(quickJob("r-1", "/quota/state")),
		imr.SubmitOptions{Tenant: "r"})
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, "r-0 running", func(st Stats) bool { return st.Running == 1 })
	time.Sleep(20 * time.Millisecond) // give the scheduler a chance to misbehave
	if got := r2.Status(); got != imr.StatusQueued {
		t.Fatalf("second tenant-r job is %v, want queued under MaxConcurrent=1", got)
	}
	r1.Cancel()
	if err := r2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// MaxDFSBytes: a tenant over its byte budget is rejected at
	// admission.
	if err := c.Write(TenantRoot("d")+"/pad", []kv.Pair{{Key: int64(0), Value: 1.0}},
		kv.OpsFor[int64, float64](nil)); err != nil {
		t.Fatal(err)
	}
	if s.TenantUsage("d") == 0 {
		t.Fatal("tenant d usage not visible")
	}
	_, err = s.Submit(context.Background(), iterSpec(quickJob("d-0", "/quota/state")),
		imr.SubmitOptions{Tenant: "d"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded for DFS bytes", err)
	}
}

// TestServeCancel covers the three cancel windows: queued, running,
// finished.
func TestServeCancel(t *testing.T) {
	c := newTestCluster(t)
	s := newService(t, Config{Cluster: c, Slots: 1})
	seedState(t, c, "/cancel/state")
	blocker := submitBlocker(t, s, "z")

	// Queued: finishes instantly, never dispatches.
	jq, err := s.Submit(context.Background(), iterSpec(quickJob("cq", "/cancel/state")), imr.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jq.Cancel()
	if err := jq.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel err = %v", err)
	}
	if jq.Status() != imr.StatusCanceled || jq.DispatchSeq() != -1 {
		t.Fatalf("queued cancel: status %v dispatchSeq %d", jq.Status(), jq.DispatchSeq())
	}

	// Running: the blocker is mid-run; cancel aborts it through the
	// engine.
	blocker.Cancel()
	if err := blocker.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("running cancel err = %v", err)
	}
	if blocker.Status() != imr.StatusCanceled {
		t.Fatalf("running cancel status %v", blocker.Status())
	}

	// Finished: Cancel is a no-op; status and result survive.
	jf, err := s.Submit(context.Background(), iterSpec(quickJob("cf", "/cancel/state")), imr.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	jf.Cancel()
	if jf.Status() != imr.StatusDone {
		t.Fatalf("finished cancel flipped status to %v", jf.Status())
	}
	if res, err := jf.Result(); err != nil || res == nil || res.Iterative == nil {
		t.Fatalf("finished cancel disturbed result: %v %v", res, err)
	}
	if n := s.m.Get(metrics.ServeCanceled); n != 2 {
		t.Fatalf("canceled = %d, want 2", n)
	}
}

// TestServeClose drains queued and running jobs and rejects later
// submissions.
func TestServeClose(t *testing.T) {
	c := newTestCluster(t)
	s := newService(t, Config{Cluster: c, Slots: 1})
	seedState(t, c, "/close/state")
	blocker := submitBlocker(t, s, "z")
	jq, err := s.Submit(context.Background(), iterSpec(quickJob("cl", "/close/state")), imr.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if blocker.Status() != imr.StatusCanceled {
		t.Fatalf("running job after Close: %v", blocker.Status())
	}
	if jq.Status() != imr.StatusCanceled {
		t.Fatalf("queued job after Close: %v", jq.Status())
	}
	if err := jq.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued job err = %v, want ErrClosed", err)
	}
	if _, err := s.Submit(context.Background(), iterSpec(quickJob("late", "/close/state")),
		imr.SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v", err)
	}
}

// TestServeBadSubmit covers admission-time validation.
func TestServeBadSubmit(t *testing.T) {
	s := newService(t, Config{})
	if _, err := s.Submit(context.Background(), imr.JobSpec{}, imr.SubmitOptions{}); err == nil {
		t.Fatal("empty spec admitted")
	}
	if _, err := s.Submit(context.Background(), iterSpec(quickJob("x", "/s")),
		imr.SubmitOptions{Tenant: "a/b"}); err == nil {
		t.Fatal("tenant with slash admitted")
	}
}

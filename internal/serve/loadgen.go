package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"imapreduce/internal/imr"
)

// LoadSpec drives an open-loop load generation run against a Service:
// for each rate, arrivals are scheduled by the wall clock (arrival i at
// start + i/rate) regardless of how fast jobs complete, which is what
// exposes saturation — once offered load exceeds service capacity the
// queue grows and latency climbs instead of the generator slowing down.
type LoadSpec struct {
	// Rates lists the arrival rates (jobs/second) to measure, one
	// LoadPoint each.
	Rates []float64
	// JobsPerRate is the arrival count per rate point (default 16).
	JobsPerRate int
	// Tenants are assigned to arrivals round-robin (default: just
	// DefaultTenant).
	Tenants []string
	// Make builds the job for one arrival; i is unique across the whole
	// run (all rate points), so Make can mint collision-free names and
	// output paths. The returned options' Tenant field is overwritten
	// with the round-robin assignment.
	Make func(tenant string, i int) (imr.JobSpec, imr.SubmitOptions)
	// Timeout bounds each job's wait; jobs still unfinished are
	// canceled and counted as failed (default 2 minutes).
	Timeout time.Duration
}

// LoadPoint is the measured outcome of one arrival rate.
type LoadPoint struct {
	RatePerSec       float64 `json:"rate_per_sec"`
	Jobs             int     `json:"jobs"`
	Completed        int     `json:"completed"`
	Rejected         int     `json:"rejected"`
	Failed           int     `json:"failed"`
	P50Ms            float64 `json:"p50_ms"`
	P95Ms            float64 `json:"p95_ms"`
	P99Ms            float64 `json:"p99_ms"`
	MeanMs           float64 `json:"mean_ms"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
}

// RunLoad measures s under each rate in ls and returns one LoadPoint
// per rate: the saturation curve. Latency is submit→finish (queue wait
// included). Points run back-to-back but each drains fully (every
// admitted job finished or canceled) before the next begins, so
// backlog never leaks across rates.
func RunLoad(s *Service, ls LoadSpec) ([]LoadPoint, error) {
	if ls.Make == nil {
		return nil, fmt.Errorf("serve: LoadSpec.Make is required")
	}
	if ls.JobsPerRate <= 0 {
		ls.JobsPerRate = 16
	}
	tenants := ls.Tenants
	if len(tenants) == 0 {
		tenants = []string{DefaultTenant}
	}
	timeout := ls.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}

	points := make([]LoadPoint, 0, len(ls.Rates))
	idx := 0
	for _, rate := range ls.Rates {
		if rate <= 0 {
			return nil, fmt.Errorf("serve: load rate must be positive, got %g", rate)
		}
		interval := time.Duration(float64(time.Second) / rate)
		pt := LoadPoint{RatePerSec: rate, Jobs: ls.JobsPerRate}

		var (
			mu   sync.Mutex
			lats []float64
			wg   sync.WaitGroup
		)
		start := time.Now()
		for i := 0; i < ls.JobsPerRate; i++ {
			if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
				time.Sleep(d)
			}
			tenant := tenants[i%len(tenants)]
			spec, opts := ls.Make(tenant, idx)
			idx++
			submitAt := time.Now()
			opts.Tenant = tenant
			j, err := s.Submit(context.Background(), spec, opts)
			if err != nil {
				mu.Lock()
				pt.Rejected++
				mu.Unlock()
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				err := j.Wait(ctx)
				cancel()
				if err != nil && ctx.Err() != nil {
					// Deadline hit: cancel and drain so the next rate
					// point starts from an idle service.
					j.Cancel()
					err = j.Wait(context.Background())
					if err == nil {
						err = fmt.Errorf("serve: load job %s overran the %s wait", j.ID(), timeout)
					}
				}
				mu.Lock()
				if err != nil {
					pt.Failed++
				} else {
					lats = append(lats, elapsedMS(time.Since(submitAt)))
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)

		sort.Float64s(lats)
		pt.Completed = len(lats)
		pt.P50Ms = percentile(lats, 0.50)
		pt.P95Ms = percentile(lats, 0.95)
		pt.P99Ms = percentile(lats, 0.99)
		if len(lats) > 0 {
			var sum float64
			for _, l := range lats {
				sum += l
			}
			pt.MeanMs = sum / float64(len(lats))
			pt.ThroughputPerSec = float64(len(lats)) / elapsed.Seconds()
		}
		points = append(points, pt)
	}
	return points, nil
}

// percentile returns the p-quantile of an ascending-sorted sample by
// the nearest-rank method (0 on an empty sample).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

package serve

import (
	"strconv"
	"time"

	"imapreduce/internal/imr"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
)

// schedule is the scheduler goroutine: it sleeps until kicked (by a
// Submit, a job completion, or an unqueue) and then dispatches queued
// jobs into free slots until none remain eligible.
func (s *Service) schedule() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closeCh:
			return
		case <-s.kick:
		}
		for {
			s.mu.Lock()
			j, dseq := s.nextLocked()
			s.mu.Unlock()
			if j == nil {
				break
			}
			s.dispatch(j, dseq)
		}
	}
}

// nextLocked picks the next job to dispatch, or nil when no slot is
// free or no tenant is eligible. Caller holds s.mu.
//
// Tenant choice is smooth weighted round-robin: every eligible tenant
// (non-empty queue, under its MaxConcurrent) earns its weight in
// credit; the richest tenant (ties broken by the sorted tenant order,
// so deterministically) dispatches and pays the total weight back.
// Over any window the dispatch counts converge to the weight ratios,
// without the bursts plain WRR produces. Within a tenant the queue is
// already priority-descending FIFO, so the head is the right job.
func (s *Service) nextLocked() (*Job, int) {
	if s.closed || s.runningN >= s.cfg.Slots {
		return nil, 0
	}
	eligible := make([]string, 0, len(s.order))
	total := 0
	for _, t := range s.order {
		if len(s.queues[t]) == 0 {
			continue
		}
		q := s.quotaFor(t)
		if q.MaxConcurrent > 0 && s.running[t] >= q.MaxConcurrent {
			continue
		}
		eligible = append(eligible, t)
		total += q.weight()
	}
	if len(eligible) == 0 {
		return nil, 0
	}
	best := ""
	for _, t := range eligible {
		s.credit[t] += s.quotaFor(t).weight()
		if best == "" || s.credit[t] > s.credit[best] {
			best = t
		}
	}
	s.credit[best] -= total

	q := s.queues[best]
	j := q[0]
	s.queues[best] = q[1:]
	s.queued--
	s.running[best]++
	s.runningN++
	s.runningSet[j] = struct{}{}
	s.dispatchSeq++
	return j, s.dispatchSeq
}

// dispatch moves one dequeued job into a slot and starts its runner.
// A job canceled between dequeue and dispatch releases the slot
// immediately.
func (s *Service) dispatch(j *Job, dseq int) {
	if !j.markRunning(dseq) {
		s.mu.Lock()
		s.running[j.tenant]--
		s.runningN--
		delete(s.runningSet, j)
		s.mu.Unlock()
		return
	}
	s.m.Add(metrics.ServeDispatched, 1)
	s.m.AddSpan(metrics.ServeQueueWait, time.Since(j.submitted))
	s.tr.Emit(trace.KindServeDispatch, j.tenant, -1, 0,
		trace.Attr{Key: "job", Value: j.name},
		trace.Attr{Key: "seq", Value: strconv.Itoa(dseq)})
	s.wg.Add(1)
	go s.runJob(j)
}

// runJob executes one dispatched job to completion on the cluster,
// then releases its slot and wakes the scheduler.
func (s *Service) runJob(j *Job) {
	defer s.wg.Done()
	inner, err := s.cluster.Submit(j.runCtx, j.spec, j.opts)
	var res *imr.JobResult
	if err == nil {
		res, err = inner.Result()
	}
	j.finishRun(res, err)

	s.mu.Lock()
	s.running[j.tenant]--
	s.runningN--
	delete(s.runningSet, j)
	s.mu.Unlock()

	s.noteTerminal(j)
	s.kickSched()
}

// unqueue removes a job canceled while queued from its tenant queue
// (no-op if the scheduler dequeued it concurrently).
func (s *Service) unqueue(j *Job) {
	s.mu.Lock()
	q := s.queues[j.tenant]
	for i, x := range q {
		if x == j {
			s.queues[j.tenant] = append(q[:i], q[i+1:]...)
			s.queued--
			break
		}
	}
	s.mu.Unlock()
}

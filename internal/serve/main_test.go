package serve

import (
	"testing"

	"imapreduce/internal/leaktest"
)

func TestMain(m *testing.M) {
	// Every Service and Cluster in this package spawns goroutines
	// (scheduler, runners, persistent tasks); none may outlive its test.
	leaktest.VerifyTestMain(m)
}

// Package serve is the multi-tenant job service: a long-lived front
// door that admits, queues, schedules and isolates many concurrent
// iterative (and batch) jobs over one imr.Cluster.
//
// The paper's engine runs one job at a time; serving sustained traffic
// from many users needs three more layers, which this package adds:
//
//   - Admission control: a bounded global queue plus per-tenant quotas
//     on queued jobs, concurrent jobs and DFS bytes. Rejections are
//     typed (ErrQueueFull, ErrQuotaExceeded) so callers can shed load
//     or retry.
//   - Fair-share scheduling: a single scheduler goroutine allocates a
//     fixed number of run slots across tenants by smooth weighted
//     round-robin; within a tenant, higher-priority jobs dequeue first
//     (FIFO among equals).
//   - Isolation: every admitted job is renamed into
//     "tenants/<tenant>/<seq>-<name>", which namespaces its transport
//     endpoints, checkpoints and manifests (/_imr/tenants/<tenant>/...)
//     away from every other job; each job gets its own metrics.Set
//     (folded into the service set under a "tenant.<tenant>." prefix at
//     completion) and, optionally, its own trace.Recorder.
//
// Execution itself is delegated to imr.Cluster.Submit, which grows a
// per-run engine pool over the shared DFS, transport and cluster spec.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"imapreduce/internal/imr"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
)

// Typed admission rejections. Both are permanent for the submission
// that received them (nothing was enqueued).
var (
	// ErrQueueFull: the service-wide bounded queue is at QueueLimit.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrQuotaExceeded: a per-tenant quota (queued jobs or DFS bytes)
	// would be exceeded.
	ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")
	// ErrClosed: the service is shut down.
	ErrClosed = errors.New("serve: service closed")
)

// DefaultTenant is the tenant label applied when SubmitOptions.Tenant
// is empty.
const DefaultTenant = "default"

// Quota bounds one tenant. The zero value means: weight 1, queued jobs
// bounded only by the global QueueLimit, concurrent jobs bounded only
// by Slots, no DFS byte cap.
type Quota struct {
	// Weight is the tenant's fair share: under contention a tenant with
	// weight 2 is dispatched twice as often as one with weight 1.
	// <= 0 means 1.
	Weight int
	// MaxQueued caps the tenant's queued (admitted, not yet running)
	// jobs; 0 = unlimited (within QueueLimit).
	MaxQueued int
	// MaxConcurrent caps the tenant's simultaneously running jobs;
	// 0 = unlimited (within Slots).
	MaxConcurrent int
	// MaxDFSBytes caps the bytes stored under the tenant's DFS
	// namespaces (TenantRoot plus the run-artifact namespace
	// /_imr/tenants/<tenant>/); checked at admission. 0 = unlimited.
	MaxDFSBytes int64
}

func (q Quota) weight() int {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// Config assembles a Service.
type Config struct {
	// Cluster executes the jobs. Required.
	Cluster *imr.Cluster
	// Slots is the number of jobs the scheduler runs concurrently
	// (default 4).
	Slots int
	// QueueLimit bounds the total queued jobs across all tenants
	// (default 64); admissions beyond it fail with ErrQueueFull.
	QueueLimit int
	// Tenants assigns per-tenant quotas; tenants not listed get
	// DefaultQuota.
	Tenants map[string]Quota
	// DefaultQuota applies to tenants absent from Tenants.
	DefaultQuota Quota
	// Metrics receives the service counters (serve.* constants in
	// internal/metrics) and the folded per-job counters; defaults to
	// the cluster's set.
	Metrics *metrics.Set
	// Trace, if set, receives serve.* lifecycle events.
	Trace *trace.Recorder
	// JobTraceEvents, if > 0, gives every job its own trace.Recorder
	// with that ring capacity (Job.Trace returns it).
	JobTraceEvents int
}

// TenantRoot is the DFS directory conventionally owned by a tenant;
// MaxDFSBytes accounts it (together with /_imr/tenants/<tenant>/, where
// the engine keeps run artifacts of namespaced jobs).
func TenantRoot(tenant string) string { return "/tenants/" + tenant }

// Service is the long-lived multi-tenant job service. All methods are
// safe for concurrent use.
type Service struct {
	cfg     Config
	cluster *imr.Cluster
	m       *metrics.Set
	tr      *trace.Recorder
	seq     atomic.Int64

	// kick wakes the scheduler goroutine; buffered so producers never
	// block (a lost kick is fine — one is already pending).
	kick    chan struct{}
	closeCh chan struct{}
	wg      sync.WaitGroup

	mu          sync.Mutex
	closed      bool
	queues      map[string][]*Job // per-tenant, priority-desc FIFO
	order       []string          // sorted tenant iteration order
	queued      int
	running     map[string]int
	runningSet  map[*Job]struct{}
	runningN    int
	credit      map[string]int // smooth-WRR state
	dispatchSeq int
}

// New starts a Service over cfg.Cluster. Close releases it.
func New(cfg Config) (*Service, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("serve: Config.Cluster is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	m := cfg.Metrics
	if m == nil {
		m = cfg.Cluster.Metrics
	}
	s := &Service{
		cfg:        cfg,
		cluster:    cfg.Cluster,
		m:          m,
		tr:         cfg.Trace,
		kick:       make(chan struct{}, 1),
		closeCh:    make(chan struct{}),
		queues:     make(map[string][]*Job),
		running:    make(map[string]int),
		runningSet: make(map[*Job]struct{}),
		credit:     make(map[string]int),
	}
	s.wg.Add(1)
	go s.schedule()
	return s, nil
}

// quotaFor resolves tenant's quota.
func (s *Service) quotaFor(tenant string) Quota {
	if q, ok := s.cfg.Tenants[tenant]; ok {
		return q
	}
	return s.cfg.DefaultQuota
}

// TenantUsage reports the bytes tenant currently stores in its
// accounted DFS namespaces: TenantRoot(tenant) and the run-artifact
// namespace /_imr/tenants/<tenant>/ (checkpoints, manifests, static
// partitions, default outputs of namespaced runs).
func (s *Service) TenantUsage(tenant string) int64 {
	fs := s.cluster.FS
	var total int64
	for _, prefix := range []string{TenantRoot(tenant) + "/", "/_imr/tenants/" + tenant + "/"} {
		for _, p := range fs.List(prefix) {
			if st, err := fs.StatFile(p); err == nil {
				total += st.Bytes
			}
		}
	}
	return total
}

// Submit admits one job into tenant's queue and returns its handle
// without blocking on execution. Admission is synchronous: a full queue
// returns ErrQueueFull, an exceeded tenant quota ErrQuotaExceeded, a
// closed service ErrClosed — in each case nothing was enqueued.
//
// The job is renamed into the tenant's namespace
// ("tenants/<tenant>/<seq>-<name>") before execution, so concurrent
// jobs — even resubmissions of the same definition — never share
// transport endpoints, checkpoints or manifests. ctx bounds the whole
// job: queued jobs whose ctx dies are dropped at dispatch time.
func (s *Service) Submit(ctx context.Context, spec imr.JobSpec, opts imr.SubmitOptions) (*Job, error) {
	if err := checkSpec(spec); err != nil {
		return nil, err
	}
	tenant := opts.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	if strings.ContainsAny(tenant, "/ ") {
		return nil, fmt.Errorf("serve: invalid tenant name %q", tenant)
	}
	q := s.quotaFor(tenant)
	if q.MaxDFSBytes > 0 && s.TenantUsage(tenant) >= q.MaxDFSBytes {
		s.m.Add(metrics.ServeRejectedQuota, 1)
		s.tr.Emit(trace.KindServeReject, tenant, -1, 0,
			trace.Attr{Key: "reason", Value: "dfs-bytes"})
		return nil, fmt.Errorf("serve: tenant %s is over its DFS byte quota (%d bytes): %w",
			tenant, q.MaxDFSBytes, ErrQuotaExceeded)
	}

	seq := s.seq.Add(1)
	j := s.newJob(ctx, tenant, seq, spec, opts)

	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return nil, ErrClosed
	case s.queued >= s.cfg.QueueLimit:
		s.mu.Unlock()
		s.m.Add(metrics.ServeRejectedQueue, 1)
		s.tr.Emit(trace.KindServeReject, tenant, -1, 0,
			trace.Attr{Key: "reason", Value: "queue-full"})
		return nil, fmt.Errorf("serve: %d jobs queued (limit %d): %w",
			s.queued, s.cfg.QueueLimit, ErrQueueFull)
	case q.MaxQueued > 0 && len(s.queues[tenant]) >= q.MaxQueued:
		s.mu.Unlock()
		s.m.Add(metrics.ServeRejectedQuota, 1)
		s.tr.Emit(trace.KindServeReject, tenant, -1, 0,
			trace.Attr{Key: "reason", Value: "max-queued"})
		return nil, fmt.Errorf("serve: tenant %s has %d jobs queued (quota %d): %w",
			tenant, len(s.queues[tenant]), q.MaxQueued, ErrQuotaExceeded)
	}
	if _, known := s.queues[tenant]; !known {
		i := sort.SearchStrings(s.order, tenant)
		s.order = append(s.order, "")
		copy(s.order[i+1:], s.order[i:])
		s.order[i] = tenant
	}
	// Insert after the last job of >= priority: priority-descending,
	// FIFO among equals.
	tq := s.queues[tenant]
	i := len(tq)
	for i > 0 && tq[i-1].prio < j.prio {
		i--
	}
	tq = append(tq, nil)
	copy(tq[i+1:], tq[i:])
	tq[i] = j
	s.queues[tenant] = tq
	s.queued++
	s.mu.Unlock()

	s.m.Add(metrics.ServeSubmitted, 1)
	s.tr.Emit(trace.KindServeSubmit, tenant, -1, 0,
		trace.Attr{Key: "job", Value: j.name})
	s.kickSched()
	return j, nil
}

// checkSpec mirrors imr's exactly-one validation at admission time, so
// malformed specs fail the Submit call instead of the queued job.
func checkSpec(spec imr.JobSpec) error {
	set := 0
	for _, ok := range []bool{spec.Iterative != nil, spec.Batch != nil, spec.Chain != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("serve: JobSpec must set exactly one of Iterative, Batch, Chain (got %d)", set)
	}
	if spec.Name() == "" {
		return fmt.Errorf("serve: job without a name")
	}
	return nil
}

// namespaceSpec clones the spec's root job with the namespaced name.
// Only the root name matters: it prefixes every transport endpoint
// address, the /_imr/<name>/ checkpoint+manifest namespace, and the
// engine's default output path.
func namespaceSpec(spec imr.JobSpec, ns string) imr.JobSpec {
	switch {
	case spec.Iterative != nil:
		j := *spec.Iterative
		j.Name = ns
		return imr.JobSpec{Iterative: &j}
	case spec.Batch != nil:
		j := *spec.Batch
		j.Name = ns
		return imr.JobSpec{Batch: &j}
	default:
		j := *spec.Chain
		j.Name = ns
		return imr.JobSpec{Chain: &j}
	}
}

// kickSched wakes the scheduler; never blocks.
func (s *Service) kickSched() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Stats is a point-in-time occupancy snapshot.
type Stats struct {
	Queued  int
	Running int
	Slots   int
}

// Stats reports current queue and slot occupancy.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Queued: s.queued, Running: s.runningN, Slots: s.cfg.Slots}
}

// Close shuts the service down: queued jobs finish as canceled, running
// jobs are canceled through their engines, and Close returns once the
// scheduler and every runner goroutine have exited. Further Submits
// fail with ErrClosed. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var queued []*Job
	for t, q := range s.queues {
		queued = append(queued, q...)
		s.queues[t] = nil
	}
	s.queued = 0
	var active []*Job
	for j := range s.runningSet {
		active = append(active, j)
	}
	s.mu.Unlock()

	close(s.closeCh)
	for _, j := range queued {
		if j.cancelQueued(fmt.Errorf("serve: job %s dropped: %w: %w", j.id, ErrClosed, context.Canceled)) {
			s.noteTerminal(j)
		}
	}
	for _, j := range active {
		j.cancelRun(context.Canceled)
	}
	s.wg.Wait()
}

// noteTerminal updates service counters and folds the job's private
// metrics into the service set once the job reaches a terminal state.
func (s *Service) noteTerminal(j *Job) {
	switch j.Status() {
	case imr.StatusDone:
		s.m.Add(metrics.ServeCompleted, 1)
	case imr.StatusCanceled:
		s.m.Add(metrics.ServeCanceled, 1)
	default:
		s.m.Add(metrics.ServeFailed, 1)
	}
	if j.metrics != nil {
		prefix := "tenant." + j.tenant + "."
		for name, v := range j.metrics.Snapshot() {
			s.m.Add(prefix+name, v)
		}
	}
	s.tr.Emit(trace.KindServeDone, j.tenant, -1, 0,
		trace.Attr{Key: "job", Value: j.name},
		trace.Attr{Key: "status", Value: j.Status().String()})
}

// elapsedMS is a tiny helper shared with the load generator.
func elapsedMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"imapreduce/internal/imr"
	"imapreduce/internal/metrics"
	"imapreduce/internal/trace"
)

// Job is the service-side handle for one admitted job. It mirrors
// imr.JobHandle but adds the queued state, the tenant identity, and the
// dispatch ordinal the fairness tests read. Safe for concurrent use.
type Job struct {
	id     string
	name   string // namespaced run name: tenants/<tenant>/<seq>-<orig>
	tenant string
	seq    int64
	prio   int
	spec   imr.JobSpec // namespaced clone
	opts   imr.SubmitOptions
	svc    *Service

	runCtx    context.Context
	cancelRun context.CancelCauseFunc
	metrics   *metrics.Set
	tr        *trace.Recorder
	submitted time.Time

	done chan struct{}

	mu     sync.Mutex
	status imr.JobStatus
	dseq   int // dispatch ordinal; -1 until dispatched
	res    *imr.JobResult
	err    error
}

// newJob builds the queued handle: the spec is cloned under the
// tenant namespace and the options are rewritten for per-job isolation
// (own metrics set, optionally own trace recorder).
func (s *Service) newJob(ctx context.Context, tenant string, seq int64, spec imr.JobSpec, opts imr.SubmitOptions) *Job {
	ns := fmt.Sprintf("tenants/%s/%06d-%s", tenant, seq, spec.Name())
	opts.Tenant = tenant
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewSet()
	}
	if opts.Trace == nil && s.cfg.JobTraceEvents > 0 {
		opts.Trace = trace.NewRecorder(s.cfg.JobTraceEvents)
	}
	runCtx, cancelRun := context.WithCancelCause(ctx)
	return &Job{
		id:        fmt.Sprintf("%s/%d", tenant, seq),
		name:      ns,
		tenant:    tenant,
		seq:       seq,
		prio:      opts.Priority,
		spec:      namespaceSpec(spec, ns),
		opts:      opts,
		svc:       s,
		runCtx:    runCtx,
		cancelRun: cancelRun,
		metrics:   opts.Metrics,
		tr:        opts.Trace,
		submitted: time.Now(),
		done:      make(chan struct{}),
		status:    imr.StatusQueued,
		dseq:      -1,
	}
}

// ID returns the service-assigned job id ("<tenant>/<seq>").
func (j *Job) ID() string { return j.id }

// Tenant returns the tenant the job was admitted under.
func (j *Job) Tenant() string { return j.tenant }

// Name returns the namespaced run name the job executes under; its
// run artifacts live at /_imr/<Name()>/.
func (j *Job) Name() string { return j.name }

// Metrics returns the job's private metrics set (also folded into the
// service set under "tenant.<tenant>." once the job finishes).
func (j *Job) Metrics() *metrics.Set { return j.metrics }

// Trace returns the job's private trace recorder (nil unless
// Config.JobTraceEvents > 0 or the submitter supplied one).
func (j *Job) Trace() *trace.Recorder { return j.tr }

// Status reports the job's current lifecycle state, starting at
// imr.StatusQueued.
func (j *Job) Status() imr.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// DispatchSeq returns the service-wide ordinal at which the scheduler
// dispatched this job (1-based), or -1 if it never left the queue.
func (j *Job) DispatchSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dseq
}

// Wait blocks until the job finishes or ctx is done; it returns the
// job's terminal error (nil on success), or ctx.Err() if ctx expires
// first (the job keeps running).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result blocks until the job finishes and returns its typed outcome
// and terminal error.
func (j *Job) Result() (*imr.JobResult, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Cancel cancels the job. A queued job finishes immediately as
// StatusCanceled without ever running; a running job is aborted through
// its engine and finishes with an error wrapping context.Canceled.
// Cancel on an already-finished job is a documented no-op: the terminal
// status and result are never disturbed.
func (j *Job) Cancel() {
	if j.cancelQueued(fmt.Errorf("serve: job %s canceled while queued: %w", j.id, context.Canceled)) {
		j.svc.unqueue(j)
		j.svc.noteTerminal(j)
		return
	}
	j.cancelRun(context.Canceled)
}

// cancelQueued finishes a still-queued job as canceled; it reports
// whether this call performed the transition (false if the job already
// left the queued state).
func (j *Job) cancelQueued(err error) bool {
	j.mu.Lock()
	if j.status != imr.StatusQueued {
		j.mu.Unlock()
		return false
	}
	j.status = imr.StatusCanceled
	j.err = err
	j.mu.Unlock()
	close(j.done)
	return true
}

// markRunning moves queued→running at dispatch; false means the job was
// canceled between dequeue and dispatch and must not run.
func (j *Job) markRunning(dseq int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != imr.StatusQueued {
		return false
	}
	j.status = imr.StatusRunning
	j.dseq = dseq
	return true
}

// finishRun records the terminal state of a job that was dispatched.
func (j *Job) finishRun(res *imr.JobResult, err error) {
	j.mu.Lock()
	j.res, j.err = res, err
	switch {
	case err == nil:
		j.status = imr.StatusDone
	case errors.Is(err, context.Canceled):
		j.status = imr.StatusCanceled
	default:
		j.status = imr.StatusFailed
	}
	j.mu.Unlock()
	close(j.done)
}

// Package leaktest is a stdlib-only goroutine-leak checker and deadlock
// watchdog for this repository's tests. The engine, the transport
// backends, and the chaos harness all spawn goroutines whose lifetimes
// are supposed to be bounded by a Close or a context; a leak here is a
// real bug (PR 1's teardown discipline exists because of them) but is
// invisible to a passing test. leaktest makes it visible:
//
//   - Check(t) snapshots the live goroutines and returns a function
//     (defer it) that fails the test if goroutines born during the test
//     are still running after a grace period.
//   - VerifyTestMain(m) does the same for a whole package: put it in
//     TestMain and any goroutine that outlives the last test fails the
//     run.
//   - Watchdog(t, d) arms a deadline; if the test is still running when
//     it passes, every goroutine's stack is dumped to stderr and the
//     process panics — turning a silent CI hang into a diagnosable
//     failure.
//
// Known long-lived goroutines (for example the transport flusher while
// a network is deliberately kept open) are suppressed with
// IgnoreFunc("(*tcpEndpoint).readLoop")-style substring filters.
package leaktest

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// opts is the assembled configuration of one check.
type opts struct {
	timeout time.Duration
	ignores []string
}

// Option configures Check or VerifyTestMain.
type Option func(*opts)

// Timeout sets how long the checker keeps retrying before declaring the
// surviving goroutines leaked. Goroutines legitimately take a moment to
// wind down after Close — the default grace is 5s, far above any real
// teardown but far below a CI timeout.
func Timeout(d time.Duration) Option {
	return func(o *opts) { o.timeout = d }
}

// IgnoreFunc suppresses goroutines whose stack contains substr (match
// against the full stack text, so both function names and file paths
// work). Use it for goroutines whose lifetime is deliberately longer
// than the test, and say why at the call site.
func IgnoreFunc(substr string) Option {
	return func(o *opts) { o.ignores = append(o.ignores, substr) }
}

func buildOpts(options []Option) opts {
	o := opts{timeout: 5 * time.Second}
	for _, opt := range options {
		opt(&o)
	}
	return o
}

// defaultIgnores hides the runtime/testing-owned daemons that outlive
// any test by design.
var defaultIgnores = []string{
	"testing.Main(",
	"testing.(*M).",
	"os/signal.signal_recv",
	"runtime.ensureSigM",
	"created by runtime/trace",
	"runtime.ReadTrace",
}

// goroutine is one parsed entry of a full runtime.Stack dump.
type goroutine struct {
	id    int
	stack string // full text including the "goroutine N [state]:" header
}

// rawStacks returns the full stack dump of every goroutine, growing the
// buffer until the dump fits.
func rawStacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		if len(buf) >= 64<<20 {
			return buf[:n]
		}
		buf = make([]byte, len(buf)*2)
	}
}

// capture parses the current dump. The first entry is always the
// calling goroutine.
func capture() (all []goroutine, currentID int) {
	for i, chunk := range strings.Split(string(rawStacks()), "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		g := goroutine{id: goroutineID(chunk), stack: chunk}
		if i == 0 {
			currentID = g.id
		}
		all = append(all, g)
	}
	return all, currentID
}

// goroutineID extracts N from a "goroutine N [state]:" header (0 when
// the header is malformed — such an entry is never filtered by ID and
// so errs toward being reported).
func goroutineID(stack string) int {
	rest, ok := strings.CutPrefix(stack, "goroutine ")
	if !ok {
		return 0
	}
	if i := strings.IndexByte(rest, ' '); i > 0 {
		if id, err := strconv.Atoi(rest[:i]); err == nil {
			return id
		}
	}
	return 0
}

func ignored(stack string, o opts) bool {
	for _, s := range defaultIgnores {
		if strings.Contains(stack, s) {
			return true
		}
	}
	for _, s := range o.ignores {
		if strings.Contains(stack, s) {
			return true
		}
	}
	return false
}

// leaked returns the goroutines alive now that are neither in the
// baseline, nor the caller, nor filtered.
func leaked(baseline map[int]bool, o opts) []goroutine {
	all, cur := capture()
	var out []goroutine
	for _, g := range all {
		if g.id == cur || baseline[g.id] || ignored(g.stack, o) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// settle retries until no leaked goroutines remain or the grace period
// runs out, returning the final survivors.
func settle(baseline map[int]bool, o opts) []goroutine {
	deadline := time.Now().Add(o.timeout)
	delay := time.Millisecond
	for {
		survivors := leaked(baseline, o)
		if len(survivors) == 0 || time.Now().After(deadline) {
			return survivors
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

func baselineIDs() map[int]bool {
	all, _ := capture()
	ids := make(map[int]bool, len(all))
	for _, g := range all {
		ids[g.id] = true
	}
	return ids
}

func formatLeaks(gs []goroutine) string {
	var b strings.Builder
	for _, g := range gs {
		b.WriteString(g.stack)
		b.WriteString("\n\n")
	}
	return b.String()
}

// Check snapshots the live goroutines and returns the verification
// function; defer it at the top of the test:
//
//	defer leaktest.Check(t)()
//
// Every goroutine started during the test must be gone (or filtered)
// by the time the deferred call's grace period ends, else the test
// fails with the survivors' stacks.
func Check(t testing.TB, options ...Option) func() {
	o := buildOpts(options)
	baseline := baselineIDs()
	return func() {
		if survivors := settle(baseline, o); len(survivors) > 0 {
			t.Errorf("leaktest: %d goroutine(s) still running %v after the test:\n\n%s",
				len(survivors), o.timeout, formatLeaks(survivors))
		}
	}
}

// exitFn is swapped by leaktest's own tests; VerifyTestMain must
// os.Exit so a leak fails the package even though no *testing.T is
// live anymore.
var exitFn = os.Exit

// VerifyTestMain runs the package's tests and then verifies that no
// goroutine born during them survived. Wire it as:
//
//	func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
//
// A leak turns an otherwise green package red with the survivors'
// stacks on stderr.
func VerifyTestMain(m *testing.M, options ...Option) {
	o := buildOpts(options)
	baseline := baselineIDs()
	code := m.Run()
	if code == 0 {
		if survivors := settle(baseline, o); len(survivors) > 0 {
			fmt.Fprintf(os.Stderr,
				"leaktest: %d goroutine(s) still running %v after all tests:\n\n%s",
				len(survivors), o.timeout, formatLeaks(survivors))
			code = 1
		}
	}
	exitFn(code)
}

// watchdogFired is what an expired watchdog does. The default dumps
// every goroutine's stack to stderr and panics, so a deadlocked test
// dies with a full diagnosis instead of idling until the go test
// binary's global timeout truncates it. leaktest's own tests replace it
// to observe firing.
var watchdogFired = func(name string, d time.Duration, stacks []byte) {
	fmt.Fprintf(os.Stderr,
		"leaktest: watchdog: %s still running after %v; goroutine dump:\n\n%s\n",
		name, d, stacks)
	panic(fmt.Sprintf("leaktest: watchdog: %s exceeded %v (deadlock?)", name, d))
}

// Watchdog arms a deadline for the calling test; stop it when the test
// completes:
//
//	defer leaktest.Watchdog(t, 2*time.Minute)()
//
// If the deadline passes first, every goroutine's stack is dumped and
// the process panics. Size d well above the test's worst honest runtime
// — the watchdog is for hangs, not slowness.
func Watchdog(t testing.TB, d time.Duration) (stop func()) {
	name := t.Name()
	timer := time.AfterFunc(d, func() {
		watchdogFired(name, d, rawStacks())
	})
	return func() { timer.Stop() }
}

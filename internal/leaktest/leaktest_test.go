package leaktest

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"imapreduce/internal/transport"
)

// recordTB captures Errorf calls so the checker's failure path can be
// asserted without failing the real test. Unimplemented testing.TB
// methods panic via the embedded nil interface — the checker only needs
// Errorf and Name.
type recordTB struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recordTB) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}

func (r *recordTB) Name() string { return "recordTB" }

// parkedGoroutine blocks until released; the function name is what the
// leak report (and the IgnoreFunc filter) must find in the stack.
func parkedGoroutine(release <-chan struct{}, started chan<- struct{}) {
	started <- struct{}{}
	<-release
}

func TestCheckCatchesSeededLeak(t *testing.T) {
	rec := &recordTB{}
	check := Check(rec, Timeout(300*time.Millisecond))

	release := make(chan struct{})
	started := make(chan struct{})
	go parkedGoroutine(release, started)
	<-started
	defer close(release)

	check()
	if !rec.failed {
		t.Fatal("checker did not report the deliberately leaked goroutine")
	}
	if !strings.Contains(rec.msg, "parkedGoroutine") {
		t.Fatalf("leak report does not name the leaked function:\n%s", rec.msg)
	}
}

func TestCheckIgnoreFuncSuppresses(t *testing.T) {
	rec := &recordTB{}
	check := Check(rec, Timeout(300*time.Millisecond), IgnoreFunc("parkedGoroutine"))

	release := make(chan struct{})
	started := make(chan struct{})
	go parkedGoroutine(release, started)
	<-started
	defer close(release)

	check()
	if rec.failed {
		t.Fatalf("filtered goroutine was still reported:\n%s", rec.msg)
	}
}

// TestCheckCleanRun is the green path: a test that starts and joins its
// goroutines passes a plain check (this runs under -race in CI).
func TestCheckCleanRun(t *testing.T) {
	defer Check(t)()
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// TestTransportFilter exercises the documented use case: a
// deliberately open TCPNetwork keeps its acceptor, reader, and inbox
// pumps alive, the filter list suppresses exactly those, and once the
// network is closed a plain unfiltered check passes — proving Close
// joins every transport goroutine.
func TestTransportFilter(t *testing.T) {
	recFiltered := &recordTB{}
	filtered := Check(recFiltered, Timeout(2*time.Second),
		IgnoreFunc("(*tcpEndpoint).accept"),
		IgnoreFunc("(*tcpEndpoint).readLoop"),
		IgnoreFunc("(*inbox).pump"))
	recBare := &recordTB{}
	bare := Check(recBare, Timeout(300*time.Millisecond))
	afterClose := Check(t, Timeout(5*time.Second))

	net := transport.NewTCPNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", transport.Message{Kind: "ping"}); err != nil {
		t.Fatal(err)
	}
	<-b.Recv()

	filtered()
	if recFiltered.failed {
		t.Fatalf("filter list did not suppress the transport goroutines:\n%s", recFiltered.msg)
	}
	bare()
	if !recBare.failed {
		t.Fatal("unfiltered check passed while the network was open — the control is broken")
	}
	if !strings.Contains(recBare.msg, "readLoop") {
		t.Fatalf("unfiltered report does not show the connection reader:\n%s", recBare.msg)
	}

	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	afterClose()
}

func TestWatchdogFires(t *testing.T) {
	fired := make(chan []byte, 1)
	oldFired := watchdogFired
	watchdogFired = func(name string, d time.Duration, stacks []byte) {
		fired <- stacks
	}
	defer func() { watchdogFired = oldFired }()

	stop := Watchdog(t, 20*time.Millisecond)
	defer stop()

	select {
	case dump := <-fired:
		if !strings.Contains(string(dump), "TestWatchdogFires") {
			t.Fatalf("watchdog dump does not include the hung test's stack:\n%s", dump)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not fire")
	}
}

func TestWatchdogStopped(t *testing.T) {
	fired := make(chan []byte, 1)
	oldFired := watchdogFired
	watchdogFired = func(name string, d time.Duration, stacks []byte) {
		fired <- stacks
	}
	defer func() { watchdogFired = oldFired }()

	stop := Watchdog(t, 20*time.Millisecond)
	stop()

	select {
	case <-fired:
		t.Fatal("stopped watchdog fired anyway")
	case <-time.After(100 * time.Millisecond):
	}
}

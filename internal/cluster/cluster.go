// Package cluster describes the machines an engine run executes on: how
// many workers, their relative speeds (for heterogeneity experiments),
// task slot counts, and the scheduling overheads that emulate
// Hadoop-style job and task launch costs.
//
// The engines run workers as goroutines, so "a node" here is a named
// execution context with a speed factor, not an OS process; the TCP
// transport can still put real sockets between them.
package cluster

import (
	"fmt"
	"time"
)

// Node is one worker machine.
type Node struct {
	// ID names the node; it doubles as the DFS datanode name and the
	// transport address.
	ID string
	// Speed is the relative CPU speed (1.0 = nominal). Values below 1
	// stretch compute phases, emulating the heterogeneous EC2 hardware
	// the paper's load balancer targets.
	Speed float64

	// CrashAfter, when positive, schedules a self-announced crash: the
	// engine injects a worker failure (as FailWorker does) this long
	// after a run starts. Chaos-schedule knob for fault-tolerance
	// experiments.
	CrashAfter time.Duration
	// StallAfter/StallFor, when both positive, schedule an *undetected*
	// hang: StallAfter into a run, every task bound to this node freezes
	// for StallFor — no crash report, no heartbeats — so only
	// heartbeat-based detection can notice. Models GC pauses, swap
	// storms, and partial failures.
	StallAfter time.Duration
	StallFor   time.Duration
}

// Spec configures a cluster for one engine run.
type Spec struct {
	Nodes []Node
	// MapSlots and ReduceSlots bound concurrently executing tasks per
	// worker. Hadoop's default, which the paper cites, is two of each.
	MapSlots    int
	ReduceSlots int
	// JobInitOverhead is charged once per submitted MapReduce job
	// (scheduling, setup, cleanup). This is the cost iMapReduce's
	// one-time initialization eliminates for iterations 2..n.
	JobInitOverhead time.Duration
	// TaskStartOverhead is charged when a task process is launched
	// (Hadoop's per-task JVM start). Persistent tasks pay it once.
	TaskStartOverhead time.Duration
}

// Uniform returns a spec with n equally fast workers named worker-0..n-1
// and Hadoop-like defaults (2 map + 2 reduce slots).
func Uniform(n int) Spec {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: fmt.Sprintf("worker-%d", i), Speed: 1.0}
	}
	return Spec{Nodes: nodes, MapSlots: 2, ReduceSlots: 2}
}

// Heterogeneous returns a spec where node i runs at speeds[i] relative
// speed.
func Heterogeneous(speeds []float64) Spec {
	s := Uniform(len(speeds))
	for i, f := range speeds {
		s.Nodes[i].Speed = f
	}
	return s
}

// IDs lists node IDs in order.
func (s Spec) IDs() []string {
	ids := make([]string, len(s.Nodes))
	for i, n := range s.Nodes {
		ids[i] = n.ID
	}
	return ids
}

// SpeedOf returns the speed factor of node id (1.0 if unknown).
func (s Spec) SpeedOf(id string) float64 {
	for _, n := range s.Nodes {
		if n.ID == id {
			if n.Speed <= 0 {
				return 1.0
			}
			return n.Speed
		}
	}
	return 1.0
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	seen := make(map[string]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		if n.ID == "" {
			return fmt.Errorf("cluster: empty node ID")
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		seen[n.ID] = true
	}
	if s.MapSlots <= 0 || s.ReduceSlots <= 0 {
		return fmt.Errorf("cluster: slots must be positive (map=%d reduce=%d)", s.MapSlots, s.ReduceSlots)
	}
	return nil
}

// StretchFor converts a nominal compute duration into the wall time it
// takes on node id, given its speed factor.
func (s Spec) StretchFor(id string, d time.Duration) time.Duration {
	sp := s.SpeedOf(id)
	return time.Duration(float64(d) / sp)
}

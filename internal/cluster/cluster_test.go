package cluster

import (
	"testing"
	"time"
)

func TestUniform(t *testing.T) {
	s := Uniform(4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 4 || s.MapSlots != 2 || s.ReduceSlots != 2 {
		t.Fatalf("bad spec: %+v", s)
	}
	ids := s.IDs()
	if ids[0] != "worker-0" || ids[3] != "worker-3" {
		t.Fatalf("ids: %v", ids)
	}
	for _, n := range s.Nodes {
		if n.Speed != 1.0 {
			t.Fatalf("speed: %f", n.Speed)
		}
	}
}

func TestHeterogeneous(t *testing.T) {
	s := Heterogeneous([]float64{1, 0.5, 2})
	if s.SpeedOf("worker-1") != 0.5 || s.SpeedOf("worker-2") != 2 {
		t.Fatal("speeds not applied")
	}
	if s.SpeedOf("unknown") != 1.0 {
		t.Fatal("unknown node should default to 1.0")
	}
}

func TestStretchFor(t *testing.T) {
	s := Heterogeneous([]float64{0.5})
	if got := s.StretchFor("worker-0", time.Second); got != 2*time.Second {
		t.Fatalf("stretch = %v", got)
	}
	if got := s.StretchFor("ghost", time.Second); got != time.Second {
		t.Fatalf("unknown node stretch = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err == nil {
		t.Fatal("empty spec should fail")
	}
	s := Uniform(2)
	s.Nodes[1].ID = s.Nodes[0].ID
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate id should fail")
	}
	s = Uniform(2)
	s.MapSlots = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero slots should fail")
	}
	s = Uniform(1)
	s.Nodes[0].ID = ""
	if err := s.Validate(); err == nil {
		t.Fatal("empty id should fail")
	}
}

func TestZeroSpeedTreatedAsNominal(t *testing.T) {
	s := Spec{Nodes: []Node{{ID: "a", Speed: 0}}, MapSlots: 1, ReduceSlots: 1}
	if s.SpeedOf("a") != 1.0 {
		t.Fatal("zero speed should default to 1.0")
	}
}

package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadOptions tunes LoadPackages.
type LoadOptions struct {
	// Tests includes _test.go files (excluded by default: the invariants
	// guard production code, and tests deliberately exercise bad
	// patterns).
	Tests bool
}

// ModulePath reads the module path from the go.mod at or above dir,
// returning the module path and the module root directory.
func ModulePath(dir string) (string, string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadPackages parses every Go package under each pattern into lint
// Packages. A pattern is a directory, or a directory suffixed with
// "/..." for a recursive walk. Directories named testdata, vendor, or
// starting with "." or "_" are skipped, matching the go tool's rules.
// File paths in findings are reported relative to the module root.
func LoadPackages(patterns []string, opts LoadOptions) ([]*Package, error) {
	modPath, modRoot, err := ModulePath(".")
	if err != nil {
		return nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		pat = filepath.Clean(pat)
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		if !rec {
			dirs[pat] = true
			continue
		}
		err = filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := loadDir(dir, modPath, modRoot, opts)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir parses one directory into a Package (nil when it holds no
// eligible Go files).
func loadDir(dir, modPath, modRoot string, opts LoadOptions) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !opts.Tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		display := path
		if abs, err := filepath.Abs(path); err == nil {
			if rel, err := filepath.Rel(modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
				display = rel
			}
		}
		af, err := parser.ParseFile(fset, display, mustRead(path), parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, &File{Name: display, AST: af})
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkgPath := modPath
	if abs, err := filepath.Abs(dir); err == nil {
		if rel, err := filepath.Rel(modRoot, abs); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files}, nil
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // surfaces as a parse error with the right file name
	}
	return data
}

// ParseSource builds a single-file Package from in-memory source — the
// fixture tests and documentation examples use it.
func ParseSource(pkgPath, fileName, src string) (*Package, error) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, fileName, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &Package{Path: pkgPath, Fset: fset, Files: []*File{{Name: fileName, AST: af}}}, nil
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LoadOptions tunes LoadPackages.
type LoadOptions struct {
	// Tests includes _test.go files (excluded by default: the invariants
	// guard production code, and tests deliberately exercise bad
	// patterns).
	Tests bool
}

// ModulePath reads the module path from the go.mod at or above dir,
// returning the module path and the module root directory.
func ModulePath(dir string) (string, string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ---- shared type-checking environment ----
//
// All parsing and type checking in one process shares a single FileSet
// (so cross-package positions compare and render uniformly) and a
// single gc-export-data importer (so the stdlib is loaded once).
// Packages of the analyzed module are checked from source, in import
// order, so their objects are shared across packages — the module-wide
// analyzers (call graph, lock order, protocol exhaustiveness) depend on
// that identity. Everything else — the stdlib, and real module packages
// imported by test fixtures — is resolved from compiled export data
// located via `go list -export`.

// typeEnv is the process-wide parse/type-check environment.
type typeEnv struct {
	fset *token.FileSet
	exp  *exportData
	gc   types.Importer
}

var (
	envOnce sync.Once
	env     *typeEnv
)

func sharedEnv() *typeEnv {
	envOnce.Do(func() {
		_, root, err := ModulePath(".")
		if err != nil {
			root = "."
		}
		fset := token.NewFileSet()
		exp := &exportData{root: root, files: map[string]string{}}
		env = &typeEnv{fset: fset, exp: exp, gc: importer.ForCompiler(fset, "gc", exp.lookup)}
	})
	return env
}

// exportData locates compiled export data for packages outside the
// source set being checked, by asking the go tool. The first lookup
// preloads the whole module's dependency graph in one `go list` run;
// anything not covered (a fixture importing a package the module does
// not) is resolved with a per-package run.
type exportData struct {
	mu        sync.Mutex
	root      string
	preloaded bool
	files     map[string]string // import path -> export file ("" = known absent)
}

func (e *exportData) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.preloaded {
		e.preloaded = true
		e.list("-deps", "./...") // best effort; per-package lookups cover the rest
	}
	f, ok := e.files[path]
	if !ok {
		e.list(path)
		f = e.files[path]
	}
	if f == "" {
		return nil, fmt.Errorf("lint: no compiled export data for %q", path)
	}
	return os.Open(f)
}

// list runs `go list -export` with the given arguments and records the
// reported export files. Errors are swallowed: a missing entry simply
// stays unresolvable and surfaces as a type-check import error.
func (e *exportData) list(args ...string) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, args...)...)
	cmd.Dir = e.root
	out, err := cmd.Output()
	if err != nil {
		for _, a := range args {
			if !strings.HasPrefix(a, "-") {
				if _, known := e.files[a]; !known {
					e.files[a] = ""
				}
			}
		}
		return
	}
	for _, line := range strings.Split(string(out), "\n") {
		p, f, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if ok && p != "" {
			e.files[p] = f
		}
	}
}

// moduleImporter resolves imports during a type check: packages already
// checked from source win (shared object identity across the module);
// everything else falls back to compiled export data.
type moduleImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.checked[path]; p != nil {
		return p, nil
	}
	return m.gc.Import(path)
}

// newInfo allocates the types.Info maps the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// typeCheck checks one package's parsed files. checked maps already
// type-checked source packages by import path; type errors are
// collected, not fatal — the caller decides how strict to be (the
// module load treats them as load failures, fixtures tolerate them and
// the analyzers degrade to syntactic matching where info is missing).
func typeCheck(te *typeEnv, pkgPath string, files []*File, checked map[string]*types.Package) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: &moduleImporter{checked: checked, gc: te.gc},
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := newInfo()
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	tpkg, _ := conf.Check(pkgPath, te.fset, asts, info)
	return tpkg, info, errs
}

// LoadPackages parses and type-checks every Go package under each
// pattern into lint Packages. A pattern is a directory, or a directory
// suffixed with "/..." for a recursive walk. Directories named
// testdata, vendor, or starting with "." or "_" are skipped, matching
// the go tool's rules. File paths in findings are reported relative to
// the module root.
//
// Packages are checked from source in dependency order, so a loaded
// package's objects are identical to those its loaded importers see;
// module packages imported but not matched by any pattern resolve from
// compiled export data instead (no doc comments, so e.g. deprecation
// facts about them are invisible — run over ./... for the full view).
// Type-check errors are load errors: the analyzers' typed facts are
// meaningless on code that does not compile.
func LoadPackages(patterns []string, opts LoadOptions) ([]*Package, error) {
	modPath, modRoot, err := ModulePath(".")
	if err != nil {
		return nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		pat = filepath.Clean(pat)
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		if !rec {
			dirs[pat] = true
			continue
		}
		err = filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := parseDir(dir, modPath, modRoot, opts)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if err := checkInOrder(pkgs, modPath); err != nil {
		return nil, err
	}
	return pkgs, nil
}

// checkInOrder type-checks the parsed packages in intra-module import
// order and fails on any type error.
func checkInOrder(pkgs []*Package, modPath string) error {
	te := sharedEnv()
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	checked := map[string]*types.Package{}
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var allErrs []error
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return // cycles are a type error the checker reports itself
		}
		state[p.Path] = 1
		for _, f := range p.Files {
			for _, imp := range f.AST.Imports {
				ipath, _ := stringLit(imp.Path)
				if dep := byPath[ipath]; dep != nil && (ipath == modPath || strings.HasPrefix(ipath, modPath+"/")) {
					visit(dep)
				}
			}
		}
		tpkg, info, errs := typeCheck(te, p.Path, p.Files, checked)
		p.Types, p.Info, p.TypeErrors = tpkg, info, errs
		checked[p.Path] = tpkg
		allErrs = append(allErrs, errs...)
		state[p.Path] = 2
	}
	for _, p := range pkgs {
		visit(p)
	}
	if len(allErrs) > 0 {
		const max = 8
		msgs := make([]string, 0, max+1)
		for i, e := range allErrs {
			if i == max {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(allErrs)-max))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("lint: type check failed:\n\t%s", strings.Join(msgs, "\n\t"))
	}
	return nil
}

// parseDir parses one directory into a Package (nil when it holds no
// eligible Go files). Type checking happens later, in import order.
func parseDir(dir, modPath, modRoot string, opts LoadOptions) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := sharedEnv().fset
	var files []*File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !opts.Tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		display := path
		if abs, err := filepath.Abs(path); err == nil {
			if rel, err := filepath.Rel(modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
				display = rel
			}
		}
		af, err := parser.ParseFile(fset, display, mustRead(path), parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, &File{Name: display, AST: af})
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkgPath := modPath
	if abs, err := filepath.Abs(dir); err == nil {
		if rel, err := filepath.Rel(modRoot, abs); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files}, nil
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // surfaces as a parse error with the right file name
	}
	return data
}

// ParseSource builds a single-file Package from in-memory source — the
// fixture tests and documentation examples use it. The file is
// type-checked leniently: imports (the stdlib, or real module packages
// via their compiled export data) resolve, unresolved names are
// tolerated, and analyzers fall back to syntactic matching where type
// information is missing. Type errors are recorded on the returned
// Package, not fatal.
func ParseSource(pkgPath, fileName, src string) (*Package, error) {
	te := sharedEnv()
	af, err := parser.ParseFile(te.fset, fileName, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: pkgPath, Fset: te.fset, Files: []*File{{Name: fileName, AST: af}}}
	pkg.Types, pkg.Info, pkg.TypeErrors = typeCheck(te, pkgPath, pkg.Files, nil)
	return pkg, nil
}

// LoadFixtureDir parses every .go file of one fixture directory as a
// single package under the given import path, with the same lenient
// type checking as ParseSource. Fixture files may import the stdlib and
// real module packages; local stand-in types work too.
func LoadFixtureDir(pkgPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	te := sharedEnv()
	var files []*File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		path := filepath.Join(dir, name)
		af, err := parser.ParseFile(te.fset, path, mustRead(path), parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, &File{Name: path, AST: af})
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	pkg := &Package{Path: pkgPath, Fset: te.fset, Files: files}
	pkg.Types, pkg.Info, pkg.TypeErrors = typeCheck(te, pkgPath, pkg.Files, nil)
	return pkg, nil
}

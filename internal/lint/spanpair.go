package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanPair flags trace spans opened with Begin that can be left open:
// a Pending that is never ended, discarded outright, or not ended on an
// early-return path and not closed by a defer. An unpaired 'B' event
// corrupts the factor decomposition (decompose.go pairs B/E by ID and
// drops orphans silently), so a leak here shows up as missing coverage
// in Fig-10 plots rather than as an error — exactly the kind of bug a
// human review misses.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc: "every trace span Begin must have a matching End on all paths of " +
		"the function (use defer p.End() when early returns exist)",
	Run: runSpanPair,
}

func runSpanPair(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fb := range functionBodies(f.AST) {
			checkSpanPairs(pass, fb)
		}
	}
}

// pendingSpan tracks one `x := tr.Begin(...)` assignment in a function.
type pendingSpan struct {
	name     string
	beginPos token.Pos
	deferred bool        // defer x.End() (directly or in a deferred closure)
	ends     []token.Pos // non-deferred x.End() call sites
}

func checkSpanPairs(pass *Pass, fb funcBody) {
	spans := map[string]*pendingSpan{}
	var order []*pendingSpan

	// Pass 1: collect Begin assignments, End calls, and discarded
	// Begins.
	walkShallow(fb.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBeginCall(pass.Pkg.Info, call) || i >= len(st.Lhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"result of %s discarded in %s; the span can never be ended",
						exprString(call.Fun), fb.name)
					continue
				}
				sp := &pendingSpan{name: id.Name, beginPos: call.Pos()}
				spans[id.Name] = sp
				order = append(order, sp)
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if recv, name, ok := selectorCall(call); ok {
					if isBeginCall(pass.Pkg.Info, call) {
						pass.Reportf(call.Pos(),
							"result of %s discarded in %s; the span can never be ended",
							exprString(call.Fun), fb.name)
					} else if name == "End" {
						if sp := spans[recv]; sp != nil {
							sp.ends = append(sp.ends, call.Pos())
						}
					}
				}
			}
		case *ast.DeferStmt:
			// defer x.End(), or defer func() { ...; x.End(); ... }().
			if recv, name, ok := selectorCall(st.Call); ok && name == "End" {
				if sp := spans[recv]; sp != nil {
					sp.deferred = true
				}
			}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if recv, name, ok := selectorCall(call); ok && name == "End" {
							if sp := spans[recv]; sp != nil {
								sp.deferred = true
							}
						}
					}
					return true
				})
			}
		}
		return true
	})

	// Pass 2: verify each span.
	for _, sp := range order {
		if sp.deferred {
			continue
		}
		if len(sp.ends) == 0 {
			pass.Reportf(sp.beginPos,
				"span %s opened in %s is never ended; call %s.End() or defer it",
				sp.name, fb.name, sp.name)
			continue
		}
		lastEnd := sp.ends[len(sp.ends)-1]
		for _, e := range sp.ends {
			if e > lastEnd {
				lastEnd = e
			}
		}
		// Any return between Begin and the final End leaves the span
		// open unless its own block already ended it.
		walkShallow(fb.body, func(n ast.Node) bool {
			if blk, ok := n.(*ast.BlockStmt); ok {
				checkReturnsInBlock(pass, fb, sp, blk, lastEnd)
			}
			return true
		})
	}
}

// checkReturnsInBlock reports returns inside blk that happen after
// sp.beginPos but before the function's final End of sp, when no End of
// sp precedes the return within this same block.
func checkReturnsInBlock(pass *Pass, fb funcBody, sp *pendingSpan, blk *ast.BlockStmt, lastEnd token.Pos) {
	endedHere := false
	for _, s := range blk.List {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if recv, name, ok := selectorCall(call); ok && name == "End" && recv == sp.name {
					endedHere = true
				}
			}
		case *ast.ReturnStmt:
			if st.Pos() > sp.beginPos && st.Pos() < lastEnd && !endedHere {
				pass.Reportf(st.Pos(),
					"return leaves span %s (opened at line %d) unended in %s; end it before returning or use defer %s.End()",
					sp.name, pass.Pkg.Fset.Position(sp.beginPos).Line, fb.name, sp.name)
			}
		}
	}
}

// isBeginCall reports whether call is <expr>.Begin(...) opening a span.
// When the callee resolves, it must return exactly one value — the
// Pending. A database-style `tx, err := db.Begin()` (two results) is a
// transaction, not a trace span, and is exempt.
func isBeginCall(info *types.Info, call *ast.CallExpr) bool {
	recv, name, ok := selectorCall(call)
	if !ok || recv == "" || name != "Begin" {
		return false
	}
	if callee := calleeOf(info, call); callee != nil {
		sig, ok := callee.Type().(*types.Signature)
		return ok && sig.Results().Len() == 1
	}
	return true
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDeterminism guards the reproducibility of the simulator and the
// seeded chaos soak: internal/sim, internal/simcluster, and the soak
// scheduling in internal/experiments must produce bit-identical results
// from a seed alone. Three leak paths are flagged:
//
//   - wall-clock reads (time.Now / time.Since / time.Until) — a value
//     derived from the host clock differs between runs. Sleeping and
//     timers are allowed: they pace a real engine without feeding
//     nondeterministic values into results.
//   - the global math/rand source (rand.Intn, rand.Float64, ...) —
//     only rand.New(rand.NewSource(seed)) keeps the stream replayable.
//   - iteration over a map while accumulating ordered output (append or
//     channel send in the loop body) — Go randomizes map order per run.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "no wall-clock reads, global math/rand source, or map-iteration-" +
		"ordered output in the simulator and soak scheduling (seeded runs " +
		"must be bit-reproducible)",
	Match: func(pkgPath, fileBase string) bool {
		switch {
		case strings.HasSuffix(pkgPath, "internal/sim"),
			strings.HasSuffix(pkgPath, "internal/simcluster"):
			return true
		case strings.HasSuffix(pkgPath, "internal/experiments"):
			// Only the seeded soak scheduler; the other experiment files
			// time real engine runs and legitimately read the clock.
			return fileBase == "soak.go"
		}
		return false
	},
	Run: runSimDeterminism,
}

// wallClockFuncs are the time package functions that read the host
// clock into a value.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandCtors are the math/rand functions allowed in deterministic
// code: constructors for an explicitly seeded source.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true}

func runSimDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		timeName := importName(f.AST, "time")
		randName := importName(f.AST, "math/rand")
		if randName == "" {
			randName = importName(f.AST, "math/rand/v2")
		}

		ast.Inspect(f.AST, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				// Typed path: resolve the callee and classify by package,
				// which also catches dot-imports and renamed imports the
				// name match below would miss.
				if callee := calleeOf(pass.Pkg.Info, call); callee != nil {
					checkDeterministicCallee(pass, call, callee)
					return true
				}
				recv, name, ok := selectorCall(call)
				if !ok {
					return true
				}
				if timeName != "" && recv == timeName && wallClockFuncs[name] {
					pass.Reportf(call.Pos(),
						"%s.%s reads the wall clock; seeded simulation/soak code must derive every value from the seed",
						recv, name)
				}
				if randName != "" && recv == randName && !seededRandCtors[name] {
					pass.Reportf(call.Pos(),
						"%s.%s uses the global math/rand source; use a local rand.New(rand.NewSource(seed)) so the run replays from its seed",
						recv, name)
				}
			}
			return true
		})

		checkMapRangeOrder(pass, f.AST)
	}
}

// checkDeterministicCallee is the typed half of the clock/rand check:
// the resolved callee tells us the true package regardless of how it
// was imported. Methods on *rand.Rand are fine — a Rand is built from
// an explicit source; only the package-level (global-source) functions
// leak nondeterminism.
func checkDeterministicCallee(pass *Pass, call *ast.CallExpr, callee *types.Func) {
	full := callee.FullName()
	if full == "time.Now" || full == "time.Since" || full == "time.Until" {
		pass.Reportf(call.Pos(),
			"%s reads the wall clock; seeded simulation/soak code must derive every value from the seed",
			full)
		return
	}
	pkg := callee.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // method on an explicitly seeded *rand.Rand
	}
	if seededRandCtors[callee.Name()] {
		return
	}
	pass.Reportf(call.Pos(),
		"%s uses the global math/rand source; use a local rand.New(rand.NewSource(seed)) so the run replays from its seed",
		exprString(call.Fun))
}

// checkMapRangeOrder flags `for k := range m` over a map — resolved
// through type information when available, with the PR-5 syntactic
// name tracking as fallback — when the loop body accumulates ordered
// output (append or a channel send): Go randomizes map iteration order
// per process, so the accumulated sequence differs between runs. The
// one sanctioned shape — appending into a slice that is later passed
// to a sort.* or slices.* call in the same function (collect keys,
// sort, iterate sorted) — is exempt.
func checkMapRangeOrder(pass *Pass, f *ast.File) {
	for _, fb := range functionBodies(f) {
		maps := knownMapVars(fb)
		sorted := sortedVars(fb)
		walkShallow(fb.body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			isMap := false
			if t := exprType(pass.Pkg.Info, rng.X); t != nil {
				_, isMap = types.Unalias(t).Underlying().(*types.Map)
			} else if id, ok := rng.X.(*ast.Ident); ok && maps[id.Name] {
				isMap = true
			}
			if !isMap {
				return true
			}
			if node, kind, target, found := orderedAccumulation(rng.Body); found {
				if kind == "append" && target != "" && sorted[target] {
					return true
				}
				pass.Reportf(node.Pos(),
					"%s inside range over map %s produces map-iteration-ordered output; iterate a sorted key slice instead",
					kind, exprString(rng.X))
			}
			return true
		})
	}
}

// orderedAccumulation finds an append call or channel send in body.
// target is the slice appended to when it is a plain identifier.
func orderedAccumulation(body *ast.BlockStmt) (pos ast.Node, kind, target string, found bool) {
	var hit ast.Node
	var what, tgt string
	walkShallow(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
				hit, what = x, "append"
				if len(x.Args) > 0 {
					if slice, ok := x.Args[0].(*ast.Ident); ok {
						tgt = slice.Name
					}
				}
				return false
			}
		case *ast.SendStmt:
			hit, what = x, "channel send"
			return false
		}
		return true
	})
	if hit == nil {
		return nil, "", "", false
	}
	return hit, what, tgt, true
}

// sortedVars collects identifiers passed to a sort.* or slices.* call
// anywhere in the function: appending map keys into a slice sorted
// afterwards is the sanctioned fix for map-order dependence, not a bug.
func sortedVars(fb funcBody) map[string]bool {
	out := map[string]bool{}
	walkShallow(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, _, ok := selectorCall(call)
		if !ok || (recv != "sort" && recv != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// knownMapVars collects identifiers whose map-ness is syntactically
// certain within fb: parameters declared with a map type, var
// declarations of map type, and := assignments from make(map...) or a
// map composite literal.
func knownMapVars(fb funcBody) map[string]bool {
	out := map[string]bool{}
	if fb.params != nil {
		for _, field := range fb.params.List {
			if _, isMap := field.Type.(*ast.MapType); isMap {
				for _, name := range field.Names {
					out[name.Name] = true
				}
			}
		}
	}
	walkShallow(fb.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch r := rhs.(type) {
				case *ast.CallExpr:
					if fi, ok := r.Fun.(*ast.Ident); ok && fi.Name == "make" && len(r.Args) > 0 {
						if _, isMap := r.Args[0].(*ast.MapType); isMap {
							out[id.Name] = true
						}
					}
				case *ast.CompositeLit:
					if _, isMap := r.Type.(*ast.MapType); isMap {
						out[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if _, isMap := vs.Type.(*ast.MapType); isMap {
						for _, name := range vs.Names {
							out[name.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

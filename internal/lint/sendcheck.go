package lint

import (
	"go/ast"
	"go/types"
)

// SendCheck flags silently discarded error results of the calls that
// feed the retry and rollback machinery: transport Send/ReliableSend
// (and the engine's sendReliable wrapper), and DFS WriteFile/Rename.
// Every one of these errors is load-bearing — Send errors are how the
// FaultyNetwork surfaces drops and how TCP surfaces dead connections,
// and WriteFile/Rename errors gate the checkpoint commit protocol.
//
// A bare call statement discards the error invisibly and is flagged. An
// explicit `_ = ep.Send(...)` is allowed: it is the project's visible
// "loss is tolerated here" marker (shutdown races, counted-and-dropped
// frames) and every such site is expected to say why in a comment.
var SendCheck = &Analyzer{
	Name: "sendcheck",
	Doc: "error results of Send/ReliableSend/sendReliable and DFS " +
		"WriteFile/Rename must not be silently discarded (assign to _ " +
		"explicitly when loss is tolerated)",
	Run: runSendCheck,
}

// checkedCallNames are the callee names whose error result must be
// consumed or explicitly discarded.
var checkedCallNames = map[string]bool{
	"Send":         true,
	"ReliableSend": true,
	"sendReliable": true,
	"WriteFile":    true,
	"Rename":       true,
}

func runSendCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				c, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				call, how = c, "discarded"
			case *ast.GoStmt:
				call, how = st.Call, "discarded by go statement"
			case *ast.DeferStmt:
				call, how = st.Call, "discarded by defer"
			default:
				return true
			}
			recv, name, ok := selectorCall(call)
			if !ok || !checkedCallNames[name] {
				return true
			}
			// Typed gate: the callee must actually return an error, and
			// WriteFile/Rename must be methods — os.WriteFile and os.Rename
			// are not the DFS commit path this analyzer guards.
			if callee := calleeOf(pass.Pkg.Info, call); callee != nil {
				if !lastResultIsError(callee) {
					return true
				}
				if name == "WriteFile" || name == "Rename" {
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() == nil {
						return true
					}
				}
			} else if resolvedCall(pass.Pkg.Info, call) {
				return true
			}
			target := name
			if recv != "" {
				target = recv + "." + name
			}
			pass.Reportf(call.Pos(),
				"error result of %s %s; handle it or write `_ = %s(...)` with a reason",
				target, how, target)
			return true
		})
	}
}

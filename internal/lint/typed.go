package lint

import (
	"go/ast"
	"go/types"
)

// ---- shared typed helpers ----
//
// Every analyzer degrades gracefully: when Info is nil or an expression
// did not resolve (lenient fixture checking tolerates unresolved
// stand-ins), the helpers return nil/false and the caller falls back to
// the PR-5 syntactic matching. On module code loaded by LoadPackages
// resolution is total, so the typed facts are authoritative there.

// calleeOf resolves the static callee of a call: a declared function,
// a method (including one promoted through embedding), or an interface
// method. Nil for indirect calls through function values, conversions,
// and unresolved names.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// resolvedCall reports whether the call's callee position resolves to
// any object at all — false when the fixture's lenient check left it
// dangling, which is the signal to use the syntactic fallback.
func resolvedCall(info *types.Info, call *ast.CallExpr) bool {
	if info == nil {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, ok := info.Uses[fun]
		if !ok {
			_, ok = info.Defs[fun]
		}
		return ok
	case *ast.SelectorExpr:
		_, ok := info.Uses[fun.Sel]
		return ok
	}
	return true // indirect calls are always "resolved" (to no Func)
}

// namedOf unwraps pointers and aliases down to the defined type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeName returns the defined type's bare name behind t ("" when t is
// not a defined type).
func typeName(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// typePkgPath returns the import path of the package declaring the
// defined type behind t ("" for unnamed and universe types).
func typePkgPath(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// lastResultIsError reports whether f's final result is an error.
func lastResultIsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

// firstParamIs reports whether f's first parameter satisfies pred.
func firstParamIs(f *types.Func, pred func(types.Type) bool) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return pred(sig.Params().At(0).Type())
}

// isBasicString reports whether t is the plain (possibly untyped)
// string type — not a defined string type like trace.Kind.
func isBasicString(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "Context" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// exprType returns the resolved type of e, or nil.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if info == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// usedObject resolves an identifier or selector expression to the
// object it refers to, or nil.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	if info == nil {
		return nil
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// funcDeclsOf yields every *ast.FuncDecl of the package together with
// its defined *types.Func (nil when unresolved) and enclosing file.
type declFunc struct {
	file *File
	decl *ast.FuncDecl
	obj  *types.Func
}

func funcDeclsOf(pkg *Package) []declFunc {
	var out []declFunc
	for _, f := range pkg.Files {
		for _, d := range f.AST.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var obj *types.Func
			if pkg.Info != nil {
				obj, _ = pkg.Info.Defs[fd.Name].(*types.Func)
			}
			out = append(out, declFunc{file: f, decl: fd, obj: obj})
		}
	}
	return out
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ---- module-wide call graph ----
//
// A deliberately lightweight substrate: static calls only (identifier
// and selector callees resolved through types.Info), attributed to the
// enclosing declared function. Function-literal bodies count as part of
// their declaring function — a closure or deferred cleanup runs on the
// caller's goroutine — EXCEPT the body of a `go func(){...}()`: a
// spawned goroutine neither blocks its spawner nor holds its locks, so
// its calls and channel operations are not the spawner's. Indirect
// calls through function values and unresolved names produce no edge;
// consumers must treat the graph as may-call, not must-call.

// callGraph maps each declared function of the module to the functions
// it may call, plus the facts the flow analyzers derive from it.
type callGraph struct {
	mod     *Module
	decls   map[*types.Func]declFunc
	pkgOf   map[*types.Func]*Package
	callees map[*types.Func]map[*types.Func]bool

	blockingOnce bool
	blocking     map[*types.Func]bool
}

// buildCallGraph walks every declared function of every loaded package.
func buildCallGraph(mod *Module) *callGraph {
	cg := &callGraph{
		mod:     mod,
		decls:   map[*types.Func]declFunc{},
		pkgOf:   map[*types.Func]*Package{},
		callees: map[*types.Func]map[*types.Func]bool{},
	}
	for _, pkg := range mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, df := range funcDeclsOf(pkg) {
			if df.obj == nil {
				continue
			}
			cg.decls[df.obj] = df
			cg.pkgOf[df.obj] = pkg
			set := map[*types.Func]bool{}
			walkCallerScope(df.decl.Body, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := calleeOf(pkg.Info, call); callee != nil {
						set[callee] = true
					}
				}
			})
			cg.callees[df.obj] = set
		}
	}
	return cg
}

// walkCallerScope visits every node that executes on the declaring
// function's goroutine: the whole body, including function literals
// (called, deferred, or stored), but not the bodies of go-statement
// literals and not the callee of `go f()` (the spawned call runs
// elsewhere; its argument expressions still evaluate here).
func walkCallerScope(body ast.Node, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			for _, a := range g.Call.Args {
				walkCallerScope(a, fn)
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				_ = lit // spawned body: skipped entirely
			} else {
				walkCallerScope(g.Call.Fun, fn)
				// The callee expression is evaluated here, but the call
				// itself happens on the new goroutine — callers looking
				// at CallExpr nodes never see g.Call.
			}
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// blockingFullNames are external functions the flow analyzers treat as
// blocking: unbounded waits and dials. Mutex acquisition is excluded on
// purpose — lock waits are bounded by the holder and are lockorder's
// concern, not ctxflow's.
var blockingFullNames = map[string]bool{
	"time.Sleep":                true,
	"(*sync.WaitGroup).Wait":    true,
	"(*sync.Cond).Wait":         true,
	"net.Dial":                  true,
	"net.DialTimeout":           true,
	"(*net.Dialer).Dial":        true,
	"(net.Listener).Accept":     true,
	"(*net.TCPListener).Accept": true,
}

// blockingFuncs computes, once, the set of declared functions that may
// block: a channel send/receive or select with no default clause in
// caller scope, a receive-range over a channel, a call to a known
// blocking external, or (transitively) a call to another blocking
// function of the module.
func (cg *callGraph) blockingFuncs() map[*types.Func]bool {
	if cg.blockingOnce {
		return cg.blocking
	}
	cg.blockingOnce = true
	cg.blocking = map[*types.Func]bool{}
	for obj, df := range cg.decls {
		pkg := cg.pkgOf[obj]
		if bodyBlocks(pkg.Info, df.decl.Body) {
			cg.blocking[obj] = true
			continue
		}
		for callee := range cg.callees[obj] {
			if blockingFullNames[callee.FullName()] {
				cg.blocking[obj] = true
				break
			}
		}
	}
	// Fixpoint: calling a blocking function blocks.
	for changed := true; changed; {
		changed = false
		for obj := range cg.decls {
			if cg.blocking[obj] {
				continue
			}
			for callee := range cg.callees[obj] {
				if cg.blocking[callee] {
					cg.blocking[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return cg.blocking
}

// bodyBlocks reports whether the body itself contains a blocking
// channel operation in caller scope: a send or receive that is not a
// comm clause of a select with a default, a select without a default,
// or a range over a channel.
func bodyBlocks(info *types.Info, body ast.Node) bool {
	// First collect the comm operations of selects that have a default
	// clause: those are non-blocking by construction.
	nonBlocking := map[ast.Node]bool{}
	walkCallerScope(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return
		}
		nonBlocking[sel] = true
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				nonBlocking[cc.Comm] = true
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					nonBlocking[ast.Node(comm)] = true
				case *ast.ExprStmt:
					nonBlocking[comm.X] = true
				case *ast.AssignStmt:
					for _, r := range comm.Rhs {
						nonBlocking[r] = true
					}
				}
			}
		}
	})
	blocks := false
	walkCallerScope(body, func(n ast.Node) {
		if blocks || nonBlocking[n] {
			return
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			blocks = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blocks = true
			}
		case *ast.SelectStmt:
			blocks = true // selects with default were marked above
		case *ast.RangeStmt:
			if t := exprType(info, x.X); t != nil {
				if _, isChan := types.Unalias(t).Underlying().(*types.Chan); isChan {
					blocks = true
				}
			}
		}
	})
	return blocks
}

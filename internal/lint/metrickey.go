package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricKey flags metric and trace names passed as inline string
// literals instead of the declared constants. A typo'd counter name
// ("send.retires") doesn't fail anything — it silently splits the
// metric into two series, and the experiment harness, the benchmark
// snapshots, and the soak assertions all read the well-known names from
// internal/metrics. The same goes for trace kinds: the decomposition
// sweep matches trace.Kind constants exactly, so a literal kind string
// produces spans no analysis ever sees.
//
// The internal/metrics and internal/trace packages themselves (where
// the constant sets are declared) are exempt.
var MetricKey = &Analyzer{
	Name: "metrickey",
	Doc: "metric counter names (Set.Add/AddSpan/Span/Timed) and trace kinds " +
		"(Recorder.Emit/Begin/RecordSpan) must be the declared constants, " +
		"not inline string literals",
	Match: func(pkgPath, fileBase string) bool {
		return !strings.HasSuffix(pkgPath, "internal/metrics") &&
			!strings.HasSuffix(pkgPath, "internal/trace")
	},
	Run: runMetricKey,
}

// metricNameMethods take a metric name as their first argument.
var metricNameMethods = map[string]bool{
	"Add":     true,
	"AddSpan": true,
	"Span":    true,
	"Timed":   true,
}

// traceKindMethods take a trace.Kind as their first argument.
var traceKindMethods = map[string]bool{
	"Emit":       true,
	"Begin":      true,
	"RecordSpan": true,
}

func runMetricKey(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := selectorCall(call)
			if !ok || recv == "" || len(call.Args) == 0 {
				return true
			}
			// Typed gates: a resolved callee must have the shape of the
			// real API — metric methods take a plain string name first,
			// trace methods take a defined Kind first. Same-named methods
			// elsewhere (wg.Add, logger.Emit(msg string)) are exempt.
			callee := calleeOf(pass.Pkg.Info, call)
			switch {
			case metricNameMethods[name]:
				if callee != nil && !firstParamIs(callee, isBasicString) {
					return true
				}
				if lit, isLit := stringLit(call.Args[0]); isLit {
					pass.Reportf(call.Args[0].Pos(),
						"metric name %q passed as a string literal to %s.%s; use a constant from internal/metrics (a typo silently splits the series)",
						lit, recv, name)
				}
			case traceKindMethods[name]:
				if callee != nil && !firstParamIs(callee, func(t types.Type) bool {
					return typeName(t) == "Kind"
				}) {
					return true
				}
				if lit, isLit := kindLiteral(call.Args[0]); isLit {
					pass.Reportf(call.Args[0].Pos(),
						"trace kind %q passed as a literal to %s.%s; use a declared trace.Kind constant (the decomposition matches kinds exactly)",
						lit, recv, name)
				}
			}
			return true
		})
	}
}

// kindLiteral matches a raw string literal or an explicit conversion
// like trace.Kind("...") / Kind("..."), both of which bypass the
// declared constant set.
func kindLiteral(e ast.Expr) (string, bool) {
	if s, ok := stringLit(e); ok {
		return s, true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	_, name, ok := selectorCall(call)
	if !ok || name != "Kind" {
		return "", false
	}
	return stringLit(call.Args[0])
}

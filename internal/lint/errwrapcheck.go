package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrWrapCheck flags == / != comparisons (and switch cases) that match
// an error against a package-level sentinel like ErrQueueFull or
// ErrKilled. The module wraps errors at layer boundaries — the serve
// admission path wraps ErrQuotaExceeded with tenant context, the engine
// wraps ErrKilled with the task id — so an identity comparison silently
// stops matching the moment anyone adds `%w` context upstream. Use
// errors.Is (or errors.As for typed errors), which unwraps.
//
// Only variables of error type named Err* at package scope count as
// sentinels; `err == nil` and comparisons against local error values
// are fine.
var ErrWrapCheck = &Analyzer{
	Name: "errwrapcheck",
	Doc: "errors must be matched against Err* sentinels with errors.Is, " +
		"not == / != / switch-case identity (wrapped errors never match " +
		"an identity comparison)",
	Run: runErrWrapCheck,
}

func runErrWrapCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				s := sentinelError(info, x.X)
				other := x.Y
				if s == nil {
					s = sentinelError(info, x.Y)
					other = x.X
				}
				if s == nil || isNilExpr(info, other) {
					return true
				}
				pass.Reportf(x.Pos(),
					"error compared against sentinel %s with %s; wrapped errors never match — use errors.Is(err, %s)",
					s.Name(), x.Op, s.Name())
			case *ast.SwitchStmt:
				if x.Tag == nil {
					return true
				}
				if t := exprType(info, x.Tag); t == nil || !isErrorType(t) {
					return true
				}
				for _, c := range x.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelError(info, e); s != nil {
							pass.Reportf(e.Pos(),
								"switch case matches error against sentinel %s by identity; wrapped errors never match — use errors.Is(err, %s)",
								s.Name(), s.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// sentinelError resolves e to a package-level error variable named
// Err*, or nil. Requires type information: without a resolved object
// there is no way to tell a sentinel from a local.
func sentinelError(info *types.Info, e ast.Expr) *types.Var {
	v, ok := usedObject(info, e).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if len(v.Name()) < 4 || v.Name()[:3] != "Err" {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	if info != nil {
		if tv, ok := info.Types[e]; ok && tv.IsNil() {
			return true
		}
	}
	return false
}

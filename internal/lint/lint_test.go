package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixturePkg is the package path each analyzer's fixtures pretend to
// live at, chosen so the analyzer's scope accepts them (simdeterminism
// only looks at the simulator packages; metrickey skips internal/metrics
// and internal/trace; protoexhaustive reads the transport and core
// paths).
var fixturePkg = map[string]string{
	"lockedsend":      "imapreduce/internal/transport",
	"spanpair":        "imapreduce/internal/core",
	"sendcheck":       "imapreduce/internal/core",
	"simdeterminism":  "imapreduce/internal/sim",
	"metrickey":       "imapreduce/internal/core",
	"slabretain":      "imapreduce/internal/core",
	"protoexhaustive": "imapreduce/internal/transport",
	"lockorder":       "imapreduce/internal/core",
	"ctxflow":         "imapreduce/internal/core",
	"deprecatedapi":   "imapreduce/internal/core",
	"errwrapcheck":    "imapreduce/internal/core",
}

// wantRe extracts the expectation regex from a `// want "..."` (or
// backquoted) comment.
var wantRe = regexp.MustCompile("// want (\"[^\"]*\"|`[^`]*`)")

// fixtureKey addresses one fixture line across the whole directory.
type fixtureKey struct {
	file string
	line int
}

// TestFixtures loads each analyzer's testdata/<name> directory as one
// package — bad and good files see each other's declarations, so the
// typed facts resolve — and runs the analyzer once over it. Files named
// bad*.go must produce exactly the findings their `// want` comments
// describe; files named good*.go must produce none — the
// no-false-positive half of each analyzer's contract.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			pkgPath := fixturePkg[a.Name]
			if pkgPath == "" {
				t.Fatalf("no fixture package path registered for analyzer %s", a.Name)
			}
			dir := filepath.Join("testdata", a.Name)
			pkg, err := LoadFixtureDir(pkgPath, dir)
			if err != nil {
				t.Fatalf("no fixtures for analyzer %s: %v", a.Name, err)
			}
			if len(pkg.Files) < 2 {
				t.Fatalf("analyzer %s must have at least a bad and a good fixture, found %d file(s)",
					a.Name, len(pkg.Files))
			}
			findings := Run([]*Package{pkg}, []*Analyzer{a})

			wants := map[fixtureKey][]string{}
			for _, f := range pkg.Files {
				src, err := os.ReadFile(f.Name)
				if err != nil {
					t.Fatal(err)
				}
				base := filepath.Base(f.Name)
				n := 0
				for i, line := range strings.Split(string(src), "\n") {
					for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
						pat, err := strconv.Unquote(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", f.Name, i+1, m[1], err)
						}
						wants[fixtureKey{base, i + 1}] = append(wants[fixtureKey{base, i + 1}], pat)
						n++
					}
				}
				if strings.HasPrefix(base, "good") && n > 0 {
					t.Fatalf("%s: good fixtures must not carry want comments", f.Name)
				}
			}

			got := map[fixtureKey][]string{}
			for _, fd := range findings {
				k := fixtureKey{filepath.Base(fd.Pos.Filename), fd.Pos.Line}
				got[k] = append(got[k], fd.Message)
			}

			for k, pats := range wants {
				msgs := got[k]
				if len(msgs) != len(pats) {
					t.Errorf("%s:%d: want %d finding(s) matching %q, got %d: %q",
						k.file, k.line, len(pats), pats, len(msgs), msgs)
					continue
				}
				claimed := make([]bool, len(msgs))
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", k.file, k.line, pat, err)
					}
					matched := false
					for i, msg := range msgs {
						if !claimed[i] && re.MatchString(msg) {
							claimed[i], matched = true, true
							break
						}
					}
					if !matched {
						t.Errorf("%s:%d: no finding matches %q (got %q)", k.file, k.line, pat, msgs)
					}
				}
			}
			for k, msgs := range got {
				if _, expected := wants[k]; !expected {
					t.Errorf("%s:%d: unexpected finding(s): %q", k.file, k.line, msgs)
				}
			}
		})
	}
}

// TestByName pins the registry: every analyzer resolves by its own name
// and unknown names return nil.
func TestByName(t *testing.T) {
	for _, a := range All() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if got := ByName("nope"); got != nil {
		t.Errorf("ByName(nope) = %v, want nil", got)
	}
}

// TestSuppressionDirective checks the imrlint:ignore forms the fixtures
// don't cover: same-line placement, the multi-name list, and the "all"
// wildcard. The endpoint type is deliberately undefined — the lenient
// fixture check records the type error and sendcheck falls back to its
// syntactic matching, which is itself part of the contract.
func TestSuppressionDirective(t *testing.T) {
	const src = `package p

func f(ep endpoint) {
	ep.Send(1, "a") // imrlint:ignore sendcheck same-line directive
	ep.Send(2, "b") // imrlint:ignore all wildcard mutes every analyzer
	// imrlint:ignore sendcheck,lockedsend list names both analyzers
	ep.Send(3, "c")
	ep.Send(4, "d") // imrlint:ignore lockedsend wrong analyzer does not mute sendcheck
}
`
	pkg, err := ParseSource("imapreduce/internal/core", "sup.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("expected lenient type errors for the undefined endpoint type")
	}
	findings := Run([]*Package{pkg}, []*Analyzer{SendCheck})
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 surviving finding, got %d: %v", len(findings), findings)
	}
	if findings[0].Pos.Line != 8 {
		t.Errorf("surviving finding on line %d, want line 8 (the wrong-analyzer directive)", findings[0].Pos.Line)
	}
}

// TestLenientTypeErrors pins the fixture loader's contract: source that
// does not type-check still parses, the errors are recorded with
// positions, and the package is still analyzable.
func TestLenientTypeErrors(t *testing.T) {
	const src = `package p

func f() {
	undefinedThing()
	var x int = "not an int"
	_ = x
}
`
	pkg, err := ParseSource("imapreduce/internal/core", "broken.go", src)
	if err != nil {
		t.Fatalf("lenient parse must not fail on type errors: %v", err)
	}
	if len(pkg.TypeErrors) < 2 {
		t.Fatalf("want at least 2 recorded type errors, got %d: %v", len(pkg.TypeErrors), pkg.TypeErrors)
	}
	for _, e := range pkg.TypeErrors {
		if !strings.Contains(e.Error(), "broken.go") {
			t.Errorf("type error lacks a file position: %v", e)
		}
	}
	if pkg.Info == nil || pkg.Types == nil {
		t.Fatal("lenient check must still produce Types and Info")
	}
}

// TestLoadPackagesStrict pins the module loader's contract: type errors
// in a real (non-fixture) load are load failures, reported with
// positions, not silently tolerated.
func TestLoadPackagesStrict(t *testing.T) {
	dir := t.TempDir()
	writeTestFile(t, filepath.Join(dir, "go.mod"), "module brokenmod\n\ngo 1.22\n")
	writeTestFile(t, filepath.Join(dir, "main.go"), "package main\n\nfunc main() { undefinedThing() }\n")
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	_, err = LoadPackages([]string{"."}, LoadOptions{})
	if err == nil {
		t.Fatal("LoadPackages must fail on code that does not type-check")
	}
	if !strings.Contains(err.Error(), "type check failed") ||
		!strings.Contains(err.Error(), "undefinedThing") {
		t.Errorf("load error should name the type failure, got: %v", err)
	}
}

func writeTestFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

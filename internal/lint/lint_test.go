package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixturePkg is the package path each analyzer's fixtures pretend to
// live at, chosen so the analyzer's Match accepts them (simdeterminism
// only looks at the simulator packages; metrickey skips internal/metrics
// and internal/trace).
var fixturePkg = map[string]string{
	"lockedsend":     "imapreduce/internal/transport",
	"spanpair":       "imapreduce/internal/core",
	"sendcheck":      "imapreduce/internal/core",
	"simdeterminism": "imapreduce/internal/sim",
	"metrickey":      "imapreduce/internal/core",
	"slabretain":     "imapreduce/internal/core",
}

// wantRe extracts the expectation regex from a `// want "..."` (or
// backquoted) comment.
var wantRe = regexp.MustCompile("// want (\"[^\"]*\"|`[^`]*`)")

// TestFixtures runs each analyzer over its testdata/<name> directory.
// Files named bad*.go must produce exactly the findings their `// want`
// comments describe; files named good*.go must produce none — the
// no-false-positive half of each analyzer's contract.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("no fixtures for analyzer %s: %v", a.Name, err)
			}
			ran := 0
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				runFixture(t, a, filepath.Join(dir, e.Name()))
				ran++
			}
			if ran < 2 {
				t.Fatalf("analyzer %s must have at least a bad and a good fixture, found %d file(s)", a.Name, ran)
			}
		})
	}
}

func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pkgPath := fixturePkg[a.Name]
	if pkgPath == "" {
		t.Fatalf("no fixture package path registered for analyzer %s", a.Name)
	}
	pkg, err := ParseSource(pkgPath, path, string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{a})

	wants := map[int][]string{} // line -> expectation regexes
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			pat, err := strconv.Unquote(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", path, i+1, m[1], err)
			}
			wants[i+1] = append(wants[i+1], pat)
		}
	}
	if strings.HasPrefix(filepath.Base(path), "good") && len(wants) > 0 {
		t.Fatalf("%s: good fixtures must not carry want comments", path)
	}

	got := map[int][]string{} // line -> finding messages
	for _, f := range findings {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Message)
	}

	for line, pats := range wants {
		msgs := got[line]
		if len(msgs) != len(pats) {
			t.Errorf("%s:%d: want %d finding(s) matching %q, got %d: %q",
				path, line, len(pats), pats, len(msgs), msgs)
			continue
		}
		claimed := make([]bool, len(msgs))
		for _, pat := range pats {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", path, line, pat, err)
			}
			matched := false
			for i, msg := range msgs {
				if !claimed[i] && re.MatchString(msg) {
					claimed[i], matched = true, true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no finding matches %q (got %q)", path, line, pat, msgs)
			}
		}
	}
	for line, msgs := range got {
		if _, expected := wants[line]; !expected {
			t.Errorf("%s:%d: unexpected finding(s): %q", path, line, msgs)
		}
	}
}

// TestByName pins the registry: every analyzer resolves by its own name
// and unknown names return nil.
func TestByName(t *testing.T) {
	for _, a := range All() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if got := ByName("nope"); got != nil {
		t.Errorf("ByName(nope) = %v, want nil", got)
	}
}

// TestSuppressionDirective checks the imrlint:ignore forms the fixtures
// don't cover: same-line placement, the multi-name list, and the "all"
// wildcard.
func TestSuppressionDirective(t *testing.T) {
	const src = `package p

func f(ep endpoint) {
	ep.Send(1, "a") // imrlint:ignore sendcheck same-line directive
	ep.Send(2, "b") // imrlint:ignore all wildcard mutes every analyzer
	// imrlint:ignore sendcheck,lockedsend list names both analyzers
	ep.Send(3, "c")
	ep.Send(4, "d") // imrlint:ignore lockedsend wrong analyzer does not mute sendcheck
}
`
	pkg, err := ParseSource("imapreduce/internal/core", "sup.go", src)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{SendCheck})
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 surviving finding, got %d: %v", len(findings), findings)
	}
	if findings[0].Pos.Line != 8 {
		t.Errorf("surviving finding on line %d, want line 8 (the wrong-analyzer directive)", findings[0].Pos.Line)
	}
}

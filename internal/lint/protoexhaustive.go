package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProtoExhaustive checks that the wire protocol's declared surface and
// its handled surface are the same set, module-wide:
//
//   - every frame/kind/cmd constant declared in the transport and core
//     packages must be both emitted (used in a send/encode position)
//     and dispatched (a case arm, an ==/!= comparison, or a handler-map
//     key consumes it). A kind that is emitted but never dispatched is
//     a frame receivers silently drop; dispatched but never emitted is
//     a dead protocol arm.
//   - every message type the core and dfs packages register with
//     kv.RegisterWireType must appear in a type switch or type
//     assertion somewhere in the module — registration makes the codec
//     decode it, but only a dispatch arm makes anyone handle it. (The
//     algorithm packages also register plain record types with the
//     codec; those are data, not messages, and are out of scope.)
//   - every exported trace.Kind constant and every exported metric name
//     constant must be referenced somewhere in the module: the Fig-10
//     decomposition and the experiment assertions read these catalogs,
//     and an unreferenced entry is a series nothing will ever fill.
var ProtoExhaustive = &Analyzer{
	Name: "protoexhaustive",
	Doc: "declared wire constants need both an emit and a dispatch site; " +
		"registered message types need a type-switch arm; declared " +
		"trace kinds and metric names must be referenced",
	RunModule: runProtoExhaustive,
}

// wireConstPrefixes select the protocol constants in scope: frame kinds
// on the TCP framing layer, message/chunk kinds and master commands in
// the engine.
var wireConstPrefixes = []string{"frame", "kind", "cmd"}

// wireConstPkg reports whether path declares protocol constants.
func wireConstPkg(path string) bool {
	return strings.HasSuffix(path, "internal/transport") || strings.HasSuffix(path, "internal/core")
}

func runProtoExhaustive(pass *ModulePass) {
	checkWireConsts(pass)
	checkRegisteredTypes(pass)
	checkDeclaredCatalogs(pass)
}

// wireConst tracks one protocol constant's observed uses. group ties
// siblings of one const block together: the dispatch requirement is
// family-relative (see checkWireConsts).
type wireConst struct {
	pkg        *Package
	pos        token.Pos
	group      *ast.GenDecl
	emitted    bool
	dispatched bool
}

func checkWireConsts(pass *ModulePass) {
	tracked := map[types.Object]*wireConst{}
	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil || !wireConstPkg(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.AST.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !isWireConstName(name.Name) {
							continue
						}
						if obj := pkg.Info.Defs[name]; obj != nil {
							tracked[obj] = &wireConst{pkg: pkg, pos: name.Pos(), group: gd}
						}
					}
				}
			}
		}
	}
	if len(tracked) == 0 {
		return
	}

	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			// First mark the dispatch positions: case arms of a value
			// switch, operands of ==/!=, and keys of a composite literal
			// (the handler-table idiom).
			dispatchPos := map[*ast.Ident]bool{}
			markDispatch := func(e ast.Expr) {
				if id := constIdent(e); id != nil {
					dispatchPos[id] = true
				}
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SwitchStmt:
					for _, c := range x.Body.List {
						if cc, ok := c.(*ast.CaseClause); ok {
							for _, e := range cc.List {
								markDispatch(e)
							}
						}
					}
				case *ast.BinaryExpr:
					if x.Op == token.EQL || x.Op == token.NEQ {
						markDispatch(x.X)
						markDispatch(x.Y)
					}
				case *ast.KeyValueExpr:
					markDispatch(x.Key)
				}
				return true
			})
			ast.Inspect(f.AST, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				wc := tracked[pkg.Info.Uses[id]]
				if wc == nil {
					return true
				}
				if dispatchPos[id] {
					wc.dispatched = true
				} else {
					wc.emitted = true
				}
				return true
			})
		}
	}

	// The dispatch requirement is family-relative: the engine's kind*
	// tags are pure wire labels (dispatch there is the payload type
	// switch, which checkRegisteredTypes covers), while the cmd* and
	// frame* families are switch-dispatched. If ANY sibling of a const
	// block appears in a dispatch position, the family's protocol style
	// is switching — and then every member needs an arm.
	groupDispatched := map[*ast.GenDecl]bool{}
	for _, wc := range tracked {
		if wc.dispatched {
			groupDispatched[wc.group] = true
		}
	}
	for obj, wc := range tracked {
		switch {
		case !wc.emitted && !wc.dispatched:
			pass.Reportf(wc.pkg, wc.pos,
				"wire constant %s is declared but never used; dead protocol surface",
				obj.Name())
		case !wc.dispatched && groupDispatched[wc.group]:
			pass.Reportf(wc.pkg, wc.pos,
				"wire constant %s is emitted but never dispatched (no case arm, comparison, or handler key consumes it, while its const-block siblings are dispatched); frames of this kind are silently dropped",
				obj.Name())
		case !wc.emitted:
			pass.Reportf(wc.pkg, wc.pos,
				"wire constant %s is dispatched but never emitted; dead protocol arm, or a sender forgot the constant",
				obj.Name())
		}
	}
}

// isWireConstName matches frameX/kindX/cmdX (prefix plus an upper-case
// continuation, so "framework" or "kindness" never match).
func isWireConstName(name string) bool {
	for _, p := range wireConstPrefixes {
		if rest, ok := strings.CutPrefix(name, p); ok && rest != "" &&
			rest[0] >= 'A' && rest[0] <= 'Z' {
			return true
		}
	}
	return false
}

// constIdent unwraps e to the identifier naming a constant: a bare
// ident, or the selector of pkg.Const.
func constIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// checkRegisteredTypes verifies that message types registered by the
// core and dfs layers (and the fixture's transport stand-in) reach a
// type-switch or type-assertion arm somewhere.
func checkRegisteredTypes(pass *ModulePass) {
	type regSite struct {
		pkg *Package
		pos token.Pos
	}
	registered := map[*types.TypeName]regSite{}
	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil || !(wireConstPkg(pkg.Path) || strings.HasSuffix(pkg.Path, "internal/dfs")) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				callee := calleeOf(pkg.Info, call)
				if callee == nil || callee.FullName() != "imapreduce/internal/kv.RegisterWireType" {
					return true
				}
				if n := namedOf(exprType(pkg.Info, call.Args[0])); n != nil {
					if _, seen := registered[n.Obj()]; !seen {
						registered[n.Obj()] = regSite{pkg: pkg, pos: call.Args[0].Pos()}
					}
				}
				return true
			})
		}
	}
	if len(registered) == 0 {
		return
	}

	dispatched := map[*types.TypeName]bool{}
	noteType := func(pkg *Package, e ast.Expr) {
		if e == nil {
			return // the x.(type) of a type switch
		}
		if n := namedOf(exprType(pkg.Info, e)); n != nil {
			dispatched[n.Obj()] = true
		}
	}
	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.TypeSwitchStmt:
					for _, c := range x.Body.List {
						if cc, ok := c.(*ast.CaseClause); ok {
							for _, e := range cc.List {
								noteType(pkg, e)
							}
						}
					}
				case *ast.TypeAssertExpr:
					noteType(pkg, x.Type)
				}
				return true
			})
		}
	}

	for tn, site := range registered {
		if !dispatched[tn] {
			pass.Reportf(site.pkg, site.pos,
				"message type %s is registered with kv.RegisterWireType but no type switch or assertion anywhere handles it; decoded frames of this type are silently dropped",
				tn.Name())
		}
	}
}

// checkDeclaredCatalogs verifies every exported trace.Kind constant and
// every exported metric-name constant is referenced somewhere in the
// module.
func checkDeclaredCatalogs(pass *ModulePass) {
	type catConst struct {
		pkg  *Package
		pos  token.Pos
		what string
	}
	tracked := map[types.Object]catConst{}
	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		isTrace := strings.HasSuffix(pkg.Path, "internal/trace")
		isMetrics := strings.HasSuffix(pkg.Path, "internal/metrics")
		if !isTrace && !isMetrics {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.AST.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !ast.IsExported(name.Name) {
							continue
						}
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						switch {
						case isTrace && typeName(obj.Type()) == "Kind":
							tracked[obj] = catConst{pkg: pkg, pos: name.Pos(), what: "trace kind"}
						case isMetrics && isBasicString(obj.Type()):
							tracked[obj] = catConst{pkg: pkg, pos: name.Pos(), what: "metric name constant"}
						}
					}
				}
			}
		}
	}
	if len(tracked) == 0 {
		return
	}

	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if _, isTracked := tracked[pkg.Info.Uses[id]]; isTracked {
						delete(tracked, pkg.Info.Uses[id])
					}
				}
				return true
			})
		}
	}

	for obj, cc := range tracked {
		pass.Reportf(cc.pkg, cc.pos,
			"%s %s is declared but never referenced anywhere in the module; no code can ever emit or read this series",
			cc.what, obj.Name())
	}
}

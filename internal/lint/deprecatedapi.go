package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeprecatedAPI flags module code calling functions or methods the
// module itself has marked with a standard "Deprecated:" doc line. PR 8
// deprecated the blocking entry points (imr.RunJob and friends) in
// favour of the Submit handle API, but nothing enforced the migration —
// examples and experiments kept compiling against the old wrappers
// indefinitely. A deprecated function may freely call other deprecated
// functions (the wrappers delegate to each other); everyone else gets
// told what to use instead, verbatim from the doc comment.
var DeprecatedAPI = &Analyzer{
	Name: "deprecatedapi",
	Doc: "no calls to module functions marked \"Deprecated:\" outside other " +
		"deprecated functions (the doc line's replacement advice is quoted " +
		"in the finding)",
	RunModule: runDeprecatedAPI,
}

func runDeprecatedAPI(pass *ModulePass) {
	// Pass 1: every deprecated function declared anywhere in the module.
	dep := map[*types.Func]string{}
	for _, pkg := range pass.Mod.Pkgs {
		for _, df := range funcDeclsOf(pkg) {
			if df.obj == nil {
				continue
			}
			if note := deprecationNote(df.decl.Doc); note != "" {
				dep[df.obj] = note
			}
		}
	}
	if len(dep) == 0 {
		return
	}

	// Pass 2: call sites. Function bodies are scanned unless the caller
	// is itself deprecated; package-level variable initializers are
	// scanned too (a var bound to a deprecated result is a call site).
	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, df := range funcDeclsOf(pkg) {
			if df.obj != nil && dep[df.obj] != "" {
				continue
			}
			reportDeprecatedCalls(pass, pkg, df.decl.Body, dep)
		}
		for _, f := range pkg.Files {
			for _, d := range f.AST.Decls {
				if gd, ok := d.(*ast.GenDecl); ok {
					reportDeprecatedCalls(pass, pkg, gd, dep)
				}
			}
		}
	}
}

func reportDeprecatedCalls(pass *ModulePass, pkg *Package, root ast.Node, dep map[*types.Func]string) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pkg.Info, call)
		if callee == nil {
			return true
		}
		note, ok := dep[callee]
		if !ok {
			return true
		}
		pass.Reportf(pkg, call.Pos(), "call to deprecated %s (%s)",
			shortFuncName(callee), note)
		return true
	})
}

// deprecationNote extracts the first "Deprecated:" line of a doc
// comment, trimmed, in the standard Go convention.
func deprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return line
		}
	}
	return ""
}

// shortFuncName renders a function for findings without the module's
// import-path noise: mapreduce.RunIterative, (*imr.Cluster).RunJob.
func shortFuncName(f *types.Func) string {
	full := f.FullName()
	full = strings.ReplaceAll(full, "imapreduce/internal/", "")
	return strings.ReplaceAll(full, "imapreduce/", "")
}

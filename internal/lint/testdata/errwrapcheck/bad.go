// Fixture for the errwrapcheck analyzer: identity comparison against a
// sentinel stops matching the moment anyone wraps the error upstream.
package fixture

import "errors"

var (
	ErrFull    = errors.New("queue full")
	ErrStopped = errors.New("stopped")
)

func isFull(err error) bool {
	return err == ErrFull // want "use errors.Is"
}

func keepGoing(err error) bool {
	if err != ErrStopped { // want "use errors.Is"
		return true
	}
	return false
}

func classify(err error) string {
	switch err {
	case ErrFull: // want "use errors.Is"
		return "full"
	case nil:
		return "ok"
	}
	return "other"
}

// errors.Is, nil checks, and non-sentinel comparisons are all fine.
package fixture

import "errors"

func isFullGood(err error) bool {
	return errors.Is(err, ErrFull)
}

func isNilCheck(err error) bool {
	return err == nil
}

var lastErr error

// Comparing against a non-sentinel variable is identity on purpose.
func sameAsLast(err error) bool {
	return err == lastErr
}

func compareInts(a, b int) bool {
	return a == b
}

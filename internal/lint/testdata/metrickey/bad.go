// Fixture for the metrickey analyzer: every line carrying a
// want-expectation comment must produce a matching finding.
// Fixtures are parse-only — set and rec stand in for metrics.Set and
// trace.Recorder.
package fixture

type set struct{}

func (set) Add(name string, v int64)    {}
func (set) AddSpan(name string, d int64) {}
func (set) Timed(name string, f func())  {}

type Kind string

type rec struct{}

func (rec) Emit(kind Kind, worker, task, iter int)       {}
func (rec) Begin(kind Kind, worker, task, iter int) int  { return 0 }
func (rec) RecordSpan(kind Kind, worker, task, iter int) {}

// A typo'd literal silently splits the series — "shuffle.bytez" would
// record next to the real "shuffle.bytes" and every reader misses it.
func counts(m set) {
	m.Add("shuffle.bytez", 1) // want `metric name "shuffle.bytez" passed as a string literal`
	m.Timed("reduce.apply", func() {}) // want `metric name "reduce.apply" passed as a string literal`
}

// Literal trace kinds produce spans the decomposition never matches.
func spans(tr rec) {
	tr.Emit("map.flush", 0, 0, 0) // want `trace kind "map.flush" passed as a literal`
	tr.RecordSpan(Kind("job.init"), 0, 0, 0) // want `trace kind "job.init" passed as a literal`
}

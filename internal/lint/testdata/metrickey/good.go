// Clean fixture for metrickey: none of these may produce a finding.
// Types come from bad.go conceptually; fixtures are parse-only.
package fixture

// Stand-ins for the declared constants in internal/metrics and
// internal/trace.
const (
	nameShuffleBytes = "shuffle.bytes"
	kindJobInit      = Kind("job.init")
)

// Constants are exactly what the analyzer wants to see.
func countsGood(m set) {
	m.Add(nameShuffleBytes, 1)
	m.Timed(nameShuffleBytes, func() {})
}

func spansGood(tr rec) {
	tr.Emit(kindJobInit, 0, 0, 0)
	tr.RecordSpan(kindJobInit, 0, 0, 0)
}

// Same-named methods whose first argument is not a string literal are
// untouched: sync.WaitGroup.Add, jobconf Get-style lookups, etc.
type group struct{}

func (group) Add(delta int) {}

func wait(g group) {
	g.Add(1)
}

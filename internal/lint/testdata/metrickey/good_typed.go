// Typed cases: same-named methods whose first parameter is not a
// metric name (plain string) or a trace Kind.
package fixture

// mailer.Emit takes a message string, not a trace.Kind — a literal is
// fine here.
type mailer struct{}

func (mailer) Emit(msg string) {}

func notify(m mailer) {
	m.Emit("job done")
}

// writer.Begin takes a section name, not a Kind; its literal argument
// is not a trace kind either.
type section struct{}
type writer struct{}

func (writer) Begin(name string) section { return section{} }

func render(w writer) {
	s := w.Begin("header")
	_ = s
}

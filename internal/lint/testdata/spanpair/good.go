// Clean fixture for spanpair: none of these may produce a finding.
// Types come from bad.go conceptually; fixtures are parse-only.
package fixture

// Straight-line Begin/End pair.
func pair(tr recorder) {
	p := tr.Begin(kindA, 0, 0, 0)
	work()
	p.End()
}

// defer p.End() covers every return path, early or not.
func deferred(tr recorder, fail bool) error {
	p := tr.Begin(kindA, 0, 0, 0)
	defer p.End()
	if fail {
		return errSentinel
	}
	return nil
}

// Ending the span inside the early-return branch, before the return,
// is also fine — that is the fix applied to the baseline engine.
func endedBeforeReturn(tr recorder, fail bool) error {
	p := tr.Begin(kindA, 0, 0, 0)
	if fail {
		p.End()
		return errSentinel
	}
	p.End()
	return nil
}

// End inside a deferred closure counts as deferred.
func deferredClosure(tr recorder) error {
	p := tr.Begin(kindA, 0, 0, 0)
	defer func() {
		p.End()
	}()
	if condition() {
		return errSentinel
	}
	return nil
}

func work()          {}
func condition() bool { return false }

// Fixture for the spanpair analyzer: every line carrying a
// want-expectation comment must produce a matching finding.
// Fixtures are parse-only — they never compile as part of the module.
package fixture

type pending struct{}

func (pending) End() {}

type recorder struct{}

func (recorder) Begin(kind string, worker, task, iter int) pending { return pending{} }

// The span is opened and then simply forgotten.
func leak(tr recorder) {
	p := tr.Begin(kindA, 0, 0, 0) // want "span p opened in leak is never ended"
	_ = p
}

// Discarding the Pending outright means nobody can ever end it.
func discardStmt(tr recorder) {
	tr.Begin(kindA, 0, 0, 0) // want "result of tr.Begin discarded in discardStmt"
}

func discardBlank(tr recorder) {
	_ = tr.Begin(kindA, 0, 0, 0) // want "result of tr.Begin discarded in discardBlank"
}

// The early return skips the End at the bottom — the exact bug shape
// this analyzer caught in the baseline engine's SubmitCtx.
func early(tr recorder, fail bool) error {
	p := tr.Begin(kindA, 0, 0, 0)
	if fail {
		return errSentinel // want "return leaves span p .opened at line 32. unended in early"
	}
	p.End()
	return nil
}

var errSentinel error

const kindA = "fixture.a"

// Typed case: Begin returning (value, error) is a transaction-style
// API, not a trace span — discarding or not "ending" it is fine.
package fixture

type tx struct{}
type db struct{}

func (db) Begin() (tx, error) { return tx{}, nil }

func dbUse(d db) error {
	_, err := d.Begin()
	return err
}

// Clean fixture for simdeterminism: none of these may produce a
// finding. Fixtures are parse-only.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// A locally seeded source replays bit-identically from its seed.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Sleeping and timers pace a real engine without feeding clock values
// into results; only Now/Since/Until are flagged.
func pace() {
	time.Sleep(time.Millisecond)
}

// The sanctioned fix for map-order dependence: collect the keys, sort
// them, then iterate the sorted slice.
func sortedSchedule(weights map[string]int) []string {
	names := make([]string, 0, len(weights))
	for name := range weights {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Ranging over a map without accumulating ordered output is fine —
// per-key work and commutative aggregation don't observe the order.
func total(weights map[string]int) int {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	return sum
}

// Fixture for the simdeterminism analyzer: every line carrying a
// want-expectation comment must produce a matching finding. The test
// harness presents this file as part of imapreduce/internal/sim so the
// analyzer's Match accepts it. Fixtures are parse-only.
package fixture

import (
	"math/rand"
	"time"
)

// Wall-clock reads leak host time into the run.
func stamp() int64 {
	t := time.Now() // want "time.Now reads the wall clock"
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// The global math/rand source is shared and unseedable per run.
func jitter() int {
	return rand.Intn(100) // want "rand.Intn uses the global math/rand source"
}

// Map iteration order leaks into the schedule: the appended sequence
// differs between runs and nothing sorts it afterwards.
func schedule(weights map[string]int) []string {
	var order []string
	for name := range weights {
		order = append(order, name) // want "append inside range over map weights"
	}
	return order
}

// A channel send inside a map range hands the consumer a random order.
func feed(weights map[string]int, out chan string) {
	for name := range weights {
		out <- name // want "channel send inside range over map weights"
	}
}

// Typed case: the type facts see map-ness the name tracking cannot —
// a map reached through a struct field.
package fixture

type graphSched struct {
	weights map[string]int
}

func (g *graphSched) order() []string {
	var out []string
	for name := range g.weights {
		out = append(out, name) // want "append inside range over map g.weights"
	}
	return out
}

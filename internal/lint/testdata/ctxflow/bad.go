// Fixture for the ctxflow analyzer: a context.Context parameter that
// never reaches the blocking path is a cancellation lie.
package fixture

import "context"

func waitDirect(ctx context.Context, ch chan int) int { // want "context parameter ctx of waitDirect is never used"
	return <-ch
}

// Blocking transitively — the helper ranges over the channel — still
// requires the context to flow.
func waitViaHelper(ctx context.Context, ch chan int) { // want "context parameter ctx of waitViaHelper is never used"
	drain(ch)
}

func drain(ch chan int) {
	for range ch {
	}
}

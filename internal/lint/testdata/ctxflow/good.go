// The sanctioned shapes: select on Done, thread the context onward,
// don't block at all, or name the parameter _ to ignore it on purpose.
package fixture

import "context"

func selected(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func threaded(ctx context.Context, ch chan int) int {
	return selected(ctx, ch)
}

// Computation that cannot block does not need to consult the context.
func pure(ctx context.Context, a, b int) int {
	return a + b
}

// The blank name is the explicit "intentionally ignored" marker.
func ignored(_ context.Context, ch chan int) int {
	return <-ch
}

// Handing the context to spawned background work counts as use.
func spawned(ctx context.Context, ch, out chan int) {
	go func() {
		select {
		case v := <-ch:
			out <- v
		case <-ctx.Done():
		}
	}()
}

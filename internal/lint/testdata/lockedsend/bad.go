// Fixture for the lockedsend analyzer: every line carrying a
// want-expectation comment must produce a matching finding.
// Fixtures are parse-only — they never compile as part of the module.
package fixture

import "sync"

type endpoint struct{}

func (endpoint) Send(to int, msg any) error { return nil }

type node struct {
	mu sync.Mutex
	ch chan int
	ep endpoint
}

// A channel send while the mutex is held blocks with the lock taken.
func (n *node) signalLocked() {
	n.mu.Lock()
	n.ch <- 1 // want "channel send in signalLocked while n.mu is locked"
	n.mu.Unlock()
}

// defer n.mu.Unlock() keeps the lock held for the whole body, so the
// transport send below runs under it.
func (n *node) broadcastLocked(to int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.ep.Send(to, "hello") // want "call to n.ep.Send in broadcastLocked while n.mu is locked"
}

// A lock taken in only one branch is conservatively still held after
// the join: the send may run locked depending on cond.
func (n *node) branchLocked(cond bool) {
	if cond {
		n.mu.Lock()
	}
	n.ch <- 2 // want "channel send in branchLocked"
	if cond {
		n.mu.Unlock()
	}
}

// ReliableSend by bare name (the transport helper) counts too.
func retryLocked(mu *sync.Mutex, ep endpoint) {
	mu.Lock()
	_, _ = ReliableSend(ep, 3, "x", 5, 0) // want "call to ReliableSend in retryLocked while mu is locked"
	mu.Unlock()
}

func ReliableSend(ep endpoint, to int, msg any, retries, base int) (int, error) {
	return 0, nil
}

// Typed cases: name collisions the PR-5 syntactic analyzer flagged and
// the type-aware port must not.
package fixture

import "sync"

// gauge has Lock/Unlock by name only — not a mutex; nothing is held
// between them.
type gauge struct{ n int }

func (g *gauge) Lock()   { g.n++ }
func (g *gauge) Unlock() { g.n-- }

// notifier.Send has no error result — not a transport send.
type notifier struct{}

func (notifier) Send(v int) {}

func falseFriends(g *gauge, nf notifier, ch chan int, mu *sync.Mutex) {
	g.Lock()
	ch <- 1 // fine: g is not a mutex, nothing is held
	g.Unlock()
	mu.Lock()
	nf.Send(2) // fine: not a transport-style send (no error result)
	mu.Unlock()
}

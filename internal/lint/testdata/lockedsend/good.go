// Clean fixture for lockedsend: none of these may produce a finding.
// Fixtures are parse-only — types here are stand-ins, not the real ones.
package fixture

import "sync"

type conn struct {
	mu       sync.Mutex
	flushReq chan struct{}
}

// The tcpConn idiom: a non-blocking nudge of the flusher under the
// lock. A select with a default clause cannot block, so it is allowed.
func (c *conn) nudge() {
	c.mu.Lock()
	select {
	case c.flushReq <- struct{}{}:
	default:
	}
	c.mu.Unlock()
}

// Sending after the unlock is the normal, safe shape.
func (c *conn) sendAfter(ep endpoint) error {
	c.mu.Lock()
	state := 1
	c.mu.Unlock()
	return ep.Send(state, "x")
}

// A spawned goroutine does not hold the spawner's lock; its body is
// analyzed as its own function, where no mutex is held.
func (c *conn) spawn(ep endpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		_ = ep.Send(1, "y")
	}()
}

// Branches that each lock AND unlock leave nothing held at the join.
func (c *conn) balancedBranches(cond bool, ep endpoint) {
	if cond {
		c.mu.Lock()
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		c.mu.Unlock()
	}
	_ = ep.Send(2, "z")
}

// A consistent global order — outer before inner, everywhere, including
// through helpers — has no cycle.
package fixture

import "sync"

type outer struct{ mu sync.Mutex }
type inner struct{ mu sync.Mutex }

func pair(o *outer, i *inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

func pairAgain(o *outer, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	lockInner(i)
}

func lockInner(i *inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
}

// Hand-over-hand over two instances of the same type is a self-edge in
// the type-keyed graph and never reported.
func handOverHand(a, b *inner) {
	a.mu.Lock()
	b.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// A local mutex cannot participate in a cross-goroutine cycle; it is
// untracked.
func localLock(o *outer) {
	var mu sync.Mutex
	mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	mu.Unlock()
}

// Fixture for the lockorder analyzer: inverted acquisition orders
// across functions complete a cycle two goroutines can deadlock on.
package fixture

import "sync"

type sched struct{ mu sync.Mutex }
type pool struct{ mu sync.Mutex }

func schedThenPool(s *sched, p *pool) {
	s.mu.Lock()
	p.mu.Lock() // want "fixture.pool.mu acquired while fixture.sched.mu is held, completing a lock-order cycle"
	p.mu.Unlock()
	s.mu.Unlock()
}

func poolThenSched(s *sched, p *pool) {
	p.mu.Lock()
	s.mu.Lock() // want "fixture.sched.mu acquired while fixture.pool.mu is held, completing a lock-order cycle"
	s.mu.Unlock()
	p.mu.Unlock()
}

type journal struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }

func lockIndex(ix *index) {
	ix.mu.Lock()
	ix.mu.Unlock()
}

// The edge through the helper call counts: journal is held while the
// callee (transitively) takes index.
func journalThenIndex(j *journal, ix *index) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lockIndex(ix) // want "call to lockIndex acquires fixture.index.mu while fixture.journal.mu is held"
}

func indexThenJournal(j *journal, ix *index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	j.mu.Lock() // want "fixture.journal.mu acquired while fixture.index.mu is held, completing a lock-order cycle"
	j.mu.Unlock()
}

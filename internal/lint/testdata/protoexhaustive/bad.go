// Fixture for the protoexhaustive analyzer: the declared wire surface
// must match the handled surface, both directions.
package fixture

import "imapreduce/internal/kv"

type frameMsg struct {
	kind    byte
	payload []byte
}

const (
	frameData = 1
	frameAck  = 2
	// Emitted below but no arm consumes it: receivers drop the frame.
	frameGone = 3 // want "emitted but never dispatched"
	// Handled below but nothing ever sends it: a dead protocol arm.
	frameIdle = 4 // want "dispatched but never emitted"
	// Declared and then forgotten entirely.
	frameDead = 5 // want "declared but never used"
)

func encodeAll() []frameMsg {
	return []frameMsg{
		{kind: frameData},
		{kind: frameAck},
		{kind: frameGone},
	}
}

func handle(m frameMsg) int {
	switch m.kind {
	case frameData:
		return 1
	case frameAck:
		return 2
	case frameIdle:
		return 3
	}
	return 0
}

// orphanMsg decodes off the wire but no receiver arm handles it.
type orphanMsg struct{ N int }

func register() {
	kv.RegisterWireType(orphanMsg{}) // want "registered with kv.RegisterWireType but no type switch"
}

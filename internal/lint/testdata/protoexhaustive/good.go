// The complete contract: every constant both emitted and dispatched
// (case arm, comparison, or handler-table key), every registered type
// handled by a switch arm.
package fixture

import "imapreduce/internal/kv"

const (
	cmdHalt  = 10
	cmdFlush = 11
	kindPing = "ping"
)

func sendCmds() []frameMsg {
	return []frameMsg{{kind: cmdHalt}, {kind: cmdFlush}}
}

func dispatchCmd(m frameMsg) bool {
	switch m.kind {
	case cmdHalt:
		return true
	}
	// Comparison dispatch counts too.
	return m.kind == cmdFlush
}

func pingFrame() frameMsg { return frameMsg{payload: []byte(kindPing)} }

// A handler table keyed by the constant is a dispatch site.
var pingHandlers = map[string]func(){
	kindPing: func() {},
}

// pingMsg is registered and handled: the full round trip.
type pingMsg struct{ T int }

func registerPing() {
	kv.RegisterWireType(&pingMsg{})
}

func route(v any) bool {
	switch v.(type) {
	case *pingMsg:
		return true
	}
	return false
}

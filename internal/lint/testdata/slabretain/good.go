// Clean fixture for slabretain: none of these may produce a finding.
// Fixtures are parse-only — kv here is a stand-in, not the real package.
package fixture

import "imapreduce/internal/kv"

// The intended ownership idiom: a deferred release runs at return,
// after every use in the body.
func deferredRelease(data []byte) int {
	s := kv.AcquireSlab()
	defer s.Release()
	pairs, _, _ := kv.DecodePairsSlab(data, s)
	return len(pairs)
}

// Copying out before the release is the documented escape hatch.
func copyThenRelease(data []byte) []kv.Pair {
	s := kv.AcquireSlab()
	pairs, _, _ := kv.DecodePairsSlab(data, s)
	out := make([]kv.Pair, len(pairs))
	copy(out, pairs)
	s.Release()
	return out
}

// Reacquiring rebinds the name to a fresh slab; uses after that are of
// the new slab, not the released one.
func reacquire(data []byte) {
	s := kv.AcquireSlab()
	s.Release()
	s = kv.AcquireSlab()
	defer s.Release()
	_, _, _ = kv.DecodePairsSlab(data, s)
}

// The error-path idiom: the branch that releases also returns, so the
// success path below it still owns the slab.
func errorPathRelease(data []byte) (int, error) {
	s := kv.AcquireSlab()
	pairs, _, err := kv.DecodePairsSlab(data, s)
	if err != nil {
		s.Release()
		return 0, err
	}
	defer s.Release()
	return len(pairs), nil
}

// Other chunk fields survive release() — only Pairs rides the slab.
func chunkMetaAfterRelease(c *chunk) string {
	c.release()
	return c.From
}

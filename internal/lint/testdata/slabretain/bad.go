// Fixture for the slabretain analyzer: every line carrying a
// want-expectation comment must produce a matching finding.
// Fixtures are parse-only — kv here is a stand-in, not the real package.
package fixture

import "imapreduce/internal/kv"

type chunk struct {
	From  string
	Pairs []kv.Pair
}

func (c *chunk) release() {}

func sink(any) {}

// The decoded pairs alias the slab's pair block; Release recycles it.
func useAfterRelease(data []byte) {
	s := kv.AcquireSlab()
	pairs, _, _ := kv.DecodePairsSlab(data, s)
	s.Release()
	sink(pairs) // want "use of pairs in useAfterRelease after s.Release at line 21"
}

// The slab itself is pooled memory too: no boxing through it after
// ReleaseRetainValues handed it back.
func boxAfterRelease(data []byte) {
	s := kv.AcquireSlab()
	_, _, _ = kv.DecodePairsSlab(data, s)
	s.ReleaseRetainValues()
	_ = s.BoxInt64(7) // want "use of s in boxAfterRelease after s.ReleaseRetainValues at line 30"
}

// A second release of the same slab panics at runtime.
func doubleRelease() {
	s := kv.AcquireSlab()
	s.Release()
	s.Release() // want "s.Release in doubleRelease but s was already released at line 37"
}

// chunk.release() returns the chunk's slab, so c.Pairs dies with it —
// even when the release happens in only one branch.
func chunkPairsAfterRelease(c *chunk, early bool) {
	if early {
		c.release()
	}
	sink(c.Pairs) // want "use of c.Pairs in chunkPairsAfterRelease after c.release at line 45"
}

// Typed case: Release on a type that is not kv.Slab transfers no
// pooled memory; uses after it are fine.
package fixture

type lease struct{ id int }

func (lease) Release() {}

func dropLease(l lease) int {
	l.Release()
	return l.id
}

// Fixture for the deprecatedapi analyzer: functions the module marks
// Deprecated must not gain new callers.
package fixture

// Deprecated: use StartJob and wait on the handle instead.
func RunJobOld(n int) int { return n }

type runner struct{}

// Deprecated: use RunCtx.
func (runner) Run() {}

func caller() int {
	return RunJobOld(1) // want "call to deprecated .*RunJobOld .Deprecated: use StartJob"
}

func methodCaller(r runner) {
	r.Run() // want "call to deprecated .*runner.*Run .Deprecated: use RunCtx"
}

// A package-level initializer is a call site too.
var eager = RunJobOld(2) // want "call to deprecated .*RunJobOld"

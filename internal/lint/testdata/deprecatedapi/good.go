// Deprecated code may call deprecated code — the wrappers delegate to
// each other; only live code is barred.
package fixture

// StartJob is the replacement entry point.
func StartJob(n int) int { return n }

// Deprecated: use StartJob.
func LegacyStart(n int) int {
	return StartJob(n)
}

// Deprecated: oldest shim; delegates to the newer deprecated wrapper,
// which is allowed.
func AncientStart(n int) int {
	return LegacyStart(n)
}

func modern() int {
	return StartJob(3)
}

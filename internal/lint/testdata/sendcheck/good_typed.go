// Typed cases: same-named calls that are not the guarded APIs.
package fixture

import "os"

// Package functions are not the DFS commit path even when the name
// matches; a discarded os.WriteFile/os.Rename error is not sendcheck's
// concern.
func hostFiles() {
	os.WriteFile("/tmp/imr-fixture", nil, 0o644)
	os.Rename("/tmp/imr-fixture", "/tmp/imr-fixture-2")
}

// counter.Send returns nothing — there is no error to discard.
type counter struct{}

func (counter) Send(v int) {}

func bump(c counter) {
	c.Send(1)
}

// Fixture for the sendcheck analyzer: every line carrying a
// want-expectation comment must produce a matching finding.
// Fixtures are parse-only — they never compile as part of the module.
package fixture

type endpoint struct{}

func (endpoint) Send(to int, msg any) error { return nil }

type dfsLike struct{}

func (dfsLike) WriteFile(path string, data []byte) error { return nil }
func (dfsLike) Rename(from, to string) error             { return nil }

func ReliableSend(ep endpoint, to int, msg any, retries, base int) (int, error) {
	return 0, nil
}

// A bare call statement drops the error invisibly.
func drops(ep endpoint, to int) {
	ep.Send(to, "payload") // want "error result of ep.Send discarded"
}

// go and defer statements discard results by construction.
func async(ep endpoint, fs dfsLike) {
	go ep.Send(1, "x")              // want "error result of ep.Send discarded by go statement"
	defer fs.Rename("tmp", "final") // want "error result of fs.Rename discarded by defer"
	fs.WriteFile("path", nil)       // want "error result of fs.WriteFile discarded"
	ReliableSend(ep, 2, "y", 3, 0)  // want "error result of ReliableSend discarded"
}

// Clean fixture for sendcheck: none of these may produce a finding.
// Types come from bad.go conceptually; fixtures are parse-only.
package fixture

// Checking the error is the normal shape.
func checked(ep endpoint, to int) error {
	if err := ep.Send(to, "payload"); err != nil {
		return err
	}
	return nil
}

// An explicit blank assignment is the project's visible "loss is
// tolerated here" marker and is allowed.
func tolerated(ep endpoint) {
	// Shutdown race: the peer may already be gone.
	_ = ep.Send(0, "bye")
}

// Consuming both results of the retry helper is fine.
func retried(ep endpoint) error {
	attempts, err := ReliableSend(ep, 1, "x", 5, 0)
	_ = attempts
	return err
}

// A suppression directive mutes the finding on the line below it —
// this fixture doubles as the test for imrlint:ignore handling.
func suppressed(ep endpoint) {
	// imrlint:ignore sendcheck fire-and-forget probe; loss is counted by the receiver
	ep.Send(9, "probe")
}

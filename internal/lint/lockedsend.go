package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedSend flags transport sends performed while a sync.Mutex or
// RWMutex is held in the same function: a channel send statement, or a
// call to Send / ReliableSend / sendReliable, between X.Lock() (or
// X.RLock()) and the matching unlock. The engine's task loops and the
// master drain unbounded inboxes, but the TCP backend and the chaos
// wrapper can block inside Send (dial, flush, injected latency); doing
// that under a lock the receive path also needs is the classic
// distributed-deadlock shape PRs 1–4 were careful to avoid.
//
// Non-blocking sends — a select with a default clause — are exempt:
// that is precisely the idiom (see the inbox push fast path) for
// signalling under a lock safely.
var LockedSend = &Analyzer{
	Name: "lockedsend",
	Doc: "channel send or transport Send/ReliableSend call while holding a " +
		"sync mutex in the same function (deadlock risk; non-blocking " +
		"select-with-default sends are allowed)",
	Run: runLockedSend,
}

// sendCallNames are the callee names lockedsend treats as potentially
// blocking transport sends. With type information the name is only a
// pre-filter: the resolved callee must also return an error as its last
// result (every transport-style send does; a same-named method without
// one is not a send).
var sendCallNames = map[string]bool{
	"Send":         true, // transport.Endpoint.Send
	"ReliableSend": true, // transport.ReliableSend
	"sendReliable": true, // core.Engine.sendReliable
}

// syncLockMethods are the fully-qualified mutex operations. A resolved
// Lock/Unlock call that is NOT one of these (a cache's Lock method, a
// lease's Unlock) is no mutex operation at all — the typed port kills
// that whole name-collision class in both directions.
var syncLockMethods = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": true,
	"(sync.Locker).Lock":      true,
	"(sync.Locker).Unlock":    true,
}

func runLockedSend(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fb := range functionBodies(f.AST) {
			ls := &lockScan{pass: pass, info: pass.Pkg.Info, fn: fb.name, held: map[string]token.Pos{}}
			ls.scanStmts(fb.body.List, false)
		}
	}
}

// lockScan walks one function body in statement order, tracking which
// mutexes are held. Branches of if/switch/select are scanned with a
// copy of the held set (they are alternatives, not a sequence).
type lockScan struct {
	pass *Pass
	info *types.Info
	fn   string
	held map[string]token.Pos // receiver text -> Lock() position
}

func (ls *lockScan) copyHeld() map[string]token.Pos {
	c := make(map[string]token.Pos, len(ls.held))
	for k, v := range ls.held {
		c[k] = v
	}
	return c
}

// scanStmts processes a statement list. nonBlocking marks statements
// inside a select that has a default clause, where channel sends cannot
// block.
func (ls *lockScan) scanStmts(stmts []ast.Stmt, nonBlocking bool) {
	for _, s := range stmts {
		ls.scanStmt(s, nonBlocking)
	}
}

func (ls *lockScan) scanStmt(s ast.Stmt, nonBlocking bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && ls.lockOp(call, false) {
			return
		}
		ls.checkExpr(st.X)
	case *ast.SendStmt:
		if !nonBlocking && len(ls.held) > 0 {
			recv, pos := ls.anyHeld()
			ls.pass.Reportf(st.Arrow,
				"channel send in %s while %s is locked (Lock at line %d); release the lock or use a non-blocking select",
				ls.fn, recv, ls.pass.Pkg.Fset.Position(pos).Line)
		}
		ls.checkExpr(st.Value)
	case *ast.DeferStmt:
		// defer X.Unlock() keeps the lock held for the rest of the
		// function body — exactly the window we must keep sends out of.
		// Other deferred calls run at return, outside this linear scan.
		ls.lockOp(st.Call, true)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			ls.checkExpr(r)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			ls.checkExpr(r)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			ls.scanStmt(st.Init, nonBlocking)
		}
		ls.checkExpr(st.Cond)
		saved := ls.copyHeld()
		ls.scanStmts(st.Body.List, nonBlocking)
		bodyHeld := ls.held
		ls.held = saved
		if st.Else != nil {
			ls.scanStmt(st.Else, nonBlocking)
		}
		// Conservative join: a lock taken in either branch stays
		// suspect afterwards; an unlock in either branch clears only if
		// both branches cleared it.
		for k, v := range bodyHeld {
			if _, ok := ls.held[k]; !ok {
				ls.held[k] = v
			}
		}
	case *ast.BlockStmt:
		ls.scanStmts(st.List, nonBlocking)
	case *ast.ForStmt:
		if st.Init != nil {
			ls.scanStmt(st.Init, nonBlocking)
		}
		if st.Cond != nil {
			ls.checkExpr(st.Cond)
		}
		ls.scanStmts(st.Body.List, nonBlocking)
	case *ast.RangeStmt:
		ls.checkExpr(st.X)
		ls.scanStmts(st.Body.List, nonBlocking)
	case *ast.SwitchStmt:
		if st.Init != nil {
			ls.scanStmt(st.Init, nonBlocking)
		}
		if st.Tag != nil {
			ls.checkExpr(st.Tag)
		}
		saved := ls.copyHeld()
		for _, c := range st.Body.List {
			ls.held = saved
			saved = ls.copyHeld()
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.scanStmts(cc.Body, nonBlocking)
			}
		}
		ls.held = saved
	case *ast.TypeSwitchStmt:
		saved := ls.copyHeld()
		for _, c := range st.Body.List {
			ls.held = saved
			saved = ls.copyHeld()
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.scanStmts(cc.Body, nonBlocking)
			}
		}
		ls.held = saved
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		saved := ls.copyHeld()
		for _, c := range st.Body.List {
			ls.held = saved
			saved = ls.copyHeld()
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				// The comm op itself (send or receive) blocks only when
				// the select has no default.
				ls.scanStmt(cc.Comm, hasDefault)
			}
			ls.scanStmts(cc.Body, nonBlocking)
		}
		ls.held = saved
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks;
		// its body is analyzed as its own function.
	case *ast.LabeledStmt:
		ls.scanStmt(st.Stmt, nonBlocking)
	}
}

// checkExpr reports blocking send calls appearing anywhere in an
// expression while a lock is held (it does not descend into function
// literals).
func (ls *lockScan) checkExpr(e ast.Expr) {
	if e == nil || len(ls.held) == 0 {
		return
	}
	walkShallow(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, ok := selectorCall(call); ok && sendCallNames[name] {
			if callee := calleeOf(ls.info, call); callee != nil {
				if !lastResultIsError(callee) {
					return true // a Send without an error result is not a transport send
				}
			} else if resolvedCall(ls.info, call) {
				return true // resolved to a non-function (field, conversion)
			}
			held, pos := ls.anyHeld()
			target := name
			if recv != "" {
				target = recv + "." + name
			}
			ls.pass.Reportf(call.Pos(),
				"call to %s in %s while %s is locked (Lock at line %d); transport sends can block — release the lock first",
				target, ls.fn, held, ls.pass.Pkg.Fset.Position(pos).Line)
		}
		return true
	})
}

// lockOp updates the held set when call is a Lock/RLock/Unlock/RUnlock
// on some receiver, returning true when it was one. isDefer marks
// `defer X.Unlock()`, which does NOT release for the linear scan (the
// unlock happens at return).
func (ls *lockScan) lockOp(call *ast.CallExpr, isDefer bool) bool {
	recv, name, ok := selectorCall(call)
	if !ok || recv == "" {
		return false
	}
	if callee := calleeOf(ls.info, call); callee != nil && !syncLockMethods[callee.FullName()] {
		return false // Lock/Unlock by name on something that is not a mutex
	}
	switch name {
	case "Lock", "RLock":
		if isDefer {
			return true
		}
		ls.held[recv] = call.Pos()
		return true
	case "Unlock", "RUnlock":
		if !isDefer {
			delete(ls.held, recv)
		}
		return true
	}
	return false
}

// anyHeld returns one held mutex (the earliest-locked) for messages.
func (ls *lockScan) anyHeld() (string, token.Pos) {
	bestName, bestPos := "", token.Pos(0)
	for k, v := range ls.held {
		if bestPos == 0 || v < bestPos || (v == bestPos && k < bestName) {
			bestName, bestPos = k, v
		}
	}
	return bestName, bestPos
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SlabRetain flags uses of a kv.Slab — or of pairs decoded through one —
// after the slab has been released back to the pool in the same
// function. Release/ReleaseRetainValues recycle the slab's pair block
// (Release recycles the value arenas too), so any read through a
// retained reference observes memory a concurrent decode may already be
// overwriting. The rules, scanned linearly per function the way
// lockedsend tracks mutexes:
//
//   - a variable assigned from AcquireSlab is a slab; after
//     X.Release() / X.ReleaseRetainValues() executes (a deferred release
//     runs at return and is exempt), any further use of X is flagged;
//   - a variable assigned from DecodePairsSlab(..., X) or
//     DecodeValueSlab(..., X) is derived from slab X and dies with it;
//   - after a chunk's c.release() executes, further reads of c.Pairs are
//     flagged (other chunk fields stay valid — release only returns the
//     slab).
var SlabRetain = &Analyzer{
	Name: "slabretain",
	Doc: "use of a kv.Slab, or of pairs decoded through it, after " +
		"Release/ReleaseRetainValues returned it to the pool " +
		"(use-after-free on pooled memory; deferred releases are exempt)",
	Run: runSlabRetain,
}

// slabReleaseNames are the methods that hand a slab (or a chunk's slab)
// back to the pool. The lowercase release is the state/shuffle chunk
// helper, which only invalidates the chunk's Pairs.
var slabReleaseNames = map[string]bool{
	"Release":             true,
	"ReleaseRetainValues": true,
	"release":             true,
}

// slabDecodeNames are the calls whose first result aliases the slab
// passed as their final argument.
var slabDecodeNames = map[string]bool{
	"DecodePairsSlab": true,
	"DecodeValueSlab": true,
}

func runSlabRetain(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fb := range functionBodies(f.AST) {
			ss := &slabScan{
				pass:     pass,
				info:     pass.Pkg.Info,
				fn:       fb.name,
				released: map[string]slabRelease{},
				derived:  map[string]string{},
			}
			ss.scanStmts(fb.body.List)
		}
	}
}

// slabRelease records how and where a slab variable was released.
type slabRelease struct {
	pos       token.Pos
	method    string
	pairsOnly bool // chunk release(): only .Pairs is invalidated
}

// slabScan walks one function body in statement order. released maps a
// slab (or chunk) variable's source text to its release site; derived
// maps a decoded-pairs variable to the slab it aliases. Branches of
// if/switch/select scan with a copy and join conservatively: released in
// any branch stays released.
type slabScan struct {
	pass     *Pass
	info     *types.Info
	fn       string
	released map[string]slabRelease
	derived  map[string]string
}

func (ss *slabScan) copyState() (map[string]slabRelease, map[string]string) {
	r := make(map[string]slabRelease, len(ss.released))
	for k, v := range ss.released {
		r[k] = v
	}
	d := make(map[string]string, len(ss.derived))
	for k, v := range ss.derived {
		d[k] = v
	}
	return r, d
}

func (ss *slabScan) scanStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		ss.scanStmt(s)
	}
}

func (ss *slabScan) scanStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && ss.releaseOp(call) {
			return
		}
		ss.checkExpr(st.X)
	case *ast.DeferStmt:
		// A deferred release runs at return, after every use in the body
		// — the intended ownership idiom. Check its arguments only.
		for _, a := range st.Call.Args {
			ss.checkExpr(a)
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			ss.checkExpr(r)
		}
		ss.trackAssign(st)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			ss.checkExpr(r)
		}
	case *ast.SendStmt:
		ss.checkExpr(st.Chan)
		ss.checkExpr(st.Value)
	case *ast.IfStmt:
		if st.Init != nil {
			ss.scanStmt(st.Init)
		}
		ss.checkExpr(st.Cond)
		savedR, savedD := ss.copyState()
		ss.scanStmts(st.Body.List)
		bodyR := ss.released
		bodyExits := terminates(st.Body.List)
		ss.released, ss.derived = savedR, savedD
		if st.Else != nil {
			preR, preD := ss.copyState()
			ss.scanStmt(st.Else)
			if elseExits(st.Else) {
				ss.released, ss.derived = preR, preD
			}
		}
		// Conservative join: released in either branch stays released —
		// unless the branch exits the function, in which case its releases
		// never reach the code after the if (the error-path
		// release-then-return idiom).
		if !bodyExits {
			for k, v := range bodyR {
				if _, ok := ss.released[k]; !ok {
					ss.released[k] = v
				}
			}
		}
	case *ast.BlockStmt:
		ss.scanStmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			ss.scanStmt(st.Init)
		}
		if st.Cond != nil {
			ss.checkExpr(st.Cond)
		}
		ss.scanStmts(st.Body.List)
	case *ast.RangeStmt:
		ss.checkExpr(st.X)
		ss.scanStmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			ss.scanStmt(st.Init)
		}
		if st.Tag != nil {
			ss.checkExpr(st.Tag)
		}
		ss.scanCases(st.Body.List)
	case *ast.TypeSwitchStmt:
		ss.scanCases(st.Body.List)
	case *ast.SelectStmt:
		ss.scanCases(st.Body.List)
	case *ast.GoStmt:
		// The goroutine body is a function literal analyzed on its own;
		// just check the spawn's arguments.
		for _, a := range st.Call.Args {
			ss.checkExpr(a)
		}
	case *ast.LabeledStmt:
		ss.scanStmt(st.Stmt)
	}
}

// scanCases runs each clause body against a copy of the state and joins
// releases conservatively across clauses.
func (ss *slabScan) scanCases(clauses []ast.Stmt) {
	savedR, savedD := ss.copyState()
	joined := map[string]slabRelease{}
	for _, c := range clauses {
		ss.released = copyReleases(savedR)
		ss.derived = copyDerived(savedD)
		switch cc := c.(type) {
		case *ast.CaseClause:
			ss.scanStmts(cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				ss.scanStmt(cc.Comm)
			}
			ss.scanStmts(cc.Body)
		}
		if clauseTerminates(c) {
			continue // this clause exits the function; its releases don't flow on
		}
		for k, v := range ss.released {
			joined[k] = v
		}
	}
	ss.released, ss.derived = joined, savedD
}

// terminates reports whether a statement list always leaves the
// enclosing function or loop: its last statement is a return, a
// branch (break/continue/goto), or a call to panic. Good enough for the
// linear scan — the error-path `s.Release(); return nil, err` idiom is
// exactly this shape.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func elseExits(s ast.Stmt) bool {
	switch e := s.(type) {
	case *ast.BlockStmt:
		return terminates(e.List)
	case *ast.IfStmt:
		return terminates(e.Body.List) && e.Else != nil && elseExits(e.Else)
	}
	return false
}

func clauseTerminates(c ast.Stmt) bool {
	switch cc := c.(type) {
	case *ast.CaseClause:
		return terminates(cc.Body)
	case *ast.CommClause:
		return terminates(cc.Body)
	}
	return false
}

func copyReleases(m map[string]slabRelease) map[string]slabRelease {
	c := make(map[string]slabRelease, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyDerived(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// trackAssign records new slab and derived-pairs variables, and clears
// the released/derived state of reassigned names (a fresh value is a
// fresh ownership).
func (ss *slabScan) trackAssign(st *ast.AssignStmt) {
	for _, l := range st.Lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			delete(ss.released, id.Name)
			delete(ss.derived, id.Name)
		}
	}
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	_, name, ok := selectorCall(call)
	if !ok {
		return
	}
	// Typed gate: AcquireSlab/Decode*Slab must resolve to internal/kv —
	// a same-named helper in another package does not hand out pooled
	// memory.
	if callee := calleeOf(ss.info, call); callee != nil {
		if callee.Pkg() == nil || !strings.HasSuffix(callee.Pkg().Path(), "internal/kv") {
			return
		}
	}
	switch {
	case name == "AcquireSlab":
		// s := kv.AcquireSlab() — s is a slab; nothing to do beyond the
		// reassignment reset above (it becomes trackable by releaseOp).
	case slabDecodeNames[name] && len(call.Args) > 0:
		slab, ok := call.Args[len(call.Args)-1].(*ast.Ident)
		if !ok {
			return
		}
		if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			ss.derived[id.Name] = slab.Name
		}
	}
}

// releaseOp handles an expression-statement call that may be a release,
// returning true when it was one. A release of an already-released slab
// is itself reported (the runtime panics on double release).
func (ss *slabScan) releaseOp(call *ast.CallExpr) bool {
	recv, name, ok := selectorCall(call)
	if !ok || recv == "" || !slabReleaseNames[name] {
		return false
	}
	// Typed gate: an exported Release/ReleaseRetainValues must be a
	// method on a type named Slab — sync.Pool-style Release methods on
	// other types are not slab ownership transfers. The lowercase
	// release stays name-based: it is the chunk helper's private idiom.
	if name != "release" {
		if callee := calleeOf(ss.info, call); callee != nil {
			sig, ok := callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || typeName(sig.Recv().Type()) != "Slab" {
				return false
			}
		}
	}
	if prev, ok := ss.released[recv]; ok && !prev.pairsOnly {
		ss.pass.Reportf(call.Pos(),
			"%s.%s in %s but %s was already released at line %d (double release panics)",
			recv, name, ss.fn, recv, ss.pass.Pkg.Fset.Position(prev.pos).Line)
		return true
	}
	ss.released[recv] = slabRelease{pos: call.Pos(), method: name, pairsOnly: name == "release"}
	return true
}

// checkExpr reports reads of released slabs and of pairs decoded from
// them, anywhere in an expression (not descending into function
// literals).
func (ss *slabScan) checkExpr(e ast.Expr) {
	if e == nil || len(ss.released) == 0 {
		return
	}
	walkShallow(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			base, ok := x.X.(*ast.Ident)
			if !ok {
				return true
			}
			rel, released := ss.released[base.Name]
			if released && rel.pairsOnly && x.Sel.Name == "Pairs" {
				ss.report(x.Pos(), base.Name+".Pairs", base.Name, rel)
				return false
			}
			if released && !rel.pairsOnly {
				ss.report(x.Pos(), base.Name, base.Name, rel)
				return false
			}
			return true
		case *ast.Ident:
			if rel, ok := ss.released[x.Name]; ok && !rel.pairsOnly {
				ss.report(x.Pos(), x.Name, x.Name, rel)
				return false
			}
			if slab, ok := ss.derived[x.Name]; ok {
				if rel, released := ss.released[slab]; released {
					ss.report(x.Pos(), x.Name, slab, rel)
					return false
				}
			}
		}
		return true
	})
}

func (ss *slabScan) report(pos token.Pos, what, slab string, rel slabRelease) {
	ss.pass.Reportf(pos,
		"use of %s in %s after %s.%s at line %d returned the slab to the pool; copy what you need before releasing",
		what, ss.fn, slab, rel.method, ss.pass.Pkg.Fset.Position(rel.pos).Line)
}

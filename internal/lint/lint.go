// Package lint is the project's static-analysis framework: a small,
// stdlib-only (go/ast, go/parser, go/token, go/types, go/importer)
// harness for analyzers that encode invariants of *this* codebase — the
// deadlock, tracing, error-handling, protocol-exhaustiveness, and
// determinism rules the concurrent engine, the transport, and the
// seeded chaos harness depend on but that go vet cannot see.
//
// The loader type-checks the whole module from source (dependencies
// resolve from compiled export data), so analyzers see types.Info
// facts, not just names. Per-package Analyzers inspect one checked
// package at a time; module Analyzers (RunModule) see every loaded
// package at once — the call graph, lock-order graph, and wire-protocol
// dispatch maps live at that level. The cmd/imrlint driver loads every
// package under the module, runs all registered analyzers, and exits
// non-zero on any new finding, so CI enforces the invariants on every
// change.
//
// A finding can be suppressed — sparingly, with a reason — by placing
//
//	// imrlint:ignore <analyzer> <why this site is safe>
//
// on the offending line or on the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// File is one parsed source file of a package.
type File struct {
	// Name is the file's path as handed to the parser (shown in
	// findings).
	Name string
	// AST is the parsed file, with comments (suppression directives are
	// read from them).
	AST *ast.File
}

// Package is the unit of analysis: all (non-test, unless the driver was
// asked otherwise) files of one directory, parsed and type-checked.
type Package struct {
	// Path is the package's import path, e.g. "imapreduce/internal/core".
	Path string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the package's parsed sources.
	Files []*File
	// Types is the checked package (may be incomplete when TypeErrors is
	// non-empty — fixtures are checked leniently).
	Types *types.Package
	// Info holds the resolved uses/defs/types/selections for Files. Nil
	// only for hand-built packages; analyzers fall back to syntactic
	// matching for expressions Info cannot resolve.
	Info *types.Info
	// TypeErrors are the type-check diagnostics (empty for packages
	// loaded by LoadPackages, which treats them as load errors).
	TypeErrors []error
}

// Module is the whole analyzed source set — every loaded Package.
// Module analyzers (Analyzer.RunModule) see all of it at once.
type Module struct {
	Pkgs []*Package
}

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the classic file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass is the per-(analyzer, package) context handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass is the context handed to a module analyzer's RunModule:
// the whole loaded source set at once.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module
	findings []Finding
}

// Reportf records a finding at pos, which must belong to pkg's FileSet.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Exactly one of Run (per-package) and
// RunModule (whole source set) is set.
type Analyzer struct {
	// Name identifies the analyzer in findings and in imrlint:ignore
	// directives.
	Name string
	// Doc is the one-paragraph description `imrlint -list` prints.
	Doc string
	// Match, when non-nil, restricts a per-package analyzer to (package
	// path, file base name) pairs it returns true for. A nil Match
	// analyzes everything. Module analyzers scope themselves.
	Match func(pkgPath, fileBase string) bool
	// Run inspects the files of pass.Pkg that survived Match and
	// reports findings through pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects every loaded package at once — for invariants
	// that live in cross-package contracts (dispatch exhaustiveness,
	// lock ordering, context flow, deprecation).
	RunModule func(pass *ModulePass)
}

// All returns the project's analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LockedSend,
		SpanPair,
		SendCheck,
		SimDeterminism,
		MetricKey,
		SlabRetain,
		ProtoExhaustive,
		LockOrder,
		CtxFlow,
		DeprecatedAPI,
		ErrWrapCheck,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes each analyzer over each package (module analyzers run
// once over the whole set) and returns every unsuppressed finding,
// sorted by file, line, column, then analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	mod := &Module{Pkgs: pkgs}
	allSup := suppressionSet{}
	for _, pkg := range pkgs {
		sup := suppressions(pkg)
		allSup.merge(sup)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			files := pkg.Files
			if a.Match != nil {
				files = nil
				for _, f := range pkg.Files {
					if a.Match(pkg.Path, baseName(f.Name)) {
						files = append(files, f)
					}
				}
				if len(files) == 0 {
					continue
				}
			}
			pass := &Pass{Analyzer: a, Pkg: &Package{
				Path: pkg.Path, Fset: pkg.Fset, Files: files,
				Types: pkg.Types, Info: pkg.Info, TypeErrors: pkg.TypeErrors,
			}}
			a.Run(pass)
			for _, f := range pass.findings {
				if sup.covers(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Mod: mod}
		a.RunModule(pass)
		for _, f := range pass.findings {
			if allSup.covers(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ignoreRe matches "imrlint:ignore name1[,name2] reason..." inside a
// comment.
var ignoreRe = regexp.MustCompile(`imrlint:ignore\s+([A-Za-z0-9_,-]+)`)

// suppressionSet records, per file, the lines each analyzer is muted on.
type suppressionSet map[string]map[int]map[string]bool // file -> line -> analyzer set

func (s suppressionSet) merge(other suppressionSet) {
	for file, byLine := range other {
		if s[file] == nil {
			s[file] = byLine
			continue
		}
		for line, names := range byLine {
			if s[file][line] == nil {
				s[file][line] = names
				continue
			}
			for n := range names {
				s[file][line][n] = true
			}
		}
	}
}

func (s suppressionSet) covers(f Finding) bool {
	byLine := s[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[f.Pos.Line]
	return names != nil && (names[f.Analyzer] || names["all"])
}

// suppressions scans a package's comments for imrlint:ignore directives.
// A directive mutes the named analyzer(s) on the comment's own line and
// on the line immediately after it (for comments placed above the
// offending statement).
func suppressions(pkg *Package) suppressionSet {
	out := suppressionSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				end := pkg.Fset.Position(c.End())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, end.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = map[string]bool{}
						}
						byLine[line][name] = true
					}
				}
			}
		}
	}
	return out
}

// ---- shared AST helpers used by the analyzers ----

// funcBody is one analyzable function: a declared function/method or a
// function literal (goroutine bodies and callbacks are analyzed as
// functions of their own — a goroutine does not hold its spawner's
// locks, and a closure's spans pair within the closure).
type funcBody struct {
	name   string
	params *ast.FieldList
	body   *ast.BlockStmt
}

// functionBodies collects every function and function-literal body in
// the file, outermost first.
func functionBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				out = append(out, funcBody{name: d.Name.Name, params: d.Type.Params, body: d.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "func literal", params: d.Type.Params, body: d.Body})
		}
		return true
	})
	return out
}

// walkShallow calls fn for every node in root, without descending into
// nested function literals (they are separate funcBodies).
func walkShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != root {
			return false
		}
		return fn(n)
	})
}

// selectorCall decomposes a call of the form X.Sel(...) into the
// receiver expression's source text and the method name. For a plain
// f(...) call it returns ("", "f"). ok is false for indirect calls
// (through a function value expression).
func selectorCall(call *ast.CallExpr) (recv, name string, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return "", fun.Name, true
	case *ast.SelectorExpr:
		return exprString(fun.X), fun.Sel.Name, true
	}
	return "", "", false
}

// exprString renders a simple expression (identifiers, selectors, index
// and unary expressions) as source-ish text, for matching receivers.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	}
	return "…"
}

// stringLit returns the unquoted value of a string literal expression,
// or ok=false when e is not one.
func stringLit(e ast.Expr) (string, bool) {
	lit, isLit := e.(*ast.BasicLit)
	if !isLit || lit.Kind != token.STRING {
		return "", false
	}
	s := lit.Value
	if len(s) >= 2 {
		s = s[1 : len(s)-1]
	}
	return s, true
}

// importName returns the local name the file binds the given import
// path to ("" when the path is not imported). A dot import returns ".".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, _ := stringLit(imp.Path)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

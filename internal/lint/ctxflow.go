package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow flags a function that accepts a context.Context, never uses
// it, and yet can block — directly on a channel operation or dial, or
// transitively by calling another module function that blocks. That
// combination is the cancellation lie the Submit API migration was
// meant to end: the signature promises the caller can cancel, but the
// blocking wait inside never consults ctx. Thread the context into the
// blocking call or select on ctx.Done(); naming the parameter _ is the
// explicit "this context is intentionally unused" escape hatch.
//
// The blocking facts come from the module call graph: goroutine bodies
// spawned with `go` do not count against the spawner (they don't block
// it), and a context used anywhere in the body — including inside a
// spawned goroutine — counts as used.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "a context.Context parameter must be used (threaded, or selected " +
		"on via Done) in any function that can block; name it _ when the " +
		"context is intentionally ignored",
	RunModule: runCtxFlow,
}

func runCtxFlow(pass *ModulePass) {
	cg := buildCallGraph(pass.Mod)
	blocking := cg.blockingFuncs()
	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, df := range funcDeclsOf(pkg) {
			if df.obj == nil || !blocking[df.obj] {
				continue
			}
			for _, field := range df.decl.Type.Params.List {
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					obj := pkg.Info.Defs[name]
					if obj == nil || !isContextType(obj.Type()) {
						continue
					}
					if ctxUsed(pkg, df.decl.Body, obj) {
						continue
					}
					pass.Reportf(pkg, name.Pos(),
						"context parameter %s of %s is never used, but the function can block; thread it into the blocking call or select on %s.Done()",
						name.Name, df.decl.Name.Name, name.Name)
				}
			}
		}
	}
}

// ctxUsed reports whether obj is referenced anywhere in body, including
// inside spawned goroutine literals (handing the context to background
// work is a legitimate use).
func ctxUsed(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

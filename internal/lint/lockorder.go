package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide mutex acquisition-order graph and
// reports cycles. Each statically identifiable mutex — a sync.Mutex or
// RWMutex field of a named type, a package-level mutex variable, or a
// type with an embedded mutex — is one node, keyed by type, not by
// instance (the order discipline is per-type). Acquiring B while A is
// held adds the edge A→B; calls made under a lock contribute edges to
// every mutex the callee may (transitively) acquire, via the module
// call graph. Any strongly connected component with two or more nodes
// is an order inversion: two goroutines interleaving the two paths
// deadlock. Every edge inside such a component is reported at its
// acquisition (or call) site.
//
// Local mutex variables are untracked — they cannot participate in a
// cross-goroutine cycle. Goroutine bodies spawned with `go` are scanned
// as their own scope by the call-graph walk, so a spawner's held set
// does not leak into them. TryLock establishes no edge: it fails rather
// than waits.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition order must be acyclic across the module " +
		"(acquiring B under A on one path and A under B on another " +
		"deadlocks; edges through calls count)",
	RunModule: runLockOrder,
}

// heldCall records a function call made while locks are held; the
// callee's transitive acquisitions become order edges from each held
// mutex.
type heldCall struct {
	callee *types.Func
	held   []string
	pkg    *Package
	pos    token.Pos
}

// orderEdge is one acquisition-order fact, kept at its first witness.
type orderEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
	via      string // callee short name for call-mediated edges
}

func runLockOrder(pass *ModulePass) {
	cg := buildCallGraph(pass.Mod)

	direct := map[*types.Func]map[string]bool{} // per-function direct acquisitions
	edges := map[[2]string]orderEdge{}
	var calls []heldCall

	addEdge := func(e orderEdge) {
		k := [2]string{e.from, e.to}
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}

	for _, pkg := range pass.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, df := range funcDeclsOf(pkg) {
			if df.obj == nil {
				continue
			}
			acquired := map[string]bool{}
			direct[df.obj] = acquired
			held := map[string]bool{}
			deferredCalls := map[*ast.CallExpr]bool{}
			walkCallerScope(df.decl.Body, func(n ast.Node) {
				switch x := n.(type) {
				case *ast.DeferStmt:
					deferredCalls[x.Call] = true
				case *ast.CallExpr:
					if key, acquire, ok := lockKeyOp(pkg.Info, x); ok {
						if deferredCalls[x] {
							return // defer mu.Unlock(): held until return
						}
						if acquire {
							for h := range held {
								if h != key {
									addEdge(orderEdge{from: h, to: key, pkg: pkg, pos: x.Pos()})
								}
							}
							held[key] = true
							acquired[key] = true
						} else {
							delete(held, key)
						}
						return
					}
					if len(held) == 0 {
						return
					}
					if callee := calleeOf(pkg.Info, x); callee != nil {
						hc := heldCall{callee: callee, pkg: pkg, pos: x.Pos()}
						for h := range held {
							hc.held = append(hc.held, h)
						}
						calls = append(calls, hc)
					}
				}
			})
		}
	}

	// Transitive closure of acquisitions through the call graph.
	acq := map[*types.Func]map[string]bool{}
	for fn, d := range direct {
		set := map[string]bool{}
		for k := range d {
			set[k] = true
		}
		acq[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn := range acq {
			for callee := range cg.callees[fn] {
				for k := range acq[callee] {
					if !acq[fn][k] {
						acq[fn][k] = true
						changed = true
					}
				}
			}
		}
	}
	for _, hc := range calls {
		for to := range acq[hc.callee] {
			for _, from := range hc.held {
				if from != to {
					addEdge(orderEdge{from: from, to: to, pkg: hc.pkg, pos: hc.pos,
						via: hc.callee.Name()})
				}
			}
		}
	}

	// Strongly connected components of two or more nodes are inversions.
	for _, scc := range lockSCCs(edges) {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		sort.Strings(scc)
		cycle := strings.Join(scc, ", ")
		for _, e := range sortedEdges(edges) {
			if !inSCC[e.from] || !inSCC[e.to] {
				continue
			}
			if e.via != "" {
				pass.Reportf(e.pkg, e.pos,
					"call to %s acquires %s while %s is held, completing a lock-order cycle among {%s}; acquire these locks in one global order",
					e.via, e.to, e.from, cycle)
			} else {
				pass.Reportf(e.pkg, e.pos,
					"%s acquired while %s is held, completing a lock-order cycle among {%s}; acquire these locks in one global order",
					e.to, e.from, cycle)
			}
		}
	}
}

func sortedEdges(edges map[[2]string]orderEdge) []orderEdge {
	out := make([]orderEdge, 0, len(edges))
	for _, e := range edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// lockSCCs runs Tarjan's algorithm over the order graph.
func lockSCCs(edges map[[2]string]orderEdge) [][]string {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, vs := range adj {
		sort.Strings(vs)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// lockKeyOp classifies call as a tracked mutex operation: ok reports
// whether it is one, acquire distinguishes Lock/RLock from
// Unlock/RUnlock, and key names the mutex. Resolution is required —
// lockorder has no syntactic fallback; an unresolved Lock is somebody
// else's Lock.
func lockKeyOp(info *types.Info, call *ast.CallExpr) (key string, acquire, ok bool) {
	callee := calleeOf(info, call)
	if callee == nil || !syncLockMethods[callee.FullName()] {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	key, ok = lockKey(info, sel.X)
	if !ok {
		return "", false, false
	}
	switch callee.Name() {
	case "Lock", "RLock":
		return key, true, true
	default: // Unlock, RUnlock
		return key, false, true
	}
}

// lockKey canonicalizes the receiver of a mutex operation. Keys are
// "pkg.Type" for embedded mutexes, "pkg.Type.field" for mutex fields,
// and "pkg.var" for package-level mutex variables; locals yield !ok.
func lockKey(info *types.Info, recv ast.Expr) (string, bool) {
	recv = ast.Unparen(recv)
	// Embedded mutex: the receiver is the owning struct, not a mutex.
	if n := namedOf(exprType(info, recv)); n != nil {
		if o := n.Obj(); o.Pkg() != nil && o.Pkg().Path() != "sync" {
			return o.Pkg().Name() + "." + o.Name(), true
		}
	}
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		v, ok := info.Uses[x.Sel].(*types.Var)
		if !ok {
			return "", false
		}
		if v.IsField() {
			if owner := namedOf(exprType(info, x.X)); owner != nil && owner.Obj().Pkg() != nil {
				return owner.Obj().Pkg().Name() + "." + owner.Obj().Name() + "." + v.Name(), true
			}
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	}
	return "", false
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format,
// loadable by chrome://tracing and Perfetto. Timestamps are µs.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome exports an event stream in the Chrome trace_event JSON
// array format. Each (worker, task) pair becomes one named thread;
// paired B/E events are folded into complete 'X' slices first so the
// viewer never sees an unbalanced stack.
func WriteChrome(w io.Writer, events []Event) error {
	// Stable thread ids per (worker, task) lane, master first.
	type lane struct {
		worker string
		task   int
	}
	tids := make(map[lane]int)
	tidOf := func(worker string, task int) int {
		l := lane{worker, task}
		id, ok := tids[l]
		if !ok {
			id = len(tids) + 1
			tids[l] = id
		}
		return id
	}

	var out []chromeEvent
	args := func(ev Event) map[string]any {
		a := map[string]any{"iter": ev.Iter}
		for _, at := range ev.Attrs {
			a[at.Key] = at.Value
		}
		return a
	}
	for _, s := range Spans(events) {
		out = append(out, chromeEvent{
			Name: string(s.Kind), Ph: "X",
			Ts:  float64(s.Start.Microseconds()),
			Dur: float64(s.Dur.Microseconds()),
			Pid: 1, Tid: tidOf(s.Worker, s.Task),
			Args: map[string]any{"iter": s.Iter},
		})
	}
	for _, ev := range events {
		if ev.Ph != 'i' {
			continue
		}
		out = append(out, chromeEvent{
			Name: string(ev.Kind), Ph: "i", Scope: "t",
			Ts:  float64(ev.Time.Microseconds()),
			Pid: 1, Tid: tidOf(ev.Worker, ev.Task),
			Args: args(ev),
		})
	}

	// Thread-name metadata so lanes read "worker-1 pair-0" instead of
	// bare tids.
	lanes := make([]lane, 0, len(tids))
	for l := range tids {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool { return tids[lanes[i]] < tids[lanes[j]] })
	for _, l := range lanes {
		name := fmt.Sprintf("%s pair-%d", l.worker, l.task)
		if l.task < 0 {
			name = l.worker
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[l],
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Package trace is the structured event recorder both engines emit
// into: task lifecycle, per-iteration spans per task pair, baseline
// MapReduce job phases, and transport events. A Recorder is a fixed-
// capacity ring buffer of Events guarded by a mutex; every public
// method is safe on a nil receiver, so instrumentation sites cost one
// nil check (and no clock read) when tracing is off.
//
// Events carry times as durations since the Recorder was created, which
// keeps them compact and makes a recorded run self-contained: analysis
// (decompose.go) and export (chrome.go) never need wall-clock anchors.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind names what an event or span measures. Instant kinds mark points
// in time; span kinds measure intervals.
type Kind string

// Instant event kinds.
const (
	KindRunStart    Kind = "run.start"    // iterative run accepted
	KindRunFinish   Kind = "run.finish"   // iterative run returned
	KindIterDone    Kind = "iter.done"    // master committed an iteration boundary
	KindTaskLaunch  Kind = "task.launch"  // persistent map/reduce pair spawned
	KindTaskFinish  Kind = "task.finish"  // task wrote its final output part
	KindTaskMigrate Kind = "task.migrate" // load balancer moved a pair
	KindCheckpoint  Kind = "task.ckpt"    // durable state checkpoint written
	KindRollback    Kind = "run.rollback" // master rolled the run back
	KindSendRetry   Kind = "send.retry"   // transport send needed retrying
	KindSendFail    Kind = "send.fail"    // transport send abandoned
	KindNetFlush    Kind = "net.flush"    // TCP coalescing buffer flushed
	KindManifest    Kind = "run.manifest" // durable checkpoint manifest committed
	KindResume      Kind = "run.resume"   // cold restart from a durable manifest
)

// Instant event kinds emitted by the multi-tenant job service
// (internal/serve).
const (
	KindServeSubmit   Kind = "serve.submit"   // job admitted into a tenant queue
	KindServeReject   Kind = "serve.reject"   // submission bounced at admission
	KindServeDispatch Kind = "serve.dispatch" // scheduler handed the job a slot
	KindServeDone     Kind = "serve.done"     // job reached a terminal state
)

// Span kinds emitted by the iterative (core) engine, one set per task
// pair per iteration.
const (
	SpanRunInit   Kind = "init"      // one-time job init (partitioning, task starts)
	SpanLoad      Kind = "load"      // static/state (re)load from the DFS
	SpanMap       Kind = "map"       // join + map over one input delivery
	SpanShuffle   Kind = "shuffle"   // partition/combine/send of map output
	SpanWait      Kind = "wait"      // map idle, waiting for iteration input
	SpanBarrier   Kind = "barrier"   // reduce waiting for the slowest map
	SpanSortGroup Kind = "sortgroup" // sort/group of the reduce input
	SpanReduce    Kind = "reduce"    // reduce over the grouped input
	SpanStateSend Kind = "statesend" // reduce→map state delivery
	SpanFinal     Kind = "final"     // final output write to the DFS
)

// Span kinds emitted by the baseline MapReduce engine.
const (
	SpanJobInit     Kind = "mr.init"    // job submission + split planning
	SpanMapWave     Kind = "mr.map"     // the map wave of one job
	SpanShuffleWave Kind = "mr.shuffle" // reduce-side fetch of map output
	SpanReduceWave  Kind = "mr.reduce"  // the reduce wave of one job
)

// Attr is one key/value annotation on an event.
type Attr struct {
	Key   string
	Value string
}

// Event is one recorded occurrence. Time (and Dur, for complete spans)
// are measured from the Recorder's creation.
type Event struct {
	Time   time.Duration
	Dur    time.Duration // complete spans ('X') only
	Worker string
	Task   int // pair index; -1 for master/driver-level events
	Kind   Kind
	Iter   int
	// Ph is the event phase, following the Chrome trace_event
	// convention: 'i' instant, 'B'/'E' paired span begin/end, 'X'
	// complete span.
	Ph    byte
	ID    uint64 // pairs 'B' with 'E'
	Attrs []Attr
}

// DefaultCapacity is the ring size NewRecorder uses when given 0.
const DefaultCapacity = 1 << 16

// Recorder collects Events into a fixed-capacity ring. When the ring
// overflows, the oldest events are dropped (and counted); a run's tail
// is always retained. All methods are safe for concurrent use and safe
// on a nil *Recorder.
type Recorder struct {
	start time.Time
	ids   atomic.Uint64

	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever recorded
}

// NewRecorder returns a Recorder with the given ring capacity
// (DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{start: time.Now(), buf: make([]Event, 0, capacity)}
}

// Start returns the wall-clock instant event times are measured from.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

func (r *Recorder) push(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = ev
	}
	r.n++
	r.mu.Unlock()
}

// Emit records an instant event stamped now.
func (r *Recorder) Emit(kind Kind, worker string, task, iter int, attrs ...Attr) {
	if r == nil {
		return
	}
	r.push(Event{
		Time: time.Since(r.start), Worker: worker, Task: task,
		Kind: kind, Iter: iter, Ph: 'i', Attrs: attrs,
	})
}

// Pending is an open span returned by Begin; End closes it.
type Pending struct {
	r      *Recorder
	id     uint64
	kind   Kind
	worker string
	task   int
	iter   int
}

// Begin records a span-begin event stamped now and returns the handle
// that ends it. On a nil Recorder both halves are no-ops.
func (r *Recorder) Begin(kind Kind, worker string, task, iter int) Pending {
	if r == nil {
		return Pending{}
	}
	id := r.ids.Add(1)
	r.push(Event{
		Time: time.Since(r.start), Worker: worker, Task: task,
		Kind: kind, Iter: iter, Ph: 'B', ID: id,
	})
	return Pending{r: r, id: id, kind: kind, worker: worker, task: task, iter: iter}
}

// End closes the span opened by Begin.
func (p Pending) End() {
	if p.r == nil {
		return
	}
	p.r.push(Event{
		Time: time.Since(p.r.start), Worker: p.worker, Task: p.task,
		Kind: p.kind, Iter: p.iter, Ph: 'E', ID: p.id,
	})
}

// RecordSpan records a complete span from a caller-measured start and
// duration — the cheap form for sites that already hold a start time.
func (r *Recorder) RecordSpan(kind Kind, worker string, task, iter int, start time.Time, d time.Duration, attrs ...Attr) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	r.push(Event{
		Time: start.Sub(r.start), Dur: d, Worker: worker, Task: task,
		Kind: kind, Iter: iter, Ph: 'X', Attrs: attrs,
	})
}

// Events returns a chronological copy of the retained events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if r.n <= uint64(cap(r.buf)) {
		copy(out, r.buf)
		return out
	}
	// Ring has wrapped: the oldest retained event sits at n % cap.
	head := int(r.n % uint64(cap(r.buf)))
	copy(out, r.buf[head:])
	copy(out[len(r.buf)-head:], r.buf[:head])
	return out
}

// Dropped reports how many events were evicted by ring overflow.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n <= uint64(cap(r.buf)) {
		return 0
	}
	return r.n - uint64(cap(r.buf))
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
